package tctp

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"tctp/internal/cluster"
	"tctp/internal/core"
	"tctp/internal/field"
	"tctp/internal/patrol"
	"tctp/internal/sweep"
	"tctp/internal/tour"
	"tctp/internal/walk"
	"tctp/internal/xrand"
)

// --- planner hot-path benchmarks ------------------------------------------
//
// BenchmarkPlan* measures the spatially indexed planning substrates at
// n ∈ {100, 1k, 10k} next to their retained brute-force twins
// (*Brute), which are the pre-index implementations kept as oracles by
// the equivalence tests. The indexed and brute variants produce
// bit-identical tours/assignments, so the ratio between the two is
// pure speedup. ConvexHullInsertionBrute stops at 1k: its cheapest-
// insertion rescan is Θ(n³)-ish DetourCost evaluations and a single
// 10k iteration takes minutes, which is itself the reason the cached
// variant exists.

var planSizes = []int{100, 1_000, 10_000}

// skipLarge keeps the n=10k variants (seconds to minutes per op for
// the brute baselines) out of -short runs; CI's rot check executes
// every benchmark once under -short, while full local runs and the
// speedup measurements use the complete size ladder.
func skipLarge(b *testing.B, n int) {
	if n >= 10_000 && testing.Short() {
		b.Skipf("n=%d skipped under -short", n)
	}
}

func BenchmarkPlanNearestNeighbor(b *testing.B) {
	for _, n := range planSizes {
		pts := randomPoints(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			skipLarge(b, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tour.NearestNeighbor(pts, 0)
			}
		})
	}
}

func BenchmarkPlanNearestNeighborBrute(b *testing.B) {
	for _, n := range planSizes {
		pts := randomPoints(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			skipLarge(b, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tour.NearestNeighborBrute(pts, 0)
			}
		})
	}
}

func BenchmarkPlanGreedyEdge(b *testing.B) {
	for _, n := range planSizes {
		pts := randomPoints(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			skipLarge(b, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tour.GreedyEdge(pts)
			}
		})
	}
}

func BenchmarkPlanGreedyEdgeBrute(b *testing.B) {
	for _, n := range planSizes {
		pts := randomPoints(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			skipLarge(b, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tour.GreedyEdgeBrute(pts)
			}
		})
	}
}

func BenchmarkPlanConvexHullInsertion(b *testing.B) {
	for _, n := range planSizes {
		pts := randomPoints(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			skipLarge(b, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tour.ConvexHullInsertion(pts)
			}
		})
	}
}

func BenchmarkPlanConvexHullInsertionBrute(b *testing.B) {
	for _, n := range planSizes {
		if n > 1_000 {
			continue // Θ(n³) DetourCost evaluations: minutes per op at 10k
		}
		pts := randomPoints(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			skipLarge(b, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tour.ConvexHullInsertionBrute(pts)
			}
		})
	}
}

func BenchmarkPlanKMeans(b *testing.B) {
	for _, n := range planSizes {
		pts := randomPoints(n)
		k := n / 20
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			skipLarge(b, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cluster.KMeans(pts, k, xrand.New(11), 20)
			}
		})
	}
}

func BenchmarkPlanKMeansBrute(b *testing.B) {
	for _, n := range planSizes {
		pts := randomPoints(n)
		k := n / 20
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			skipLarge(b, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cluster.KMeansBrute(pts, k, xrand.New(11), 20)
			}
		})
	}
}

// BenchmarkPlanFleet measures the end-to-end B-TCTP plan construction
// (circuit + start-point partition + location initialization + route
// assembly), the path the allocation audit trimmed.
func BenchmarkPlanFleet(b *testing.B) {
	for _, n := range planSizes {
		s := field.Generate(field.Config{NumTargets: n, NumMules: 8, Placement: field.Uniform},
			xrand.New(13))
		planner := &core.BTCTP{}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			skipLarge(b, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := planner.Plan(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlanCHBAssign measures CHB's fleet-to-circuit assignment in
// its batched form (one NearestOffsets pass and one RoutesFromArcs
// pass for the whole fleet) next to the retained per-mule twin below.
// The assignments are bit-identical; the ratio is the cost of
// rebuilding the closed polyline, the segment lengths, and the
// arc-offset table once per mule instead of once per circuit.
func BenchmarkPlanCHBAssign(b *testing.B) {
	for _, n := range planSizes {
		s := field.Generate(field.Config{NumTargets: n, NumMules: 8, Placement: field.Uniform},
			xrand.New(19))
		pts := s.Points()
		w := walk.New(tour.EnsureCCW(pts, tour.ConvexHullInsertion(pts))).RotateToNorthmost(pts)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			skipLarge(b, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ds := w.NearestOffsets(pts, s.MuleStarts)
				if routes := core.RoutesFromArcs(pts, w, ds); len(routes) != 8 {
					b.Fatal("short assignment")
				}
			}
		})
	}
}

func BenchmarkPlanCHBAssignPerMule(b *testing.B) {
	for _, n := range planSizes {
		s := field.Generate(field.Config{NumTargets: n, NumMules: 8, Placement: field.Uniform},
			xrand.New(19))
		pts := s.Points()
		w := walk.New(tour.EnsureCCW(pts, tour.ConvexHullInsertion(pts))).RotateToNorthmost(pts)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			skipLarge(b, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				routes := make([]core.MuleRoute, len(s.MuleStarts))
				for m, start := range s.MuleStarts {
					routes[m] = core.RouteFromArc(pts, w, w.NearestOffset(pts, start))
				}
				if len(routes) != 8 {
					b.Fatal("short assignment")
				}
			}
		})
	}
}

// --- cell-level benchmarks -------------------------------------------------
//
// BenchmarkCell* measures one sweep cell end to end: replication
// execution plus the seed-ordered (or sharded) fold. The shards=K
// variants quantify what Spec.RepShards buys on a single hot cell.

func cellSpec(targets, seeds, shards, workers int) sweep.Spec {
	return sweep.Spec{
		Name:       "bench-cell",
		Algorithms: []sweep.Variant{sweep.Algo("btctp", patrol.Planned(&core.BTCTP{}))},
		Targets:    []int{targets},
		Mules:      []int{4},
		Horizons:   []float64{20_000},
		Metrics:    []sweep.Metric{sweep.AvgDCDT(), sweep.AvgSD(), sweep.MaxInterval()},
		Seeds:      seeds,
		RepShards:  shards,
		Workers:    workers,
	}
}

func BenchmarkCellReplications(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		shards  int
		workers int
	}{
		{"serial", 0, 1},
		{"workers=4", 0, 4},
		{"workers=4/shards=4", 4, 4},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				spec := cellSpec(60, 8, cfg.shards, cfg.workers)
				if _, err := sweep.Run(context.Background(), spec, sweep.CSV(&buf)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCellSimulation measures a single replication (plan + event
// simulation + recording) at growing target counts; the recorder's
// flat preallocation shows up in allocs/op here.
func BenchmarkCellSimulation(b *testing.B) {
	for _, n := range []int{100, 1_000} {
		s := field.Generate(field.Config{NumTargets: n, NumMules: 4, Placement: field.Uniform},
			xrand.New(17))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			skipLarge(b, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := patrol.Run(s, patrol.Planned(&core.BTCTP{}),
					patrol.Options{Horizon: 20_000}, xrand.New(1))
				if err != nil {
					b.Fatal(err)
				}
				if res.TotalVisits() == 0 {
					b.Fatal("no visits")
				}
			}
		})
	}
}
