package tctp

import (
	"io"
	"testing"

	"tctp/internal/core"
	"tctp/internal/experiment"
	"tctp/internal/field"
	"tctp/internal/geom"
	"tctp/internal/hull"
	"tctp/internal/patrol"
	"tctp/internal/sim"
	"tctp/internal/tour"
	"tctp/internal/xrand"
)

// The figure benchmarks run the full reproduction pipeline of each
// paper artifact at a reduced protocol (2 replications, shortened
// horizons) so `go test -bench=.` exercises every experiment end to
// end; cmd/tctp-experiments runs the full 20-replication protocol.

func benchParams() experiment.Params { return experiment.Params{Seeds: 2} }

// BenchmarkFig7DCDT regenerates paper Fig. 7 (DCDT vs. visit index for
// Random/Sweep/CHB/TCTP).
func BenchmarkFig7DCDT(b *testing.B) {
	cfg := experiment.Fig7Config{Targets: 15, Mules: 4, MaxVisits: 15, Horizon: 150_000}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig7(benchParams(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8SD regenerates paper Fig. 8 (SD surface over targets ×
// mules, CHB vs TCTP).
func BenchmarkFig8SD(b *testing.B) {
	cfg := experiment.Fig8Config{Targets: []int{10, 20}, Mules: []int{2, 4}, Horizon: 30_000}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig8(benchParams(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9WTCTPDCDT regenerates paper Fig. 9 (average DCDT over
// #VIP × weight, Shortest vs Balancing policy).
func BenchmarkFig9WTCTPDCDT(b *testing.B) {
	cfg := experiment.WTCTPConfig{Targets: 12, Mules: 1, VIPs: []int{1, 3}, Weights: []int{2, 4}, Horizon: 60_000}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.WTCTPPolicies(benchParams(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10WTCTPSD regenerates paper Fig. 10 (average SD over
// #VIP × weight). The sweep is shared with Fig. 9; the benchmark
// keeps its own name so every figure has a dedicated target.
func BenchmarkFig10WTCTPSD(b *testing.B) {
	cfg := experiment.WTCTPConfig{Targets: 12, Mules: 1, VIPs: []int{1, 3}, Weights: []int{2, 4}, Horizon: 60_000}
	for i := 0; i < b.N; i++ {
		r, err := experiment.WTCTPPolicies(benchParams(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.SDBalancing.MaxZ() < 0 {
			b.Fatal("impossible")
		}
	}
}

// BenchmarkEnergyRWTCTP regenerates E5 (the §V energy-efficiency
// study: RW-TCTP vs recharge-less W-TCTP).
func BenchmarkEnergyRWTCTP(b *testing.B) {
	cfg := experiment.EnergyConfig{Targets: 12, Mules: 2, Capacity: 100_000, Horizon: 150_000}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Energy(benchParams(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeliveryE6 regenerates E6 (end-to-end data delivery under
// each mechanism).
func BenchmarkDeliveryE6(b *testing.B) {
	cfg := experiment.DeliveryConfig{Targets: 10, Mules: 3, Horizon: 80_000}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Delivery(benchParams(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches (A1–A5 of DESIGN.md) -------------------------------

func ablationCfg() experiment.AblationConfig {
	return experiment.AblationConfig{Targets: 12, Mules: 2, Horizon: 25_000}
}

// BenchmarkAblationTourHeuristics runs A1 (circuit constructions).
func BenchmarkAblationTourHeuristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.TourHeuristics(benchParams(), ablationCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBreakPolicy runs A2 (break-edge policies).
func BenchmarkAblationBreakPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.BreakPolicies(benchParams(), ablationCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLocationInit runs A3 (location initialization
// on/off).
func BenchmarkAblationLocationInit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.LocationInit(benchParams(), ablationCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDwell runs A4 (dwell sensitivity).
func BenchmarkAblationDwell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.DwellSensitivity(benchParams(), ablationCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTraversal runs A5 (angle rule vs insertion order).
func BenchmarkAblationTraversal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Traversal(benchParams(), ablationCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- microbenchmarks for the hot substrates -------------------------------

func randomPoints(n int) []geom.Point {
	src := xrand.New(7)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(src.Range(0, 800), src.Range(0, 800))
	}
	return pts
}

// BenchmarkConvexHull measures the hull substrate (50 points).
func BenchmarkConvexHull(b *testing.B) {
	pts := randomPoints(50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hull.Convex(pts)
	}
}

// BenchmarkHullInsertionTour measures the CHB circuit construction
// (50 points).
func BenchmarkHullInsertionTour(b *testing.B) {
	pts := randomPoints(50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tour.ConvexHullInsertion(pts)
	}
}

// BenchmarkTwoOpt measures the 2-opt improver on a 50-point random
// tour.
func BenchmarkTwoOpt(b *testing.B) {
	pts := randomPoints(50)
	src := xrand.New(9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tour.TwoOpt(pts, tour.Random(50, src))
	}
}

// BenchmarkWPPConstruction measures the W-TCTP path construction with
// the balancing policy (20 targets, 3 VIPs of weight 4).
func BenchmarkWPPConstruction(b *testing.B) {
	s := field.Generate(field.Config{NumTargets: 20, NumMules: 2, Placement: field.Uniform},
		xrand.New(3))
	s.AssignVIPs(xrand.New(4), 3, 4)
	wt := &core.WTCTP{Policy: core.BalancingLength}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wt.BuildWPP(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulationThroughput measures raw event throughput of a
// 4-mule B-TCTP simulation (events/op via ns and the fixed horizon).
func BenchmarkSimulationThroughput(b *testing.B) {
	s := field.Generate(field.Config{NumTargets: 20, NumMules: 4, Placement: field.Uniform},
		xrand.New(5))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := patrol.Run(s, patrol.Planned(&core.BTCTP{}),
			patrol.Options{Horizon: 50_000}, xrand.New(1))
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalVisits() == 0 {
			b.Fatal("no visits")
		}
	}
}

// BenchmarkEventEngine measures the bare discrete-event engine.
func BenchmarkEventEngine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.New()
		count := 0
		var tick func()
		tick = func() {
			count++
			if count < 1000 {
				eng.After(1, tick)
			}
		}
		eng.Schedule(0, tick)
		eng.Run(2000)
	}
}

// BenchmarkRegistrySmoke runs the cheapest registered experiment
// through the public facade, covering the registry path end to end.
func BenchmarkRegistrySmoke(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := RunExperiment("a3-init", ExperimentParams{Seeds: 1}, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
