// Command benchgate is the CI perf-regression gate: it parses two
// `go test -bench` outputs (base and head), compares every benchmark's
// time/op and allocs/op with the repository's own streaming statistics
// (internal/stats), and fails when a gated benchmark regressed —
// a statistically significant time/op increase beyond the threshold,
// or any allocs/op increase at all (allocation counts are
// deterministic, so even +1 is a real regression).
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 5x -count 6 ./... > head.txt
//	git checkout main && go test ... > base.txt
//	benchgate -base base.txt -head head.txt -gate '^BenchmarkEngine' -json BENCH_engine.json
//
// Significance uses non-overlapping 95% confidence intervals of the
// per-run means: a regression counts only when the head's CI95 lower
// bound clears the base's CI95 upper bound AND the mean delta exceeds
// -threshold (default 15%). CI also runs benchstat over the same files
// for the human-readable table; benchgate is the pass/fail decision.
//
// Without -base, benchgate only summarizes the head run (used on
// pushes to main, where there is no merge base to compare against);
// the -json artifact is written either way, the start of a BENCH_*
// trajectory tracked across builds. The artifact carries the
// machine-readable verdict — a top-level "pass" / "fail" /
// "head-only" plus a per-(benchmark, unit) "regression" / "pass" /
// "info" — so bench-history tooling can grade builds without parsing
// exit codes or tables; -json - streams it to stdout instead of a
// file.
//
// The -history subcommand is that tooling: it folds any number of
// BENCH_*.json artifacts (downloaded from successive builds, given as
// arguments in build order) into a per-benchmark time-series table —
// one row per build with the head mean ±CI95, the delta against the
// previous build, and the recorded verdict. It never fails the build;
// it exists to make drift visible between the gate's hard stops. CI
// additionally accumulates the artifacts in an actions/cache
// "bench-history" directory (restore-keys prefix match restores the
// newest previous cache, each build appends its run-numbered copy),
// so the table spans builds without downloading artifacts by hand:
//
//	benchgate -history BENCH_engine_build1.json BENCH_engine_build2.json ...
//
// The -qualitygate mode is the solution-quality twin of the bench
// gate: it compares the `tctp-experiments -run quality` CSV given as
// -head against a committed golden fixture and fails when any
// planner's approximation ratio regressed beyond -quality-tolerance,
// went missing, or dropped below 1.0 (a bound violation). See
// quality.go for the full policy:
//
//	tctp-experiments -run quality -format csv -seeds 5 > head.csv
//	benchgate -qualitygate internal/experiment/testdata/quality_golden.csv -head head.csv
//
// # Gating policy
//
// Two gates run per pull request, split by benchmark family because a
// single threshold cannot fit both:
//
//   - '^BenchmarkEngine' at -threshold 0.15: discrete-event engine
//     microbenchmarks. Tight ops with low run-to-run variance; 15%
//     catches real regressions without flaking.
//   - '^BenchmarkPlan' at -threshold 0.25: whole planner constructions
//     (tours, clusterings, fleet plans) at n=1000. Bigger working
//     sets make them more sensitive to machine noise on shared CI
//     runners, so their gate is variance-tolerant; the CI95-overlap
//     significance test does the real filtering, the threshold only
//     sets how large a confirmed move must be to fail the build.
//
// The BenchmarkPlan*Brute twins are deliberately ungated and excluded
// from the replicated runs: they are frozen oracles for the
// equivalence tests, exist to be slow, and only execute in the
// single-iteration rot check (-short skips their n=10k rungs, which
// take minutes by design). allocs/op is gated with zero tolerance in
// both families — allocation counts are deterministic, so any
// increase is a real regression, which is what keeps the zero-alloc
// planning paths zero-alloc.
//
// The same twin idiom extends beyond the Brute oracles. The sweep
// service's cache benchmarks (internal/sweep/cache:
// BenchmarkCacheHitSweep vs BenchmarkCacheHitSweepCold for the
// warm-over-cold ratio, BenchmarkCacheDedup vs
// BenchmarkCacheDedupNoShare for the single-flight collapse) and the
// planner batching pair in the root package (BenchmarkPlanCHBAssign
// vs BenchmarkPlanCHBAssignPerMule) each carry their baseline as a
// sibling benchmark, so the claimed speedups (≥50× cache hit, ~1×
// compute under N duplicate submissions, ~2.3× batched CHB assignment
// at n=10k) are re-measurable from any single run's output.
// BenchmarkPlanCHBAssign joins the '^BenchmarkPlan' gate at n=1000;
// its PerMule twin and the cache benchmarks stay ungated — the former
// is a frozen baseline, the latter measure wall-clock collapse ratios
// whose absolute times are dominated by scheduler behavior on shared
// runners, and both still execute in the rot check so they cannot
// decay silently.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"tctp/internal/stats"
)

func main() {
	var (
		basePath  = flag.String("base", "", "base `go test -bench` output (omit to only summarize -head)")
		headPath  = flag.String("head", "", "head `go test -bench` output (required)")
		gate      = flag.String("gate", "^BenchmarkEngine", "regexp of benchmark names the gate applies to")
		threshold = flag.Float64("threshold", 0.15, "relative time/op regression that fails the gate")
		jsonOut   = flag.String("json", "", `write the machine-readable comparison verdict to this file ("-" = stdout)`)
		history   = flag.Bool("history", false, "fold the BENCH_*.json artifacts given as arguments into a per-benchmark time-series table (never fails)")
		qGolden   = flag.String("qualitygate", "", "quality-gate mode: compare the -head quality-study CSV against this golden fixture CSV instead of benchmarks")
		qTol      = flag.Float64("quality-tolerance", 0.02, "relative approximation-ratio regression the quality gate tolerates")
	)
	flag.Parse()
	if *history {
		if err := runHistory(flag.Args(), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		return
	}
	if *qGolden != "" {
		if err := runQualityGate(*qGolden, *headPath, *qTol, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*basePath, *headPath, *gate, *threshold, *jsonOut, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// parseBench extracts metric samples from `go test -bench` output.
// Benchmark lines look like:
//
//	BenchmarkEngine-8   1000000   1052 ns/op   16 B/op   1 allocs/op
//
// Repeated -count runs of the same benchmark append to one sample.
func parseBench(r io.Reader) (map[string]map[string][]float64, error) {
	out := make(map[string]map[string][]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the GOMAXPROCS suffix
			}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark line %q: bad value %q", sc.Text(), fields[i])
			}
			unit := fields[i+1]
			if out[name] == nil {
				out[name] = make(map[string][]float64)
			}
			out[name][unit] = append(out[name][unit], v)
		}
	}
	return out, sc.Err()
}

// comparison is one (benchmark, unit) verdict. Verdict is the
// machine-readable judgement: "regression" (gated and regressed),
// "pass" (gated and clean), or "info" (reported but never gating —
// ungated benchmarks and head-only summaries).
type comparison struct {
	Name        string  `json:"name"`
	Unit        string  `json:"unit"`
	Verdict     string  `json:"verdict"`
	BaseN       int     `json:"base_n,omitempty"`
	BaseMean    float64 `json:"base_mean,omitempty"`
	BaseCI95    float64 `json:"base_ci95,omitempty"`
	HeadN       int     `json:"head_n"`
	HeadMean    float64 `json:"head_mean"`
	HeadCI95    float64 `json:"head_ci95"`
	DeltaPct    float64 `json:"delta_pct,omitempty"`
	Significant bool    `json:"significant,omitempty"`
	Gated       bool    `json:"gated"`
	Regression  bool    `json:"regression"`
	Note        string  `json:"note,omitempty"`
}

// gatedUnits are the metrics the gate judges; everything else is
// reported but never fails the build.
var gatedUnits = map[string]bool{"ns/op": true, "allocs/op": true}

// setVerdict derives the machine-readable judgement from the gate
// flags; call it once the Gated/Regression fields are final.
func (c *comparison) setVerdict() {
	switch {
	case c.Regression:
		c.Verdict = "regression"
	case c.Gated:
		c.Verdict = "pass"
	default:
		c.Verdict = "info"
	}
}

func summarize(vals []float64) (mean, ci95 float64) {
	var acc stats.Accumulator
	for _, v := range vals {
		acc.Add(v)
	}
	return acc.Mean(), acc.CI95()
}

// compare judges head against base. A gated benchmark missing from
// head is itself a regression — deleting the benchmark must not dodge
// the gate.
func compare(base, head map[string]map[string][]float64, gateRe *regexp.Regexp, threshold float64) ([]comparison, bool) {
	var out []comparison
	failed := false
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		gated := gateRe.MatchString(name)
		units := make([]string, 0, len(base[name]))
		for unit := range base[name] {
			units = append(units, unit)
		}
		sort.Strings(units)
		if head[name] == nil {
			c := comparison{
				Name: name, Gated: gated, Regression: gated,
				Note: "benchmark missing from head run",
			}
			c.setVerdict()
			out = append(out, c)
			failed = failed || gated
			continue
		}
		for _, unit := range units {
			bm, bci := summarize(base[name][unit])
			hv, ok := head[name][unit]
			if !ok {
				// A gated metric that vanished from head (e.g. a dropped
				// b.ReportAllocs()) must not dodge the gate.
				gatedUnit := gated && gatedUnits[unit]
				c := comparison{
					Name: name, Unit: unit,
					BaseN: len(base[name][unit]), BaseMean: bm, BaseCI95: bci,
					Gated: gatedUnit, Regression: gatedUnit,
					Note: "metric missing from head run",
				}
				c.setVerdict()
				out = append(out, c)
				failed = failed || gatedUnit
				continue
			}
			hm, hci := summarize(hv)
			c := comparison{
				Name:  name,
				Unit:  unit,
				BaseN: len(base[name][unit]), BaseMean: bm, BaseCI95: bci,
				HeadN: len(hv), HeadMean: hm, HeadCI95: hci,
				Gated: gated && gatedUnits[unit],
			}
			if bm != 0 {
				c.DeltaPct = 100 * (hm - bm) / bm
			}
			// Non-overlapping CI95s: the conservative "clearly moved"
			// criterion.
			c.Significant = hm-hci > bm+bci || hm+hci < bm-bci
			switch unit {
			case "ns/op":
				c.Regression = c.Gated && c.Significant && hm > bm*(1+threshold)
			case "allocs/op":
				// Allocation counts are deterministic per iteration:
				// any increase of the mean is a real regression.
				c.Regression = c.Gated && hm > bm
			}
			failed = failed || c.Regression
			c.setVerdict()
			out = append(out, c)
		}
	}
	return out, failed
}

// headOnly summarizes a head run without a base to compare against.
func headOnly(head map[string]map[string][]float64, gateRe *regexp.Regexp) []comparison {
	var names []string
	for name := range head {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []comparison
	for _, name := range names {
		var units []string
		for unit := range head[name] {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			hm, hci := summarize(head[name][unit])
			out = append(out, comparison{
				Name: name, Unit: unit,
				HeadN: len(head[name][unit]), HeadMean: hm, HeadCI95: hci,
				Gated: gateRe.MatchString(name) && gatedUnits[unit],
				// Without a base there is nothing to judge: every row
				// is informational, gated or not.
				Verdict: "info",
			})
		}
	}
	return out
}

// report is the -json artifact schema. Verdict is the machine-readable
// gate outcome: "pass", "fail", or "head-only" when there was no base
// to judge against (Failed stays false then).
type report struct {
	Base       string       `json:"base,omitempty"`
	Head       string       `json:"head"`
	Gate       string       `json:"gate"`
	Threshold  float64      `json:"threshold"`
	Verdict    string       `json:"verdict"`
	Failed     bool         `json:"failed"`
	Benchmarks []comparison `json:"benchmarks"`
}

// runHistory folds -json artifacts from successive builds into a
// per-benchmark time-series table. Files are taken in argument order
// (pass them in build order); the delta column compares each build's
// head mean against the previous one. A benchmark missing from a
// build simply skips that row. History never fails the caller on
// benchmark content — only unreadable files are errors.
func runHistory(paths []string, w io.Writer) error {
	if len(paths) == 0 {
		return fmt.Errorf("-history needs BENCH_*.json artifact files as arguments")
	}
	type sample struct {
		build   string
		n       int
		mean    float64
		ci95    float64
		verdict string
	}
	series := make(map[string][]sample) // "name unit" → builds in order
	var keys []string
	for _, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var rep report
		if err := json.Unmarshal(b, &rep); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for _, c := range rep.Benchmarks {
			if c.Unit == "" || c.HeadN == 0 {
				continue // note-only rows (missing benchmarks) have no head sample
			}
			key := c.Name + " " + c.Unit
			if _, seen := series[key]; !seen {
				keys = append(keys, key)
			}
			series[key] = append(series[key], sample{
				build: path, n: c.HeadN,
				mean: c.HeadMean, ci95: c.HeadCI95,
				verdict: c.Verdict,
			})
		}
	}
	if len(keys) == 0 {
		return fmt.Errorf("no benchmark samples in %d artifacts", len(paths))
	}
	sort.Strings(keys)
	for _, key := range keys {
		fmt.Fprintf(w, "== %s ==\n", key)
		prev := 0.0
		for i, s := range series[key] {
			delta := "     —"
			if i > 0 && prev != 0 {
				delta = fmt.Sprintf("%+5.1f%%", 100*(s.mean-prev)/prev)
			}
			fmt.Fprintf(w, "  %-40s %12.2f ±%-10.2f %s  %s\n",
				s.build, s.mean, s.ci95, delta, s.verdict)
			prev = s.mean
		}
	}
	return nil
}

func loadBench(path string) (map[string]map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := parseBench(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s holds no benchmark results", path)
	}
	return m, nil
}

func run(basePath, headPath, gate string, threshold float64, jsonOut string, w io.Writer) error {
	if headPath == "" {
		return fmt.Errorf("-head is required")
	}
	gateRe, err := regexp.Compile(gate)
	if err != nil {
		return fmt.Errorf("bad -gate regexp: %w", err)
	}
	head, err := loadBench(headPath)
	if err != nil {
		return err
	}

	rep := report{Base: basePath, Head: headPath, Gate: gate, Threshold: threshold}
	if basePath == "" {
		rep.Benchmarks = headOnly(head, gateRe)
		rep.Verdict = "head-only"
	} else {
		base, err := loadBench(basePath)
		if err != nil {
			return err
		}
		rep.Benchmarks, rep.Failed = compare(base, head, gateRe, threshold)
		rep.Verdict = "pass"
		if rep.Failed {
			rep.Verdict = "fail"
		}
	}

	for _, c := range rep.Benchmarks {
		mark := " "
		switch {
		case c.Regression:
			mark = "✗"
		case c.Gated:
			mark = "✓"
		}
		if c.Note != "" {
			fmt.Fprintf(w, "%s %-40s %-10s %s\n", mark, c.Name, c.Unit, c.Note)
			continue
		}
		if basePath == "" {
			fmt.Fprintf(w, "%s %-40s %-10s %12.2f ±%.2f (n=%d)\n",
				mark, c.Name, c.Unit, c.HeadMean, c.HeadCI95, c.HeadN)
			continue
		}
		fmt.Fprintf(w, "%s %-40s %-10s %12.2f ±%.2f → %12.2f ±%.2f  %+6.1f%%\n",
			mark, c.Name, c.Unit, c.BaseMean, c.BaseCI95, c.HeadMean, c.HeadCI95, c.DeltaPct)
	}

	if jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if jsonOut == "-" {
			// JSON to stdout for pipelines; the table above went there
			// too, so strictly-parsing consumers should prefer a file.
			if _, err := fmt.Fprintf(w, "%s\n", b); err != nil {
				return err
			}
		} else if err := os.WriteFile(jsonOut, append(b, '\n'), 0o644); err != nil {
			return err
		}
	}
	if rep.Failed {
		return fmt.Errorf("performance regression in gated benchmarks (gate %s, threshold %g%%)",
			gate, threshold*100)
	}
	return nil
}
