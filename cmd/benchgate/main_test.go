package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: tctp/internal/sim
cpu: Example CPU
BenchmarkEngine-8      	 5227681	       229.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngine-8      	 5192782	       231.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngine-8      	 5203412	       230.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineCancel-8	 3000000	       400.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig7DCDT-8    	       2	 600000000 ns/op
PASS
ok  	tctp/internal/sim	2.153s
`

func TestParseBench(t *testing.T) {
	m, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	eng, ok := m["BenchmarkEngine"]
	if !ok {
		t.Fatalf("BenchmarkEngine missing (GOMAXPROCS suffix not stripped?): %v", m)
	}
	if n := len(eng["ns/op"]); n != 3 {
		t.Fatalf("%d ns/op samples, want the 3 -count runs", n)
	}
	if eng["ns/op"][0] != 229 || eng["allocs/op"][2] != 0 {
		t.Fatalf("samples %v", eng)
	}
	if len(m["BenchmarkFig7DCDT"]["ns/op"]) != 1 {
		t.Fatalf("Fig7 samples %v", m["BenchmarkFig7DCDT"])
	}
}

// bench renders a synthetic -count series for one benchmark.
func bench(name string, nsop []float64, allocs float64) string {
	var sb strings.Builder
	for _, v := range nsop {
		fmt.Fprintf(&sb, "%s-8\t1000\t%g ns/op\t0 B/op\t%g allocs/op\n", name, v, allocs)
	}
	return sb.String()
}

func mustParse(t *testing.T, s string) map[string]map[string][]float64 {
	t.Helper()
	m, err := parseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCompareVerdicts(t *testing.T) {
	gateRe := regexp.MustCompile("^BenchmarkEngine")
	base := mustParse(t, bench("BenchmarkEngine", []float64{100, 101, 102, 100, 101, 102}, 0))

	cases := []struct {
		name string
		head string
		fail bool
	}{
		// Same performance: passes.
		{"steady", bench("BenchmarkEngine", []float64{101, 100, 102, 101, 100, 102}, 0), false},
		// +50% time/op with tight CIs: significant regression.
		{"slower", bench("BenchmarkEngine", []float64{150, 151, 152, 150, 151, 152}, 0), true},
		// +10% is under the 15% threshold even when significant.
		{"under-threshold", bench("BenchmarkEngine", []float64{110, 111, 112, 110, 111, 112}, 0), false},
		// A large but noisy slowdown (overlapping CIs) does not fail.
		{"noisy", bench("BenchmarkEngine", []float64{60, 250, 60, 250, 60, 250}, 0), false},
		// Any alloc/op increase fails, however small.
		{"allocs", bench("BenchmarkEngine", []float64{100, 101, 102, 100, 101, 102}, 1), true},
		// 40% faster: improvement, passes.
		{"faster", bench("BenchmarkEngine", []float64{60, 61, 62, 60, 61, 62}, 0), false},
	}
	for _, tc := range cases {
		_, failed := compare(base, mustParse(t, tc.head), gateRe, 0.15)
		if failed != tc.fail {
			t.Errorf("%s: failed = %v, want %v", tc.name, failed, tc.fail)
		}
	}
}

func TestCompareUngatedBenchmarksNeverFail(t *testing.T) {
	gateRe := regexp.MustCompile("^BenchmarkEngine$")
	base := mustParse(t, bench("BenchmarkFig7DCDT", []float64{100, 100, 100}, 0))
	head := mustParse(t, bench("BenchmarkFig7DCDT", []float64{900, 900, 900}, 5))
	cs, failed := compare(base, head, gateRe, 0.15)
	if failed {
		t.Fatal("ungated benchmark failed the gate")
	}
	if len(cs) == 0 || cs[0].Gated {
		t.Fatalf("comparisons %+v", cs)
	}
}

func TestCompareMissingGatedUnitFails(t *testing.T) {
	// Dropping b.ReportAllocs() removes the allocs/op samples from the
	// head run; that must not dodge the allocation gate.
	gateRe := regexp.MustCompile("^BenchmarkEngine")
	base := mustParse(t, bench("BenchmarkEngine", []float64{100, 100, 100}, 0))
	head := mustParse(t, "BenchmarkEngine-8\t1000\t100 ns/op\nBenchmarkEngine-8\t1000\t100 ns/op\n")
	cs, failed := compare(base, head, gateRe, 0.15)
	if !failed {
		t.Fatal("dropping the allocs/op metric dodged the gate")
	}
	found := false
	for _, c := range cs {
		if c.Unit == "allocs/op" && c.Regression && c.Note != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing-unit verdict absent: %+v", cs)
	}
}

func TestCompareMissingGatedBenchmarkFails(t *testing.T) {
	gateRe := regexp.MustCompile("^BenchmarkEngine")
	base := mustParse(t, bench("BenchmarkEngine", []float64{100, 100, 100}, 0))
	head := mustParse(t, bench("BenchmarkOther", []float64{100, 100, 100}, 0))
	_, failed := compare(base, head, gateRe, 0.15)
	if !failed {
		t.Fatal("deleting the gated benchmark dodged the gate")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.txt")
	headPath := filepath.Join(dir, "head.txt")
	jsonPath := filepath.Join(dir, "BENCH_engine.json")
	if err := os.WriteFile(basePath, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(headPath, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run(basePath, headPath, "^BenchmarkEngine", 0.15, jsonPath, &out); err != nil {
		t.Fatalf("identical runs failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkEngine") {
		t.Fatalf("report missing benchmark:\n%s", out.String())
	}
	var rep report
	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Failed || len(rep.Benchmarks) == 0 {
		t.Fatalf("report %+v", rep)
	}

	// A regressed head fails with a non-zero exit path.
	slow := strings.ReplaceAll(sampleBench, "229.0", "429.0")
	slow = strings.ReplaceAll(slow, "231.0", "431.0")
	slow = strings.ReplaceAll(slow, "230.0", "430.0")
	if err := os.WriteFile(headPath, []byte(slow), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(basePath, headPath, "^BenchmarkEngine$", 0.15, "", &bytes.Buffer{}); err == nil {
		t.Fatal("86% slowdown passed the gate")
	}

	// Head-only mode summarizes without failing.
	if err := run("", headPath, "^BenchmarkEngine", 0.15, jsonPath, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	// Error paths: missing head, empty file, bad regexp.
	if err := run("", "", ".", 0.15, "", &bytes.Buffer{}); err == nil {
		t.Fatal("missing -head accepted")
	}
	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, []byte("PASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", empty, ".", 0.15, "", &bytes.Buffer{}); err == nil {
		t.Fatal("empty bench file accepted")
	}
	if err := run("", headPath, "(", 0.15, "", &bytes.Buffer{}); err == nil {
		t.Fatal("bad regexp accepted")
	}
}

// TestJSONVerdict pins the machine-readable artifact: a top-level
// pass/fail/head-only verdict plus per-(benchmark, unit) verdicts, and
// the "-" sink streaming the same JSON to stdout.
func TestJSONVerdict(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.txt")
	headPath := filepath.Join(dir, "head.txt")
	jsonPath := filepath.Join(dir, "out.json")
	if err := os.WriteFile(basePath, []byte(bench("BenchmarkEngine", []float64{100, 101, 102}, 0)), 0o644); err != nil {
		t.Fatal(err)
	}

	load := func(t *testing.T) report {
		t.Helper()
		var rep report
		b, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(b, &rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}

	// Clean head: verdict pass, per-benchmark verdicts pass.
	if err := os.WriteFile(headPath, []byte(bench("BenchmarkEngine", []float64{100, 101, 102}, 0)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(basePath, headPath, "^BenchmarkEngine", 0.15, jsonPath, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	rep := load(t)
	if rep.Verdict != "pass" {
		t.Fatalf("clean verdict %q", rep.Verdict)
	}
	for _, c := range rep.Benchmarks {
		// Gated units judge pass; ungated ones (B/op) stay info.
		if want := map[bool]string{true: "pass", false: "info"}[c.Gated]; c.Verdict != want {
			t.Fatalf("clean per-benchmark verdict %+v, want %q", c, want)
		}
	}

	// Regressed head: verdict fail, the ns/op row says regression.
	if err := os.WriteFile(headPath, []byte(bench("BenchmarkEngine", []float64{200, 201, 202}, 0)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(basePath, headPath, "^BenchmarkEngine", 0.15, jsonPath, &bytes.Buffer{}); err == nil {
		t.Fatal("regressed head passed")
	}
	rep = load(t)
	if rep.Verdict != "fail" || !rep.Failed {
		t.Fatalf("regressed verdict %q failed=%v", rep.Verdict, rep.Failed)
	}
	found := false
	for _, c := range rep.Benchmarks {
		if c.Unit == "ns/op" && c.Verdict == "regression" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no regression verdict in %+v", rep.Benchmarks)
	}

	// Head-only mode: verdict head-only, rows informational.
	if err := run("", headPath, "^BenchmarkEngine", 0.15, jsonPath, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	rep = load(t)
	if rep.Verdict != "head-only" || rep.Failed {
		t.Fatalf("head-only verdict %q failed=%v", rep.Verdict, rep.Failed)
	}
	for _, c := range rep.Benchmarks {
		if c.Verdict != "info" {
			t.Fatalf("head-only per-benchmark verdict %+v", c)
		}
	}

	// "-" streams the artifact to the writer.
	var out bytes.Buffer
	if err := run("", headPath, "^BenchmarkEngine", 0.15, "-", &out); err != nil {
		t.Fatal(err)
	}
	idx := strings.Index(out.String(), "{")
	if idx < 0 {
		t.Fatalf("no JSON on stdout:\n%s", out.String())
	}
	var streamed report
	if err := json.Unmarshal(out.Bytes()[idx:], &streamed); err != nil {
		t.Fatalf("stdout artifact unparsable: %v\n%s", err, out.String())
	}
	if streamed.Verdict != "head-only" {
		t.Fatalf("streamed verdict %q", streamed.Verdict)
	}
}

// TestHistory folds two successive -json artifacts into the
// per-benchmark time-series table with a delta column.
func TestHistory(t *testing.T) {
	dir := t.TempDir()
	writeArtifact := func(name, bench string) string {
		headPath := filepath.Join(dir, name+".txt")
		jsonPath := filepath.Join(dir, name+".json")
		if err := os.WriteFile(headPath, []byte(bench), 0o644); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := run("", headPath, "^BenchmarkEngine", 0.15, jsonPath, &out); err != nil {
			t.Fatal(err)
		}
		return jsonPath
	}
	a := writeArtifact("BENCH_1", "BenchmarkEngine-8   100   1000 ns/op   2 allocs/op\n")
	b := writeArtifact("BENCH_2", "BenchmarkEngine-8   100   1100 ns/op   2 allocs/op\n")

	var out bytes.Buffer
	if err := runHistory([]string{a, b}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "== BenchmarkEngine ns/op ==") ||
		!strings.Contains(got, "== BenchmarkEngine allocs/op ==") {
		t.Fatalf("history misses a series header:\n%s", got)
	}
	if !strings.Contains(got, "+10.0%") {
		t.Fatalf("history misses the delta against the previous build:\n%s", got)
	}

	if err := runHistory(nil, &out); err == nil {
		t.Fatal("history with no artifacts accepted")
	}
	if err := runHistory([]string{filepath.Join(dir, "missing.json")}, &out); err == nil {
		t.Fatal("unreadable artifact accepted")
	}
}
