package main

// The qualitygate mode: benchgate's solution-quality twin. Where the
// bench gate judges time/op against a base run, the quality gate
// judges the `quality` study's approximation-ratio CSV against a
// committed golden fixture. Three ways to fail:
//
//   - a head ratio below 1.0 — the reference bound (or the solver
//     under it) is wrong, regardless of any fixture;
//   - a head ratio above the golden ratio by more than the tolerance
//     — the planner's solution quality regressed;
//   - a (preset, algorithm, column) present in the golden fixture but
//     missing from the head run — dropping a rated planner must not
//     dodge the gate.
//
// Ratios shrinking (closer to optimal) pass and are reported as
// improvements; refresh the fixture to lock them in. The study's
// output is byte-deterministic, so the tolerance only absorbs
// intentional cross-PR drift (e.g. a retuned heuristic), not noise.

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// ratioKey identifies one gated value: a study row and ratio column.
type ratioKey struct {
	Preset    string
	Algorithm string
	Column    string
}

func (k ratioKey) String() string {
	return k.Preset + "/" + k.Algorithm + " " + k.Column
}

// readRatios parses a quality-study CSV (header row + data rows) into
// its ratio values, keyed by (preset, algorithm, ratio column). Every
// column whose name starts with "ratio" is gated.
func readRatios(path string) (map[ratioKey]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("%s holds no quality rows", path)
	}
	header := rows[0]
	preset, algorithm := -1, -1
	var ratioCols []int
	for i, name := range header {
		switch {
		case name == "preset":
			preset = i
		case name == "algorithm":
			algorithm = i
		case strings.HasPrefix(name, "ratio"):
			ratioCols = append(ratioCols, i)
		}
	}
	if preset < 0 || algorithm < 0 || len(ratioCols) == 0 {
		return nil, fmt.Errorf("%s: header %v is not a quality-study CSV (want preset, algorithm, ratio_* columns)", path, header)
	}
	out := make(map[ratioKey]float64)
	for _, row := range rows[1:] {
		for _, c := range ratioCols {
			v, perr := strconv.ParseFloat(row[c], 64)
			if perr != nil {
				return nil, fmt.Errorf("%s: row %v: bad ratio %q", path, row, row[c])
			}
			out[ratioKey{row[preset], row[algorithm], header[c]}] = v
		}
	}
	return out, nil
}

// runQualityGate compares the head quality CSV against the golden
// fixture and returns an error when any gated ratio fails.
func runQualityGate(goldenPath, headPath string, tolerance float64, w io.Writer) error {
	if headPath == "" {
		return fmt.Errorf("-head is required (the freshly generated quality CSV)")
	}
	if tolerance < 0 {
		return fmt.Errorf("-quality-tolerance %g must be non-negative", tolerance)
	}
	golden, err := readRatios(goldenPath)
	if err != nil {
		return err
	}
	head, err := readRatios(headPath)
	if err != nil {
		return err
	}

	keys := make([]ratioKey, 0, len(golden))
	for k := range golden {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })

	failures := 0
	for _, k := range keys {
		want := golden[k]
		got, ok := head[k]
		switch {
		case !ok:
			failures++
			fmt.Fprintf(w, "✗ %-40s missing from head run (golden %.4f)\n", k, want)
		case got < 1:
			failures++
			fmt.Fprintf(w, "✗ %-40s ratio %.4f < 1.0 — reference bound violated\n", k, got)
		case got > want*(1+tolerance):
			failures++
			fmt.Fprintf(w, "✗ %-40s %.4f → %.4f (+%.2f%%, tolerance %.2f%%)\n",
				k, want, got, 100*(got-want)/want, 100*tolerance)
		case got < want:
			fmt.Fprintf(w, "✓ %-40s %.4f → %.4f (improved; refresh the fixture to lock in)\n",
				k, want, got)
		default:
			fmt.Fprintf(w, "✓ %-40s %.4f → %.4f\n", k, want, got)
		}
	}
	// Head-only rows (a planner added without a golden entry) never
	// fail, but surface so the fixture gets extended.
	for k, got := range head {
		if _, ok := golden[k]; !ok {
			if got < 1 {
				failures++
				fmt.Fprintf(w, "✗ %-40s ratio %.4f < 1.0 — reference bound violated\n", k, got)
			} else {
				fmt.Fprintf(w, "  %-40s %.4f (no golden entry; extend the fixture)\n", k, got)
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("solution-quality regression: %d gated ratio(s) failed against %s (tolerance %g%%)",
			failures, goldenPath, 100*tolerance)
	}
	return nil
}
