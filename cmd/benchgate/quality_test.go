package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goldenCSV = `preset,algorithm,ratio_tour,ratio_dcdt,avg DCDT (s),tour length (m)
paper51,btctp,1.0755,1.1126,510.67,3561.67
paper51,chb,1.1968,1.2441,570.92,3963.26
clustered,btctp,1.0420,1.0811,495.11,3450.80
`

func writeCSV(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestQualityGatePassesIdenticalHead(t *testing.T) {
	dir := t.TempDir()
	golden := writeCSV(t, dir, "golden.csv", goldenCSV)
	head := writeCSV(t, dir, "head.csv", goldenCSV)
	var sb strings.Builder
	if err := runQualityGate(golden, head, 0.02, &sb); err != nil {
		t.Fatalf("identical head failed: %v\n%s", err, sb.String())
	}
}

// The acceptance criterion: a deliberately seeded ratio regression
// must fail the gate.
func TestQualityGateFailsSeededRegression(t *testing.T) {
	dir := t.TempDir()
	golden := writeCSV(t, dir, "golden.csv", goldenCSV)
	// btctp's tour ratio on paper51 regresses 1.0755 → 1.2000 (+11.6%,
	// far past the 2% tolerance).
	head := writeCSV(t, dir, "head.csv",
		strings.Replace(goldenCSV, "paper51,btctp,1.0755", "paper51,btctp,1.2000", 1))
	var sb strings.Builder
	err := runQualityGate(golden, head, 0.02, &sb)
	if err == nil {
		t.Fatalf("seeded regression passed:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "paper51/btctp ratio_tour") {
		t.Fatalf("failure does not name the regressed ratio:\n%s", sb.String())
	}
}

func TestQualityGateToleranceAbsorbsSmallDrift(t *testing.T) {
	dir := t.TempDir()
	golden := writeCSV(t, dir, "golden.csv", goldenCSV)
	// +0.9% drift sits inside the 2% tolerance.
	head := writeCSV(t, dir, "head.csv",
		strings.Replace(goldenCSV, "paper51,btctp,1.0755", "paper51,btctp,1.0850", 1))
	var sb strings.Builder
	if err := runQualityGate(golden, head, 0.02, &sb); err != nil {
		t.Fatalf("in-tolerance drift failed: %v\n%s", err, sb.String())
	}
}

// A ratio below 1.0 is a bound violation and fails even when it
// "beats" the golden value.
func TestQualityGateFailsSubUnityRatio(t *testing.T) {
	dir := t.TempDir()
	golden := writeCSV(t, dir, "golden.csv", goldenCSV)
	head := writeCSV(t, dir, "head.csv",
		strings.Replace(goldenCSV, "paper51,btctp,1.0755", "paper51,btctp,0.9500", 1))
	var sb strings.Builder
	if err := runQualityGate(golden, head, 0.02, &sb); err == nil {
		t.Fatalf("sub-unity ratio passed:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "reference bound violated") {
		t.Fatalf("failure does not flag the bound violation:\n%s", sb.String())
	}
}

// Dropping a rated planner from the head run must not dodge the gate.
func TestQualityGateFailsMissingRow(t *testing.T) {
	dir := t.TempDir()
	golden := writeCSV(t, dir, "golden.csv", goldenCSV)
	var kept []string
	for _, line := range strings.Split(strings.TrimSpace(goldenCSV), "\n") {
		if !strings.HasPrefix(line, "paper51,chb") {
			kept = append(kept, line)
		}
	}
	head := writeCSV(t, dir, "head.csv", strings.Join(kept, "\n")+"\n")
	var sb strings.Builder
	if err := runQualityGate(golden, head, 0.02, &sb); err == nil {
		t.Fatalf("missing planner row passed:\n%s", sb.String())
	}
}

// A new planner in head without a golden entry is informational, not
// a failure — unless its ratio violates the 1.0 floor.
func TestQualityGateHeadOnlyRows(t *testing.T) {
	dir := t.TempDir()
	golden := writeCSV(t, dir, "golden.csv", goldenCSV)
	head := writeCSV(t, dir, "head.csv",
		goldenCSV+"clustered,wtctp,1.1500,1.2000,600.00,4000.00\n")
	var sb strings.Builder
	if err := runQualityGate(golden, head, 0.02, &sb); err != nil {
		t.Fatalf("head-only row failed: %v\n%s", err, sb.String())
	}
	head2 := writeCSV(t, dir, "head2.csv",
		goldenCSV+"clustered,wtctp,0.8000,1.2000,600.00,4000.00\n")
	sb.Reset()
	if err := runQualityGate(golden, head2, 0.02, &sb); err == nil {
		t.Fatalf("sub-unity head-only row passed:\n%s", sb.String())
	}
}

// The gate must refuse CSVs that are not quality-study output rather
// than silently passing an empty comparison.
func TestQualityGateRejectsForeignCSV(t *testing.T) {
	dir := t.TempDir()
	golden := writeCSV(t, dir, "golden.csv", goldenCSV)
	head := writeCSV(t, dir, "head.csv", "a,b\n1,2\n")
	var sb strings.Builder
	if err := runQualityGate(golden, head, 0.02, &sb); err == nil {
		t.Fatal("foreign CSV accepted")
	}
}
