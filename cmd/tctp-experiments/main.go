// Command tctp-experiments regenerates the paper's evaluation: every
// figure (Fig. 7–10), the §V energy study, and the design ablations.
//
// Usage:
//
//	tctp-experiments -list
//	tctp-experiments -run fig7
//	tctp-experiments -run all -seeds 20
//	tctp-experiments -run fig8 -seeds 5 -out fig8.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tctp/internal/experiment"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list registered experiments and exit")
		run     = flag.String("run", "all", "experiment name, or 'all'")
		seeds   = flag.Int("seeds", 20, "replications per data point (paper: 20)")
		base    = flag.Uint64("base-seed", 0, "base replication seed")
		workers = flag.Int("workers", 0, "parallel replications (0 = GOMAXPROCS)")
		out     = flag.String("out", "", "write results to this file instead of stdout")
	)
	flag.Parse()

	if *list {
		for _, name := range experiment.Names() {
			fmt.Println(name)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tctp-experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	params := experiment.Params{Seeds: *seeds, BaseSeed: *base, Workers: *workers}
	names := []string{*run}
	if *run == "all" {
		names = experiment.Names()
	}

	if err := runAll(names, params, w); err != nil {
		fmt.Fprintln(os.Stderr, "tctp-experiments:", err)
		os.Exit(1)
	}
}

// runAll executes the named experiments in order, writing each
// rendered result with a header and a timing footer.
func runAll(names []string, params experiment.Params, w io.Writer) error {
	for _, name := range names {
		start := time.Now()
		fmt.Fprintf(w, "### %s (%d replications)\n", name, params.Seeds)
		if err := experiment.Run(name, params, w); err != nil {
			return err
		}
		fmt.Fprintf(w, "[%s took %s]\n%s\n", name,
			time.Since(start).Round(time.Millisecond), strings.Repeat("-", 60))
	}
	return nil
}
