// Command tctp-experiments regenerates the paper's evaluation: every
// figure (Fig. 7–10), the §V energy study, and the design ablations.
// Each experiment is a declarative sweep executed by internal/sweep,
// so cells and replications share one worker pool.
//
// Usage:
//
//	tctp-experiments -list
//	tctp-experiments -run fig7
//	tctp-experiments -run all -seeds 20 -progress
//	tctp-experiments -run fig8 -seeds 5 -out fig8.csv -format csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tctp/internal/experiment"
	"tctp/internal/sweep"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list registered experiments and exit")
		run      = flag.String("run", "all", "experiment name, or 'all'")
		seeds    = flag.Int("seeds", 20, "replications per data point (paper: 20)")
		base     = flag.Uint64("base-seed", 0, "base replication seed")
		workers  = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		out      = flag.String("out", "", "write results to this file instead of stdout")
		format   = flag.String("format", "text", "output format: text, csv, json")
		progress = flag.Bool("progress", false, "report sweep progress on stderr")
		ckptDir  = flag.String("checkpoint", "", "checkpoint directory: sweeps persist fold state here and an interrupted rerun resumes")
	)
	flag.Parse()

	if *list {
		for _, name := range experiment.Names() {
			fmt.Println(name)
		}
		return
	}

	f, err := experiment.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tctp-experiments:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tctp-experiments:", err)
			os.Exit(1)
		}
		defer file.Close()
		w = file
	}

	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "tctp-experiments:", err)
			os.Exit(1)
		}
	}
	params := experiment.Params{
		Seeds: *seeds, BaseSeed: *base, Workers: *workers, Checkpoint: *ckptDir,
	}
	names := []string{*run}
	if *run == "all" {
		if f != experiment.FormatText {
			// Concatenating heterogeneous CSV/JSON documents on one
			// stream would be unparseable; machine formats need one
			// experiment per invocation.
			fmt.Fprintln(os.Stderr,
				"tctp-experiments: -format csv/json requires a single -run experiment")
			os.Exit(1)
		}
		names = experiment.Names()
	}

	if err := runAll(names, params, w, f, *progress, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tctp-experiments:", err)
		os.Exit(1)
	}
}

// runAll executes the named experiments in order. In text format each
// result gets a header and a timing footer; machine formats (csv,
// json) stay clean of decoration so the output pipes straight into
// other tools.
func runAll(names []string, params experiment.Params, w io.Writer,
	f experiment.Format, progress bool, errw io.Writer) error {
	for _, name := range names {
		// The in-place progress line is terminated once the experiment
		// returns, not at RunsDone == RunsTotal: an experiment may run
		// several sweeps, and under adaptive replication the total is a
		// ceiling early-stopped cells never reach.
		progressed := false
		if progress {
			name := name
			params.Progress = func(p sweep.Progress) {
				progressed = true
				fmt.Fprintf(errw, "\r%s: cells %d/%d runs %d/%d",
					name, p.CellsDone, p.CellsTotal, p.RunsDone, p.RunsTotal)
			}
		}
		start := time.Now()
		if f == experiment.FormatText {
			fmt.Fprintf(w, "### %s (%d replications)\n", name, params.Seeds)
		}
		err := experiment.RunFormat(name, params, w, f)
		if progressed {
			fmt.Fprintln(errw)
		}
		if err != nil {
			return err
		}
		if f == experiment.FormatText {
			fmt.Fprintf(w, "[%s took %s]\n%s\n", name,
				time.Since(start).Round(time.Millisecond), strings.Repeat("-", 60))
		}
	}
	return nil
}
