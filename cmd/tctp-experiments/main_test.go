package main

import (
	"bytes"
	"strings"
	"testing"

	"tctp/internal/experiment"
)

func TestRunAllSingle(t *testing.T) {
	var buf bytes.Buffer
	params := experiment.Params{Seeds: 1}
	if err := runAll([]string{"a3-init"}, params, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "### a3-init (1 replications)") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "B-TCTP") {
		t.Fatalf("missing result body:\n%s", out)
	}
	if !strings.Contains(out, "took") {
		t.Fatalf("missing timing footer:\n%s", out)
	}
}

func TestRunAllUnknownName(t *testing.T) {
	var buf bytes.Buffer
	err := runAll([]string{"no-such-experiment"}, experiment.Params{Seeds: 1}, &buf)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunAllSequence(t *testing.T) {
	var buf bytes.Buffer
	params := experiment.Params{Seeds: 1}
	if err := runAll([]string{"a3-init", "a5-traversal"}, params, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	first := strings.Index(out, "### a3-init")
	second := strings.Index(out, "### a5-traversal")
	if first == -1 || second == -1 || second < first {
		t.Fatalf("experiments out of order:\n%s", out)
	}
}
