package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tctp/internal/experiment"
)

func TestRunAllSingle(t *testing.T) {
	var buf bytes.Buffer
	params := experiment.Params{Seeds: 1}
	if err := runAll([]string{"a3-init"}, params, &buf,
		experiment.FormatText, false, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "### a3-init (1 replications)") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "B-TCTP") {
		t.Fatalf("missing result body:\n%s", out)
	}
	if !strings.Contains(out, "took") {
		t.Fatalf("missing timing footer:\n%s", out)
	}
}

func TestRunAllUnknownName(t *testing.T) {
	var buf bytes.Buffer
	err := runAll([]string{"no-such-experiment"}, experiment.Params{Seeds: 1}, &buf,
		experiment.FormatText, false, &bytes.Buffer{})
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunAllSequence(t *testing.T) {
	var buf bytes.Buffer
	params := experiment.Params{Seeds: 1}
	if err := runAll([]string{"a3-init", "a5-traversal"}, params, &buf,
		experiment.FormatText, false, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	first := strings.Index(out, "### a3-init")
	second := strings.Index(out, "### a5-traversal")
	if first == -1 || second == -1 || second < first {
		t.Fatalf("experiments out of order:\n%s", out)
	}
}

func TestRunAllCSVStaysClean(t *testing.T) {
	var buf bytes.Buffer
	params := experiment.Params{Seeds: 1}
	if err := runAll([]string{"a3-init"}, params, &buf,
		experiment.FormatCSV, false, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "###") || strings.Contains(out, "took") {
		t.Fatalf("decoration leaked into CSV:\n%s", out)
	}
	if !strings.HasPrefix(out, "variant,") {
		t.Fatalf("missing CSV header:\n%s", out)
	}
}

func TestRunAllJSON(t *testing.T) {
	var buf bytes.Buffer
	params := experiment.Params{Seeds: 1}
	if err := runAll([]string{"a3-init"}, params, &buf,
		experiment.FormatJSON, false, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var table struct {
		Title string
		Rows  [][]string
	}
	if err := json.Unmarshal(buf.Bytes(), &table); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if table.Title == "" || len(table.Rows) != 3 {
		t.Fatalf("table %+v", table)
	}
}

func TestRunAllProgress(t *testing.T) {
	var buf, errw bytes.Buffer
	params := experiment.Params{Seeds: 2}
	if err := runAll([]string{"a3-init"}, params, &buf,
		experiment.FormatText, true, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "a3-init: cells") ||
		!strings.Contains(errw.String(), "runs 6/6") {
		t.Fatalf("progress missing:\n%q", errw.String())
	}
}
