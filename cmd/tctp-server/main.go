// Command tctp-server runs the sweep service: a long-lived HTTP/JSON
// daemon that executes tctp-sweep requests through a shared
// content-addressed cell cache (internal/sweep/cache, served by
// internal/sweep/server). Submitting the same — or an overlapping —
// sweep twice costs one simulation; results are byte-identical to a
// local `tctp-sweep` run of the same flags.
//
// Usage:
//
//	tctp-server -addr :8080
//	tctp-server -addr :8080 -cache-dir /var/cache/tctp -cache-bytes 1073741824
//	tctp-server -addr :8080 -cache-dir /var/cache/tctp -cache-dir-bytes 10737418240
//	tctp-server -addr :8080 -gate 8 -max-sweeps 4
//
//	# then, from any client machine:
//	tctp-sweep -alg btctp -preset paper51 -seeds 5 -server http://host:8080 > sweep.csv
//	curl -s http://host:8080/stats
//
// Endpoints: POST /sweeps, GET /sweeps/{id}, GET /sweeps/{id}/events
// (NDJSON), GET /sweeps/{id}/result.csv, GET /sweeps/{id}/result.jsonl,
// GET /stats. See internal/sweep/server for semantics — admission
// control (429 + Retry-After beyond -max-sweeps), the -gate compute
// bound shared by all sweeps, and single-flight dedup of concurrent
// identical submissions.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"runtime"

	"tctp/internal/sweep/cache"
	"tctp/internal/sweep/server"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		cacheDir      = flag.String("cache-dir", "", "directory for the persistent cell-cache layer (empty = memory only)")
		cacheBytes    = flag.Int64("cache-bytes", cache.DefaultMaxBytes, "in-memory cell-cache budget in bytes")
		cacheDirBytes = flag.Int64("cache-dir-bytes", 0, "disk cell-cache budget in bytes; oldest entries are evicted past it (0 = unbounded)")
		gate          = flag.Int("gate", runtime.GOMAXPROCS(0), "max cell simulations running at once across all sweeps")
		maxSweeps     = flag.Int("max-sweeps", 8, "max sweeps in flight before POST /sweeps answers 429")
		parallel      = flag.Int("parallel", 0, "per-sweep cell-resolution concurrency (0 = GOMAXPROCS)")
	)
	flag.Parse()

	store, err := cache.New(cache.Options{
		MaxBytes:    *cacheBytes,
		Dir:         *cacheDir,
		DirMaxBytes: *cacheDirBytes,
		Gate:        *gate,
	})
	if err != nil {
		log.Fatalln("tctp-server:", err)
	}
	srv, err := server.New(server.Config{
		Store:     store,
		MaxSweeps: *maxSweeps,
		Parallel:  *parallel,
	})
	if err != nil {
		log.Fatalln("tctp-server:", err)
	}
	persistence := "memory-only cache"
	if *cacheDir != "" {
		persistence = fmt.Sprintf("cache dir %s", *cacheDir)
		if *cacheDirBytes > 0 {
			persistence += fmt.Sprintf(" (≤ %d bytes)", *cacheDirBytes)
		}
	}
	log.Printf("tctp-server: listening on %s (%s, %d-byte budget, gate %d, max %d sweeps)",
		*addr, persistence, *cacheBytes, *gate, *maxSweeps)
	log.Fatalln("tctp-server:", http.ListenAndServe(*addr, srv))
}
