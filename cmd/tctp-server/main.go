// Command tctp-server runs the sweep service: a long-lived HTTP/JSON
// daemon that executes tctp-sweep requests through a shared
// content-addressed cell cache (internal/sweep/cache, served by
// internal/sweep/server). Submitting the same — or an overlapping —
// sweep twice costs one simulation; results are byte-identical to a
// local `tctp-sweep` run of the same flags.
//
// Usage:
//
//	tctp-server -addr :8080
//	tctp-server -addr :8080 -cache-dir /var/cache/tctp -cache-bytes 1073741824
//	tctp-server -addr :8080 -cache-dir /var/cache/tctp -cache-dir-bytes 10737418240
//	tctp-server -addr :8080 -gate 8 -max-sweeps 4
//	tctp-server -addr :8080 -workers remote -lease-ttl 30s
//
//	# then, from any client machine:
//	tctp-sweep -alg btctp -preset paper51 -seeds 5 -server http://host:8080 > sweep.csv
//	curl -s http://host:8080/stats
//
//	# and, with -workers remote, from each compute machine:
//	tctp-worker -server http://host:8080
//
// Endpoints: POST /sweeps, GET /sweeps/{id}, GET /sweeps/{id}/events
// (NDJSON), GET /sweeps/{id}/result.csv, GET /sweeps/{id}/result.jsonl,
// GET /stats, and — with -workers remote — POST /workers/lease,
// /workers/result, /workers/heartbeat for the tctp-worker fleet. See
// internal/sweep/server for semantics — admission control (429 +
// Retry-After beyond -max-sweeps), the -gate compute bound shared by
// all sweeps, single-flight dedup of concurrent identical submissions,
// and internal/sweep/dispatch for the cache-aware lease scheduler.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"time"

	"tctp/internal/sweep/cache"
	"tctp/internal/sweep/dispatch"
	"tctp/internal/sweep/server"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		cacheDir      = flag.String("cache-dir", "", "directory for the persistent cell-cache layer (empty = memory only)")
		cacheBytes    = flag.Int64("cache-bytes", cache.DefaultMaxBytes, "in-memory cell-cache budget in bytes")
		cacheDirBytes = flag.Int64("cache-dir-bytes", 0, "disk cell-cache budget in bytes; oldest entries are evicted past it (0 = unbounded)")
		gate          = flag.Int("gate", runtime.GOMAXPROCS(0), "max cell simulations running at once across all sweeps")
		maxSweeps     = flag.Int("max-sweeps", 8, "max sweeps in flight before POST /sweeps answers 429")
		parallel      = flag.Int("parallel", 0, "per-sweep cell-resolution concurrency (0 = GOMAXPROCS)")
		workers       = flag.String("workers", "local", "where cells compute: local (in-process) or remote (leased to a tctp-worker fleet)")
		leaseTTL      = flag.Duration("lease-ttl", 30*time.Second, "remote-worker lease deadline; an unreported cell is reassigned past it")
	)
	flag.Parse()

	store, err := cache.New(cache.Options{
		MaxBytes:    *cacheBytes,
		Dir:         *cacheDir,
		DirMaxBytes: *cacheDirBytes,
		Gate:        *gate,
	})
	if err != nil {
		log.Fatalln("tctp-server:", err)
	}
	cfg := server.Config{
		Store:     store,
		MaxSweeps: *maxSweeps,
		Parallel:  *parallel,
	}
	switch *workers {
	case "local":
	case "remote":
		cfg.Dispatch, err = dispatch.New(dispatch.Options{Store: store, LeaseTTL: *leaseTTL})
		if err != nil {
			log.Fatalln("tctp-server:", err)
		}
	default:
		log.Fatalf("tctp-server: -workers %q: want local or remote", *workers)
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatalln("tctp-server:", err)
	}
	persistence := "memory-only cache"
	if *cacheDir != "" {
		persistence = fmt.Sprintf("cache dir %s", *cacheDir)
		if *cacheDirBytes > 0 {
			persistence += fmt.Sprintf(" (≤ %d bytes)", *cacheDirBytes)
		}
	}
	compute := "local compute"
	if cfg.Dispatch != nil {
		compute = fmt.Sprintf("remote workers, %s leases", *leaseTTL)
	}
	log.Printf("tctp-server: listening on %s (%s, %d-byte budget, gate %d, max %d sweeps, %s)",
		*addr, persistence, *cacheBytes, *gate, *maxSweeps, compute)
	log.Fatalln("tctp-server:", http.ListenAndServe(*addr, srv))
}
