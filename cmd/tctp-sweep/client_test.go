package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"tctp/internal/sweep/cache"
	"tctp/internal/sweep/dispatch"
	"tctp/internal/sweep/server"
	"tctp/internal/sweep/worker"
)

// startServer brings up an in-process tctp-server for client-mode
// tests.
func startServer(t *testing.T, cfg server.Config) *httptest.Server {
	t.Helper()
	if cfg.Store == nil {
		store, err := cache.New(cache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = store
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// TestClientModeByteIdentity: `-server URL` produces exactly the bytes
// a local run of the same flags produces, for both CSV and JSONL, and
// a repeat submission (served from cache) still matches.
func TestClientModeByteIdentity(t *testing.T) {
	ts := startServer(t, server.Config{})
	for _, format := range []string{"csv", "json"} {
		local := goldenConfig()
		local.Format = format
		var want, errw bytes.Buffer
		if err := run(local, &want, &errw); err != nil {
			t.Fatal(err)
		}

		for pass := 1; pass <= 2; pass++ {
			remote := local
			remote.Server = ts.URL
			var got, rerr bytes.Buffer
			if err := run(remote, &got, &rerr); err != nil {
				t.Fatalf("%s pass %d: %v", format, pass, err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("%s pass %d: client output diverged from local run:\n%s\nvs\n%s",
					format, pass, got.Bytes(), want.Bytes())
			}
			if !strings.Contains(rerr.String(), "submitted s") {
				t.Fatalf("%s pass %d: submit report missing:\n%s", format, pass, rerr.String())
			}
		}
	}
}

// TestClientModeProgress: -progress with -server follows the event
// stream; on a warm cache the summary reports cached cells.
func TestClientModeProgress(t *testing.T) {
	ts := startServer(t, server.Config{})
	cfg := goldenConfig()
	cfg.Server = ts.URL
	cfg.Progress = true

	var out, errw bytes.Buffer
	if err := run(cfg, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "local") || !strings.Contains(errw.String(), "done:") {
		t.Fatalf("cold progress summary missing:\n%s", errw.String())
	}

	var out2, errw2 bytes.Buffer
	if err := run(cfg, &out2, &errw2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw2.String(), "0 local") ||
		!strings.Contains(errw2.String(), "8 cached") {
		t.Fatalf("warm run should report all cells cached:\n%s", errw2.String())
	}
	if !bytes.Equal(out.Bytes(), out2.Bytes()) {
		t.Fatal("warm run output diverged from cold run")
	}
}

// TestClientModeRemoteWorkers: against a -workers remote server with a
// fleet attached, the client's bytes still match the local run and the
// -progress summary attributes cells to worker:<id>.
func TestClientModeRemoteWorkers(t *testing.T) {
	store, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := dispatch.New(dispatch.Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sched.Close)
	ts := startServer(t, server.Config{Store: store, Dispatch: sched})

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for _, id := range []string{"w1", "w2"} {
		done := make(chan struct{})
		go func(id string) {
			defer close(done)
			_ = worker.Run(ctx, worker.Options{Server: ts.URL, ID: id, Poll: time.Second})
		}(id)
		t.Cleanup(func() { cancel(); <-done })
	}

	local := goldenConfig()
	var want, lerr bytes.Buffer
	if err := run(local, &want, &lerr); err != nil {
		t.Fatal(err)
	}

	remote := local
	remote.Server = ts.URL
	remote.Progress = true
	var got, errw bytes.Buffer
	if err := run(remote, &got, &errw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("remote-fleet output diverged from local run:\n%s\nvs\n%s", got.Bytes(), want.Bytes())
	}
	summary := errw.String()
	if !regexp.MustCompile(`\d+ worker:w[12]`).MatchString(summary) {
		t.Fatalf("summary does not attribute cells to workers:\n%s", summary)
	}
	if !strings.Contains(summary, "0 local") {
		t.Fatalf("remote sweep reported local computes:\n%s", summary)
	}
}

// TestClientModeCapacity: a 429 from the server surfaces as a clear
// retry message, not a decode error.
func TestClientModeCapacity(t *testing.T) {
	ts := startServer(t, server.Config{MaxSweeps: -1, RetryAfter: 5})
	cfg := goldenConfig()
	cfg.Server = ts.URL
	err := run(cfg, &bytes.Buffer{}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "capacity") ||
		!strings.Contains(err.Error(), "retry after 5s") {
		t.Fatalf("err = %v, want capacity message with retry hint", err)
	}
}

// TestClientModeFlagErrors: flags the server cannot honor are refused
// client-side with messages naming the conflict.
func TestClientModeFlagErrors(t *testing.T) {
	ts := startServer(t, server.Config{})
	for name, mutate := range map[string]func(*config){
		"checkpoint": func(c *config) { c.Checkpoint = "ck.jsonl" },
		"resume":     func(c *config) { c.Checkpoint = "ck.jsonl"; c.Resume = true },
		"shard":      func(c *config) { c.Shard = "1/2" },
		"merge":      func(c *config) { c.Merge = "-"; c.MergeInputs = []string{"x.jsonl"} },
	} {
		cfg := goldenConfig()
		cfg.Server = ts.URL
		mutate(&cfg)
		err := run(cfg, &bytes.Buffer{}, &bytes.Buffer{})
		if err == nil || !strings.Contains(err.Error(), "-server conflicts") {
			t.Fatalf("%s: err = %v, want -server conflict", name, err)
		}
	}
	// table rendering is local-only.
	cfg := goldenConfig()
	cfg.Server = ts.URL
	cfg.Format = "table"
	err := run(cfg, &bytes.Buffer{}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), `format "table"`) {
		t.Fatalf("table format: err = %v", err)
	}
	// A bad sweep is rejected by the server and the message travels back.
	cfg = goldenConfig()
	cfg.Server = ts.URL
	cfg.Algs = "bogus"
	err = run(cfg, &bytes.Buffer{}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "submit rejected") {
		t.Fatalf("bad algorithm: err = %v", err)
	}
}

// TestRepShardsCheckpointMessage pins the guidance in the -rep-shards ×
// -checkpoint rejection: it must name both flags and point at the
// supported way to distribute a sweep (-shard i/n plus -merge).
func TestRepShardsCheckpointMessage(t *testing.T) {
	cfg := goldenConfig()
	cfg.RepShards = 2
	cfg.Checkpoint = "sweep.ckpt"
	err := run(cfg, &bytes.Buffer{}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("-rep-shards with -checkpoint accepted")
	}
	for _, want := range []string{"-rep-shards", "-checkpoint", "-shard i/n", "-merge"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("rejection %q does not mention %q", err, want)
		}
	}
}
