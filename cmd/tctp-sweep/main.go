// Command tctp-sweep runs a declarative parameter sweep through the
// internal/sweep engine: any subset of algorithms crossed with target
// counts, fleet sizes (or named heterogeneous fleets), mule speeds,
// placements and data workloads, every cell replicated and aggregated
// with streaming statistics. It is a thin Spec builder — scenario
// construction lives in internal/scenario, the grid execution,
// parallelism, and output formats in internal/sweep.
//
// Usage:
//
//	tctp-sweep -alg btctp -targets 10,20,30 -mules 2,4,8 -seeds 10 > sweep.csv
//	tctp-sweep -alg btctp,chb -speeds 1,2,4 -placements uniform,clusters -format json
//	tctp-sweep -alg btctp -fleets "4x2;2x1+2x3" -workloads off,on -format table
//	tctp-sweep -alg btctp -preset clustered -progress
//	tctp-sweep -alg btctp -preset clustered -partition kmeans:4   # C-BTCTP
//	tctp-sweep -alg btctp -workloads bursts -burst-hot 5
//	tctp-sweep -alg btctp -scenario world.json -seeds 20
//	tctp-sweep -alg btctp -seeds 50 -adaptive avg_dcdt_s:0.05
//	tctp-sweep -alg btctp -checkpoint sweep.ckpt          # interrupted?
//	tctp-sweep -alg btctp -checkpoint sweep.ckpt -resume  # …continue
//
//	# Distributed: run shard i of n per machine (same flags everywhere),
//	# then merge the shard checkpoints into the full, byte-identical CSV.
//	tctp-sweep -alg btctp -seeds 50 -shard 1/3 -checkpoint shard1.jsonl
//	tctp-sweep -alg btctp -seeds 50 -shard 2/3 -checkpoint shard2.jsonl
//	tctp-sweep -alg btctp -seeds 50 -shard 3/3 -checkpoint shard3.jsonl
//	tctp-sweep -alg btctp -seeds 50 -merge out.csv shard1.jsonl shard2.jsonl shard3.jsonl
//
// Long-running sweeps can be checkpointed (-checkpoint) and continued
// after an interruption (-resume) with byte-identical output, and
// -adaptive metric:relci[:min[:max]] stops each cell early once the
// metric's CI95 half-width falls below the relative target. -scenario
// loads a JSON scenario file (the internal/scenario model) supplying
// the field geometry and axis defaults, like -preset but from disk.
//
// -shard i/n runs the i-th of n contiguous deterministic cell ranges
// of the grid; every machine must be given the same sweep flags so the
// plans (and their sha256 fingerprints) agree. A shard's -checkpoint
// file is its mergeable artifact: -merge OUT rebuilds the whole sweep
// from the named shard files, refusing shards whose fingerprint does
// not match the flags, and writes the -format output (byte-identical
// to an unsharded run) to OUT, or to stdout when OUT is "-".
//
// Placements are the values accepted by field.ParsePlacement: uniform
// (the paper's §5.1 model), clusters (disconnected discs), grid
// (deterministic lattice), corridor (narrow central band), hotspot
// (one dense disc plus background). Fleets are "COUNTxSPEED[@BATTERY]"
// groups joined by "+", and several fleets separated by ";" form the
// fleet axis, replacing -mules and -speeds.
//
// -partition adds the target-partition axis: "none" keeps the
// algorithm's own single-circuit planning, "method:k[:alloc]" (methods
// kmeans, sectors; alloc length, count) runs the partitioned C-variant
// — B-TCTP cells become C-BTCTP, W-TCTP cells C-WTCTP — and the output
// gains a partition column, a groups metric, and per-group DCDT
// columns (group_dcdt_s_1..k). -workloads bursts layers the
// event-driven Poisson-burst workload (see -burst-*) instead of the
// periodic packet model.
//
// Cells that cannot run (more mules than targets+1, partitioned cells
// of algorithms without a partitioned variant, fewer mules than
// regions) are skipped and reported on stderr.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"tctp/internal/baseline"
	"tctp/internal/core"
	"tctp/internal/field"
	"tctp/internal/patrol"
	"tctp/internal/scenario"
	"tctp/internal/sweep"
	"tctp/internal/wsn"
)

func main() {
	var (
		algs       = flag.String("alg", "btctp", "comma-separated algorithms: btctp, wtctp, chb, sweep, random")
		targets    = flag.String("targets", "", "comma-separated target counts (default 10,20,30,40,50)")
		mules      = flag.String("mules", "", "comma-separated fleet sizes (default 2,4,6,8)")
		speeds     = flag.String("speeds", "", "comma-separated mule speeds in m/s (default 2)")
		fleets     = flag.String("fleets", "", `semicolon-separated fleet specs, e.g. "4x2;2x1+2x3" (replaces -mules and -speeds; combining them is an error)`)
		placements = flag.String("placements", "", "comma-separated placements: "+field.PlacementNames+" (default uniform)")
		workloads  = flag.String("workloads", "", "comma-separated workload axis values: off, on, bursts (default off)")
		wlGen      = flag.Float64("workload-gen", 60, "packet generation interval in seconds for -workloads on")
		wlBuf      = flag.Int("workload-buffer", 50, "node buffer capacity in packets for -workloads on")
		wlDeadline = flag.Float64("workload-deadline", 3600, "delivery deadline in seconds for -workloads on and bursts")
		burstHot   = flag.Int("burst-hot", 0, "burst-active targets for -workloads bursts (0 = all)")
		burstGap   = flag.Float64("burst-gap", 1800, "mean seconds between bursts for -workloads bursts")
		burstSize  = flag.Int("burst-size", 10, "packets per burst for -workloads bursts")
		preset     = flag.String("preset", "", "scenario preset supplying field geometry and axis defaults: "+strings.Join(scenario.PresetNames(), ", "))
		scenarioF  = flag.String("scenario", "", "JSON scenario file supplying field geometry and axis defaults (like -preset, from disk)")
		seeds      = flag.Int("seeds", 10, "replications per cell")
		baseSeed   = flag.Uint64("base-seed", 0, "base replication seed")
		horizon    = flag.Float64("horizon", 0, "simulated seconds (default 60000)")
		workers    = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		repShards  = flag.Int("rep-shards", 0, "split each cell's replications into this many parallel fold shards (0/1 = classic seed-ordered fold; incompatible with -adaptive and -checkpoint)")
		format     = flag.String("format", "csv", "output format: csv, json, table")
		progress   = flag.Bool("progress", false, "report progress on stderr")
		checkpoint = flag.String("checkpoint", "", "persist per-cell fold state to this JSONL file")
		resumeF    = flag.Bool("resume", false, "continue from the -checkpoint file instead of starting over")
		adaptive   = flag.String("adaptive", "", "adaptive replication as metric:relci[:min[:max]], e.g. avg_dcdt_s:0.05:5:50")
		partition  = flag.String("partition", "", `comma-separated partition axis values: none or method:k[:alloc], e.g. "none,kmeans:4" (methods kmeans, sectors; alloc length, count)`)
		shard      = flag.String("shard", "", `run one shard of the grid as "i/n" (1-based), e.g. -shard 2/3`)
		merge      = flag.String("merge", "", `merge the shard checkpoint files given as arguments, writing the full sweep to this path ("-" = stdout)`)
	)
	flag.Parse()

	cfg := config{
		Algs: *algs, Targets: *targets, Mules: *mules,
		Speeds: *speeds, Fleets: *fleets, Placements: *placements,
		Workloads: *workloads, WorkloadGen: *wlGen, WorkloadBuf: *wlBuf,
		WorkloadDeadline: *wlDeadline,
		BurstHot:         *burstHot, BurstGap: *burstGap, BurstSize: *burstSize,
		Preset: *preset, Scenario: *scenarioF,
		Seeds: *seeds, BaseSeed: *baseSeed, Horizon: *horizon,
		Workers: *workers, RepShards: *repShards, Format: *format, Progress: *progress,
		Checkpoint: *checkpoint, Resume: *resumeF, Adaptive: *adaptive,
		Partition: *partition,
		Shard:     *shard, Merge: *merge, MergeInputs: flag.Args(),
	}
	if err := run(cfg, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tctp-sweep:", err)
		os.Exit(1)
	}
}

// config carries the parsed flags; run is kept free of globals so
// tests can drive it. Empty axis strings (and a zero horizon) select
// the defaults — or, with -preset, the preset's values.
type config struct {
	Algs, Targets, Mules, Speeds, Fleets, Placements, Workloads string
	WorkloadGen                                                 float64
	WorkloadBuf                                                 int
	WorkloadDeadline                                            float64
	BurstHot                                                    int
	BurstGap                                                    float64
	BurstSize                                                   int
	Preset                                                      string
	Scenario                                                    string
	Seeds                                                       int
	BaseSeed                                                    uint64
	Horizon                                                     float64
	Workers                                                     int
	RepShards                                                   int
	Format                                                      string
	Progress                                                    bool
	Checkpoint                                                  string
	Resume                                                      bool
	Adaptive                                                    string
	Partition                                                   string
	Shard                                                       string
	Merge                                                       string
	MergeInputs                                                 []string
}

// parseShard decodes a 1-based "i/n" shard selector into the job API's
// 0-based index.
func parseShard(s string) (i, n int, err error) {
	lo, hi, ok := strings.Cut(s, "/")
	if ok {
		i, err = strconv.Atoi(strings.TrimSpace(lo))
		if err == nil {
			n, err = strconv.Atoi(strings.TrimSpace(hi))
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("bad shard %q (want i/n, e.g. 2/3)", s)
	}
	if n < 1 || i < 1 || i > n {
		return 0, 0, fmt.Errorf("shard %d/%d outside 1/%d..%d/%d", i, n, n, n, n)
	}
	return i - 1, n, nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parsePlacements(s string) ([]field.Placement, error) {
	parts := strings.Split(s, ",")
	out := make([]field.Placement, 0, len(parts))
	for _, p := range parts {
		v, err := field.ParsePlacement(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFleets(s string) ([]scenario.Fleet, error) {
	parts := strings.Split(s, ";")
	out := make([]scenario.Fleet, 0, len(parts))
	for _, p := range parts {
		f, err := scenario.ParseFleet(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// parseWorkloads maps off/on/bursts axis values to workloads; "on" is
// the periodic packet workload parameterized by the -workload-* knobs,
// "bursts" the event-driven Poisson-burst workload parameterized by
// the -burst-* knobs.
func parseWorkloads(cfg config) ([]scenario.Workload, error) {
	var out []scenario.Workload
	for _, p := range strings.Split(cfg.Workloads, ",") {
		switch strings.TrimSpace(p) {
		case "off":
			out = append(out, scenario.Workload{})
		case "on":
			out = append(out, scenario.Workload{Name: "packets", Data: wsn.Config{
				GenInterval: cfg.WorkloadGen,
				BufferCap:   cfg.WorkloadBuf,
				Deadline:    cfg.WorkloadDeadline,
			}})
		case "bursts":
			out = append(out, scenario.Workload{
				Name: "bursts", Kind: scenario.KindBursts,
				Bursts: &wsn.BurstConfig{
					Hot:       cfg.BurstHot,
					MeanGap:   cfg.BurstGap,
					Size:      cfg.BurstSize,
					BufferCap: cfg.WorkloadBuf,
					Deadline:  cfg.WorkloadDeadline,
				},
			})
		default:
			return nil, fmt.Errorf("unknown workload %q (valid: off, on, bursts)", p)
		}
	}
	return out, nil
}

// parsePartitions maps the -partition axis values ("none" or
// "method:k[:alloc]") to the engine's partition axis.
func parsePartitions(s string) ([]sweep.Partition, error) {
	var out []sweep.Partition
	for _, p := range strings.Split(s, ",") {
		part, err := sweep.ParsePartition(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, part)
	}
	return out, nil
}

// parseAdaptive decodes "metric:relci[:min[:max]]" into the engine's
// adaptive-replication config.
func parseAdaptive(s string) (*sweep.Adaptive, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 4 || parts[0] == "" {
		return nil, fmt.Errorf("bad adaptive spec %q (want metric:relci[:min[:max]])", s)
	}
	a := &sweep.Adaptive{Metric: parts[0]}
	var err error
	if a.RelCI, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return nil, fmt.Errorf("bad adaptive relative CI %q", parts[1])
	}
	if len(parts) > 2 {
		if a.MinReps, err = strconv.Atoi(parts[2]); err != nil {
			return nil, fmt.Errorf("bad adaptive min reps %q", parts[2])
		}
	}
	if len(parts) > 3 {
		if a.MaxReps, err = strconv.Atoi(parts[3]); err != nil {
			return nil, fmt.Errorf("bad adaptive max reps %q", parts[3])
		}
	}
	return a, nil
}

// loadScenario reads and validates a serialized scenario file.
func loadScenario(path string) (*scenario.Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario file: %w", err)
	}
	var sc scenario.Scenario
	if err := json.Unmarshal(b, &sc); err != nil {
		return nil, fmt.Errorf("scenario file %s: %w", path, err)
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("scenario file %s: %w", path, err)
	}
	return &sc, nil
}

func algorithm(name string) (patrol.Algorithm, error) {
	switch name {
	case "btctp":
		return patrol.Planned(&core.BTCTP{}), nil
	case "wtctp":
		return patrol.Planned(&core.WTCTP{}), nil
	case "chb":
		return patrol.Planned(&baseline.CHB{}), nil
	case "sweep":
		return patrol.Planned(&baseline.Sweep{}), nil
	case "random":
		return patrol.Online(&baseline.Random{}), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

// applyDefaults resolves empty axis flags against the built-in
// defaults or, when -preset or -scenario is given, the named scenario's
// values.
func applyDefaults(cfg config) (config, *scenario.Scenario, error) {
	var ps *scenario.Scenario
	if cfg.Preset != "" && cfg.Scenario != "" {
		return cfg, nil, fmt.Errorf("-preset conflicts with -scenario: both supply the base scenario")
	}
	if cfg.Preset != "" {
		var err error
		if ps, err = scenario.Preset(cfg.Preset); err != nil {
			return cfg, nil, err
		}
	}
	if cfg.Scenario != "" {
		var err error
		if ps, err = loadScenario(cfg.Scenario); err != nil {
			return cfg, nil, err
		}
	}
	if cfg.Targets == "" {
		cfg.Targets = "10,20,30,40,50"
		if ps != nil {
			cfg.Targets = strconv.Itoa(ps.Targets.Count)
		}
	}
	if cfg.Mules == "" && cfg.Fleets == "" {
		switch {
		case ps == nil:
			cfg.Mules = "2,4,6,8"
		case ps.Fleet.CommonSpeed() > 0:
			cfg.Mules = strconv.Itoa(ps.Fleet.Size())
		default:
			// A mixed-speed preset fleet cannot collapse to a size;
			// buildSpec routes the whole fleet onto the Fleets axis.
		}
	}
	if cfg.Speeds == "" && cfg.Fleets == "" {
		cfg.Speeds = "2"
		if ps != nil {
			if sp := ps.Fleet.CommonSpeed(); sp > 0 {
				cfg.Speeds = strconv.FormatFloat(sp, 'g', -1, 64)
			}
		}
	}
	if cfg.Placements == "" {
		cfg.Placements = "uniform"
		if ps != nil {
			cfg.Placements = ps.Field.Placement.String()
		}
	}
	if cfg.Workloads == "" {
		cfg.Workloads = "off"
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 60_000
		if ps != nil {
			cfg.Horizon = ps.Horizon
		}
	}
	return cfg, ps, nil
}

// buildSpec translates the CLI flags into a sweep.Spec.
func buildSpec(cfg config) (sweep.Spec, error) {
	var spec sweep.Spec
	cfg, preset, err := applyDefaults(cfg)
	if err != nil {
		return spec, err
	}
	for _, name := range strings.Split(cfg.Algs, ",") {
		name = strings.TrimSpace(name)
		alg, err := algorithm(name)
		if err != nil {
			return spec, err
		}
		spec.Algorithms = append(spec.Algorithms, sweep.Algo(name, alg))
	}
	if spec.Targets, err = parseInts(cfg.Targets); err != nil {
		return spec, err
	}
	switch {
	case cfg.Fleets != "":
		if cfg.Mules != "" || cfg.Speeds != "" {
			return spec, fmt.Errorf("-fleets conflicts with -mules/-speeds: the fleet axis already fixes sizes and speeds")
		}
		if spec.Fleets, err = parseFleets(cfg.Fleets); err != nil {
			return spec, err
		}
	case cfg.Mules == "" && preset != nil:
		// Mixed-speed preset fleet: sweep it as a named fleet.
		fleet := preset.Fleet
		if fleet.Name == "" {
			fleet.Name = preset.Name
		}
		if fleet.Name == "" {
			fleet.Name = "scenario" // unnamed -scenario file
		}
		spec.Fleets = []scenario.Fleet{fleet}
	default:
		if spec.Mules, err = parseInts(cfg.Mules); err != nil {
			return spec, err
		}
		if spec.Speeds, err = parseFloats(cfg.Speeds); err != nil {
			return spec, err
		}
	}
	if spec.Placements, err = parsePlacements(cfg.Placements); err != nil {
		return spec, err
	}
	if spec.Workloads, err = parseWorkloads(cfg); err != nil {
		return spec, err
	}
	if cfg.Partition != "" {
		if spec.Partitions, err = parsePartitions(cfg.Partition); err != nil {
			return spec, err
		}
	}
	for _, nt := range spec.Targets {
		if nt < 1 {
			return spec, fmt.Errorf("target count %d < 1", nt)
		}
	}
	for _, nm := range spec.Mules {
		if nm < 1 {
			return spec, fmt.Errorf("fleet size %d < 1", nm)
		}
	}
	for _, sp := range spec.Speeds {
		if sp <= 0 {
			return spec, fmt.Errorf("speed %g must be positive", sp)
		}
	}
	if cfg.Seeds < 1 {
		return spec, fmt.Errorf("seeds %d < 1", cfg.Seeds)
	}
	if cfg.Horizon <= 0 {
		return spec, fmt.Errorf("horizon %g must be positive", cfg.Horizon)
	}
	if cfg.Adaptive != "" {
		if spec.Adaptive, err = parseAdaptive(cfg.Adaptive); err != nil {
			return spec, err
		}
	}
	if cfg.Resume && cfg.Checkpoint == "" {
		return spec, fmt.Errorf("-resume needs -checkpoint to name the file to continue from")
	}
	spec.Name = "tctp-sweep"
	spec.Horizons = []float64{cfg.Horizon}
	spec.Seeds = cfg.Seeds
	spec.BaseSeed = cfg.BaseSeed
	spec.Workers = cfg.Workers
	spec.RepShards = cfg.RepShards
	if preset != nil {
		// The preset supplies the field geometry (dimensions, cluster
		// parameters, recharge station); the axes keep the placement.
		presetField := preset.Field
		spec.Configure = func(p sweep.Point, sc *scenario.Scenario) {
			placement := sc.Field.Placement
			sc.Field = presetField
			sc.Field.Placement = placement
		}
		// The Configure closure is invisible to the checkpoint
		// fingerprint; serialize the geometry it applies so resuming
		// under an edited preset/scenario file is refused.
		digest, err := json.Marshal(presetField)
		if err != nil {
			return spec, err
		}
		spec.ConfigDigest = string(digest)
	}
	spec.Metrics = []sweep.Metric{
		sweep.AvgDCDT(), sweep.AvgSD(), sweep.MaxInterval(), sweep.JoulesPerVisit(),
	}
	for _, w := range spec.Workloads {
		if w.Enabled() {
			spec.Metrics = append(spec.Metrics,
				sweep.Delivered(), sweep.OnTimePct(), sweep.MeanLatency())
			break
		}
	}
	// With an enabled partition on the axis, report the group count and
	// the per-group DCDT/SD columns (group_dcdt_s_1..k,
	// group_sd_s_1..k); single-circuit cells fill only position 1.
	partitionK := map[string]int{}
	var probeCfg core.PartitionConfig
	maxK := 0
	for _, pa := range spec.Partitions {
		if !pa.Enabled() {
			continue
		}
		partitionK[pa.String()] = pa.K
		if pa.K > maxK {
			maxK = pa.K
			probeCfg, _ = pa.Config() // parsePartitions already validated
		}
	}
	// Partitioned cells of algorithms without a partitioned variant are
	// skipped, not failed, so mixed-algorithm grids stay usable. The
	// capability is probed from the algorithm itself (core.Partitionable
	// via patrol.Partitioned), not a name list, so planners gaining a
	// partitioned form are picked up automatically.
	partitionable := map[string]bool{}
	if maxK > 0 {
		spec.Metrics = append(spec.Metrics, sweep.GroupCount())
		spec.Vectors = append(spec.Vectors, sweep.GroupDCDT(maxK), sweep.GroupSD(maxK))
		for _, v := range spec.Algorithms {
			_, perr := patrol.Partitioned(v.Make(nil), probeCfg, nil)
			partitionable[v.Name] = perr == nil
		}
	}
	spec.Skip = func(p sweep.Point) string {
		if p.Mules > p.Targets+1 {
			return "sweep needs at least one target per mule"
		}
		if p.Partition != "" {
			if !partitionable[p.Algorithm] {
				return "algorithm has no partitioned variant"
			}
			if k := partitionK[p.Partition]; p.Mules < k {
				return fmt.Sprintf("partition %s needs at least %d mules", p.Partition, k)
			} else if k > p.Targets+1 {
				return fmt.Sprintf("partition %s exceeds the %d targets", p.Partition, p.Targets+1)
			}
		}
		return ""
	}
	return spec, nil
}

func sink(format string, w io.Writer) (sweep.Sink, error) {
	switch format {
	case "csv":
		return sweep.CSV(w), nil
	case "json":
		return sweep.JSONL(w), nil
	case "table":
		return sweep.TextTable(w), nil
	default:
		return nil, fmt.Errorf("unknown format %q (valid: csv, json, table)", format)
	}
}

func run(cfg config, out, errw io.Writer) error {
	spec, err := buildSpec(cfg)
	if err != nil {
		return err
	}
	if cfg.Merge != "" {
		if cfg.Shard != "" || cfg.Checkpoint != "" || cfg.Resume {
			return fmt.Errorf("-merge conflicts with -shard/-checkpoint/-resume: merging only reads finished shard files")
		}
		if len(cfg.MergeInputs) == 0 {
			return fmt.Errorf("-merge needs shard checkpoint files as arguments")
		}
		return runMerge(cfg, spec, out, errw)
	}
	if len(cfg.MergeInputs) != 0 {
		return fmt.Errorf("unexpected arguments %v (shard files are only read with -merge)", cfg.MergeInputs)
	}
	snk, err := sink(cfg.Format, out)
	if err != nil {
		return err
	}

	job, err := sweep.Plan(spec)
	if err != nil {
		return err
	}
	if cfg.Shard != "" {
		i, n, err := parseShard(cfg.Shard)
		if err != nil {
			return err
		}
		if job, err = job.Shard(i, n); err != nil {
			return err
		}
		fmt.Fprintf(errw, "tctp-sweep: shard %d/%d: %d of %d cells, plan %s\n",
			i+1, n, job.Cells(), job.TotalCells(), job.Fingerprint())
	}
	opts := sweep.RunOpts{
		Checkpoint: cfg.Checkpoint,
		Resume:     cfg.Resume,
		Sinks:      []sweep.Sink{snk},
	}
	// The in-place progress line is terminated after the run returns,
	// not at RunsDone == RunsTotal: under adaptive replication the
	// total is a ceiling early-stopped cells never reach.
	progressed := false
	if cfg.Progress {
		opts.Progress = func(p sweep.Progress) {
			progressed = true
			fmt.Fprintf(errw, "\rcells %d/%d runs %d/%d",
				p.CellsDone, p.CellsTotal, p.RunsDone, p.RunsTotal)
		}
	}
	partial, err := job.Run(context.Background(), opts)
	if progressed {
		fmt.Fprintln(errw)
	}
	if err != nil {
		return err
	}
	report(partial.Result(), errw)
	return nil
}

// runMerge rebuilds the full sweep from shard checkpoint files and
// writes it through the selected sink to cfg.Merge ("-" = out).
func runMerge(cfg config, spec sweep.Spec, out, errw io.Writer) error {
	partials := make([]*sweep.Partial, len(cfg.MergeInputs))
	for i, path := range cfg.MergeInputs {
		p, err := sweep.LoadPartial(path)
		if err != nil {
			return err
		}
		partials[i] = p
	}
	// Merge into memory first: a refused shard set (fingerprint
	// mismatch, missing cell, overlap) must not truncate a previously
	// good output file.
	w := out
	var buf bytes.Buffer
	if cfg.Merge != "-" {
		w = &buf
	}
	snk, err := sink(cfg.Format, w)
	if err != nil {
		return err
	}
	res, err := sweep.Merge(spec, partials, snk)
	if err != nil {
		return err
	}
	if cfg.Merge != "-" {
		if err := os.WriteFile(cfg.Merge, buf.Bytes(), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(errw, "tctp-sweep: merged %d shard files into %d cells (%d runs)\n",
		len(partials), len(res.Cells), res.Runs)
	report(res, errw)
	return nil
}

// report surfaces skipped and early-stopped cells on stderr.
func report(res *sweep.Result, errw io.Writer) {
	for _, sk := range res.Skipped {
		fmt.Fprintf(errw, "tctp-sweep: skipped cell %v: %s\n", sk.Point, sk.Reason)
	}
	if len(res.Skipped) > 0 {
		fmt.Fprintf(errw, "tctp-sweep: %d cells run, %d skipped\n",
			len(res.Cells), len(res.Skipped))
	}
	for _, st := range res.Stopped {
		fmt.Fprintf(errw, "tctp-sweep: stopped cell %v early after %d reps: %s\n",
			st.Point, st.Reps, st.Reason)
	}
}
