// Command tctp-sweep runs a declarative parameter sweep through the
// internal/sweep engine: any subset of algorithms crossed with target
// counts, fleet sizes, mule speeds and placements, every cell
// replicated and aggregated with streaming statistics. It is a thin
// Spec builder — the grid execution, parallelism, and output formats
// all live in internal/sweep.
//
// Usage:
//
//	tctp-sweep -alg btctp -targets 10,20,30 -mules 2,4,8 -seeds 10 > sweep.csv
//	tctp-sweep -alg btctp,chb -speeds 1,2,4 -placements uniform,clusters -format json
//	tctp-sweep -alg wtctp -format table -progress
//
// Cells that cannot run (more mules than targets+1) are skipped and
// reported on stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"tctp/internal/baseline"
	"tctp/internal/core"
	"tctp/internal/field"
	"tctp/internal/patrol"
	"tctp/internal/sweep"
)

func main() {
	var (
		algs       = flag.String("alg", "btctp", "comma-separated algorithms: btctp, wtctp, chb, sweep, random")
		targets    = flag.String("targets", "10,20,30,40,50", "comma-separated target counts")
		mules      = flag.String("mules", "2,4,6,8", "comma-separated fleet sizes")
		speeds     = flag.String("speeds", "2", "comma-separated mule speeds (m/s)")
		placements = flag.String("placements", "uniform", "comma-separated placements: uniform, clusters, grid")
		seeds      = flag.Int("seeds", 10, "replications per cell")
		baseSeed   = flag.Uint64("base-seed", 0, "base replication seed")
		horizon    = flag.Float64("horizon", 60_000, "simulated seconds")
		workers    = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		format     = flag.String("format", "csv", "output format: csv, json, table")
		progress   = flag.Bool("progress", false, "report progress on stderr")
	)
	flag.Parse()

	cfg := config{
		Algs: *algs, Targets: *targets, Mules: *mules,
		Speeds: *speeds, Placements: *placements,
		Seeds: *seeds, BaseSeed: *baseSeed, Horizon: *horizon,
		Workers: *workers, Format: *format, Progress: *progress,
	}
	if err := run(cfg, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tctp-sweep:", err)
		os.Exit(1)
	}
}

// config carries the parsed flags; run is kept free of globals so
// tests can drive it.
type config struct {
	Algs, Targets, Mules, Speeds, Placements string
	Seeds                                    int
	BaseSeed                                 uint64
	Horizon                                  float64
	Workers                                  int
	Format                                   string
	Progress                                 bool
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parsePlacements(s string) ([]field.Placement, error) {
	parts := strings.Split(s, ",")
	out := make([]field.Placement, 0, len(parts))
	for _, p := range parts {
		v, err := field.ParsePlacement(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func algorithm(name string) (patrol.Algorithm, error) {
	switch name {
	case "btctp":
		return patrol.Planned(&core.BTCTP{}), nil
	case "wtctp":
		return patrol.Planned(&core.WTCTP{}), nil
	case "chb":
		return patrol.Planned(&baseline.CHB{}), nil
	case "sweep":
		return patrol.Planned(&baseline.Sweep{}), nil
	case "random":
		return patrol.Online(&baseline.Random{}), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

// buildSpec translates the CLI flags into a sweep.Spec.
func buildSpec(cfg config) (sweep.Spec, error) {
	var spec sweep.Spec
	for _, name := range strings.Split(cfg.Algs, ",") {
		name = strings.TrimSpace(name)
		alg, err := algorithm(name)
		if err != nil {
			return spec, err
		}
		spec.Algorithms = append(spec.Algorithms, sweep.Algo(name, alg))
	}
	var err error
	if spec.Targets, err = parseInts(cfg.Targets); err != nil {
		return spec, err
	}
	if spec.Mules, err = parseInts(cfg.Mules); err != nil {
		return spec, err
	}
	if spec.Speeds, err = parseFloats(cfg.Speeds); err != nil {
		return spec, err
	}
	if spec.Placements, err = parsePlacements(cfg.Placements); err != nil {
		return spec, err
	}
	for _, nt := range spec.Targets {
		if nt < 1 {
			return spec, fmt.Errorf("target count %d < 1", nt)
		}
	}
	for _, nm := range spec.Mules {
		if nm < 1 {
			return spec, fmt.Errorf("fleet size %d < 1", nm)
		}
	}
	for _, sp := range spec.Speeds {
		if sp <= 0 {
			return spec, fmt.Errorf("speed %g must be positive", sp)
		}
	}
	if cfg.Seeds < 1 {
		return spec, fmt.Errorf("seeds %d < 1", cfg.Seeds)
	}
	if cfg.Horizon <= 0 {
		return spec, fmt.Errorf("horizon %g must be positive", cfg.Horizon)
	}
	spec.Name = "tctp-sweep"
	spec.Horizons = []float64{cfg.Horizon}
	spec.Seeds = cfg.Seeds
	spec.BaseSeed = cfg.BaseSeed
	spec.Workers = cfg.Workers
	spec.Metrics = []sweep.Metric{
		sweep.AvgDCDT(), sweep.AvgSD(), sweep.MaxInterval(), sweep.JoulesPerVisit(),
	}
	spec.Skip = func(p sweep.Point) string {
		if p.Mules > p.Targets+1 {
			return "sweep needs at least one target per mule"
		}
		return ""
	}
	return spec, nil
}

func sink(format string, w io.Writer) (sweep.Sink, error) {
	switch format {
	case "csv":
		return sweep.CSV(w), nil
	case "json":
		return sweep.JSONL(w), nil
	case "table":
		return sweep.TextTable(w), nil
	default:
		return nil, fmt.Errorf("unknown format %q (valid: csv, json, table)", format)
	}
}

func run(cfg config, out, errw io.Writer) error {
	spec, err := buildSpec(cfg)
	if err != nil {
		return err
	}
	snk, err := sink(cfg.Format, out)
	if err != nil {
		return err
	}
	if cfg.Progress {
		spec.Progress = func(p sweep.Progress) {
			fmt.Fprintf(errw, "\rcells %d/%d runs %d/%d",
				p.CellsDone, p.CellsTotal, p.RunsDone, p.RunsTotal)
			if p.RunsDone == p.RunsTotal {
				fmt.Fprintln(errw)
			}
		}
	}
	res, err := sweep.Run(context.Background(), spec, snk)
	if err != nil {
		return err
	}
	for _, sk := range res.Skipped {
		fmt.Fprintf(errw, "tctp-sweep: skipped cell %v: %s\n", sk.Point, sk.Reason)
	}
	if len(res.Skipped) > 0 {
		fmt.Fprintf(errw, "tctp-sweep: %d cells run, %d skipped\n",
			len(res.Cells), len(res.Skipped))
	}
	return nil
}
