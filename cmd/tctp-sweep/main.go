// Command tctp-sweep runs a generic parameter sweep of one algorithm
// over fleet size and target count and emits long-form CSV — the raw
// material for custom plots beyond the paper's figures.
//
// Usage:
//
//	tctp-sweep -alg btctp -targets 10,20,30 -mules 2,4,8 -seeds 10 > sweep.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tctp/internal/baseline"
	"tctp/internal/core"
	"tctp/internal/field"
	"tctp/internal/patrol"
	"tctp/internal/stats"
	"tctp/internal/xrand"
)

func main() {
	var (
		alg     = flag.String("alg", "btctp", "algorithm: btctp, wtctp, chb, sweep, random")
		targets = flag.String("targets", "10,20,30,40,50", "comma-separated target counts")
		mules   = flag.String("mules", "2,4,6,8", "comma-separated fleet sizes")
		seeds   = flag.Int("seeds", 10, "replications per cell")
		horizon = flag.Float64("horizon", 60_000, "simulated seconds")
	)
	flag.Parse()

	if err := run(*alg, *targets, *mules, *seeds, *horizon); err != nil {
		fmt.Fprintln(os.Stderr, "tctp-sweep:", err)
		os.Exit(1)
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func algorithm(name string) (patrol.Algorithm, error) {
	switch name {
	case "btctp":
		return patrol.Planned(&core.BTCTP{}), nil
	case "wtctp":
		return patrol.Planned(&core.WTCTP{}), nil
	case "chb":
		return patrol.Planned(&baseline.CHB{}), nil
	case "sweep":
		return patrol.Planned(&baseline.Sweep{}), nil
	case "random":
		return patrol.Online(&baseline.Random{}), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

func run(algName, targetsCSV, mulesCSV string, seeds int, horizon float64) error {
	targetCounts, err := parseInts(targetsCSV)
	if err != nil {
		return err
	}
	fleetSizes, err := parseInts(mulesCSV)
	if err != nil {
		return err
	}
	alg, err := algorithm(algName)
	if err != nil {
		return err
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	header := []string{"algorithm", "targets", "mules",
		"avg_dcdt_s", "avg_sd_s", "max_interval_s", "j_per_visit", "ci95_dcdt"}
	if err := w.Write(header); err != nil {
		return err
	}

	for _, nt := range targetCounts {
		for _, nm := range fleetSizes {
			if nm > nt+1 {
				continue // sweep needs at least one target per mule
			}
			var dcdts, sds, maxIvs, jpvs []float64
			for seed := 0; seed < seeds; seed++ {
				src := xrand.New(uint64(seed))
				s := field.Generate(field.Config{
					NumTargets: nt,
					NumMules:   nm,
					Placement:  field.Uniform,
				}, src)
				res, err := patrol.Run(s, alg, patrol.Options{Horizon: horizon}, src.Split())
				if err != nil {
					return fmt.Errorf("targets=%d mules=%d seed=%d: %w", nt, nm, seed, err)
				}
				warm := res.PatrolStart + 1
				dcdts = append(dcdts, res.Recorder.AvgDCDTAfter(warm))
				sds = append(sds, res.Recorder.AvgSDAfter(warm))
				maxIvs = append(maxIvs, res.Recorder.MaxInterval())
				jpvs = append(jpvs, res.EnergyPerVisit())
			}
			rec := []string{
				algName,
				strconv.Itoa(nt),
				strconv.Itoa(nm),
				fmt.Sprintf("%.3f", stats.Mean(dcdts)),
				fmt.Sprintf("%.3f", stats.Mean(sds)),
				fmt.Sprintf("%.3f", stats.Mean(maxIvs)),
				fmt.Sprintf("%.3f", stats.Mean(jpvs)),
				fmt.Sprintf("%.3f", stats.CI95(dcdts)),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	return nil
}
