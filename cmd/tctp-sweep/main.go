// Command tctp-sweep runs a declarative parameter sweep through the
// internal/sweep engine: any subset of algorithms crossed with target
// counts, fleet sizes (or named heterogeneous fleets), mule speeds,
// placements and data workloads, every cell replicated and aggregated
// with streaming statistics. It is a thin Spec builder — scenario
// construction lives in internal/scenario, the flag-to-Spec
// translation in internal/sweep/build (shared with tctp-server), the
// grid execution, parallelism, and output formats in internal/sweep.
//
// Usage:
//
//	tctp-sweep -alg btctp -targets 10,20,30 -mules 2,4,8 -seeds 10 > sweep.csv
//	tctp-sweep -alg btctp,chb -speeds 1,2,4 -placements uniform,clusters -format json
//	tctp-sweep -alg btctp -fleets "4x2;2x1+2x3" -workloads off,on -format table
//	tctp-sweep -alg btctp -preset clustered -progress
//	tctp-sweep -alg btctp -preset clustered -partition kmeans:4   # C-BTCTP
//	tctp-sweep -alg btctp -workloads bursts -burst-hot 5
//	tctp-sweep -alg btctp -scenario world.json -seeds 20
//	tctp-sweep -alg btctp -seeds 50 -adaptive avg_dcdt_s:0.05
//	tctp-sweep -alg btctp -checkpoint sweep.ckpt          # interrupted?
//	tctp-sweep -alg btctp -checkpoint sweep.ckpt -resume  # …continue
//
//	# Distributed: run shard i of n per machine (same flags everywhere),
//	# then merge the shard checkpoints into the full, byte-identical CSV.
//	tctp-sweep -alg btctp -seeds 50 -shard 1/3 -checkpoint shard1.jsonl
//	tctp-sweep -alg btctp -seeds 50 -shard 2/3 -checkpoint shard2.jsonl
//	tctp-sweep -alg btctp -seeds 50 -shard 3/3 -checkpoint shard3.jsonl
//	tctp-sweep -alg btctp -seeds 50 -merge out.csv shard1.jsonl shard2.jsonl shard3.jsonl
//
//	# Remote: submit the same flags to a tctp-server and fetch the
//	# (byte-identical, possibly cache-served) result.
//	tctp-sweep -alg btctp -preset paper51 -seeds 5 -server http://localhost:8080 > sweep.csv
//
// Long-running sweeps can be checkpointed (-checkpoint) and continued
// after an interruption (-resume) with byte-identical output, and
// -adaptive metric:relci[:min[:max]] stops each cell early once the
// metric's CI95 half-width falls below the relative target. -scenario
// loads a JSON scenario file (the internal/scenario model) supplying
// the field geometry and axis defaults, like -preset but from disk.
//
// -shard i/n runs the i-th of n contiguous deterministic cell ranges
// of the grid; every machine must be given the same sweep flags so the
// plans (and their sha256 fingerprints) agree. A shard's -checkpoint
// file is its mergeable artifact: -merge OUT rebuilds the whole sweep
// from the named shard files, refusing shards whose fingerprint does
// not match the flags, and writes the -format output (byte-identical
// to an unsharded run) to OUT, or to stdout when OUT is "-".
//
// -server URL switches to client mode: the sweep flags are serialized
// as a JSON request (a -scenario file is inlined, so the server never
// reads local paths), submitted to a tctp-server, and the result —
// byte-identical to a local run of the same flags — is written to
// stdout. The server memoizes per-cell results, so repeated or
// overlapping sweeps return mostly or entirely from cache.
//
// Placements are the values accepted by field.ParsePlacement: uniform
// (the paper's §5.1 model), clusters (disconnected discs), grid
// (deterministic lattice), corridor (narrow central band), hotspot
// (one dense disc plus background). Fleets are "COUNTxSPEED[@BATTERY]"
// groups joined by "+", and several fleets separated by ";" form the
// fleet axis, replacing -mules and -speeds.
//
// -partition adds the target-partition axis: "none" keeps the
// algorithm's own single-circuit planning, "method:k[:alloc]" (methods
// kmeans, sectors; alloc length, count) runs the partitioned C-variant
// — B-TCTP cells become C-BTCTP, W-TCTP cells C-WTCTP — and the output
// gains a partition column, a groups metric, and per-group DCDT
// columns (group_dcdt_s_1..k). -workloads bursts layers the
// event-driven Poisson-burst workload (see -burst-*) instead of the
// periodic packet model.
//
// Cells that cannot run (more mules than targets+1, partitioned cells
// of algorithms without a partitioned variant, fewer mules than
// regions) are skipped and reported on stderr.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"

	"tctp/internal/field"
	"tctp/internal/patrol"
	"tctp/internal/scenario"
	"tctp/internal/sweep"
	"tctp/internal/sweep/build"
	"tctp/internal/sweep/protocol"
)

func main() {
	var (
		algs       = flag.String("alg", "btctp", "comma-separated algorithms: btctp, wtctp, chb, sweep, random")
		targets    = flag.String("targets", "", "comma-separated target counts (default 10,20,30,40,50)")
		mules      = flag.String("mules", "", "comma-separated fleet sizes (default 2,4,6,8)")
		speeds     = flag.String("speeds", "", "comma-separated mule speeds in m/s (default 2)")
		fleets     = flag.String("fleets", "", `semicolon-separated fleet specs, e.g. "4x2;2x1+2x3" (replaces -mules and -speeds; combining them is an error)`)
		placements = flag.String("placements", "", "comma-separated placements: "+field.PlacementNames+" (default uniform)")
		workloads  = flag.String("workloads", "", "comma-separated workload axis values: off, on, bursts, priority (default off)")
		wlGen      = flag.Float64("workload-gen", 60, "packet generation interval in seconds for -workloads on")
		wlBuf      = flag.Int("workload-buffer", 50, "node buffer capacity in packets for -workloads on")
		wlDeadline = flag.Float64("workload-deadline", 3600, "delivery deadline in seconds for -workloads on and bursts")
		burstHot   = flag.Int("burst-hot", 0, "burst-active targets for -workloads bursts (0 = all)")
		burstGap   = flag.Float64("burst-gap", 1800, "mean seconds between bursts for -workloads bursts")
		burstSize  = flag.Int("burst-size", 10, "packets per burst for -workloads bursts")
		preset     = flag.String("preset", "", "scenario preset supplying field geometry and axis defaults: "+strings.Join(scenario.PresetNames(), ", "))
		scenarioF  = flag.String("scenario", "", "JSON scenario file supplying field geometry and axis defaults (like -preset, from disk)")
		seeds      = flag.Int("seeds", 10, "replications per cell")
		baseSeed   = flag.Uint64("base-seed", 0, "base replication seed")
		horizon    = flag.Float64("horizon", 0, "simulated seconds (default 60000)")
		workers    = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		repShards  = flag.Int("rep-shards", 0, "split each cell's replications into this many parallel fold shards (0/1 = classic seed-ordered fold; incompatible with -adaptive and -checkpoint)")
		format     = flag.String("format", "csv", "output format: csv, json, table")
		progress   = flag.Bool("progress", false, "report progress on stderr")
		checkpoint = flag.String("checkpoint", "", "persist per-cell fold state to this JSONL file")
		resumeF    = flag.Bool("resume", false, "continue from the -checkpoint file instead of starting over")
		adaptive   = flag.String("adaptive", "", "adaptive replication as metric:relci[:min[:max]], e.g. avg_dcdt_s:0.05:5:50")
		partition  = flag.String("partition", "", `comma-separated partition axis values: none or method:k[:alloc], e.g. "none,kmeans:4" (methods kmeans, sectors; alloc length, count)`)
		failures   = flag.String("failures", "", `comma-separated failure-injection axis values: none or rate[:handoff], e.g. "none,0.5:absorb" (handoffs `+patrol.HandoffNames+`)`)
		handoff    = flag.String("handoff", "", "default handoff policy for -failures values without their own: "+patrol.HandoffNames)
		shard      = flag.String("shard", "", `run one shard of the grid as "i/n" (1-based), e.g. -shard 2/3`)
		merge      = flag.String("merge", "", `merge the shard checkpoint files given as arguments, writing the full sweep to this path ("-" = stdout)`)
		server     = flag.String("server", "", "submit the sweep to this tctp-server base URL instead of running locally")
		quality    = flag.Bool("quality", false, "add the approximation-ratio columns (ratio_tour, ratio_dcdt) computed against the internal/optimal reference bounds")
	)
	flag.Parse()

	cfg := config{
		Algs: *algs, Targets: *targets, Mules: *mules,
		Speeds: *speeds, Fleets: *fleets, Placements: *placements,
		Workloads: *workloads, WorkloadGen: *wlGen, WorkloadBuf: *wlBuf,
		WorkloadDeadline: *wlDeadline,
		BurstHot:         *burstHot, BurstGap: *burstGap, BurstSize: *burstSize,
		Preset: *preset, Scenario: *scenarioF,
		Seeds: *seeds, BaseSeed: *baseSeed, Horizon: *horizon,
		Workers: *workers, RepShards: *repShards, Format: *format, Progress: *progress,
		Checkpoint: *checkpoint, Resume: *resumeF, Adaptive: *adaptive,
		Partition: *partition,
		Failures:  *failures, Handoff: *handoff,
		Shard: *shard, Merge: *merge, MergeInputs: flag.Args(),
		Server: *server, Quality: *quality,
	}
	if err := run(cfg, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tctp-sweep:", err)
		os.Exit(1)
	}
}

// config carries the parsed flags; run is kept free of globals so
// tests can drive it. Empty axis strings (and a zero horizon) select
// the defaults — or, with -preset, the preset's values.
type config struct {
	Algs, Targets, Mules, Speeds, Fleets, Placements, Workloads string
	WorkloadGen                                                 float64
	WorkloadBuf                                                 int
	WorkloadDeadline                                            float64
	BurstHot                                                    int
	BurstGap                                                    float64
	BurstSize                                                   int
	Preset                                                      string
	Scenario                                                    string
	Seeds                                                       int
	BaseSeed                                                    uint64
	Horizon                                                     float64
	Workers                                                     int
	RepShards                                                   int
	Format                                                      string
	Progress                                                    bool
	Checkpoint                                                  string
	Resume                                                      bool
	Adaptive                                                    string
	Partition                                                   string
	Failures                                                    string
	Handoff                                                     string
	Shard                                                       string
	Merge                                                       string
	MergeInputs                                                 []string
	Server                                                      string
	Quality                                                     bool
}

// request renders the sweep-defining flags as the transport-neutral
// protocol request — the exact input internal/sweep/build translates
// into a Spec, locally and on a server. A -scenario file is read and
// inlined here, so the document (not a path) travels.
func (cfg config) request() (protocol.SweepRequest, error) {
	req := protocol.SweepRequest{
		Algorithms: cfg.Algs, Targets: cfg.Targets, Mules: cfg.Mules,
		Speeds: cfg.Speeds, Fleets: cfg.Fleets, Placements: cfg.Placements,
		Workloads: cfg.Workloads, WorkloadGen: cfg.WorkloadGen,
		WorkloadBuffer: cfg.WorkloadBuf, WorkloadDeadline: cfg.WorkloadDeadline,
		BurstHot: cfg.BurstHot, BurstGap: cfg.BurstGap, BurstSize: cfg.BurstSize,
		Preset: cfg.Preset,
		Seeds:  cfg.Seeds, BaseSeed: cfg.BaseSeed, Horizon: cfg.Horizon,
		Workers: cfg.Workers, RepShards: cfg.RepShards,
		Adaptive: cfg.Adaptive, Partition: cfg.Partition,
		Failures: cfg.Failures, Handoff: cfg.Handoff,
		Quality: cfg.Quality,
	}
	if cfg.Scenario != "" {
		b, err := os.ReadFile(cfg.Scenario)
		if err != nil {
			return req, fmt.Errorf("scenario file: %w", err)
		}
		req.Scenario = b
	}
	return req, nil
}

// buildSpec translates the CLI flags into a sweep.Spec via the shared
// builder.
func buildSpec(cfg config) (sweep.Spec, error) {
	// On the wire, zero seeds means "the default"; at the CLI the flag
	// default is 10, so an explicit -seeds 0 is a mistake to reject.
	if cfg.Seeds < 1 {
		return sweep.Spec{}, fmt.Errorf("seeds %d < 1", cfg.Seeds)
	}
	req, err := cfg.request()
	if err != nil {
		return sweep.Spec{}, err
	}
	spec, err := build.Spec(req)
	if err != nil && cfg.Scenario != "" {
		// The builder sees only the inlined document; name the file.
		return spec, fmt.Errorf("scenario file %s: %w", cfg.Scenario, err)
	}
	return spec, err
}

// Thin aliases for the shared builder, kept under their historical
// local names.
func algorithm(name string) (patrol.Algorithm, error) { return build.Algorithm(name) }

func parseInts(s string) ([]int, error) { return build.Ints(s) }

func parseFloats(s string) ([]float64, error) { return build.Floats(s) }

func parsePlacements(s string) ([]field.Placement, error) { return build.Placements(s) }

func parseFleets(s string) ([]scenario.Fleet, error) { return build.Fleets(s) }

func parseAdaptive(s string) (*sweep.Adaptive, error) { return build.Adaptive(s) }

func parseWorkloads(cfg config) ([]scenario.Workload, error) {
	return build.Workloads(protocol.SweepRequest{
		Workloads: cfg.Workloads, WorkloadGen: cfg.WorkloadGen,
		WorkloadBuffer: cfg.WorkloadBuf, WorkloadDeadline: cfg.WorkloadDeadline,
		BurstHot: cfg.BurstHot, BurstGap: cfg.BurstGap, BurstSize: cfg.BurstSize,
	})
}

// parseShard decodes a 1-based "i/n" shard selector into the job API's
// 0-based index.
func parseShard(s string) (i, n int, err error) {
	lo, hi, ok := strings.Cut(s, "/")
	if ok {
		i, err = strconv.Atoi(strings.TrimSpace(lo))
		if err == nil {
			n, err = strconv.Atoi(strings.TrimSpace(hi))
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("bad shard %q (want i/n, e.g. 2/3)", s)
	}
	if n < 1 || i < 1 || i > n {
		return 0, 0, fmt.Errorf("shard %d/%d outside 1/%d..%d/%d", i, n, n, n, n)
	}
	return i - 1, n, nil
}

func sink(format string, w io.Writer) (sweep.Sink, error) {
	switch format {
	case "csv":
		return sweep.CSV(w), nil
	case "json":
		return sweep.JSONL(w), nil
	case "table":
		return sweep.TextTable(w), nil
	default:
		return nil, fmt.Errorf("unknown format %q (valid: csv, json, table)", format)
	}
}

func run(cfg config, out, errw io.Writer) error {
	if cfg.RepShards > 1 && cfg.Checkpoint != "" {
		// Pre-empt the engine's rejection with flag-level guidance.
		return fmt.Errorf("-rep-shards is incompatible with -checkpoint: a sharded in-cell fold has no single seed-ordered frontier to checkpoint; to distribute a sweep, split the grid with -shard i/n (each shard keeps its own -checkpoint) and combine the files with -merge")
	}
	if cfg.Resume && cfg.Checkpoint == "" {
		return fmt.Errorf("-resume needs -checkpoint to name the file to continue from")
	}
	if cfg.Server != "" {
		if cfg.Checkpoint != "" || cfg.Resume || cfg.Shard != "" || cfg.Merge != "" {
			return fmt.Errorf("-server conflicts with -checkpoint/-resume/-shard/-merge: the server owns execution")
		}
		return runClient(cfg, out, errw)
	}
	spec, err := buildSpec(cfg)
	if err != nil {
		return err
	}
	if cfg.Merge != "" {
		if cfg.Shard != "" || cfg.Checkpoint != "" || cfg.Resume {
			return fmt.Errorf("-merge conflicts with -shard/-checkpoint/-resume: merging only reads finished shard files")
		}
		if len(cfg.MergeInputs) == 0 {
			return fmt.Errorf("-merge needs shard checkpoint files as arguments")
		}
		return runMerge(cfg, spec, out, errw)
	}
	if len(cfg.MergeInputs) != 0 {
		return fmt.Errorf("unexpected arguments %v (shard files are only read with -merge)", cfg.MergeInputs)
	}
	snk, err := sink(cfg.Format, out)
	if err != nil {
		return err
	}

	job, err := sweep.Plan(spec)
	if err != nil {
		return err
	}
	if cfg.Shard != "" {
		i, n, err := parseShard(cfg.Shard)
		if err != nil {
			return err
		}
		if job, err = job.Shard(i, n); err != nil {
			return err
		}
		fmt.Fprintf(errw, "tctp-sweep: shard %d/%d: %d of %d cells, plan %s\n",
			i+1, n, job.Cells(), job.TotalCells(), job.Fingerprint())
	}
	opts := sweep.RunOpts{
		Checkpoint: cfg.Checkpoint,
		Resume:     cfg.Resume,
		Sinks:      []sweep.Sink{snk},
	}
	// The in-place progress line is terminated after the run returns,
	// not at RunsDone == RunsTotal: under adaptive replication the
	// total is a ceiling early-stopped cells never reach.
	progressed := false
	if cfg.Progress {
		opts.Progress = func(p sweep.Progress) {
			progressed = true
			fmt.Fprintf(errw, "\rcells %d/%d runs %d/%d",
				p.CellsDone, p.CellsTotal, p.RunsDone, p.RunsTotal)
		}
	}
	partial, err := job.Run(context.Background(), opts)
	if progressed {
		fmt.Fprintln(errw)
	}
	if err != nil {
		return err
	}
	report(partial.Result(), errw)
	return nil
}

// runClient submits the sweep to a tctp-server and copies the result —
// byte-identical to a local run of the same flags — to out.
func runClient(cfg config, out, errw io.Writer) error {
	var resultPath string
	switch cfg.Format {
	case "csv":
		resultPath = "result.csv"
	case "json":
		resultPath = "result.jsonl"
	default:
		return fmt.Errorf("format %q is not available with -server (valid: csv, json)", cfg.Format)
	}
	req, err := cfg.request()
	if err != nil {
		return err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	base := strings.TrimRight(cfg.Server, "/")

	resp, err := http.Post(base+"/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("submit to %s: %w", cfg.Server, err)
	}
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			return fmt.Errorf("server is at capacity (retry after %ss): %s",
				resp.Header.Get("Retry-After"), strings.TrimSpace(string(msg)))
		}
		return fmt.Errorf("submit rejected (%s): %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var sub protocol.SubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("bad submit response: %w", err)
	}
	fmt.Fprintf(errw, "tctp-sweep: submitted %s: %d cells, plan %s\n",
		sub.ID, sub.Cells, sub.Fingerprint)

	if cfg.Progress {
		if err := streamEvents(base, sub.ID, errw); err != nil {
			return err
		}
	}

	res, err := http.Get(base + "/sweeps/" + sub.ID + "/" + resultPath)
	if err != nil {
		return fmt.Errorf("fetch result: %w", err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(res.Body, 4<<10))
		return fmt.Errorf("sweep failed (%s): %s", res.Status, strings.TrimSpace(string(msg)))
	}
	_, err = io.Copy(out, res.Body)
	return err
}

// streamEvents follows the sweep's NDJSON event stream, rendering the
// same in-place progress line a local -progress run prints, plus each
// cell's cache source tally at the end.
func streamEvents(base, id string, errw io.Writer) error {
	resp, err := http.Get(base + "/sweeps/" + id + "/events")
	if err != nil {
		return fmt.Errorf("event stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("event stream (%s): %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	dec := json.NewDecoder(resp.Body)
	cells := 0
	source := map[protocol.Source]int{}
	progressed := false
	for {
		var ev protocol.Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				break
			}
			return fmt.Errorf("event stream: %w", err)
		}
		switch ev.Type {
		case "cell":
			cells++
			source[ev.Source]++
			progressed = true
			fmt.Fprintf(errw, "\rcells %d", cells)
		case "done":
			if progressed {
				fmt.Fprintln(errw)
			}
			fmt.Fprintf(errw, "tctp-sweep: %s done: %d cells (%d runs), %s\n",
				id, ev.Cells, ev.Runs, sourceSummary(source))
			return nil
		case "error":
			if progressed {
				fmt.Fprintln(errw)
			}
			return fmt.Errorf("sweep %s failed: %s", id, ev.Error)
		}
	}
	return nil
}

// sourceSummary renders the cell-source tally of a server run:
// in-process computes as "local", cache hits as "cached", joins as
// "joined", and — when the server runs a worker fleet — one
// "worker:<id>" count per worker, sorted by id.
func sourceSummary(source map[protocol.Source]int) string {
	parts := []string{
		fmt.Sprintf("%d local", source[protocol.SourceComputed]),
		fmt.Sprintf("%d cached", source[protocol.SourceHit]),
		fmt.Sprintf("%d joined", source[protocol.SourceJoined]),
	}
	var workers []string
	for src := range source {
		if strings.HasPrefix(string(src), "worker:") {
			workers = append(workers, string(src))
		}
	}
	sort.Strings(workers)
	for _, w := range workers {
		parts = append(parts, fmt.Sprintf("%d %s", source[protocol.Source(w)], w))
	}
	return strings.Join(parts, ", ")
}

// runMerge rebuilds the full sweep from shard checkpoint files and
// writes it through the selected sink to cfg.Merge ("-" = out).
func runMerge(cfg config, spec sweep.Spec, out, errw io.Writer) error {
	partials := make([]*sweep.Partial, len(cfg.MergeInputs))
	for i, path := range cfg.MergeInputs {
		p, err := sweep.LoadPartial(path)
		if err != nil {
			return err
		}
		partials[i] = p
	}
	// Merge into memory first: a refused shard set (fingerprint
	// mismatch, missing cell, overlap) must not truncate a previously
	// good output file.
	w := out
	var buf bytes.Buffer
	if cfg.Merge != "-" {
		w = &buf
	}
	snk, err := sink(cfg.Format, w)
	if err != nil {
		return err
	}
	res, err := sweep.Merge(spec, partials, snk)
	if err != nil {
		return err
	}
	if cfg.Merge != "-" {
		if err := os.WriteFile(cfg.Merge, buf.Bytes(), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(errw, "tctp-sweep: merged %d shard files into %d cells (%d runs)\n",
		len(partials), len(res.Cells), res.Runs)
	report(res, errw)
	return nil
}

// report surfaces skipped and early-stopped cells on stderr.
func report(res *sweep.Result, errw io.Writer) {
	for _, sk := range res.Skipped {
		fmt.Fprintf(errw, "tctp-sweep: skipped cell %v: %s\n", sk.Point, sk.Reason)
	}
	if len(res.Skipped) > 0 {
		fmt.Fprintf(errw, "tctp-sweep: %d cells run, %d skipped\n",
			len(res.Cells), len(res.Skipped))
	}
	for _, st := range res.Stopped {
		fmt.Fprintf(errw, "tctp-sweep: stopped cell %v early after %d reps: %s\n",
			st.Point, st.Reps, st.Reason)
	}
}
