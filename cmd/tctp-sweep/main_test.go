package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("10, 20,30")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("parseInts = %v", got)
	}
	if _, err := parseInts("10,x"); err == nil {
		t.Fatal("bad integer accepted")
	}
}

func TestAlgorithmSelector(t *testing.T) {
	for _, name := range []string{"btctp", "wtctp", "chb", "sweep", "random"} {
		alg, err := algorithm(name)
		if err != nil || alg == nil {
			t.Fatalf("%s: %v", name, err)
		}
		if alg.Name() == "" {
			t.Fatalf("%s: empty name", name)
		}
	}
	if _, err := algorithm("nope"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSweepRunSmall(t *testing.T) {
	// Redirecting stdout is awkward; just exercise the core loop with
	// a tiny sweep and make sure it completes without error.
	if err := run("btctp", "8", "2", 1, 5_000); err != nil {
		t.Fatal(err)
	}
	if err := run("btctp", "2", "8", 1, 5_000); err != nil {
		t.Fatal(err)
	}
	if err := run("bogus", "8", "2", 1, 5_000); err == nil {
		t.Fatal("bad algorithm accepted")
	}
	if err := run("btctp", "8;9", "2", 1, 5_000); err == nil {
		t.Fatal("bad targets list accepted")
	}
}
