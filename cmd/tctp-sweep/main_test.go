package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"tctp/internal/scenario"
)

var update = flag.Bool("update", false, "rewrite the golden fixture")

func TestParseInts(t *testing.T) {
	got, err := parseInts("10, 20,30")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("parseInts = %v", got)
	}
	if _, err := parseInts("10,x"); err == nil {
		t.Fatal("bad integer accepted")
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("1.5, 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1.5 || got[1] != 2 {
		t.Fatalf("parseFloats = %v", got)
	}
	if _, err := parseFloats("1;2"); err == nil {
		t.Fatal("bad number accepted")
	}
}

func TestParsePlacements(t *testing.T) {
	got, err := parsePlacements("uniform, clusters")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsePlacements = %v", got)
	}
	if _, err := parsePlacements("hexgrid"); err == nil {
		t.Fatal("bad placement accepted")
	}
}

func TestAlgorithmSelector(t *testing.T) {
	for _, name := range []string{"btctp", "wtctp", "chb", "sweep", "random"} {
		alg, err := algorithm(name)
		if err != nil || alg == nil {
			t.Fatalf("%s: %v", name, err)
		}
		if alg.Name() == "" {
			t.Fatalf("%s: empty name", name)
		}
	}
	if _, err := algorithm("nope"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// goldenConfig is the fixed workload pinned by testdata/golden.csv.
func goldenConfig() config {
	return config{
		Algs: "btctp,chb", Targets: "6,8", Mules: "2,3",
		Speeds: "2", Placements: "uniform",
		Seeds: 3, Horizon: 5_000, Format: "csv",
	}
}

// TestGoldenCSV pins the engine-backed CSV output byte-for-byte: any
// change to seed derivation, aggregation order, or formatting shows up
// as a fixture diff. Regenerate deliberately with -update.
func TestGoldenCSV(t *testing.T) {
	var out, errw bytes.Buffer
	cfg := goldenConfig()
	cfg.Workers = 4
	if err := run(cfg, &out, &errw); err != nil {
		t.Fatal(err)
	}
	const path = "testdata/golden.csv"
	if *update {
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("output diverged from %s:\ngot:\n%s\nwant:\n%s", path, out.Bytes(), want)
	}
}

// TestDeterministicAcrossWorkers asserts the CLI contract directly:
// identical bytes with 1 worker and 8.
func TestDeterministicAcrossWorkers(t *testing.T) {
	outputs := make([]string, 0, 2)
	for _, workers := range []int{1, 8} {
		var out, errw bytes.Buffer
		cfg := goldenConfig()
		cfg.Workers = workers
		if err := run(cfg, &out, &errw); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, out.String())
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("output depends on worker count:\nworkers=1:\n%s\nworkers=8:\n%s",
			outputs[0], outputs[1])
	}
}

func TestSkippedCellsReported(t *testing.T) {
	var out, errw bytes.Buffer
	cfg := goldenConfig()
	cfg.Targets, cfg.Mules = "2,8", "2,8"
	if err := run(cfg, &out, &errw); err != nil {
		t.Fatal(err)
	}
	msg := errw.String()
	// targets=2 cannot host 8 mules: two cells (per algorithm) skip.
	if !strings.Contains(msg, "skipped cell") ||
		!strings.Contains(msg, "targets=2 mules=8") ||
		!strings.Contains(msg, "at least one target per mule") {
		t.Fatalf("skip report missing:\n%s", msg)
	}
	if !strings.Contains(msg, "6 cells run, 2 skipped") {
		t.Fatalf("run summary missing:\n%s", msg)
	}
	// Skipped cells leave no CSV rows behind.
	if strings.Contains(out.String(), "2,8,") {
		t.Fatalf("skipped cell leaked into output:\n%s", out.String())
	}
}

func TestFormats(t *testing.T) {
	for _, format := range []string{"json", "table"} {
		var out, errw bytes.Buffer
		cfg := goldenConfig()
		cfg.Targets, cfg.Mules, cfg.Algs = "6", "2", "btctp"
		cfg.Format = format
		if err := run(cfg, &out, &errw); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if out.Len() == 0 {
			t.Fatalf("%s: empty output", format)
		}
	}
	cfg := goldenConfig()
	cfg.Format = "xml"
	if err := run(cfg, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestBadFlags(t *testing.T) {
	for _, cfg := range []config{
		{Algs: "bogus", Targets: "6", Mules: "2", Speeds: "2", Placements: "uniform", Seeds: 1, Horizon: 5_000, Format: "csv"},
		{Algs: "btctp", Targets: "6;7", Mules: "2", Speeds: "2", Placements: "uniform", Seeds: 1, Horizon: 5_000, Format: "csv"},
		{Algs: "btctp", Targets: "6", Mules: "x", Speeds: "2", Placements: "uniform", Seeds: 1, Horizon: 5_000, Format: "csv"},
		{Algs: "btctp", Targets: "6", Mules: "2", Speeds: "fast", Placements: "uniform", Seeds: 1, Horizon: 5_000, Format: "csv"},
		{Algs: "btctp", Targets: "6", Mules: "2", Speeds: "2", Placements: "ring", Seeds: 1, Horizon: 5_000, Format: "csv"},
		{Algs: "btctp", Targets: "0", Mules: "1", Speeds: "2", Placements: "uniform", Seeds: 1, Horizon: 5_000, Format: "csv"},
		{Algs: "btctp", Targets: "6", Mules: "2", Speeds: "-1", Placements: "uniform", Seeds: 1, Horizon: 5_000, Format: "csv"},
		{Algs: "btctp", Targets: "6", Mules: "2", Speeds: "2", Placements: "uniform", Seeds: 0, Horizon: 5_000, Format: "csv"},
		{Algs: "btctp", Targets: "6", Mules: "2", Speeds: "2", Placements: "uniform", Seeds: 1, Horizon: -1, Format: "csv"},
		{Algs: "btctp", Targets: "6", Fleets: "2x", Seeds: 1, Horizon: 5_000, Format: "csv"},
		{Algs: "btctp", Targets: "6", Fleets: "2x2", Speeds: "1,2", Seeds: 1, Horizon: 5_000, Format: "csv"},
		{Algs: "btctp", Targets: "6", Fleets: "2x2", Mules: "2,4", Seeds: 1, Horizon: 5_000, Format: "csv"},
		{Algs: "btctp", Targets: "6", Mules: "2", Speeds: "2", Placements: "uniform", Workloads: "sometimes", Seeds: 1, Horizon: 5_000, Format: "csv"},
		{Algs: "btctp", Targets: "6", Mules: "2", Speeds: "2", Placements: "uniform", Preset: "atlantis", Seeds: 1, Horizon: 5_000, Format: "csv"},
	} {
		if err := run(cfg, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

// TestScenarioAxesSweep is the acceptance sweep of the scenario
// refactor: {placement: uniform, clusters} × {fleet: homogeneous,
// mixed-speed} × {workload: off, on} through the real CLI path.
func TestScenarioAxesSweep(t *testing.T) {
	var out, errw bytes.Buffer
	cfg := config{
		Algs:        "btctp",
		Targets:     "8",
		Fleets:      "2x2;1x1+1x3",
		Placements:  "uniform,clusters",
		Workloads:   "off,on",
		WorkloadGen: 60, WorkloadBuf: 50, WorkloadDeadline: 3600,
		Seeds: 2, Horizon: 8_000, Format: "csv",
	}
	if err := run(cfg, &out, &errw); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1+8 { // header + 2 fleets × 2 placements × 2 workloads
		t.Fatalf("%d lines:\n%s", len(lines), out.String())
	}
	header := lines[0]
	for _, col := range []string{"fleet", "workload", "delivered", "on_time_pct"} {
		if !strings.Contains(header, col) {
			t.Fatalf("header misses %q: %s", col, header)
		}
	}
	// Mixed-speed cells carry the fleet name and a 0 speed; workload-on
	// cells deliver packets.
	if !strings.Contains(out.String(), "1x1+1x3") {
		t.Fatalf("mixed fleet missing from output:\n%s", out.String())
	}
	for i, line := range lines[1:] {
		rec := strings.Split(line, ",")
		workload := rec[10]
		delivered := rec[22] // point columns + reps + 4 metric pairs
		if workload == "packets" && delivered == "0.000" {
			t.Fatalf("row %d: workload-on cell delivered nothing: %s", i, line)
		}
		if workload == "" && delivered != "0.000" {
			t.Fatalf("row %d: workload-off cell delivered %s", i, delivered)
		}
	}
}

// TestPresetDefaults: -preset fills the axis defaults (placement,
// targets, mules, horizon) from the named scenario preset.
func TestPresetDefaults(t *testing.T) {
	var out, errw bytes.Buffer
	cfg := config{
		Algs: "btctp", Preset: "clustered",
		Targets: "6", // explicit flags still win
		Seeds:   1, Format: "csv",
	}
	if err := run(cfg, &out, &errw); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines:\n%s", len(lines), out.String())
	}
	rec := strings.Split(lines[1], ",")
	if rec[1] != "6" { // explicit -targets
		t.Fatalf("targets = %s", rec[1])
	}
	if rec[2] != "4" { // preset fleet size
		t.Fatalf("mules = %s", rec[2])
	}
	if rec[5] != "clusters" { // preset placement
		t.Fatalf("placement = %s", rec[5])
	}
	if rec[6] != "100000" { // preset horizon
		t.Fatalf("horizon = %s", rec[6])
	}
}

func TestParseFleetsAndWorkloads(t *testing.T) {
	fs, err := parseFleets("2x2; 1x1+1x3")
	if err != nil || len(fs) != 2 || fs[1].Size() != 2 {
		t.Fatalf("parseFleets = %v, %v", fs, err)
	}
	if _, err := parseFleets("2x2;;"); err == nil {
		t.Fatal("empty fleet spec accepted")
	}
	ws, err := parseWorkloads(config{Workloads: "off,on", WorkloadGen: 30, WorkloadBuf: 5, WorkloadDeadline: 900})
	if err != nil || len(ws) != 2 {
		t.Fatalf("parseWorkloads = %v, %v", ws, err)
	}
	if ws[0].Enabled() || !ws[1].Enabled() {
		t.Fatalf("workload enable flags wrong: %v", ws)
	}
	if ws[1].Data.GenInterval != 30 || ws[1].Data.BufferCap != 5 || ws[1].Data.Deadline != 900 {
		t.Fatalf("workload knobs ignored: %+v", ws[1].Data)
	}
}

func TestProgressOutput(t *testing.T) {
	var out, errw bytes.Buffer
	cfg := goldenConfig()
	cfg.Targets, cfg.Mules, cfg.Algs = "6", "2", "btctp"
	cfg.Progress = true
	if err := run(cfg, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "runs 3/3") {
		t.Fatalf("progress missing:\n%q", errw.String())
	}
}

// TestScenarioFileDefaults: -scenario loads a serialized scenario from
// disk and fills the axis defaults exactly like -preset.
func TestScenarioFileDefaults(t *testing.T) {
	var out, errw bytes.Buffer
	cfg := config{
		Algs: "btctp", Scenario: "testdata/scenario.json",
		Seeds: 1, Format: "csv",
	}
	if err := run(cfg, &out, &errw); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines:\n%s", len(lines), out.String())
	}
	rec := strings.Split(lines[1], ",")
	if rec[1] != "9" { // fixture target count
		t.Fatalf("targets = %s", rec[1])
	}
	if rec[2] != "3" { // fixture fleet size
		t.Fatalf("mules = %s", rec[2])
	}
	if rec[5] != "clusters" { // fixture placement
		t.Fatalf("placement = %s", rec[5])
	}
	if rec[6] != "20000" { // fixture horizon
		t.Fatalf("horizon = %s", rec[6])
	}
}

// TestScenarioFileRoundTrip: serializing a preset to JSON and loading
// it back through -scenario sweeps identically to -preset — the CLI
// proof that the scenario model round-trips.
func TestScenarioFileRoundTrip(t *testing.T) {
	ps, err := scenario.Preset("clustered")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(ps, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "clustered.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	outputs := make([]string, 0, 2)
	for _, cfg := range []config{
		{Algs: "btctp", Preset: "clustered", Seeds: 2, Format: "csv"},
		{Algs: "btctp", Scenario: path, Seeds: 2, Format: "csv"},
	} {
		var out, errw bytes.Buffer
		if err := run(cfg, &out, &errw); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, out.String())
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("-scenario of a serialized preset diverged from -preset:\n%s\nvs\n%s",
			outputs[0], outputs[1])
	}
}

func TestScenarioFileErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	invalid := filepath.Join(dir, "invalid.json")
	if err := os.WriteFile(invalid, []byte(`{"targets":{"count":0},"fleet":{"mules":[{"speed":2}]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, cfg := range map[string]config{
		"missing": {Algs: "btctp", Scenario: filepath.Join(dir, "absent.json"), Seeds: 1, Format: "csv"},
		"garbage": {Algs: "btctp", Scenario: bad, Seeds: 1, Format: "csv"},
		"invalid": {Algs: "btctp", Scenario: invalid, Seeds: 1, Format: "csv"},
		"preset-conflict": {Algs: "btctp", Preset: "clustered", Scenario: "testdata/scenario.json",
			Seeds: 1, Format: "csv"},
	} {
		if err := run(cfg, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestParseAdaptive(t *testing.T) {
	a, err := parseAdaptive("avg_dcdt_s:0.05")
	if err != nil || a.Metric != "avg_dcdt_s" || a.RelCI != 0.05 || a.MinReps != 0 || a.MaxReps != 0 {
		t.Fatalf("parseAdaptive = %+v, %v", a, err)
	}
	a, err = parseAdaptive("avg_sd_s:0.1:4:40")
	if err != nil || a.MinReps != 4 || a.MaxReps != 40 {
		t.Fatalf("parseAdaptive = %+v, %v", a, err)
	}
	for _, bad := range []string{"", "m", "m:x", ":0.1", "m:0.1:x", "m:0.1:2:x", "m:0.1:2:3:4"} {
		if _, err := parseAdaptive(bad); err == nil {
			t.Fatalf("parseAdaptive(%q) accepted", bad)
		}
	}
}

// TestAdaptiveSweepCLI: the acceptance path end to end — a low-variance
// cell stops before the cap, the CSV reps column carries the actual
// count, and the stop is reported on stderr.
func TestAdaptiveSweepCLI(t *testing.T) {
	var out, errw bytes.Buffer
	cfg := config{
		Algs: "btctp", Targets: "6", Mules: "2", Speeds: "2", Placements: "uniform",
		Seeds: 30, Horizon: 5_000, Format: "csv",
		Adaptive: "avg_dcdt_s:0.3:3",
	}
	if err := run(cfg, &out, &errw); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	rec := strings.Split(lines[1], ",")
	reps, err := strconv.Atoi(rec[13]) // the reps column follows the 13 point columns
	if err != nil {
		t.Fatalf("reps column %q: %v", rec[13], err)
	}
	if reps < 3 || reps >= 30 {
		t.Fatalf("adaptive cell ran %d reps, want early stop in [3,30)", reps)
	}
	if !strings.Contains(errw.String(), "stopped cell") ||
		!strings.Contains(errw.String(), "avg_dcdt_s") {
		t.Fatalf("stop report missing:\n%s", errw.String())
	}
	if err := run(config{
		Algs: "btctp", Targets: "6", Mules: "2", Speeds: "2", Placements: "uniform",
		Seeds: 5, Horizon: 5_000, Format: "csv", Adaptive: "nope:0.3",
	}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown adaptive metric accepted")
	}
}

// TestCheckpointResumeCLI: -checkpoint writes a resumable state file
// and -resume replays it to output identical to a plain run.
func TestCheckpointResumeCLI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	base := config{
		Algs: "btctp", Targets: "6", Mules: "2", Speeds: "2", Placements: "uniform",
		Seeds: 3, Horizon: 5_000, Format: "csv",
	}
	var plain, errw bytes.Buffer
	if err := run(base, &plain, &errw); err != nil {
		t.Fatal(err)
	}

	ck := base
	ck.Checkpoint = path
	var first bytes.Buffer
	if err := run(ck, &first, &errw); err != nil {
		t.Fatal(err)
	}
	if first.String() != plain.String() {
		t.Fatalf("checkpointed run diverged from plain run")
	}

	ck.Resume = true
	var resumed bytes.Buffer
	if err := run(ck, &resumed, &errw); err != nil {
		t.Fatal(err)
	}
	if resumed.String() != plain.String() {
		t.Fatalf("-resume output diverged:\n%s\nvs\n%s", resumed.String(), plain.String())
	}

	// -resume without -checkpoint is rejected.
	bad := base
	bad.Resume = true
	if err := run(bad, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Fatal("-resume without -checkpoint accepted")
	}
}

func TestParseShard(t *testing.T) {
	i, n, err := parseShard("2/3")
	if err != nil || i != 1 || n != 3 {
		t.Fatalf("parseShard(2/3) = %d, %d, %v", i, n, err)
	}
	i, n, err = parseShard(" 1 / 1 ")
	if err != nil || i != 0 || n != 1 {
		t.Fatalf("parseShard(1/1) = %d, %d, %v", i, n, err)
	}
	for _, bad := range []string{"", "2", "a/3", "2/b", "0/3", "4/3", "-1/3", "1/0"} {
		if _, _, err := parseShard(bad); err == nil {
			t.Fatalf("parseShard(%q) accepted", bad)
		}
	}
}

// TestShardMergeCLI is the distributed workflow end to end: the same
// flags run whole, and as three shards whose checkpoints merge back to
// byte-identical CSV — with skipped cells reproduced on stderr.
func TestShardMergeCLI(t *testing.T) {
	dir := t.TempDir()
	base := goldenConfig()
	base.Mules = "2,8" // targets=6 cannot host 8 mules: skipped cells
	var whole, wholeErr bytes.Buffer
	if err := run(base, &whole, &wholeErr); err != nil {
		t.Fatal(err)
	}

	shards := make([]string, 3)
	for i := range shards {
		shards[i] = filepath.Join(dir, "shard"+strconv.Itoa(i+1)+".jsonl")
		cfg := base
		cfg.Shard = strconv.Itoa(i+1) + "/3"
		cfg.Checkpoint = shards[i]
		var out, errw bytes.Buffer
		if err := run(cfg, &out, &errw); err != nil {
			t.Fatalf("shard %d: %v", i+1, err)
		}
		if !strings.Contains(errw.String(), "shard "+strconv.Itoa(i+1)+"/3") {
			t.Fatalf("shard %d report missing:\n%s", i+1, errw.String())
		}
	}

	mergeCfg := base
	mergeCfg.Merge = "-"
	mergeCfg.MergeInputs = shards
	var merged, mergedErr bytes.Buffer
	if err := run(mergeCfg, &merged, &mergedErr); err != nil {
		t.Fatal(err)
	}
	if merged.String() != whole.String() {
		t.Fatalf("merged CSV diverged from whole run:\n%s\nvs\n%s", merged.String(), whole.String())
	}
	if !strings.Contains(mergedErr.String(), "merged 3 shard files") ||
		!strings.Contains(mergedErr.String(), "skipped cell") {
		t.Fatalf("merge report missing:\n%s", mergedErr.String())
	}

	// -merge to a file path writes the same bytes to disk.
	outPath := filepath.Join(dir, "merged.csv")
	mergeCfg.Merge = outPath
	if err := run(mergeCfg, &bytes.Buffer{}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(onDisk) != whole.String() {
		t.Fatalf("-merge file diverged from whole run")
	}

	// A shard merged under different flags is refused on the
	// fingerprint.
	mismatch := mergeCfg
	mismatch.Seeds++
	if err := run(mismatch, &bytes.Buffer{}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "refusing to merge") {
		t.Fatalf("mismatched merge: err = %v, want fingerprint refusal", err)
	}
}

// A shard can itself be checkpoint-killed and resumed before merging.
func TestShardResumeCLI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.jsonl")
	cfg := goldenConfig()
	cfg.Shard = "2/2"
	cfg.Checkpoint = path
	var first bytes.Buffer
	if err := run(cfg, &first, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	cfg.Resume = true
	var resumed bytes.Buffer
	if err := run(cfg, &resumed, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if resumed.String() != first.String() {
		t.Fatalf("resumed shard output diverged:\n%s\nvs\n%s", resumed.String(), first.String())
	}
}

func TestShardMergeFlagErrors(t *testing.T) {
	base := goldenConfig()
	for name, mutate := range map[string]func(*config){
		"bad-shard":        func(c *config) { c.Shard = "5/2" },
		"malformed-shard":  func(c *config) { c.Shard = "two/three" },
		"merge-no-inputs":  func(c *config) { c.Merge = "-" },
		"merge-with-shard": func(c *config) { c.Merge = "-"; c.MergeInputs = []string{"x"}; c.Shard = "1/2" },
		"merge-with-ckpt":  func(c *config) { c.Merge = "-"; c.MergeInputs = []string{"x"}; c.Checkpoint = "c" },
		"merge-missing":    func(c *config) { c.Merge = "-"; c.MergeInputs = []string{"absent.jsonl"} },
		"stray-args":       func(c *config) { c.MergeInputs = []string{"stray.jsonl"} },
	} {
		cfg := base
		mutate(&cfg)
		if err := run(cfg, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

// TestPartitionAxisCLI: -partition adds the partition axis — B-TCTP
// cells become C-BTCTP, the CSV gains the partition column and the
// per-group DCDT columns, and non-partitionable algorithms are
// skipped rather than failed.
func TestPartitionAxisCLI(t *testing.T) {
	var out, errw bytes.Buffer
	cfg := config{
		Algs: "btctp,random", Targets: "12", Mules: "4", Speeds: "2",
		Placements: "clusters", Partition: "none,kmeans:4",
		Seeds: 2, Horizon: 5_000, Format: "csv",
	}
	if err := run(cfg, &out, &errw); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	header := lines[0]
	for _, col := range []string{"partition", "groups", "group_dcdt_s_1", "group_dcdt_s_4", "group_sd_s_4"} {
		if !strings.Contains(header, col) {
			t.Fatalf("header misses %q: %s", col, header)
		}
	}
	// 2 algs × 2 partitions − the skipped random×kmeans:4 cell.
	if len(lines) != 1+3 {
		t.Fatalf("%d rows:\n%s", len(lines), out.String())
	}
	if !strings.Contains(out.String(), "kmeans:4") {
		t.Fatalf("partitioned cell missing:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "no partitioned variant") {
		t.Fatalf("skip report missing:\n%s", errw.String())
	}
	// The partitioned cell reports 4 groups.
	for _, line := range lines[1:] {
		if strings.Contains(line, "kmeans:4") && !strings.Contains(line, ",4.000,") {
			t.Fatalf("partitioned row misses groups=4: %s", line)
		}
	}
}

// TestPartitionFlagErrors: malformed -partition values are refused.
func TestPartitionFlagErrors(t *testing.T) {
	for _, bad := range []string{"kmeans", "kmeans:0", "voronoi:2", "kmeans:2:zzz"} {
		cfg := goldenConfig()
		cfg.Partition = bad
		var out, errw bytes.Buffer
		if err := run(cfg, &out, &errw); err == nil {
			t.Fatalf("-partition %q accepted", bad)
		}
	}
}

// TestPartitionShardMergeIdentical: the partition axis flows through
// plan fingerprints, shard checkpoints, and merge unchanged.
func TestPartitionShardMergeIdentical(t *testing.T) {
	dir := t.TempDir()
	mk := func() config {
		cfg := goldenConfig()
		cfg.Partition = "none,kmeans:2"
		return cfg
	}

	var whole, errw bytes.Buffer
	if err := run(mk(), &whole, &errw); err != nil {
		t.Fatal(err)
	}

	shards := make([]string, 2)
	for i := range shards {
		shards[i] = filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", i+1))
		cfg := mk()
		cfg.Shard = fmt.Sprintf("%d/2", i+1)
		cfg.Checkpoint = shards[i]
		var out bytes.Buffer
		if err := run(cfg, &out, &errw); err != nil {
			t.Fatal(err)
		}
	}

	merged := filepath.Join(dir, "merged.csv")
	cfg := mk()
	cfg.Merge = merged
	cfg.MergeInputs = shards
	var out bytes.Buffer
	if err := run(cfg, &out, &errw); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, whole.Bytes()) {
		t.Fatalf("merged partitioned sweep differs from the whole run:\n%s\nvs\n%s",
			got, whole.Bytes())
	}
}

// TestGrid10kSmoke drives the large-n preset end to end through the
// CLI: 10 000 targets planned with the spatially indexed C-BTCTP path
// (k-means partition, per-group circuits) and a sharded in-cell fold.
// The horizon is cut to keep the simulation share small — the preset
// exists to stress planning, and this test is the guard that the
// indexed paths stay feasible at that scale. Skipped under -short.
func TestGrid10kSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n smoke test")
	}
	var out, errw bytes.Buffer
	cfg := config{
		Algs: "btctp", Preset: "grid10k",
		Partition: "kmeans:16",
		Seeds:     1, Horizon: 2_000,
		RepShards: 2,
		Format:    "csv",
	}
	if err := run(cfg, &out, &errw); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d output lines:\n%s", len(lines), out.String())
	}
	rec := strings.Split(lines[1], ",")
	if rec[1] != "10000" {
		t.Fatalf("targets = %s", rec[1])
	}
	if rec[2] != "16" {
		t.Fatalf("mules = %s", rec[2])
	}
}

// TestRepShardsCLI pins the CLI contract for -rep-shards: identical
// bytes at 1 and 8 workers, and the advertised flag incompatibilities.
func TestRepShardsCLI(t *testing.T) {
	outputs := make([]string, 0, 2)
	for _, workers := range []int{1, 8} {
		var out, errw bytes.Buffer
		cfg := goldenConfig()
		cfg.RepShards = 3
		cfg.Workers = workers
		if err := run(cfg, &out, &errw); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, out.String())
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("sharded output depends on worker count:\n%s\nvs\n%s", outputs[0], outputs[1])
	}

	var out, errw bytes.Buffer
	cfg := goldenConfig()
	cfg.RepShards = 2
	cfg.Adaptive = "avg_dcdt_s:0.5"
	if err := run(cfg, &out, &errw); err == nil {
		t.Fatal("-rep-shards with -adaptive accepted")
	}
	cfg = goldenConfig()
	cfg.RepShards = 2
	cfg.Checkpoint = filepath.Join(t.TempDir(), "ck.jsonl")
	if err := run(cfg, &out, &errw); err == nil {
		t.Fatal("-rep-shards with -checkpoint accepted")
	}
}
