package main

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden fixture")

func TestParseInts(t *testing.T) {
	got, err := parseInts("10, 20,30")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("parseInts = %v", got)
	}
	if _, err := parseInts("10,x"); err == nil {
		t.Fatal("bad integer accepted")
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("1.5, 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1.5 || got[1] != 2 {
		t.Fatalf("parseFloats = %v", got)
	}
	if _, err := parseFloats("1;2"); err == nil {
		t.Fatal("bad number accepted")
	}
}

func TestParsePlacements(t *testing.T) {
	got, err := parsePlacements("uniform, clusters")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsePlacements = %v", got)
	}
	if _, err := parsePlacements("hexgrid"); err == nil {
		t.Fatal("bad placement accepted")
	}
}

func TestAlgorithmSelector(t *testing.T) {
	for _, name := range []string{"btctp", "wtctp", "chb", "sweep", "random"} {
		alg, err := algorithm(name)
		if err != nil || alg == nil {
			t.Fatalf("%s: %v", name, err)
		}
		if alg.Name() == "" {
			t.Fatalf("%s: empty name", name)
		}
	}
	if _, err := algorithm("nope"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// goldenConfig is the fixed workload pinned by testdata/golden.csv.
func goldenConfig() config {
	return config{
		Algs: "btctp,chb", Targets: "6,8", Mules: "2,3",
		Speeds: "2", Placements: "uniform",
		Seeds: 3, Horizon: 5_000, Format: "csv",
	}
}

// TestGoldenCSV pins the engine-backed CSV output byte-for-byte: any
// change to seed derivation, aggregation order, or formatting shows up
// as a fixture diff. Regenerate deliberately with -update.
func TestGoldenCSV(t *testing.T) {
	var out, errw bytes.Buffer
	cfg := goldenConfig()
	cfg.Workers = 4
	if err := run(cfg, &out, &errw); err != nil {
		t.Fatal(err)
	}
	const path = "testdata/golden.csv"
	if *update {
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("output diverged from %s:\ngot:\n%s\nwant:\n%s", path, out.Bytes(), want)
	}
}

// TestDeterministicAcrossWorkers asserts the CLI contract directly:
// identical bytes with 1 worker and 8.
func TestDeterministicAcrossWorkers(t *testing.T) {
	outputs := make([]string, 0, 2)
	for _, workers := range []int{1, 8} {
		var out, errw bytes.Buffer
		cfg := goldenConfig()
		cfg.Workers = workers
		if err := run(cfg, &out, &errw); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, out.String())
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("output depends on worker count:\nworkers=1:\n%s\nworkers=8:\n%s",
			outputs[0], outputs[1])
	}
}

func TestSkippedCellsReported(t *testing.T) {
	var out, errw bytes.Buffer
	cfg := goldenConfig()
	cfg.Targets, cfg.Mules = "2,8", "2,8"
	if err := run(cfg, &out, &errw); err != nil {
		t.Fatal(err)
	}
	msg := errw.String()
	// targets=2 cannot host 8 mules: two cells (per algorithm) skip.
	if !strings.Contains(msg, "skipped cell") ||
		!strings.Contains(msg, "targets=2 mules=8") ||
		!strings.Contains(msg, "at least one target per mule") {
		t.Fatalf("skip report missing:\n%s", msg)
	}
	if !strings.Contains(msg, "6 cells run, 2 skipped") {
		t.Fatalf("run summary missing:\n%s", msg)
	}
	// Skipped cells leave no CSV rows behind.
	if strings.Contains(out.String(), "2,8,") {
		t.Fatalf("skipped cell leaked into output:\n%s", out.String())
	}
}

func TestFormats(t *testing.T) {
	for _, format := range []string{"json", "table"} {
		var out, errw bytes.Buffer
		cfg := goldenConfig()
		cfg.Targets, cfg.Mules, cfg.Algs = "6", "2", "btctp"
		cfg.Format = format
		if err := run(cfg, &out, &errw); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if out.Len() == 0 {
			t.Fatalf("%s: empty output", format)
		}
	}
	cfg := goldenConfig()
	cfg.Format = "xml"
	if err := run(cfg, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestBadFlags(t *testing.T) {
	for _, cfg := range []config{
		{Algs: "bogus", Targets: "6", Mules: "2", Speeds: "2", Placements: "uniform", Seeds: 1, Horizon: 5_000, Format: "csv"},
		{Algs: "btctp", Targets: "6;7", Mules: "2", Speeds: "2", Placements: "uniform", Seeds: 1, Horizon: 5_000, Format: "csv"},
		{Algs: "btctp", Targets: "6", Mules: "x", Speeds: "2", Placements: "uniform", Seeds: 1, Horizon: 5_000, Format: "csv"},
		{Algs: "btctp", Targets: "6", Mules: "2", Speeds: "fast", Placements: "uniform", Seeds: 1, Horizon: 5_000, Format: "csv"},
		{Algs: "btctp", Targets: "6", Mules: "2", Speeds: "2", Placements: "ring", Seeds: 1, Horizon: 5_000, Format: "csv"},
		{Algs: "btctp", Targets: "0", Mules: "1", Speeds: "2", Placements: "uniform", Seeds: 1, Horizon: 5_000, Format: "csv"},
		{Algs: "btctp", Targets: "6", Mules: "2", Speeds: "-1", Placements: "uniform", Seeds: 1, Horizon: 5_000, Format: "csv"},
		{Algs: "btctp", Targets: "6", Mules: "2", Speeds: "2", Placements: "uniform", Seeds: 0, Horizon: 5_000, Format: "csv"},
		{Algs: "btctp", Targets: "6", Mules: "2", Speeds: "2", Placements: "uniform", Seeds: 1, Horizon: 0, Format: "csv"},
	} {
		if err := run(cfg, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

func TestProgressOutput(t *testing.T) {
	var out, errw bytes.Buffer
	cfg := goldenConfig()
	cfg.Targets, cfg.Mules, cfg.Algs = "6", "2", "btctp"
	cfg.Progress = true
	if err := run(cfg, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "runs 3/3") {
		t.Fatalf("progress missing:\n%q", errw.String())
	}
}
