// Command tctp-worker is one member of a remote compute fleet: a
// long-lived process that pulls cell leases from a tctp-server running
// with -workers remote, computes each cell through the engine's
// single-cell sub-job path, and posts the bit-exact fold state back.
//
// Usage:
//
//	tctp-worker -server http://host:8080
//	tctp-worker -server http://host:8080 -id rack3-a -concurrency 2
//
// Workers are stateless and interchangeable: attach as many as the
// sweep load needs, kill them freely — a cell lost with its worker is
// reassigned by the server when the lease expires, and the sweep's
// output bytes are identical at any fleet size. See the README's
// "Worker fleet" section for the lease lifecycle.
package main

import (
	"context"
	"flag"
	"log"
	"os/signal"
	"syscall"
	"time"

	"tctp/internal/sweep/worker"
)

func main() {
	var (
		server      = flag.String("server", "", "tctp-server base URL (required), e.g. http://host:8080")
		id          = flag.String("id", "", "worker id reported to the scheduler (default <hostname>-<pid>)")
		concurrency = flag.Int("concurrency", 1, "cells computed at once (each cell already parallelizes its replications)")
		poll        = flag.Duration("poll", 15*time.Second, "lease long-poll horizon")
	)
	flag.Parse()
	if *server == "" {
		log.Fatalln("tctp-worker: -server is required")
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	log.Printf("tctp-worker: pulling leases from %s (concurrency %d)", *server, *concurrency)
	if err := worker.Run(ctx, worker.Options{
		Server:      *server,
		ID:          *id,
		Concurrency: *concurrency,
		Poll:        *poll,
		Logf:        log.Printf,
	}); err != nil {
		log.Fatalln("tctp-worker:", err)
	}
	log.Printf("tctp-worker: shut down")
}
