// Command tctp plans and simulates one patrolling scenario and prints
// the route map, the plan summary, and the paper's metrics.
//
// Usage:
//
//	tctp -alg btctp -targets 20 -mules 4 -seed 1
//	tctp -alg wtctp -policy balancing -vips 3 -weight 4
//	tctp -alg rwtctp -battery 150000
//	tctp -alg chb | -alg sweep | -alg random
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tctp/internal/baseline"
	"tctp/internal/core"
	"tctp/internal/energy"
	"tctp/internal/field"
	"tctp/internal/patrol"
	"tctp/internal/viz"
	"tctp/internal/xrand"
)

func main() {
	var (
		alg       = flag.String("alg", "btctp", "algorithm: btctp, wtctp, rwtctp, chb, sweep, random")
		policy    = flag.String("policy", "shortest", "W-TCTP break policy: shortest or balancing")
		targets   = flag.Int("targets", 20, "number of targets (excluding the sink)")
		mules     = flag.Int("mules", 4, "number of data mules")
		vips      = flag.Int("vips", 0, "number of VIP targets")
		weight    = flag.Int("weight", 3, "VIP weight")
		placement = flag.String("placement", "uniform", "target placement: uniform, clusters, grid")
		seed      = flag.Uint64("seed", 1, "scenario seed")
		horizon   = flag.Float64("horizon", 60_000, "simulated seconds")
		battery   = flag.Float64("battery", energy.DefaultCapacity, "battery capacity (J), used with -alg rwtctp")
		mapW      = flag.Int("map-width", 72, "ASCII map width (0 disables the map)")
		mapH      = flag.Int("map-height", 28, "ASCII map height")
		loadPath  = flag.String("load", "", "load the scenario from this JSON file instead of generating one")
		savePath  = flag.String("save", "", "save the (generated or loaded) scenario as JSON")
	)
	flag.Parse()

	if err := run(*alg, *policy, *targets, *mules, *vips, *weight, *placement,
		*seed, *horizon, *battery, *mapW, *mapH, *loadPath, *savePath); err != nil {
		fmt.Fprintln(os.Stderr, "tctp:", err)
		os.Exit(1)
	}
}

// loadScenario reads a scenario JSON file written by -save.
func loadScenario(path string) (*field.Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s field.Scenario
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", path, err)
	}
	return &s, nil
}

func run(alg, policy string, targets, mules, vips, weight int, placement string,
	seed uint64, horizon, battery float64, mapW, mapH int, loadPath, savePath string) error {

	var place field.Placement
	switch placement {
	case "uniform":
		place = field.Uniform
	case "clusters":
		place = field.Clusters
	case "grid":
		place = field.Grid
	default:
		return fmt.Errorf("unknown placement %q", placement)
	}

	src := xrand.New(seed)
	var s *field.Scenario
	if loadPath != "" {
		loaded, err := loadScenario(loadPath)
		if err != nil {
			return err
		}
		s = loaded
		targets = s.NumTargets() - 1
		mules = s.NumMules()
	} else {
		s = field.Generate(field.Config{
			NumTargets:   targets,
			NumMules:     mules,
			Placement:    place,
			WithRecharge: alg == "rwtctp",
		}, src)
		if vips > 0 {
			s.AssignVIPs(src, vips, weight)
		}
	}
	if savePath != "" {
		b, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(savePath, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("scenario saved to %s\n", savePath)
	}

	var pol core.BreakPolicy
	switch policy {
	case "shortest":
		pol = core.ShortestLength
	case "balancing":
		pol = core.BalancingLength
	default:
		return fmt.Errorf("unknown policy %q", policy)
	}

	opts := patrol.Options{Horizon: horizon}
	var algorithm patrol.Algorithm
	switch alg {
	case "btctp":
		algorithm = patrol.Planned(&core.BTCTP{})
	case "wtctp":
		algorithm = patrol.Planned(&core.WTCTP{Policy: pol})
	case "rwtctp":
		model := energy.Default()
		model.Capacity = battery
		rw := &core.RWTCTP{}
		rw.Policy = pol
		rw.Model = model
		opts.UseBattery = true
		opts.Energy = model
		algorithm = patrol.Planned(rw)
	case "chb":
		algorithm = patrol.Planned(&baseline.CHB{})
	case "sweep":
		algorithm = patrol.Planned(&baseline.Sweep{})
	case "random":
		algorithm = patrol.Online(&baseline.Random{})
	default:
		return fmt.Errorf("unknown algorithm %q", alg)
	}

	res, err := patrol.Run(s, algorithm, opts, xrand.New(seed+1))
	if err != nil {
		return err
	}

	fmt.Printf("algorithm: %s\n", res.Algorithm)
	fmt.Printf("scenario: %d targets (+sink), %d mules, %s placement, seed %d\n",
		targets, mules, placement, seed)
	if mapW > 0 {
		fmt.Print(viz.MapPlan(s, res.Plan, mapW, mapH))
	}
	if res.Plan != nil {
		pts := s.Points()
		fmt.Printf("patrolling path: %d stops, %.1f m",
			res.Plan.TotalWalkSize(), res.Plan.TotalWalkLength(pts))
		if len(res.Plan.Groups) > 1 {
			fmt.Printf(" across %d patrol groups", len(res.Plan.Groups))
		}
		fmt.Println()
		if res.Plan.Rounds > 0 {
			fmt.Printf("recharge rounds (Equ. 4): %d\n", res.Plan.Rounds)
		}
	}
	fmt.Printf("simulated: %.0f s, %d visits, %.0f J total (%.1f J/visit)\n",
		horizon, res.TotalVisits(), res.TotalEnergy(), res.EnergyPerVisit())

	warm := res.PatrolStart + 1
	fmt.Printf("metrics (steady state):\n")
	fmt.Printf("  avg visiting interval (DCDT): %.1f s\n", res.Recorder.AvgDCDTAfter(warm))
	fmt.Printf("  avg SD of intervals:          %.3f s\n", res.Recorder.AvgSDAfter(warm))
	fmt.Printf("  max interval:                 %.1f s\n", res.Recorder.MaxInterval())
	if res.DeadMules() > 0 {
		fmt.Printf("  DEAD MULES: %d of %d\n", res.DeadMules(), len(res.Mules))
	}
	for i, m := range res.Mules {
		fmt.Printf("  mule %d: %.0f m, %d visits, %d recharges\n",
			i, m.Distance, m.Visits, m.Recharges)
	}
	return nil
}
