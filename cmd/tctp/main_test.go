package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunAllAlgorithms(t *testing.T) {
	for _, alg := range []string{"btctp", "wtctp", "rwtctp", "chb", "sweep", "random"} {
		err := run(alg, "shortest", 10, 2, 1, 3, "uniform", 1, 5_000,
			200_000, 0 /* no map */, 0, "", "")
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("nope", "shortest", 10, 2, 0, 3, "uniform", 1, 1_000, 1e5, 0, 0, "", ""); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run("btctp", "shortest", 10, 2, 0, 3, "hexagonal", 1, 1_000, 1e5, 0, 0, "", ""); err == nil {
		t.Fatal("unknown placement accepted")
	}
	if err := run("wtctp", "zigzag", 10, 2, 0, 3, "uniform", 1, 1_000, 1e5, 0, 0, "", ""); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestSaveAndLoadScenario(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	if err := run("btctp", "shortest", 8, 2, 0, 3, "grid", 1, 2_000, 1e5, 0, 0, "", path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("scenario not saved: %v", err)
	}
	// Reload and re-run on the saved scenario.
	if err := run("chb", "shortest", 0, 0, 0, 0, "uniform", 1, 2_000, 1e5, 0, 0, path, ""); err != nil {
		t.Fatalf("load failed: %v", err)
	}
	s, err := loadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumTargets() != 9 || s.NumMules() != 2 {
		t.Fatalf("loaded %d targets, %d mules", s.NumTargets(), s.NumMules())
	}
}

func TestLoadScenarioErrors(t *testing.T) {
	if _, err := loadScenario("/nonexistent/file.json"); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadScenario(bad); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadScenario(empty); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}
