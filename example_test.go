package tctp_test

import (
	"fmt"

	"tctp"
)

// ExampleRun demonstrates the paper's headline property end to end:
// after B-TCTP's location initialization, every target is visited at a
// perfectly constant interval.
func ExampleRun() {
	s := tctp.GenerateScenario(tctp.ScenarioConfig{
		NumTargets: 12,
		NumMules:   3,
		Placement:  tctp.Uniform,
	}, 7)

	res, err := tctp.Run(s, &tctp.BTCTP{}, tctp.Options{Horizon: 40_000}, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	warm := res.PatrolStart + 1
	fmt.Printf("steady-state SD: %.6f s\n", res.Recorder.AvgSDAfter(warm))
	// Output:
	// steady-state SD: 0.000000 s
}

// ExampleWTCTP shows the Weighted Patrolling Path honouring target
// weights: a weight-3 VIP lies on exactly three cycles and is visited
// three times per traversal.
func ExampleWTCTP() {
	s := tctp.GenerateScenario(tctp.ScenarioConfig{
		NumTargets: 10,
		NumMules:   1,
		Placement:  tctp.Grid,
	}, 1)
	s.Targets[4].Weight = 3 // upgrade one target to a VIP

	planner := &tctp.WTCTP{Policy: tctp.BalancingLength}
	plan, err := planner.Plan(s)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("VIP occurrences on the WPP: %d\n", plan.Groups[0].Walk.Occurrences(4))
	fmt.Printf("cycles through the VIP:     %d\n", len(plan.Groups[0].Walk.CyclesAt(4)))
	// Output:
	// VIP occurrences on the WPP: 3
	// cycles through the VIP:     3
}

// ExampleNewDataNetwork runs the data-collection overlay on top of a
// patrol as a peer observer: every reading reaches the sink within
// the deadline under B-TCTP on this workload.
func ExampleNewDataNetwork() {
	s := tctp.GenerateScenario(tctp.ScenarioConfig{
		NumTargets: 10,
		NumMules:   2,
		Placement:  tctp.Uniform,
	}, 3)
	nw := tctp.NewDataNetwork(s, tctp.DataConfig{
		GenInterval: 60,
		BufferCap:   50,
		Deadline:    3600,
	})
	opts := tctp.Options{
		Horizon:   60_000,
		Observers: []tctp.Observer{nw},
	}
	if _, err := tctp.Run(s, &tctp.BTCTP{}, opts, 1); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("on-time fraction: %.2f\n", nw.OnTimeFraction())
	fmt.Printf("overflowed: %d\n", nw.Overflowed())
	// Output:
	// on-time fraction: 1.00
	// overflowed: 0
}

// ExampleScenarioSpec builds a declarative scenario — clustered
// placement, a mixed-speed fleet, a packet workload — and runs it end
// to end with one call.
func ExampleScenarioSpec() {
	sc, err := tctp.NewScenario("demo").
		Targets(10).
		Mule(1.5, 0). // slow mule
		Mule(3, 0).   // fast mule
		Horizon(60_000).
		Workload("packets", tctp.DataConfig{GenInterval: 60, BufferCap: 50, Deadline: 3600}).
		Build()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := tctp.RunScenario(sc, &tctp.BTCTP{}, 3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("fleet of %d, on-time fraction: %.2f\n",
		len(res.Mules), res.Data[0].OnTimeFraction())
	// Output:
	// fleet of 2, on-time fraction: 1.00
}
