// Data collection end to end — the application the paper's
// introduction motivates: sensor nodes at every target produce a
// reading each minute into a bounded buffer; the mules pick readings
// up as they patrol and hand everything to the sink when they pass it.
// The example measures the actual delivery pipeline (latency against a
// deadline, buffer overflows) under B-TCTP and under the Random
// baseline on the same scenario.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"tctp"
)

func main() {
	scenario := tctp.GenerateScenario(tctp.ScenarioConfig{
		NumTargets: 20,
		NumMules:   4,
		Placement:  tctp.Uniform,
	}, 33)

	cfg := tctp.DataConfig{
		GenInterval: 60,   // one reading per node per minute
		BufferCap:   40,   // node storage: 40 readings
		Deadline:    2500, // the paper's "given time constraint"
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tdelivered\ton-time %\toverflowed\tmean latency (s)\tmax latency (s)")

	runOne := func(name string, runner func(opts tctp.Options) (*tctp.Result, error)) {
		nw := tctp.NewDataNetwork(scenario, cfg)
		opts := tctp.Options{
			Horizon: 150_000,
			Hooks:   tctp.Hooks{OnVisit: nw.OnVisit, OnDeath: nw.OnDeath},
		}
		if _, err := runner(opts); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%d\t%.0f\t%.0f\n",
			name, nw.Delivered(), 100*nw.OnTimeFraction(), nw.Overflowed(),
			nw.MeanLatency(), nw.MaxLatency())
	}

	runOne("B-TCTP", func(opts tctp.Options) (*tctp.Result, error) {
		return tctp.Run(scenario, &tctp.BTCTP{}, opts, 1)
	})
	runOne("Random", func(opts tctp.Options) (*tctp.Result, error) {
		return tctp.RunRandom(scenario, opts, 1)
	})
	w.Flush()

	fmt.Println("\nB-TCTP's constant visiting interval bounds every reading's wait at")
	fmt.Println("the node; Random lets unlucky nodes overflow and miss the deadline.")
}
