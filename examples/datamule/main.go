// Data collection end to end — the application the paper's
// introduction motivates: sensor nodes at every target produce a
// reading each minute into a bounded buffer; the mules pick readings
// up as they patrol and hand everything to the sink when they pass it.
// The workload is declared on the scenario itself, so every run —
// B-TCTP and the Random baseline alike — gets the delivery pipeline
// (latency against a deadline, buffer overflows) attached as a peer
// observer automatically.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"tctp"
)

func main() {
	sc, err := tctp.NewScenario("datamule").
		Targets(20).
		Fleet(4, 2).
		Horizon(150_000).
		Workload("packets", tctp.DataConfig{
			GenInterval: 60,   // one reading per node per minute
			BufferCap:   40,   // node storage: 40 readings
			Deadline:    2500, // the paper's "given time constraint"
		}).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tdelivered\ton-time %\toverflowed\tmean latency (s)\tmax latency (s)")

	report := func(name string, res *tctp.ScenarioResult) {
		nw := res.Data[0] // the "packets" workload overlay
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%d\t%.0f\t%.0f\n",
			name, nw.Delivered(), 100*nw.OnTimeFraction(), nw.Overflowed(),
			nw.MeanLatency(), nw.MaxLatency())
	}

	btctp, err := tctp.RunScenario(sc, &tctp.BTCTP{}, 33)
	if err != nil {
		log.Fatal(err)
	}
	report("B-TCTP", btctp)

	random, err := tctp.RunScenarioRandom(sc, 33)
	if err != nil {
		log.Fatal(err)
	}
	report("Random", random)
	w.Flush()

	fmt.Println("\nB-TCTP's constant visiting interval bounds every reading's wait at")
	fmt.Println("the node; Random lets unlucky nodes overflow and miss the deadline.")
}
