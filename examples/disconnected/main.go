// Disconnected areas — the paper's motivating deployment: targets
// clustered in several mutually unreachable regions, where static
// sensor networks would need costly relay nodes but mobile data mules
// simply drive between regions. The clustered layout is a single
// builder call; the example compares all four mechanisms (Random,
// Sweep, CHB, B-TCTP) on one clustered scenario — the textual
// counterpart of the paper's Fig. 7 experiment.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"tctp"
)

func main() {
	sc, err := tctp.NewScenario("disconnected").
		Targets(24).
		Clusters(4, 70).
		Fleet(4, 2).
		Horizon(200_000).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		name string
		res  *tctp.ScenarioResult
	}
	var rows []row

	for _, planner := range []tctp.Planner{
		&tctp.Sweep{},
		&tctp.CHB{},
		&tctp.BTCTP{},
	} {
		res, err := tctp.RunScenario(sc, planner, 21)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{planner.Name(), res})
	}
	random, err := tctp.RunScenarioRandom(sc, 21)
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"Random", random})

	fmt.Println("deployment: 24 targets in 4 disconnected clusters, 4 data mules")
	fmt.Print(tctp.MapString(rows[0].res.Scenario, nil, 72, 26))
	fmt.Println()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tavg interval (s)\tavg SD (s)\tmax interval (s)")
	for _, r := range rows {
		warm := r.res.PatrolStart + 1
		fmt.Fprintf(w, "%s\t%.1f\t%.2f\t%.1f\n",
			r.name,
			r.res.Recorder.AvgDCDTAfter(warm),
			r.res.Recorder.AvgSDAfter(warm),
			r.res.Recorder.MaxInterval())
	}
	w.Flush()

	fmt.Println("\nexpected shape (paper Fig. 7): B-TCTP has the steadiest intervals")
	fmt.Println("(SD ~0); CHB and Sweep oscillate; Random is largest and erratic.")
}
