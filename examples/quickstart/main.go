// Quickstart: declare the paper's §5.1 scenario with the scenario
// builder, simulate a B-TCTP patrol on it, and confirm the paper's
// headline property — once the mules are equally spaced along the
// shared circuit, every target is visited at a perfectly constant
// interval (SD ≈ 0).
package main

import (
	"fmt"
	"log"

	"tctp"
)

func main() {
	// An 800 m × 800 m field (the paper's §5.1 setup): 20 targets plus
	// the sink at the centre, 4 mules at 2 m/s. The builder's defaults
	// are exactly the paper's parameters; only the horizon is
	// overridden here.
	sc, err := tctp.NewScenario("quickstart").
		Targets(20).
		Fleet(4, 2).
		Horizon(50_000).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// Materialize from seed 42 and simulate with B-TCTP in one call.
	res, err := tctp.RunScenario(sc, &tctp.BTCTP{}, 42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(tctp.MapString(res.Scenario, res.Plan, 72, 28))

	pts := res.Scenario.Points()
	circuit := res.Plan.Groups[0].Walk // B-TCTP: one group, one circuit
	fmt.Printf("patrolling circuit: %d targets, %.0f m\n",
		circuit.Size(), circuit.Length(pts))
	fmt.Printf("fleet: %d mules, synchronized patrol start at t=%.0f s\n",
		len(res.Mules), res.PatrolStart)

	// Steady-state metrics: skip the location-initialization
	// transient.
	warm := res.PatrolStart + 1
	fmt.Printf("avg visiting interval: %.1f s\n", res.Recorder.AvgDCDTAfter(warm))
	fmt.Printf("avg SD of intervals:   %.6f s  (the paper's Fig. 8: ~0 for TCTP)\n",
		res.Recorder.AvgSDAfter(warm))

	// Show one target's visit log.
	times := res.Recorder.VisitTimes(1)
	if len(times) > 4 {
		fmt.Printf("target 1 visits: %.0f, %.0f, %.0f, %.0f ... (every %.1f s)\n",
			times[0], times[1], times[2], times[3], times[1]-times[0])
	}
}
