// Recharge-aware patrolling (paper §IV): with a finite battery, a
// fleet that ignores the recharge station dies mid-patrol; RW-TCTP
// computes the Equ. 4 round budget r and detours through the station
// every r-th round, so the patrol runs forever. This example runs both
// fleets side by side on the same scenario and battery.
package main

import (
	"fmt"
	"log"

	"tctp"
)

func main() {
	scenario := tctp.GenerateScenario(tctp.ScenarioConfig{
		NumTargets:   18,
		NumMules:     2,
		Placement:    tctp.Uniform,
		WithRecharge: true,
	}, 11)

	model := tctp.DefaultEnergy()
	model.Capacity = 120_000 // joules: a few patrol rounds per charge

	opts := tctp.Options{
		Horizon:    250_000,
		UseBattery: true,
		Energy:     model,
	}

	// Fleet 1: W-TCTP, no recharge planning.
	plain, err := tctp.Run(scenario, &tctp.WTCTP{}, opts, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Fleet 2: RW-TCTP with the same battery.
	rw := &tctp.RWTCTP{}
	rw.Model = model
	recharge, err := tctp.Run(scenario, rw, opts, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("battery: %.0f kJ, movement cost %.3f J/m\n",
		model.Capacity/1000, model.MoveCost)
	fmt.Printf("RW-TCTP round budget (Equ. 4): patrol WPP %d× then WRP once\n\n",
		recharge.Plan.Rounds)

	report := func(name string, res *tctp.Result) {
		fmt.Printf("%s:\n", name)
		fmt.Printf("  visits: %d, dead mules: %d/%d\n",
			res.TotalVisits(), res.DeadMules(), len(res.Mules))
		recharges := 0
		for _, m := range res.Mules {
			recharges += m.Recharges
		}
		fmt.Printf("  recharges: %d, energy: %.0f kJ (%.1f J/visit)\n",
			recharges, res.TotalEnergy()/1000, res.EnergyPerVisit())
		fmt.Printf("  max visiting interval: %.0f s\n\n", res.Recorder.MaxInterval())
	}
	report("W-TCTP (no recharge)", plain)
	report("RW-TCTP", recharge)

	fmt.Println("expected: the plain fleet dies and stops collecting; RW-TCTP")
	fmt.Println("keeps patrolling indefinitely at a small detour overhead.")
}
