// Recharge-aware patrolling (paper §IV): with a finite battery, a
// fleet that ignores the recharge station dies mid-patrol; RW-TCTP
// computes the Equ. 4 round budget r and detours through the station
// every r-th round, so the patrol runs forever. The batteries are
// per-mule scenario properties, and an energy audit observer watches
// deaths and recharges as a peer of the metrics recorder.
package main

import (
	"fmt"
	"log"

	"tctp"
)

func main() {
	const capacity = 120_000 // joules: a few patrol rounds per charge

	// 18 targets, a recharge station, and two 2 m/s mules each
	// carrying its own 120 kJ battery.
	sc, err := tctp.NewScenario("recharge").
		Targets(18).
		Mule(2, capacity).
		Mule(2, capacity).
		Recharge().
		Horizon(250_000).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	model := tctp.DefaultEnergy()
	model.Capacity = capacity

	// Fleet 1: W-TCTP, no recharge planning.
	plainAudit := tctp.NewEnergyAudit()
	plain, err := tctp.RunScenario(sc, &tctp.WTCTP{}, 11, plainAudit)
	if err != nil {
		log.Fatal(err)
	}

	// Fleet 2: RW-TCTP with the same batteries.
	rw := &tctp.RWTCTP{}
	rw.Model = model
	rwAudit := tctp.NewEnergyAudit()
	recharge, err := tctp.RunScenario(sc, rw, 11, rwAudit)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("battery: %.0f kJ per mule, movement cost %.3f J/m\n",
		model.Capacity/1000, model.MoveCost)
	fmt.Printf("RW-TCTP round budget (Equ. 4): patrol WPP %d× then WRP once\n\n",
		recharge.Plan.Rounds)

	report := func(name string, res *tctp.ScenarioResult, audit *tctp.EnergyAudit) {
		fmt.Printf("%s:\n", name)
		fmt.Printf("  visits: %d, dead mules: %d/%d\n",
			res.TotalVisits(), audit.Deaths(), len(res.Mules))
		if first, ok := audit.FirstDeath(); ok {
			fmt.Printf("  first death at t=%.0f s\n", first)
		}
		fmt.Printf("  recharges: %d, energy: %.0f kJ (%.1f J/visit)\n",
			audit.Recharges(), res.TotalEnergy()/1000, res.EnergyPerVisit())
		fmt.Printf("  max visiting interval: %.0f s\n\n", res.Recorder.MaxInterval())
	}
	report("W-TCTP (no recharge)", plain, plainAudit)
	report("RW-TCTP", recharge, rwAudit)

	fmt.Println("expected: the plain fleet dies and stops collecting; RW-TCTP")
	fmt.Println("keeps patrolling indefinitely at a small detour overhead.")
}
