// Sweepgrid demonstrates the job-based sweep API: plan a parameter
// grid once, split it into two shards, run them concurrently in this
// process (on a cluster each shard would run on its own machine with
// `tctp-sweep -shard i/n -checkpoint shardi.jsonl`), and merge the
// partials losslessly. The merged output is byte-identical to a
// single-machine run — the per-cell fold records travel as bit-exact
// Welford accumulator state, and the plan fingerprint guards against
// merging shards of a different grid.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"sync"

	"tctp"
)

func main() {
	// A small two-axis grid: one algorithm, three target counts, two
	// fleet sizes, four replications per cell.
	spec := tctp.SweepSpec{
		Name:       "sweepgrid",
		Algorithms: []tctp.SweepVariant{tctp.SweepAlgo("btctp", &tctp.BTCTP{})},
		Targets:    []int{10, 15, 20},
		Mules:      []int{2, 4},
		Horizons:   []float64{20_000},
		Metrics: []tctp.SweepMetric{
			{Name: "avg_dcdt_s", Fn: func(e tctp.SweepEnv) float64 {
				return e.Result.Recorder.AvgDCDTAfter(e.Warm())
			}},
			{Name: "avg_sd_s", Fn: func(e tctp.SweepEnv) float64 {
				return e.Result.Recorder.AvgSDAfter(e.Warm())
			}},
		},
		Seeds: 4,
	}

	// Plan: deterministic cell enumeration plus a sha256 fingerprint
	// shared by every shard of the same spec.
	job, err := tctp.PlanSweep(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned %d cells, fingerprint %.23s…\n", job.Cells(), job.Fingerprint())

	// Shard: two contiguous halves of the enumeration, run
	// concurrently.
	const shards = 2
	partials := make([]*tctp.SweepPartial, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		shard, err := job.Shard(i, shards)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shard %d/%d runs %d cells\n", i+1, shards, shard.Cells())
		wg.Add(1)
		go func(i int, shard *tctp.SweepJob) {
			defer wg.Done()
			p, err := shard.Run(context.Background(), tctp.SweepRunOpts{})
			if err != nil {
				log.Fatal(err)
			}
			partials[i] = p
		}(i, shard)
	}
	wg.Wait()

	// Merge: fuse the partials into the full sweep, rendered as an
	// aligned table; also collect CSV to prove byte-identity against a
	// direct single-process run.
	var merged bytes.Buffer
	if _, err := tctp.MergeSweep(spec, partials,
		tctp.SweepTable(os.Stdout), tctp.SweepCSV(&merged)); err != nil {
		log.Fatal(err)
	}

	var whole bytes.Buffer
	if _, err := tctp.RunSweep(context.Background(), spec, tctp.SweepCSV(&whole)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged CSV byte-identical to a single-machine run: %v\n",
		bytes.Equal(merged.Bytes(), whole.Bytes()))
}
