// Weighted patrolling: three VIP targets of weight 3 must be visited
// three times per path traversal (paper §III). The VIP population is
// part of the declarative scenario; the example builds the Weighted
// Patrolling Path under both break-edge policies and shows the
// paper's Fig. 9/10 trade-off: Shortest-Length yields a shorter path
// (lower average interval) while Balancing-Length yields steadier VIP
// intervals (lower SD).
package main

import (
	"fmt"
	"log"

	"tctp"
)

func main() {
	sc, err := tctp.NewScenario("weighted").
		Targets(20).
		VIPs(3, 3). // three weight-3 VIPs, chosen by the scenario seed
		Fleet(1, 2).
		Horizon(150_000).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	for i, policy := range []tctp.BreakPolicy{tctp.ShortestLength, tctp.BalancingLength} {
		planner := &tctp.WTCTP{Policy: policy}
		res, err := tctp.RunScenario(sc, planner, 7)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			fmt.Println("VIPs:", res.Scenario.VIPs())
		}
		pts := res.Scenario.Points()
		warm := res.PatrolStart + 1
		fmt.Printf("\n%s policy:\n", policy)
		wpp := res.Plan.Groups[0].Walk // W-TCTP: one group, one WPP
		fmt.Printf("  WPP: %d stops, %.0f m\n", wpp.Size(), wpp.Length(pts))
		for _, vip := range res.Scenario.VIPs() {
			lens := wpp.CycleLengthsAt(pts, vip)
			fmt.Printf("  VIP %d cycles (m): ", vip)
			for _, l := range lens {
				fmt.Printf("%.0f ", l)
			}
			fmt.Printf(" | interval SD %.1f s\n", res.Recorder.SDAfter(vip, warm))
		}
		fmt.Printf("  avg interval over all targets: %.1f s, avg SD: %.1f s\n",
			res.Recorder.AvgDCDTAfter(warm), res.Recorder.AvgSDAfter(warm))
	}

	fmt.Println("\nexpected shape (paper Figs. 9–10): shortest → smaller avg interval;")
	fmt.Println("balancing → similar cycle lengths and much smaller VIP SD.")
}
