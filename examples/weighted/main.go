// Weighted patrolling: three VIP targets of weight 3 must be visited
// three times per path traversal (paper §III). The example builds the
// Weighted Patrolling Path under both break-edge policies and shows
// the paper's Fig. 9/10 trade-off: Shortest-Length yields a shorter
// path (lower average interval) while Balancing-Length yields steadier
// VIP intervals (lower SD).
package main

import (
	"fmt"
	"log"

	"tctp"
)

func main() {
	scenario := tctp.GenerateScenario(tctp.ScenarioConfig{
		NumTargets: 20,
		NumMules:   1,
		Placement:  tctp.Uniform,
	}, 7)
	// Upgrade 3 random targets to VIPs of weight 3. (AssignVIPs is
	// seeded separately so the same targets are picked every run.)
	scenario.AssignVIPs(tctp.NewRandSource(8), 3, 3)

	fmt.Println("VIPs:", scenario.VIPs())

	for _, policy := range []tctp.BreakPolicy{tctp.ShortestLength, tctp.BalancingLength} {
		planner := &tctp.WTCTP{Policy: policy}
		res, err := tctp.Run(scenario, planner, tctp.Options{Horizon: 150_000}, 1)
		if err != nil {
			log.Fatal(err)
		}
		pts := scenario.Points()
		warm := res.PatrolStart + 1
		fmt.Printf("\n%s policy:\n", policy)
		fmt.Printf("  WPP: %d stops, %.0f m\n", res.Plan.Walk.Size(), res.Plan.Walk.Length(pts))
		for _, vip := range scenario.VIPs() {
			lens := res.Plan.Walk.CycleLengthsAt(pts, vip)
			fmt.Printf("  VIP %d cycles (m): ", vip)
			for _, l := range lens {
				fmt.Printf("%.0f ", l)
			}
			fmt.Printf(" | interval SD %.1f s\n", res.Recorder.SDAfter(vip, warm))
		}
		fmt.Printf("  avg interval over all targets: %.1f s, avg SD: %.1f s\n",
			res.Recorder.AvgDCDTAfter(warm), res.Recorder.AvgSDAfter(warm))
	}

	fmt.Println("\nexpected shape (paper Figs. 9–10): shortest → smaller avg interval;")
	fmt.Println("balancing → similar cycle lengths and much smaller VIP SD.")
}
