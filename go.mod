module tctp

go 1.23
