module tctp

go 1.24
