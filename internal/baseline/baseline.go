// Package baseline reimplements the three comparison mechanisms of the
// paper's §V so the evaluation can be regenerated end to end:
//
//   - Random — every data mule repeatedly picks a uniformly random not
//     yet self-visited target and travels straight to it; when it has
//     seen every target the epoch resets. (An online policy: it emits
//     a mule.Router rather than a fixed plan.)
//   - Sweep (after Cheng et al., IPDPS'08) — the targets are
//     partitioned into one group per mule and each mule patrols a
//     Hamiltonian circuit over its own group. Group path lengths
//     differ, which is exactly why its DCDT oscillates in Fig. 7.
//   - CHB (after Wu et al., MDM'09) — all mules follow one
//     convex-hull-based Hamiltonian circuit, but without B-TCTP's
//     location initialization: each mule enters the circuit at the
//     point nearest its initial position, so the inter-mule spacing is
//     arbitrary and the visiting intervals are unbalanced.
package baseline

import (
	"fmt"

	"tctp/internal/cluster"
	"tctp/internal/core"
	"tctp/internal/field"
	"tctp/internal/geom"
	"tctp/internal/mule"
	"tctp/internal/tour"
	"tctp/internal/walk"
	"tctp/internal/xrand"
)

// CHB is the convex-hull-based baseline planner.
type CHB struct{}

// Name implements core.Planner.
func (*CHB) Name() string { return "CHB" }

// Plan implements core.Planner. The circuit construction is identical
// to B-TCTP's; the difference is the missing location initialization:
// each mule enters the circuit where it happens to be closest, keeping
// whatever spacing chance provides.
func (c *CHB) Plan(s *field.Scenario) (*core.FleetPlan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	pts := s.Points()
	t := tour.EnsureCCW(pts, tour.ConvexHullInsertion(pts))
	if err := tour.Validate(t, len(pts)); err != nil {
		return nil, fmt.Errorf("baseline: CHB circuit: %w", err)
	}
	w := walk.New(t).RotateToNorthmost(pts)

	n := s.NumMules()
	// CHB is a one-group plan: the whole fleet shares the circuit, but
	// the start points are each mule's nearest entry rather than the
	// equal-length partition.
	group := core.PatrolGroup{
		Walk:        w,
		Targets:     core.SeqIDs(s.NumTargets()),
		Mules:       core.SeqIDs(n),
		StartPoints: make([]geom.Point, n),
		Assignment:  make([]int, n),
	}
	plan := &core.FleetPlan{Algorithm: c.Name()}
	// The whole fleet shares one circuit, so the entry offsets and the
	// routes are computed in one polyline pass each rather than per
	// mule.
	ds := w.NearestOffsets(pts, s.MuleStarts)
	plan.Routes = core.RoutesFromArcs(pts, w, ds)
	for i, start := range s.MuleStarts {
		entry := plan.Routes[i].Approach[0].Pos
		group.StartPoints[i] = entry
		group.Assignment[i] = i
		if dist := start.Dist(entry); dist > plan.MaxApproach {
			plan.MaxApproach = dist
		}
	}
	plan.Groups = []core.PatrolGroup{group}
	return plan, nil
}

// Partition selects how Sweep groups targets.
type Partition int

// Supported partitions.
const (
	// KMeansPartition groups targets with Lloyd's algorithm.
	KMeansPartition Partition = iota
	// SectorPartition splits targets into angular sectors around the
	// centroid.
	SectorPartition
)

// String implements fmt.Stringer.
func (p Partition) String() string {
	switch p {
	case KMeansPartition:
		return "kmeans"
	case SectorPartition:
		return "sectors"
	default:
		return fmt.Sprintf("partition(%d)", int(p))
	}
}

// Sweep is the group-patrolling baseline planner.
type Sweep struct {
	// Partition selects the grouping method (default k-means).
	Partition Partition
	// Rand seeds k-means; nil uses a fixed seed so planning is
	// deterministic.
	Rand *xrand.Source
}

// Name implements core.Planner.
func (sw *Sweep) Name() string { return "Sweep" }

// Plan implements core.Planner: one target group per mule, one circuit
// per group, each mule assigned to an exclusive group by centroid
// distance (closest mules settle first, ties by index). The plan is
// expressed in the group model: one PatrolGroup per region, each
// patrolled by exactly one mule.
func (sw *Sweep) Plan(s *field.Scenario) (*core.FleetPlan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	pts := s.Points()
	n := s.NumMules()
	if n > s.NumTargets() {
		return nil, fmt.Errorf("baseline: Sweep needs at least one target per mule (%d mules, %d targets)",
			n, s.NumTargets())
	}

	rnd := sw.Rand
	if rnd == nil {
		rnd = xrand.New(1)
	}
	var assign []int
	switch sw.Partition {
	case KMeansPartition:
		assign = cluster.KMeans(pts, n, rnd, 100)
	case SectorPartition:
		assign = cluster.Sectors(pts, n)
	default:
		return nil, fmt.Errorf("baseline: unknown partition %v", sw.Partition)
	}
	groups := cluster.Groups(assign, n)

	// Build one circuit (as a walk over global target ids) per group.
	groupWalks := make([]walk.Walk, n)
	centroids := make([]geom.Point, n)
	for g, members := range groups {
		groupPts := make([]geom.Point, len(members))
		for i, id := range members {
			groupPts[i] = pts[id]
		}
		centroids[g] = geom.Centroid(groupPts)
		t := tour.EnsureCCW(groupPts, tour.ConvexHullInsertion(groupPts))
		seq := make([]int, len(t))
		for i, local := range t {
			seq[i] = members[local]
		}
		groupWalks[g] = walk.New(seq)
	}

	// Unique mule→group matching by centroid distance. Mules settle in
	// ascending (distance, index) order — like the location
	// initialization's conflict resolution — so the matching does not
	// depend on the mules' enumeration order beyond exact ties.
	capacity := make([]int, n)
	for g := range capacity {
		capacity[g] = 1
	}
	muleGroup := core.MatchMulesToGroups(s.MuleStarts, centroids, capacity)

	plan := &core.FleetPlan{
		Algorithm: sw.Name(),
		Groups:    make([]core.PatrolGroup, n),
		Routes:    make([]core.MuleRoute, n),
	}
	for g := range plan.Groups {
		plan.Groups[g] = core.PatrolGroup{
			Walk:    groupWalks[g],
			Targets: groups[g],
		}
	}
	for i, g := range muleGroup {
		w := groupWalks[g]
		d := w.NearestOffset(pts, s.MuleStarts[i])
		plan.Routes[i] = core.RouteFromArc(pts, w, d)
		entry := plan.Routes[i].Approach[0].Pos
		plan.Groups[g].Mules = []int{i}
		plan.Groups[g].StartPoints = []geom.Point{entry}
		plan.Groups[g].Assignment = []int{0}
		if dist := s.MuleStarts[i].Dist(entry); dist > plan.MaxApproach {
			plan.MaxApproach = dist
		}
	}
	return plan, nil
}

// Random is the online random-destination baseline. It does not
// implement core.Planner — it has no fixed route; NewRouters yields
// one independent router per mule.
type Random struct{}

// Name identifies the algorithm.
func (*Random) Name() string { return "Random" }

// NewRouters returns one router per mule, each with an independent
// random stream split from src.
func (r *Random) NewRouters(s *field.Scenario, src *xrand.Source) []mule.Router {
	routers := make([]mule.Router, s.NumMules())
	for i := range routers {
		routers[i] = &randomRouter{s: s, src: src.Split()}
	}
	return routers
}

// randomRouter implements the Random policy for one mule: visit every
// target once per epoch in uniformly random order.
type randomRouter struct {
	s         *field.Scenario
	src       *xrand.Source
	remaining []int
}

// Next implements mule.Router.
func (r *randomRouter) Next(*mule.Mule) (mule.Waypoint, bool) {
	if len(r.remaining) == 0 {
		r.remaining = make([]int, r.s.NumTargets())
		for i := range r.remaining {
			r.remaining[i] = i
		}
	}
	k := r.src.Intn(len(r.remaining))
	id := r.remaining[k]
	r.remaining[k] = r.remaining[len(r.remaining)-1]
	r.remaining = r.remaining[:len(r.remaining)-1]
	return mule.Waypoint{Pos: r.s.Targets[id].Pos, TargetID: id}, true
}
