package baseline

import (
	"testing"

	"tctp/internal/core"
	"tctp/internal/field"
	"tctp/internal/geom"
	"tctp/internal/mule"
	"tctp/internal/xrand"
)

func scenario(seed uint64, targets, mules int) *field.Scenario {
	return field.Generate(field.Config{
		NumTargets: targets,
		NumMules:   mules,
		Placement:  field.Uniform,
	}, xrand.New(seed))
}

func TestCHBPlanValid(t *testing.T) {
	s := scenario(1, 20, 4)
	p, err := (&CHB{}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(s); err != nil {
		t.Fatal(err)
	}
	if p.Algorithm != "CHB" {
		t.Fatalf("Algorithm = %q", p.Algorithm)
	}
	// One group whose walk is a Hamiltonian circuit over all targets.
	if len(p.Groups) != 1 {
		t.Fatalf("CHB plan has %d groups, want 1", len(p.Groups))
	}
	if err := p.Groups[0].Walk.Validate(s.NumTargets(), nil); err != nil {
		t.Fatal(err)
	}
	// Every mule's loop covers all targets once.
	for i, r := range p.Routes {
		counts := map[int]int{}
		for _, st := range r.Cycle[0].Stops {
			counts[st.TargetID]++
		}
		if len(counts) != s.NumTargets() {
			t.Fatalf("mule %d covers %d targets", i, len(counts))
		}
	}
}

func TestCHBEntersAtNearestPoint(t *testing.T) {
	s := scenario(2, 15, 3)
	p, err := (&CHB{}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	pts := s.Points()
	w := p.Groups[0].Walk
	for i, r := range p.Routes {
		entry := r.Approach[0].Pos
		// The entry point must be at the minimal distance from the
		// mule's start to the circuit (verified against a dense
		// sampling of the circuit).
		entryDist := s.MuleStarts[i].Dist(entry)
		total := w.Length(pts)
		for f := 0.0; f < 1.0; f += 0.001 {
			q := w.PointAt(pts, f*total)
			if s.MuleStarts[i].Dist(q) < entryDist-1.0 { // 1 m slack for sampling
				t.Fatalf("mule %d entry %.2f m but point %v is %.2f m away",
					i, entryDist, q, s.MuleStarts[i].Dist(q))
			}
		}
	}
}

// TestCHBBatchedAssignMatchesPerMule pins the batched start-point
// assignment (one NearestOffsets/RoutesFromArcs pass for the fleet) to
// the per-mule primitives it replaced: every route must be identical
// to calling NearestOffset + RouteFromArc for that mule alone.
func TestCHBBatchedAssignMatchesPerMule(t *testing.T) {
	s := scenario(7, 25, 6)
	p, err := (&CHB{}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	pts := s.Points()
	w := p.Groups[0].Walk
	for i, start := range s.MuleStarts {
		want := core.RouteFromArc(pts, w, w.NearestOffset(pts, start))
		got := p.Routes[i]
		if got.Approach[0].Pos != want.Approach[0].Pos {
			t.Fatalf("mule %d entry %v, per-mule reference %v",
				i, got.Approach[0].Pos, want.Approach[0].Pos)
		}
		gs, ws := got.Cycle[0].Stops, want.Cycle[0].Stops
		if len(gs) != len(ws) {
			t.Fatalf("mule %d has %d stops, reference %d", i, len(gs), len(ws))
		}
		for k := range gs {
			if gs[k] != ws[k] {
				t.Fatalf("mule %d stop %d = %+v, reference %+v", i, k, gs[k], ws[k])
			}
		}
	}
}

func TestCHBNoLocationInit(t *testing.T) {
	// CHB must NOT equalize spacing: its start points are the mules'
	// nearest entry points, not an equal partition. With clumped mule
	// starts the entries must also clump.
	s := scenario(3, 12, 3)
	for i := range s.MuleStarts {
		s.MuleStarts[i] = s.Targets[s.SinkID].Pos // all at the sink
	}
	p, err := (&CHB{}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	sp := p.Groups[0].StartPoints
	for i := 1; i < len(sp); i++ {
		if !sp[i].Eq(sp[0]) {
			t.Fatal("identical mule starts produced different entries")
		}
	}
}

func TestSweepPlanValid(t *testing.T) {
	s := scenario(4, 20, 4)
	for _, part := range []Partition{KMeansPartition, SectorPartition} {
		sw := &Sweep{Partition: part}
		p, err := sw.Plan(s)
		if err != nil {
			t.Fatalf("%v: %v", part, err)
		}
		if err := p.Validate(s); err != nil {
			t.Fatalf("%v: %v", part, err)
		}
		// The union of all mule loops covers every target exactly
		// once (groups are disjoint and complete).
		counts := map[int]int{}
		for _, r := range p.Routes {
			for _, st := range r.Cycle[0].Stops {
				counts[st.TargetID]++
			}
		}
		if len(counts) != s.NumTargets() {
			t.Fatalf("%v: union covers %d targets, want %d", part, len(counts), s.NumTargets())
		}
		for id, c := range counts {
			if c != 1 {
				t.Fatalf("%v: target %d in %d groups", part, id, c)
			}
		}
	}
}

func TestSweepGroupsAreMuleExclusive(t *testing.T) {
	s := scenario(5, 18, 3)
	p, err := (&Sweep{}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Groups) != s.NumMules() {
		t.Fatalf("Sweep plan has %d groups for %d mules", len(p.Groups), s.NumMules())
	}
	seen := map[int]bool{}
	for gi := range p.Groups {
		g := &p.Groups[gi]
		if len(g.Mules) != 1 {
			t.Fatalf("group %d patrolled by %d mules, want 1", gi, len(g.Mules))
		}
		if seen[g.Mules[0]] {
			t.Fatalf("mule %d patrols two groups", g.Mules[0])
		}
		seen[g.Mules[0]] = true
	}
}

// twoClusterScenario is a hand-built two-region world with an obvious
// k=2 partition: the sink and two targets in the lower-left disc, and
// three targets in the upper-right disc.
func twoClusterScenario(muleStarts []geom.Point) *field.Scenario {
	mk := func(id int, x, y float64) field.Target {
		return field.Target{ID: id, Pos: geom.Pt(x, y), Weight: 1}
	}
	return &field.Scenario{
		Field: geom.NewRect(geom.Pt(0, 0), geom.Pt(800, 800)),
		Targets: []field.Target{
			mk(0, 100, 100), mk(1, 110, 100), mk(2, 100, 110),
			mk(3, 700, 700), mk(4, 710, 700), mk(5, 700, 710),
		},
		SinkID:     0,
		MuleStarts: muleStarts,
	}
}

// TestSweepMatchingOrderIndependent pins the (distance, index) settle
// order of the mule→group matching: the mule closest to a contested
// group keeps it regardless of its index, and permuting the mules
// permutes the matching consistently — the index-order greedy this
// replaces gave the contested group to whichever mule enumerated
// first.
func TestSweepMatchingOrderIndependent(t *testing.T) {
	// Both mules are nearest the lower-left group; mule 1 is closer,
	// so it must keep it and mule 0 must take the upper-right group.
	// The old index-order greedy assigned mule 0 the lower-left group.
	s := twoClusterScenario([]geom.Point{geom.Pt(390, 390), geom.Pt(150, 150)})
	p, err := (&Sweep{}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	groupOfMule := func(p *core.FleetPlan, mule int) []int {
		gi := p.GroupOf(mule)
		if gi < 0 {
			t.Fatalf("mule %d unassigned", mule)
		}
		return p.Groups[gi].Targets
	}
	if got := groupOfMule(p, 1); got[0] != 0 {
		t.Fatalf("mule 1 (closest) patrols targets %v, want the sink's group {0,1,2}", got)
	}
	if got := groupOfMule(p, 0); got[0] != 3 {
		t.Fatalf("mule 0 patrols targets %v, want {3,4,5}", got)
	}

	// Permuting the mules permutes the matching consistently.
	sw := twoClusterScenario([]geom.Point{geom.Pt(150, 150), geom.Pt(390, 390)})
	ps, err := (&Sweep{}).Plan(sw)
	if err != nil {
		t.Fatal(err)
	}
	if got := groupOfMule(ps, 0); got[0] != 0 {
		t.Fatalf("after permutation, mule 0 patrols targets %v, want {0,1,2}", got)
	}
	if got := groupOfMule(ps, 1); got[0] != 3 {
		t.Fatalf("after permutation, mule 1 patrols targets %v, want {3,4,5}", got)
	}
}

func TestSweepTooManyMules(t *testing.T) {
	s := scenario(6, 2, 4) // 3 targets (incl. sink) for 4 mules
	if _, err := (&Sweep{}).Plan(s); err == nil {
		t.Fatal("expected error with more mules than targets")
	}
}

func TestSweepDeterministicWithNilRand(t *testing.T) {
	s := scenario(7, 15, 3)
	a, err := (&Sweep{}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Sweep{}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Routes {
		as, bs := a.Routes[i].Cycle[0].Stops, b.Routes[i].Cycle[0].Stops
		if len(as) != len(bs) {
			t.Fatal("sweep not deterministic")
		}
		for k := range as {
			if as[k].TargetID != bs[k].TargetID {
				t.Fatal("sweep not deterministic")
			}
		}
	}
}

func TestRandomRouterEpochSemantics(t *testing.T) {
	s := scenario(8, 9, 1) // 10 targets including sink
	r := &Random{}
	routers := r.NewRouters(s, xrand.New(42))
	if len(routers) != 1 {
		t.Fatalf("router count = %d", len(routers))
	}
	seen := map[int]int{}
	// Two epochs: every target exactly twice.
	for i := 0; i < 2*s.NumTargets(); i++ {
		wp, ok := routers[0].Next(nil)
		if !ok {
			t.Fatal("random router parked")
		}
		if wp.TargetID < 0 || wp.TargetID >= s.NumTargets() {
			t.Fatalf("bad target %d", wp.TargetID)
		}
		if !wp.Pos.Eq(s.Targets[wp.TargetID].Pos) {
			t.Fatal("waypoint position mismatch")
		}
		seen[wp.TargetID]++
	}
	for id, c := range seen {
		if c != 2 {
			t.Fatalf("target %d visited %d times in two epochs", id, c)
		}
	}
}

func TestRandomRoutersIndependent(t *testing.T) {
	s := scenario(9, 15, 2)
	routers := (&Random{}).NewRouters(s, xrand.New(7))
	a, _ := routers[0].Next(nil)
	b, _ := routers[1].Next(nil)
	// Not a hard guarantee, but with 16 targets identical first picks
	// across independent streams are unlikely; a flake here would
	// indicate stream sharing.
	same := a.TargetID == b.TargetID
	c, _ := routers[0].Next(nil)
	d, _ := routers[1].Next(nil)
	if same && c.TargetID == d.TargetID {
		t.Fatal("routers appear to share one random stream")
	}
}

func TestPartitionString(t *testing.T) {
	for _, p := range []Partition{KMeansPartition, SectorPartition, Partition(9)} {
		if p.String() == "" {
			t.Fatal("empty partition name")
		}
	}
}

var _ mule.Router = (*randomRouter)(nil)
