// Package cluster partitions targets into groups for the Sweep
// baseline (Cheng et al., IPDPS'08), which "initially divides the DMs
// into several groups and then each DM individually patrols the
// targets of one group". Two partitioners are provided: k-means
// (Lloyd's algorithm with k-means++ seeding) and a deterministic
// angular sector partition around the centroid.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"tctp/internal/geom"
	"tctp/internal/geom/index"
	"tctp/internal/xrand"
)

// indexThreshold is the centre count above which the Lloyd assignment
// step queries a spatial grid over the centres instead of scanning
// them; below it, a k-wide linear scan is faster than rebuilding a
// grid per iteration. Both paths are bit-identical (the grid breaks
// ties by (distance, index) exactly like the scan's strict <), so the
// threshold is purely a performance knob.
const indexThreshold = 32

// KMeans partitions pts into k groups with Lloyd's algorithm and
// returns the cluster index of each point. Seeding is k-means++
// (probability proportional to squared distance from the nearest
// chosen centre), driven by src for determinism. Empty clusters are
// re-seeded with the point farthest from its centre, so every cluster
// in the result is non-empty whenever k ≤ len(pts).
// It panics if k < 1 or k > len(pts).
func KMeans(pts []geom.Point, k int, src *xrand.Source, maxIter int) []int {
	n := len(pts)
	if k < 1 || k > n {
		panic(fmt.Sprintf("cluster: KMeans k=%d with %d points", k, n))
	}
	if maxIter <= 0 {
		maxIter = 100
	}

	centres := seedPlusPlus(pts, k, src)
	assign := make([]int, n)
	var g *index.Grid // grid over the centres, rebuilt each iteration
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		if k >= indexThreshold {
			if g == nil {
				g = index.New(centres)
			} else {
				g.Rebuild(centres)
			}
			for i, p := range pts {
				best, _ := g.Nearest(p)
				if assign[i] != best {
					assign[i] = best
					changed = true
				}
			}
		} else {
			for i, p := range pts {
				best, bestD := 0, math.Inf(1)
				for c, ctr := range centres {
					if d := p.Dist2(ctr); d < bestD {
						best, bestD = c, d
					}
				}
				if assign[i] != best {
					assign[i] = best
					changed = true
				}
			}
		}

		// Recompute centres; re-seed empties with the globally
		// farthest point from its assigned centre.
		counts := make([]int, k)
		sums := make([]geom.Vec, k)
		for i, p := range pts {
			c := assign[i]
			counts[c]++
			sums[c] = geom.Vec{X: sums[c].X + p.X, Y: sums[c].Y + p.Y}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				far, farD := 0, -1.0
				for i, p := range pts {
					if d := p.Dist2(centres[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				centres[c] = pts[far]
				assign[far] = c
				changed = true
				continue
			}
			centres[c] = geom.Pt(sums[c].X/float64(counts[c]), sums[c].Y/float64(counts[c]))
		}
		if !changed {
			break
		}
	}
	repairEmpty(pts, assign, centres)
	return assign
}

// KMeansBrute is the original KMeans implementation — full-recompute
// k-means++ seeding and linear-scan Lloyd assignment — retained as the
// reference the indexed path must reproduce bit-for-bit and as the
// baseline for the BenchmarkPlan* speedup measurements. Given sources
// seeded identically, KMeans and KMeansBrute return identical
// assignments.
func KMeansBrute(pts []geom.Point, k int, src *xrand.Source, maxIter int) []int {
	n := len(pts)
	if k < 1 || k > n {
		panic(fmt.Sprintf("cluster: KMeans k=%d with %d points", k, n))
	}
	if maxIter <= 0 {
		maxIter = 100
	}

	centres := seedPlusPlusBrute(pts, k, src)
	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range pts {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centres {
				if d := p.Dist2(ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}

		counts := make([]int, k)
		sums := make([]geom.Vec, k)
		for i, p := range pts {
			c := assign[i]
			counts[c]++
			sums[c] = geom.Vec{X: sums[c].X + p.X, Y: sums[c].Y + p.Y}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				far, farD := 0, -1.0
				for i, p := range pts {
					if d := p.Dist2(centres[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				centres[c] = pts[far]
				assign[far] = c
				changed = true
				continue
			}
			centres[c] = geom.Pt(sums[c].X/float64(counts[c]), sums[c].Y/float64(counts[c]))
		}
		if !changed {
			break
		}
	}
	repairEmpty(pts, assign, centres)
	return assign
}

// repairEmpty enforces the non-empty guarantee after the Lloyd loop.
// The in-loop re-seeding can still end with empty clusters on
// degenerate inputs — e.g. duplicate-heavy point sets where two
// re-seeded centres coincide and the next assignment pass drains one
// of them. Each empty cluster steals the point farthest from its
// current centre among clusters that can spare one (ties by lower
// point index, so the repair is deterministic even when every
// distance is zero).
func repairEmpty(pts []geom.Point, assign []int, centres []geom.Point) {
	k := len(centres)
	counts := make([]int, k)
	for _, c := range assign {
		counts[c]++
	}
	for c := 0; c < k; c++ {
		for counts[c] == 0 {
			far, farD := -1, -1.0
			for i, p := range pts {
				if counts[assign[i]] < 2 {
					continue
				}
				if d := p.Dist2(centres[assign[i]]); d > farD {
					far, farD = i, d
				}
			}
			if far < 0 {
				// Unreachable for k <= len(pts): k non-empty clusters
				// would need k points, and some cluster holds >= 2 while
				// any is empty.
				panic("cluster: cannot repair empty cluster")
			}
			counts[assign[far]]--
			assign[far] = c
			centres[c] = pts[far]
			counts[c]++
		}
	}
}

// seedPlusPlus picks k initial centres with the k-means++ rule.
//
// The nearest-chosen-centre distances are maintained incrementally:
// centres only ever get appended, so each point's distance to its
// nearest centre after adding one more is min(previous, distance to
// the new centre) — the same value the brute per-round recompute in
// seedPlusPlusBrute produces (non-negative floats, so the mins agree
// bit-for-bit), for O(nk) total instead of O(nk²). Both versions draw
// from src identically, so the chosen centres match exactly.
func seedPlusPlus(pts []geom.Point, k int, src *xrand.Source) []geom.Point {
	centres := make([]geom.Point, 0, k)
	centres = append(centres, pts[src.Intn(len(pts))])
	d2 := make([]float64, len(pts))
	total := 0.0
	for i, p := range pts {
		d2[i] = p.Dist2(centres[0])
		total += d2[i]
	}
	addCentre := func(c geom.Point) {
		centres = append(centres, c)
		// Recompute the running total from scratch: the brute path
		// re-sums d2 in index order every round, and matching that
		// summation order keeps the total (and hence the threshold
		// comparison r <= acc) bit-identical.
		total = 0
		for i, p := range pts {
			if d := p.Dist2(c); d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
	}
	for len(centres) < k {
		if total == 0 {
			// All remaining points coincide with centres; duplicate
			// arbitrary points to fill.
			addCentre(pts[src.Intn(len(pts))])
			continue
		}
		r := src.Float64() * total
		acc := 0.0
		chosen := len(pts) - 1
		for i, d := range d2 {
			acc += d
			if r <= acc {
				chosen = i
				break
			}
		}
		addCentre(pts[chosen])
	}
	return centres
}

// seedPlusPlusBrute is the original k-means++ seeding with a full
// nearest-centre recompute every round, retained as the reference for
// the incremental path.
func seedPlusPlusBrute(pts []geom.Point, k int, src *xrand.Source) []geom.Point {
	centres := make([]geom.Point, 0, k)
	centres = append(centres, pts[src.Intn(len(pts))])
	d2 := make([]float64, len(pts))
	for len(centres) < k {
		total := 0.0
		for i, p := range pts {
			best := math.Inf(1)
			for _, c := range centres {
				if d := p.Dist2(c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with centres; duplicate
			// arbitrary points to fill.
			centres = append(centres, pts[src.Intn(len(pts))])
			continue
		}
		r := src.Float64() * total
		acc := 0.0
		chosen := len(pts) - 1
		for i, d := range d2 {
			acc += d
			if r <= acc {
				chosen = i
				break
			}
		}
		centres = append(centres, pts[chosen])
	}
	return centres
}

// Sectors partitions pts into k angular sectors of equal point count
// around the centroid: points are sorted by polar angle and split into
// k consecutive runs of near-equal size. The partition is
// deterministic. It panics if k < 1 or k > len(pts).
func Sectors(pts []geom.Point, k int) []int {
	n := len(pts)
	if k < 1 || k > n {
		panic(fmt.Sprintf("cluster: Sectors k=%d with %d points", k, n))
	}
	centre := geom.Centroid(pts)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pts[order[a]], pts[order[b]]
		aa := math.Atan2(pa.Y-centre.Y, pa.X-centre.X)
		ab := math.Atan2(pb.Y-centre.Y, pb.X-centre.X)
		if aa != ab {
			return aa < ab
		}
		return order[a] < order[b]
	})
	assign := make([]int, n)
	for rank, idx := range order {
		c := rank * k / n
		if c >= k {
			c = k - 1
		}
		assign[idx] = c
	}
	return assign
}

// Groups inverts an assignment into per-cluster member lists. Cluster
// c's members are Groups(assign, k)[c], in ascending index order.
func Groups(assign []int, k int) [][]int {
	out := make([][]int, k)
	for i, c := range assign {
		if c < 0 || c >= k {
			panic(fmt.Sprintf("cluster: assignment %d out of range [0,%d)", c, k))
		}
		out[c] = append(out[c], i)
	}
	return out
}

// Cost returns the total within-cluster sum of squared distances to
// the cluster centroids — the k-means objective, used to compare
// partitions in tests.
func Cost(pts []geom.Point, assign []int, k int) float64 {
	counts := make([]int, k)
	sums := make([]geom.Vec, k)
	for i, p := range pts {
		c := assign[i]
		counts[c]++
		sums[c] = geom.Vec{X: sums[c].X + p.X, Y: sums[c].Y + p.Y}
	}
	centres := make([]geom.Point, k)
	for c := 0; c < k; c++ {
		if counts[c] > 0 {
			centres[c] = geom.Pt(sums[c].X/float64(counts[c]), sums[c].Y/float64(counts[c]))
		}
	}
	total := 0.0
	for i, p := range pts {
		total += p.Dist2(centres[assign[i]])
	}
	return total
}
