package cluster

import (
	"math/rand"
	"testing"

	"tctp/internal/geom"
	"tctp/internal/xrand"
)

// TestKMeansMatchesBrute pins the indexed-assignment, incremental-
// seeding KMeans to the original brute implementation bit-for-bit,
// including k values on both sides of the index threshold and
// degenerate (duplicate-heavy, collinear) point sets.
func TestKMeansMatchesBrute(t *testing.T) {
	rnd := rand.New(rand.NewSource(21))
	sets := map[string][]geom.Point{}

	uniform := make([]geom.Point, 300)
	for i := range uniform {
		uniform[i] = geom.Pt(rnd.Float64()*800, rnd.Float64()*800)
	}
	sets["uniform"] = uniform

	dup := make([]geom.Point, 0, 200)
	for i := 0; i < 50; i++ {
		p := geom.Pt(rnd.Float64()*100, rnd.Float64()*100)
		for j := 0; j < 4; j++ {
			dup = append(dup, p)
		}
	}
	sets["duplicates"] = dup

	col := make([]geom.Point, 150)
	for i := range col {
		col[i] = geom.Pt(float64(i)*3, 0)
	}
	sets["collinear"] = col

	clustered := make([]geom.Point, 0, 240)
	for c := 0; c < 6; c++ {
		cx, cy := rnd.Float64()*800, rnd.Float64()*800
		for i := 0; i < 40; i++ {
			clustered = append(clustered, geom.Pt(cx+rnd.NormFloat64()*4, cy+rnd.NormFloat64()*4))
		}
	}
	sets["clustered"] = clustered

	for name, pts := range sets {
		for _, k := range []int{1, 2, 5, indexThreshold - 1, indexThreshold, indexThreshold + 8, 64} {
			if k > len(pts) {
				continue
			}
			for seed := uint64(1); seed <= 3; seed++ {
				got := KMeans(pts, k, xrand.New(seed), 50)
				want := KMeansBrute(pts, k, xrand.New(seed), 50)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s k=%d seed=%d: assignment differs at point %d: indexed %d, brute %d",
							name, k, seed, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestSeedPlusPlusMatchesBrute pins the incremental k-means++ distance
// maintenance to the per-round full recompute.
func TestSeedPlusPlusMatchesBrute(t *testing.T) {
	rnd := rand.New(rand.NewSource(22))
	pts := make([]geom.Point, 250)
	for i := range pts {
		pts[i] = geom.Pt(rnd.Float64()*800, rnd.Float64()*800)
	}
	// Append duplicates so the total==0 fallback path gets visited for
	// large k over a small distinct set.
	small := []geom.Point{geom.Pt(1, 1), geom.Pt(2, 2), geom.Pt(1, 1), geom.Pt(2, 2), geom.Pt(1, 1)}
	for _, tc := range []struct {
		pts []geom.Point
		k   int
	}{
		{pts, 1}, {pts, 7}, {pts, 40}, {pts, 128},
		{small, 4}, {small, 5},
	} {
		for seed := uint64(1); seed <= 5; seed++ {
			got := seedPlusPlus(tc.pts, tc.k, xrand.New(seed))
			want := seedPlusPlusBrute(tc.pts, tc.k, xrand.New(seed))
			if len(got) != len(want) {
				t.Fatalf("k=%d seed=%d: %d centres, want %d", tc.k, seed, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("k=%d seed=%d: centre %d is %v, want %v", tc.k, seed, i, got[i], want[i])
				}
			}
		}
	}
}
