package cluster

import (
	"testing"

	"tctp/internal/geom"
	"tctp/internal/xrand"
)

// fourCorners returns tight point groups near the corners of a square,
// an unambiguous 4-clustering.
func fourCorners() []geom.Point {
	var pts []geom.Point
	for _, c := range []geom.Point{
		geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(100, 100), geom.Pt(0, 100),
	} {
		for i := 0; i < 5; i++ {
			pts = append(pts, geom.Pt(c.X+float64(i), c.Y+float64(i%2)))
		}
	}
	return pts
}

func TestKMeansRecoversCorners(t *testing.T) {
	pts := fourCorners()
	assign := KMeans(pts, 4, xrand.New(1), 100)
	// All five points of each corner must share a label, and the four
	// corners must have distinct labels.
	labels := map[int]bool{}
	for corner := 0; corner < 4; corner++ {
		first := assign[corner*5]
		for i := 1; i < 5; i++ {
			if assign[corner*5+i] != first {
				t.Fatalf("corner %d split across clusters: %v", corner, assign)
			}
		}
		if labels[first] {
			t.Fatalf("two corners share label %d: %v", first, assign)
		}
		labels[first] = true
	}
}

func TestKMeansAllClustersNonEmpty(t *testing.T) {
	src := xrand.New(5)
	for trial := 0; trial < 20; trial++ {
		n := 10 + src.Intn(40)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(src.Range(0, 800), src.Range(0, 800))
		}
		k := 1 + src.Intn(8)
		if k > n {
			k = n
		}
		assign := KMeans(pts, k, src, 50)
		groups := Groups(assign, k)
		for c, g := range groups {
			if len(g) == 0 {
				t.Fatalf("trial %d: cluster %d empty (k=%d, n=%d)", trial, c, k, n)
			}
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts := fourCorners()
	a := KMeans(pts, 4, xrand.New(42), 100)
	b := KMeans(pts, 4, xrand.New(42), 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestKMeansK1AndKn(t *testing.T) {
	pts := fourCorners()
	one := KMeans(pts, 1, xrand.New(1), 10)
	for _, c := range one {
		if c != 0 {
			t.Fatal("k=1 must assign everything to cluster 0")
		}
	}
	all := KMeans(pts, len(pts), xrand.New(1), 10)
	groups := Groups(all, len(pts))
	for c, g := range groups {
		if len(g) != 1 {
			t.Fatalf("k=n cluster %d has %d members", c, len(g))
		}
	}
}

func TestKMeansPanics(t *testing.T) {
	pts := fourCorners()
	for _, k := range []int{0, -1, len(pts) + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("k=%d did not panic", k)
				}
			}()
			KMeans(pts, k, xrand.New(1), 10)
		}()
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	pts := make([]geom.Point, 10)
	for i := range pts {
		pts[i] = geom.Pt(5, 5)
	}
	assign := KMeans(pts, 3, xrand.New(1), 20)
	if len(assign) != 10 {
		t.Fatal("wrong assignment length")
	}
	for _, c := range assign {
		if c < 0 || c >= 3 {
			t.Fatalf("label %d out of range", c)
		}
	}
}

// TestKMeansNeverEmptyProperty drives KMeans across adversarial
// randomized inputs — heavy duplicate mass plus a few distinct
// outliers, any k up to n — and requires every cluster non-empty every
// time, plus run-to-run determinism from equal sources.
func TestKMeansNeverEmptyProperty(t *testing.T) {
	meta := xrand.New(77)
	for trial := 0; trial < 50; trial++ {
		n := 3 + meta.Intn(30)
		pts := make([]geom.Point, n)
		heavy := geom.Pt(meta.Range(0, 800), meta.Range(0, 800))
		for i := range pts {
			if meta.Float64() < 0.7 {
				pts[i] = heavy // duplicate mass at one point
			} else {
				pts[i] = geom.Pt(meta.Range(0, 800), meta.Range(0, 800))
			}
		}
		k := 1 + meta.Intn(n)
		seed := meta.Uint64()
		assign := KMeans(pts, k, xrand.New(seed), 50)
		for c, g := range Groups(assign, k) {
			if len(g) == 0 {
				t.Fatalf("trial %d: cluster %d empty (k=%d, n=%d, pts=%v)", trial, c, k, n, pts)
			}
		}
		again := KMeans(pts, k, xrand.New(seed), 50)
		for i := range assign {
			if assign[i] != again[i] {
				t.Fatalf("trial %d: KMeans not deterministic across runs", trial)
			}
		}
	}
}

// validSectors asserts the structural Sectors contract on degenerate
// geometries: a complete label range, non-empty near-equal sectors,
// and determinism across runs.
func validSectors(t *testing.T, pts []geom.Point, k int) {
	t.Helper()
	assign := Sectors(pts, k)
	groups := Groups(assign, k) // panics on out-of-range labels
	for c, g := range groups {
		if len(g) < len(pts)/k || len(g) > len(pts)/k+1 {
			t.Fatalf("sector %d has %d members of %d (k=%d)", c, len(g), len(pts), k)
		}
	}
	again := Sectors(pts, k)
	for i := range assign {
		if assign[i] != again[i] {
			t.Fatal("Sectors not deterministic across runs")
		}
	}
}

// TestSectorsCollinearPoints: every point on one line through the
// centroid, so only two distinct polar angles exist.
func TestSectorsCollinearPoints(t *testing.T) {
	pts := make([]geom.Point, 11)
	for i := range pts {
		pts[i] = geom.Pt(float64(i*10), 50)
	}
	for _, k := range []int{1, 2, 3, 5, 11} {
		validSectors(t, pts, k)
	}
}

// TestSectorsDuplicateAngles: many points share the exact same polar
// angle (stacked on one ray), which exercises the index tie-break of
// the angular sort.
func TestSectorsDuplicateAngles(t *testing.T) {
	var pts []geom.Point
	for i := 0; i < 8; i++ {
		pts = append(pts, geom.Pt(100+float64(i+1)*10, 100)) // one ray
	}
	pts = append(pts, geom.Pt(100, 200), geom.Pt(0, 100)) // off-ray mass
	for _, k := range []int{2, 3, 4} {
		validSectors(t, pts, k)
	}
}

// TestSectorsCentroidCoincident: points sitting exactly on the
// centroid (Atan2(0,0) = 0) must still land in exactly one sector.
func TestSectorsCentroidCoincident(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(100, 0), geom.Pt(-100, 0), geom.Pt(0, 100), geom.Pt(0, -100),
		geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(0, 0), // at the centroid
	}
	for _, k := range []int{1, 2, 3, 7} {
		validSectors(t, pts, k)
	}
}

// TestSectorsAllCoincident: every point identical — the centroid
// coincides with all of them and every angle is Atan2(0,0).
func TestSectorsAllCoincident(t *testing.T) {
	pts := make([]geom.Point, 9)
	for i := range pts {
		pts[i] = geom.Pt(42, 42)
	}
	for _, k := range []int{1, 3, 9} {
		validSectors(t, pts, k)
	}
}

func TestSectorsBalancedSizes(t *testing.T) {
	src := xrand.New(9)
	pts := make([]geom.Point, 23)
	for i := range pts {
		pts[i] = geom.Pt(src.Range(0, 800), src.Range(0, 800))
	}
	k := 4
	assign := Sectors(pts, k)
	groups := Groups(assign, k)
	for c, g := range groups {
		if len(g) < len(pts)/k || len(g) > len(pts)/k+1 {
			t.Fatalf("sector %d has %d members of %d", c, len(g), len(pts))
		}
	}
}

func TestSectorsDeterministic(t *testing.T) {
	pts := fourCorners()
	a := Sectors(pts, 3)
	b := Sectors(pts, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Sectors not deterministic")
		}
	}
}

func TestSectorsAngularContiguity(t *testing.T) {
	// Points on a circle, in order: each sector must be a contiguous
	// angular run.
	pts := make([]geom.Point, 12)
	for i := range pts {
		angle := float64(i) * 2 * 3.141592653589793 / 12
		pts[i] = geom.Pt(100+50*cos(angle), 100+50*sin(angle))
	}
	assign := Sectors(pts, 4)
	groups := Groups(assign, 4)
	for c, g := range groups {
		if len(g) != 3 {
			t.Fatalf("sector %d has %d members", c, len(g))
		}
	}
}

func cos(x float64) float64 {
	// Tiny local wrappers keep math import noise out of the test.
	return float64(real(complexExp(x)))
}

func sin(x float64) float64 {
	return float64(imag(complexExp(x)))
}

func complexExp(x float64) complex128 {
	// e^{ix} via the standard library would be math.Cos/Sin; this
	// helper exists only to exercise the sector geometry.
	return complex(cosTaylor(x), sinTaylor(x))
}

func cosTaylor(x float64) float64 {
	// Range-reduce to [-π, π] then Taylor to sufficient precision for
	// test geometry (12 evenly spaced points).
	const pi = 3.141592653589793
	for x > pi {
		x -= 2 * pi
	}
	for x < -pi {
		x += 2 * pi
	}
	term, sum := 1.0, 1.0
	for k := 1; k <= 10; k++ {
		term *= -x * x / float64((2*k-1)*(2*k))
		sum += term
	}
	return sum
}

func sinTaylor(x float64) float64 {
	const pi = 3.141592653589793
	for x > pi {
		x -= 2 * pi
	}
	for x < -pi {
		x += 2 * pi
	}
	term, sum := x, x
	for k := 1; k <= 10; k++ {
		term *= -x * x / float64((2*k)*(2*k+1))
		sum += term
	}
	return sum
}

func TestSectorsPanics(t *testing.T) {
	pts := fourCorners()
	for _, k := range []int{0, len(pts) + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("k=%d did not panic", k)
				}
			}()
			Sectors(pts, k)
		}()
	}
}

func TestGroups(t *testing.T) {
	assign := []int{0, 1, 0, 2, 1}
	g := Groups(assign, 3)
	if len(g[0]) != 2 || g[0][0] != 0 || g[0][1] != 2 {
		t.Fatalf("group 0 = %v", g[0])
	}
	if len(g[1]) != 2 || len(g[2]) != 1 {
		t.Fatalf("groups = %v", g)
	}
}

func TestGroupsPanicsOnBadLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad label did not panic")
		}
	}()
	Groups([]int{0, 7}, 3)
}

func TestCostImprovesWithMoreClusters(t *testing.T) {
	pts := fourCorners()
	src := xrand.New(11)
	c1 := Cost(pts, KMeans(pts, 1, src, 100), 1)
	c4 := Cost(pts, KMeans(pts, 4, src, 100), 4)
	if c4 >= c1 {
		t.Fatalf("cost with 4 clusters (%v) not below 1 cluster (%v)", c4, c1)
	}
	if c4 < 0 {
		t.Fatalf("negative cost %v", c4)
	}
}

func TestKMeansBeatsRandomPartition(t *testing.T) {
	pts := fourCorners()
	src := xrand.New(13)
	km := Cost(pts, KMeans(pts, 4, src, 100), 4)
	// A deliberately bad partition: round-robin by index.
	bad := make([]int, len(pts))
	for i := range bad {
		bad[i] = i % 4
	}
	if km >= Cost(pts, bad, 4) {
		t.Fatalf("k-means cost %v not below round-robin %v", km, Cost(pts, bad, 4))
	}
}
