package core

import (
	"fmt"
	"sort"

	"tctp/internal/geom"
	"tctp/internal/walk"
)

// This file implements the paper's §3.2 patrolling rule: "when a DM
// arrives at a VIP g_i from target g_j, it selects a target
// g_k ∈ S_i^w which has minimal included angle with the former route
// g_j to g_i in the counterclockwise direction, as its next visiting
// target." Applied at every vertex of the WPP's edge multiset (NTPs
// have degree 2, so the rule only ever chooses at VIPs), the rule
// yields the deterministic closed walk every mule follows, so all
// mules traverse the VIP cycles in the same order — the property the
// paper needs for consistent visiting intervals.
//
// The greedy rule alone is not guaranteed to produce an Euler circuit
// on every geometry (it can close a subtour early); since the WPP
// multigraph always has even degrees and is connected, a Hierholzer
// splice completes the traversal in those rare cases.

// edge is one undirected edge of the multigraph with a stable identity
// (parallel edges get distinct ids).
type edge struct {
	u, v int
	id   int
	used bool
}

// multigraph is the WPP's edge multiset with per-vertex incidence
// lists.
type multigraph struct {
	edges []*edge
	inc   map[int][]*edge
}

// graphFromWalk builds the multigraph induced by the closed walk.
func graphFromWalk(w walk.Walk) *multigraph {
	g := &multigraph{inc: make(map[int][]*edge)}
	n := len(w.Seq)
	for i := 0; i < n; i++ {
		u, v := w.Seq[i], w.Seq[(i+1)%n]
		e := &edge{u: u, v: v, id: i}
		g.edges = append(g.edges, e)
		g.inc[u] = append(g.inc[u], e)
		g.inc[v] = append(g.inc[v], e)
	}
	return g
}

// other returns the endpoint of e opposite to x.
func (e *edge) other(x int) int {
	if e.u == x {
		return e.v
	}
	return e.u
}

// unusedAt returns the unused edges incident to vertex x, in id order.
func (g *multigraph) unusedAt(x int) []*edge {
	var out []*edge
	for _, e := range g.inc[x] {
		if !e.used {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

// pickByAngleRule selects, among the unused edges at cur, the one
// whose direction has the minimal counterclockwise included angle from
// the incoming direction. Ties (parallel edges, collinear targets)
// break on the smaller edge id. Returns nil when no unused edge
// remains.
func (g *multigraph) pickByAngleRule(pts []geom.Point, cur int, incoming geom.Vec) *edge {
	var best *edge
	bestAngle := 0.0
	for _, e := range g.unusedAt(cur) {
		out := pts[e.other(cur)].Sub(pts[cur])
		a := geom.CCWAngle(incoming, out)
		if best == nil || a < bestAngle-geom.Eps {
			best, bestAngle = e, a
		}
	}
	return best
}

// TraverseAngleRule re-derives the traversal order of the walk's edge
// multiset under the patrolling rule, starting from the walk's first
// target in the walk's own initial direction. The result visits every
// edge exactly once (it is an Euler circuit of the multigraph), so
// each target keeps its occurrence count: NTPs appear once, VIP g_i
// appears w_i times, exactly as Definition 3 requires.
func TraverseAngleRule(pts []geom.Point, w walk.Walk) walk.Walk {
	n := len(w.Seq)
	if n < 3 {
		return w.Clone()
	}
	g := graphFromWalk(w)
	start := w.Seq[0]

	// The first hop follows the walk's own first edge, which fixes
	// the traversal direction (counterclockwise for circuits built by
	// this package).
	first := g.edges[0]
	first.used = true
	seq := []int{start}
	cur := first.other(start)
	incoming := pts[cur].Sub(pts[start])

	for {
		seq = append(seq, cur)
		e := g.pickByAngleRule(pts, cur, incoming)
		if e == nil {
			break // back where no unused edges remain
		}
		e.used = true
		next := e.other(cur)
		incoming = pts[next].Sub(pts[cur])
		cur = next
	}
	// The greedy traversal ends by re-entering a vertex with no
	// unused edges; for an Euler circuit that vertex is the start and
	// seq's last element equals start — drop the duplicate.
	if seq[len(seq)-1] == start && len(seq) > 1 {
		seq = seq[:len(seq)-1]
	}

	// Hierholzer splice for the rare geometries where the greedy rule
	// closes early: walk the current sequence, and at the first vertex
	// with unused edges, traverse a sub-circuit (still by the angle
	// rule) and splice it in; repeat until every edge is used.
	for remaining(g) > 0 {
		spliced := false
		for pos := 0; pos < len(seq); pos++ {
			v := seq[pos]
			unused := g.unusedAt(v)
			if len(unused) == 0 {
				continue
			}
			sub := traverseFrom(g, pts, v, unused[0])
			// Splice sub after position pos. sub ends with the return
			// to v, so the walk reads ...,v,  a,...,z,v,  next,...
			// and every consecutive pair is a real multigraph edge.
			grown := make([]int, 0, len(seq)+len(sub))
			grown = append(grown, seq[:pos+1]...)
			grown = append(grown, sub...)
			grown = append(grown, seq[pos+1:]...)
			seq = grown
			spliced = true
			break
		}
		if !spliced {
			// Disconnected multigraph: cannot happen for walks, which
			// are connected by construction.
			panic(fmt.Sprintf("core: angle-rule traversal stuck with %d unused edges", remaining(g)))
		}
	}
	return walk.New(seq)
}

// traverseFrom runs the angle-rule traversal of unused edges starting
// at v along firstEdge until it closes, returning the visited vertices
// after v INCLUDING the final return to v (so the result can be
// spliced verbatim after an occurrence of v in an enclosing walk).
func traverseFrom(g *multigraph, pts []geom.Point, v int, firstEdge *edge) []int {
	firstEdge.used = true
	cur := firstEdge.other(v)
	incoming := pts[cur].Sub(pts[v])
	var seq []int
	for {
		seq = append(seq, cur)
		e := g.pickByAngleRule(pts, cur, incoming)
		if e == nil {
			break
		}
		e.used = true
		next := e.other(cur)
		incoming = pts[next].Sub(pts[cur])
		cur = next
	}
	return seq
}

// remaining counts unused edges.
func remaining(g *multigraph) int {
	n := 0
	for _, e := range g.edges {
		if !e.used {
			n++
		}
	}
	return n
}
