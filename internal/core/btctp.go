package core

import (
	"fmt"

	"tctp/internal/field"
	"tctp/internal/tour"
	"tctp/internal/walk"
)

// TourHeuristic selects the Hamiltonian-circuit construction used in
// the path-construction phase. The paper uses the convex-hull-based
// construction of ref. [5]; the alternatives exist for the A1
// ablation.
type TourHeuristic int

// Supported constructions.
const (
	// HullInsertion is the paper's construction: convex-hull skeleton
	// plus cheapest insertion.
	HullInsertion TourHeuristic = iota
	// NearestNeighborTour chains closest unvisited targets.
	NearestNeighborTour
	// GreedyEdgeTour accepts shortest edges first.
	GreedyEdgeTour
)

// String implements fmt.Stringer.
func (h TourHeuristic) String() string {
	switch h {
	case HullInsertion:
		return "hull-insertion"
	case NearestNeighborTour:
		return "nearest-neighbor"
	case GreedyEdgeTour:
		return "greedy-edge"
	default:
		return fmt.Sprintf("heuristic(%d)", int(h))
	}
}

// BTCTP is the Basic Target-Coverage Tour Patrolling planner (§II).
// The zero value is the paper's configuration.
type BTCTP struct {
	// Heuristic selects the circuit construction (default: the
	// paper's hull-insertion).
	Heuristic TourHeuristic
	// Improve applies 2-opt to the constructed circuit before
	// partitioning (off in the paper; an ablation knob here).
	Improve bool
	// Energies optionally carries each mule's remaining energy for
	// the location-initialization tie-break; nil means all equal.
	Energies []float64
	// Dwell is the per-collection pause the fleet will use (seconds);
	// it feeds the phase-equalizing start holds. Zero selects the
	// default (energy.DefaultDwell); use NoDwell for a literal zero.
	Dwell float64
}

// Name implements Planner.
func (b *BTCTP) Name() string { return "B-TCTP" }

// Plan implements Planner. All mules share one Hamiltonian circuit
// over every target (the sink included, §2.1); the circuit is
// partitioned into equal-length arcs from the most-north target, and
// the location-initialization assignment sends exactly one mule to
// each arc endpoint.
func (b *BTCTP) Plan(s *field.Scenario) (*FleetPlan, error) {
	circuit, err := b.buildCircuit(s)
	if err != nil {
		return nil, err
	}
	plan, _, err := assembleFleet(s, circuit, b.Energies, effectiveDwell(b.Dwell))
	if err != nil {
		return nil, err
	}
	plan.Algorithm = b.Name()
	return plan, nil
}

// buildCircuit constructs the common Hamiltonian circuit as a walk.
func (b *BTCTP) buildCircuit(s *field.Scenario) (walk.Walk, error) {
	if err := s.Validate(); err != nil {
		return walk.Walk{}, err
	}
	pts := s.Points()
	var t tour.Tour
	switch b.Heuristic {
	case HullInsertion:
		t = tour.ConvexHullInsertion(pts)
	case NearestNeighborTour:
		t = tour.NearestNeighbor(pts, s.SinkID)
	case GreedyEdgeTour:
		t = tour.GreedyEdge(pts)
	default:
		return walk.Walk{}, fmt.Errorf("core: unknown tour heuristic %v", b.Heuristic)
	}
	if b.Improve {
		t = tour.TwoOpt(pts, t)
	}
	t = tour.EnsureCCW(pts, t)
	if err := tour.Validate(t, len(pts)); err != nil {
		return walk.Walk{}, fmt.Errorf("core: circuit construction: %w", err)
	}
	return walk.New(t), nil
}
