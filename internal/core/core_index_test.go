package core

import (
	"math"
	"math/rand"
	"testing"

	"tctp/internal/geom"
)

// TestMatchMulesToGroupsMatchesBrute pins the grid-backed matching to
// the linear-scan reference across group counts on both sides of the
// index threshold, including capacity-starved and duplicate-centroid
// layouts.
func TestMatchMulesToGroupsMatchesBrute(t *testing.T) {
	rnd := rand.New(rand.NewSource(31))
	for _, k := range []int{1, 4, indexThreshold - 1, indexThreshold, 80} {
		for trial := 0; trial < 5; trial++ {
			centroids := make([]geom.Point, k)
			for i := range centroids {
				centroids[i] = geom.Pt(rnd.Float64()*800, rnd.Float64()*800)
			}
			if k >= 4 && trial%2 == 1 {
				// Duplicate centroids force exact-distance ties.
				centroids[1] = centroids[0]
				centroids[3] = centroids[2]
			}
			n := k + rnd.Intn(3*k)
			starts := make([]geom.Point, n)
			for i := range starts {
				starts[i] = geom.Pt(rnd.Float64()*800, rnd.Float64()*800)
			}
			capacity := make([]int, k)
			for i := range capacity {
				capacity[i] = 1
			}
			for extra := n - k; extra > 0; extra-- {
				capacity[rnd.Intn(k)]++
			}
			got := MatchMulesToGroups(starts, centroids, capacity)
			want := matchMulesToGroupsBrute(starts, centroids, capacity)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("k=%d trial=%d: mule %d matched to %d, brute says %d",
						k, trial, i, got[i], want[i])
				}
			}
		}
	}
}

// assignStartPointsBrute re-states the pre-index nearest-start-point
// scan so the indexed path has an in-test reference.
func assignStartPointsBrute(muleStarts, startPts []geom.Point, energies []float64) []int {
	n := len(muleStarts)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			ea, eb := 0.0, 0.0
			if energies != nil {
				ea, eb = energies[a], energies[b]
			}
			if eb < ea || (eb == ea && b < a) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}
	taken := make([]bool, n)
	assign := make([]int, n)
	for _, mi := range order {
		best, bestD := 0, math.Inf(1)
		for k, sp := range startPts {
			if d := muleStarts[mi].Dist2(sp); d < bestD {
				best, bestD = k, d
			}
		}
		for taken[best] {
			best = (best + 1) % n
		}
		taken[best] = true
		assign[mi] = best
	}
	return assign
}

// TestAssignStartPointsMatchesBrute pins the indexed start-point
// lookup to the linear scan across fleet sizes on both sides of the
// index threshold, with and without energies.
func TestAssignStartPointsMatchesBrute(t *testing.T) {
	rnd := rand.New(rand.NewSource(32))
	for _, n := range []int{1, 5, indexThreshold - 1, indexThreshold, 100} {
		for trial := 0; trial < 5; trial++ {
			muleStarts := make([]geom.Point, n)
			startPts := make([]geom.Point, n)
			for i := 0; i < n; i++ {
				muleStarts[i] = geom.Pt(rnd.Float64()*800, rnd.Float64()*800)
				startPts[i] = geom.Pt(rnd.Float64()*800, rnd.Float64()*800)
			}
			var energies []float64
			if trial%2 == 1 {
				energies = make([]float64, n)
				for i := range energies {
					// Coarse quantization forces energy ties.
					energies[i] = float64(rnd.Intn(3))
				}
			}
			got := assignStartPoints(muleStarts, startPts, energies)
			want := assignStartPointsBrute(muleStarts, startPts, energies)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d trial=%d: mule %d assigned %d, brute says %d",
						n, trial, i, got[i], want[i])
				}
			}
		}
	}
}
