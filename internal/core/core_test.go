package core

import (
	"math"
	"testing"
	"testing/quick"

	"tctp/internal/energy"
	"tctp/internal/field"
	"tctp/internal/geom"
	"tctp/internal/mule"
	"tctp/internal/walk"
	"tctp/internal/xrand"
)

func scenario(seed uint64, targets, mules int) *field.Scenario {
	return field.Generate(field.Config{
		NumTargets: targets,
		NumMules:   mules,
		Placement:  field.Uniform,
	}, xrand.New(seed))
}

// --- assignStartPoints -------------------------------------------------

func TestAssignNearestWithoutConflict(t *testing.T) {
	muleStarts := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 100)}
	startPts := []geom.Point{geom.Pt(10, 0), geom.Pt(90, 100)}
	assign := assignStartPoints(muleStarts, startPts, nil)
	if assign[0] != 0 || assign[1] != 1 {
		t.Fatalf("assign = %v", assign)
	}
}

func TestAssignConflictEnergyRule(t *testing.T) {
	// Both mules closest to start point 0. The paper: the mule with
	// HIGHER remaining energy moves on to the next start point, the
	// lower-energy mule stays.
	muleStarts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}
	startPts := []geom.Point{geom.Pt(2, 0), geom.Pt(50, 0)}
	energies := []float64{10, 100} // mule 0 low, mule 1 high
	assign := assignStartPoints(muleStarts, startPts, energies)
	if assign[0] != 0 {
		t.Fatalf("low-energy mule displaced: %v", assign)
	}
	if assign[1] != 1 {
		t.Fatalf("high-energy mule did not move on: %v", assign)
	}
}

func TestAssignConflictTieByIndex(t *testing.T) {
	muleStarts := []geom.Point{geom.Pt(0, 0), geom.Pt(0, 1)}
	startPts := []geom.Point{geom.Pt(1, 0), geom.Pt(100, 0)}
	assign := assignStartPoints(muleStarts, startPts, nil)
	// Equal (nil) energies: lower index settles first.
	if assign[0] != 0 || assign[1] != 1 {
		t.Fatalf("assign = %v", assign)
	}
}

func TestAssignIsPermutation(t *testing.T) {
	src := xrand.New(3)
	for trial := 0; trial < 40; trial++ {
		n := 1 + src.Intn(12)
		ms := make([]geom.Point, n)
		sp := make([]geom.Point, n)
		for i := 0; i < n; i++ {
			ms[i] = geom.Pt(src.Range(0, 800), src.Range(0, 800))
			sp[i] = geom.Pt(src.Range(0, 800), src.Range(0, 800))
		}
		assign := assignStartPoints(ms, sp, nil)
		seen := make([]bool, n)
		for _, a := range assign {
			if a < 0 || a >= n || seen[a] {
				t.Fatalf("trial %d: assignment not a permutation: %v", trial, assign)
			}
			seen[a] = true
		}
	}
}

func TestAssignPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	assignStartPoints(make([]geom.Point, 2), make([]geom.Point, 3), nil)
}

// --- B-TCTP -------------------------------------------------------------

func TestBTCTPPlanStructure(t *testing.T) {
	s := scenario(1, 20, 4)
	p, err := (&BTCTP{}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(s); err != nil {
		t.Fatal(err)
	}
	if p.Algorithm != "B-TCTP" {
		t.Fatalf("Algorithm = %q", p.Algorithm)
	}
	// The master walk is a Hamiltonian circuit over all 21 targets.
	if err := p.Groups[0].Walk.Validate(s.NumTargets(), nil); err != nil {
		t.Fatal(err)
	}
	// Every mule's loop visits every target exactly once.
	for i, r := range p.Routes {
		counts := map[int]int{}
		for _, st := range r.Cycle[0].Stops {
			counts[st.TargetID]++
		}
		if len(counts) != s.NumTargets() {
			t.Fatalf("mule %d loop covers %d targets", i, len(counts))
		}
		for id, c := range counts {
			if c != 1 {
				t.Fatalf("mule %d visits target %d %d times", i, id, c)
			}
		}
		if len(r.Approach) != 1 || r.Approach[0].TargetID != mule.NoTarget {
			t.Fatalf("mule %d approach malformed: %+v", i, r.Approach)
		}
	}
}

func TestBTCTPWalkStartsAtNorthmost(t *testing.T) {
	s := scenario(2, 15, 3)
	p, err := (&BTCTP{}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	pts := s.Points()
	first := pts[p.Groups[0].Walk.Seq[0]]
	for _, q := range pts {
		if q.Y > first.Y+geom.Eps {
			t.Fatalf("walk starts at %v but %v is more north", first, q)
		}
	}
}

func TestBTCTPStartPointsEquallySpaced(t *testing.T) {
	s := scenario(3, 25, 5)
	p, err := (&BTCTP{}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	pts := s.Points()
	L := p.Groups[0].Walk.Length(pts)
	n := len(p.Groups[0].StartPoints)
	for k, sp := range p.Groups[0].StartPoints {
		want := p.Groups[0].Walk.PointAt(pts, float64(k)*L/float64(n))
		if !sp.Eq(want) {
			t.Fatalf("start point %d at %v, want %v", k, sp, want)
		}
	}
}

func TestBTCTPLoopsAreRotationsOfOneOrder(t *testing.T) {
	s := scenario(4, 18, 4)
	p, err := (&BTCTP{}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	// Concatenate each mule's loop twice; mule 0's loop must appear as
	// a contiguous subsequence (all loops are rotations of the same
	// cyclic order).
	ref := p.Routes[0].Cycle[0].Stops
	for i := 1; i < len(p.Routes); i++ {
		stops := p.Routes[i].Cycle[0].Stops
		doubled := append(append([]mule.Waypoint{}, stops...), stops...)
		found := false
		for off := 0; off < len(stops); off++ {
			match := true
			for k := range ref {
				if doubled[off+k].TargetID != ref[k].TargetID {
					match = false
					break
				}
			}
			if match {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("mule %d loop is not a rotation of mule 0's", i)
		}
	}
}

func TestBTCTPHeuristics(t *testing.T) {
	s := scenario(5, 20, 3)
	for _, h := range []TourHeuristic{HullInsertion, NearestNeighborTour, GreedyEdgeTour} {
		p, err := (&BTCTP{Heuristic: h}).Plan(s)
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if err := p.Groups[0].Walk.Validate(s.NumTargets(), nil); err != nil {
			t.Fatalf("%v: %v", h, err)
		}
	}
	if _, err := (&BTCTP{Heuristic: TourHeuristic(99)}).Plan(s); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
}

func TestBTCTPImproveShortens(t *testing.T) {
	s := scenario(6, 40, 2)
	pts := s.Points()
	plain, err := (&BTCTP{Heuristic: NearestNeighborTour}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	improved, err := (&BTCTP{Heuristic: NearestNeighborTour, Improve: true}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if improved.Groups[0].Walk.Length(pts) > plain.Groups[0].Walk.Length(pts)+1e-9 {
		t.Fatal("2-opt lengthened the circuit")
	}
}

func TestBTCTPSingleMule(t *testing.T) {
	s := scenario(7, 10, 1)
	p, err := (&BTCTP{}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Groups[0].StartPoints) != 1 || p.Groups[0].Assignment[0] != 0 {
		t.Fatalf("single-mule plan: %v %v", p.Groups[0].StartPoints, p.Groups[0].Assignment)
	}
}

func TestTourHeuristicString(t *testing.T) {
	for _, h := range []TourHeuristic{HullInsertion, NearestNeighborTour, GreedyEdgeTour, TourHeuristic(7)} {
		if h.String() == "" {
			t.Fatal("empty heuristic name")
		}
	}
}

// --- angle rule ----------------------------------------------------------

func edgeMultiset(w walk.Walk) map[[2]int]int {
	out := map[[2]int]int{}
	n := len(w.Seq)
	for i := 0; i < n; i++ {
		u, v := w.Seq[i], w.Seq[(i+1)%n]
		if u > v {
			u, v = v, u
		}
		out[[2]int{u, v}]++
	}
	return out
}

func TestAngleRulePlainCircuitUnchanged(t *testing.T) {
	s := scenario(8, 12, 1)
	p, err := (&BTCTP{}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	pts := s.Points()
	re := TraverseAngleRule(pts, p.Groups[0].Walk)
	if len(re.Seq) != len(p.Groups[0].Walk.Seq) {
		t.Fatalf("length changed: %d vs %d", len(re.Seq), len(p.Groups[0].Walk.Seq))
	}
	// Degree-2 vertices leave no choice: the sequence is identical.
	for i := range re.Seq {
		if re.Seq[i] != p.Groups[0].Walk.Seq[i] {
			t.Fatalf("plain circuit reordered at %d: %v vs %v", i, re.Seq, p.Groups[0].Walk.Seq)
		}
	}
}

func TestAngleRulePreservesEdgeMultiset(t *testing.T) {
	s := scenario(9, 15, 1)
	s.AssignVIPs(xrand.New(10), 3, 4)
	wt := &WTCTP{Policy: ShortestLength, DisableAngleRule: true}
	wpp, err := wt.BuildWPP(s)
	if err != nil {
		t.Fatal(err)
	}
	pts := s.Points()
	re := TraverseAngleRule(pts, wpp)
	a, b := edgeMultiset(wpp), edgeMultiset(re)
	if len(a) != len(b) {
		t.Fatalf("edge multisets differ in support: %d vs %d", len(a), len(b))
	}
	for k, c := range a {
		if b[k] != c {
			t.Fatalf("edge %v count %d vs %d", k, c, b[k])
		}
	}
	if math.Abs(re.Length(pts)-wpp.Length(pts)) > 1e-6 {
		t.Fatal("angle rule changed walk length")
	}
}

func TestAngleRulePreservesOccurrenceCounts(t *testing.T) {
	s := scenario(11, 12, 1)
	s.AssignVIPs(xrand.New(12), 2, 5)
	wt := &WTCTP{Policy: BalancingLength, DisableAngleRule: true}
	wpp, err := wt.BuildWPP(s)
	if err != nil {
		t.Fatal(err)
	}
	re := TraverseAngleRule(s.Points(), wpp)
	if err := re.Validate(s.NumTargets(), s.Weights()); err != nil {
		t.Fatal(err)
	}
}

func TestAngleRuleTinyWalk(t *testing.T) {
	w := walk.New([]int{0, 1})
	re := TraverseAngleRule([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, w)
	if len(re.Seq) != 2 {
		t.Fatalf("tiny walk changed: %v", re.Seq)
	}
}

// --- W-TCTP ---------------------------------------------------------------

func TestWTCTPSingleVIPDefinition3(t *testing.T) {
	s := scenario(13, 15, 2)
	s.AssignVIPs(xrand.New(14), 1, 3)
	vip := s.VIPs()[0]
	for _, policy := range []BreakPolicy{ShortestLength, BalancingLength} {
		wt := &WTCTP{Policy: policy}
		wpp, err := wt.BuildWPP(s)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		// Definition 3: w_i cycles intersect at the VIP; the walk is a
		// cycle; NTPs occur once.
		if err := wpp.Validate(s.NumTargets(), s.Weights()); err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		cycles := wpp.CyclesAt(vip)
		if len(cycles) != 3 {
			t.Fatalf("%v: %d cycles at VIP, want 3", policy, len(cycles))
		}
		if wpp.HasConsecutiveDuplicate() {
			t.Fatalf("%v: degenerate zero-length edge in WPP", policy)
		}
	}
}

func TestWTCTPMultiVIP(t *testing.T) {
	s := scenario(15, 20, 2)
	s.AssignVIPs(xrand.New(16), 4, 3)
	for _, policy := range []BreakPolicy{ShortestLength, BalancingLength, RandomBreak} {
		wt := &WTCTP{Policy: policy, Rand: xrand.New(99)}
		wpp, err := wt.BuildWPP(s)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if err := wpp.Validate(s.NumTargets(), s.Weights()); err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		for _, vip := range s.VIPs() {
			if got := len(wpp.CyclesAt(vip)); got != 3 {
				t.Fatalf("%v: VIP %d has %d cycles", policy, vip, got)
			}
		}
	}
}

func TestWTCTPNoVIPsEqualsCircuit(t *testing.T) {
	s := scenario(17, 12, 2)
	wt := &WTCTP{}
	wpp, err := wt.BuildWPP(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := wpp.Validate(s.NumTargets(), nil); err != nil {
		t.Fatal(err)
	}
	base, err := (&BTCTP{}).buildCircuit(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wpp.Length(s.Points())-base.Length(s.Points())) > 1e-9 {
		t.Fatal("VIP-free WPP differs from base circuit")
	}
}

func TestWTCTPShortestNoLongerThanBalancing(t *testing.T) {
	for seed := uint64(20); seed < 30; seed++ {
		s := scenario(seed, 18, 2)
		s.AssignVIPs(xrand.New(seed+100), 2, 4)
		pts := s.Points()
		sp, err := (&WTCTP{Policy: ShortestLength}).BuildWPP(s)
		if err != nil {
			t.Fatal(err)
		}
		bp, err := (&WTCTP{Policy: BalancingLength}).BuildWPP(s)
		if err != nil {
			t.Fatal(err)
		}
		if sp.Length(pts) > bp.Length(pts)+1e-6 {
			t.Fatalf("seed %d: shortest policy length %.2f > balancing %.2f",
				seed, sp.Length(pts), bp.Length(pts))
		}
	}
}

func TestWTCTPBalancingBalancesBetter(t *testing.T) {
	// Aggregate imbalance at the VIP must not be worse under the
	// balancing policy than under the shortest policy, on average.
	imbalance := func(w walk.Walk, pts []geom.Point, vip int) float64 {
		lens := w.CycleLengthsAt(pts, vip)
		avg := 0.0
		for _, l := range lens {
			avg += l
		}
		avg /= float64(len(lens))
		sum := 0.0
		for _, l := range lens {
			sum += math.Abs(l - avg)
		}
		return sum
	}
	var shortTotal, balTotal float64
	for seed := uint64(40); seed < 52; seed++ {
		s := scenario(seed, 16, 2)
		s.AssignVIPs(xrand.New(seed+200), 1, 4)
		vip := s.VIPs()[0]
		pts := s.Points()
		sp, err := (&WTCTP{Policy: ShortestLength}).BuildWPP(s)
		if err != nil {
			t.Fatal(err)
		}
		bp, err := (&WTCTP{Policy: BalancingLength}).BuildWPP(s)
		if err != nil {
			t.Fatal(err)
		}
		shortTotal += imbalance(sp, pts, vip)
		balTotal += imbalance(bp, pts, vip)
	}
	if balTotal > shortTotal+1e-6 {
		t.Fatalf("balancing policy less balanced on aggregate: %.2f vs %.2f",
			balTotal, shortTotal)
	}
}

func TestWTCTPWPPLongerThanBase(t *testing.T) {
	s := scenario(33, 15, 2)
	s.AssignVIPs(xrand.New(34), 2, 3)
	base, err := (&BTCTP{}).buildCircuit(s)
	if err != nil {
		t.Fatal(err)
	}
	wpp, err := (&WTCTP{Policy: ShortestLength}).BuildWPP(s)
	if err != nil {
		t.Fatal(err)
	}
	pts := s.Points()
	if wpp.Length(pts) < base.Length(pts)-1e-9 {
		t.Fatal("WPP shorter than base circuit")
	}
}

func TestWTCTPPlan(t *testing.T) {
	s := scenario(35, 18, 3)
	s.AssignVIPs(xrand.New(36), 2, 3)
	wt := &WTCTP{Policy: BalancingLength}
	p, err := wt.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(s); err != nil {
		t.Fatal(err)
	}
	if p.Algorithm != "W-TCTP(balancing)" {
		t.Fatalf("Algorithm = %q", p.Algorithm)
	}
	// Each mule's loop visits VIPs w times per traversal.
	weights := s.Weights()
	for i, r := range p.Routes {
		counts := map[int]int{}
		for _, st := range r.Cycle[0].Stops {
			counts[st.TargetID]++
		}
		for id, w := range weights {
			if counts[id] != w {
				t.Fatalf("mule %d visits target %d %d times, want %d", i, id, counts[id], w)
			}
		}
	}
}

func TestWTCTPDegenerateNoBreakEdge(t *testing.T) {
	// Two targets plus sink: after the first break every edge touches
	// the VIP and no further cycle can be created.
	s := field.Generate(field.Config{NumTargets: 2, NumMules: 1, Placement: field.Grid},
		xrand.New(1))
	s.Targets[1].Weight = 5
	_, err := (&WTCTP{Policy: ShortestLength}).BuildWPP(s)
	if err == nil {
		t.Fatal("expected no-valid-break-edge error")
	}
}

func TestBreakPolicyString(t *testing.T) {
	for _, p := range []BreakPolicy{ShortestLength, BalancingLength, RandomBreak, BreakPolicy(9)} {
		if p.String() == "" {
			t.Fatal("empty policy name")
		}
	}
}

// Property: Definition 3 holds for random scenarios, weights and both
// policies.
func TestWPPDefinition3Property(t *testing.T) {
	f := func(seed uint64, nVIPRaw, weightRaw uint8, balance bool) bool {
		src := xrand.New(seed)
		s := field.Generate(field.Config{
			NumTargets: 10 + src.Intn(15),
			NumMules:   1 + src.Intn(4),
			Placement:  field.Uniform,
		}, src)
		nVIP := int(nVIPRaw%4) + 1
		w := int(weightRaw%4) + 2
		s.AssignVIPs(src, nVIP, w)
		policy := ShortestLength
		if balance {
			policy = BalancingLength
		}
		wpp, err := (&WTCTP{Policy: policy}).BuildWPP(s)
		if err != nil {
			return false
		}
		if wpp.Validate(s.NumTargets(), s.Weights()) != nil {
			return false
		}
		for _, vip := range s.VIPs() {
			if len(wpp.CyclesAt(vip)) != w {
				return false
			}
		}
		return !wpp.HasConsecutiveDuplicate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// --- RW-TCTP ----------------------------------------------------------------

func rechargeScenario(seed uint64, targets, mules int) *field.Scenario {
	return field.Generate(field.Config{
		NumTargets:   targets,
		NumMules:     mules,
		Placement:    field.Uniform,
		WithRecharge: true,
	}, xrand.New(seed))
}

func TestRWTCTPPlanStructure(t *testing.T) {
	s := rechargeScenario(50, 15, 3)
	s.AssignVIPs(xrand.New(51), 2, 3)
	r := &RWTCTP{}
	p, err := r.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(s); err != nil {
		t.Fatal(err)
	}
	if p.Rounds < 1 {
		t.Fatalf("Rounds = %d", p.Rounds)
	}
	for i, route := range p.Routes {
		// Last phase is the WRP traversal with exactly one recharge
		// stop.
		last := route.Cycle[len(route.Cycle)-1]
		if last.Repeat != 1 {
			t.Fatalf("mule %d WRP phase repeat %d", i, last.Repeat)
		}
		recharges := 0
		for _, st := range last.Stops {
			if st.Recharge {
				recharges++
				if !st.Pos.Eq(s.Recharge) {
					t.Fatalf("recharge stop at %v, station at %v", st.Pos, s.Recharge)
				}
			}
		}
		if recharges != 1 {
			t.Fatalf("mule %d WRP has %d recharge stops", i, recharges)
		}
		if p.Rounds > 1 {
			if len(route.Cycle) != 2 {
				t.Fatalf("mule %d has %d phases", i, len(route.Cycle))
			}
			if route.Cycle[0].Repeat != p.Rounds-1 {
				t.Fatalf("mule %d WPP repeat = %d, rounds = %d",
					i, route.Cycle[0].Repeat, p.Rounds)
			}
			// WPP phase has no recharge stop.
			for _, st := range route.Cycle[0].Stops {
				if st.Recharge {
					t.Fatalf("mule %d WPP phase contains a recharge stop", i)
				}
			}
			// WRP visits the same targets as WPP plus the station.
			if len(last.Stops) != len(route.Cycle[0].Stops)+1 {
				t.Fatalf("mule %d WRP stop count %d vs WPP %d",
					i, len(last.Stops), len(route.Cycle[0].Stops))
			}
		}
	}
}

func TestRWTCTPRechargeWalk(t *testing.T) {
	s := rechargeScenario(52, 12, 2)
	p, err := (&RWTCTP{}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, v := range p.Groups[0].RechargeWalk.Seq {
		if v == RechargeID {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("RechargeWalk has %d station entries", count)
	}
	if len(p.Groups[0].RechargeWalk.Seq) != len(p.Groups[0].Walk.Seq)+1 {
		t.Fatalf("RechargeWalk size %d, WPP size %d",
			len(p.Groups[0].RechargeWalk.Seq), len(p.Groups[0].Walk.Seq))
	}
}

func TestRWTCTPRequiresRecharge(t *testing.T) {
	s := scenario(53, 10, 2) // no recharge station
	if _, err := (&RWTCTP{}).Plan(s); err == nil {
		t.Fatal("plan without recharge station accepted")
	}
}

func TestRWTCTPInfeasibleBattery(t *testing.T) {
	s := rechargeScenario(54, 15, 2)
	r := &RWTCTP{}
	r.Model = energyModelWithCapacity(10) // 10 J: absurdly small
	if _, err := r.Plan(s); err == nil {
		t.Fatal("infeasible battery accepted")
	}
}

func TestRWTCTPRoundsShrinkWithBattery(t *testing.T) {
	s := rechargeScenario(55, 15, 2)
	big := &RWTCTP{}
	big.Model = energyModelWithCapacity(400_000)
	small := &RWTCTP{}
	small.Model = energyModelWithCapacity(100_000)
	pb, err := big.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := small.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Rounds <= ps.Rounds {
		t.Fatalf("rounds: big battery %d, small battery %d", pb.Rounds, ps.Rounds)
	}
}

func TestSelectRechargeEdgeIsMinimalDetour(t *testing.T) {
	s := rechargeScenario(56, 14, 1)
	p, err := (&BTCTP{}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	pts := s.Points()
	pos, err := selectRechargeEdge(pts, p.Groups[0].Walk, s.Recharge)
	if err != nil {
		t.Fatal(err)
	}
	n := len(p.Groups[0].Walk.Seq)
	chosen := geom.DetourCost(pts[p.Groups[0].Walk.Seq[pos]], pts[p.Groups[0].Walk.Seq[(pos+1)%n]], s.Recharge)
	for i := 0; i < n; i++ {
		c := geom.DetourCost(pts[p.Groups[0].Walk.Seq[i]], pts[p.Groups[0].Walk.Seq[(i+1)%n]], s.Recharge)
		if c < chosen-1e-9 {
			t.Fatalf("edge %d detour %.3f < chosen %.3f", i, c, chosen)
		}
	}
}

func TestRWTCTPSuperRoundAffordable(t *testing.T) {
	s := rechargeScenario(57, 18, 2)
	r := &RWTCTP{}
	p, err := r.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	pts := s.Points()
	m := r.model()
	wppLen := p.Groups[0].Walk.Length(pts)
	visits := p.Groups[0].Walk.Size()
	// Reconstruct WRP length from the plan's walks.
	var wrpLen float64
	{
		seq := p.Groups[0].RechargeWalk.Seq
		n := len(seq)
		get := func(i int) geom.Point {
			if seq[i] == RechargeID {
				return s.Recharge
			}
			return pts[seq[i]]
		}
		for i := 0; i < n; i++ {
			wrpLen += get(i).Dist(get((i + 1) % n))
		}
	}
	total := float64(p.Rounds-1)*m.RoundEnergy(wppLen, visits) +
		m.RoundEnergy(wrpLen, visits)
	if total > m.Capacity+1e-6 {
		t.Fatalf("super-round needs %.0f J > capacity %.0f J", total, m.Capacity)
	}
}

func TestRWTCTPName(t *testing.T) {
	r := &RWTCTP{}
	r.Policy = BalancingLength
	if r.Name() != "RW-TCTP(balancing)" {
		t.Fatalf("Name = %q", r.Name())
	}
}

// --- FleetPlan.Validate ------------------------------------------------------

func TestPlanValidateCatchesCorruption(t *testing.T) {
	s := scenario(60, 10, 3)
	mk := func() *FleetPlan {
		p, err := (&BTCTP{}).Plan(s)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	p := mk()
	p.Groups[0].Assignment[0] = p.Groups[0].Assignment[1]
	if p.Validate(s) == nil {
		t.Fatal("duplicate assignment accepted")
	}

	p = mk()
	p.Groups[0].Assignment[0] = 99
	if p.Validate(s) == nil {
		t.Fatal("out-of-range assignment accepted")
	}

	p = mk()
	p.Routes[1].Cycle = nil
	if p.Validate(s) == nil {
		t.Fatal("empty cycle accepted")
	}

	p = mk()
	p.Routes[1].Cycle[0].Repeat = 0
	if p.Validate(s) == nil {
		t.Fatal("zero repeat accepted")
	}

	p = mk()
	p.Groups[0].StartPoints = p.Groups[0].StartPoints[:1]
	if p.Validate(s) == nil {
		t.Fatal("truncated start points accepted")
	}

	p = mk()
	p.Routes[0].Cycle[0].Stops = nil
	if p.Validate(s) == nil {
		t.Fatal("empty phase accepted")
	}
}

// energyModelWithCapacity builds the default model with a custom
// capacity.
func energyModelWithCapacity(capacity float64) energy.Model {
	m := energy.Default()
	m.Capacity = capacity
	return m
}

func TestBTCTPDwellField(t *testing.T) {
	s := scenario(70, 12, 3)
	// Default dwell (zero value → energy.DefaultDwell): holds may be
	// nonzero.
	def, err := (&BTCTP{}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	// Explicit zero dwell: every hold must be exactly zero (the
	// paper's own idealization needs no phase correction).
	zero, err := (&BTCTP{Dwell: NoDwell}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range zero.Routes {
		if r.ExtraHold != 0 {
			t.Fatalf("mule %d hold = %v with zero dwell", i, r.ExtraHold)
		}
	}
	// Holds scale linearly with dwell.
	big, err := (&BTCTP{Dwell: 10}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range def.Routes {
		if def.Routes[i].ExtraHold == 0 {
			continue
		}
		ratio := big.Routes[i].ExtraHold / def.Routes[i].ExtraHold
		if math.Abs(ratio-10) > 1e-6 { // default dwell is 1 s
			t.Fatalf("mule %d hold ratio = %v, want 10", i, ratio)
		}
	}
	// Holds are normalized: the minimum hold is zero.
	min := math.Inf(1)
	for _, r := range def.Routes {
		if r.ExtraHold < min {
			min = r.ExtraHold
		}
	}
	if min != 0 {
		t.Fatalf("minimum hold = %v, want 0", min)
	}
}

func TestBTCTPEnergiesAffectAssignment(t *testing.T) {
	// Two mules at the same position contend for the same nearest
	// start point; per the paper the higher-energy mule moves on.
	s := scenario(71, 10, 2)
	s.MuleStarts[0] = s.MuleStarts[1]

	lowFirst, err := (&BTCTP{Energies: []float64{1, 100}}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	highFirst, err := (&BTCTP{Energies: []float64{100, 1}}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	// Swapping the energy order must swap the assignment.
	if lowFirst.Groups[0].Assignment[0] != highFirst.Groups[0].Assignment[1] ||
		lowFirst.Groups[0].Assignment[1] != highFirst.Groups[0].Assignment[0] {
		t.Fatalf("assignments %v vs %v do not mirror the energy swap",
			lowFirst.Groups[0].Assignment, highFirst.Groups[0].Assignment)
	}
}
