package core

// The partitioned (clustered) TCTP planner family: C-BTCTP and
// C-WTCTP. Where the paper's planners share one global Hamiltonian
// circuit among the whole fleet, the C-variants first partition the
// target set into k regions (k-means or angular sectors, independent
// of the fleet size), build one circuit — or one WPP — per region, and
// then run B-TCTP's start-point partition and location initialization
// machinery per region. The motivation is the paper's own clustered
// deployments: when targets sit in disconnected discs, a global tour
// wastes travel crossing the gaps every cycle, while per-region tours
// keep each mule inside one disc (the partitioned strategies of
// Scherer & Rinner, arXiv:1906.11539, and the facility-location mule
// coordination of Hermelin et al., arXiv:1702.04142).

import (
	"fmt"
	"math"
	"sort"

	"tctp/internal/cluster"
	"tctp/internal/field"
	"tctp/internal/geom"
	"tctp/internal/geom/index"
	"tctp/internal/tour"
	"tctp/internal/walk"
	"tctp/internal/xrand"
)

// indexThreshold is the point count above which core's nearest-point
// scans (mule-to-group matching, start-point assignment) go through a
// spatial grid. Below it a linear scan is faster than building the
// grid; both paths are bit-identical, so the threshold is purely a
// performance knob.
const indexThreshold = 48

// PartitionMethod selects how the C-planners split targets into
// regions.
type PartitionMethod int

// Supported partition methods.
const (
	// KMeansMethod groups targets with Lloyd's algorithm (k-means++
	// seeding, deterministic per source).
	KMeansMethod PartitionMethod = iota
	// SectorsMethod splits targets into angular sectors around the
	// centroid (fully deterministic).
	SectorsMethod
)

// String implements fmt.Stringer.
func (m PartitionMethod) String() string {
	switch m {
	case KMeansMethod:
		return "kmeans"
	case SectorsMethod:
		return "sectors"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// ParsePartitionMethod is the inverse of String.
func ParsePartitionMethod(s string) (PartitionMethod, error) {
	switch s {
	case "kmeans":
		return KMeansMethod, nil
	case "sectors":
		return SectorsMethod, nil
	default:
		return 0, fmt.Errorf("core: unknown partition method %q (valid: kmeans, sectors)", s)
	}
}

// AllocPolicy selects how the fleet is divided among the regions.
type AllocPolicy int

// Supported allocation policies.
const (
	// AllocByLength gives each region one mule plus a share of the
	// remaining fleet proportional to its tour length — the region
	// that takes longest to patrol gets the most mules, equalizing
	// per-region visiting intervals.
	AllocByLength AllocPolicy = iota
	// AllocByCount shares the remaining fleet proportionally to the
	// region's target count instead.
	AllocByCount
)

// String implements fmt.Stringer.
func (a AllocPolicy) String() string {
	switch a {
	case AllocByLength:
		return "length"
	case AllocByCount:
		return "count"
	default:
		return fmt.Sprintf("alloc(%d)", int(a))
	}
}

// ParseAllocPolicy is the inverse of String.
func ParseAllocPolicy(s string) (AllocPolicy, error) {
	switch s {
	case "length":
		return AllocByLength, nil
	case "count":
		return AllocByCount, nil
	default:
		return 0, fmt.Errorf("core: unknown allocation policy %q (valid: length, count)", s)
	}
}

// PartitionConfig parameterizes the partitioned planner family: the
// partition method, the region count k, and the mule-allocation
// policy. K is independent of the fleet size, but the fleet must carry
// at least one mule per region.
type PartitionConfig struct {
	Method PartitionMethod
	K      int
	Alloc  AllocPolicy
}

// String renders the canonical "method:k[:alloc]" form (the alloc
// suffix only when it differs from the default).
func (c PartitionConfig) String() string {
	s := fmt.Sprintf("%s:%d", c.Method, c.K)
	if c.Alloc != AllocByLength {
		s += ":" + c.Alloc.String()
	}
	return s
}

// Partitionable is implemented by planners that have a partitioned
// per-region variant. Partitioned returns the C-planner that applies
// this planner's path construction per region; src seeds the
// partition's randomness (k-means) and may be nil for a fixed seed.
type Partitionable interface {
	Planner
	Partitioned(cfg PartitionConfig, src *xrand.Source) Planner
}

// Partitioned implements Partitionable: C-BTCTP with this planner's
// circuit knobs.
func (b *BTCTP) Partitioned(cfg PartitionConfig, src *xrand.Source) Planner {
	return &CBTCTP{BTCTP: *b, Config: cfg, Rand: src}
}

// Partitioned implements Partitionable: C-WTCTP with this planner's
// WPP knobs.
func (wt *WTCTP) Partitioned(cfg PartitionConfig, src *xrand.Source) Planner {
	cp := *wt
	if src != nil {
		cp.Rand = src
	}
	return &CWTCTP{WTCTP: cp, Config: cfg}
}

// CBTCTP is the partitioned B-TCTP planner: k independent regions,
// each with its own Hamiltonian circuit, start-point partition, and
// location initialization.
type CBTCTP struct {
	// BTCTP carries the per-region circuit knobs (heuristic, 2-opt,
	// energies, dwell).
	BTCTP
	// Config is the partition (method, k, allocation policy).
	Config PartitionConfig
	// Rand seeds k-means; nil uses a fixed seed so planning is
	// deterministic.
	Rand *xrand.Source
}

// Name implements Planner.
func (c *CBTCTP) Name() string { return fmt.Sprintf("C-BTCTP(%s)", c.Config) }

// Plan implements Planner.
func (c *CBTCTP) Plan(s *field.Scenario) (*FleetPlan, error) {
	groups, err := partitionGroups(s, c.Config, c.Rand, func(members []int) (walk.Walk, error) {
		return buildGroupCircuit(s, members, c.Heuristic, c.Improve)
	})
	if err != nil {
		return nil, err
	}
	plan, _, err := assembleGroups(s, groups, c.Energies, effectiveDwell(c.Dwell))
	if err != nil {
		return nil, err
	}
	plan.Algorithm = c.Name()
	return plan, nil
}

// CWTCTP is the partitioned W-TCTP planner: each region gets its own
// Weighted Patrolling Path in which the region's VIPs occur as often
// as their weight, traversed under the §3.2 angle rule.
type CWTCTP struct {
	// WTCTP carries the per-region WPP knobs (policy, heuristic,
	// traversal, energies, dwell, randomness).
	WTCTP
	// Config is the partition (method, k, allocation policy).
	Config PartitionConfig
}

// Name implements Planner.
func (c *CWTCTP) Name() string {
	return fmt.Sprintf("C-WTCTP(%s,%s)", c.Policy, c.Config)
}

// Plan implements Planner.
func (c *CWTCTP) Plan(s *field.Scenario) (*FleetPlan, error) {
	rnd := c.Rand
	if rnd == nil {
		rnd = xrand.New(0)
	}
	groups, err := partitionGroups(s, c.Config, c.Rand, func(members []int) (walk.Walk, error) {
		return c.buildGroupWPP(s, members, rnd)
	})
	if err != nil {
		return nil, err
	}
	plan, _, err := assembleGroups(s, groups, c.Energies, effectiveDwell(c.Dwell))
	if err != nil {
		return nil, err
	}
	plan.Algorithm = c.Name()
	return plan, nil
}

// buildGroupWPP builds one region's WPP: the region circuit extended
// with w−1 extra occurrences of every member VIP (descending weight,
// ascending id — the same priority order as the global WPP), then
// re-traversed under the angle rule unless disabled.
func (c *CWTCTP) buildGroupWPP(s *field.Scenario, members []int, rnd *xrand.Source) (walk.Walk, error) {
	w, err := buildGroupCircuit(s, members, c.Heuristic, c.Improve)
	if err != nil {
		return walk.Walk{}, err
	}
	pts := s.Points()

	var vips []int
	for _, id := range members {
		if s.Targets[id].IsVIP() {
			vips = append(vips, id)
		}
	}
	sort.Slice(vips, func(a, b int) bool {
		wa, wb := s.Targets[vips[a]].Weight, s.Targets[vips[b]].Weight
		if wa != wb {
			return wa > wb
		}
		return vips[a] < vips[b]
	})
	for _, vip := range vips {
		weight := s.Targets[vip].Weight
		for x := 1; x < weight; x++ {
			pos, err := c.selectBreakEdge(pts, w, vip, rnd)
			if err != nil {
				return walk.Walk{}, err
			}
			w = w.InsertAfter(pos, vip)
		}
	}
	if !c.DisableAngleRule {
		w = TraverseAngleRule(pts, w)
	}
	// Per-region Definition 3: member targets occur as often as their
	// weight, non-members not at all.
	want := make([]int, s.NumTargets())
	for _, id := range members {
		want[id] = s.Targets[id].Weight
	}
	if err := w.Validate(s.NumTargets(), want); err != nil {
		return walk.Walk{}, fmt.Errorf("core: region WPP construction: %w", err)
	}
	return w, nil
}

// circuitBuilder builds one region's walk from its member target ids.
type circuitBuilder func(members []int) (walk.Walk, error)

// partitionGroups runs the shared partition pipeline of the C-planners:
// split the targets into cfg.K regions, build each region's walk,
// allocate mules to regions under the configured policy, and match the
// physical mules to regions by proximity.
func partitionGroups(s *field.Scenario, cfg PartitionConfig, src *xrand.Source, build circuitBuilder) ([]groupSpec, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	k := cfg.K
	if k < 1 {
		return nil, fmt.Errorf("core: partition needs k >= 1, got %d", k)
	}
	if k > s.NumTargets() {
		return nil, fmt.Errorf("core: partition k=%d exceeds %d targets", k, s.NumTargets())
	}
	n := s.NumMules()
	if n < k {
		return nil, fmt.Errorf("core: %d regions need at least %d mules, fleet has %d", k, k, n)
	}

	pts := s.Points()
	var assign []int
	switch cfg.Method {
	case KMeansMethod:
		rnd := src
		if rnd == nil {
			rnd = xrand.New(1)
		}
		assign = cluster.KMeans(pts, k, rnd, 100)
	case SectorsMethod:
		assign = cluster.Sectors(pts, k)
	default:
		return nil, fmt.Errorf("core: unknown partition method %v", cfg.Method)
	}
	members := cluster.Groups(assign, k)

	walks := make([]walk.Walk, k)
	weights := make([]float64, k)
	centroids := make([]geom.Point, k)
	for g, m := range members {
		w, err := build(m)
		if err != nil {
			return nil, fmt.Errorf("core: region %d (%d targets): %w", g, len(m), err)
		}
		walks[g] = w
		groupPts := make([]geom.Point, len(m))
		for i, id := range m {
			groupPts[i] = pts[id]
		}
		centroids[g] = geom.Centroid(groupPts)
		switch cfg.Alloc {
		case AllocByLength:
			weights[g] = w.Length(pts)
		case AllocByCount:
			weights[g] = float64(len(m))
		default:
			return nil, fmt.Errorf("core: unknown allocation policy %v", cfg.Alloc)
		}
	}

	counts := allocateMules(n, weights)
	muleGroup := MatchMulesToGroups(s.MuleStarts, centroids, counts)

	groups := make([]groupSpec, k)
	for g := range groups {
		groups[g] = groupSpec{walk: walks[g], targets: members[g]}
	}
	for mi, g := range muleGroup {
		groups[g].mules = append(groups[g].mules, mi)
	}
	return groups, nil
}

// buildGroupCircuit constructs one region's Hamiltonian circuit as a
// walk over global target ids, mirroring BTCTP.buildCircuit on the
// member subset.
func buildGroupCircuit(s *field.Scenario, members []int, h TourHeuristic, improve bool) (walk.Walk, error) {
	pts := s.Points()
	groupPts := make([]geom.Point, len(members))
	start := 0 // local tour start: the sink when it is a member
	for i, id := range members {
		groupPts[i] = pts[id]
		if id == s.SinkID {
			start = i
		}
	}
	var t tour.Tour
	switch h {
	case HullInsertion:
		t = tour.ConvexHullInsertion(groupPts)
	case NearestNeighborTour:
		t = tour.NearestNeighbor(groupPts, start)
	case GreedyEdgeTour:
		t = tour.GreedyEdge(groupPts)
	default:
		return walk.Walk{}, fmt.Errorf("core: unknown tour heuristic %v", h)
	}
	if improve {
		t = tour.TwoOpt(groupPts, t)
	}
	t = tour.EnsureCCW(groupPts, t)
	if err := tour.Validate(t, len(groupPts)); err != nil {
		return walk.Walk{}, fmt.Errorf("core: region circuit construction: %w", err)
	}
	seq := make([]int, len(t))
	for i, local := range t {
		seq[i] = members[local]
	}
	return walk.New(seq), nil
}

// allocateMules divides n mules among regions with the given weights:
// every region receives one mule, and the remaining n−k are shared
// proportionally to weight by the largest-remainder method (ties by
// region index), so the allocation is deterministic and every region
// can run its own location initialization.
func allocateMules(n int, weights []float64) []int {
	k := len(weights)
	counts := make([]int, k)
	for g := range counts {
		counts[g] = 1
	}
	extra := n - k
	if extra == 0 {
		return counts
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	rem := make([]float64, k)
	given := 0
	for g, w := range weights {
		q := 0.0
		if total > 0 {
			q = float64(extra) * w / total
		} else {
			q = float64(extra) / float64(k)
		}
		whole := int(math.Floor(q))
		counts[g] += whole
		given += whole
		rem[g] = q - float64(whole)
	}
	// Hand the leftover seats to the largest remainders, ties by
	// region index.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return rem[order[a]] > rem[order[b]] })
	for i := 0; i < extra-given; i++ {
		counts[order[i%k]]++
	}
	return counts
}

// MatchMulesToGroups assigns each mule to a group with free capacity.
// Mules settle in ascending (distance to their nearest centroid, mule
// index) order — the same conflict-resolution shape as
// assignStartPoints — and each settled mule takes the nearest group
// with remaining capacity. The matching therefore does not depend on
// the mules' enumeration order beyond exact-distance ties, which break
// by index. capacity[g] is how many mules group g accepts; capacities
// must sum to len(starts). The result maps mule index to group index.
//
// Above the index threshold the centroid scans go through a spatial
// grid: the settle keys are plain Nearest queries, and the capacity-
// constrained pass removes a group from the grid once its capacity is
// exhausted, making "nearest group with a free seat" a Nearest query
// over the live set. Both paths are bit-identical (equivalence tests).
func MatchMulesToGroups(starts, centroids []geom.Point, capacity []int) []int {
	n := len(starts)
	totalCap := 0
	for _, c := range capacity {
		totalCap += c
	}
	if totalCap != n {
		panic(fmt.Sprintf("core: %d mules but capacities sum to %d", n, totalCap))
	}
	if len(centroids) < indexThreshold {
		return matchMulesToGroupsBrute(starts, centroids, capacity)
	}

	g := index.New(centroids)
	// Static settle key: each mule's distance to its nearest centroid.
	nearest := make([]float64, n)
	for i, p := range starts {
		_, d := g.Nearest(p)
		nearest[i] = d
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if nearest[ia] != nearest[ib] {
			return nearest[ia] < nearest[ib]
		}
		return ia < ib
	})

	free := make([]int, len(capacity))
	copy(free, capacity)
	for gi, f := range free {
		if f == 0 {
			g.Remove(gi)
		}
	}
	out := make([]int, n)
	for _, mi := range order {
		best, _ := g.Nearest(starts[mi])
		free[best]--
		if free[best] == 0 {
			g.Remove(best)
		}
		out[mi] = best
	}
	return out
}

// matchMulesToGroupsBrute is the original linear-scan implementation
// of MatchMulesToGroups, retained as the reference the indexed path
// must reproduce bit-for-bit.
func matchMulesToGroupsBrute(starts, centroids []geom.Point, capacity []int) []int {
	n := len(starts)
	// Static settle key: each mule's distance to its nearest centroid.
	nearest := make([]float64, n)
	for i, p := range starts {
		best := math.Inf(1)
		for _, c := range centroids {
			if d := p.Dist2(c); d < best {
				best = d
			}
		}
		nearest[i] = best
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if nearest[ia] != nearest[ib] {
			return nearest[ia] < nearest[ib]
		}
		return ia < ib
	})

	free := make([]int, len(capacity))
	copy(free, capacity)
	out := make([]int, n)
	for _, mi := range order {
		best, bestD := -1, 0.0
		for g, c := range centroids {
			if free[g] == 0 {
				continue
			}
			d := starts[mi].Dist2(c)
			if best == -1 || d < bestD {
				best, bestD = g, d
			}
		}
		free[best]--
		out[mi] = best
	}
	return out
}
