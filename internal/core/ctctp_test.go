package core

import (
	"testing"

	"tctp/internal/field"
	"tctp/internal/geom"
	"tctp/internal/xrand"
)

func clusteredScenario(seed uint64, targets, mules int) *field.Scenario {
	return field.Generate(field.Config{
		NumTargets: targets,
		NumMules:   mules,
		Placement:  field.Clusters,
	}, xrand.New(seed))
}

// --- C-BTCTP ------------------------------------------------------------

func TestCBTCTPPlanStructure(t *testing.T) {
	s := clusteredScenario(1, 20, 6)
	for _, method := range []PartitionMethod{KMeansMethod, SectorsMethod} {
		p, err := (&CBTCTP{Config: PartitionConfig{Method: method, K: 4}}).Plan(s)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if err := p.Validate(s); err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if len(p.Groups) != 4 {
			t.Fatalf("%v: %d groups, want 4", method, len(p.Groups))
		}
		// Each group's walk is a Hamiltonian circuit over exactly its
		// member targets.
		for gi := range p.Groups {
			g := &p.Groups[gi]
			want := make([]int, s.NumTargets())
			for _, id := range g.Targets {
				want[id] = 1
			}
			if err := g.Walk.Validate(s.NumTargets(), want); err != nil {
				t.Fatalf("%v group %d: %v", method, gi, err)
			}
		}
		// Each mule's loop covers exactly its own group's targets.
		for gi := range p.Groups {
			g := &p.Groups[gi]
			member := map[int]bool{}
			for _, id := range g.Targets {
				member[id] = true
			}
			for _, mi := range g.Mules {
				for _, st := range p.Routes[mi].Cycle[0].Stops {
					if !member[st.TargetID] {
						t.Fatalf("%v: mule %d of group %d visits foreign target %d",
							method, mi, gi, st.TargetID)
					}
				}
			}
		}
	}
}

func TestCBTCTPGroupStartPointsEquallySpaced(t *testing.T) {
	s := clusteredScenario(2, 24, 8)
	p, err := (&CBTCTP{Config: PartitionConfig{Method: KMeansMethod, K: 3}}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	pts := s.Points()
	for gi := range p.Groups {
		g := &p.Groups[gi]
		L := g.Walk.Length(pts)
		n := len(g.StartPoints)
		for k, sp := range g.StartPoints {
			want := g.Walk.PointAt(pts, float64(k)*L/float64(n))
			if !sp.Eq(want) {
				t.Fatalf("group %d start point %d at %v, want %v", gi, k, sp, want)
			}
		}
	}
}

func TestCBTCTPMuleAllocationProportional(t *testing.T) {
	s := clusteredScenario(3, 30, 9)
	p, err := (&CBTCTP{Config: PartitionConfig{Method: KMeansMethod, K: 3}}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	pts := s.Points()
	// Every group has >= 1 mule, and the longest-tour group has at
	// least as many mules as the shortest-tour group.
	type gl struct {
		mules int
		len   float64
	}
	var groups []gl
	for gi := range p.Groups {
		g := &p.Groups[gi]
		if len(g.Mules) == 0 {
			t.Fatalf("group %d has no mules", gi)
		}
		groups = append(groups, gl{len(g.Mules), g.Walk.Length(pts)})
	}
	lo, hi := groups[0], groups[0]
	for _, g := range groups[1:] {
		if g.len < lo.len {
			lo = g
		}
		if g.len > hi.len {
			hi = g
		}
	}
	if hi.mules < lo.mules {
		t.Fatalf("longest tour (%0.f m) has %d mules, shortest (%0.f m) has %d",
			hi.len, hi.mules, lo.len, lo.mules)
	}
}

func TestCBTCTPErrors(t *testing.T) {
	s := clusteredScenario(4, 10, 2)
	if _, err := (&CBTCTP{Config: PartitionConfig{Method: KMeansMethod, K: 3}}).Plan(s); err == nil {
		t.Fatal("3 regions with 2 mules accepted")
	}
	if _, err := (&CBTCTP{Config: PartitionConfig{Method: KMeansMethod, K: 0}}).Plan(s); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := (&CBTCTP{Config: PartitionConfig{Method: KMeansMethod, K: 99}}).Plan(s); err == nil {
		t.Fatal("k beyond target count accepted")
	}
}

func TestCBTCTPDeterministic(t *testing.T) {
	s := clusteredScenario(5, 18, 5)
	mk := func() *FleetPlan {
		p, err := (&CBTCTP{Config: PartitionConfig{Method: KMeansMethod, K: 4}}).Plan(s)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk(), mk()
	if len(a.Groups) != len(b.Groups) {
		t.Fatal("group count differs between runs")
	}
	for gi := range a.Groups {
		ga, gb := &a.Groups[gi], &b.Groups[gi]
		if len(ga.Walk.Seq) != len(gb.Walk.Seq) {
			t.Fatal("walks differ between runs")
		}
		for i := range ga.Walk.Seq {
			if ga.Walk.Seq[i] != gb.Walk.Seq[i] {
				t.Fatal("walks differ between runs")
			}
		}
	}
}

// --- C-WTCTP ------------------------------------------------------------

func TestCWTCTPGroupWPPs(t *testing.T) {
	s := clusteredScenario(6, 20, 6)
	s.AssignVIPs(xrand.New(9), 4, 3)
	p, err := (&CWTCTP{
		WTCTP:  WTCTP{Policy: BalancingLength},
		Config: PartitionConfig{Method: KMeansMethod, K: 3},
	}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(s); err != nil {
		t.Fatal(err)
	}
	// Every VIP occurs weight times on its own group's walk and on no
	// other group's walk.
	for _, vip := range s.VIPs() {
		total := 0
		for gi := range p.Groups {
			occ := p.Groups[gi].Walk.Occurrences(vip)
			if occ > 0 && occ != s.Targets[vip].Weight {
				t.Fatalf("VIP %d occurs %d times in group %d, want %d",
					vip, occ, gi, s.Targets[vip].Weight)
			}
			total += occ
		}
		if total != s.Targets[vip].Weight {
			t.Fatalf("VIP %d occurs %d times across groups, want %d",
				vip, total, s.Targets[vip].Weight)
		}
	}
}

// --- Partitionable wiring ----------------------------------------------

func TestPartitionedPlannerDerivation(t *testing.T) {
	cfg := PartitionConfig{Method: SectorsMethod, K: 2}
	base := &BTCTP{Improve: true}
	cp, ok := base.Partitioned(cfg, nil).(*CBTCTP)
	if !ok {
		t.Fatal("BTCTP.Partitioned did not return a *CBTCTP")
	}
	if !cp.Improve || cp.Config != cfg {
		t.Fatalf("partitioned planner dropped knobs: %+v", cp)
	}
	wt := &WTCTP{Policy: BalancingLength}
	cw, ok := wt.Partitioned(cfg, xrand.New(3)).(*CWTCTP)
	if !ok {
		t.Fatal("WTCTP.Partitioned did not return a *CWTCTP")
	}
	if cw.Policy != BalancingLength || cw.Config != cfg {
		t.Fatalf("partitioned planner dropped knobs: %+v", cw)
	}
}

func TestPartitionConfigString(t *testing.T) {
	cases := map[string]PartitionConfig{
		"kmeans:4":        {Method: KMeansMethod, K: 4},
		"sectors:2":       {Method: SectorsMethod, K: 2},
		"kmeans:3:count":  {Method: KMeansMethod, K: 3, Alloc: AllocByCount},
		"sectors:5:count": {Method: SectorsMethod, K: 5, Alloc: AllocByCount},
	}
	for want, cfg := range cases {
		if got := cfg.String(); got != want {
			t.Fatalf("PartitionConfig%+v.String() = %q, want %q", cfg, got, want)
		}
	}
}

// --- allocation and matching -------------------------------------------

func TestAllocateMulesLargestRemainder(t *testing.T) {
	cases := []struct {
		n       int
		weights []float64
		want    []int
	}{
		// Every region gets 1; the 7 extras split ~proportionally.
		{10, []float64{100, 100, 100}, []int{4, 3, 3}},
		// One dominant region takes nearly all extras.
		{6, []float64{900, 50, 50}, []int{4, 1, 1}},
		// n == k: exactly one each regardless of weight.
		{3, []float64{5, 1000, 1}, []int{1, 1, 1}},
		// Zero total weight: extras split evenly, ties by index.
		{5, []float64{0, 0, 0}, []int{2, 2, 1}},
	}
	for _, c := range cases {
		got := allocateMules(c.n, c.weights)
		total := 0
		for i := range got {
			total += got[i]
			if got[i] != c.want[i] {
				t.Fatalf("allocateMules(%d, %v) = %v, want %v", c.n, c.weights, got, c.want)
			}
		}
		if total != c.n {
			t.Fatalf("allocateMules(%d, %v) sums to %d", c.n, c.weights, total)
		}
	}
}

func TestMatchMulesToGroupsClosestWins(t *testing.T) {
	centroids := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0)}
	// Both mules are nearest centroid 0; mule 1 is closer and must
	// keep it even though mule 0 enumerates first.
	starts := []geom.Point{geom.Pt(40, 0), geom.Pt(10, 0)}
	got := MatchMulesToGroups(starts, centroids, []int{1, 1})
	if got[1] != 0 || got[0] != 1 {
		t.Fatalf("matching %v, want mule 1 → group 0, mule 0 → group 1", got)
	}
	// Permuting the mules permutes the matching consistently.
	swapped := MatchMulesToGroups(
		[]geom.Point{starts[1], starts[0]}, centroids, []int{1, 1})
	if swapped[0] != got[1] || swapped[1] != got[0] {
		t.Fatalf("matching not permutation-consistent: %v vs %v", got, swapped)
	}
}

func TestMatchMulesToGroupsCapacity(t *testing.T) {
	centroids := []geom.Point{geom.Pt(0, 0), geom.Pt(1000, 0)}
	starts := []geom.Point{
		geom.Pt(0, 1), geom.Pt(0, 2), geom.Pt(0, 3), geom.Pt(999, 0),
	}
	got := MatchMulesToGroups(starts, centroids, []int{2, 2})
	counts := map[int]int{}
	for _, g := range got {
		counts[g]++
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("capacities violated: %v", got)
	}
	if got[3] != 1 {
		t.Fatalf("mule 3 (next to group 1) assigned %d", got[3])
	}
}

func TestMatchMulesToGroupsPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on capacity mismatch")
		}
	}()
	MatchMulesToGroups(make([]geom.Point, 3), make([]geom.Point, 2), []int{1, 1})
}
