// Package core implements the paper's contribution: the three Target
// Coverage Tour Patrolling planners.
//
//   - B-TCTP (§II): a common Hamiltonian circuit, an equal-length
//     start-point partition anchored at the most-north target, and a
//     location-initialization step that places exactly one data mule
//     per start point so the fleet patrols with perfectly balanced
//     visiting intervals.
//   - W-TCTP (§III): a Weighted Patrolling Path (WPP) in which each
//     VIP g_i lies on w_i cycles, built by repeatedly breaking an edge
//     and reconnecting both break points to the VIP. Two break-edge
//     policies are provided: Shortest-Length (Exp. 1) and
//     Balancing-Length (Exp. 2). Traversal order at VIPs follows the
//     minimal counterclockwise included-angle patrolling rule (§3.2).
//   - RW-TCTP (§IV): a Weighted Recharge Path (WRP) that inserts the
//     recharge station at the minimum-detour edge (Exp. 3), plus the
//     round budget r of Equ. 4 that alternates r−1 WPP traversals with
//     one WRP traversal so mules recharge before exhausting their
//     batteries.
//
// Planners emit a FleetPlan — a purely geometric artifact (walks,
// start points, per-mule routes) that internal/patrol turns into a
// running simulation.
package core

import (
	"fmt"
	"math"

	"tctp/internal/energy"
	"tctp/internal/field"
	"tctp/internal/geom"
	"tctp/internal/geom/index"
	"tctp/internal/mule"
	"tctp/internal/walk"
)

// NoDwell marks an explicitly zero collection dwell in planner
// configurations: the planners' Dwell fields treat the zero value as
// "use the default" (energy.DefaultDwell), so a literal zero dwell is
// requested with this sentinel instead.
const NoDwell = -1

// effectiveDwell resolves a planner's Dwell field.
func effectiveDwell(d float64) float64 {
	switch {
	case d < 0:
		return 0
	case d == 0:
		return energy.DefaultDwell
	default:
		return d
	}
}

// Planner is the common interface of all patrolling planners (the
// three TCTP variants and the fixed-route baselines).
type Planner interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Plan computes the fleet's routes for the scenario.
	Plan(s *field.Scenario) (*FleetPlan, error)
}

// Phase is one stage of a mule's repeating cycle: a stop sequence
// traversed Repeat times before the next phase begins. B-TCTP and
// W-TCTP plans have a single phase; RW-TCTP alternates a WPP phase
// (Repeat = r−1) with a WRP phase (Repeat = 1).
type Phase struct {
	Stops  []mule.Waypoint
	Repeat int
}

// MuleRoute is one mule's assignment: an approach traversed once (the
// location-initialization move to the start point), then the Cycle
// phases looped forever.
type MuleRoute struct {
	Approach []mule.Waypoint
	Cycle    []Phase
	// ExtraHold is an additional wait (seconds) at the start point
	// before patrolling begins. The paper partitions the path into
	// equal LENGTHS; with a nonzero collection dwell the two arcs
	// between consecutive mules can contain different numbers of
	// stops, which would skew the time spacing. Holding each mule by
	// dwell·(k_j − j·S/n) restores exact 1/n time-phase separation —
	// and is identically zero when the dwell is zero, i.e. in the
	// paper's own idealization.
	ExtraHold float64
}

// PatrolGroup is one patrol region of a plan: its own closed walk, the
// start points partitioning that walk, the member targets, and the
// mules assigned to patrol it. Single-circuit planners (B/W/RW-TCTP,
// CHB) emit exactly one group covering every target and every mule —
// the degenerate form — while partitioned planners (C-BTCTP, C-WTCTP,
// the Sweep baseline) emit one group per region. Together a plan's
// groups always partition both the target set and the fleet.
type PatrolGroup struct {
	// Walk is the group's patrolling walk over global target ids (the
	// Hamiltonian circuit, or the WPP with VIP revisits), rotated to
	// begin at the group's most-north target.
	Walk walk.Walk
	// RechargeWalk is the group's WRP for recharge-aware plans; empty
	// otherwise.
	RechargeWalk walk.Walk
	// Targets are the member target ids in ascending order. A target
	// belongs to exactly one group.
	Targets []int
	// Mules are the global indices of the mules patrolling this group,
	// in ascending order. A mule belongs to exactly one group.
	Mules []int
	// StartPoints are the points where the group's mules enter the
	// walk, one per member mule. For planners with location
	// initialization they are the equal-spaced partition points
	// (StartPoints[k] lies k·|walk|/len(Mules) along the walk); for
	// CHB and Sweep they are the nearest-entry points.
	StartPoints []geom.Point
	// Assignment maps member index k (the mule Mules[k]) to its
	// start-point index within StartPoints — a bijection.
	Assignment []int
}

// FleetPlan is a planner's complete output: the patrol groups plus the
// per-mule concrete routes realizing them.
type FleetPlan struct {
	// Algorithm names the planner that produced the plan.
	Algorithm string
	// Groups are the patrol groups. They partition the scenario's
	// targets and mules; single-circuit planners emit exactly one.
	Groups []PatrolGroup
	// Routes holds each mule's concrete route, indexed by mule.
	Routes []MuleRoute
	// MaxApproach is the longest straight-line distance any mule
	// travels to reach its start point; dividing by the mule speed
	// gives the synchronized patrol start time.
	MaxApproach float64
	// Rounds is RW-TCTP's Equ. 4 budget (0 for other planners).
	Rounds int
}

// Walks returns every group's walk in group order.
func (p *FleetPlan) Walks() []walk.Walk {
	out := make([]walk.Walk, len(p.Groups))
	for i := range p.Groups {
		out[i] = p.Groups[i].Walk
	}
	return out
}

// TotalWalkLength returns the summed length of every group's walk —
// for a single-group plan, the master circuit's length.
func (p *FleetPlan) TotalWalkLength(pts []geom.Point) float64 {
	total := 0.0
	for i := range p.Groups {
		total += p.Groups[i].Walk.Length(pts)
	}
	return total
}

// TotalWalkSize returns the summed hop count of every group's walk.
func (p *FleetPlan) TotalWalkSize() int {
	n := 0
	for i := range p.Groups {
		n += p.Groups[i].Walk.Size()
	}
	return n
}

// GroupOf returns the index of the group mule i patrols, or -1 when
// the plan does not assign the mule (an invalid plan).
func (p *FleetPlan) GroupOf(mule int) int {
	for gi := range p.Groups {
		for _, m := range p.Groups[gi].Mules {
			if m == mule {
				return gi
			}
		}
	}
	return -1
}

// Validate performs structural checks on the plan against the
// scenario: the groups partition the targets and the fleet, each
// group's start-point assignment is a bijection, and every route is a
// well-formed cycle.
func (p *FleetPlan) Validate(s *field.Scenario) error {
	n := s.NumMules()
	if len(p.Groups) == 0 {
		return fmt.Errorf("core: plan has no patrol groups")
	}
	if len(p.Routes) != n {
		return fmt.Errorf("core: %d routes for %d mules", len(p.Routes), n)
	}

	targetOwner := make([]int, s.NumTargets())
	muleOwner := make([]int, n)
	for i := range targetOwner {
		targetOwner[i] = -1
	}
	for i := range muleOwner {
		muleOwner[i] = -1
	}
	for gi := range p.Groups {
		g := &p.Groups[gi]
		if g.Walk.Size() == 0 {
			return fmt.Errorf("core: group %d has an empty walk", gi)
		}
		if len(g.Targets) == 0 {
			return fmt.Errorf("core: group %d has no targets", gi)
		}
		if len(g.Mules) == 0 {
			return fmt.Errorf("core: group %d has no mules", gi)
		}
		for k, t := range g.Targets {
			if t < 0 || t >= s.NumTargets() {
				return fmt.Errorf("core: group %d target %d out of range", gi, t)
			}
			if k > 0 && g.Targets[k-1] >= t {
				return fmt.Errorf("core: group %d targets not strictly ascending", gi)
			}
			if targetOwner[t] != -1 {
				return fmt.Errorf("core: target %d in groups %d and %d", t, targetOwner[t], gi)
			}
			targetOwner[t] = gi
		}
		member := make(map[int]bool, len(g.Targets))
		for _, t := range g.Targets {
			member[t] = true
		}
		for _, v := range g.Walk.Seq {
			if !member[v] {
				return fmt.Errorf("core: group %d walk visits non-member target %d", gi, v)
			}
		}
		for k, m := range g.Mules {
			if m < 0 || m >= n {
				return fmt.Errorf("core: group %d mule %d out of range", gi, m)
			}
			if k > 0 && g.Mules[k-1] >= m {
				return fmt.Errorf("core: group %d mules not strictly ascending", gi)
			}
			if muleOwner[m] != -1 {
				return fmt.Errorf("core: mule %d in groups %d and %d", m, muleOwner[m], gi)
			}
			muleOwner[m] = gi
		}
		ng := len(g.Mules)
		if len(g.StartPoints) != ng {
			return fmt.Errorf("core: group %d has %d start points for %d mules",
				gi, len(g.StartPoints), ng)
		}
		if len(g.Assignment) != ng {
			return fmt.Errorf("core: group %d assignment sized %d, want %d",
				gi, len(g.Assignment), ng)
		}
		seen := make([]bool, ng)
		for k, a := range g.Assignment {
			if a < 0 || a >= ng {
				return fmt.Errorf("core: group %d mule %d assigned to start point %d",
					gi, g.Mules[k], a)
			}
			if seen[a] {
				return fmt.Errorf("core: group %d start point %d assigned twice", gi, a)
			}
			seen[a] = true
		}
	}
	for t, owner := range targetOwner {
		if owner == -1 {
			return fmt.Errorf("core: target %d belongs to no group", t)
		}
	}
	for m, owner := range muleOwner {
		if owner == -1 {
			return fmt.Errorf("core: mule %d belongs to no group", m)
		}
	}

	for i, r := range p.Routes {
		if len(r.Cycle) == 0 {
			return fmt.Errorf("core: mule %d has no cycle", i)
		}
		for j, ph := range r.Cycle {
			if len(ph.Stops) == 0 {
				return fmt.Errorf("core: mule %d phase %d empty", i, j)
			}
			if ph.Repeat < 1 {
				return fmt.Errorf("core: mule %d phase %d repeat %d", i, j, ph.Repeat)
			}
		}
	}
	return nil
}

// assignStartPoints implements the location-initialization conflict
// resolution of §2.2-B: every mule heads for its closest start point;
// when several contend for one, the mule with the LOWEST remaining
// energy keeps it and each higher-energy mule advances to the next
// start point along the path ("the DM with higher remaining energy
// will move to next start point"). The protocol is realized
// deterministically by settling mules in ascending (energy, index)
// order, probing forward cyclically from each mule's nearest start
// point. energies may be nil (all equal, ties broken by index).
func assignStartPoints(muleStarts, startPts []geom.Point, energies []float64) []int {
	n := len(muleStarts)
	if len(startPts) != n {
		panic(fmt.Sprintf("core: %d mules but %d start points", n, len(startPts)))
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Ascending energy, then ascending index: lower energy settles
	// first and therefore never yields its nearest free start point.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			ea, eb := 0.0, 0.0
			if energies != nil {
				ea, eb = energies[a], energies[b]
			}
			if eb < ea || (eb == ea && b < a) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}

	// Above the index threshold the initial nearest-start-point lookup
	// is a grid query; the brute scan's strict < breaks ties by the
	// lower index, which is the grid's tie-break, so both paths pick
	// the same point bit-for-bit. The cyclic probe over taken points is
	// unchanged — it depends on the start-point ring order, not on
	// proximity.
	var g *index.Grid
	if n >= indexThreshold {
		g = index.New(startPts)
	}
	taken := make([]bool, n)
	assign := make([]int, n)
	for _, mi := range order {
		// Nearest start point, ties by lower index.
		var best int
		if g != nil {
			best, _ = g.Nearest(muleStarts[mi])
		} else {
			bestD := math.Inf(1)
			for k, sp := range startPts {
				if d := muleStarts[mi].Dist2(sp); d < bestD {
					best, bestD = k, d
				}
			}
		}
		for taken[best] {
			best = (best + 1) % n
		}
		taken[best] = true
		assign[mi] = best
	}
	return assign
}

// loopFrom builds a mule's repeating stop list: the walk's targets in
// visiting order starting from the first target at arc offset ≥ d
// (wrapping). A target exactly at the start point is visited
// immediately on arrival. offsets must be w.ArcOffsets(pts) — callers
// placing several mules on one walk compute it once and share it. The
// second result is the walk position of the first stop (which RW-TCTP
// needs to locate the recharge insertion point inside each mule's
// rotated loop); the third is the number of stops strictly before arc
// offset d — equal to the first result except when d falls on the
// closing edge, where the loop wraps to position 0 but all len(w.Seq)
// stops lie before d. The phase-equalizing holds need the latter
// count.
func loopFrom(pts []geom.Point, w walk.Walk, offsets []float64, d float64) ([]mule.Waypoint, int, int) {
	n := len(offsets)
	k0 := 0 // first position with offset >= d (within tolerance)
	stopsBefore := n
	for k, off := range offsets {
		if off >= d-geom.Eps {
			k0 = k
			stopsBefore = k
			break
		}
	}
	out := make([]mule.Waypoint, 0, n)
	for i := 0; i < n; i++ {
		k := (k0 + i) % n
		id := w.Seq[k]
		out = append(out, mule.Waypoint{Pos: pts[id], TargetID: id})
	}
	return out, k0, stopsBefore
}

// RouteFromArc builds a single-phase route that approaches the point
// at arc offset d on the walk and then loops the walk's targets from
// there. Baselines without location initialization (CHB entering the
// circuit at the nearest point, Sweep patrolling per-group circuits)
// share this assembly with the TCTP planners.
func RouteFromArc(pts []geom.Point, w walk.Walk, d float64) MuleRoute {
	return RoutesFromArcs(pts, w, []float64{d})[0]
}

// RoutesFromArcs is RouteFromArc for a batch of arc offsets on one
// walk: the arc-offset table and the entry-point polyline are built
// once and shared by every route, instead of once per mule. The routes
// are bit-identical to calling RouteFromArc per offset; CHB assigns a
// whole fleet to its circuit through this path.
func RoutesFromArcs(pts []geom.Point, w walk.Walk, ds []float64) []MuleRoute {
	offsets := w.ArcOffsets(pts)
	entries := w.PointsAt(pts, ds)
	out := make([]MuleRoute, len(ds))
	for i, d := range ds {
		stops, _, _ := loopFrom(pts, w, offsets, d)
		out[i] = MuleRoute{
			Approach: []mule.Waypoint{{Pos: entries[i], TargetID: mule.NoTarget}},
			Cycle:    []Phase{{Stops: stops, Repeat: 1}},
		}
	}
	return out
}

// groupSpec is the planner-side description of one patrol group before
// fleet assembly: the walk over global target ids, the member target
// ids (ascending), and the global indices of the mules assigned to it
// (ascending).
type groupSpec struct {
	walk    walk.Walk
	targets []int
	mules   []int
}

// SeqIDs returns 0..n-1: the member list of a degenerate one-group
// plan (every target, every mule). Baselines building such plans by
// hand (CHB) share it.
func SeqIDs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// assembleGroups builds the fleet plan for a set of patrol groups by
// applying B-TCTP's §2.2 machinery per group: each group's walk is
// rotated to its most-north target and partitioned into equal-length
// arcs, and the group's mules run the location-initialization
// assignment against those start points. anchors[i] is mule i's loop
// anchor (the walk position of its first stop), which RW-TCTP needs to
// locate the recharge insertion point. energies (nil = all equal) are
// indexed by global mule id; dwell feeds the per-group
// phase-equalizing holds.
func assembleGroups(s *field.Scenario, groups []groupSpec, energies []float64, dwell float64) (*FleetPlan, []int, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	pts := s.Points()
	plan := &FleetPlan{
		Groups: make([]PatrolGroup, len(groups)),
		Routes: make([]MuleRoute, s.NumMules()),
	}
	anchors := make([]int, s.NumMules())
	for gi, g := range groups {
		if len(g.mules) == 0 {
			return nil, nil, fmt.Errorf("core: group %d (%d targets) has no mules", gi, len(g.targets))
		}
		w := g.walk.RotateToNorthmost(pts)
		n := len(g.mules)
		startPts := w.StartPoints(pts, n)
		muleStarts := make([]geom.Point, n)
		var groupEnergies []float64
		if energies != nil {
			groupEnergies = make([]float64, n)
		}
		for k, mi := range g.mules {
			muleStarts[k] = s.MuleStarts[mi]
			if energies != nil {
				groupEnergies[k] = energies[mi]
			}
		}
		assign := assignStartPoints(muleStarts, startPts, groupEnergies)

		total := w.Length(pts)
		nStops := float64(w.Size())
		// One arc-offset table serves every mule placed on this walk.
		offsets := w.ArcOffsets(pts)
		holds := make([]float64, n)
		minHold := math.Inf(1)
		for k, mi := range g.mules {
			spIdx := assign[k]
			sp := startPts[spIdx]
			d := float64(spIdx) * total / float64(n)
			approachDist := s.MuleStarts[mi].Dist(sp)
			if approachDist > plan.MaxApproach {
				plan.MaxApproach = approachDist
			}
			stops, k0, stopsBefore := loopFrom(pts, w, offsets, d)
			anchors[mi] = k0
			// Phase equalization: the mule at start point j has
			// stopsBefore stops before it on the walk; holding
			// dwell·(stopsBefore − j·S/n) makes the time phases exactly
			// j·T/n apart (T = walk time incl. dwells). The common
			// offset is normalized out per group below.
			holds[k] = dwell * (float64(stopsBefore) - float64(spIdx)*nStops/float64(n))
			if holds[k] < minHold {
				minHold = holds[k]
			}
			plan.Routes[mi] = MuleRoute{
				Approach: []mule.Waypoint{{Pos: sp, TargetID: mule.NoTarget}},
				Cycle: []Phase{{
					Stops:  stops,
					Repeat: 1,
				}},
			}
		}
		for k, mi := range g.mules {
			plan.Routes[mi].ExtraHold = holds[k] - minHold
		}
		plan.Groups[gi] = PatrolGroup{
			Walk:        w,
			Targets:     g.targets,
			Mules:       g.mules,
			StartPoints: startPts,
			Assignment:  assign,
		}
	}
	return plan, anchors, nil
}

// assembleFleet builds the degenerate one-group plan for a common
// walk: every target and every mule in a single patrol group. It is
// shared by B-TCTP, W-TCTP, and RW-TCTP; the partitioned planners call
// assembleGroups with their own partition.
func assembleFleet(s *field.Scenario, w walk.Walk, energies []float64, dwell float64) (*FleetPlan, []int, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	g := groupSpec{walk: w, targets: SeqIDs(s.NumTargets()), mules: SeqIDs(s.NumMules())}
	return assembleGroups(s, []groupSpec{g}, energies, dwell)
}
