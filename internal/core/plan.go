// Package core implements the paper's contribution: the three Target
// Coverage Tour Patrolling planners.
//
//   - B-TCTP (§II): a common Hamiltonian circuit, an equal-length
//     start-point partition anchored at the most-north target, and a
//     location-initialization step that places exactly one data mule
//     per start point so the fleet patrols with perfectly balanced
//     visiting intervals.
//   - W-TCTP (§III): a Weighted Patrolling Path (WPP) in which each
//     VIP g_i lies on w_i cycles, built by repeatedly breaking an edge
//     and reconnecting both break points to the VIP. Two break-edge
//     policies are provided: Shortest-Length (Exp. 1) and
//     Balancing-Length (Exp. 2). Traversal order at VIPs follows the
//     minimal counterclockwise included-angle patrolling rule (§3.2).
//   - RW-TCTP (§IV): a Weighted Recharge Path (WRP) that inserts the
//     recharge station at the minimum-detour edge (Exp. 3), plus the
//     round budget r of Equ. 4 that alternates r−1 WPP traversals with
//     one WRP traversal so mules recharge before exhausting their
//     batteries.
//
// Planners emit a FleetPlan — a purely geometric artifact (walks,
// start points, per-mule routes) that internal/patrol turns into a
// running simulation.
package core

import (
	"fmt"
	"math"

	"tctp/internal/energy"
	"tctp/internal/field"
	"tctp/internal/geom"
	"tctp/internal/mule"
	"tctp/internal/walk"
)

// NoDwell marks an explicitly zero collection dwell in planner
// configurations: the planners' Dwell fields treat the zero value as
// "use the default" (energy.DefaultDwell), so a literal zero dwell is
// requested with this sentinel instead.
const NoDwell = -1

// effectiveDwell resolves a planner's Dwell field.
func effectiveDwell(d float64) float64 {
	switch {
	case d < 0:
		return 0
	case d == 0:
		return energy.DefaultDwell
	default:
		return d
	}
}

// Planner is the common interface of all patrolling planners (the
// three TCTP variants and the fixed-route baselines).
type Planner interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Plan computes the fleet's routes for the scenario.
	Plan(s *field.Scenario) (*FleetPlan, error)
}

// Phase is one stage of a mule's repeating cycle: a stop sequence
// traversed Repeat times before the next phase begins. B-TCTP and
// W-TCTP plans have a single phase; RW-TCTP alternates a WPP phase
// (Repeat = r−1) with a WRP phase (Repeat = 1).
type Phase struct {
	Stops  []mule.Waypoint
	Repeat int
}

// MuleRoute is one mule's assignment: an approach traversed once (the
// location-initialization move to the start point), then the Cycle
// phases looped forever.
type MuleRoute struct {
	Approach []mule.Waypoint
	Cycle    []Phase
	// ExtraHold is an additional wait (seconds) at the start point
	// before patrolling begins. The paper partitions the path into
	// equal LENGTHS; with a nonzero collection dwell the two arcs
	// between consecutive mules can contain different numbers of
	// stops, which would skew the time spacing. Holding each mule by
	// dwell·(k_j − j·S/n) restores exact 1/n time-phase separation —
	// and is identically zero when the dwell is zero, i.e. in the
	// paper's own idealization.
	ExtraHold float64
}

// FleetPlan is a planner's complete output.
type FleetPlan struct {
	// Algorithm names the planner that produced the plan.
	Algorithm string
	// Walk is the master patrolling walk shared by every mule (the
	// Hamiltonian circuit for B-TCTP, the WPP for W-TCTP/RW-TCTP),
	// rotated to begin at the most-north target.
	Walk walk.Walk
	// RechargeWalk is the WRP for RW-TCTP plans; empty otherwise.
	RechargeWalk walk.Walk
	// StartPoints are the equal-spaced points partitioning the walk,
	// one per mule; StartPoints[k] lies k·|walk|/n along the walk.
	StartPoints []geom.Point
	// Assignment maps mule index to start-point index.
	Assignment []int
	// Routes holds each mule's concrete route.
	Routes []MuleRoute
	// MaxApproach is the longest straight-line distance any mule
	// travels to reach its start point; dividing by the mule speed
	// gives the synchronized patrol start time.
	MaxApproach float64
	// Rounds is RW-TCTP's Equ. 4 budget (0 for other planners).
	Rounds int
}

// Validate performs structural checks on the plan against the
// scenario.
func (p *FleetPlan) Validate(s *field.Scenario) error {
	n := s.NumMules()
	if len(p.StartPoints) != n {
		return fmt.Errorf("core: %d start points for %d mules", len(p.StartPoints), n)
	}
	if len(p.Assignment) != n || len(p.Routes) != n {
		return fmt.Errorf("core: assignment/routes sized %d/%d, want %d",
			len(p.Assignment), len(p.Routes), n)
	}
	seen := make([]bool, n)
	for i, a := range p.Assignment {
		if a < 0 || a >= n {
			return fmt.Errorf("core: mule %d assigned to start point %d", i, a)
		}
		if seen[a] {
			return fmt.Errorf("core: start point %d assigned twice", a)
		}
		seen[a] = true
	}
	for i, r := range p.Routes {
		if len(r.Cycle) == 0 {
			return fmt.Errorf("core: mule %d has no cycle", i)
		}
		for j, ph := range r.Cycle {
			if len(ph.Stops) == 0 {
				return fmt.Errorf("core: mule %d phase %d empty", i, j)
			}
			if ph.Repeat < 1 {
				return fmt.Errorf("core: mule %d phase %d repeat %d", i, j, ph.Repeat)
			}
		}
	}
	return nil
}

// assignStartPoints implements the location-initialization conflict
// resolution of §2.2-B: every mule heads for its closest start point;
// when several contend for one, the mule with the LOWEST remaining
// energy keeps it and each higher-energy mule advances to the next
// start point along the path ("the DM with higher remaining energy
// will move to next start point"). The protocol is realized
// deterministically by settling mules in ascending (energy, index)
// order, probing forward cyclically from each mule's nearest start
// point. energies may be nil (all equal, ties broken by index).
func assignStartPoints(muleStarts, startPts []geom.Point, energies []float64) []int {
	n := len(muleStarts)
	if len(startPts) != n {
		panic(fmt.Sprintf("core: %d mules but %d start points", n, len(startPts)))
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Ascending energy, then ascending index: lower energy settles
	// first and therefore never yields its nearest free start point.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			ea, eb := 0.0, 0.0
			if energies != nil {
				ea, eb = energies[a], energies[b]
			}
			if eb < ea || (eb == ea && b < a) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}

	taken := make([]bool, n)
	assign := make([]int, n)
	for _, mi := range order {
		// Nearest start point, ties by lower index.
		best, bestD := 0, math.Inf(1)
		for k, sp := range startPts {
			if d := muleStarts[mi].Dist2(sp); d < bestD {
				best, bestD = k, d
			}
		}
		for taken[best] {
			best = (best + 1) % n
		}
		taken[best] = true
		assign[mi] = best
	}
	return assign
}

// loopFrom builds a mule's repeating stop list: the walk's targets in
// visiting order starting from the first target at arc offset ≥ d
// (wrapping). A target exactly at the start point is visited
// immediately on arrival. The second result is the walk position of
// the first stop (which RW-TCTP needs to locate the recharge
// insertion point inside each mule's rotated loop); the third is the
// number of stops strictly before arc offset d — equal to the first
// result except when d falls on the closing edge, where the loop
// wraps to position 0 but all len(w.Seq) stops lie before d. The
// phase-equalizing holds need the latter count.
func loopFrom(pts []geom.Point, w walk.Walk, d float64) ([]mule.Waypoint, int, int) {
	offsets := w.ArcOffsets(pts)
	n := len(offsets)
	k0 := 0 // first position with offset >= d (within tolerance)
	stopsBefore := n
	for k, off := range offsets {
		if off >= d-geom.Eps {
			k0 = k
			stopsBefore = k
			break
		}
	}
	out := make([]mule.Waypoint, 0, n)
	for i := 0; i < n; i++ {
		k := (k0 + i) % n
		id := w.Seq[k]
		out = append(out, mule.Waypoint{Pos: pts[id], TargetID: id})
	}
	return out, k0, stopsBefore
}

// RouteFromArc builds a single-phase route that approaches the point
// at arc offset d on the walk and then loops the walk's targets from
// there. Baselines without location initialization (CHB entering the
// circuit at the nearest point, Sweep patrolling per-group circuits)
// share this assembly with the TCTP planners.
func RouteFromArc(pts []geom.Point, w walk.Walk, d float64) MuleRoute {
	stops, _, _ := loopFrom(pts, w, d)
	entry := w.PointAt(pts, d)
	return MuleRoute{
		Approach: []mule.Waypoint{{Pos: entry, TargetID: mule.NoTarget}},
		Cycle:    []Phase{{Stops: stops, Repeat: 1}},
	}
}

// assembleFleet builds start points, the location-initialization
// assignment, and the per-mule single-phase routes for a common walk.
// It is shared by B-TCTP, W-TCTP, and the fixed-route baselines. The
// returned slice holds each mule's loop anchor (the walk position of
// its first stop). dwell is the per-collection pause used to compute
// the phase-equalizing holds.
func assembleFleet(s *field.Scenario, w walk.Walk, energies []float64, dwell float64) (*FleetPlan, []int, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	pts := s.Points()
	w = w.RotateToNorthmost(pts)
	n := s.NumMules()
	startPts := w.StartPoints(pts, n)
	assign := assignStartPoints(s.MuleStarts, startPts, energies)

	total := w.Length(pts)
	nStops := float64(w.Size())
	plan := &FleetPlan{
		Walk:        w,
		StartPoints: startPts,
		Assignment:  assign,
		Routes:      make([]MuleRoute, n),
	}
	anchors := make([]int, n)
	holds := make([]float64, n)
	minHold := math.Inf(1)
	for i := 0; i < n; i++ {
		spIdx := assign[i]
		sp := startPts[spIdx]
		d := float64(spIdx) * total / float64(n)
		approachDist := s.MuleStarts[i].Dist(sp)
		if approachDist > plan.MaxApproach {
			plan.MaxApproach = approachDist
		}
		stops, k0, stopsBefore := loopFrom(pts, w, d)
		anchors[i] = k0
		// Phase equalization: mule at start point j has stopsBefore
		// stops before it on the walk; holding
		// dwell·(stopsBefore − j·S/n) makes the time phases exactly
		// j·T/n apart (T = walk time incl. dwells). The common offset
		// is normalized out below.
		holds[i] = dwell * (float64(stopsBefore) - float64(spIdx)*nStops/float64(n))
		if holds[i] < minHold {
			minHold = holds[i]
		}
		plan.Routes[i] = MuleRoute{
			Approach: []mule.Waypoint{{Pos: sp, TargetID: mule.NoTarget}},
			Cycle: []Phase{{
				Stops:  stops,
				Repeat: 1,
			}},
		}
	}
	for i := range plan.Routes {
		plan.Routes[i].ExtraHold = holds[i] - minHold
	}
	return plan, anchors, nil
}
