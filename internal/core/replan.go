// Dynamic-world replanning: rebuilding a FleetPlan mid-simulation
// after mule attrition or target spawns.
//
// The paper's planners are static — plan once, patrol forever. The
// replan layer reuses exactly the same machinery (group circuits,
// largest-remainder mule allocation, proximity matching, equal-arc
// start points) to recompute a plan for the world as it stands at an
// event boundary: the surviving mules at their current positions and
// the currently-active targets. The "absorb" handoff policy keeps the
// surviving groups' circuits intact where possible and folds each dead
// group's targets, as a block, into the nearest surviving group.
//
// Everything here is deterministic: ties break by index, no random
// source is consulted, and the construction depends only on the
// (scenario, previous groups, active/alive sets, positions) inputs —
// the property the sweep layer's byte-identical-output guarantee
// rests on.
package core

import (
	"fmt"
	"sort"

	"tctp/internal/field"
	"tctp/internal/geom"
	"tctp/internal/mule"
	"tctp/internal/walk"
)

// ActiveView builds the reduced scenario seen by a replanner: only the
// active targets (renumbered 0..m-1 in ascending global order) and
// only the alive mules, started from their given current positions.
// active == nil means every target is active; alive == nil means every
// mule is alive; positions == nil means s.MuleStarts. The sink must be
// active. The returned id tables map view target index → global target
// id and view mule index → global mule index.
func ActiveView(s *field.Scenario, active, alive []bool, positions []geom.Point) (*field.Scenario, []int, []int, error) {
	if positions == nil {
		positions = s.MuleStarts
	}
	if len(positions) != s.NumMules() {
		return nil, nil, nil, fmt.Errorf("core: %d positions for %d mules", len(positions), s.NumMules())
	}
	if active != nil && !active[s.SinkID] {
		return nil, nil, nil, fmt.Errorf("core: sink %d cannot be inactive", s.SinkID)
	}
	view := &field.Scenario{
		Field:       s.Field,
		Recharge:    s.Recharge,
		HasRecharge: s.HasRecharge,
	}
	var tids []int
	for i, t := range s.Targets {
		if active != nil && !active[i] {
			continue
		}
		if i == s.SinkID {
			view.SinkID = len(view.Targets)
		}
		view.Targets = append(view.Targets, field.Target{
			ID:     len(view.Targets),
			Pos:    t.Pos,
			Weight: t.Weight,
		})
		tids = append(tids, i)
	}
	var mids []int
	for i := range s.MuleStarts {
		if alive != nil && !alive[i] {
			continue
		}
		view.MuleStarts = append(view.MuleStarts, positions[i])
		mids = append(mids, i)
	}
	if err := view.Validate(); err != nil {
		return nil, nil, nil, err
	}
	return view, tids, mids, nil
}

// remapWalk maps every stop of w through ids.
func remapWalk(w walk.Walk, ids []int) walk.Walk {
	if w.Size() == 0 {
		return w
	}
	seq := make([]int, len(w.Seq))
	for i, v := range w.Seq {
		seq[i] = ids[v]
	}
	return walk.New(seq)
}

// remapInts maps every element of xs through ids.
func remapInts(xs, ids []int) []int {
	out := make([]int, len(xs))
	for i, v := range xs {
		out[i] = ids[v]
	}
	return out
}

// remapStops maps the target ids of a waypoint list through ids,
// leaving NoTarget stops untouched.
func remapStops(stops []mule.Waypoint, ids []int) []mule.Waypoint {
	out := make([]mule.Waypoint, len(stops))
	for i, wp := range stops {
		if wp.TargetID != mule.NoTarget {
			wp.TargetID = ids[wp.TargetID]
		}
		out[i] = wp
	}
	return out
}

// RemapPlan returns a copy of plan with every target id — in group
// walks, member lists, and route waypoints — mapped through ids (view
// target index → global target id). Mule indices are untouched, so the
// plan must cover the same fleet in both spaces. It converts a plan
// built on an ActiveView back into global target coordinates, e.g. for
// result reporting when part of the world was dormant at plan time.
func RemapPlan(plan *FleetPlan, ids []int) *FleetPlan {
	out := &FleetPlan{
		Algorithm:   plan.Algorithm,
		Groups:      make([]PatrolGroup, len(plan.Groups)),
		Routes:      make([]MuleRoute, len(plan.Routes)),
		MaxApproach: plan.MaxApproach,
		Rounds:      plan.Rounds,
	}
	for gi, g := range plan.Groups {
		out.Groups[gi] = PatrolGroup{
			Walk:         remapWalk(g.Walk, ids),
			RechargeWalk: remapWalk(g.RechargeWalk, ids),
			Targets:      remapInts(g.Targets, ids),
			Mules:        append([]int(nil), g.Mules...),
			StartPoints:  append([]geom.Point(nil), g.StartPoints...),
			Assignment:   append([]int(nil), g.Assignment...),
		}
	}
	for ri, r := range plan.Routes {
		nr := MuleRoute{
			Approach:  remapStops(r.Approach, ids),
			Cycle:     make([]Phase, len(r.Cycle)),
			ExtraHold: r.ExtraHold,
		}
		for pi, ph := range r.Cycle {
			nr.Cycle[pi] = Phase{Stops: remapStops(ph.Stops, ids), Repeat: ph.Repeat}
		}
		out.Routes[ri] = nr
	}
	return out
}

// ReplanConfig parameterizes the mid-run replanner. The zero value —
// hull-insertion circuits, no 2-opt, the energy model's default
// dwell — is the deterministic default the patrol layer uses.
type ReplanConfig struct {
	// Heuristic builds the circuit of any group whose target set
	// changed (absorbed a dead group's block or gained a spawn).
	Heuristic TourHeuristic
	// Improve applies 2-opt to rebuilt circuits.
	Improve bool
	// Dwell feeds the phase-equalizing holds (0 = default dwell,
	// NoDwell = none), matching the Planner convention.
	Dwell float64
}

// Replan is the output of AbsorbReplan: a fresh plan expressed over
// the reduced view (so FleetPlan.Validate holds against View), plus
// the id tables and the group bookkeeping remapped to global ids.
type Replan struct {
	// View is the reduced scenario the plan was computed on: alive
	// mules at their event-time positions, active targets renumbered.
	View *field.Scenario
	// Plan validates against View. Plan.Routes is indexed by view mule
	// index; map through MuleIDs to reach global mules and remap route
	// target ids through TargetIDs before installing on a live fleet.
	Plan *FleetPlan
	// TargetIDs maps view target index → global target id.
	TargetIDs []int
	// MuleIDs maps view mule index → global mule index.
	MuleIDs []int
	// Groups is Plan.Groups remapped to global target ids and global
	// mule indices, for post-event bookkeeping and later replans.
	Groups []PatrolGroup
}

// AbsorbReplan recomputes a fleet plan after mule deaths and/or target
// spawns under the nearest-group-absorb handoff policy:
//
//   - groups that kept at least one living mule survive; a dead
//     group's targets are absorbed as a block into the surviving group
//     with the nearest centroid (ties by lower group index);
//   - newly-spawned targets (active but owned by no previous group)
//     individually join the surviving group with the nearest centroid;
//   - groups whose target set changed get their circuit rebuilt with
//     cfg.Heuristic; untouched groups keep their walk (preserving VIP
//     revisit structure);
//   - all surviving mules are reallocated across the surviving groups
//     by walk length (largest-remainder) and matched to groups by
//     proximity from their current positions, then every group runs
//     the standard equal-arc location initialization.
//
// prev are the groups of the plan being replaced (only Targets, Mules,
// and Walk are consulted); active/alive/positions are indexed by
// global target and mule ids. positions == nil means s.MuleStarts.
func AbsorbReplan(s *field.Scenario, prev []PatrolGroup, active, alive []bool, positions []geom.Point, cfg ReplanConfig) (*Replan, error) {
	if len(prev) == 0 {
		return nil, fmt.Errorf("core: replan with no previous groups")
	}
	view, tids, mids, err := ActiveView(s, active, alive, positions)
	if err != nil {
		return nil, err
	}
	if len(mids) == 0 {
		return nil, fmt.Errorf("core: replan with no surviving mules")
	}
	toLocal := make(map[int]int, len(tids))
	for li, gi := range tids {
		toLocal[gi] = li
	}

	// Surviving groups keep their (active) targets; dead groups become
	// orphan blocks.
	isAlive := func(mi int) bool { return alive == nil || alive[mi] }
	var surv []int
	owner := make(map[int]int, s.NumTargets())
	for gi, g := range prev {
		for _, t := range g.Targets {
			owner[t] = gi
		}
		for _, mi := range g.Mules {
			if isAlive(mi) {
				surv = append(surv, gi)
				break
			}
		}
	}
	if len(surv) == 0 {
		return nil, fmt.Errorf("core: no surviving group")
	}
	survPos := make(map[int]int, len(surv)) // prev group index → surv slot
	members := make([][]int, len(surv))     // local target ids per surviving group
	changed := make([]bool, len(surv))
	for si, gi := range surv {
		survPos[gi] = si
		for _, t := range prev[gi].Targets {
			if li, ok := toLocal[t]; ok {
				members[si] = append(members[si], li)
			}
		}
	}

	// Centroids of the surviving groups' own targets — the absorb
	// proximity reference, computed before any absorption so block
	// destinations are order-independent.
	pts := view.Points()
	centroids := make([]geom.Point, len(surv))
	for si := range surv {
		groupPts := make([]geom.Point, len(members[si]))
		for i, li := range members[si] {
			groupPts[i] = pts[li]
		}
		centroids[si] = geom.Centroid(groupPts)
	}
	nearest := func(p geom.Point) int {
		best, bestD := 0, p.Dist2(centroids[0])
		for si := 1; si < len(centroids); si++ {
			if d := p.Dist2(centroids[si]); d < bestD {
				best, bestD = si, d
			}
		}
		return best
	}

	// Dead groups' targets absorb as a block; spawned targets (active,
	// never owned) join individually.
	for gi, g := range prev {
		if _, ok := survPos[gi]; ok {
			continue
		}
		var block []int
		for _, t := range g.Targets {
			if li, ok := toLocal[t]; ok {
				block = append(block, li)
			}
		}
		if len(block) == 0 {
			continue
		}
		blockPts := make([]geom.Point, len(block))
		for i, li := range block {
			blockPts[i] = pts[li]
		}
		si := nearest(geom.Centroid(blockPts))
		members[si] = append(members[si], block...)
		changed[si] = true
	}
	for li, gi := range tids {
		if _, owned := owner[gi]; owned {
			continue
		}
		si := nearest(pts[li])
		members[si] = append(members[si], li)
		changed[si] = true
	}

	// Circuits: rebuild where the target set changed, remap otherwise.
	walks := make([]walk.Walk, len(surv))
	weights := make([]float64, len(surv))
	for si, gi := range surv {
		sort.Ints(members[si])
		if changed[si] {
			w, err := buildGroupCircuit(view, members[si], cfg.Heuristic, cfg.Improve)
			if err != nil {
				return nil, fmt.Errorf("core: replan group %d: %w", gi, err)
			}
			walks[si] = w
		} else {
			globalToView := make([]int, s.NumTargets())
			for li, t := range tids {
				globalToView[t] = li
			}
			walks[si] = remapWalk(prev[gi].Walk, globalToView)
		}
		weights[si] = walks[si].Length(pts)
		groupPts := make([]geom.Point, len(members[si]))
		for i, li := range members[si] {
			groupPts[i] = pts[li]
		}
		centroids[si] = geom.Centroid(groupPts)
	}

	counts := allocateMules(len(mids), weights)
	muleGroup := MatchMulesToGroups(view.MuleStarts, centroids, counts)
	specs := make([]groupSpec, len(surv))
	for si := range surv {
		specs[si] = groupSpec{walk: walks[si], targets: members[si]}
	}
	for mi, si := range muleGroup {
		specs[si].mules = append(specs[si].mules, mi)
	}

	plan, _, err := assembleGroups(view, specs, nil, effectiveDwell(cfg.Dwell))
	if err != nil {
		return nil, err
	}
	plan.Algorithm = "handoff-absorb"
	if err := plan.Validate(view); err != nil {
		return nil, fmt.Errorf("core: replan produced invalid plan: %w", err)
	}

	groups := make([]PatrolGroup, len(plan.Groups))
	for gi, g := range plan.Groups {
		groups[gi] = PatrolGroup{
			Walk:         remapWalk(g.Walk, tids),
			RechargeWalk: remapWalk(g.RechargeWalk, tids),
			Targets:      remapInts(g.Targets, tids),
			Mules:        remapInts(g.Mules, mids),
			StartPoints:  append([]geom.Point(nil), g.StartPoints...),
			Assignment:   append([]int(nil), g.Assignment...),
		}
	}
	return &Replan{View: view, Plan: plan, TargetIDs: tids, MuleIDs: mids, Groups: groups}, nil
}
