package core

import (
	"fmt"
	"reflect"
	"testing"

	"tctp/internal/field"
	"tctp/internal/geom"
	"tctp/internal/xrand"
)

// cplan builds a k-group C-BTCTP plan for replan tests.
func cplan(t *testing.T, s *field.Scenario, k int) *FleetPlan {
	t.Helper()
	p, err := (&CBTCTP{Config: PartitionConfig{Method: KMeansMethod, K: k}}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// checkPartition verifies the global-id group bookkeeping: every
// active target owned exactly once, every alive mule owned exactly
// once, nothing else owned at all.
func checkPartition(t *testing.T, groups []PatrolGroup, s *field.Scenario, active, alive []bool) {
	t.Helper()
	tOwned := make([]int, s.NumTargets())
	mOwned := make([]int, s.NumMules())
	for _, g := range groups {
		for _, tid := range g.Targets {
			tOwned[tid]++
		}
		for _, mi := range g.Mules {
			mOwned[mi]++
		}
	}
	for i := 0; i < s.NumTargets(); i++ {
		want := 1
		if active != nil && !active[i] {
			want = 0
		}
		if tOwned[i] != want {
			t.Fatalf("target %d owned %d times, want %d", i, tOwned[i], want)
		}
	}
	for i := 0; i < s.NumMules(); i++ {
		want := 1
		if alive != nil && !alive[i] {
			want = 0
		}
		if mOwned[i] != want {
			t.Fatalf("mule %d owned %d times, want %d", i, mOwned[i], want)
		}
	}
}

// TestActiveViewRenumber: inactive targets drop out, survivors are
// renumbered ascending, the sink follows, and the id tables round-trip.
func TestActiveViewRenumber(t *testing.T) {
	s := clusteredScenario(1, 12, 4)
	active := make([]bool, s.NumTargets())
	for i := range active {
		active[i] = true
	}
	active[3], active[7] = false, false
	alive := []bool{true, false, true, true}
	view, tids, mids, err := ActiveView(s, active, alive, nil)
	if err != nil {
		t.Fatal(err)
	}
	if view.NumTargets() != s.NumTargets()-2 || view.NumMules() != 3 {
		t.Fatalf("view %d targets %d mules", view.NumTargets(), view.NumMules())
	}
	if tids[view.SinkID] != s.SinkID {
		t.Fatalf("sink remapped to global %d, want %d", tids[view.SinkID], s.SinkID)
	}
	for li, gi := range tids {
		if !active[gi] {
			t.Fatalf("inactive target %d kept (view %d)", gi, li)
		}
		if view.Targets[li].Pos != s.Targets[gi].Pos {
			t.Fatalf("view target %d position mismatch", li)
		}
		if li > 0 && tids[li-1] >= gi {
			t.Fatal("target ids not ascending")
		}
	}
	if len(mids) != 3 || mids[0] != 0 || mids[1] != 2 || mids[2] != 3 {
		t.Fatalf("mule ids %v", mids)
	}
	// The sink must stay active.
	active[s.SinkID] = false
	if _, _, _, err := ActiveView(s, active, nil, nil); err == nil {
		t.Fatal("ActiveView accepted an inactive sink")
	}
}

// TestAbsorbReplanValidate: kill a whole group; the replanned plan
// validates against its reduced view and the global bookkeeping stays
// a partition of the survivors.
func TestAbsorbReplanValidate(t *testing.T) {
	s := clusteredScenario(2, 24, 6)
	plan := cplan(t, s, 3)
	alive := make([]bool, s.NumMules())
	for i := range alive {
		alive[i] = true
	}
	for _, mi := range plan.Groups[0].Mules {
		alive[mi] = false
	}
	positions := append([]geom.Point(nil), s.MuleStarts...)
	rep, err := AbsorbReplan(s, plan.Groups, nil, alive, positions, ReplanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Plan.Validate(rep.View); err != nil {
		t.Fatalf("replanned plan invalid: %v", err)
	}
	if len(rep.Groups) != 2 {
		t.Fatalf("%d surviving groups, want 2", len(rep.Groups))
	}
	checkPartition(t, rep.Groups, s, nil, alive)
	// The dead group's targets moved as one block into a single group.
	ownerOf := map[int]int{}
	for gi, g := range rep.Groups {
		for _, tid := range g.Targets {
			ownerOf[tid] = gi
		}
	}
	blockOwner := -1
	for _, tid := range plan.Groups[0].Targets {
		if blockOwner == -1 {
			blockOwner = ownerOf[tid]
		} else if ownerOf[tid] != blockOwner {
			t.Fatalf("dead group's targets split across groups %d and %d", blockOwner, ownerOf[tid])
		}
	}
}

// TestAbsorbReplanDeterministic: no randomness anywhere — identical
// inputs give identical plans, walk for walk.
func TestAbsorbReplanDeterministic(t *testing.T) {
	s := clusteredScenario(4, 20, 6)
	plan := cplan(t, s, 3)
	alive := make([]bool, s.NumMules())
	for i := range alive {
		alive[i] = true
	}
	alive[plan.Groups[1].Mules[0]] = false
	a, err := AbsorbReplan(s, plan.Groups, nil, alive, nil, ReplanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := AbsorbReplan(s, plan.Groups, nil, alive, nil, ReplanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for gi := range a.Groups {
		if !reflect.DeepEqual(a.Groups[gi].Walk.Seq, b.Groups[gi].Walk.Seq) {
			t.Fatalf("group %d walk differs between identical replans", gi)
		}
	}
}

// TestAbsorbReplanSpawn: an active target owned by no previous group
// (a spawn) joins exactly one surviving group, whose circuit is
// rebuilt to include it.
func TestAbsorbReplanSpawn(t *testing.T) {
	s := clusteredScenario(3, 18, 4)
	plan := cplan(t, s, 2)
	spawn := -1
	prev := make([]PatrolGroup, len(plan.Groups))
	for gi, g := range plan.Groups {
		prev[gi] = g
		if gi == 0 {
			// Pretend the last target of group 0 had been dormant at
			// plan time: the previous plan never owned it.
			kept := append([]int(nil), g.Targets...)
			for i, tid := range kept {
				if tid != s.SinkID {
					spawn = tid
					kept = append(kept[:i], kept[i+1:]...)
					break
				}
			}
			prev[gi].Targets = kept
		}
	}
	if spawn < 0 {
		t.Fatal("no spawn candidate")
	}
	rep, err := AbsorbReplan(s, prev, nil, nil, nil, ReplanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, rep.Groups, s, nil, nil)
	owner := -1
	for gi, g := range rep.Groups {
		for _, tid := range g.Targets {
			if tid == spawn {
				owner = gi
			}
		}
	}
	if owner < 0 {
		t.Fatalf("spawned target %d unowned after replan", spawn)
	}
	seen := false
	for _, g := range rep.Groups {
		for _, stop := range g.Walk.Seq {
			if stop == spawn {
				seen = true
			}
		}
	}
	if !seen {
		t.Fatalf("spawned target %d missing from every walk", spawn)
	}
}

// TestAbsorbReplanRefusals: no previous groups, no surviving mules,
// and no surviving groups are errors, not panics.
func TestAbsorbReplanRefusals(t *testing.T) {
	s := clusteredScenario(5, 10, 2)
	plan := cplan(t, s, 1)
	if _, err := AbsorbReplan(s, nil, nil, nil, nil, ReplanConfig{}); err == nil {
		t.Fatal("accepted empty previous groups")
	}
	dead := make([]bool, s.NumMules())
	if _, err := AbsorbReplan(s, plan.Groups, nil, dead, nil, ReplanConfig{}); err == nil {
		t.Fatal("accepted a fully dead fleet")
	}
}

// BenchmarkReplanAbsorb measures the mid-run replan cost: one group of
// a 4-group plan dies and its block is absorbed. The n=1000 sub-bench
// is the bench-gate anchor.
func BenchmarkReplanAbsorb(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := field.Generate(field.Config{
				NumTargets: n,
				NumMules:   8,
				Placement:  field.Clusters,
			}, xrand.New(7))
			plan, err := (&CBTCTP{Config: PartitionConfig{Method: KMeansMethod, K: 4}}).Plan(s)
			if err != nil {
				b.Fatal(err)
			}
			alive := make([]bool, s.NumMules())
			for i := range alive {
				alive[i] = true
			}
			for _, mi := range plan.Groups[0].Mules {
				alive[mi] = false
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := AbsorbReplan(s, plan.Groups, nil, alive, nil, ReplanConfig{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
