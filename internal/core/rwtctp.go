package core

import (
	"fmt"
	"math"

	"tctp/internal/energy"
	"tctp/internal/field"
	"tctp/internal/geom"
	"tctp/internal/mule"
	"tctp/internal/walk"
)

// RWTCTP is the recharge-aware planner (§IV). It builds the same WPP
// as W-TCTP plus a Weighted Recharge Path (WRP) — the WPP with the
// recharge station spliced into the minimum-detour edge (Exp. 3) —
// and schedules each mule to patrol the WPP r−1 times followed by the
// WRP once, where r is the Equ. 4 round budget, so batteries are
// refilled before they run out.
type RWTCTP struct {
	// WTCTP configures the underlying WPP construction (policy,
	// heuristic, traversal). RW-TCTP treats every configuration of
	// W-TCTP as its path-construction phase.
	WTCTP
	// Model is the energy model used for the Equ. 4 round budget.
	// The zero Model is replaced by energy.Default().
	Model energy.Model
}

// Name implements Planner.
func (r *RWTCTP) Name() string {
	return fmt.Sprintf("RW-TCTP(%s)", r.Policy)
}

// model returns the configured energy model, defaulting to the
// paper's constants.
func (r *RWTCTP) model() energy.Model {
	if r.Model == (energy.Model{}) {
		return energy.Default()
	}
	return r.Model
}

// Plan implements Planner. The returned plan's per-mule cycle
// alternates a WPP phase repeated r−1 times with a WRP phase executed
// once; mules therefore pass the recharge station exactly once every r
// rounds ("each DM should patrol along WRP P̄ every r rounds", §4.2).
func (r *RWTCTP) Plan(s *field.Scenario) (*FleetPlan, error) {
	if !s.HasRecharge {
		return nil, fmt.Errorf("core: RW-TCTP requires a recharge station in the scenario")
	}
	wpp, err := r.BuildWPP(s)
	if err != nil {
		return nil, err
	}
	pts := s.Points()

	plan, anchors, err := assembleFleet(s, wpp, r.Energies, r.model().Dwell)
	if err != nil {
		return nil, err
	}
	plan.Algorithm = r.Name()
	wpp = plan.Groups[0].Walk // assembleFleet rotated the walk to the northmost target

	breakPos, err := selectRechargeEdge(pts, wpp, s.Recharge)
	if err != nil {
		return nil, err
	}
	plan.Groups[0].RechargeWalk = buildWRPWalk(wpp, breakPos)

	rounds, err := r.roundBudget(pts, wpp, s.Recharge, breakPos)
	if err != nil {
		return nil, err
	}
	plan.Rounds = rounds

	// Rewrite each mule's single-phase cycle into the WPP/WRP
	// alternation. The recharge stop is inserted between the two break
	// points inside the mule's own rotated loop.
	for i := range plan.Routes {
		wppStops := plan.Routes[i].Cycle[0].Stops
		wrpStops := insertRechargeStop(wppStops, anchors[i], breakPos, len(wpp.Seq), s.Recharge)
		var cycle []Phase
		if rounds > 1 {
			cycle = append(cycle, Phase{Stops: wppStops, Repeat: rounds - 1})
		}
		cycle = append(cycle, Phase{Stops: wrpStops, Repeat: 1})
		plan.Routes[i].Cycle = cycle
	}
	return plan, nil
}

// selectRechargeEdge implements Exp. 3: among all WPP edges, pick the
// one minimizing the recharge detour |g_y R| + |g_{y+1} R| − |g_y
// g_{y+1}|. Returns the walk position y of the chosen edge.
func selectRechargeEdge(pts []geom.Point, w walk.Walk, station geom.Point) (int, error) {
	n := len(w.Seq)
	if n < 2 {
		return 0, fmt.Errorf("core: WPP too small (%d stops) to splice a recharge station", n)
	}
	best, bestCost := -1, math.Inf(1)
	for pos := 0; pos < n; pos++ {
		u, v := pts[w.Seq[pos]], pts[w.Seq[(pos+1)%n]]
		c := geom.DetourCost(u, v, station)
		if c < bestCost-geom.Eps {
			best, bestCost = pos, c
		}
	}
	return best, nil
}

// RechargeID is the pseudo-target index used for the recharge station
// inside a RechargeWalk (it is not a data target; metrics ignore it).
const RechargeID = -2

// buildWRPWalk returns the WRP as a walk whose sequence includes
// RechargeID spliced after position breakPos of the WPP.
func buildWRPWalk(wpp walk.Walk, breakPos int) walk.Walk {
	seq := make([]int, 0, len(wpp.Seq)+1)
	seq = append(seq, wpp.Seq[:breakPos+1]...)
	seq = append(seq, RechargeID)
	seq = append(seq, wpp.Seq[breakPos+1:]...)
	return walk.New(seq)
}

// insertRechargeStop splices the recharge waypoint into a mule's
// rotated WPP stop list. anchor is the walk position of the mule's
// first stop; the recharge stop goes between walk positions breakPos
// and breakPos+1, i.e. after rotated index (breakPos − anchor) mod n.
func insertRechargeStop(stops []mule.Waypoint, anchor, breakPos, n int, station geom.Point) []mule.Waypoint {
	j := ((breakPos-anchor)%n + n) % n
	out := make([]mule.Waypoint, 0, len(stops)+1)
	out = append(out, stops[:j+1]...)
	out = append(out, mule.Waypoint{Pos: station, TargetID: mule.NoTarget, Recharge: true})
	out = append(out, stops[j+1:]...)
	return out
}

// roundBudget computes Equ. 4's r and verifies that a full
// (r−1)·WPP + WRP super-round is actually affordable, shrinking r if
// the recharge detour tips the budget. The visit count per round is
// the walk size (Σ w_i collections — the paper's h·c_s term with VIP
// revisits accounted for). Returns an error when even a single WRP
// round exceeds the battery, i.e. the scenario is infeasible for this
// battery.
func (r *RWTCTP) roundBudget(pts []geom.Point, wpp walk.Walk, station geom.Point, breakPos int) (int, error) {
	m := r.model()
	wppLen := wpp.Length(pts)
	u, v := pts[wpp.Seq[breakPos]], pts[wpp.Seq[(breakPos+1)%len(wpp.Seq)]]
	wrpLen := wppLen + geom.DetourCost(u, v, station)

	visits := wpp.Size()
	wrpEnergy := m.RoundEnergy(wrpLen, visits)
	if wrpEnergy > m.Capacity {
		return 0, fmt.Errorf("core: battery %.0f J cannot complete one recharge round (%.0f J)",
			m.Capacity, wrpEnergy)
	}

	rounds := m.Rounds(wppLen, visits) // Equ. 4
	if rounds < 1 {
		rounds = 1
	}
	// The super-round (r−1 WPP traversals + 1 WRP traversal) must fit
	// in one battery charge; Equ. 4 ignores the detour, so trim.
	for rounds > 1 {
		total := float64(rounds-1)*m.RoundEnergy(wppLen, visits) + wrpEnergy
		if total <= m.Capacity {
			break
		}
		rounds--
	}
	return rounds, nil
}
