package core

import (
	"fmt"
	"math"
	"sort"

	"tctp/internal/field"
	"tctp/internal/geom"
	"tctp/internal/walk"
	"tctp/internal/xrand"
)

// BreakPolicy selects how W-TCTP chooses the break edge for each new
// VIP cycle (§3.1-A).
type BreakPolicy int

// The paper's two policies plus a random ablation.
const (
	// ShortestLength (Exp. 1) breaks the edge minimizing the added
	// detour |g_y g_k| + |g_{y+1} g_k| − |g_y g_{y+1}|, minimizing
	// the total WPP length.
	ShortestLength BreakPolicy = iota
	// BalancingLength (Exp. 2) breaks the edge that brings the cycle
	// lengths at the VIP closest to the uniform share L_avg = |P̄|/w_i,
	// balancing the VIP's visiting intervals.
	BalancingLength
	// RandomBreak picks a uniformly random valid edge — the A2
	// ablation's control arm, not part of the paper.
	RandomBreak
)

// String implements fmt.Stringer.
func (p BreakPolicy) String() string {
	switch p {
	case ShortestLength:
		return "shortest"
	case BalancingLength:
		return "balancing"
	case RandomBreak:
		return "random"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// WTCTP is the Weighted TCTP planner (§III). The zero value uses the
// paper's defaults: hull-insertion circuit, Shortest-Length policy,
// angle-rule traversal.
type WTCTP struct {
	// Heuristic selects the base circuit construction.
	Heuristic TourHeuristic
	// Improve applies 2-opt to the base circuit (ablation knob).
	Improve bool
	// Policy selects the break-edge rule.
	Policy BreakPolicy
	// DisableAngleRule keeps the insertion-order traversal instead of
	// re-deriving it with the §3.2 patrolling rule (A5 ablation).
	DisableAngleRule bool
	// Energies optionally carries per-mule remaining energy for the
	// location-initialization tie-break.
	Energies []float64
	// Dwell is the per-collection pause (seconds) used for the
	// phase-equalizing start holds. Zero selects the default; use
	// NoDwell for a literal zero.
	Dwell float64
	// Rand drives RandomBreak; nil defaults to a fixed seed.
	Rand *xrand.Source
}

// Name implements Planner.
func (wt *WTCTP) Name() string {
	return fmt.Sprintf("W-TCTP(%s)", wt.Policy)
}

// Plan implements Planner: it builds the WPP and hands it to the same
// start-point partition and location initialization as B-TCTP
// (§3.2: "each DM executes the location initialization task as
// proposed in B-TCTP").
func (wt *WTCTP) Plan(s *field.Scenario) (*FleetPlan, error) {
	wpp, err := wt.BuildWPP(s)
	if err != nil {
		return nil, err
	}
	plan, _, err := assembleFleet(s, wpp, wt.Energies, effectiveDwell(wt.Dwell))
	if err != nil {
		return nil, err
	}
	plan.Algorithm = wt.Name()
	return plan, nil
}

// BuildWPP constructs the Weighted Patrolling Path for the scenario:
// a closed walk in which every weight-w VIP occurs w times
// (Definition 3 holds by construction; see walk.CyclesAt for the cycle
// decomposition). VIPs are processed in descending weight order
// (priority p_i = w_i, §3.1-B), each contributing w_i − 1 break-edge
// insertions chosen by the configured policy.
func (wt *WTCTP) BuildWPP(s *field.Scenario) (walk.Walk, error) {
	base := &BTCTP{Heuristic: wt.Heuristic, Improve: wt.Improve}
	w, err := base.buildCircuit(s)
	if err != nil {
		return walk.Walk{}, err
	}
	pts := s.Points()

	// Descending weight, ascending id: deterministic priority order.
	vips := s.VIPs()
	sort.Slice(vips, func(a, b int) bool {
		wa, wb := s.Targets[vips[a]].Weight, s.Targets[vips[b]].Weight
		if wa != wb {
			return wa > wb
		}
		return vips[a] < vips[b]
	})

	rnd := wt.Rand
	if rnd == nil {
		rnd = xrand.New(0)
	}

	for _, vip := range vips {
		weight := s.Targets[vip].Weight
		for x := 1; x < weight; x++ {
			pos, err := wt.selectBreakEdge(pts, w, vip, rnd)
			if err != nil {
				return walk.Walk{}, err
			}
			w = w.InsertAfter(pos, vip)
		}
	}

	if !wt.DisableAngleRule {
		w = TraverseAngleRule(pts, w)
	}
	if err := w.Validate(s.NumTargets(), s.Weights()); err != nil {
		return walk.Walk{}, fmt.Errorf("core: WPP construction: %w", err)
	}
	return w, nil
}

// selectBreakEdge returns the walk position of the break edge for the
// next cycle through vip, per the planner's policy. Edges incident to
// the VIP are never candidates (breaking one would create a degenerate
// zero-length edge).
func (wt *WTCTP) selectBreakEdge(pts []geom.Point, w walk.Walk, vip int, rnd *xrand.Source) (int, error) {
	n := len(w.Seq)
	var candidates []int
	for pos := 0; pos < n; pos++ {
		u, v := w.Seq[pos], w.Seq[(pos+1)%n]
		if u == vip || v == vip {
			continue
		}
		candidates = append(candidates, pos)
	}
	if len(candidates) == 0 {
		return 0, fmt.Errorf("core: no valid break edge for VIP %d (walk size %d)", vip, n)
	}

	switch wt.Policy {
	case ShortestLength:
		best, bestCost := -1, math.Inf(1)
		for _, pos := range candidates {
			u, v := w.Seq[pos], w.Seq[(pos+1)%n]
			c := geom.DetourCost(pts[u], pts[v], pts[vip])
			if c < bestCost-geom.Eps {
				best, bestCost = pos, c
			}
		}
		return best, nil

	case BalancingLength:
		best, bestCost := -1, math.Inf(1)
		for _, pos := range candidates {
			cand := w.InsertAfter(pos, vip)
			lens := cand.CycleLengthsAt(pts, vip)
			avg := cand.Length(pts) / float64(len(lens))
			cost := 0.0
			for _, l := range lens {
				cost += math.Abs(l - avg)
			}
			if cost < bestCost-geom.Eps {
				best, bestCost = pos, cost
			}
		}
		return best, nil

	case RandomBreak:
		return candidates[rnd.Intn(len(candidates))], nil

	default:
		return 0, fmt.Errorf("core: unknown break policy %v", wt.Policy)
	}
}
