package energy

import "tctp/internal/geom"

// Audit is an energy-accounting observer for simulation runs: it logs
// battery deaths and recharge completions with their timestamps. It
// implements the patrol.Observer interface structurally (this package
// sits below patrol in the dependency order), so it composes with the
// metrics recorder, the wsn overlay, and tracers as a peer observer.
type Audit struct {
	deaths    int
	recharges int
	// firstDeath is the earliest death time, or -1 while nothing died.
	firstDeath float64
}

// NewAudit returns an empty audit.
func NewAudit() *Audit { return &Audit{firstDeath: -1} }

// OnVisit implements the observer interface; visits carry no energy
// events (consumption is accounted by the mules themselves).
func (a *Audit) OnVisit(int, int, float64) {}

// OnDeath logs a battery death.
func (a *Audit) OnDeath(_ int, t float64, _ geom.Point) {
	a.deaths++
	if a.firstDeath < 0 || t < a.firstDeath {
		a.firstDeath = t
	}
}

// OnRecharge logs a completed recharge stop.
func (a *Audit) OnRecharge(int, float64) { a.recharges++ }

// Deaths returns the number of battery deaths observed.
func (a *Audit) Deaths() int { return a.deaths }

// Recharges returns the number of recharge stops observed.
func (a *Audit) Recharges() int { return a.recharges }

// FirstDeath returns the earliest death time and true, or 0 and false
// when the whole fleet survived.
func (a *Audit) FirstDeath() (float64, bool) {
	if a.firstDeath < 0 {
		return 0, false
	}
	return a.firstDeath, true
}
