// Package energy models the data mules' batteries. The paper's §5.1
// simulation model charges 8.267 J per metre of movement and
// 0.075 J/s while collecting data from a target; §4.2 (Equ. 4) derives
// from these the number of full patrolling rounds a mule can afford
// before it must detour through the recharge station.
package energy

import (
	"fmt"
	"math"
)

// Paper defaults (§5.1).
const (
	// DefaultMoveCost is c_m, joules consumed per metre travelled.
	DefaultMoveCost = 8.267
	// DefaultCollectCost is c_s, joules consumed per second of data
	// collection.
	DefaultCollectCost = 0.075
	// DefaultDwell is the assumed data-collection time per visit in
	// seconds. The paper never states the dwell explicitly; 1 s keeps
	// the collection energy term (h·c_s of Equ. 4) at the same order
	// of magnitude relative to movement as in the paper.
	DefaultDwell = 1.0
	// DefaultCapacity is the default battery capacity M_Energy in
	// joules. 200 kJ buys a mule roughly 24 km of travel at c_m,
	// i.e. a handful of 800 m-field patrol rounds — enough for the
	// recharge schedule to matter, matching the paper's premise.
	DefaultCapacity = 200_000.0
)

// Model bundles the energy constants of a simulation.
type Model struct {
	// MoveCost is c_m in J/m.
	MoveCost float64
	// CollectCost is c_s in J/s.
	CollectCost float64
	// Dwell is the collection time per visit in seconds.
	Dwell float64
	// Capacity is the battery capacity M_Energy in joules.
	Capacity float64
}

// Default returns the paper's §5.1 parameters.
func Default() Model {
	return Model{
		MoveCost:    DefaultMoveCost,
		CollectCost: DefaultCollectCost,
		Dwell:       DefaultDwell,
		Capacity:    DefaultCapacity,
	}
}

// MoveEnergy returns the energy to travel dist metres.
func (m Model) MoveEnergy(dist float64) float64 { return m.MoveCost * dist }

// VisitEnergy returns the energy to collect one target's data
// (c_s × dwell).
func (m Model) VisitEnergy() float64 { return m.CollectCost * m.Dwell }

// RoundEnergy returns the energy to traverse a patrolling path of the
// given length visiting h targets once each — the denominator of
// Equ. 4: |P̄|·c_m + h·c_s.
func (m Model) RoundEnergy(pathLen float64, visits int) float64 {
	return m.MoveEnergy(pathLen) + float64(visits)*m.VisitEnergy()
}

// Rounds implements Equ. 4: the number of complete patrolling rounds
// r = ⌊M_Energy / (|P̄|·c_m + h·c_s)⌋ a fully charged mule can perform
// before exhausting its battery. The result is at least 1 whenever a
// single round is affordable, and 0 otherwise.
func (m Model) Rounds(pathLen float64, visits int) int {
	per := m.RoundEnergy(pathLen, visits)
	if per <= 0 {
		return math.MaxInt32 // free patrolling: unbounded rounds
	}
	return int(m.Capacity / per)
}

// Battery is a mutable charge store. The zero value is a dead battery
// with zero capacity; use NewBattery.
type Battery struct {
	capacity float64
	level    float64
	dead     bool
}

// NewBattery returns a fully charged battery with the given capacity
// in joules. It panics if capacity <= 0.
func NewBattery(capacity float64) *Battery {
	if capacity <= 0 {
		panic(fmt.Sprintf("energy: NewBattery with capacity %v", capacity))
	}
	return &Battery{capacity: capacity, level: capacity}
}

// Level returns the remaining charge in joules.
func (b *Battery) Level() float64 { return b.level }

// Capacity returns the battery capacity in joules.
func (b *Battery) Capacity() float64 { return b.capacity }

// Fraction returns the remaining charge as a fraction of capacity.
func (b *Battery) Fraction() float64 { return b.level / b.capacity }

// Dead reports whether the battery has been fully depleted. A dead
// battery stays dead until Recharge.
func (b *Battery) Dead() bool { return b.dead }

// Drain removes j joules. If the charge would go negative the battery
// is emptied, marked dead, and Drain returns false. Draining a dead
// battery returns false. A negative j panics.
func (b *Battery) Drain(j float64) bool {
	if j < 0 {
		panic(fmt.Sprintf("energy: Drain(%v) negative", j))
	}
	if b.dead {
		return false
	}
	if j > b.level {
		b.level = 0
		b.dead = true
		return false
	}
	b.level -= j
	return true
}

// CanAfford reports whether the battery holds at least j joules.
func (b *Battery) CanAfford(j float64) bool {
	return !b.dead && b.level >= j
}

// Recharge restores the battery to full capacity and clears the dead
// flag (RW-TCTP's recharge station visit).
func (b *Battery) Recharge() {
	b.level = b.capacity
	b.dead = false
}
