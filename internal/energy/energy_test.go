package energy

import (
	"math"
	"testing"
	"testing/quick"

	"tctp/internal/geom"
)

func TestDefaults(t *testing.T) {
	m := Default()
	if m.MoveCost != 8.267 {
		t.Fatalf("MoveCost = %v", m.MoveCost)
	}
	if m.CollectCost != 0.075 {
		t.Fatalf("CollectCost = %v", m.CollectCost)
	}
	if m.Capacity <= 0 || m.Dwell <= 0 {
		t.Fatal("non-positive defaults")
	}
}

func TestMoveEnergy(t *testing.T) {
	m := Default()
	if got := m.MoveEnergy(100); math.Abs(got-826.7) > 1e-9 {
		t.Fatalf("MoveEnergy(100) = %v", got)
	}
	if got := m.MoveEnergy(0); got != 0 {
		t.Fatalf("MoveEnergy(0) = %v", got)
	}
}

func TestVisitEnergy(t *testing.T) {
	m := Default()
	if got := m.VisitEnergy(); math.Abs(got-0.075) > 1e-12 {
		t.Fatalf("VisitEnergy = %v", got)
	}
	m.Dwell = 10
	if got := m.VisitEnergy(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("VisitEnergy dwell=10 = %v", got)
	}
}

func TestRoundEnergyEqu4Terms(t *testing.T) {
	m := Default()
	// |P|·c_m + h·c_s·dwell with |P|=3000 m, h=20.
	want := 3000*8.267 + 20*0.075
	if got := m.RoundEnergy(3000, 20); math.Abs(got-want) > 1e-9 {
		t.Fatalf("RoundEnergy = %v, want %v", got, want)
	}
}

func TestRounds(t *testing.T) {
	m := Model{MoveCost: 1, CollectCost: 0, Dwell: 1, Capacity: 100}
	if r := m.Rounds(30, 5); r != 3 {
		t.Fatalf("Rounds = %d, want 3", r)
	}
	if r := m.Rounds(101, 0); r != 0 {
		t.Fatalf("unaffordable Rounds = %d, want 0", r)
	}
	// Exactly divisible.
	if r := m.Rounds(25, 0); r != 4 {
		t.Fatalf("Rounds exact = %d, want 4", r)
	}
	// Degenerate free path.
	if r := m.Rounds(0, 0); r <= 1000 {
		t.Fatalf("free path Rounds = %d", r)
	}
}

func TestRoundsPaperParameters(t *testing.T) {
	// Sanity: with the paper's constants and a realistic ~3500 m
	// circuit of 20 targets, a 200 kJ battery affords a handful of
	// rounds — the regime where recharge scheduling matters.
	m := Default()
	r := m.Rounds(3500, 20)
	if r < 2 || r > 20 {
		t.Fatalf("Rounds(3500, 20) = %d, expected a small positive count", r)
	}
}

func TestBatteryLifecycle(t *testing.T) {
	b := NewBattery(100)
	if b.Level() != 100 || b.Capacity() != 100 || b.Fraction() != 1 {
		t.Fatal("fresh battery state wrong")
	}
	if !b.Drain(40) {
		t.Fatal("affordable drain failed")
	}
	if b.Level() != 60 {
		t.Fatalf("Level = %v", b.Level())
	}
	if !b.CanAfford(60) {
		t.Fatal("CanAfford(60) false with 60 J left")
	}
	if b.CanAfford(61) {
		t.Fatal("CanAfford(61) true with 60 J left")
	}
	if b.Drain(61) {
		t.Fatal("overdrain succeeded")
	}
	if !b.Dead() || b.Level() != 0 {
		t.Fatal("overdrained battery not dead/empty")
	}
	if b.Drain(0) {
		t.Fatal("dead battery accepted drain")
	}
	b.Recharge()
	if b.Dead() || b.Level() != 100 {
		t.Fatal("recharge did not restore battery")
	}
}

func TestBatteryExactDrain(t *testing.T) {
	b := NewBattery(50)
	if !b.Drain(50) {
		t.Fatal("exact drain failed")
	}
	if b.Dead() {
		t.Fatal("exact drain killed battery")
	}
	if b.Level() != 0 {
		t.Fatalf("Level = %v", b.Level())
	}
}

func TestBatteryPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewBattery(0) did not panic")
			}
		}()
		NewBattery(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative drain did not panic")
			}
		}()
		NewBattery(10).Drain(-1)
	}()
}

// Property: any sequence of affordable drains keeps level =
// capacity − sum(drains) and never kills the battery.
func TestBatteryConservation(t *testing.T) {
	f := func(raw []uint8) bool {
		b := NewBattery(1e6)
		spent := 0.0
		for _, r := range raw {
			j := float64(r)
			if !b.CanAfford(j) {
				break
			}
			if !b.Drain(j) {
				return false
			}
			spent += j
		}
		return math.Abs(b.Level()-(1e6-spent)) < 1e-6 && !b.Dead()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Rounds × RoundEnergy never exceeds capacity, and one more
// round would exceed it.
func TestRoundsProperty(t *testing.T) {
	f := func(lenRaw, capRaw uint16, hRaw uint8) bool {
		pathLen := float64(lenRaw%5000) + 1
		capacity := float64(capRaw)*100 + 1
		h := int(hRaw % 100)
		m := Model{MoveCost: 8.267, CollectCost: 0.075, Dwell: 1, Capacity: capacity}
		r := m.Rounds(pathLen, h)
		per := m.RoundEnergy(pathLen, h)
		if float64(r)*per > capacity+1e-9 {
			return false
		}
		return float64(r+1)*per > capacity-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAudit(t *testing.T) {
	a := NewAudit()
	if _, ok := a.FirstDeath(); ok {
		t.Fatal("fresh audit reports a death")
	}
	a.OnVisit(0, 3, 10) // visits are not energy events
	a.OnRecharge(0, 50)
	a.OnDeath(1, 200, geom.Pt(1, 2))
	a.OnDeath(0, 120, geom.Pt(3, 4))
	a.OnRecharge(1, 300)
	if a.Deaths() != 2 || a.Recharges() != 2 {
		t.Fatalf("deaths=%d recharges=%d", a.Deaths(), a.Recharges())
	}
	if first, ok := a.FirstDeath(); !ok || first != 120 {
		t.Fatalf("FirstDeath = %v, %v", first, ok)
	}
}
