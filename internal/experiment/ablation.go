package experiment

import (
	"fmt"

	"tctp/internal/baseline"
	"tctp/internal/core"
	"tctp/internal/energy"
	"tctp/internal/patrol"
	"tctp/internal/sweep"
	"tctp/internal/xrand"
)

// AblationConfig shares the workload knobs of the design-choice
// ablations (A1–A5 in DESIGN.md).
type AblationConfig struct {
	Targets int     // default 20
	Mules   int     // default 4
	Horizon float64 // default 60 000 s
}

func (c AblationConfig) withDefaults() AblationConfig {
	if c.Targets == 0 {
		c.Targets = 20
	}
	if c.Mules == 0 {
		c.Mules = 4
	}
	if c.Horizon == 0 {
		c.Horizon = 60_000
	}
	return c
}

// spec shares the workload axes of every ablation: one target count,
// one fleet size, the algorithm axis carries the ablated variants.
func (c AblationConfig) spec(p Params, name string, horizon float64) sweep.Spec {
	spec := p.spec(name)
	spec.Targets = []int{c.Targets}
	spec.Mules = []int{c.Mules}
	spec.Horizons = []float64{horizon}
	return spec
}

// runCells executes the spec and hands each finished cell to row.
func runCells(p Params, spec sweep.Spec, name string, row func(c *sweep.CellResult) error) error {
	res, err := p.run(spec)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	for _, c := range res.Cells {
		if err := row(c); err != nil {
			return err
		}
	}
	return nil
}

// TourHeuristics runs ablation A1: how the circuit construction
// (hull-insertion vs nearest-neighbour vs greedy-edge, with and
// without 2-opt) affects circuit length and the steady-state DCDT.
func TourHeuristics(p Params, cfg AblationConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	spec := cfg.spec(p, "a1-tour", cfg.Horizon)
	type def struct {
		h       core.TourHeuristic
		improve bool
	}
	var defs []def
	for _, h := range []core.TourHeuristic{core.HullInsertion, core.NearestNeighborTour, core.GreedyEdgeTour} {
		for _, improve := range []bool{false, true} {
			h, improve := h, improve
			defs = append(defs, def{h, improve})
			spec.Algorithms = append(spec.Algorithms, sweep.Variant{
				Name: fmt.Sprintf("%v/2opt=%v", h, improve),
				Make: func(*xrand.Source) patrol.Algorithm {
					return patrol.Planned(&core.BTCTP{Heuristic: h, Improve: improve})
				},
			})
		}
	}
	spec.Metrics = []sweep.Metric{sweep.CircuitLength(), sweep.AvgDCDT()}

	table := NewTable("A1 — circuit construction heuristics",
		"heuristic", "2-opt", "circuit length (m)", "avg DCDT (s)")
	err := runCells(p, spec, "A1", func(c *sweep.CellResult) error {
		d := defs[c.Index]
		table.AddF(d.h.String(), fmt.Sprint(d.improve),
			c.Metric("circuit_m").Mean, c.Metric("avg_dcdt_s").Mean)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return table, nil
}

// BreakPolicies runs ablation A2: the three break-edge policies
// (shortest / balancing / random) compared on WPP length, DCDT and SD.
func BreakPolicies(p Params, cfg AblationConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	spec := cfg.spec(p, "a2-break", cfg.Horizon*2)
	spec.VIPs = []int{3}
	spec.VIPWeights = []int{4}
	for _, policy := range []core.BreakPolicy{core.ShortestLength, core.BalancingLength, core.RandomBreak} {
		policy := policy
		spec.Algorithms = append(spec.Algorithms, sweep.Variant{
			Name: policy.String(),
			Make: func(src *xrand.Source) patrol.Algorithm {
				return patrol.Planned(&core.WTCTP{Policy: policy, Rand: src})
			},
		})
	}
	spec.Metrics = []sweep.Metric{sweep.CircuitLength(), sweep.AvgDCDT(), sweep.AvgSD()}

	table := NewTable("A2 — break-edge policies (3 VIPs, weight 4)",
		"policy", "WPP length (m)", "avg DCDT (s)", "avg SD (s)")
	err := runCells(p, spec, "A2", func(c *sweep.CellResult) error {
		table.AddF(c.Point.Algorithm, c.Metric("circuit_m").Mean,
			c.Metric("avg_dcdt_s").Mean, c.Metric("avg_sd_s").Mean)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return table, nil
}

// LocationInit runs ablation A3: B-TCTP with its location
// initialization and synchronized start, B-TCTP with initialization
// but unsynchronized start, and CHB (same circuit, no initialization
// at all) — isolating the value of each part of the equal-spacing
// mechanism.
func LocationInit(p Params, cfg AblationConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	spec := cfg.spec(p, "a3-init", cfg.Horizon)
	spec.Algorithms = []sweep.Variant{
		sweep.Algo("B-TCTP (init + sync)", patrol.Planned(&core.BTCTP{})),
		{
			Name:    "B-TCTP (init, no sync)",
			Make:    func(*xrand.Source) patrol.Algorithm { return patrol.Planned(&core.BTCTP{}) },
			Options: func(o *patrol.Options) { o.NoSynchronizedStart = true },
		},
		sweep.Algo("CHB (init off)", patrol.Planned(&baseline.CHB{})),
	}
	spec.Metrics = []sweep.Metric{sweep.AvgSD(), sweep.MaxInterval()}

	table := NewTable("A3 — location initialization on/off",
		"variant", "avg SD (s)", "max interval (s)")
	err := runCells(p, spec, "A3", func(c *sweep.CellResult) error {
		table.AddF(c.Point.Algorithm,
			c.Metric("avg_sd_s").Mean, c.Metric("max_interval_s").Mean)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return table, nil
}

// DwellSensitivity runs ablation A4: how the collection dwell affects
// the Equ. 4 round budget and whether the phase-equalizing holds keep
// the steady-state SD at zero. The dwell rides on the variant's Tag so
// the metric functions can rebuild the energy model and shift the
// steady-state cutoff per variant.
func DwellSensitivity(p Params, cfg AblationConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	spec := cfg.spec(p, "a4-dwell", cfg.Horizon)
	dwells := []float64{0, 1, 5, 10}
	for _, dwell := range dwells {
		dwell := dwell
		model := energy.Default()
		model.Dwell = dwell
		plannerDwell := dwell
		if plannerDwell == 0 {
			plannerDwell = core.NoDwell
		}
		spec.Algorithms = append(spec.Algorithms, sweep.Variant{
			Name: fmt.Sprintf("dwell=%v", dwell),
			Tag:  dwell,
			Make: func(*xrand.Source) patrol.Algorithm {
				return patrol.Planned(&core.BTCTP{Dwell: plannerDwell})
			},
			Options: func(o *patrol.Options) { o.Energy = model },
		})
	}
	spec.Metrics = []sweep.Metric{
		{Name: "rounds", Fn: func(e sweep.Env) float64 {
			model := energy.Default()
			model.Dwell = e.Variant.Tag
			// Group-model accessors: for the single-group B-TCTP plan
			// these are the master circuit's length and size, and they
			// stay meaningful for partitioned plans.
			length := e.Result.Plan.TotalWalkLength(e.Scenario.Points())
			return float64(model.Rounds(length, e.Result.Plan.TotalWalkSize()))
		}},
		{Name: "steady_sd", Fn: func(e sweep.Env) float64 {
			return e.Result.Recorder.AvgSDAfter(e.Result.PatrolStart + e.Variant.Tag + 1)
		}},
	}

	table := NewTable("A4 — dwell-time sensitivity",
		"dwell (s)", "Equ.4 rounds", "steady avg SD (s)")
	err := runCells(p, spec, "A4", func(c *sweep.CellResult) error {
		table.AddF(dwells[c.Index],
			c.Metric("rounds").Mean, c.Metric("steady_sd").Mean)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return table, nil
}

// Traversal runs ablation A5: the angle-rule traversal of the WPP
// versus the raw insertion order — same edge multiset, potentially
// different visiting order.
func Traversal(p Params, cfg AblationConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	spec := cfg.spec(p, "a5-traversal", cfg.Horizon*2)
	spec.VIPs = []int{2}
	spec.VIPWeights = []int{3}
	spec.Algorithms = []sweep.Variant{
		sweep.Algo("angle rule (paper §3.2)",
			patrol.Planned(&core.WTCTP{Policy: core.BalancingLength})),
		sweep.Algo("insertion order",
			patrol.Planned(&core.WTCTP{Policy: core.BalancingLength, DisableAngleRule: true})),
	}
	spec.Metrics = []sweep.Metric{sweep.AvgDCDT(), sweep.AvgSD()}

	table := NewTable("A5 — WPP traversal order",
		"traversal", "avg DCDT (s)", "avg SD (s)")
	err := runCells(p, spec, "A5", func(c *sweep.CellResult) error {
		table.AddF(c.Point.Algorithm,
			c.Metric("avg_dcdt_s").Mean, c.Metric("avg_sd_s").Mean)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return table, nil
}
