package experiment

import (
	"fmt"

	"tctp/internal/baseline"
	"tctp/internal/core"
	"tctp/internal/energy"
	"tctp/internal/field"
	"tctp/internal/patrol"
	"tctp/internal/stats"
	"tctp/internal/xrand"
)

// AblationConfig shares the workload knobs of the design-choice
// ablations (A1–A5 in DESIGN.md).
type AblationConfig struct {
	Targets int     // default 20
	Mules   int     // default 4
	Horizon float64 // default 60 000 s
}

func (c AblationConfig) withDefaults() AblationConfig {
	if c.Targets == 0 {
		c.Targets = 20
	}
	if c.Mules == 0 {
		c.Mules = 4
	}
	if c.Horizon == 0 {
		c.Horizon = 60_000
	}
	return c
}

func (c AblationConfig) gen(src *xrand.Source) *field.Scenario {
	return field.Generate(field.Config{
		NumTargets: c.Targets,
		NumMules:   c.Mules,
		Placement:  field.Uniform,
	}, src)
}

// TourHeuristics runs ablation A1: how the circuit construction
// (hull-insertion vs nearest-neighbour vs greedy-edge, with and
// without 2-opt) affects circuit length and the steady-state DCDT.
func TourHeuristics(p Params, cfg AblationConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	table := NewTable("A1 — circuit construction heuristics",
		"heuristic", "2-opt", "circuit length (m)", "avg DCDT (s)")
	opts := patrol.Options{Horizon: cfg.Horizon}
	for _, h := range []core.TourHeuristic{core.HullInsertion, core.NearestNeighborTour, core.GreedyEdgeTour} {
		for _, improve := range []bool{false, true} {
			h, improve := h, improve
			type sample struct{ length, dcdt float64 }
			runs, err := replicate(p, func(seed uint64) (sample, error) {
				alg := patrol.Planned(&core.BTCTP{Heuristic: h, Improve: improve})
				res, err := runOn(seed, cfg.gen, alg, opts)
				if err != nil {
					return sample{}, err
				}
				// Regenerate the replication's scenario (deterministic
				// in the seed) to measure the plan's circuit length.
				pts := cfg.gen(scenarioSeed(seed)).Points()
				return sample{
					length: res.Plan.Walk.Length(pts),
					dcdt:   res.Recorder.AvgDCDTAfter(res.PatrolStart + 1),
				}, nil
			})
			if err != nil {
				return nil, fmt.Errorf("A1 %v improve=%v: %w", h, improve, err)
			}
			var l, d stats.Accumulator
			for _, r := range runs {
				l.Add(r.length)
				d.Add(r.dcdt)
			}
			table.AddF(h.String(), fmt.Sprint(improve), l.Mean(), d.Mean())
		}
	}
	return table, nil
}

// BreakPolicies runs ablation A2: the three break-edge policies
// (shortest / balancing / random) compared on WPP length, DCDT and SD.
func BreakPolicies(p Params, cfg AblationConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	gen := func(src *xrand.Source) *field.Scenario {
		s := cfg.gen(src)
		s.AssignVIPs(src, 3, 4)
		return s
	}
	table := NewTable("A2 — break-edge policies (3 VIPs, weight 4)",
		"policy", "WPP length (m)", "avg DCDT (s)", "avg SD (s)")
	opts := patrol.Options{Horizon: cfg.Horizon * 2}
	for _, policy := range []core.BreakPolicy{core.ShortestLength, core.BalancingLength, core.RandomBreak} {
		policy := policy
		type sample struct{ length, dcdt, sd float64 }
		runs, err := replicate(p, func(seed uint64) (sample, error) {
			alg := patrol.Planned(&core.WTCTP{Policy: policy, Rand: algorithmSeed(seed)})
			res, err := runOn(seed, gen, alg, opts)
			if err != nil {
				return sample{}, err
			}
			warm := res.PatrolStart + 1
			return sample{
				length: res.Plan.Walk.Length(gen(scenarioSeed(seed)).Points()),
				dcdt:   res.Recorder.AvgDCDTAfter(warm),
				sd:     res.Recorder.AvgSDAfter(warm),
			}, nil
		})
		if err != nil {
			return nil, fmt.Errorf("A2 %v: %w", policy, err)
		}
		var l, d, sd stats.Accumulator
		for _, r := range runs {
			l.Add(r.length)
			d.Add(r.dcdt)
			sd.Add(r.sd)
		}
		table.AddF(policy.String(), l.Mean(), d.Mean(), sd.Mean())
	}
	return table, nil
}

// LocationInit runs ablation A3: B-TCTP with its location
// initialization and synchronized start, B-TCTP with initialization
// but unsynchronized start, and CHB (same circuit, no initialization
// at all) — isolating the value of each part of the equal-spacing
// mechanism.
func LocationInit(p Params, cfg AblationConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	table := NewTable("A3 — location initialization on/off",
		"variant", "avg SD (s)", "max interval (s)")
	for _, v := range []struct {
		name string
		alg  patrol.Algorithm
		opts patrol.Options
	}{
		{"B-TCTP (init + sync)", patrol.Planned(&core.BTCTP{}),
			patrol.Options{Horizon: cfg.Horizon}},
		{"B-TCTP (init, no sync)", patrol.Planned(&core.BTCTP{}),
			patrol.Options{Horizon: cfg.Horizon, NoSynchronizedStart: true}},
		{"CHB (init off)", patrol.Planned(&baseline.CHB{}),
			patrol.Options{Horizon: cfg.Horizon}},
	} {
		v := v
		type sample struct{ sd, maxIv float64 }
		runs, err := replicate(p, func(seed uint64) (sample, error) {
			res, err := runOn(seed, cfg.gen, v.alg, v.opts)
			if err != nil {
				return sample{}, err
			}
			warm := res.PatrolStart + 1
			return sample{sd: res.Recorder.AvgSDAfter(warm), maxIv: res.Recorder.MaxInterval()}, nil
		})
		if err != nil {
			return nil, fmt.Errorf("A3 %s: %w", v.name, err)
		}
		var sd, mx stats.Accumulator
		for _, r := range runs {
			sd.Add(r.sd)
			mx.Add(r.maxIv)
		}
		table.AddF(v.name, sd.Mean(), mx.Mean())
	}
	return table, nil
}

// DwellSensitivity runs ablation A4: how the collection dwell affects
// the Equ. 4 round budget and whether the phase-equalizing holds keep
// the steady-state SD at zero.
func DwellSensitivity(p Params, cfg AblationConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	table := NewTable("A4 — dwell-time sensitivity",
		"dwell (s)", "Equ.4 rounds", "steady avg SD (s)")
	for _, dwell := range []float64{0, 1, 5, 10} {
		dwell := dwell
		model := energy.Default()
		model.Dwell = dwell
		opts := patrol.Options{Horizon: cfg.Horizon, Energy: model}
		plannerDwell := dwell
		if plannerDwell == 0 {
			plannerDwell = core.NoDwell
		}
		type sample struct {
			rounds float64
			sd     float64
		}
		runs, err := replicate(p, func(seed uint64) (sample, error) {
			alg := patrol.Planned(&core.BTCTP{Dwell: plannerDwell})
			res, err := runOn(seed, cfg.gen, alg, opts)
			if err != nil {
				return sample{}, err
			}
			s := cfg.gen(scenarioSeed(seed))
			length := res.Plan.Walk.Length(s.Points())
			return sample{
				rounds: float64(model.Rounds(length, res.Plan.Walk.Size())),
				sd:     res.Recorder.AvgSDAfter(res.PatrolStart + dwell + 1),
			}, nil
		})
		if err != nil {
			return nil, fmt.Errorf("A4 dwell=%v: %w", dwell, err)
		}
		var rounds, sd stats.Accumulator
		for _, r := range runs {
			rounds.Add(r.rounds)
			sd.Add(r.sd)
		}
		table.AddF(dwell, rounds.Mean(), sd.Mean())
	}
	return table, nil
}

// Traversal runs ablation A5: the angle-rule traversal of the WPP
// versus the raw insertion order — same edge multiset, potentially
// different visiting order.
func Traversal(p Params, cfg AblationConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	gen := func(src *xrand.Source) *field.Scenario {
		s := cfg.gen(src)
		s.AssignVIPs(src, 2, 3)
		return s
	}
	table := NewTable("A5 — WPP traversal order",
		"traversal", "avg DCDT (s)", "avg SD (s)")
	opts := patrol.Options{Horizon: cfg.Horizon * 2}
	for _, v := range []struct {
		name    string
		disable bool
	}{
		{"angle rule (paper §3.2)", false},
		{"insertion order", true},
	} {
		v := v
		type sample struct{ dcdt, sd float64 }
		runs, err := replicate(p, func(seed uint64) (sample, error) {
			alg := patrol.Planned(&core.WTCTP{Policy: core.BalancingLength, DisableAngleRule: v.disable})
			res, err := runOn(seed, gen, alg, opts)
			if err != nil {
				return sample{}, err
			}
			warm := res.PatrolStart + 1
			return sample{dcdt: res.Recorder.AvgDCDTAfter(warm), sd: res.Recorder.AvgSDAfter(warm)}, nil
		})
		if err != nil {
			return nil, fmt.Errorf("A5 %s: %w", v.name, err)
		}
		var d, sd stats.Accumulator
		for _, r := range runs {
			d.Add(r.dcdt)
			sd.Add(r.sd)
		}
		table.AddF(v.name, d.Mean(), sd.Mean())
	}
	return table, nil
}
