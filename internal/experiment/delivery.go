package experiment

import (
	"fmt"

	"tctp/internal/baseline"
	"tctp/internal/core"
	"tctp/internal/field"
	"tctp/internal/patrol"
	"tctp/internal/stats"
	"tctp/internal/wsn"
	"tctp/internal/xrand"
)

// DeliveryConfig parameterizes E6 — the data-delivery study derived
// from the paper's §I premise that mules must "collect the data back
// to the sink node within a given time constraint". The paper never
// evaluates this end-to-end metric; E6 closes that gap on the same
// workloads as Fig. 7.
type DeliveryConfig struct {
	Targets     int     // default 20
	Mules       int     // default 4
	GenInterval float64 // seconds per packet per node (default 60)
	BufferCap   int     // node buffer capacity (default 50)
	Deadline    float64 // delivery constraint in seconds (default 3600)
	Horizon     float64 // default 200 000 s
}

func (c DeliveryConfig) withDefaults() DeliveryConfig {
	if c.Targets == 0 {
		c.Targets = 20
	}
	if c.Mules == 0 {
		c.Mules = 4
	}
	if c.GenInterval == 0 {
		c.GenInterval = 60
	}
	if c.BufferCap == 0 {
		c.BufferCap = 50
	}
	if c.Deadline == 0 {
		c.Deadline = 3600
	}
	if c.Horizon == 0 {
		c.Horizon = 200_000
	}
	return c
}

// DeliveryResult is the E6 comparison table.
type DeliveryResult struct {
	Table *Table
}

// String renders the table.
func (r *DeliveryResult) String() string { return r.Table.String() }

// Delivery runs E6: end-to-end data delivery under each patrolling
// mechanism. Expected shape: TCTP delivers the highest on-time
// fraction with the lowest worst-case latency (bounded by its constant
// visiting interval plus the ride to the sink); Random overflows
// buffers and misses deadlines.
func Delivery(p Params, cfg DeliveryConfig) (*DeliveryResult, error) {
	cfg = cfg.withDefaults()
	gen := func(src *xrand.Source) *field.Scenario {
		return field.Generate(field.Config{
			NumTargets: cfg.Targets,
			NumMules:   cfg.Mules,
			Placement:  field.Uniform,
		}, src)
	}

	algs := []struct {
		name string
		alg  patrol.Algorithm
	}{
		{"Random", patrol.Online(&baseline.Random{})},
		{"Sweep", patrol.Planned(&baseline.Sweep{})},
		{"CHB", patrol.Planned(&baseline.CHB{})},
		{"TCTP", patrol.Planned(&core.BTCTP{})},
	}

	type row struct {
		delivered, onTime, overflow, meanLat, maxLat float64
	}
	table := NewTable(
		fmt.Sprintf("E6 — data delivery (deadline %.0f s, buffer %d)", cfg.Deadline, cfg.BufferCap),
		"algorithm", "delivered", "on-time %", "overflowed", "mean latency (s)", "max latency (s)")
	for _, a := range algs {
		a := a
		runs, err := replicate(p, func(seed uint64) (row, error) {
			scn := gen(scenarioSeed(seed))
			nw := wsn.New(scn, wsn.Config{
				GenInterval: cfg.GenInterval,
				BufferCap:   cfg.BufferCap,
				Deadline:    cfg.Deadline,
			})
			opts := patrol.Options{
				Horizon: cfg.Horizon,
				Hooks: patrol.Hooks{
					OnVisit: nw.OnVisit,
					OnDeath: nw.OnDeath,
				},
			}
			if _, err := patrol.Run(scn, a.alg, opts, algorithmSeed(seed)); err != nil {
				return row{}, err
			}
			return row{
				delivered: float64(nw.Delivered()),
				onTime:    100 * nw.OnTimeFraction(),
				overflow:  float64(nw.Overflowed()),
				meanLat:   nw.MeanLatency(),
				maxLat:    nw.MaxLatency(),
			}, nil
		})
		if err != nil {
			return nil, fmt.Errorf("delivery %s: %w", a.name, err)
		}
		var d, ot, ov, ml, mx stats.Accumulator
		for _, r := range runs {
			d.Add(r.delivered)
			ot.Add(r.onTime)
			ov.Add(r.overflow)
			ml.Add(r.meanLat)
			mx.Add(r.maxLat)
		}
		table.AddF(a.name, d.Mean(), ot.Mean(), ov.Mean(), ml.Mean(), mx.Mean())
	}
	return &DeliveryResult{Table: table}, nil
}
