package experiment

import (
	"fmt"

	"tctp/internal/baseline"
	"tctp/internal/core"
	"tctp/internal/patrol"
	"tctp/internal/scenario"
	"tctp/internal/sweep"
	"tctp/internal/wsn"
)

// DeliveryConfig parameterizes E6 — the data-delivery study derived
// from the paper's §I premise that mules must "collect the data back
// to the sink node within a given time constraint". The paper never
// evaluates this end-to-end metric; E6 closes that gap on the same
// workloads as Fig. 7.
type DeliveryConfig struct {
	Targets     int     // default 20
	Mules       int     // default 4
	GenInterval float64 // seconds per packet per node (default 60)
	BufferCap   int     // node buffer capacity (default 50)
	Deadline    float64 // delivery constraint in seconds (default 3600)
	Horizon     float64 // default 200 000 s
}

func (c DeliveryConfig) withDefaults() DeliveryConfig {
	if c.Targets == 0 {
		c.Targets = 20
	}
	if c.Mules == 0 {
		c.Mules = 4
	}
	if c.GenInterval == 0 {
		c.GenInterval = 60
	}
	if c.BufferCap == 0 {
		c.BufferCap = 50
	}
	if c.Deadline == 0 {
		c.Deadline = 3600
	}
	if c.Horizon == 0 {
		c.Horizon = 200_000
	}
	return c
}

// DeliveryResult is the E6 comparison table.
type DeliveryResult struct {
	Table *Table
}

// String renders the table.
func (r *DeliveryResult) String() string { return r.Table.String() }

// Delivery runs E6: end-to-end data delivery under each patrolling
// mechanism. The packet workload is a first-class sweep axis, so the
// four algorithms × one workload run as cells of one ordinary sweep —
// no bespoke replication loop. Expected shape: TCTP delivers the
// highest on-time fraction with the lowest worst-case latency (bounded
// by its constant visiting interval plus the ride to the sink); Random
// overflows buffers and misses deadlines.
func Delivery(p Params, cfg DeliveryConfig) (*DeliveryResult, error) {
	cfg = cfg.withDefaults()
	spec := p.spec("delivery")
	spec.Algorithms = []sweep.Variant{
		sweep.Algo("Random", patrol.Online(&baseline.Random{})),
		sweep.Algo("Sweep", patrol.Planned(&baseline.Sweep{})),
		sweep.Algo("CHB", patrol.Planned(&baseline.CHB{})),
		sweep.Algo("TCTP", patrol.Planned(&core.BTCTP{})),
	}
	spec.Targets = []int{cfg.Targets}
	spec.Mules = []int{cfg.Mules}
	spec.Horizons = []float64{cfg.Horizon}
	spec.Workloads = []scenario.Workload{{Name: "packets", Data: wsn.Config{
		GenInterval: cfg.GenInterval,
		BufferCap:   cfg.BufferCap,
		Deadline:    cfg.Deadline,
	}}}
	spec.Metrics = []sweep.Metric{
		sweep.Delivered(), sweep.OnTimePct(), sweep.Overflowed(),
		sweep.MeanLatency(), sweep.MaxLatency(),
	}

	res, err := p.run(spec)
	if err != nil {
		return nil, fmt.Errorf("delivery: %w", err)
	}
	table := NewTable(
		fmt.Sprintf("E6 — data delivery (deadline %.0f s, buffer %d)", cfg.Deadline, cfg.BufferCap),
		"algorithm", "delivered", "on-time %", "overflowed", "mean latency (s)", "max latency (s)")
	for _, c := range res.Cells {
		table.AddF(c.Point.Algorithm,
			c.Metric("delivered").Mean,
			c.Metric("on_time_pct").Mean,
			c.Metric("overflowed").Mean,
			c.Metric("mean_latency_s").Mean,
			c.Metric("max_latency_s").Mean)
	}
	return &DeliveryResult{Table: table}, nil
}
