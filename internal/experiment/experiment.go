// Package experiment regenerates the paper's evaluation (§V): one
// runner per figure plus the energy study the text describes, and the
// ablations listed in DESIGN.md. Every experiment follows the paper's
// protocol — "each simulation result is obtained from the average
// results of 20 simulations" — by declaring a sweep.Spec and running
// it through the internal/sweep engine, which parallelizes cells ×
// replications across CPU cores; results are bit-identical regardless
// of worker count because each replication derives its randomness from
// its own seed and aggregation folds in seed order.
package experiment

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"tctp/internal/sweep"
)

// Params are the protocol-level knobs shared by all experiments.
type Params struct {
	// Seeds is the number of replications (default 20, per §5.1).
	Seeds int
	// BaseSeed offsets the replication seeds so whole experiments can
	// be re-randomized reproducibly.
	BaseSeed uint64
	// Workers caps the parallel simulations (default GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives the engine's progress snapshots
	// (cmd/tctp-experiments wires it to -progress).
	Progress func(sweep.Progress)
	// Checkpoint, when non-empty, is a directory where every sweep an
	// experiment runs persists its fold state (one <spec-name>.ckpt
	// file each). A rerun of an interrupted experiment resumes at the
	// last completed replication instead of starting over
	// (cmd/tctp-experiments wires it to -checkpoint).
	Checkpoint string
}

// spec seeds a sweep.Spec with the protocol knobs; runners fill in the
// axes and metrics.
func (p Params) spec(name string) sweep.Spec {
	return sweep.Spec{
		Name:     name,
		Seeds:    p.Seeds,
		BaseSeed: p.BaseSeed,
		Workers:  p.Workers,
		Progress: p.Progress,
	}
}

func (p Params) withDefaults() Params {
	if p.Seeds == 0 {
		p.Seeds = 20
	}
	if p.Workers == 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	return p
}

// run executes the spec through the sweep engine, applying the
// Params' checkpoint policy: without a checkpoint directory it is a
// plain sweep.Run; with one, the sweep checkpoints to
// <dir>/<spec-name>.ckpt and resumes from an existing file — so
// rerunning a killed experiment command picks up where it stopped.
func (p Params) run(spec sweep.Spec, sinks ...sweep.Sink) (*sweep.Result, error) {
	ctx := context.Background()
	if p.Checkpoint == "" {
		return sweep.Run(ctx, spec, sinks...)
	}
	if spec.Name == "" {
		return nil, fmt.Errorf("experiment: checkpointed sweep needs a spec name")
	}
	path := filepath.Join(p.Checkpoint, spec.Name+".ckpt")
	if _, err := os.Stat(path); err == nil {
		return sweep.Resume(ctx, spec, path, sinks...)
	}
	return sweep.RunCheckpointed(ctx, spec, path, sinks...)
}

// Quick returns a protocol suitable for smoke tests and benchmarks:
// fewer replications, same machinery.
func Quick() Params { return Params{Seeds: 3} }
