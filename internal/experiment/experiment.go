// Package experiment regenerates the paper's evaluation (§V): one
// runner per figure plus the energy study the text describes, and the
// ablations listed in DESIGN.md. Every experiment follows the paper's
// protocol — "each simulation result is obtained from the average
// results of 20 simulations" — by declaring a sweep.Spec and running
// it through the internal/sweep engine, which parallelizes cells ×
// replications across CPU cores; results are bit-identical regardless
// of worker count because each replication derives its randomness from
// its own seed and aggregation folds in seed order.
package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"tctp/internal/field"
	"tctp/internal/patrol"
	"tctp/internal/sweep"
	"tctp/internal/xrand"
)

// Params are the protocol-level knobs shared by all experiments.
type Params struct {
	// Seeds is the number of replications (default 20, per §5.1).
	Seeds int
	// BaseSeed offsets the replication seeds so whole experiments can
	// be re-randomized reproducibly.
	BaseSeed uint64
	// Workers caps the parallel simulations (default GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives the engine's progress snapshots
	// (cmd/tctp-experiments wires it to -progress).
	Progress func(sweep.Progress)
}

// spec seeds a sweep.Spec with the protocol knobs; runners fill in the
// axes and metrics.
func (p Params) spec(name string) sweep.Spec {
	return sweep.Spec{
		Name:     name,
		Seeds:    p.Seeds,
		BaseSeed: p.BaseSeed,
		Workers:  p.Workers,
		Progress: p.Progress,
	}
}

func (p Params) withDefaults() Params {
	if p.Seeds == 0 {
		p.Seeds = 20
	}
	if p.Workers == 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	return p
}

// Quick returns a protocol suitable for smoke tests and benchmarks:
// fewer replications, same machinery.
func Quick() Params { return Params{Seeds: 3} }

// replicate runs fn once per replication seed, in parallel, and
// returns the results in seed order. The per-replication seed is
// BaseSeed + index; fn must derive all randomness from it. The first
// error (in seed order) aborts the batch. It survives for experiments
// whose per-replication shape does not fit a sweep cell (the wsn
// delivery overlay); everything grid-shaped goes through
// internal/sweep instead.
func replicate[T any](p Params, fn func(seed uint64) (T, error)) ([]T, error) {
	p = p.withDefaults()
	results := make([]T, p.Seeds)
	errs := make([]error, p.Seeds)

	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := p.Workers
	if workers > p.Seeds {
		workers = p.Seeds
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				results[idx], errs[idx] = fn(p.BaseSeed + uint64(idx))
			}
		}()
	}
	for i := 0; i < p.Seeds; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment: replication %d: %w", i, err)
		}
	}
	return results, nil
}

// scenarioSeed derives the scenario-generation seed for a replication.
// The derivation is the engine-wide contract owned by internal/sweep:
// scenario and algorithm randomness are independent streams of the
// same replication seed.
func scenarioSeed(seed uint64) *xrand.Source { return sweep.ScenarioSource(seed) }

// algorithmSeed derives the algorithm-randomness seed (Random
// baseline picks, k-means seeding) for a replication.
func algorithmSeed(seed uint64) *xrand.Source { return sweep.AlgorithmSource(seed) }

// runOn generates a scenario with gen, runs alg on it, and returns the
// result; shared shape of almost every replication body.
func runOn(seed uint64, gen func(src *xrand.Source) *field.Scenario,
	alg patrol.Algorithm, opts patrol.Options) (*patrol.Result, error) {
	s := gen(scenarioSeed(seed))
	return patrol.Run(s, alg, opts, algorithmSeed(seed))
}
