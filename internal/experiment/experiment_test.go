package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"tctp/internal/stats"
	"tctp/internal/sweep"
)

// quick2 is a 2-replication protocol that keeps experiment tests fast
// while still exercising aggregation across runs.
func quick2() Params { return Params{Seeds: 2} }

func TestFig7ShapesHold(t *testing.T) {
	cfg := Fig7Config{Targets: 12, Mules: 3, MaxVisits: 10, Horizon: 150_000}
	r, err := Fig7(quick2(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 4 {
		t.Fatalf("%d series", len(r.Series))
	}
	byName := map[string]stats.Series{}
	for _, s := range r.Series {
		byName[s.Name] = s
		if s.Len() < 5 {
			t.Fatalf("series %s too short: %d", s.Name, s.Len())
		}
	}
	// TCTP must be the flattest curve: compare the SD of the curve's
	// tail (skipping the initialization transient in interval 1).
	tailSD := func(s stats.Series) float64 {
		return stats.SampleSD(s.Y[1:])
	}
	tctp := tailSD(byName["TCTP"])
	for _, other := range []string{"Random", "CHB", "Sweep"} {
		if tctp > tailSD(byName[other])+1e-9 {
			t.Fatalf("TCTP curve (sd %.3f) not flatter than %s (sd %.3f)",
				tctp, other, tailSD(byName[other]))
		}
	}
	// Random's curve must be genuinely erratic, not just non-flat.
	if tailSD(byName["Random"]) < 1.0 {
		t.Fatalf("Random curve suspiciously steady (sd %.3f)", tailSD(byName["Random"]))
	}
	if r.String() == "" {
		t.Fatal("empty render")
	}
}

func TestFig8ShapesHold(t *testing.T) {
	cfg := Fig8Config{Targets: []int{10, 20}, Mules: []int{2, 4}, Horizon: 40_000}
	r, err := Fig8(quick2(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// TCTP ~0 everywhere; CHB clearly positive on every cell.
	for i := range r.TCTP.Rows {
		for j := range r.TCTP.Cols {
			if r.TCTP.At(i, j) > 1e-6 {
				t.Fatalf("TCTP SD cell (%d,%d) = %v", i, j, r.TCTP.At(i, j))
			}
			if r.CHB.At(i, j) <= 1.0 {
				t.Fatalf("CHB SD cell (%d,%d) = %v, expected clearly positive", i, j, r.CHB.At(i, j))
			}
		}
	}
	if r.String() == "" {
		t.Fatal("empty render")
	}
}

func TestWTCTPPoliciesShapesHold(t *testing.T) {
	cfg := WTCTPConfig{
		Targets: 12, Mules: 1,
		VIPs: []int{1, 3}, Weights: []int{2, 4},
		Horizon: 80_000,
	}
	r, err := WTCTPPolicies(quick2(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 9 shape: DCDT grows along both axes for both policies
	// (compare the extreme corners).
	for _, surf := range []*stats.Surface{r.DCDTShortest, r.DCDTBalancing} {
		if surf.At(1, 1) <= surf.At(0, 0) {
			t.Fatalf("%s: DCDT at max load %.2f not above min load %.2f",
				surf.Name, surf.At(1, 1), surf.At(0, 0))
		}
	}
	// Fig. 10 shape: balancing keeps SD below shortest at the heavy
	// corner (many VIPs, high weight).
	if r.SDBalancing.At(1, 1) >= r.SDShortest.At(1, 1) {
		t.Fatalf("balancing SD %.2f not below shortest SD %.2f at heavy corner",
			r.SDBalancing.At(1, 1), r.SDShortest.At(1, 1))
	}
	if r.Fig9String() == "" || r.Fig10String() == "" {
		t.Fatal("empty render")
	}
}

func TestEnergyShapesHold(t *testing.T) {
	cfg := EnergyConfig{Targets: 12, Mules: 2, Capacity: 100_000, Horizon: 200_000}
	r, err := Energy(quick2(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := r.Table.Rows
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// Row 0: W-TCTP without recharge (dead mules > 0); row 1: RW-TCTP
	// (no deaths, recharges > 0, more visits).
	parse := func(s string) float64 {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return f
	}
	deadNo, deadRW := parse(rows[0][3]), parse(rows[1][3])
	if deadNo <= 0 {
		t.Fatalf("no-recharge fleet survived (dead=%v)", deadNo)
	}
	if deadRW != 0 {
		t.Fatalf("RW-TCTP lost %v mules", deadRW)
	}
	if parse(rows[1][4]) <= 0 {
		t.Fatal("RW-TCTP never recharged")
	}
	if parse(rows[1][1]) <= parse(rows[0][1]) {
		t.Fatal("RW-TCTP did not collect more visits than the dying fleet")
	}
}

func TestAblationsRun(t *testing.T) {
	cfg := AblationConfig{Targets: 10, Mules: 2, Horizon: 30_000}
	for name, fn := range map[string]func(Params, AblationConfig) (*Table, error){
		"A1": TourHeuristics,
		"A2": BreakPolicies,
		"A3": LocationInit,
		"A4": DwellSensitivity,
		"A5": Traversal,
	} {
		tb, err := fn(quick2(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: empty table", name)
		}
		if tb.String() == "" {
			t.Fatalf("%s: empty render", name)
		}
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != len(Registry) {
		t.Fatal("Names() incomplete")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names() not sorted")
		}
	}
	var buf bytes.Buffer
	if err := Run("definitely-not-registered", quick2(), &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRegistryRunSmallest(t *testing.T) {
	// Run one registered experiment end to end through the registry
	// with a tiny protocol (a3-init is the cheapest).
	var buf bytes.Buffer
	if err := Run("a3-init", Params{Seeds: 1}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "B-TCTP") {
		t.Fatalf("unexpected output: %q", buf.String())
	}
}

func TestDeliveryShapesHold(t *testing.T) {
	cfg := DeliveryConfig{
		Targets: 10, Mules: 3,
		GenInterval: 60, BufferCap: 30, Deadline: 2000,
		Horizon: 100_000,
	}
	r, err := Delivery(quick2(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := r.Table.Rows
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	parse := func(s string) float64 {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return f
	}
	byName := map[string][]string{}
	for _, row := range rows {
		byName[row[0]] = row
	}
	// TCTP's mean delivery latency must beat Random's, and its
	// on-time percentage must be at least as high.
	if parse(byName["TCTP"][4]) >= parse(byName["Random"][4]) {
		t.Fatalf("TCTP mean latency %s not below Random %s",
			byName["TCTP"][4], byName["Random"][4])
	}
	if parse(byName["TCTP"][2]) < parse(byName["Random"][2]) {
		t.Fatalf("TCTP on-time %s below Random %s",
			byName["TCTP"][2], byName["Random"][2])
	}
	// Everyone delivers something on this workload.
	for name, row := range byName {
		if parse(row[1]) <= 0 {
			t.Fatalf("%s delivered nothing", name)
		}
	}
}

// A Params.Checkpoint directory makes every experiment sweep
// checkpointed and resumable: the second run of the same experiment
// restores instead of recomputing, and renders identically.
func TestParamsCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	p := Quick()
	p.Checkpoint = dir

	render := func() string {
		var buf bytes.Buffer
		if err := RunFormat("a1-tour", p, &buf, FormatCSV); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := render()
	if _, err := os.Stat(filepath.Join(dir, "a1-tour.ckpt")); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}
	if second := render(); second != first {
		t.Fatalf("checkpointed rerun diverged:\n%s\nvs\n%s", first, second)
	}
	// A nameless spec cannot derive a checkpoint file name.
	if _, err := p.run(sweep.Spec{}); err == nil {
		t.Fatal("nameless checkpointed spec accepted")
	}
}
