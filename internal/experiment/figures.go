package experiment

import (
	"fmt"

	"tctp/internal/baseline"
	"tctp/internal/core"
	"tctp/internal/energy"
	"tctp/internal/field"
	"tctp/internal/patrol"
	"tctp/internal/scenario"
	"tctp/internal/stats"
	"tctp/internal/sweep"
)

// Fig7Config parameterizes E1 (paper Fig. 7): the DCDT trajectory over
// the first MaxVisits visiting intervals for Random, Sweep, CHB and
// TCTP on one workload.
type Fig7Config struct {
	Targets   int     // patrolled targets excluding the sink (default 20)
	Mules     int     // fleet size (default 4)
	MaxVisits int     // x-axis length (default 40, as in the paper)
	Horizon   float64 // simulated seconds (default 400 000)
	// Placement selects the target layout (default Uniform, the
	// paper's §5.1 model; Clusters reproduces the motivating
	// disconnected deployment).
	Placement field.Placement
}

func (c Fig7Config) withDefaults() Fig7Config {
	if c.Targets == 0 {
		c.Targets = 20
	}
	if c.Mules == 0 {
		c.Mules = 4
	}
	if c.MaxVisits == 0 {
		c.MaxVisits = 40
	}
	if c.Horizon == 0 {
		c.Horizon = 400_000
	}
	return c
}

// Fig7Result holds one DCDT curve per algorithm, averaged over
// replications.
type Fig7Result struct {
	Series []stats.Series
}

// String renders the result.
func (r *Fig7Result) String() string {
	return RenderSeries("Fig. 7 — DCDT vs. visit index", "visit", r.Series)
}

// Fig7 reproduces paper Fig. 7. Expected shape: TCTP flat (equal
// spacing), CHB and Sweep periodic oscillation, Random large and
// erratic. The four algorithms are cells of one sweep, so they run
// concurrently instead of one after another.
func Fig7(p Params, cfg Fig7Config) (*Fig7Result, error) {
	cfg = cfg.withDefaults()
	spec := p.spec("fig7")
	spec.Algorithms = []sweep.Variant{
		sweep.Algo("Random", patrol.Online(&baseline.Random{})),
		sweep.Algo("Sweep", patrol.Planned(&baseline.Sweep{})),
		sweep.Algo("CHB", patrol.Planned(&baseline.CHB{})),
		sweep.Algo("TCTP", patrol.Planned(&core.BTCTP{})),
	}
	spec.Targets = []int{cfg.Targets}
	spec.Mules = []int{cfg.Mules}
	spec.Placements = []field.Placement{cfg.Placement}
	spec.Horizons = []float64{cfg.Horizon}
	spec.Vectors = []sweep.VectorMetric{sweep.DCDTCurve(cfg.MaxVisits)}

	res, err := p.run(spec)
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	out := &Fig7Result{}
	for _, c := range res.Cells {
		s := stats.Series{Name: c.Point.Algorithm}
		for k, y := range c.Vector("dcdt_curve").Mean {
			s.Add(float64(k+1), y)
		}
		out.Series = append(out.Series, s)
	}
	return out, nil
}

// Fig8Config parameterizes E2 (paper Fig. 8): the SD surface over
// (#targets × #mules) for CHB vs TCTP.
type Fig8Config struct {
	Targets []int   // default {10, 20, 30, 40, 50}
	Mules   []int   // default {2, 4, 6, 8, 10}
	Horizon float64 // default 60 000 s
}

func (c Fig8Config) withDefaults() Fig8Config {
	if len(c.Targets) == 0 {
		c.Targets = []int{10, 20, 30, 40, 50}
	}
	if len(c.Mules) == 0 {
		c.Mules = []int{2, 4, 6, 8, 10}
	}
	if c.Horizon == 0 {
		c.Horizon = 60_000
	}
	return c
}

// Fig8Result holds the two SD surfaces.
type Fig8Result struct {
	TCTP *stats.Surface
	CHB  *stats.Surface
}

// String renders both surfaces.
func (r *Fig8Result) String() string {
	return RenderSurface(r.TCTP) + "\n" + RenderSurface(r.CHB)
}

// Fig8 reproduces paper Fig. 8. Expected shape: the TCTP surface is ~0
// everywhere; the CHB surface is clearly positive and grows with the
// number of targets (longer, more irregular circuit). All 2 × |targets|
// × |mules| cells execute through one worker pool.
func Fig8(p Params, cfg Fig8Config) (*Fig8Result, error) {
	cfg = cfg.withDefaults()
	spec := p.spec("fig8")
	spec.Algorithms = []sweep.Variant{
		sweep.Algo("TCTP", patrol.Planned(&core.BTCTP{})),
		sweep.Algo("CHB", patrol.Planned(&baseline.CHB{})),
	}
	spec.Targets = cfg.Targets
	spec.Mules = cfg.Mules
	spec.Horizons = []float64{cfg.Horizon}
	spec.Metrics = []sweep.Metric{sweep.AvgSD()}

	res, err := p.run(spec)
	if err != nil {
		return nil, fmt.Errorf("fig8: %w", err)
	}
	rows := toF(cfg.Targets)
	cols := toF(cfg.Mules)
	out := &Fig8Result{
		TCTP: stats.NewSurface("TCTP avg SD (s)", "targets", "mules", rows, cols),
		CHB:  stats.NewSurface("CHB avg SD (s)", "targets", "mules", rows, cols),
	}
	for _, c := range res.Cells {
		surf := out.TCTP
		if c.Point.Algorithm == "CHB" {
			surf = out.CHB
		}
		i := indexOf(cfg.Targets, c.Point.Targets)
		j := indexOf(cfg.Mules, c.Point.Mules)
		surf.Set(i, j, c.Metric("avg_sd_s").Mean)
	}
	return out, nil
}

// WTCTPConfig parameterizes E3/E4 (paper Figs. 9 and 10): the DCDT and
// SD surfaces over (#VIPs × VIP weight) for the Shortest-Length vs
// Balancing-Length policies.
//
// The default fleet is a SINGLE mule. The paper does not state the
// fleet size for these figures, and with k mules a weight-w VIP whose
// cycles are balanced has visits spaced |P̄|/w apart, which resonates
// with the k-mule phase offset |P̄|/k whenever w is a multiple of k —
// mules then arrive at the VIP simultaneously and the SD advantage of
// the Balancing policy inverts. One mule reproduces the paper's
// claimed shapes cleanly; the resonance is documented in
// EXPERIMENTS.md.
type WTCTPConfig struct {
	Targets int     // default 20
	Mules   int     // default 1 (see note above)
	VIPs    []int   // default {1, 2, 3, 4, 5}
	Weights []int   // default {2, 3, 4, 5, 6}
	Horizon float64 // default 120 000 s
}

func (c WTCTPConfig) withDefaults() WTCTPConfig {
	if c.Targets == 0 {
		c.Targets = 20
	}
	if c.Mules == 0 {
		c.Mules = 1
	}
	if len(c.VIPs) == 0 {
		c.VIPs = []int{1, 2, 3, 4, 5}
	}
	if len(c.Weights) == 0 {
		c.Weights = []int{2, 3, 4, 5, 6}
	}
	if c.Horizon == 0 {
		c.Horizon = 120_000
	}
	return c
}

// WTCTPResult holds the four surfaces: DCDT (Fig. 9) and SD (Fig. 10)
// for each policy.
type WTCTPResult struct {
	DCDTShortest  *stats.Surface
	DCDTBalancing *stats.Surface
	SDShortest    *stats.Surface
	SDBalancing   *stats.Surface
}

// Fig9String renders the Fig. 9 surfaces (average DCDT).
func (r *WTCTPResult) Fig9String() string {
	return RenderSurface(r.DCDTShortest) + "\n" + RenderSurface(r.DCDTBalancing)
}

// Fig10String renders the Fig. 10 surfaces (average SD).
func (r *WTCTPResult) Fig10String() string {
	return RenderSurface(r.SDShortest) + "\n" + RenderSurface(r.SDBalancing)
}

// WTCTPPolicies reproduces paper Figs. 9 and 10 in one parameter
// sweep over policy × #VIPs × weight. Expected shapes: DCDT grows with
// #VIPs and weight under both policies, with Shortest ≤ Balancing
// (Fig. 9); SD grows sharply under Shortest but stays low under
// Balancing (Fig. 10).
func WTCTPPolicies(p Params, cfg WTCTPConfig) (*WTCTPResult, error) {
	cfg = cfg.withDefaults()
	spec := p.spec("wtctp-policies")
	spec.Algorithms = []sweep.Variant{
		sweep.Algo("Shortest", patrol.Planned(&core.WTCTP{Policy: core.ShortestLength})),
		sweep.Algo("Balancing", patrol.Planned(&core.WTCTP{Policy: core.BalancingLength})),
	}
	spec.Targets = []int{cfg.Targets}
	spec.Mules = []int{cfg.Mules}
	spec.VIPs = cfg.VIPs
	spec.VIPWeights = cfg.Weights
	spec.Horizons = []float64{cfg.Horizon}
	spec.Metrics = []sweep.Metric{sweep.AvgDCDT(), sweep.AvgSD()}

	res, err := p.run(spec)
	if err != nil {
		return nil, fmt.Errorf("wtctp: %w", err)
	}
	rows := toF(cfg.VIPs)
	cols := toF(cfg.Weights)
	out := &WTCTPResult{
		DCDTShortest:  stats.NewSurface("Shortest policy avg DCDT (s)", "vips", "weight", rows, cols),
		DCDTBalancing: stats.NewSurface("Balancing policy avg DCDT (s)", "vips", "weight", rows, cols),
		SDShortest:    stats.NewSurface("Shortest policy avg SD (s)", "vips", "weight", rows, cols),
		SDBalancing:   stats.NewSurface("Balancing policy avg SD (s)", "vips", "weight", rows, cols),
	}
	for _, c := range res.Cells {
		dcdt, sd := out.DCDTShortest, out.SDShortest
		if c.Point.Algorithm == "Balancing" {
			dcdt, sd = out.DCDTBalancing, out.SDBalancing
		}
		i := indexOf(cfg.VIPs, c.Point.VIPs)
		j := indexOf(cfg.Weights, c.Point.VIPWeight)
		dcdt.Set(i, j, c.Metric("avg_dcdt_s").Mean)
		sd.Set(i, j, c.Metric("avg_sd_s").Mean)
	}
	return out, nil
}

// EnergyConfig parameterizes E5 — the energy study the paper's §V
// text announces ("energy efficiency of DM") but shows no figure for.
type EnergyConfig struct {
	Targets  int     // default 20
	Mules    int     // default 2
	VIPs     int     // default 2 (weight 3) to exercise the full stack
	Weight   int     // default 3
	Capacity float64 // battery joules (default 150 000)
	Horizon  float64 // default 300 000 s
}

func (c EnergyConfig) withDefaults() EnergyConfig {
	if c.Targets == 0 {
		c.Targets = 20
	}
	if c.Mules == 0 {
		c.Mules = 2
	}
	if c.VIPs == 0 {
		c.VIPs = 2
	}
	if c.Weight == 0 {
		c.Weight = 3
	}
	if c.Capacity == 0 {
		c.Capacity = 150_000
	}
	if c.Horizon == 0 {
		c.Horizon = 300_000
	}
	return c
}

// EnergyResult compares RW-TCTP against recharge-less W-TCTP.
type EnergyResult struct {
	Table *Table
}

// String renders the comparison.
func (r *EnergyResult) String() string { return r.Table.String() }

// Energy reproduces E5. Expected shape: without recharge the whole
// fleet dies partway through the horizon and stops collecting; with
// RW-TCTP nothing dies, visits keep accumulating, at a small J/visit
// overhead from the recharge detours.
func Energy(p Params, cfg EnergyConfig) (*EnergyResult, error) {
	cfg = cfg.withDefaults()
	model := energy.Default()
	model.Capacity = cfg.Capacity
	rw := &core.RWTCTP{}
	rw.Model = model

	spec := p.spec("energy")
	spec.Algorithms = []sweep.Variant{
		sweep.Algo("W-TCTP (no recharge)", patrol.Planned(&core.WTCTP{})),
		sweep.Algo("RW-TCTP", patrol.Planned(rw)),
	}
	spec.Targets = []int{cfg.Targets}
	spec.Mules = []int{cfg.Mules}
	spec.VIPs = []int{cfg.VIPs}
	spec.VIPWeights = []int{cfg.Weight}
	spec.Horizons = []float64{cfg.Horizon}
	spec.Battery = []bool{true}
	spec.Configure = func(_ sweep.Point, sc *scenario.Scenario) { sc.Field.Recharge = true }
	spec.Options = func(_ sweep.Point, o *patrol.Options) { o.Energy = model }
	spec.Metrics = []sweep.Metric{
		sweep.TotalVisits(), sweep.JoulesPerVisit(), sweep.DeadMules(),
		sweep.Recharges(), sweep.MaxInterval(),
	}

	res, err := p.run(spec)
	if err != nil {
		return nil, fmt.Errorf("energy: %w", err)
	}
	table := NewTable("E5 — energy efficiency with and without recharge",
		"algorithm", "visits", "J/visit", "dead mules", "recharges", "max interval (s)")
	for _, c := range res.Cells {
		table.AddF(c.Point.Algorithm,
			c.Metric("visits").Mean,
			c.Metric("j_per_visit").Mean,
			c.Metric("dead_mules").Mean,
			c.Metric("recharges").Mean,
			c.Metric("max_interval_s").Mean)
	}
	return &EnergyResult{Table: table}, nil
}

// toF converts an int axis to float64 for stats.Surface.
func toF(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// indexOf locates v on an axis; sweep cells always come from the axis,
// so a miss is a bug.
func indexOf(axis []int, v int) int {
	for i, x := range axis {
		if x == v {
			return i
		}
	}
	panic(fmt.Sprintf("experiment: %d not on axis %v", v, axis))
}
