package experiment

import (
	"fmt"

	"tctp/internal/baseline"
	"tctp/internal/core"
	"tctp/internal/energy"
	"tctp/internal/field"
	"tctp/internal/patrol"
	"tctp/internal/stats"
	"tctp/internal/xrand"
)

// Fig7Config parameterizes E1 (paper Fig. 7): the DCDT trajectory over
// the first MaxVisits visiting intervals for Random, Sweep, CHB and
// TCTP on one workload.
type Fig7Config struct {
	Targets   int     // patrolled targets excluding the sink (default 20)
	Mules     int     // fleet size (default 4)
	MaxVisits int     // x-axis length (default 40, as in the paper)
	Horizon   float64 // simulated seconds (default 400 000)
	// Placement selects the target layout (default Uniform, the
	// paper's §5.1 model; Clusters reproduces the motivating
	// disconnected deployment).
	Placement field.Placement
}

func (c Fig7Config) withDefaults() Fig7Config {
	if c.Targets == 0 {
		c.Targets = 20
	}
	if c.Mules == 0 {
		c.Mules = 4
	}
	if c.MaxVisits == 0 {
		c.MaxVisits = 40
	}
	if c.Horizon == 0 {
		c.Horizon = 400_000
	}
	return c
}

// Fig7Result holds one DCDT curve per algorithm, averaged over
// replications.
type Fig7Result struct {
	Series []stats.Series
}

// String renders the result.
func (r *Fig7Result) String() string {
	return RenderSeries("Fig. 7 — DCDT vs. visit index", "visit", r.Series)
}

// Fig7 reproduces paper Fig. 7. Expected shape: TCTP flat (equal
// spacing), CHB and Sweep periodic oscillation, Random large and
// erratic.
func Fig7(p Params, cfg Fig7Config) (*Fig7Result, error) {
	cfg = cfg.withDefaults()
	gen := func(src *xrand.Source) *field.Scenario {
		return field.Generate(field.Config{
			NumTargets: cfg.Targets,
			NumMules:   cfg.Mules,
			Placement:  cfg.Placement,
		}, src)
	}
	opts := patrol.Options{Horizon: cfg.Horizon}

	algs := []struct {
		name string
		alg  patrol.Algorithm
	}{
		{"Random", patrol.Online(&baseline.Random{})},
		{"Sweep", patrol.Planned(&baseline.Sweep{})},
		{"CHB", patrol.Planned(&baseline.CHB{})},
		{"TCTP", patrol.Planned(&core.BTCTP{})},
	}

	out := &Fig7Result{}
	for _, a := range algs {
		a := a
		runs, err := replicate(p, func(seed uint64) ([]float64, error) {
			res, err := runOn(seed, gen, a.alg, opts)
			if err != nil {
				return nil, err
			}
			return res.Recorder.EventDCDTSeries(cfg.MaxVisits), nil
		})
		if err != nil {
			return nil, fmt.Errorf("fig7 %s: %w", a.name, err)
		}
		mean := stats.MeanAcross(runs)
		s := stats.Series{Name: a.name}
		for k, y := range mean {
			s.Add(float64(k+1), y)
		}
		out.Series = append(out.Series, s)
	}
	return out, nil
}

// Fig8Config parameterizes E2 (paper Fig. 8): the SD surface over
// (#targets × #mules) for CHB vs TCTP.
type Fig8Config struct {
	Targets []int   // default {10, 20, 30, 40, 50}
	Mules   []int   // default {2, 4, 6, 8, 10}
	Horizon float64 // default 60 000 s
}

func (c Fig8Config) withDefaults() Fig8Config {
	if len(c.Targets) == 0 {
		c.Targets = []int{10, 20, 30, 40, 50}
	}
	if len(c.Mules) == 0 {
		c.Mules = []int{2, 4, 6, 8, 10}
	}
	if c.Horizon == 0 {
		c.Horizon = 60_000
	}
	return c
}

// Fig8Result holds the two SD surfaces.
type Fig8Result struct {
	TCTP *stats.Surface
	CHB  *stats.Surface
}

// String renders both surfaces.
func (r *Fig8Result) String() string {
	return RenderSurface(r.TCTP) + "\n" + RenderSurface(r.CHB)
}

// Fig8 reproduces paper Fig. 8. Expected shape: the TCTP surface is ~0
// everywhere; the CHB surface is clearly positive and grows with the
// number of targets (longer, more irregular circuit).
func Fig8(p Params, cfg Fig8Config) (*Fig8Result, error) {
	cfg = cfg.withDefaults()
	rows := toF(cfg.Targets)
	cols := toF(cfg.Mules)
	out := &Fig8Result{
		TCTP: stats.NewSurface("TCTP avg SD (s)", "targets", "mules", rows, cols),
		CHB:  stats.NewSurface("CHB avg SD (s)", "targets", "mules", rows, cols),
	}
	for i, targets := range cfg.Targets {
		for j, mules := range cfg.Mules {
			gen := func(src *xrand.Source) *field.Scenario {
				return field.Generate(field.Config{
					NumTargets: targets,
					NumMules:   mules,
					Placement:  field.Uniform,
				}, src)
			}
			opts := patrol.Options{Horizon: cfg.Horizon}
			for _, ac := range []struct {
				alg     patrol.Algorithm
				surface *stats.Surface
			}{
				{patrol.Planned(&core.BTCTP{}), out.TCTP},
				{patrol.Planned(&baseline.CHB{}), out.CHB},
			} {
				alg, surface := ac.alg, ac.surface
				runs, err := replicate(p, func(seed uint64) (float64, error) {
					res, err := runOn(seed, gen, alg, opts)
					if err != nil {
						return 0, err
					}
					return res.Recorder.AvgSDAfter(res.PatrolStart + 1), nil
				})
				if err != nil {
					return nil, fmt.Errorf("fig8 (%d targets, %d mules): %w", targets, mules, err)
				}
				surface.Set(i, j, stats.Mean(runs))
			}
		}
	}
	return out, nil
}

// WTCTPConfig parameterizes E3/E4 (paper Figs. 9 and 10): the DCDT and
// SD surfaces over (#VIPs × VIP weight) for the Shortest-Length vs
// Balancing-Length policies.
//
// The default fleet is a SINGLE mule. The paper does not state the
// fleet size for these figures, and with k mules a weight-w VIP whose
// cycles are balanced has visits spaced |P̄|/w apart, which resonates
// with the k-mule phase offset |P̄|/k whenever w is a multiple of k —
// mules then arrive at the VIP simultaneously and the SD advantage of
// the Balancing policy inverts. One mule reproduces the paper's
// claimed shapes cleanly; the resonance is documented in
// EXPERIMENTS.md.
type WTCTPConfig struct {
	Targets int     // default 20
	Mules   int     // default 1 (see note above)
	VIPs    []int   // default {1, 2, 3, 4, 5}
	Weights []int   // default {2, 3, 4, 5, 6}
	Horizon float64 // default 120 000 s
}

func (c WTCTPConfig) withDefaults() WTCTPConfig {
	if c.Targets == 0 {
		c.Targets = 20
	}
	if c.Mules == 0 {
		c.Mules = 1
	}
	if len(c.VIPs) == 0 {
		c.VIPs = []int{1, 2, 3, 4, 5}
	}
	if len(c.Weights) == 0 {
		c.Weights = []int{2, 3, 4, 5, 6}
	}
	if c.Horizon == 0 {
		c.Horizon = 120_000
	}
	return c
}

// WTCTPResult holds the four surfaces: DCDT (Fig. 9) and SD (Fig. 10)
// for each policy.
type WTCTPResult struct {
	DCDTShortest  *stats.Surface
	DCDTBalancing *stats.Surface
	SDShortest    *stats.Surface
	SDBalancing   *stats.Surface
}

// Fig9String renders the Fig. 9 surfaces (average DCDT).
func (r *WTCTPResult) Fig9String() string {
	return RenderSurface(r.DCDTShortest) + "\n" + RenderSurface(r.DCDTBalancing)
}

// Fig10String renders the Fig. 10 surfaces (average SD).
func (r *WTCTPResult) Fig10String() string {
	return RenderSurface(r.SDShortest) + "\n" + RenderSurface(r.SDBalancing)
}

// WTCTPPolicies reproduces paper Figs. 9 and 10 in one parameter
// sweep. Expected shapes: DCDT grows with #VIPs and weight under both
// policies, with Shortest ≤ Balancing (Fig. 9); SD grows sharply under
// Shortest but stays low under Balancing (Fig. 10).
func WTCTPPolicies(p Params, cfg WTCTPConfig) (*WTCTPResult, error) {
	cfg = cfg.withDefaults()
	rows := toF(cfg.VIPs)
	cols := toF(cfg.Weights)
	out := &WTCTPResult{
		DCDTShortest:  stats.NewSurface("Shortest policy avg DCDT (s)", "vips", "weight", rows, cols),
		DCDTBalancing: stats.NewSurface("Balancing policy avg DCDT (s)", "vips", "weight", rows, cols),
		SDShortest:    stats.NewSurface("Shortest policy avg SD (s)", "vips", "weight", rows, cols),
		SDBalancing:   stats.NewSurface("Balancing policy avg SD (s)", "vips", "weight", rows, cols),
	}
	type cell struct{ dcdt, sd float64 }
	for i, nVIP := range cfg.VIPs {
		for j, weight := range cfg.Weights {
			nVIP, weight := nVIP, weight
			gen := func(src *xrand.Source) *field.Scenario {
				s := field.Generate(field.Config{
					NumTargets: cfg.Targets,
					NumMules:   cfg.Mules,
					Placement:  field.Uniform,
				}, src)
				s.AssignVIPs(src, nVIP, weight)
				return s
			}
			opts := patrol.Options{Horizon: cfg.Horizon}
			for _, pol := range []struct {
				policy core.BreakPolicy
				dcdt   *stats.Surface
				sd     *stats.Surface
			}{
				{core.ShortestLength, out.DCDTShortest, out.SDShortest},
				{core.BalancingLength, out.DCDTBalancing, out.SDBalancing},
			} {
				pol := pol
				alg := patrol.Planned(&core.WTCTP{Policy: pol.policy})
				runs, err := replicate(p, func(seed uint64) (cell, error) {
					res, err := runOn(seed, gen, alg, opts)
					if err != nil {
						return cell{}, err
					}
					warm := res.PatrolStart + 1
					return cell{
						dcdt: res.Recorder.AvgDCDTAfter(warm),
						sd:   res.Recorder.AvgSDAfter(warm),
					}, nil
				})
				if err != nil {
					return nil, fmt.Errorf("wtctp (%d vips, weight %d, %v): %w",
						nVIP, weight, pol.policy, err)
				}
				var dc, sd stats.Accumulator
				for _, c := range runs {
					dc.Add(c.dcdt)
					sd.Add(c.sd)
				}
				pol.dcdt.Set(i, j, dc.Mean())
				pol.sd.Set(i, j, sd.Mean())
			}
		}
	}
	return out, nil
}

// EnergyConfig parameterizes E5 — the energy study the paper's §V
// text announces ("energy efficiency of DM") but shows no figure for.
type EnergyConfig struct {
	Targets  int     // default 20
	Mules    int     // default 2
	VIPs     int     // default 2 (weight 3) to exercise the full stack
	Weight   int     // default 3
	Capacity float64 // battery joules (default 150 000)
	Horizon  float64 // default 300 000 s
}

func (c EnergyConfig) withDefaults() EnergyConfig {
	if c.Targets == 0 {
		c.Targets = 20
	}
	if c.Mules == 0 {
		c.Mules = 2
	}
	if c.VIPs == 0 {
		c.VIPs = 2
	}
	if c.Weight == 0 {
		c.Weight = 3
	}
	if c.Capacity == 0 {
		c.Capacity = 150_000
	}
	if c.Horizon == 0 {
		c.Horizon = 300_000
	}
	return c
}

// EnergyResult compares RW-TCTP against recharge-less W-TCTP.
type EnergyResult struct {
	Table *Table
}

// String renders the comparison.
func (r *EnergyResult) String() string { return r.Table.String() }

// Energy reproduces E5. Expected shape: without recharge the whole
// fleet dies partway through the horizon and stops collecting; with
// RW-TCTP nothing dies, visits keep accumulating, at a small J/visit
// overhead from the recharge detours.
func Energy(p Params, cfg EnergyConfig) (*EnergyResult, error) {
	cfg = cfg.withDefaults()
	gen := func(src *xrand.Source) *field.Scenario {
		s := field.Generate(field.Config{
			NumTargets:   cfg.Targets,
			NumMules:     cfg.Mules,
			Placement:    field.Uniform,
			WithRecharge: true,
		}, src)
		s.AssignVIPs(src, cfg.VIPs, cfg.Weight)
		return s
	}
	model := energy.Default()
	model.Capacity = cfg.Capacity
	opts := patrol.Options{Horizon: cfg.Horizon, UseBattery: true, Energy: model}

	rw := &core.RWTCTP{}
	rw.Model = model
	algs := []struct {
		name string
		alg  patrol.Algorithm
	}{
		{"W-TCTP (no recharge)", patrol.Planned(&core.WTCTP{})},
		{"RW-TCTP", patrol.Planned(rw)},
	}

	type row struct {
		visits    float64
		jPerVisit float64
		dead      float64
		recharges float64
		maxIv     float64
	}
	table := NewTable("E5 — energy efficiency with and without recharge",
		"algorithm", "visits", "J/visit", "dead mules", "recharges", "max interval (s)")
	for _, a := range algs {
		a := a
		runs, err := replicate(p, func(seed uint64) (row, error) {
			res, err := runOn(seed, gen, a.alg, opts)
			if err != nil {
				return row{}, err
			}
			recharges := 0
			for _, m := range res.Mules {
				recharges += m.Recharges
			}
			return row{
				visits:    float64(res.TotalVisits()),
				jPerVisit: res.EnergyPerVisit(),
				dead:      float64(res.DeadMules()),
				recharges: float64(recharges),
				maxIv:     res.Recorder.MaxInterval(),
			}, nil
		})
		if err != nil {
			return nil, fmt.Errorf("energy %s: %w", a.name, err)
		}
		var visits, jpv, dead, rech, maxIv stats.Accumulator
		for _, r := range runs {
			visits.Add(r.visits)
			jpv.Add(r.jPerVisit)
			dead.Add(r.dead)
			rech.Add(r.recharges)
			maxIv.Add(r.maxIv)
		}
		table.AddF(a.name, visits.Mean(), jpv.Mean(), dead.Mean(), rech.Mean(), maxIv.Mean())
	}
	return &EnergyResult{Table: table}, nil
}

// toF converts an int axis to float64 for stats.Surface.
func toF(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
