package experiment

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden fixtures")

// goldenParams is the fixed protocol pinned by the fixtures: small
// enough to run in seconds, large enough to exercise aggregation
// across replications.
func goldenParams() Params { return Params{Seeds: 2} }

// checkGolden compares got against testdata/<name>.golden byte for
// byte, rewriting the fixture under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output diverged from %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestGoldenFig7 pins the paper-protocol Fig. 7 output byte for byte:
// any change to scenario generation, seed derivation, simulation
// order, aggregation, or rendering shows up as a fixture diff.
// Regenerate deliberately with -update.
func TestGoldenFig7(t *testing.T) {
	r, err := Fig7(goldenParams(), Fig7Config{
		Targets: 12, Mules: 3, MaxVisits: 10, Horizon: 150_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig7", []byte(r.String()))
}

// TestGoldenFig8 pins the Fig. 8 SD surfaces.
func TestGoldenFig8(t *testing.T) {
	r, err := Fig8(goldenParams(), Fig8Config{
		Targets: []int{10, 20}, Mules: []int{2, 4}, Horizon: 40_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig8", []byte(r.String()))
}

// TestGoldenWTCTP pins the Fig. 9/10 W-TCTP policy surfaces.
func TestGoldenWTCTP(t *testing.T) {
	r, err := WTCTPPolicies(goldenParams(), WTCTPConfig{
		Targets: 12, Mules: 1,
		VIPs: []int{1, 3}, Weights: []int{2, 4},
		Horizon: 80_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "wtctp", []byte(r.Fig9String()+"\n"+r.Fig10String()))
}
