package experiment

import (
	"fmt"

	"tctp/internal/core"
	"tctp/internal/field"
	"tctp/internal/patrol"
	"tctp/internal/sweep"
)

// PartitionConfig parameterizes the partitioned-patrolling study: the
// single-circuit B-TCTP against the C-BTCTP family (k-means and
// sector partitions at several k) on the clustered deployment the
// partition is built for.
type PartitionConfig struct {
	Targets int     // default 20
	Mules   int     // default 6
	Horizon float64 // default 60 000 s
	// Ks are the region counts to sweep (default {2, 4}).
	Ks []int
	// Placement selects the layout (default Clusters, the deployment
	// that motivates per-region patrolling).
	Placement field.Placement
}

func (c PartitionConfig) withDefaults() PartitionConfig {
	if c.Targets == 0 {
		c.Targets = 20
	}
	if c.Mules == 0 {
		c.Mules = 6
	}
	if c.Horizon == 0 {
		c.Horizon = 60_000
	}
	if len(c.Ks) == 0 {
		c.Ks = []int{2, 4}
	}
	if c.Placement == 0 {
		c.Placement = field.Clusters
	}
	return c
}

// PartitionStudy compares the single global circuit against
// partitioned per-region patrolling: one B-TCTP variant crossed with
// the partition axis (none + kmeans/sectors × k). The table reports
// the whole-fleet DCDT, the total tour length, and the spread of the
// per-group DCDTs — the idleness-vs-delay trade-off of partitioned vs
// cyclic strategies (Scherer & Rinner, arXiv:1906.11539).
func PartitionStudy(p Params, cfg PartitionConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	spec := p.spec("partition")
	spec.Algorithms = []sweep.Variant{sweep.Algo("B-TCTP", patrol.Planned(&core.BTCTP{}))}
	spec.Targets = []int{cfg.Targets}
	spec.Mules = []int{cfg.Mules}
	spec.Placements = []field.Placement{cfg.Placement}
	spec.Horizons = []float64{cfg.Horizon}

	maxK := 0
	spec.Partitions = []sweep.Partition{{}}
	for _, method := range []string{"kmeans", "sectors"} {
		for _, k := range cfg.Ks {
			if k > cfg.Mules {
				continue // a region would go unmuled
			}
			spec.Partitions = append(spec.Partitions, sweep.Partition{Method: method, K: k})
			if k > maxK {
				maxK = k
			}
		}
	}
	if maxK == 0 {
		return nil, fmt.Errorf("partition: no feasible k in %v for %d mules", cfg.Ks, cfg.Mules)
	}
	spec.Metrics = []sweep.Metric{
		sweep.AvgDCDT(), sweep.MaxInterval(), sweep.CircuitLength(), sweep.GroupCount(),
	}
	spec.Vectors = []sweep.VectorMetric{sweep.GroupDCDT(maxK)}

	table := NewTable(
		fmt.Sprintf("Partitioned patrolling — B-TCTP vs C-BTCTP (%s, %d targets, %d mules)",
			cfg.Placement, cfg.Targets, cfg.Mules),
		"partition", "groups", "avg DCDT (s)", "max interval (s)",
		"tour length (m)", "group DCDT spread (s)")
	err := runCells(p, spec, "partition", func(c *sweep.CellResult) error {
		name := c.Point.Partition
		if name == "" {
			name = "none"
		}
		// Spread of the per-group mean DCDTs: how unevenly the regions
		// are served (0 for the single-circuit plan).
		groupDCDT := c.Vector("group_dcdt_s").Mean
		lo, hi := 0.0, 0.0
		for i, v := range groupDCDT {
			if i == 0 || v < lo {
				lo = v
			}
			if i == 0 || v > hi {
				hi = v
			}
		}
		table.AddF(name, c.Metric("groups").Mean,
			c.Metric("avg_dcdt_s").Mean, c.Metric("max_interval_s").Mean,
			c.Metric("circuit_m").Mean, hi-lo)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return table, nil
}
