package experiment

import (
	"encoding/json"
	"fmt"
	"strconv"

	"tctp/internal/field"
	"tctp/internal/scenario"
	"tctp/internal/sweep"
	"tctp/internal/sweep/build"
)

// QualityConfig parameterizes the solution-quality study: every
// plan-based planner's approximation ratio against the
// internal/optimal reference bounds, across scenario presets.
type QualityConfig struct {
	// Presets are the scenario presets to evaluate (default paper51
	// and clustered — the paper's model and the disconnected
	// deployment that motivates it).
	Presets []string
	// Algorithms are the planners to rate (default the plan-based
	// family: btctp, wtctp, chb, sweep; online algorithms have no
	// plan to rate).
	Algorithms []string
	// Horizon is the simulated duration (default 60 000 s — long
	// enough that finite-horizon interval truncation cannot erode the
	// DCDT ratio's ≥ 1 guarantee).
	Horizon float64
}

func (c QualityConfig) withDefaults() QualityConfig {
	if len(c.Presets) == 0 {
		c.Presets = []string{"paper51", "clustered"}
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = []string{"btctp", "wtctp", "chb", "sweep"}
	}
	if c.Horizon == 0 {
		c.Horizon = 60_000
	}
	return c
}

// QualityStudy reports each planner's approximation ratios on each
// preset: the tour-length ratio (planned walk length over the
// per-group optimal-tour bound) and the DCDT ratio (measured
// steady-state delay over the induced interval bound). Both are ≥ 1.0
// for sound planners and bounds; the study's tests and the CI quality
// gate treat anything below as a defect. Ratios render with four
// decimals so the committed golden fixtures detect sub-percent
// regressions.
func QualityStudy(p Params, cfg QualityConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	table := NewTable(
		fmt.Sprintf("Solution quality — approximation ratios vs internal/optimal bounds (%d seeds)",
			p.withDefaults().Seeds),
		"preset", "algorithm", "ratio_tour", "ratio_dcdt",
		"avg DCDT (s)", "tour length (m)")
	for _, preset := range cfg.Presets {
		ps, err := scenario.Preset(preset)
		if err != nil {
			return nil, err
		}
		spec := p.spec("quality-" + preset)
		for _, name := range cfg.Algorithms {
			alg, aerr := build.Algorithm(name)
			if aerr != nil {
				return nil, aerr
			}
			spec.Algorithms = append(spec.Algorithms, sweep.Algo(name, alg))
		}
		spec.Targets = []int{ps.Targets.Count}
		spec.Mules = []int{ps.Fleet.Size()}
		spec.Speeds = []float64{ps.Fleet.CommonSpeed()}
		spec.Placements = []field.Placement{ps.Field.Placement}
		spec.Horizons = []float64{cfg.Horizon}
		spec.Metrics = append([]sweep.Metric{sweep.AvgDCDT(), sweep.CircuitLength()},
			sweep.Quality()...)
		// The preset supplies the field geometry (cluster parameters,
		// dimensions) exactly as the shared request builder does.
		presetField := ps.Field
		spec.Configure = func(pt sweep.Point, sc *scenario.Scenario) {
			placement := sc.Field.Placement
			sc.Field = presetField
			sc.Field.Placement = placement
		}
		digest, derr := json.Marshal(presetField)
		if derr != nil {
			return nil, derr
		}
		spec.ConfigDigest = string(digest)

		err = runCells(p, spec, "quality", func(c *sweep.CellResult) error {
			table.Add(preset, c.Point.Algorithm,
				ratioCell(c.Metric("ratio_tour").Mean),
				ratioCell(c.Metric("ratio_dcdt").Mean),
				strconv.FormatFloat(c.Metric("avg_dcdt_s").Mean, 'f', 2, 64),
				strconv.FormatFloat(c.Metric("circuit_m").Mean, 'f', 2, 64))
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return table, nil
}

// ratioCell renders an approximation ratio with four decimals — the
// precision contract of the golden fixtures the quality gate compares
// against.
func ratioCell(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
