package experiment

import (
	"bytes"
	"strconv"
	"testing"
)

// Every planner's reported ratio must be ≥ 1.0 on every preset: the
// denominators are sound lower bounds, so a smaller value means the
// bound (or the solver under it) is wrong.
func TestQualityStudyRatiosAtLeastOne(t *testing.T) {
	table, err := QualityStudy(Quick(), QualityConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 8 { // 2 presets × 4 planners
		t.Fatalf("%d rows, want 8", len(table.Rows))
	}
	for _, row := range table.Rows {
		for _, col := range []int{2, 3} {
			v, perr := strconv.ParseFloat(row[col], 64)
			if perr != nil {
				t.Fatalf("row %v: bad ratio %q", row, row[col])
			}
			if v < 1 {
				t.Errorf("%s/%s: %s ratio %v < 1", row[0], row[1], table.Columns[col], v)
			}
		}
	}
}

// The study's output must be byte-identical across worker counts —
// the property the committed golden fixtures and the CI quality gate
// rely on.
func TestQualityStudyDeterministic(t *testing.T) {
	render := func(workers int) []byte {
		p := Quick()
		p.Workers = workers
		table, err := QualityStudy(p, QualityConfig{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := table.CSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one := render(1)
	four := render(4)
	if !bytes.Equal(one, four) {
		t.Fatalf("quality study diverged across worker counts:\n1: %s\n4: %s", one, four)
	}
}
