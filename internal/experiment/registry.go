package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"tctp/internal/field"
	"tctp/internal/stats"
)

// Format selects how a runner renders its result.
type Format int

// Supported output formats.
const (
	// FormatText is the classic aligned-text rendering.
	FormatText Format = iota
	// FormatCSV emits machine-readable CSV (long-form for surfaces).
	FormatCSV
	// FormatJSON emits the result object as a single JSON document.
	FormatJSON
)

// ParseFormat is the inverse of the -format flag.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "text":
		return FormatText, nil
	case "csv":
		return FormatCSV, nil
	case "json":
		return FormatJSON, nil
	default:
		return 0, fmt.Errorf("experiment: unknown format %q (valid: text, csv, json)", s)
	}
}

// Runner executes one registered experiment with the given protocol
// and writes its result to w in the requested format.
type Runner func(p Params, w io.Writer, f Format) error

func renderTable(t *Table, w io.Writer, f Format) error {
	switch f {
	case FormatCSV:
		return t.CSV(w)
	case FormatJSON:
		return json.NewEncoder(w).Encode(t)
	default:
		_, err := io.WriteString(w, t.String())
		return err
	}
}

func renderSurfaces(w io.Writer, f Format, text string, surfaces ...*stats.Surface) error {
	switch f {
	case FormatCSV:
		for _, s := range surfaces {
			if err := SurfaceCSV(w, s); err != nil {
				return err
			}
		}
		return nil
	case FormatJSON:
		return json.NewEncoder(w).Encode(surfaces)
	default:
		_, err := io.WriteString(w, text)
		return err
	}
}

func renderSeriesResult(w io.Writer, f Format, r *Fig7Result) error {
	switch f {
	case FormatCSV:
		return SeriesCSV(w, "visit", r.Series)
	case FormatJSON:
		return json.NewEncoder(w).Encode(r)
	default:
		_, err := io.WriteString(w, r.String())
		return err
	}
}

// Registry maps experiment names (as accepted by
// `tctp-experiments -run`) to runners. Every paper artifact and every
// ablation is reachable from here.
var Registry = map[string]Runner{
	"fig7": func(p Params, w io.Writer, f Format) error {
		r, err := Fig7(p, Fig7Config{})
		if err != nil {
			return err
		}
		return renderSeriesResult(w, f, r)
	},
	"fig8": func(p Params, w io.Writer, f Format) error {
		r, err := Fig8(p, Fig8Config{})
		if err != nil {
			return err
		}
		return renderSurfaces(w, f, r.String(), r.TCTP, r.CHB)
	},
	"fig9": func(p Params, w io.Writer, f Format) error {
		r, err := WTCTPPolicies(p, WTCTPConfig{})
		if err != nil {
			return err
		}
		return renderSurfaces(w, f, r.Fig9String(), r.DCDTShortest, r.DCDTBalancing)
	},
	"fig10": func(p Params, w io.Writer, f Format) error {
		r, err := WTCTPPolicies(p, WTCTPConfig{})
		if err != nil {
			return err
		}
		return renderSurfaces(w, f, r.Fig10String(), r.SDShortest, r.SDBalancing)
	},
	"energy": func(p Params, w io.Writer, f Format) error {
		r, err := Energy(p, EnergyConfig{})
		if err != nil {
			return err
		}
		return renderTable(r.Table, w, f)
	},
	"fig7-clusters": func(p Params, w io.Writer, f Format) error {
		r, err := Fig7(p, Fig7Config{Placement: field.Clusters})
		if err != nil {
			return err
		}
		return renderSeriesResult(w, f, r)
	},
	"delivery": func(p Params, w io.Writer, f Format) error {
		r, err := Delivery(p, DeliveryConfig{})
		if err != nil {
			return err
		}
		return renderTable(r.Table, w, f)
	},
	"resonance": func(p Params, w io.Writer, f Format) error {
		r, err := Resonance(p, ResonanceConfig{})
		if err != nil {
			return err
		}
		return renderSurfaces(w, f, r.String(), r.SD)
	},
	"partition": func(p Params, w io.Writer, f Format) error {
		t, err := PartitionStudy(p, PartitionConfig{})
		if err != nil {
			return err
		}
		return renderTable(t, w, f)
	},
	"quality": func(p Params, w io.Writer, f Format) error {
		t, err := QualityStudy(p, QualityConfig{})
		if err != nil {
			return err
		}
		return renderTable(t, w, f)
	},
	"a1-tour":      tableRunner(TourHeuristics),
	"a2-break":     tableRunner(BreakPolicies),
	"a3-init":      tableRunner(LocationInit),
	"a4-dwell":     tableRunner(DwellSensitivity),
	"a5-traversal": tableRunner(Traversal),
}

func tableRunner(fn func(Params, AblationConfig) (*Table, error)) Runner {
	return func(p Params, w io.Writer, f Format) error {
		t, err := fn(p, AblationConfig{})
		if err != nil {
			return err
		}
		return renderTable(t, w, f)
	}
}

// Names returns the registered experiment names in sorted order.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for name := range Registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run executes the named experiment in the classic text format, or
// returns an error listing the valid names.
func Run(name string, p Params, w io.Writer) error {
	return RunFormat(name, p, w, FormatText)
}

// RunFormat executes the named experiment in the requested format.
func RunFormat(name string, p Params, w io.Writer, f Format) error {
	r, ok := Registry[name]
	if !ok {
		return fmt.Errorf("experiment: unknown %q (valid: %v)", name, Names())
	}
	return r(p, w, f)
}
