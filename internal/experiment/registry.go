package experiment

import (
	"fmt"
	"io"
	"sort"

	"tctp/internal/field"
)

// Runner executes one registered experiment with the given protocol
// and writes its rendered result to w.
type Runner func(p Params, w io.Writer) error

// Registry maps experiment names (as accepted by
// `tctp-experiments -run`) to runners. Every paper artifact and every
// ablation is reachable from here.
var Registry = map[string]Runner{
	"fig7": func(p Params, w io.Writer) error {
		r, err := Fig7(p, Fig7Config{})
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, r.String())
		return err
	},
	"fig8": func(p Params, w io.Writer) error {
		r, err := Fig8(p, Fig8Config{})
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, r.String())
		return err
	},
	"fig9": func(p Params, w io.Writer) error {
		r, err := WTCTPPolicies(p, WTCTPConfig{})
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, r.Fig9String())
		return err
	},
	"fig10": func(p Params, w io.Writer) error {
		r, err := WTCTPPolicies(p, WTCTPConfig{})
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, r.Fig10String())
		return err
	},
	"energy": func(p Params, w io.Writer) error {
		r, err := Energy(p, EnergyConfig{})
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, r.String())
		return err
	},
	"fig7-clusters": func(p Params, w io.Writer) error {
		r, err := Fig7(p, Fig7Config{Placement: field.Clusters})
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, r.String())
		return err
	},
	"delivery": func(p Params, w io.Writer) error {
		r, err := Delivery(p, DeliveryConfig{})
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, r.String())
		return err
	},
	"resonance": func(p Params, w io.Writer) error {
		r, err := Resonance(p, ResonanceConfig{})
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, r.String())
		return err
	},
	"a1-tour":      tableRunner(TourHeuristics),
	"a2-break":     tableRunner(BreakPolicies),
	"a3-init":      tableRunner(LocationInit),
	"a4-dwell":     tableRunner(DwellSensitivity),
	"a5-traversal": tableRunner(Traversal),
}

func tableRunner(fn func(Params, AblationConfig) (*Table, error)) Runner {
	return func(p Params, w io.Writer) error {
		t, err := fn(p, AblationConfig{})
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, t.String())
		return err
	}
}

// Names returns the registered experiment names in sorted order.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for name := range Registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run executes the named experiment, or returns an error listing the
// valid names.
func Run(name string, p Params, w io.Writer) error {
	r, ok := Registry[name]
	if !ok {
		return fmt.Errorf("experiment: unknown %q (valid: %v)", name, Names())
	}
	return r(p, w)
}
