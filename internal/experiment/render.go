package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"

	"tctp/internal/stats"
)

// Table is a titled grid of cells used for experiment summaries.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends one row; the cell count must match the column count.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiment: row has %d cells, table has %d columns",
			len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddF appends one row of formatted values: strings pass through,
// float64 renders with %.2f, int with %d.
func (t *Table) AddF(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = strconv.FormatFloat(v, 'f', 2, 64)
		case int:
			row[i] = strconv.Itoa(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Add(row...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(t.Columns, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	w.Flush()
	return sb.String()
}

// CSV writes the table (without its title) as CSV.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// RenderSeries prints aligned columns for a family of curves sharing
// an x axis — the textual equivalent of a Fig. 7-style line plot.
func RenderSeries(title, xLabel string, series []stats.Series) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", title)
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	header := xLabel
	maxLen := 0
	for _, s := range series {
		header += "\t" + s.Name
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	fmt.Fprintln(w, header)
	for i := 0; i < maxLen; i++ {
		var row strings.Builder
		wrote := false
		for _, s := range series {
			if !wrote {
				if i < s.Len() {
					fmt.Fprintf(&row, "%g", s.X[i])
				} else {
					row.WriteString("-")
				}
				wrote = true
			}
			if i < s.Len() {
				fmt.Fprintf(&row, "\t%.2f", s.Y[i])
			} else {
				row.WriteString("\t-")
			}
		}
		fmt.Fprintln(w, row.String())
	}
	w.Flush()
	return sb.String()
}

// SeriesCSV writes the series family as CSV with a shared x column.
func SeriesCSV(w io.Writer, xLabel string, series []stats.Series) error {
	cw := csv.NewWriter(w)
	header := []string{xLabel}
	maxLen := 0
	for _, s := range series {
		header = append(header, s.Name)
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < maxLen; i++ {
		row := make([]string, 0, len(header))
		x := ""
		for _, s := range series {
			if i < s.Len() {
				x = strconv.FormatFloat(s.X[i], 'g', -1, 64)
				break
			}
		}
		row = append(row, x)
		for _, s := range series {
			if i < s.Len() {
				row = append(row, strconv.FormatFloat(s.Y[i], 'f', 4, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderSurface prints a 2-D parameter grid — the textual equivalent
// of the paper's 3-D bar plots (Figs. 8–10).
func RenderSurface(s *stats.Surface) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s (rows: %s, cols: %s) ==\n", s.Name, s.RowLabel, s.ColLabel)
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	header := s.RowLabel + "\\" + s.ColLabel
	for _, c := range s.Cols {
		header += fmt.Sprintf("\t%g", c)
	}
	fmt.Fprintln(w, header)
	for i, r := range s.Rows {
		row := fmt.Sprintf("%g", r)
		for j := range s.Cols {
			row += fmt.Sprintf("\t%.2f", s.At(i, j))
		}
		fmt.Fprintln(w, row)
	}
	w.Flush()
	return sb.String()
}

// SurfaceCSV writes the surface as long-form CSV
// (rowValue, colValue, z).
func SurfaceCSV(w io.Writer, s *stats.Surface) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{s.RowLabel, s.ColLabel, s.Name}); err != nil {
		return err
	}
	for i, r := range s.Rows {
		for j, c := range s.Cols {
			rec := []string{
				strconv.FormatFloat(r, 'g', -1, 64),
				strconv.FormatFloat(c, 'g', -1, 64),
				strconv.FormatFloat(s.At(i, j), 'f', 4, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
