package experiment

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"tctp/internal/stats"
)

func TestTableBasics(t *testing.T) {
	tb := NewTable("demo", "a", "b", "c")
	tb.Add("x", "y", "w")
	tb.AddF("z", 1.2345, 7)
	out := tb.String()
	for _, want := range []string{"demo", "a", "b", "x", "y", "z", "1.23", "7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableAddPanicsOnArity(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity accepted")
		}
	}()
	tb.Add("only-one")
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("demo", "col1", "col2")
	tb.Add("v1", "v2")
	tb.Add("v3", "v4")
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 || records[0][0] != "col1" || records[2][1] != "v4" {
		t.Fatalf("CSV = %v", records)
	}
}

func TestRenderSeriesAndCSV(t *testing.T) {
	a := stats.Series{Name: "tctp"}
	a.Add(1, 10)
	a.Add(2, 20)
	b := stats.Series{Name: "chb"}
	b.Add(1, 30) // shorter series: the renderer must pad
	out := RenderSeries("title", "visit", []stats.Series{a, b})
	for _, want := range []string{"title", "visit", "tctp", "chb", "10.00", "30.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("series render missing %q:\n%s", want, out)
		}
	}

	var buf bytes.Buffer
	if err := SeriesCSV(&buf, "visit", []stats.Series{a, b}); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 { // header + 2 rows
		t.Fatalf("CSV rows = %d", len(records))
	}
	if records[0][1] != "tctp" || records[0][2] != "chb" {
		t.Fatalf("CSV header = %v", records[0])
	}
	if records[2][2] != "" {
		t.Fatalf("short series not padded: %v", records[2])
	}
}

func TestRenderSurfaceAndCSV(t *testing.T) {
	s := stats.NewSurface("sd", "targets", "mules", []float64{10, 20}, []float64{2, 4})
	s.Set(0, 0, 1.5)
	s.Set(1, 1, 9.25)
	out := RenderSurface(s)
	for _, want := range []string{"sd", "targets", "mules", "1.50", "9.25"} {
		if !strings.Contains(out, want) {
			t.Fatalf("surface render missing %q:\n%s", want, out)
		}
	}

	var buf bytes.Buffer
	if err := SurfaceCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 5 { // header + 4 cells
		t.Fatalf("CSV rows = %d", len(records))
	}
	if records[0][0] != "targets" || records[0][1] != "mules" {
		t.Fatalf("CSV header = %v", records[0])
	}
	// Long form: last record is (20, 4, 9.25).
	last := records[4]
	if last[0] != "20" || last[1] != "4" || !strings.HasPrefix(last[2], "9.25") {
		t.Fatalf("CSV last = %v", last)
	}
}

func TestResonanceShape(t *testing.T) {
	cfg := ResonanceConfig{
		Targets: 12,
		Mules:   []int{2},
		Weights: []int{2, 3},
		Horizon: 100_000,
	}
	r, err := Resonance(quick2(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Resonant cell (2 mules, weight 2) must have dramatically higher
	// VIP SD than the non-resonant (2 mules, weight 3) cell.
	resonant := r.SD.At(0, 0)
	clean := r.SD.At(0, 1)
	if resonant <= clean {
		t.Fatalf("resonant SD %.2f not above non-resonant %.2f", resonant, clean)
	}
	if r.String() == "" {
		t.Fatal("empty render")
	}
}
