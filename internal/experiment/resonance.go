package experiment

import (
	"fmt"

	"tctp/internal/core"
	"tctp/internal/patrol"
	"tctp/internal/stats"
	"tctp/internal/sweep"
)

// ResonanceConfig parameterizes E7 — a phenomenon this reproduction
// surfaced that the paper does not discuss: with k mules phase-spaced
// |P̄|/k apart and a weight-w VIP whose cycles the Balancing-Length
// policy has equalized (visits |P̄|/w apart), the VIP's visit times
// from different mules coincide whenever w is a multiple of k. The
// colliding visits produce zero-length intervals followed by long
// gaps, so the VIP's interval SD spikes exactly at the resonant
// weights — inverting Fig. 10's ordering for those cells.
type ResonanceConfig struct {
	Targets int     // default 20
	Mules   []int   // fleet sizes (default {1, 2, 3})
	Weights []int   // VIP weights (default {2, 3, 4, 5, 6})
	Horizon float64 // default 150 000 s
}

func (c ResonanceConfig) withDefaults() ResonanceConfig {
	if c.Targets == 0 {
		c.Targets = 20
	}
	if len(c.Mules) == 0 {
		c.Mules = []int{1, 2, 3}
	}
	if len(c.Weights) == 0 {
		c.Weights = []int{2, 3, 4, 5, 6}
	}
	if c.Horizon == 0 {
		c.Horizon = 150_000
	}
	return c
}

// ResonanceResult is the VIP-interval SD surface over fleet size ×
// weight under the Balancing-Length policy.
type ResonanceResult struct {
	SD *stats.Surface
}

// String renders the surface.
func (r *ResonanceResult) String() string {
	return RenderSurface(r.SD) +
		"expected: SD spikes where weight is a multiple of the fleet size\n" +
		"(balanced VIP visits coincide with the inter-mule phase offset).\n"
}

// Resonance runs E7: one weight-w VIP, Balancing-Length W-TCTP, fleet
// size swept against w; the metric is the VIP's own interval SD.
func Resonance(p Params, cfg ResonanceConfig) (*ResonanceResult, error) {
	cfg = cfg.withDefaults()
	spec := p.spec("resonance")
	spec.Algorithms = []sweep.Variant{
		sweep.Algo("Balancing", patrol.Planned(&core.WTCTP{Policy: core.BalancingLength})),
	}
	spec.Targets = []int{cfg.Targets}
	spec.Mules = cfg.Mules
	spec.VIPs = []int{1}
	spec.VIPWeights = cfg.Weights
	spec.Horizons = []float64{cfg.Horizon}
	spec.Metrics = []sweep.Metric{
		{Name: "vip_sd", Fn: func(e sweep.Env) float64 {
			vip := e.Scenario.VIPs()[0]
			return e.Result.Recorder.SDAfter(vip, e.Warm())
		}},
	}

	res, err := p.run(spec)
	if err != nil {
		return nil, fmt.Errorf("resonance: %w", err)
	}
	out := &ResonanceResult{
		SD: stats.NewSurface("VIP interval SD, balancing policy (s)",
			"mules", "weight", toF(cfg.Mules), toF(cfg.Weights)),
	}
	for _, c := range res.Cells {
		i := indexOf(cfg.Mules, c.Point.Mules)
		j := indexOf(cfg.Weights, c.Point.VIPWeight)
		out.SD.Set(i, j, c.Metric("vip_sd").Mean)
	}
	return out, nil
}
