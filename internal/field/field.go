// Package field models the deployment scenario: the monitoring field,
// the target points with their weights, the sink, the optional
// recharge station, and the data mules' initial locations. It also
// provides the scenario generators used by the experiments — uniform
// random placement (the paper's §5.1 simulation model) and the
// disconnected-cluster placement that motivates the paper's
// introduction (targets "distributed over several disconnected
// areas").
package field

import (
	"encoding/json"
	"fmt"

	"tctp/internal/geom"
	"tctp/internal/xrand"
)

// Target is a point of interest that must be visited periodically. The
// paper calls a target with Weight == 1 a Normal Target Point (NTP)
// and a target with Weight > 1 a Very Important Point (VIP)
// (Definition 1); a VIP must be visited Weight times per traversal of
// the weighted patrolling path.
type Target struct {
	ID     int        `json:"id"`
	Pos    geom.Point `json:"pos"`
	Weight int        `json:"weight"`
}

// IsVIP reports whether the target is a Very Important Point.
func (t Target) IsVIP() bool { return t.Weight > 1 }

// Scenario is a complete problem instance.
type Scenario struct {
	// Field is the monitoring region (the paper uses 800 m × 800 m).
	Field geom.Rect `json:"field"`
	// Targets are the points to patrol. The sink node is also treated
	// as a target point (§2.1) and appears in this slice at SinkID.
	Targets []Target `json:"targets"`
	// SinkID indexes the sink inside Targets.
	SinkID int `json:"sink_id"`
	// Recharge is the recharge station location; valid only when
	// HasRecharge is true. RW-TCTP treats it as an extra path stop.
	Recharge    geom.Point `json:"recharge"`
	HasRecharge bool       `json:"has_recharge"`
	// MuleStarts are the initial locations of the data mules; the
	// fleet size is len(MuleStarts).
	MuleStarts []geom.Point `json:"mule_starts"`
}

// NumTargets returns the number of targets (including the sink).
func (s *Scenario) NumTargets() int { return len(s.Targets) }

// NumMules returns the fleet size.
func (s *Scenario) NumMules() int { return len(s.MuleStarts) }

// Points returns the target positions indexed by target ID.
func (s *Scenario) Points() []geom.Point {
	out := make([]geom.Point, len(s.Targets))
	for i, t := range s.Targets {
		out[i] = t.Pos
	}
	return out
}

// Weights returns the target weights indexed by target ID.
func (s *Scenario) Weights() []int {
	out := make([]int, len(s.Targets))
	for i, t := range s.Targets {
		out[i] = t.Weight
	}
	return out
}

// VIPs returns the IDs of all targets with weight > 1.
func (s *Scenario) VIPs() []int {
	var out []int
	for i, t := range s.Targets {
		if t.IsVIP() {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks structural invariants: at least one target, sink in
// range, consistent IDs, positive weights, targets within the field.
func (s *Scenario) Validate() error {
	if len(s.Targets) == 0 {
		return fmt.Errorf("field: scenario has no targets")
	}
	if s.SinkID < 0 || s.SinkID >= len(s.Targets) {
		return fmt.Errorf("field: sink id %d out of range [0,%d)", s.SinkID, len(s.Targets))
	}
	for i, t := range s.Targets {
		if t.ID != i {
			return fmt.Errorf("field: target %d has id %d", i, t.ID)
		}
		if t.Weight < 1 {
			return fmt.Errorf("field: target %d has weight %d < 1", i, t.Weight)
		}
		if !s.Field.Contains(t.Pos) {
			return fmt.Errorf("field: target %d at %v outside field", i, t.Pos)
		}
	}
	if len(s.MuleStarts) == 0 {
		return fmt.Errorf("field: scenario has no data mules")
	}
	if s.HasRecharge && !s.Field.Contains(s.Recharge) {
		return fmt.Errorf("field: recharge station %v outside field", s.Recharge)
	}
	return nil
}

// MarshalJSON round-trips through the standard encoder; the method
// exists so the scenario format is an explicit, stable artifact.
func (s *Scenario) MarshalJSON() ([]byte, error) {
	type alias Scenario // drop methods to avoid recursion
	return json.Marshal((*alias)(s))
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (s *Scenario) UnmarshalJSON(b []byte) error {
	type alias Scenario
	return json.Unmarshal(b, (*alias)(s))
}

// Placement selects how targets are laid out by Generate.
type Placement int

// Supported target placements.
const (
	// Uniform scatters targets independently and uniformly over the
	// field — the paper's §5.1 model ("locations of targets are
	// randomly distributed over the monitoring region").
	Uniform Placement = iota
	// Clusters scatters targets inside several small disjoint discs —
	// the disconnected areas of the paper's motivating deployment.
	Clusters
	// Grid lays targets on a regular lattice; deterministic, used by
	// tests and examples.
	Grid
	// Corridor scatters targets inside a narrow horizontal band across
	// the field centre — the elongated deployments (roads, pipelines,
	// borders) that stretch a patrolling circuit into a line.
	Corridor
	// Hotspot concentrates most targets in one dense disc with the
	// remainder scattered uniformly — the clustered/hotspot layouts of
	// facility-location mule coordination (Hermelin et al.,
	// arXiv:1702.04142).
	Hotspot
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Clusters:
		return "clusters"
	case Grid:
		return "grid"
	case Corridor:
		return "corridor"
	case Hotspot:
		return "hotspot"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// ParsePlacement is the inverse of String.
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "clusters":
		return Clusters, nil
	case "grid":
		return Grid, nil
	case "corridor":
		return Corridor, nil
	case "hotspot":
		return Hotspot, nil
	default:
		return 0, fmt.Errorf("field: unknown placement %q (valid: %s)", s, PlacementNames)
	}
}

// PlacementNames lists the accepted ParsePlacement values, for help
// text and error messages.
const PlacementNames = "uniform, clusters, grid, corridor, hotspot"

// MarshalJSON encodes the placement by name.
func (p Placement) MarshalJSON() ([]byte, error) { return json.Marshal(p.String()) }

// UnmarshalJSON is the inverse of MarshalJSON.
func (p *Placement) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParsePlacement(s)
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// Config parameterizes Generate.
type Config struct {
	// Width and Height of the field in metres. Defaults: 800 × 800.
	Width, Height float64
	// NumTargets counts patrolled points excluding the sink.
	NumTargets int
	// NumMules is the fleet size.
	NumMules int
	// Placement selects the target layout.
	Placement Placement
	// NumClusters and ClusterRadius apply when Placement == Clusters.
	// Defaults: 4 clusters of radius 80 m.
	NumClusters   int
	ClusterRadius float64
	// MulesAtSink places every data mule at the sink initially (the
	// paper's "each DM will start from the sink node"); otherwise
	// mules start at uniform random field positions.
	MulesAtSink bool
	// WithRecharge adds a recharge station at the field centre.
	WithRecharge bool
}

func (c Config) withDefaults() Config {
	if c.Width == 0 {
		c.Width = 800
	}
	if c.Height == 0 {
		c.Height = 800
	}
	if c.NumClusters == 0 {
		c.NumClusters = 4
	}
	if c.ClusterRadius == 0 {
		c.ClusterRadius = 80
	}
	return c
}

// Generate builds a scenario from cfg using the deterministic source
// src. The sink is placed at the field centre and is target 0 with
// weight 1. Generated targets are IDs 1..NumTargets.
func Generate(cfg Config, src *xrand.Source) *Scenario {
	cfg = cfg.withDefaults()
	if cfg.NumTargets < 1 {
		panic(fmt.Sprintf("field: Generate with NumTargets=%d", cfg.NumTargets))
	}
	if cfg.NumMules < 1 {
		panic(fmt.Sprintf("field: Generate with NumMules=%d", cfg.NumMules))
	}

	rect := geom.NewRect(geom.Pt(0, 0), geom.Pt(cfg.Width, cfg.Height))
	s := &Scenario{Field: rect}

	sinkPos := rect.Center()
	s.Targets = append(s.Targets, Target{ID: 0, Pos: sinkPos, Weight: 1})
	s.SinkID = 0

	var positions []geom.Point
	switch cfg.Placement {
	case Uniform:
		positions = uniformPositions(cfg, src)
	case Clusters:
		positions = clusterPositions(cfg, src)
	case Grid:
		positions = gridPositions(cfg)
	case Corridor:
		positions = corridorPositions(cfg, src)
	case Hotspot:
		positions = hotspotPositions(cfg, src)
	default:
		panic(fmt.Sprintf("field: unknown placement %v", cfg.Placement))
	}
	for i, p := range positions {
		s.Targets = append(s.Targets, Target{ID: i + 1, Pos: p, Weight: 1})
	}

	s.MuleStarts = make([]geom.Point, cfg.NumMules)
	for i := range s.MuleStarts {
		if cfg.MulesAtSink {
			s.MuleStarts[i] = sinkPos
		} else {
			s.MuleStarts[i] = geom.Pt(src.Range(0, cfg.Width), src.Range(0, cfg.Height))
		}
	}

	if cfg.WithRecharge {
		s.HasRecharge = true
		s.Recharge = rect.Center().Add(geom.Vec{X: cfg.Width / 4, Y: 0})
	}
	return s
}

func uniformPositions(cfg Config, src *xrand.Source) []geom.Point {
	out := make([]geom.Point, cfg.NumTargets)
	for i := range out {
		out[i] = geom.Pt(src.Range(0, cfg.Width), src.Range(0, cfg.Height))
	}
	return out
}

func clusterPositions(cfg Config, src *xrand.Source) []geom.Point {
	// Cluster centres are kept ClusterRadius away from the border and
	// at least 2·radius+margin apart so the areas are genuinely
	// disconnected (farther apart than the 20 m communication range).
	const sep = 20.0 // paper's communication range, metres
	centres := make([]geom.Point, 0, cfg.NumClusters)
	for len(centres) < cfg.NumClusters {
		c := geom.Pt(
			src.Range(cfg.ClusterRadius, cfg.Width-cfg.ClusterRadius),
			src.Range(cfg.ClusterRadius, cfg.Height-cfg.ClusterRadius),
		)
		ok := true
		for _, prev := range centres {
			if c.Dist(prev) < 2*cfg.ClusterRadius+sep {
				ok = false
				break
			}
		}
		if ok {
			centres = append(centres, c)
		}
	}
	out := make([]geom.Point, cfg.NumTargets)
	for i := range out {
		centre := centres[i%len(centres)]
		// Rejection-sample a point inside the disc.
		for {
			p := geom.Pt(
				src.Range(centre.X-cfg.ClusterRadius, centre.X+cfg.ClusterRadius),
				src.Range(centre.Y-cfg.ClusterRadius, centre.Y+cfg.ClusterRadius),
			)
			if p.Dist(centre) <= cfg.ClusterRadius {
				out[i] = p
				break
			}
		}
	}
	return out
}

func gridPositions(cfg Config) []geom.Point {
	out := make([]geom.Point, 0, cfg.NumTargets)
	cols := 1
	for cols*cols < cfg.NumTargets {
		cols++
	}
	rows := (cfg.NumTargets + cols - 1) / cols
	for r := 0; r < rows && len(out) < cfg.NumTargets; r++ {
		for c := 0; c < cols && len(out) < cfg.NumTargets; c++ {
			x := cfg.Width * (float64(c) + 0.5) / float64(cols)
			y := cfg.Height * (float64(r) + 0.5) / float64(rows)
			out = append(out, geom.Pt(x, y))
		}
	}
	return out
}

// corridorPositions scatters targets uniformly inside a horizontal
// band one sixth of the field tall, centred vertically.
func corridorPositions(cfg Config, src *xrand.Source) []geom.Point {
	half := cfg.Height / 12
	out := make([]geom.Point, cfg.NumTargets)
	for i := range out {
		out[i] = geom.Pt(
			src.Range(0, cfg.Width),
			src.Range(cfg.Height/2-half, cfg.Height/2+half),
		)
	}
	return out
}

// hotspotPositions places 70% of the targets inside a dense disc in
// the upper-right quadrant and the rest uniformly over the field.
func hotspotPositions(cfg Config, src *xrand.Source) []geom.Point {
	centre := geom.Pt(0.75*cfg.Width, 0.75*cfg.Height)
	radius := cfg.Width / 10
	if r := cfg.Height / 10; r < radius {
		radius = r
	}
	hot := (cfg.NumTargets*7 + 9) / 10
	out := make([]geom.Point, cfg.NumTargets)
	for i := range out {
		if i < hot {
			// Rejection-sample a point inside the hotspot disc.
			for {
				p := geom.Pt(
					src.Range(centre.X-radius, centre.X+radius),
					src.Range(centre.Y-radius, centre.Y+radius),
				)
				if p.Dist(centre) <= radius {
					out[i] = p
					break
				}
			}
		} else {
			out[i] = geom.Pt(src.Range(0, cfg.Width), src.Range(0, cfg.Height))
		}
	}
	return out
}

// AssignVIPs upgrades count randomly chosen non-sink targets to weight
// w. Existing VIPs are reset to weight 1 first, so the call is
// idempotent with respect to the VIP population. It panics if count
// exceeds the number of non-sink targets or w < 2.
func (s *Scenario) AssignVIPs(src *xrand.Source, count, w int) {
	if w < 2 {
		panic(fmt.Sprintf("field: AssignVIPs with weight %d < 2", w))
	}
	var candidates []int
	for i := range s.Targets {
		s.Targets[i].Weight = 1
		if i != s.SinkID {
			candidates = append(candidates, i)
		}
	}
	if count > len(candidates) {
		panic(fmt.Sprintf("field: AssignVIPs count %d > %d non-sink targets", count, len(candidates)))
	}
	src.ShuffleInts(candidates)
	for _, id := range candidates[:count] {
		s.Targets[id].Weight = w
	}
}

// Clone returns a deep copy of the scenario.
func (s *Scenario) Clone() *Scenario {
	out := *s
	out.Targets = make([]Target, len(s.Targets))
	copy(out.Targets, s.Targets)
	out.MuleStarts = make([]geom.Point, len(s.MuleStarts))
	copy(out.MuleStarts, s.MuleStarts)
	return &out
}
