package field

import (
	"encoding/json"
	"testing"
	"testing/quick"

	"tctp/internal/geom"
	"tctp/internal/xrand"
)

func baseCfg() Config {
	return Config{NumTargets: 20, NumMules: 4, Placement: Uniform}
}

func TestGenerateUniform(t *testing.T) {
	s := Generate(baseCfg(), xrand.New(1))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumTargets() != 21 { // 20 + sink
		t.Fatalf("NumTargets = %d", s.NumTargets())
	}
	if s.NumMules() != 4 {
		t.Fatalf("NumMules = %d", s.NumMules())
	}
	if s.SinkID != 0 {
		t.Fatalf("SinkID = %d", s.SinkID)
	}
	if !s.Targets[0].Pos.Eq(geom.Pt(400, 400)) {
		t.Fatalf("sink at %v, want field centre", s.Targets[0].Pos)
	}
	if s.HasRecharge {
		t.Fatal("unexpected recharge station")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(baseCfg(), xrand.New(42))
	b := Generate(baseCfg(), xrand.New(42))
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			t.Fatalf("target %d differs across identical seeds", i)
		}
	}
	c := Generate(baseCfg(), xrand.New(43))
	same := true
	for i := range a.Targets {
		if a.Targets[i] != c.Targets[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical scenarios")
	}
}

func TestGenerateClustersDisconnected(t *testing.T) {
	cfg := baseCfg()
	cfg.Placement = Clusters
	cfg.NumClusters = 3
	cfg.ClusterRadius = 60
	s := Generate(cfg, xrand.New(7))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every generated (non-sink) target must be within ClusterRadius
	// of at least one cluster mate and the clusters must be separated:
	// check that targets split into groups with inter-group distance
	// greater than the 20 m communication range.
	pts := s.Points()[1:]
	// Union-find style grouping by 2*radius proximity.
	group := make([]int, len(pts))
	for i := range group {
		group[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if group[x] != x {
			group[x] = find(group[x])
		}
		return group[x]
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist(pts[j]) <= 2*cfg.ClusterRadius {
				group[find(i)] = find(j)
			}
		}
	}
	roots := map[int]bool{}
	for i := range pts {
		roots[find(i)] = true
	}
	if len(roots) < 2 {
		t.Fatalf("expected ≥2 disconnected groups, got %d", len(roots))
	}
}

func TestGenerateGrid(t *testing.T) {
	cfg := baseCfg()
	cfg.Placement = Grid
	cfg.NumTargets = 9
	s := Generate(cfg, xrand.New(1))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumTargets() != 10 {
		t.Fatalf("NumTargets = %d", s.NumTargets())
	}
	// Grid is deterministic: regenerating yields identical layout
	// even with a different seed.
	s2 := Generate(cfg, xrand.New(999))
	for i := range s.Targets {
		if s.Targets[i] != s2.Targets[i] {
			t.Fatal("grid layout depends on seed")
		}
	}
}

func TestMulesAtSink(t *testing.T) {
	cfg := baseCfg()
	cfg.MulesAtSink = true
	s := Generate(cfg, xrand.New(3))
	for i, m := range s.MuleStarts {
		if !m.Eq(s.Targets[s.SinkID].Pos) {
			t.Fatalf("mule %d at %v, want sink", i, m)
		}
	}
}

func TestWithRecharge(t *testing.T) {
	cfg := baseCfg()
	cfg.WithRecharge = true
	s := Generate(cfg, xrand.New(3))
	if !s.HasRecharge {
		t.Fatal("recharge station missing")
	}
	if !s.Field.Contains(s.Recharge) {
		t.Fatalf("recharge station %v outside field", s.Recharge)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratePanics(t *testing.T) {
	cases := []Config{
		{NumTargets: 0, NumMules: 1},
		{NumTargets: 5, NumMules: 0},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			Generate(cfg, xrand.New(1))
		}()
	}
}

func TestAssignVIPs(t *testing.T) {
	s := Generate(baseCfg(), xrand.New(5))
	s.AssignVIPs(xrand.New(6), 3, 4)
	vips := s.VIPs()
	if len(vips) != 3 {
		t.Fatalf("VIP count = %d", len(vips))
	}
	for _, id := range vips {
		if id == s.SinkID {
			t.Fatal("sink became a VIP")
		}
		if s.Targets[id].Weight != 4 {
			t.Fatalf("VIP %d weight = %d", id, s.Targets[id].Weight)
		}
	}
	// Idempotent re-assignment resets previous VIPs.
	s.AssignVIPs(xrand.New(7), 1, 2)
	if got := len(s.VIPs()); got != 1 {
		t.Fatalf("after reassignment VIP count = %d", got)
	}
}

func TestAssignVIPsPanics(t *testing.T) {
	s := Generate(baseCfg(), xrand.New(5))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("weight 1 accepted")
			}
		}()
		s.AssignVIPs(xrand.New(1), 1, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("oversized count accepted")
			}
		}()
		s.AssignVIPs(xrand.New(1), 100, 2)
	}()
}

func TestWeightsAndPoints(t *testing.T) {
	s := Generate(baseCfg(), xrand.New(8))
	s.AssignVIPs(xrand.New(9), 2, 3)
	w := s.Weights()
	pts := s.Points()
	if len(w) != s.NumTargets() || len(pts) != s.NumTargets() {
		t.Fatal("length mismatch")
	}
	for i, target := range s.Targets {
		if w[i] != target.Weight || !pts[i].Eq(target.Pos) {
			t.Fatalf("index %d mismatch", i)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func() *Scenario { return Generate(baseCfg(), xrand.New(10)) }

	s := mk()
	s.SinkID = 99
	if s.Validate() == nil {
		t.Fatal("bad sink accepted")
	}

	s = mk()
	s.Targets[3].Weight = 0
	if s.Validate() == nil {
		t.Fatal("zero weight accepted")
	}

	s = mk()
	s.Targets[3].ID = 7
	if s.Validate() == nil {
		t.Fatal("inconsistent id accepted")
	}

	s = mk()
	s.Targets[3].Pos = geom.Pt(-50, 0)
	if s.Validate() == nil {
		t.Fatal("out-of-field target accepted")
	}

	s = mk()
	s.MuleStarts = nil
	if s.Validate() == nil {
		t.Fatal("empty fleet accepted")
	}

	s = mk()
	s.Targets = nil
	if s.Validate() == nil {
		t.Fatal("empty targets accepted")
	}

	s = mk()
	s.HasRecharge = true
	s.Recharge = geom.Pt(-1, -1)
	if s.Validate() == nil {
		t.Fatal("out-of-field recharge accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	cfg := baseCfg()
	cfg.WithRecharge = true
	s := Generate(cfg, xrand.New(11))
	s.AssignVIPs(xrand.New(12), 2, 5)

	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Scenario
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.NumTargets() != s.NumTargets() || back.NumMules() != s.NumMules() {
		t.Fatal("sizes changed in round trip")
	}
	for i := range s.Targets {
		if s.Targets[i] != back.Targets[i] {
			t.Fatalf("target %d changed in round trip", i)
		}
	}
	if back.Recharge != s.Recharge || back.HasRecharge != s.HasRecharge {
		t.Fatal("recharge changed in round trip")
	}
}

func TestClone(t *testing.T) {
	s := Generate(baseCfg(), xrand.New(13))
	c := s.Clone()
	c.Targets[1].Weight = 9
	c.MuleStarts[0] = geom.Pt(-1, -1)
	if s.Targets[1].Weight == 9 {
		t.Fatal("Clone shares target slice")
	}
	if s.MuleStarts[0].Eq(geom.Pt(-1, -1)) {
		t.Fatal("Clone shares mule slice")
	}
}

func TestPlacementString(t *testing.T) {
	for _, p := range []Placement{Uniform, Clusters, Grid, Corridor, Hotspot, Placement(9)} {
		if p.String() == "" {
			t.Fatal("empty placement name")
		}
	}
	// ParsePlacement inverts String for every real placement.
	for _, p := range []Placement{Uniform, Clusters, Grid, Corridor, Hotspot} {
		got, err := ParsePlacement(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePlacement(%q) = %v, %v", p.String(), got, err)
		}
	}
}

func TestGenerateCorridor(t *testing.T) {
	cfg := baseCfg()
	cfg.Placement = Corridor
	s := Generate(cfg, xrand.New(5))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every non-sink target sits inside the central band.
	half := cfg.Height / 12
	if cfg.Height == 0 {
		half = 800.0 / 12
	}
	mid := 400.0
	for _, tg := range s.Targets[1:] {
		if tg.Pos.Y < mid-half-1e-9 || tg.Pos.Y > mid+half+1e-9 {
			t.Fatalf("target %d at y=%v outside corridor band", tg.ID, tg.Pos.Y)
		}
	}
}

func TestGenerateHotspot(t *testing.T) {
	cfg := baseCfg()
	cfg.Placement = Hotspot
	cfg.NumTargets = 30
	s := Generate(cfg, xrand.New(5))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// At least 70% of the targets lie inside the hotspot disc.
	centre := geom.Pt(600, 600)
	inside := 0
	for _, tg := range s.Targets[1:] {
		if tg.Pos.Dist(centre) <= 80+1e-9 {
			inside++
		}
	}
	if inside < 21 {
		t.Fatalf("only %d/30 targets in the hotspot", inside)
	}
}

// Property: every generated target lies inside the field for arbitrary
// sizes and counts.
func TestGenerateInFieldProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw%50) + 1
		m := int(mRaw%8) + 1
		cfg := Config{NumTargets: n, NumMules: m, Placement: Uniform}
		s := Generate(cfg, xrand.New(seed))
		if s.Validate() != nil {
			return false
		}
		for _, mule := range s.MuleStarts {
			if !s.Field.Contains(mule) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
