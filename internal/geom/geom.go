// Package geom provides the planar geometry primitives used throughout
// the patrolling stack: points, vectors, distances, orientation tests,
// the counterclockwise included angle needed by W-TCTP's patrolling
// rule (§3.2 of the paper), and arc-length parameterization of
// polylines (needed to place equally spaced start points on a circuit,
// §2.2-B).
//
// All coordinates are in metres, matching the paper's 800 m × 800 m
// field.
package geom

import (
	"fmt"
	"math"
)

// Eps is the tolerance used for geometric comparisons. Coordinates in
// this codebase are metres in an 800 m field, so 1e-9 is far below any
// physically meaningful distance while comfortably above float64 noise
// from the chains of additions we perform.
const Eps = 1e-9

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Add returns p translated by the vector v.
func (p Point) Add(v Vec) Point { return Point{p.X + v.X, p.Y + v.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vec { return Vec{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It is
// cheaper than Dist and sufficient for comparisons.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Eq reports whether p and q coincide within Eps.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// Lerp returns the point a fraction t of the way from p to q.
// t=0 yields p, t=1 yields q; t outside [0,1] extrapolates.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Vec is a displacement in the plane.
type Vec struct {
	X, Y float64
}

// Len returns the Euclidean length of v.
func (v Vec) Len() float64 { return math.Hypot(v.X, v.Y) }

// Len2 returns the squared length of v.
func (v Vec) Len2() float64 { return v.X*v.X + v.Y*v.Y }

// Dot returns the dot product of v and w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z-component of the 3-D cross product of v and w.
// It is positive when w is counterclockwise from v.
func (v Vec) Cross(w Vec) float64 { return v.X*w.Y - v.Y*w.X }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s} }

// Neg returns -v.
func (v Vec) Neg() Vec { return Vec{-v.X, -v.Y} }

// Unit returns v normalized to length 1. The zero vector is returned
// unchanged.
func (v Vec) Unit() Vec {
	l := v.Len()
	if l == 0 {
		return v
	}
	return Vec{v.X / l, v.Y / l}
}

// Angle returns the polar angle of v in (-π, π].
func (v Vec) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Orientation classifies the turn p→q→r.
type Orientation int

// Turn directions returned by Orient.
const (
	Clockwise        Orientation = -1
	Collinear        Orientation = 0
	Counterclockwise Orientation = 1
)

// Orient returns the orientation of the ordered triple (p, q, r):
// Counterclockwise when r lies to the left of the directed line p→q.
func Orient(p, q, r Point) Orientation {
	c := q.Sub(p).Cross(r.Sub(p))
	switch {
	case c > Eps:
		return Counterclockwise
	case c < -Eps:
		return Clockwise
	default:
		return Collinear
	}
}

// CCWAngle returns the counterclockwise angle in [0, 2π) required to
// rotate vector from onto vector to. This is the "included angle ...
// in the counterclockwise direction" of the paper's patrolling rule: a
// data mule arriving at a VIP along direction d continues along the
// incident edge whose direction minimizes CCWAngle(d.Neg(), edge)
// measured counterclockwise. Zero vectors yield 0.
func CCWAngle(from, to Vec) float64 {
	a := math.Atan2(from.Cross(to), from.Dot(to))
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// IncludedAngle returns the unsigned angle in [0, π] between v and w.
func IncludedAngle(v, w Vec) float64 {
	lv, lw := v.Len(), w.Len()
	if lv == 0 || lw == 0 {
		return 0
	}
	c := v.Dot(w) / (lv * lw)
	c = math.Max(-1, math.Min(1, c))
	return math.Acos(c)
}

// Segment is a straight line segment between two points.
type Segment struct {
	A, B Point
}

// Len returns the length of the segment.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Midpoint returns the midpoint of the segment.
func (s Segment) Midpoint() Point { return s.A.Lerp(s.B, 0.5) }

// At returns the point a fraction t along the segment from A to B.
func (s Segment) At(t float64) Point { return s.A.Lerp(s.B, t) }

// DistToPoint returns the minimum distance from point p to the
// segment.
func (s Segment) DistToPoint(p Point) float64 {
	ab := s.B.Sub(s.A)
	l2 := ab.Len2()
	if l2 == 0 {
		return p.Dist(s.A)
	}
	t := p.Sub(s.A).Dot(ab) / l2
	t = math.Max(0, math.Min(1, t))
	return p.Dist(s.A.Add(ab.Scale(t)))
}

// Intersects reports whether segments s and t share at least one
// point (including touching at endpoints or overlapping collinear
// segments). Used by the tour tests: a 2-opt-optimal Euclidean tour
// has no two properly crossing edges.
func (s Segment) Intersects(t Segment) bool {
	d1 := Orient(t.A, t.B, s.A)
	d2 := Orient(t.A, t.B, s.B)
	d3 := Orient(s.A, s.B, t.A)
	d4 := Orient(s.A, s.B, t.B)
	if d1 != d2 && d3 != d4 {
		return true
	}
	// Collinear touching cases.
	onSeg := func(seg Segment, p Point) bool {
		return Orient(seg.A, seg.B, p) == Collinear &&
			p.X >= math.Min(seg.A.X, seg.B.X)-Eps && p.X <= math.Max(seg.A.X, seg.B.X)+Eps &&
			p.Y >= math.Min(seg.A.Y, seg.B.Y)-Eps && p.Y <= math.Max(seg.A.Y, seg.B.Y)+Eps
	}
	return onSeg(t, s.A) || onSeg(t, s.B) || onSeg(s, t.A) || onSeg(s, t.B)
}

// ProperlyIntersects reports whether the segments cross at a single
// interior point of both (endpoint contact and collinear overlap do
// not count).
func (s Segment) ProperlyIntersects(t Segment) bool {
	d1 := Orient(t.A, t.B, s.A)
	d2 := Orient(t.A, t.B, s.B)
	d3 := Orient(s.A, s.B, t.A)
	d4 := Orient(s.A, s.B, t.B)
	return d1 != Collinear && d2 != Collinear && d3 != Collinear && d4 != Collinear &&
		d1 != d2 && d3 != d4
}

// DetourCost returns the extra length incurred by routing the edge
// (a, b) through via instead of directly: |a via| + |via b| − |a b|.
// This is the quantity minimized by the paper's Shortest-Length Policy
// (Exp. 1) and by the WRP break-edge selection (Exp. 3). It is always
// ≥ 0 by the triangle inequality.
func DetourCost(a, b, via Point) float64 {
	return a.Dist(via) + via.Dist(b) - a.Dist(b)
}

// Rect is an axis-aligned rectangle. Min is the lower-left corner and
// Max the upper-right corner.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanned by two opposite corners given
// in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X-Eps && p.X <= r.Max.X+Eps &&
		p.Y >= r.Min.Y-Eps && p.Y <= r.Max.Y+Eps
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Center returns the centre point of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Bounds returns the bounding box of the points. It panics on an empty
// slice.
func Bounds(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: Bounds of empty point set")
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}

// Centroid returns the arithmetic mean of the points. It panics on an
// empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		panic("geom: Centroid of empty point set")
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	n := float64(len(pts))
	return Point{sx / n, sy / n}
}

// PathLen returns the total length of the open polyline through pts.
func PathLen(pts []Point) float64 {
	total := 0.0
	for i := 1; i < len(pts); i++ {
		total += pts[i-1].Dist(pts[i])
	}
	return total
}

// CycleLen returns the total length of the closed polyline through
// pts (including the closing edge from the last point back to the
// first).
func CycleLen(pts []Point) float64 {
	if len(pts) < 2 {
		return 0
	}
	return PathLen(pts) + pts[len(pts)-1].Dist(pts[0])
}

// PointAlong returns the point at arc-length distance d along the open
// polyline pts, together with the index of the segment containing it.
// d is clamped to [0, PathLen(pts)]. It panics on an empty polyline.
func PointAlong(pts []Point, d float64) (Point, int) {
	if len(pts) == 0 {
		panic("geom: PointAlong on empty polyline")
	}
	if d <= 0 || len(pts) == 1 {
		return pts[0], 0
	}
	for i := 1; i < len(pts); i++ {
		seg := pts[i-1].Dist(pts[i])
		if d <= seg+Eps {
			if seg == 0 {
				return pts[i], i - 1
			}
			return pts[i-1].Lerp(pts[i], d/seg), i - 1
		}
		d -= seg
	}
	return pts[len(pts)-1], len(pts) - 2
}

// Northmost returns the index of the point with the largest Y
// coordinate; ties are broken by the smaller X, then by the smaller
// index, so the result is deterministic. The paper's B-TCTP patrolling
// strategy anchors the start-point partition at "the most north target
// point" (§2.2-B). It panics on an empty slice.
func Northmost(pts []Point) int {
	if len(pts) == 0 {
		panic("geom: Northmost of empty point set")
	}
	best := 0
	for i, p := range pts[1:] {
		idx := i + 1
		b := pts[best]
		if p.Y > b.Y+Eps || (math.Abs(p.Y-b.Y) <= Eps && p.X < b.X-Eps) {
			best = idx
		}
	}
	return best
}
