package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDist(t *testing.T) {
	if d := Pt(0, 0).Dist(Pt(3, 4)); !almost(d, 5) {
		t.Fatalf("Dist = %v, want 5", d)
	}
	if d := Pt(1, 1).Dist(Pt(1, 1)); !almost(d, 0) {
		t.Fatalf("Dist to self = %v", d)
	}
}

func TestDist2MatchesDist(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		// Keep magnitudes sane to avoid overflow in the square.
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		a := Pt(clamp(ax), clamp(ay))
		b := Pt(clamp(bx), clamp(by))
		d := a.Dist(b)
		return math.Abs(d*d-a.Dist2(b)) <= 1e-6*(1+d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSub(t *testing.T) {
	p := Pt(2, 3)
	v := Vec{1, -1}
	if got := p.Add(v); !got.Eq(Pt(3, 2)) {
		t.Fatalf("Add = %v", got)
	}
	if got := Pt(3, 2).Sub(p); got != (Vec{1, -1}) {
		t.Fatalf("Sub = %v", got)
	}
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := a.Lerp(b, 0.5); !got.Eq(Pt(5, 10)) {
		t.Fatalf("Lerp(0.5) = %v", got)
	}
	if got := a.Lerp(b, 0); !got.Eq(a) {
		t.Fatalf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); !got.Eq(b) {
		t.Fatalf("Lerp(1) = %v", got)
	}
}

func TestVecOps(t *testing.T) {
	v := Vec{3, 4}
	if !almost(v.Len(), 5) {
		t.Fatalf("Len = %v", v.Len())
	}
	if !almost(v.Len2(), 25) {
		t.Fatalf("Len2 = %v", v.Len2())
	}
	if !almost(v.Dot(Vec{1, 0}), 3) {
		t.Fatalf("Dot = %v", v.Dot(Vec{1, 0}))
	}
	if !almost(Vec{1, 0}.Cross(Vec{0, 1}), 1) {
		t.Fatal("Cross of x,y should be +1")
	}
	u := v.Unit()
	if !almost(u.Len(), 1) {
		t.Fatalf("Unit length = %v", u.Len())
	}
	if z := (Vec{0, 0}).Unit(); z != (Vec{0, 0}) {
		t.Fatalf("Unit of zero = %v", z)
	}
	if n := v.Neg(); n != (Vec{-3, -4}) {
		t.Fatalf("Neg = %v", n)
	}
	if s := v.Scale(2); s != (Vec{6, 8}) {
		t.Fatalf("Scale = %v", s)
	}
}

func TestOrient(t *testing.T) {
	if o := Orient(Pt(0, 0), Pt(1, 0), Pt(1, 1)); o != Counterclockwise {
		t.Fatalf("left turn misclassified: %v", o)
	}
	if o := Orient(Pt(0, 0), Pt(1, 0), Pt(1, -1)); o != Clockwise {
		t.Fatalf("right turn misclassified: %v", o)
	}
	if o := Orient(Pt(0, 0), Pt(1, 0), Pt(2, 0)); o != Collinear {
		t.Fatalf("collinear misclassified: %v", o)
	}
}

func TestCCWAngleQuadrants(t *testing.T) {
	x := Vec{1, 0}
	cases := []struct {
		to   Vec
		want float64
	}{
		{Vec{1, 0}, 0},
		{Vec{0, 1}, math.Pi / 2},
		{Vec{-1, 0}, math.Pi},
		{Vec{0, -1}, 3 * math.Pi / 2},
	}
	for _, c := range cases {
		if got := CCWAngle(x, c.to); !almost(got, c.want) {
			t.Errorf("CCWAngle(x, %v) = %v, want %v", c.to, got, c.want)
		}
	}
}

func TestCCWAngleAntisymmetry(t *testing.T) {
	f := func(a, b float64) bool {
		v := Vec{math.Cos(a), math.Sin(a)}
		w := Vec{math.Cos(b), math.Sin(b)}
		s := CCWAngle(v, w) + CCWAngle(w, v)
		// The two rotations sum to 2π unless the vectors are
		// parallel (both angles 0) or anti-parallel.
		return almost(s, 2*math.Pi) || almost(s, 0) || almost(s, 2*math.Pi-0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIncludedAngle(t *testing.T) {
	if a := IncludedAngle(Vec{1, 0}, Vec{0, 1}); !almost(a, math.Pi/2) {
		t.Fatalf("IncludedAngle = %v", a)
	}
	if a := IncludedAngle(Vec{1, 0}, Vec{-2, 0}); !almost(a, math.Pi) {
		t.Fatalf("IncludedAngle opposite = %v", a)
	}
	if a := IncludedAngle(Vec{0, 0}, Vec{1, 1}); a != 0 {
		t.Fatalf("IncludedAngle with zero vec = %v", a)
	}
}

func TestSegment(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(10, 0)}
	if !almost(s.Len(), 10) {
		t.Fatalf("Len = %v", s.Len())
	}
	if m := s.Midpoint(); !m.Eq(Pt(5, 0)) {
		t.Fatalf("Midpoint = %v", m)
	}
	if p := s.At(0.25); !p.Eq(Pt(2.5, 0)) {
		t.Fatalf("At = %v", p)
	}
	if d := s.DistToPoint(Pt(5, 3)); !almost(d, 3) {
		t.Fatalf("DistToPoint interior = %v", d)
	}
	if d := s.DistToPoint(Pt(-4, 3)); !almost(d, 5) {
		t.Fatalf("DistToPoint beyond A = %v", d)
	}
	deg := Segment{Pt(1, 1), Pt(1, 1)}
	if d := deg.DistToPoint(Pt(4, 5)); !almost(d, 5) {
		t.Fatalf("DistToPoint degenerate = %v", d)
	}
}

func TestDetourCostNonNegative(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e4)
		}
		a := Pt(clamp(ax), clamp(ay))
		b := Pt(clamp(bx), clamp(by))
		c := Pt(clamp(cx), clamp(cy))
		return DetourCost(a, b, c) >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDetourCostOnSegmentIsZero(t *testing.T) {
	if d := DetourCost(Pt(0, 0), Pt(10, 0), Pt(4, 0)); !almost(d, 0) {
		t.Fatalf("collinear detour = %v", d)
	}
}

func TestRect(t *testing.T) {
	r := NewRect(Pt(5, 1), Pt(1, 5))
	if !r.Contains(Pt(3, 3)) {
		t.Fatal("Contains failed for interior point")
	}
	if !r.Contains(Pt(1, 1)) {
		t.Fatal("Contains failed for corner")
	}
	if r.Contains(Pt(0, 3)) {
		t.Fatal("Contains accepted exterior point")
	}
	if !almost(r.Width(), 4) || !almost(r.Height(), 4) {
		t.Fatalf("Width/Height = %v/%v", r.Width(), r.Height())
	}
	if c := r.Center(); !c.Eq(Pt(3, 3)) {
		t.Fatalf("Center = %v", c)
	}
}

func TestBounds(t *testing.T) {
	pts := []Point{Pt(3, 1), Pt(-1, 4), Pt(2, -2)}
	r := Bounds(pts)
	if !r.Min.Eq(Pt(-1, -2)) || !r.Max.Eq(Pt(3, 4)) {
		t.Fatalf("Bounds = %+v", r)
	}
}

func TestBoundsPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bounds(nil) did not panic")
		}
	}()
	Bounds(nil)
}

func TestCentroid(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if c := Centroid(pts); !c.Eq(Pt(1, 1)) {
		t.Fatalf("Centroid = %v", c)
	}
}

func TestPathAndCycleLen(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(3, 0), Pt(3, 4)}
	if l := PathLen(pts); !almost(l, 7) {
		t.Fatalf("PathLen = %v", l)
	}
	if l := CycleLen(pts); !almost(l, 12) {
		t.Fatalf("CycleLen = %v", l)
	}
	if l := CycleLen(pts[:1]); l != 0 {
		t.Fatalf("CycleLen single = %v", l)
	}
	if l := PathLen(nil); l != 0 {
		t.Fatalf("PathLen empty = %v", l)
	}
}

func TestPointAlong(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(10, 0), Pt(10, 10)}
	p, seg := PointAlong(pts, 5)
	if !p.Eq(Pt(5, 0)) || seg != 0 {
		t.Fatalf("PointAlong(5) = %v seg %d", p, seg)
	}
	p, seg = PointAlong(pts, 15)
	if !p.Eq(Pt(10, 5)) || seg != 1 {
		t.Fatalf("PointAlong(15) = %v seg %d", p, seg)
	}
	p, _ = PointAlong(pts, 0)
	if !p.Eq(Pt(0, 0)) {
		t.Fatalf("PointAlong(0) = %v", p)
	}
	p, _ = PointAlong(pts, 999)
	if !p.Eq(Pt(10, 10)) {
		t.Fatalf("PointAlong past end = %v", p)
	}
	p, _ = PointAlong(pts, -3)
	if !p.Eq(Pt(0, 0)) {
		t.Fatalf("PointAlong negative = %v", p)
	}
}

func TestPointAlongProperty(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(7, 0), Pt(7, 7), Pt(0, 7)}
	total := PathLen(pts)
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		d := math.Mod(math.Abs(raw), total)
		p, _ := PointAlong(pts, d)
		// The returned point must lie on the polyline: its distance
		// from the start measured along the line equals d.
		var acc float64
		for i := 1; i < len(pts); i++ {
			seg := Segment{pts[i-1], pts[i]}
			if seg.DistToPoint(p) < 1e-7 {
				got := acc + pts[i-1].Dist(p)
				if math.Abs(got-d) < 1e-6 {
					return true
				}
			}
			acc += seg.Len()
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNorthmost(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(5, 9), Pt(2, 9), Pt(1, 3)}
	// Two points share max Y; the smaller X (index 2) wins.
	if got := Northmost(pts); got != 2 {
		t.Fatalf("Northmost = %d, want 2", got)
	}
	if got := Northmost([]Point{Pt(1, 1)}); got != 0 {
		t.Fatalf("Northmost singleton = %d", got)
	}
}

func TestPointString(t *testing.T) {
	if s := Pt(1, 2).String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestSegmentIntersects(t *testing.T) {
	x := Segment{Pt(0, 0), Pt(10, 10)}
	cross := Segment{Pt(0, 10), Pt(10, 0)}
	if !x.Intersects(cross) || !cross.Intersects(x) {
		t.Fatal("crossing segments not detected")
	}
	if !x.ProperlyIntersects(cross) {
		t.Fatal("proper crossing not detected")
	}
	apart := Segment{Pt(20, 20), Pt(30, 30)}
	if x.Intersects(apart) {
		t.Fatal("disjoint segments reported intersecting")
	}
	if x.ProperlyIntersects(apart) {
		t.Fatal("disjoint segments reported properly intersecting")
	}
}

func TestSegmentTouchingEndpoints(t *testing.T) {
	a := Segment{Pt(0, 0), Pt(10, 0)}
	b := Segment{Pt(10, 0), Pt(20, 5)} // shares endpoint (10,0)
	if !a.Intersects(b) {
		t.Fatal("endpoint contact not detected by Intersects")
	}
	if a.ProperlyIntersects(b) {
		t.Fatal("endpoint contact wrongly counted as proper crossing")
	}
}

func TestSegmentCollinearOverlap(t *testing.T) {
	a := Segment{Pt(0, 0), Pt(10, 0)}
	b := Segment{Pt(5, 0), Pt(15, 0)}
	if !a.Intersects(b) {
		t.Fatal("collinear overlap not detected")
	}
	if a.ProperlyIntersects(b) {
		t.Fatal("collinear overlap counted as proper crossing")
	}
	c := Segment{Pt(11, 0), Pt(15, 0)}
	if a.Intersects(c) {
		t.Fatal("disjoint collinear segments reported intersecting")
	}
}

func TestSegmentTShape(t *testing.T) {
	// b's endpoint lies in a's interior: intersecting but not proper.
	a := Segment{Pt(0, 0), Pt(10, 0)}
	b := Segment{Pt(5, 0), Pt(5, 8)}
	if !a.Intersects(b) {
		t.Fatal("T contact not detected")
	}
	if a.ProperlyIntersects(b) {
		t.Fatal("T contact counted as proper crossing")
	}
}

func TestProperIntersectsSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy int8) bool {
		s := Segment{Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by))}
		u := Segment{Pt(float64(cx), float64(cy)), Pt(float64(dx), float64(dy))}
		return s.ProperlyIntersects(u) == u.ProperlyIntersects(s) &&
			s.Intersects(u) == u.Intersects(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
