// Package index provides a uniform-grid spatial hash over a fixed
// planar point set — the sub-quadratic geometry substrate behind the
// planners' hot paths (tour construction, k-means assignment, mule
// matching). The paper's experiments stop at a few hundred targets,
// where O(n²) scans are harmless; the 10⁴–10⁵-target regimes that the
// partitioned planners open up need Nearest/KNearest/Within queries in
// near-constant time per query.
//
// Every query breaks ties exactly like the brute-force scans it
// replaces: by (squared distance, ascending point index), with squared
// distances computed by the same geom.Point.Dist2. Replacing a linear
// scan that tracks the strict minimum with a Grid query is therefore
// bit-identical, which the planner equivalence tests pin.
//
// A Grid's query methods share internal scratch buffers, so a Grid is
// NOT safe for concurrent use. Planning code builds one Grid per Plan
// call (replications parallelize across independent plans, never
// within one), so this costs nothing in practice.
package index

import (
	"fmt"
	"math"

	"tctp/internal/geom"
)

// Grid is a uniform-grid spatial hash. Points are bucketed into square
// cells of equal edge length; queries scan outward ring by ring with
// exact rect-distance pruning, so they touch only the buckets that can
// still improve the answer.
type Grid struct {
	pts        []geom.Point
	cell       float64 // cell edge length (> 0)
	minX, minY float64
	cols, rows int

	// CSR bucket layout: the members of cell c are idx[start[c]:
	// start[c+1]], in ascending point-index order.
	start  []int32
	idx    []int32
	cellOf []int32 // point index → cell (for Remove)

	alive      []bool
	liveInCell []int32
	live       int

	// query scratch (see the package comment on concurrency)
	heap   []heapItem
	cursor []int32
}

type heapItem struct {
	d2 float64
	i  int32
}

// New builds a grid over pts with an automatic cell size (the bounding
// box edge divided by √n, clamping so the grid stays near one point
// per cell on uniform inputs). It panics on an empty point set.
func New(pts []geom.Point) *Grid {
	g := &Grid{}
	g.Rebuild(pts)
	return g
}

// Rebuild re-indexes the grid over a new point set, reusing the
// existing allocations where possible. Callers that build a fresh grid
// every iteration (k-means re-bucketing moving centres) amortize their
// bucket storage this way. The previous point set is forgotten;
// removed points are revived.
func (g *Grid) Rebuild(pts []geom.Point) {
	n := len(pts)
	if n == 0 {
		panic("index: Grid over an empty point set")
	}
	g.pts = pts
	b := geom.Bounds(pts)
	w, h := b.Width(), b.Height()
	extent := math.Max(w, h)
	side := int(math.Ceil(math.Sqrt(float64(n))))
	if side < 1 {
		side = 1
	}
	if extent <= 0 {
		// All points coincide: one bucket is exact and cheap.
		g.cell, g.cols, g.rows = 1, 1, 1
	} else {
		g.cell = extent / float64(side)
		g.cols = int(w/g.cell) + 1
		g.rows = int(h/g.cell) + 1
	}
	g.minX, g.minY = b.Min.X, b.Min.Y

	nc := g.cols * g.rows
	g.start = grow(g.start, nc+1)
	g.idx = grow(g.idx, n)
	g.cellOf = grow(g.cellOf, n)
	g.liveInCell = grow(g.liveInCell, nc)
	if cap(g.alive) < n {
		g.alive = make([]bool, n)
	} else {
		g.alive = g.alive[:n]
	}
	for i := range g.start {
		g.start[i] = 0
	}

	// Counting sort into CSR buckets keeps each bucket in ascending
	// point-index order without a comparison sort.
	for i, p := range pts {
		c := int32(g.cellAt(p))
		g.cellOf[i] = c
		g.start[c+1]++
	}
	for c := 0; c < nc; c++ {
		g.start[c+1] += g.start[c]
		g.liveInCell[c] = g.start[c+1] - g.start[c]
	}
	next := g.scratchCursor(nc)
	copy(next, g.start[:nc])
	for i := range pts {
		c := g.cellOf[i]
		g.idx[next[c]] = int32(i)
		next[c]++
		g.alive[i] = true
	}
	g.live = n
}

// scratchCursor returns a reusable int32 scratch slice of length n.
func (g *Grid) scratchCursor(n int) []int32 {
	if cap(g.cursor) < n {
		g.cursor = make([]int32, n)
	}
	return g.cursor[:n]
}

// Len returns the number of indexed points (alive or removed).
func (g *Grid) Len() int { return len(g.pts) }

// Live returns the number of points not yet removed.
func (g *Grid) Live() int { return g.live }

// Remove marks point i as deleted: it stops appearing in query
// results. Removing an already-removed point is a no-op.
func (g *Grid) Remove(i int) {
	if i < 0 || i >= len(g.pts) {
		panic(fmt.Sprintf("index: Remove(%d) of %d points", i, len(g.pts)))
	}
	if !g.alive[i] {
		return
	}
	g.alive[i] = false
	g.liveInCell[g.cellOf[i]]--
	g.live--
}

// cellAt maps a point to its bucket (clamped to the grid).
func (g *Grid) cellAt(p geom.Point) int {
	cx := int((p.X - g.minX) / g.cell)
	cy := int((p.Y - g.minY) / g.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// cellCoords returns the cell coordinates a query point's outward ring
// scan starts from, clamped to the grid. Queries may come from
// anywhere in the plane; clamping keeps the ring count bounded by the
// grid dimensions (a far-away query over a tiny grid would otherwise
// walk millions of empty rings), and the ring-distance bound in
// ringDist2 stays a valid lower bound for any anchor cell.
func (g *Grid) cellCoords(p geom.Point) (int, int) {
	cx := int(math.Floor((p.X - g.minX) / g.cell))
	cy := int(math.Floor((p.Y - g.minY) / g.cell))
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return cx, cy
}

// cellDist2 returns the squared distance from q to the closest point
// of cell (cx, cy) — 0 when q lies inside it.
func (g *Grid) cellDist2(q geom.Point, cx, cy int) float64 {
	x0 := g.minX + float64(cx)*g.cell
	y0 := g.minY + float64(cy)*g.cell
	dx, dy := 0.0, 0.0
	if q.X < x0 {
		dx = x0 - q.X
	} else if q.X > x0+g.cell {
		dx = q.X - (x0 + g.cell)
	}
	if q.Y < y0 {
		dy = y0 - q.Y
	} else if q.Y > y0+g.cell {
		dy = q.Y - (y0 + g.cell)
	}
	return dx*dx + dy*dy
}

// ringDist2 returns the squared distance from q to the nearest point
// any cell of Chebyshev ring r (around cell (cx, cy)) can contain; 0
// for r == 0.
func (g *Grid) ringDist2(q geom.Point, cx, cy, r int) float64 {
	if r <= 0 {
		return 0
	}
	// The ring's cells lie outside the block of cells with Chebyshev
	// radius r−1; the closest they come to q is q's distance to that
	// block's boundary.
	x0 := g.minX + float64(cx-(r-1))*g.cell
	x1 := g.minX + float64(cx+r)*g.cell
	y0 := g.minY + float64(cy-(r-1))*g.cell
	y1 := g.minY + float64(cy+r)*g.cell
	d := math.Min(math.Min(q.X-x0, x1-q.X), math.Min(q.Y-y0, y1-q.Y))
	if d < 0 {
		// q outside the block (query point off-grid): the ring can
		// contain q itself.
		return 0
	}
	return d * d
}

// eachRingCell invokes fn for every in-grid cell of Chebyshev ring r
// around (cx, cy), in a fixed deterministic order. fn's order never
// affects query results (ties always resolve by (d2, index)), but a
// fixed order keeps the scan cache-friendly.
func (g *Grid) eachRingCell(cx, cy, r int, fn func(cell, x, y int)) {
	if r == 0 {
		if cx >= 0 && cx < g.cols && cy >= 0 && cy < g.rows {
			fn(cy*g.cols+cx, cx, cy)
		}
		return
	}
	x0, x1 := cx-r, cx+r
	y0, y1 := cy-r, cy+r
	for y := y0; y <= y1; y++ {
		if y < 0 || y >= g.rows {
			continue
		}
		if y == y0 || y == y1 {
			for x := x0; x <= x1; x++ {
				if x >= 0 && x < g.cols {
					fn(y*g.cols+x, x, y)
				}
			}
			continue
		}
		if x0 >= 0 && x0 < g.cols {
			fn(y*g.cols+x0, x0, y)
		}
		if x1 >= 0 && x1 < g.cols && x1 != x0 {
			fn(y*g.cols+x1, x1, y)
		}
	}
}

// maxRing returns the largest ring radius that still intersects the
// grid from cell (cx, cy).
func (g *Grid) maxRing(cx, cy int) int {
	r := cx
	if c := g.cols - 1 - cx; c > r {
		r = c
	}
	if c := cy; c > r {
		r = c
	}
	if c := g.rows - 1 - cy; c > r {
		r = c
	}
	return r
}

// Nearest returns the live point closest to q and its squared
// distance, breaking exact-distance ties by the smaller index —
// bit-identical to a linear scan tracking the strict minimum of
// Dist2. It returns (-1, +Inf) when every point has been removed.
func (g *Grid) Nearest(q geom.Point) (int, float64) {
	best, bestD := -1, math.Inf(1)
	cx, cy := g.cellCoords(q)
	maxR := g.maxRing(cx, cy)
	for r := 0; ; r++ {
		if r > maxR {
			break
		}
		if best >= 0 && g.ringDist2(q, cx, cy, r) > bestD {
			break
		}
		g.eachRingCell(cx, cy, r, func(cell, x, y int) {
			if g.liveInCell[cell] == 0 {
				return
			}
			if best >= 0 && g.cellDist2(q, x, y) > bestD {
				return
			}
			for _, pi := range g.idx[g.start[cell]:g.start[cell+1]] {
				if !g.alive[pi] {
					continue
				}
				if d := q.Dist2(g.pts[pi]); d < bestD || (d == bestD && int(pi) < best) {
					best, bestD = int(pi), d
				}
			}
		})
	}
	return best, bestD
}

// KNearest appends the indices of the k live points nearest to q onto
// dst, ordered by ascending (squared distance, index), and returns the
// extended slice. Fewer than k indices are returned when fewer live
// points exist. The ordering and membership are exactly those of a
// full sort of the live points by (Dist2, index).
func (g *Grid) KNearest(q geom.Point, k int, dst []int) []int {
	if k <= 0 || g.live == 0 {
		return dst
	}
	if k > g.live {
		k = g.live
	}
	h := g.heap[:0]
	worse := func(a, b heapItem) bool {
		// a sorts after b: larger distance, ties by larger index.
		if a.d2 != b.d2 {
			return a.d2 > b.d2
		}
		return a.i > b.i
	}
	push := func(it heapItem) {
		h = append(h, it)
		for c := len(h) - 1; c > 0; {
			p := (c - 1) / 2
			if !worse(h[c], h[p]) {
				break
			}
			h[c], h[p] = h[p], h[c]
			c = p
		}
	}
	sift := func() {
		c := 0
		for {
			l, rr := 2*c+1, 2*c+2
			m := c
			if l < len(h) && worse(h[l], h[m]) {
				m = l
			}
			if rr < len(h) && worse(h[rr], h[m]) {
				m = rr
			}
			if m == c {
				break
			}
			h[c], h[m] = h[m], h[c]
			c = m
		}
	}
	consider := func(it heapItem) {
		if len(h) < k {
			push(it)
			return
		}
		if worse(h[0], it) {
			h[0] = it
			sift()
		}
	}

	cx, cy := g.cellCoords(q)
	maxR := g.maxRing(cx, cy)
	for r := 0; r <= maxR; r++ {
		if len(h) == k && g.ringDist2(q, cx, cy, r) > h[0].d2 {
			break
		}
		g.eachRingCell(cx, cy, r, func(cell, x, y int) {
			if g.liveInCell[cell] == 0 {
				return
			}
			if len(h) == k && g.cellDist2(q, x, y) > h[0].d2 {
				return
			}
			for _, pi := range g.idx[g.start[cell]:g.start[cell+1]] {
				if g.alive[pi] {
					consider(heapItem{q.Dist2(g.pts[pi]), pi})
				}
			}
		})
	}

	// Heap-extract into ascending order: pop the worst into the tail.
	g.heap = h // keep the grown scratch
	out := len(dst)
	for range h {
		dst = append(dst, 0)
	}
	for end := len(h); end > 0; end-- {
		dst[out+end-1] = int(h[0].i)
		h[0] = h[end-1]
		h = h[:end-1]
		sift()
	}
	return dst
}

// Within appends the indices of every live point within Euclidean
// distance r of q (inclusive) onto dst, ordered by ascending (squared
// distance, index), and returns the extended slice.
func (g *Grid) Within(q geom.Point, r float64, dst []int) []int {
	if r < 0 || g.live == 0 {
		return dst
	}
	r2 := r * r
	h := g.heap[:0]
	cx0, cy0 := g.cellCoords(q.Add(geom.Vec{X: -r, Y: -r}))
	cx1, cy1 := g.cellCoords(q.Add(geom.Vec{X: r, Y: r}))
	if cx0 < 0 {
		cx0 = 0
	}
	if cy0 < 0 {
		cy0 = 0
	}
	if cx1 >= g.cols {
		cx1 = g.cols - 1
	}
	if cy1 >= g.rows {
		cy1 = g.rows - 1
	}
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			cell := cy*g.cols + cx
			if g.liveInCell[cell] == 0 || g.cellDist2(q, cx, cy) > r2 {
				continue
			}
			for _, pi := range g.idx[g.start[cell]:g.start[cell+1]] {
				if !g.alive[pi] {
					continue
				}
				if d := q.Dist2(g.pts[pi]); d <= r2 {
					h = append(h, heapItem{d, pi})
				}
			}
		}
	}
	g.heap = h
	// Insertion sort by (d2, index): result sets are typically small,
	// and the comparison matches every other query's tie-break.
	for i := 1; i < len(h); i++ {
		for j := i; j > 0; j-- {
			if h[j].d2 < h[j-1].d2 || (h[j].d2 == h[j-1].d2 && h[j].i < h[j-1].i) {
				h[j], h[j-1] = h[j-1], h[j]
			} else {
				break
			}
		}
	}
	for _, it := range h {
		dst = append(dst, int(it.i))
	}
	return dst
}

// grow returns s resized to n, reusing capacity.
func grow(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
