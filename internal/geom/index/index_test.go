package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"tctp/internal/geom"
)

// bruteNearest is the reference the Grid must reproduce bit-for-bit:
// a linear scan tracking the strict minimum of Dist2 in ascending
// index order, exactly like the planners' pre-index hot loops.
func bruteNearest(pts []geom.Point, alive []bool, q geom.Point) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, p := range pts {
		if alive != nil && !alive[i] {
			continue
		}
		if d := q.Dist2(p); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

func bruteKNearest(pts []geom.Point, alive []bool, q geom.Point, k int) []int {
	type cand struct {
		d float64
		i int
	}
	var cs []cand
	for i, p := range pts {
		if alive != nil && !alive[i] {
			continue
		}
		cs = append(cs, cand{q.Dist2(p), i})
	}
	sort.Slice(cs, func(a, b int) bool {
		if cs[a].d != cs[b].d {
			return cs[a].d < cs[b].d
		}
		return cs[a].i < cs[b].i
	})
	if k > len(cs) {
		k = len(cs)
	}
	out := make([]int, 0, k)
	for _, c := range cs[:k] {
		out = append(out, c.i)
	}
	return out
}

func bruteWithin(pts []geom.Point, alive []bool, q geom.Point, r float64) []int {
	type cand struct {
		d float64
		i int
	}
	var cs []cand
	for i, p := range pts {
		if alive != nil && !alive[i] {
			continue
		}
		if d := q.Dist2(p); d <= r*r {
			cs = append(cs, cand{d, i})
		}
	}
	sort.Slice(cs, func(a, b int) bool {
		if cs[a].d != cs[b].d {
			return cs[a].d < cs[b].d
		}
		return cs[a].i < cs[b].i
	})
	out := make([]int, 0, len(cs))
	for _, c := range cs {
		out = append(out, c.i)
	}
	return out
}

// pointSets yields the adversarial families the issue calls out:
// uniform random, duplicate-heavy, collinear, single-cell (tiny
// extent), plus single-point and clustered sets.
func pointSets(rnd *rand.Rand) map[string][]geom.Point {
	sets := map[string][]geom.Point{}

	uniform := make([]geom.Point, 200)
	for i := range uniform {
		uniform[i] = geom.Pt(rnd.Float64()*800, rnd.Float64()*800)
	}
	sets["uniform"] = uniform

	dup := make([]geom.Point, 0, 150)
	for i := 0; i < 50; i++ {
		p := geom.Pt(rnd.Float64()*100, rnd.Float64()*100)
		for j := 0; j < 3; j++ {
			dup = append(dup, p)
		}
	}
	sets["duplicates"] = dup

	col := make([]geom.Point, 120)
	for i := range col {
		col[i] = geom.Pt(float64(i%40)*7.5, 0)
	}
	sets["collinear"] = col

	tiny := make([]geom.Point, 60)
	for i := range tiny {
		tiny[i] = geom.Pt(400+rnd.Float64()*1e-6, 400+rnd.Float64()*1e-6)
	}
	sets["single-cell"] = tiny

	sets["single-point"] = []geom.Point{geom.Pt(3, 4)}

	clustered := make([]geom.Point, 0, 160)
	for c := 0; c < 4; c++ {
		cx, cy := rnd.Float64()*800, rnd.Float64()*800
		for i := 0; i < 40; i++ {
			clustered = append(clustered, geom.Pt(cx+rnd.NormFloat64()*5, cy+rnd.NormFloat64()*5))
		}
	}
	sets["clustered"] = clustered

	return sets
}

// queries yields probe points both on and off the data's bounding box.
func queries(pts []geom.Point, rnd *rand.Rand) []geom.Point {
	b := geom.Bounds(pts)
	qs := []geom.Point{
		b.Min, b.Max, b.Center(),
		geom.Pt(b.Min.X-100, b.Min.Y-100), // far outside
		geom.Pt(b.Max.X+1, b.Center().Y),
		pts[0], pts[len(pts)-1], // exact hits
	}
	for i := 0; i < 25; i++ {
		qs = append(qs, geom.Pt(
			b.Min.X+(rnd.Float64()*1.4-0.2)*math.Max(b.Width(), 1),
			b.Min.Y+(rnd.Float64()*1.4-0.2)*math.Max(b.Height(), 1)))
	}
	return qs
}

func TestNearestMatchesBrute(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for name, pts := range pointSets(rnd) {
		g := New(pts)
		for qi, q := range queries(pts, rnd) {
			gi, gd := g.Nearest(q)
			bi, bd := bruteNearest(pts, nil, q)
			if gi != bi || gd != bd {
				t.Errorf("%s query %d: grid (%d, %v) != brute (%d, %v)", name, qi, gi, gd, bi, bd)
			}
		}
	}
}

func TestKNearestMatchesBrute(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	for name, pts := range pointSets(rnd) {
		g := New(pts)
		for _, k := range []int{0, 1, 2, 3, 7, len(pts) / 2, len(pts), len(pts) + 5} {
			for qi, q := range queries(pts, rnd) {
				got := g.KNearest(q, k, nil)
				want := bruteKNearest(pts, nil, q, k)
				if !equalInts(got, want) {
					t.Errorf("%s k=%d query %d: grid %v != brute %v", name, k, qi, got, want)
				}
			}
		}
	}
}

func TestWithinMatchesBrute(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for name, pts := range pointSets(rnd) {
		g := New(pts)
		b := geom.Bounds(pts)
		diag := math.Hypot(b.Width(), b.Height())
		for _, r := range []float64{0, 1e-12, diag / 10, diag / 3, diag, diag * 2} {
			for qi, q := range queries(pts, rnd) {
				got := g.Within(q, r, nil)
				want := bruteWithin(pts, nil, q, r)
				if !equalInts(got, want) {
					t.Errorf("%s r=%v query %d: grid %v != brute %v", name, r, qi, got, want)
				}
			}
		}
	}
}

// TestRemoveMatchesBrute interleaves removals with queries, mirroring
// the consuming searches in tour construction and mule matching.
func TestRemoveMatchesBrute(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	for name, pts := range pointSets(rnd) {
		g := New(pts)
		alive := make([]bool, len(pts))
		for i := range alive {
			alive[i] = true
		}
		order := rnd.Perm(len(pts))
		for step, rm := range order {
			g.Remove(rm)
			g.Remove(rm) // double-remove must be a no-op
			alive[rm] = false
			q := geom.Pt(rnd.Float64()*800, rnd.Float64()*800)
			gi, gd := g.Nearest(q)
			bi, bd := bruteNearest(pts, alive, q)
			if gi != bi || gd != bd {
				t.Fatalf("%s step %d: grid (%d, %v) != brute (%d, %v)", name, step, gi, gd, bi, bd)
			}
			if got, want := g.KNearest(q, 3, nil), bruteKNearest(pts, alive, q, 3); !equalInts(got, want) {
				t.Fatalf("%s step %d: grid kNN %v != brute %v", name, step, got, want)
			}
		}
		if g.Live() != 0 {
			t.Fatalf("%s: %d live points after removing all", name, g.Live())
		}
		if i, _ := g.Nearest(geom.Pt(0, 0)); i != -1 {
			t.Fatalf("%s: Nearest on empty grid returned %d", name, i)
		}
		if got := g.KNearest(geom.Pt(0, 0), 2, nil); len(got) != 0 {
			t.Fatalf("%s: KNearest on empty grid returned %v", name, got)
		}
	}
}

func TestRebuildReuses(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	g := New([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)})
	g.Remove(0)
	for round := 0; round < 10; round++ {
		n := 1 + rnd.Intn(300)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rnd.Float64()*500, rnd.Float64()*500)
		}
		g.Rebuild(pts)
		if g.Live() != n {
			t.Fatalf("round %d: Live() = %d after Rebuild over %d points", round, g.Live(), n)
		}
		q := geom.Pt(rnd.Float64()*500, rnd.Float64()*500)
		gi, _ := g.Nearest(q)
		bi, _ := bruteNearest(pts, nil, q)
		if gi != bi {
			t.Fatalf("round %d: grid %d != brute %d", round, gi, bi)
		}
	}
}

func TestEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New over an empty point set did not panic")
		}
	}()
	New(nil)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
