// Package hull computes planar convex hulls. The paper's Hamiltonian
// circuit construction (after Wu et al., MDM'09 — "a convex hull
// concept") starts from the convex hull of the target set and inserts
// the interior targets; this package supplies that hull.
//
// Two independent algorithms are provided: Andrew's monotone chain
// (the primary implementation) and a Graham scan (used as a
// cross-check in tests). Both run in O(n log n).
package hull

import (
	"sort"

	"tctp/internal/geom"
)

// Convex returns the convex hull of pts in counterclockwise order
// starting from the lexicographically smallest point (min X, then min
// Y). Collinear points on hull edges are omitted, so the result is the
// minimal vertex set. Inputs with fewer than three distinct points
// return the distinct points sorted lexicographically.
//
// The input slice is not modified.
func Convex(pts []geom.Point) []geom.Point {
	sorted := dedupSorted(pts)
	n := len(sorted)
	if n < 3 {
		return sorted
	}

	// Andrew's monotone chain: build the lower hull left to right,
	// then the upper hull right to left.
	hull := make([]geom.Point, 0, 2*n)
	for _, p := range sorted { // lower hull
		for len(hull) >= 2 && geom.Orient(hull[len(hull)-2], hull[len(hull)-1], p) != geom.Counterclockwise {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- { // upper hull
		p := sorted[i]
		for len(hull) >= lower && geom.Orient(hull[len(hull)-2], hull[len(hull)-1], p) != geom.Counterclockwise {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1] // last point repeats the first
}

// GrahamScan returns the convex hull of pts in counterclockwise order.
// It is an independent implementation used to cross-validate Convex in
// property tests. The starting vertex is the bottom-most (then
// left-most) point, and the result is rotated so that it starts from
// the lexicographically smallest point, making it directly comparable
// with Convex.
func GrahamScan(pts []geom.Point) []geom.Point {
	distinct := dedupSorted(pts)
	n := len(distinct)
	if n < 3 {
		return distinct
	}

	// Pivot: lowest Y, then lowest X.
	pivot := distinct[0]
	for _, p := range distinct[1:] {
		if p.Y < pivot.Y || (p.Y == pivot.Y && p.X < pivot.X) {
			pivot = p
		}
	}

	rest := make([]geom.Point, 0, n-1)
	for _, p := range distinct {
		if p != pivot {
			rest = append(rest, p)
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		o := geom.Orient(pivot, rest[i], rest[j])
		if o != geom.Collinear {
			return o == geom.Counterclockwise
		}
		return pivot.Dist2(rest[i]) < pivot.Dist2(rest[j])
	})

	stack := []geom.Point{pivot}
	for _, p := range rest {
		for len(stack) >= 2 && geom.Orient(stack[len(stack)-2], stack[len(stack)-1], p) != geom.Counterclockwise {
			stack = stack[:len(stack)-1]
		}
		stack = append(stack, p)
	}
	if len(stack) < 3 {
		return stack
	}
	return rotateToLexMin(stack)
}

// ContainsPoint reports whether p lies inside or on the boundary of
// the convex polygon hull, whose vertices must be in counterclockwise
// order.
func ContainsPoint(hull []geom.Point, p geom.Point) bool {
	n := len(hull)
	switch n {
	case 0:
		return false
	case 1:
		return hull[0].Eq(p)
	case 2:
		return geom.Segment{A: hull[0], B: hull[1]}.DistToPoint(p) <= geom.Eps
	}
	for i := 0; i < n; i++ {
		if geom.Orient(hull[i], hull[(i+1)%n], p) == geom.Clockwise {
			return false
		}
	}
	return true
}

// Perimeter returns the length of the closed hull boundary.
func Perimeter(hull []geom.Point) float64 {
	return geom.CycleLen(hull)
}

// Area returns the area of the convex polygon via the shoelace
// formula. Vertices must be in counterclockwise order; the result is
// non-negative for valid CCW hulls.
func Area(hull []geom.Point) float64 {
	n := len(hull)
	if n < 3 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		sum += hull[i].X*hull[j].Y - hull[j].X*hull[i].Y
	}
	return sum / 2
}

// dedupSorted returns the distinct points sorted lexicographically
// (X, then Y) without modifying the input.
func dedupSorted(pts []geom.Point) []geom.Point {
	sorted := make([]geom.Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	out := sorted[:0]
	for i, p := range sorted {
		if i == 0 || p != sorted[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// rotateToLexMin rotates the cyclic vertex list so it starts from the
// lexicographically smallest vertex.
func rotateToLexMin(h []geom.Point) []geom.Point {
	best := 0
	for i, p := range h {
		b := h[best]
		if p.X < b.X || (p.X == b.X && p.Y < b.Y) {
			best = i
		}
	}
	out := make([]geom.Point, 0, len(h))
	out = append(out, h[best:]...)
	out = append(out, h[:best]...)
	return out
}
