package hull

import (
	"math"
	"testing"
	"testing/quick"

	"tctp/internal/geom"
	"tctp/internal/xrand"
)

func square() []geom.Point {
	return []geom.Point{
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10),
		geom.Pt(5, 5), geom.Pt(3, 7), geom.Pt(8, 2), // interior
	}
}

func TestConvexSquare(t *testing.T) {
	h := Convex(square())
	if len(h) != 4 {
		t.Fatalf("hull has %d vertices, want 4: %v", len(h), h)
	}
	want := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10)}
	for i, p := range want {
		if !h[i].Eq(p) {
			t.Fatalf("vertex %d = %v, want %v (hull %v)", i, h[i], p, h)
		}
	}
}

func TestConvexSmallInputs(t *testing.T) {
	if h := Convex(nil); len(h) != 0 {
		t.Fatalf("empty input: %v", h)
	}
	one := []geom.Point{geom.Pt(1, 2)}
	if h := Convex(one); len(h) != 1 || !h[0].Eq(one[0]) {
		t.Fatalf("single input: %v", h)
	}
	two := []geom.Point{geom.Pt(4, 4), geom.Pt(1, 2)}
	h := Convex(two)
	if len(h) != 2 {
		t.Fatalf("two points: %v", h)
	}
	dup := []geom.Point{geom.Pt(1, 1), geom.Pt(1, 1), geom.Pt(1, 1)}
	if h := Convex(dup); len(h) != 1 {
		t.Fatalf("duplicates: %v", h)
	}
}

func TestConvexCollinear(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1), geom.Pt(2, 2), geom.Pt(3, 3)}
	h := Convex(pts)
	// All points collinear: hull degenerates. Accept the two extreme
	// points (any interior collinear vertices must be dropped).
	if len(h) > 2 {
		t.Fatalf("collinear hull has %d vertices: %v", len(h), h)
	}
}

func TestConvexIsCCW(t *testing.T) {
	h := Convex(square())
	for i := range h {
		a, b, c := h[i], h[(i+1)%len(h)], h[(i+2)%len(h)]
		if geom.Orient(a, b, c) != geom.Counterclockwise {
			t.Fatalf("hull not strictly CCW at vertex %d", i)
		}
	}
}

func TestContainsPoint(t *testing.T) {
	h := Convex(square())
	if !ContainsPoint(h, geom.Pt(5, 5)) {
		t.Fatal("interior point rejected")
	}
	if !ContainsPoint(h, geom.Pt(0, 0)) {
		t.Fatal("vertex rejected")
	}
	if !ContainsPoint(h, geom.Pt(5, 0)) {
		t.Fatal("boundary point rejected")
	}
	if ContainsPoint(h, geom.Pt(11, 5)) {
		t.Fatal("exterior point accepted")
	}
	if ContainsPoint(nil, geom.Pt(0, 0)) {
		t.Fatal("empty hull contains nothing")
	}
	if !ContainsPoint([]geom.Point{geom.Pt(1, 1)}, geom.Pt(1, 1)) {
		t.Fatal("degenerate single-point hull")
	}
	seg := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}
	if !ContainsPoint(seg, geom.Pt(5, 0)) {
		t.Fatal("degenerate segment hull")
	}
}

func TestPerimeterAndArea(t *testing.T) {
	h := Convex(square())
	if p := Perimeter(h); math.Abs(p-40) > 1e-9 {
		t.Fatalf("Perimeter = %v, want 40", p)
	}
	if a := Area(h); math.Abs(a-100) > 1e-9 {
		t.Fatalf("Area = %v, want 100", a)
	}
	if a := Area(h[:2]); a != 0 {
		t.Fatalf("degenerate area = %v", a)
	}
}

func randomPoints(src *xrand.Source, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(src.Range(0, 800), src.Range(0, 800))
	}
	return pts
}

// TestHullContainsAllInputs is the core hull invariant: every input
// point is inside (or on) the computed hull.
func TestHullContainsAllInputs(t *testing.T) {
	src := xrand.New(99)
	for trial := 0; trial < 50; trial++ {
		pts := randomPoints(src, 3+src.Intn(60))
		h := Convex(pts)
		for _, p := range pts {
			if !ContainsPoint(h, p) {
				t.Fatalf("trial %d: point %v outside hull %v", trial, p, h)
			}
		}
	}
}

// TestHullVerticesAreInputs checks that hull vertices are a subset of
// the input point set.
func TestHullVerticesAreInputs(t *testing.T) {
	src := xrand.New(100)
	for trial := 0; trial < 30; trial++ {
		pts := randomPoints(src, 3+src.Intn(40))
		set := map[geom.Point]bool{}
		for _, p := range pts {
			set[p] = true
		}
		for _, v := range Convex(pts) {
			if !set[v] {
				t.Fatalf("hull vertex %v not in input", v)
			}
		}
	}
}

// TestGrahamMatchesMonotone cross-validates the two implementations on
// random inputs: same vertex cycle.
func TestGrahamMatchesMonotone(t *testing.T) {
	src := xrand.New(101)
	for trial := 0; trial < 50; trial++ {
		pts := randomPoints(src, 3+src.Intn(80))
		a := Convex(pts)
		b := GrahamScan(pts)
		if len(a) != len(b) {
			t.Fatalf("trial %d: sizes differ %d vs %d\n%v\n%v", trial, len(a), len(b), a, b)
		}
		for i := range a {
			if !a[i].Eq(b[i]) {
				t.Fatalf("trial %d: vertex %d differs: %v vs %v", trial, i, a[i], b[i])
			}
		}
	}
}

// TestHullIdempotent: the hull of a hull is itself.
func TestHullIdempotent(t *testing.T) {
	src := xrand.New(102)
	pts := randomPoints(src, 50)
	h := Convex(pts)
	h2 := Convex(h)
	if len(h) != len(h2) {
		t.Fatalf("idempotence broken: %d vs %d vertices", len(h), len(h2))
	}
	for i := range h {
		if !h[i].Eq(h2[i]) {
			t.Fatalf("vertex %d moved: %v vs %v", i, h[i], h2[i])
		}
	}
}

// TestHullPerimeterMinimal: the hull perimeter never exceeds the
// closed polyline through all the points in any order (the hull is the
// shortest enclosing cycle of its vertex set).
func TestHullPerimeterBound(t *testing.T) {
	src := xrand.New(103)
	pts := randomPoints(src, 25)
	h := Convex(pts)
	if Perimeter(h) > geom.CycleLen(pts)+1e-9 {
		t.Fatal("hull perimeter exceeds an arbitrary enclosing tour")
	}
}

func TestHullInputNotModified(t *testing.T) {
	pts := square()
	cp := make([]geom.Point, len(pts))
	copy(cp, pts)
	Convex(pts)
	GrahamScan(pts)
	for i := range pts {
		if pts[i] != cp[i] {
			t.Fatalf("input modified at %d", i)
		}
	}
}

func TestHullPropertyQuick(t *testing.T) {
	// Random coordinate sets via testing/quick; hull must contain all
	// inputs and be CCW-convex.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 3
		src := xrand.New(seed)
		pts := randomPoints(src, n)
		h := Convex(pts)
		for _, p := range pts {
			if !ContainsPoint(h, p) {
				return false
			}
		}
		if len(h) >= 3 {
			for i := range h {
				if geom.Orient(h[i], h[(i+1)%len(h)], h[(i+2)%len(h)]) == geom.Clockwise {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
