// Package metrics records target visits during a simulation and
// derives the paper's evaluation quantities from them:
//
//   - the visiting interval of a target — the time between two
//     consecutive visits (the paper's headline metric, which the
//     planners aim to minimize and balance);
//   - the Data Collection Delay Time (DCDT) series of Fig. 7 — the
//     k-th visiting interval aggregated over targets;
//   - the per-target SD of Figs. 8 and 10 — the sample standard
//     deviation of a target's consecutive visiting intervals.
package metrics

import (
	"fmt"
	"sort"

	"tctp/internal/geom"
	"tctp/internal/stats"
)

// Recorder accumulates visit timestamps per target. It is not safe
// for concurrent use; a simulation is single-threaded by design (the
// experiment harness parallelizes across independent runs instead).
type Recorder struct {
	visits [][]float64
}

// NewRecorder returns a recorder for nTargets targets (indexed
// 0..nTargets-1).
func NewRecorder(nTargets int) *Recorder {
	return NewRecorderCap(nTargets, 0)
}

// NewRecorderCap is NewRecorder with a per-target visit-count capacity
// hint: every target's series is carved out of one flat backing array
// with room for visitCap timestamps, so a simulation whose visit
// counts stay within the hint performs no recording allocations at
// all. The full-slice-expression cap means a target that outgrows its
// slot reallocates independently instead of clobbering its
// neighbour's slot, so the hint affects only allocation behaviour,
// never recorded values. visitCap <= 0 means no preallocation.
func NewRecorderCap(nTargets, visitCap int) *Recorder {
	if nTargets <= 0 {
		panic(fmt.Sprintf("metrics: NewRecorder(%d)", nTargets))
	}
	r := &Recorder{visits: make([][]float64, nTargets)}
	if visitCap > 0 {
		flat := make([]float64, nTargets*visitCap)
		for i := range r.visits {
			r.visits[i] = flat[i*visitCap : i*visitCap : (i+1)*visitCap]
		}
	}
	return r
}

// NumTargets returns the number of tracked targets.
func (r *Recorder) NumTargets() int { return len(r.visits) }

// OnVisit records that a mule visited target at simulation time t. It
// has the signature expected by mule.Config.OnVisit (the mule identity
// does not matter for interval metrics: any mule's visit resets the
// target's clock). It panics on an out-of-range target.
func (r *Recorder) OnVisit(_, target int, t float64) {
	if target < 0 || target >= len(r.visits) {
		panic(fmt.Sprintf("metrics: visit to target %d of %d", target, len(r.visits)))
	}
	r.visits[target] = append(r.visits[target], t)
}

// OnDeath completes the patrol.Observer interface; battery deaths do
// not affect interval metrics.
func (r *Recorder) OnDeath(int, float64, geom.Point) {}

// OnRecharge completes the patrol.Observer interface; recharge stops
// do not affect interval metrics.
func (r *Recorder) OnRecharge(int, float64) {}

// VisitTimes returns the visit timestamps of target in order.
func (r *Recorder) VisitTimes(target int) []float64 {
	return r.visits[target]
}

// VisitCount returns the number of recorded visits to target.
func (r *Recorder) VisitCount(target int) int {
	return len(r.visits[target])
}

// MinVisitCount returns the smallest visit count over all targets.
func (r *Recorder) MinVisitCount() int {
	min := -1
	for _, v := range r.visits {
		if min == -1 || len(v) < min {
			min = len(v)
		}
	}
	if min == -1 {
		return 0
	}
	return min
}

// Intervals returns the consecutive visiting intervals of target:
// interval k is the time between visit k and visit k+1. A target with
// fewer than two visits yields nil.
func (r *Recorder) Intervals(target int) []float64 {
	ts := r.visits[target]
	if len(ts) < 2 {
		return nil
	}
	out := make([]float64, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		out[i-1] = ts[i] - ts[i-1]
	}
	return out
}

// IntervalsAfter returns the visiting intervals of target restricted
// to visits at or after t0. Use it to discard the location-
// initialization transient when measuring steady-state behaviour.
func (r *Recorder) IntervalsAfter(target int, t0 float64) []float64 {
	ts := r.visits[target]
	var kept []float64
	for _, t := range ts {
		if t >= t0 {
			kept = append(kept, t)
		}
	}
	if len(kept) < 2 {
		return nil
	}
	out := make([]float64, len(kept)-1)
	for i := 1; i < len(kept); i++ {
		out[i-1] = kept[i] - kept[i-1]
	}
	return out
}

// SD returns the paper's per-target SD metric: the sample standard
// deviation of the target's consecutive visiting intervals
// (SD = sqrt(1/(n−1)·Σ(t_k − t̄)²) over the n intervals). Targets with
// fewer than two intervals yield 0.
func (r *Recorder) SD(target int) float64 {
	return stats.SampleSD(r.Intervals(target))
}

// SDAfter is SD restricted to visits at or after t0.
func (r *Recorder) SDAfter(target int, t0 float64) float64 {
	return stats.SampleSD(r.IntervalsAfter(target, t0))
}

// MeanInterval returns the mean visiting interval of target (0 when
// the target has fewer than two visits).
func (r *Recorder) MeanInterval(target int) float64 {
	return stats.Mean(r.Intervals(target))
}

// eachTarget invokes fn for every target of the subset — or for every
// recorded target, in ascending id order, when targets is nil. The nil
// form is the classic whole-scenario metric; a patrol group passes its
// member ids to get the same metric restricted to its region.
func (r *Recorder) eachTarget(targets []int, fn func(t int)) {
	if targets == nil {
		for t := range r.visits {
			fn(t)
		}
		return
	}
	for _, t := range targets {
		fn(t)
	}
}

// AvgSD returns the SD metric averaged over all targets that have at
// least two intervals — the z-axis of Figs. 8 and 10.
func (r *Recorder) AvgSD() float64 { return r.AvgSDOver(nil) }

// AvgSDOver is AvgSD restricted to a target subset (nil = all
// targets) — the per-group regularity of a partitioned plan.
func (r *Recorder) AvgSDOver(targets []int) float64 {
	var acc stats.Accumulator
	r.eachTarget(targets, func(t int) {
		if iv := r.Intervals(t); len(iv) >= 2 {
			acc.Add(stats.SampleSD(iv))
		}
	})
	return acc.Mean()
}

// AvgSDAfter is AvgSD restricted to visits at or after t0.
func (r *Recorder) AvgSDAfter(t0 float64) float64 {
	return r.AvgSDAfterOver(nil, t0)
}

// AvgSDAfterOver is AvgSDAfter restricted to a target subset (nil =
// all targets).
func (r *Recorder) AvgSDAfterOver(targets []int, t0 float64) float64 {
	var acc stats.Accumulator
	r.eachTarget(targets, func(t int) {
		if iv := r.IntervalsAfter(t, t0); len(iv) >= 2 {
			acc.Add(stats.SampleSD(iv))
		}
	})
	return acc.Mean()
}

// AvgDCDT returns the mean visiting interval averaged over all targets
// with at least one interval — the z-axis of Fig. 9.
func (r *Recorder) AvgDCDT() float64 { return r.AvgDCDTOver(nil) }

// AvgDCDTOver is AvgDCDT restricted to a target subset (nil = all
// targets) — the per-group delay of a partitioned plan.
func (r *Recorder) AvgDCDTOver(targets []int) float64 {
	var acc stats.Accumulator
	r.eachTarget(targets, func(t int) {
		if iv := r.Intervals(t); len(iv) > 0 {
			acc.Add(stats.Mean(iv))
		}
	})
	return acc.Mean()
}

// AvgDCDTAfter is AvgDCDT restricted to visits at or after t0.
func (r *Recorder) AvgDCDTAfter(t0 float64) float64 {
	return r.AvgDCDTAfterOver(nil, t0)
}

// AvgDCDTAfterOver is AvgDCDTAfter restricted to a target subset
// (nil = all targets).
func (r *Recorder) AvgDCDTAfterOver(targets []int, t0 float64) float64 {
	var acc stats.Accumulator
	r.eachTarget(targets, func(t int) {
		if iv := r.IntervalsAfter(t, t0); len(iv) > 0 {
			acc.Add(stats.Mean(iv))
		}
	})
	return acc.Mean()
}

// MaxInterval returns the maximal visiting interval over all targets
// and intervals — the quantity the paper's problem statement
// minimizes ("the goal ... is to minimize the maximal visiting
// interval"). Returns 0 when no target has two visits.
func (r *Recorder) MaxInterval() float64 { return r.MaxIntervalOver(nil) }

// MaxIntervalOver is MaxInterval restricted to a target subset (nil =
// all targets).
func (r *Recorder) MaxIntervalOver(targets []int) float64 {
	m := 0.0
	r.eachTarget(targets, func(t int) {
		for _, iv := range r.Intervals(t) {
			if iv > m {
				m = iv
			}
		}
	})
	return m
}

// DCDTSeries returns, for k = 1..maxK, the k-th visiting interval
// averaged over the targets that have a k-th interval. Targets that
// never reach the k-th interval simply stop contributing.
func (r *Recorder) DCDTSeries(maxK int) []float64 {
	out := make([]float64, 0, maxK)
	for k := 1; k <= maxK; k++ {
		var acc stats.Accumulator
		for t := range r.visits {
			iv := r.Intervals(t)
			if len(iv) >= k {
				acc.Add(iv[k-1])
			}
		}
		if acc.N() == 0 {
			break
		}
		out = append(out, acc.Mean())
	}
	return out
}

// EventDCDTSeries returns the paper's Fig. 7 curve: visit events from
// all targets are ordered by time, each carrying the interval since
// that target's previous visit (its "data collection delay"), and the
// first maxK such events are returned. Under B-TCTP every event
// carries the same interval (a flat line); under CHB and Sweep the
// sequence cycles through the unequal inter-mule gaps or the unequal
// group periods ("the DCDT vibrates periodically"); under Random it
// is erratic.
func (r *Recorder) EventDCDTSeries(maxK int) []float64 {
	type event struct {
		t, interval float64
	}
	var events []event
	for target := range r.visits {
		ts := r.visits[target]
		for i := 1; i < len(ts); i++ {
			events = append(events, event{t: ts[i], interval: ts[i] - ts[i-1]})
		}
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].t != events[b].t {
			return events[a].t < events[b].t
		}
		return events[a].interval < events[b].interval
	})
	if len(events) > maxK {
		events = events[:maxK]
	}
	out := make([]float64, len(events))
	for i, e := range events {
		out[i] = e.interval
	}
	return out
}

// FirstVisitAfter returns the time of the target's first visit at or
// after t0, or -1 when the target is never visited again. Visit logs
// are time-ordered (simulation time is monotone), so the lookup is a
// binary search.
func (r *Recorder) FirstVisitAfter(target int, t0 float64) float64 {
	ts := r.visits[target]
	i := sort.SearchFloat64s(ts, t0)
	if i == len(ts) {
		return -1
	}
	return ts[i]
}

// TimeToRecoverOver returns how long after t0 the patrol needs until
// every member target (nil = all) has been visited again: the maximum
// over targets of (first visit ≥ t0) − t0. A target never visited
// again in [t0, end] is censored at the window end, contributing
// end − t0 — the degraded-mode time-to-recover after a fleet failure.
func (r *Recorder) TimeToRecoverOver(targets []int, t0, end float64) float64 {
	worst := 0.0
	r.eachTarget(targets, func(t int) {
		d := end - t0
		if v := r.FirstVisitAfter(t, t0); v >= 0 && v <= end {
			d = v - t0
		}
		if d > worst {
			worst = d
		}
	})
	if worst < 0 {
		worst = 0
	}
	return worst
}

// maxGap returns the target's longest visit-free stretch within the
// window [from, to], counting the boundary stretches from→first visit
// and last visit→to; a target unvisited in the window contributes the
// whole window length.
func (r *Recorder) maxGap(target int, from, to float64) float64 {
	if to <= from {
		return 0
	}
	ts := r.visits[target]
	prev := from
	gap := 0.0
	for _, v := range ts[sort.SearchFloat64s(ts, from):] {
		if v > to {
			break
		}
		if g := v - prev; g > gap {
			gap = g
		}
		prev = v
	}
	if g := to - prev; g > gap {
		gap = g
	}
	return gap
}

// MaxGapOver returns the longest visit-free stretch any member target
// (nil = all) suffers within [from, to] — the worst-case coverage gap
// of a degraded fleet.
func (r *Recorder) MaxGapOver(targets []int, from, to float64) float64 {
	m := 0.0
	r.eachTarget(targets, func(t int) {
		if g := r.maxGap(t, from, to); g > m {
			m = g
		}
	})
	return m
}

// AvgMaxGapOver averages the per-target longest visit-free stretch
// within [from, to] over the subset (nil = all targets) — the
// coverage-gap duration metric of degraded-mode sweeps.
func (r *Recorder) AvgMaxGapOver(targets []int, from, to float64) float64 {
	sum, n := 0.0, 0
	r.eachTarget(targets, func(t int) {
		sum += r.maxGap(t, from, to)
		n++
	})
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
