package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBasicRecording(t *testing.T) {
	r := NewRecorder(3)
	if r.NumTargets() != 3 {
		t.Fatalf("NumTargets = %d", r.NumTargets())
	}
	r.OnVisit(0, 1, 10)
	r.OnVisit(1, 1, 25)
	r.OnVisit(0, 2, 5)
	if r.VisitCount(1) != 2 || r.VisitCount(2) != 1 || r.VisitCount(0) != 0 {
		t.Fatal("visit counts wrong")
	}
	ts := r.VisitTimes(1)
	if len(ts) != 2 || ts[0] != 10 || ts[1] != 25 {
		t.Fatalf("VisitTimes = %v", ts)
	}
	if r.MinVisitCount() != 0 {
		t.Fatalf("MinVisitCount = %d", r.MinVisitCount())
	}
}

func TestIntervals(t *testing.T) {
	r := NewRecorder(2)
	for _, at := range []float64{10, 30, 60, 100} {
		r.OnVisit(0, 0, at)
	}
	iv := r.Intervals(0)
	want := []float64{20, 30, 40}
	if len(iv) != 3 {
		t.Fatalf("Intervals = %v", iv)
	}
	for i := range want {
		if !almost(iv[i], want[i]) {
			t.Fatalf("Intervals = %v", iv)
		}
	}
	if r.Intervals(1) != nil {
		t.Fatal("unvisited target has intervals")
	}
	r.OnVisit(0, 1, 5)
	if r.Intervals(1) != nil {
		t.Fatal("single visit has intervals")
	}
}

func TestIntervalsAfter(t *testing.T) {
	r := NewRecorder(1)
	for _, at := range []float64{0, 100, 200, 300} {
		r.OnVisit(0, 0, at)
	}
	iv := r.IntervalsAfter(0, 100)
	if len(iv) != 2 || !almost(iv[0], 100) || !almost(iv[1], 100) {
		t.Fatalf("IntervalsAfter = %v", iv)
	}
	if got := r.IntervalsAfter(0, 300); got != nil {
		t.Fatalf("IntervalsAfter(300) = %v", got)
	}
	// Boundary inclusive.
	if got := r.IntervalsAfter(0, 200); len(got) != 1 {
		t.Fatalf("IntervalsAfter(200) = %v", got)
	}
}

func TestSDPaperFormula(t *testing.T) {
	r := NewRecorder(1)
	// Visits 0, 10, 30: intervals 10, 20 → mean 15, sample SD
	// sqrt(((10-15)²+(20-15)²)/1) = sqrt(50).
	for _, at := range []float64{0, 10, 30} {
		r.OnVisit(0, 0, at)
	}
	if sd := r.SD(0); !almost(sd, math.Sqrt(50)) {
		t.Fatalf("SD = %v, want %v", sd, math.Sqrt(50))
	}
}

func TestSDConstantIntervalsIsZero(t *testing.T) {
	// The B-TCTP steady state: perfectly periodic visits → SD 0.
	r := NewRecorder(1)
	for k := 0; k < 50; k++ {
		r.OnVisit(0, 0, float64(k)*137.5)
	}
	if sd := r.SD(0); !almost(sd, 0) {
		t.Fatalf("constant-interval SD = %v", sd)
	}
}

func TestMeanInterval(t *testing.T) {
	r := NewRecorder(1)
	for _, at := range []float64{0, 10, 30} {
		r.OnVisit(0, 0, at)
	}
	if m := r.MeanInterval(0); !almost(m, 15) {
		t.Fatalf("MeanInterval = %v", m)
	}
}

func TestAvgSDAndAvgDCDT(t *testing.T) {
	r := NewRecorder(3)
	// Target 0: intervals 10, 10 (SD 0, mean 10).
	for _, at := range []float64{0, 10, 20} {
		r.OnVisit(0, 0, at)
	}
	// Target 1: intervals 10, 30 (SD sqrt(200), mean 20).
	for _, at := range []float64{0, 10, 40} {
		r.OnVisit(0, 1, at)
	}
	// Target 2: one visit only — excluded from both aggregates.
	r.OnVisit(0, 2, 5)

	wantSD := (0 + math.Sqrt(200)) / 2
	if got := r.AvgSD(); !almost(got, wantSD) {
		t.Fatalf("AvgSD = %v, want %v", got, wantSD)
	}
	if got := r.AvgDCDT(); !almost(got, 15) {
		t.Fatalf("AvgDCDT = %v, want 15", got)
	}
}

func TestAvgAfterVariants(t *testing.T) {
	r := NewRecorder(1)
	// Transient: erratic until t=100; steady period 50 after.
	for _, at := range []float64{0, 7, 100, 150, 200, 250} {
		r.OnVisit(0, 0, at)
	}
	if sd := r.AvgSDAfter(100); !almost(sd, 0) {
		t.Fatalf("steady-state SD = %v", sd)
	}
	if m := r.AvgDCDTAfter(100); !almost(m, 50) {
		t.Fatalf("steady-state DCDT = %v", m)
	}
	if sd := r.SDAfter(0, 100); !almost(sd, 0) {
		t.Fatalf("SDAfter = %v", sd)
	}
}

func TestMaxInterval(t *testing.T) {
	r := NewRecorder(2)
	for _, at := range []float64{0, 10, 20} {
		r.OnVisit(0, 0, at)
	}
	for _, at := range []float64{0, 55} {
		r.OnVisit(0, 1, at)
	}
	if m := r.MaxInterval(); !almost(m, 55) {
		t.Fatalf("MaxInterval = %v", m)
	}
	empty := NewRecorder(1)
	if m := empty.MaxInterval(); m != 0 {
		t.Fatalf("empty MaxInterval = %v", m)
	}
}

func TestDCDTSeries(t *testing.T) {
	r := NewRecorder(2)
	// Target 0 intervals: 10, 20, 30. Target 1 intervals: 30.
	for _, at := range []float64{0, 10, 30, 60} {
		r.OnVisit(0, 0, at)
	}
	for _, at := range []float64{0, 30} {
		r.OnVisit(0, 1, at)
	}
	s := r.DCDTSeries(5)
	// k=1: mean(10, 30)=20; k=2: mean(20)=20; k=3: mean(30)=30;
	// k=4: no data → series stops.
	want := []float64{20, 20, 30}
	if len(s) != len(want) {
		t.Fatalf("DCDTSeries = %v", s)
	}
	for i := range want {
		if !almost(s[i], want[i]) {
			t.Fatalf("DCDTSeries = %v, want %v", s, want)
		}
	}
}

func TestDCDTSeriesEmpty(t *testing.T) {
	r := NewRecorder(1)
	if s := r.DCDTSeries(10); len(s) != 0 {
		t.Fatalf("series = %v", s)
	}
}

func TestPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewRecorder(0) did not panic")
			}
		}()
		NewRecorder(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range visit did not panic")
			}
		}()
		NewRecorder(2).OnVisit(0, 5, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative target did not panic")
			}
		}()
		NewRecorder(2).OnVisit(0, -1, 1)
	}()
}

// Property: for any monotone visit sequence, intervals are positive
// and sum to last − first.
func TestIntervalTelescopeProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		r := NewRecorder(1)
		t0 := 0.0
		var first, last float64
		for i, d := range raw {
			t0 += float64(d) + 1 // strictly increasing
			if i == 0 {
				first = t0
			}
			last = t0
			r.OnVisit(0, 0, t0)
		}
		iv := r.Intervals(0)
		sum := 0.0
		for _, x := range iv {
			if x <= 0 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-(last-first)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventDCDTSeries(t *testing.T) {
	r := NewRecorder(2)
	// Target 0 visits at 0, 10, 30 (intervals 10 at t=10, 20 at t=30).
	for _, at := range []float64{0, 10, 30} {
		r.OnVisit(0, 0, at)
	}
	// Target 1 visits at 5, 20 (interval 15 at t=20).
	for _, at := range []float64{5, 20} {
		r.OnVisit(0, 1, at)
	}
	got := r.EventDCDTSeries(10)
	// Time-ordered events: t=10 (iv 10), t=20 (iv 15), t=30 (iv 20).
	want := []float64{10, 15, 20}
	if len(got) != len(want) {
		t.Fatalf("EventDCDTSeries = %v", got)
	}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Fatalf("EventDCDTSeries = %v, want %v", got, want)
		}
	}
	// maxK truncation.
	if got := r.EventDCDTSeries(2); len(got) != 2 || !almost(got[1], 15) {
		t.Fatalf("truncated series = %v", got)
	}
	// Empty recorder.
	if got := NewRecorder(1).EventDCDTSeries(5); len(got) != 0 {
		t.Fatalf("empty series = %v", got)
	}
}

func TestEventDCDTSeriesConstantForPeriodic(t *testing.T) {
	r := NewRecorder(3)
	// Three targets on a perfectly periodic schedule (the B-TCTP
	// steady state): every event interval is identical.
	for target := 0; target < 3; target++ {
		for k := 0; k < 10; k++ {
			r.OnVisit(0, target, float64(target)*33.3+float64(k)*100)
		}
	}
	s := r.EventDCDTSeries(25)
	for _, iv := range s {
		if !almost(iv, 100) {
			t.Fatalf("periodic schedule produced varying event DCDT: %v", s)
		}
	}
}

// TestOverSubsetMetrics: the ...Over variants restrict the classic
// metrics to a target subset, and the nil subset reproduces the
// global values exactly.
func TestOverSubsetMetrics(t *testing.T) {
	r := NewRecorder(3)
	// Target 0: intervals 10, 10. Target 1: intervals 20, 40.
	// Target 2: one visit, no interval.
	for _, v := range []struct {
		target int
		t      float64
	}{
		{0, 0}, {0, 10}, {0, 20},
		{1, 0}, {1, 20}, {1, 60},
		{2, 5},
	} {
		r.OnVisit(0, v.target, v.t)
	}

	if got, want := r.AvgDCDTOver(nil), r.AvgDCDT(); got != want {
		t.Fatalf("AvgDCDTOver(nil) = %v, AvgDCDT = %v", got, want)
	}
	if got := r.AvgDCDTOver([]int{0}); got != 10 {
		t.Fatalf("AvgDCDTOver({0}) = %v, want 10", got)
	}
	if got := r.AvgDCDTOver([]int{1}); got != 30 {
		t.Fatalf("AvgDCDTOver({1}) = %v, want 30", got)
	}
	if got := r.AvgDCDTOver([]int{2}); got != 0 {
		t.Fatalf("AvgDCDTOver({2}) = %v, want 0 (no interval)", got)
	}
	if got := r.MaxIntervalOver([]int{0}); got != 10 {
		t.Fatalf("MaxIntervalOver({0}) = %v", got)
	}
	if got, want := r.MaxIntervalOver(nil), r.MaxInterval(); got != want {
		t.Fatalf("MaxIntervalOver(nil) = %v, MaxInterval = %v", got, want)
	}
	if got := r.AvgSDOver([]int{0}); got != 0 {
		t.Fatalf("AvgSDOver({0}) = %v, want 0 (constant intervals)", got)
	}
	if got, want := r.AvgSDAfterOver(nil, 0), r.AvgSDAfter(0); got != want {
		t.Fatalf("AvgSDAfterOver(nil) = %v, AvgSDAfter = %v", got, want)
	}
	// After t0=15, target 0 keeps visit 20 only → no interval; target
	// 1 keeps visits 20, 60 → one interval of 40.
	if got := r.AvgDCDTAfterOver([]int{0, 1}, 15); got != 40 {
		t.Fatalf("AvgDCDTAfterOver({0,1}, 15) = %v, want 40", got)
	}
}

// Degraded-mode windows: FirstVisitAfter, TimeToRecoverOver, and the
// coverage-gap family, including the censored (never revisited) and
// empty-window edges.
func TestDegradedModeWindows(t *testing.T) {
	r := NewRecorder(3)
	// target 0: visits at 10, 20, 80; target 1: visit at 5 only;
	// target 2: never visited.
	r.OnVisit(0, 0, 10)
	r.OnVisit(0, 0, 20)
	r.OnVisit(0, 0, 80)
	r.OnVisit(0, 1, 5)

	if got := r.FirstVisitAfter(0, 15); got != 20 {
		t.Fatalf("FirstVisitAfter(0,15) = %v, want 20", got)
	}
	if got := r.FirstVisitAfter(0, 20); got != 20 {
		t.Fatalf("FirstVisitAfter(0,20) = %v, want 20 (at-or-after)", got)
	}
	if got := r.FirstVisitAfter(1, 10); got != -1 {
		t.Fatalf("FirstVisitAfter(1,10) = %v, want -1", got)
	}
	if got := r.FirstVisitAfter(2, 0); got != -1 {
		t.Fatalf("FirstVisitAfter(2,0) = %v, want -1", got)
	}

	// Recovery from t0=30 to horizon 100: target 0 recovers at 80
	// (50 s), targets 1 and 2 never — censored at 70 s.
	if got := r.TimeToRecoverOver(nil, 30, 100); got != 70 {
		t.Fatalf("TimeToRecoverOver(nil,30,100) = %v, want 70 (censored)", got)
	}
	if got := r.TimeToRecoverOver([]int{0}, 30, 100); got != 50 {
		t.Fatalf("TimeToRecoverOver({0},30,100) = %v, want 50", got)
	}

	// Max gap in [30, 100]: target 0's is 80→100 = 30 (30→80 = 50,
	// window edges count); unvisited target 2 spans the whole window.
	if got := r.MaxGapOver([]int{0}, 30, 100); got != 50 {
		t.Fatalf("MaxGapOver({0},30,100) = %v, want 50", got)
	}
	if got := r.MaxGapOver([]int{2}, 30, 100); got != 70 {
		t.Fatalf("MaxGapOver({2},30,100) = %v, want 70", got)
	}
	if got := r.MaxGapOver(nil, 30, 100); got != 70 {
		t.Fatalf("MaxGapOver(nil,30,100) = %v, want 70", got)
	}
	// AvgMaxGapOver is the per-target mean: (50 + 70 + 70) / 3.
	want := (50.0 + 70 + 70) / 3
	if got := r.AvgMaxGapOver(nil, 30, 100); got != want {
		t.Fatalf("AvgMaxGapOver(nil,30,100) = %v, want %v", got, want)
	}
	// Degenerate window.
	if got := r.MaxGapOver(nil, 100, 100); got != 0 {
		t.Fatalf("MaxGapOver(nil,100,100) = %v, want 0", got)
	}
}
