// Package mule implements the data-mule entity: a mobile agent that
// travels between waypoints at constant speed (the paper uses 2 m/s),
// dwells at targets to collect their data, drains its battery
// according to the energy model, recharges at recharge-station
// waypoints, and dies where it stands when the battery empties
// mid-leg — exactly the failure mode RW-TCTP is designed to prevent.
//
// Route decisions are delegated to a Router, so the same entity serves
// the fixed-route planners (B/W/RW-TCTP, CHB, Sweep) and the online
// Random baseline.
package mule

import (
	"fmt"

	"tctp/internal/energy"
	"tctp/internal/geom"
	"tctp/internal/sim"
)

// NoTarget marks a waypoint that is not a target visit (e.g. the
// start point a mule moves to during location initialization).
const NoTarget = -1

// Waypoint is one stop on a mule's route.
type Waypoint struct {
	// Pos is the waypoint location.
	Pos geom.Point
	// TargetID is the target collected at this waypoint, or NoTarget.
	TargetID int
	// Recharge marks a recharge-station stop; the battery is restored
	// to full capacity on arrival.
	Recharge bool
	// NotBefore holds the mule at this waypoint until the given
	// absolute simulation time before it proceeds. B-TCTP's location
	// initialization uses it to start all mules patrolling
	// simultaneously once the slowest mule has reached its start
	// point. Zero means no hold.
	NotBefore float64
}

// Router supplies a mule's next waypoint. Next is called once the
// mule has finished its current stop (after dwelling, if the stop was
// a target). Returning ok == false parks the mule permanently.
type Router interface {
	Next(m *Mule) (wp Waypoint, ok bool)
}

// RouterFunc adapts a function to the Router interface.
type RouterFunc func(m *Mule) (Waypoint, bool)

// Next implements Router.
func (f RouterFunc) Next(m *Mule) (Waypoint, bool) { return f(m) }

// Config parameterizes a mule.
type Config struct {
	// ID identifies the mule in callbacks.
	ID int
	// Start is the initial location.
	Start geom.Point
	// Speed is the travel speed in m/s (paper: 2 m/s). Must be > 0.
	Speed float64
	// Energy is the consumption model (costs and dwell time).
	Energy energy.Model
	// Battery constrains the mule's energy; nil means unconstrained
	// (the B-TCTP and W-TCTP experiments ignore energy).
	Battery *energy.Battery
	// Router supplies waypoints. Required.
	Router Router
	// OnVisit, if non-nil, is called at the moment the mule arrives at
	// a target waypoint (visit timestamps define the paper's visiting
	// intervals).
	OnVisit func(muleID, targetID int, t float64)
	// OnDeath, if non-nil, is called when the battery empties.
	OnDeath func(muleID int, t float64, pos geom.Point)
	// OnRecharge, if non-nil, is called after a recharge completes.
	OnRecharge func(muleID int, t float64)
}

// Mule is the simulated agent. Create with New, start with Launch.
type Mule struct {
	cfg    Config
	eng    *sim.Engine
	pos    geom.Point
	dead   bool
	parked bool

	// pending is the mule's single outstanding engine event (there is
	// never more than one); Kill and Reroute cancel it to preempt the
	// mule mid-leg or mid-dwell.
	pending sim.Cancel
	// Leg tracking for mid-leg preemption: while inFlight, the mule is
	// somewhere on the segment legFrom→legTo, having departed at
	// legDepart; its true position is time-interpolated.
	inFlight  bool
	legFrom   geom.Point
	legTo     geom.Point
	legDepart float64
	legDist   float64

	distance  float64
	visits    int
	energyUse float64
	recharges int
}

// New creates a mule bound to the engine. It panics on invalid
// configuration.
func New(eng *sim.Engine, cfg Config) *Mule {
	if cfg.Speed <= 0 {
		panic(fmt.Sprintf("mule: speed %v must be positive", cfg.Speed))
	}
	if cfg.Router == nil {
		panic("mule: nil router")
	}
	return &Mule{cfg: cfg, eng: eng, pos: cfg.Start}
}

// Launch schedules the mule's first movement at the current simulation
// time.
func (m *Mule) Launch() {
	m.pending = m.eng.After(0, m.advance)
}

// ID returns the mule's identifier.
func (m *Mule) ID() int { return m.cfg.ID }

// Pos returns the mule's current (last event) position.
func (m *Mule) Pos() geom.Point { return m.pos }

// Dead reports whether the mule has exhausted its battery.
func (m *Mule) Dead() bool { return m.dead }

// Parked reports whether the router ended the route.
func (m *Mule) Parked() bool { return m.parked }

// Distance returns the total distance travelled in metres.
func (m *Mule) Distance() float64 { return m.distance }

// Visits returns the number of target collections performed.
func (m *Mule) Visits() int { return m.visits }

// EnergyConsumed returns the total energy drained in joules
// (irrespective of recharges).
func (m *Mule) EnergyConsumed() float64 { return m.energyUse }

// Recharges returns how many recharge stops the mule has completed.
func (m *Mule) Recharges() int { return m.recharges }

// Battery returns the mule's battery, or nil when unconstrained.
func (m *Mule) Battery() *energy.Battery { return m.cfg.Battery }

// advance asks the router for the next waypoint and starts the leg.
func (m *Mule) advance() {
	if m.dead || m.parked {
		return
	}
	wp, ok := m.cfg.Router.Next(m)
	if !ok {
		m.parked = true
		return
	}
	dist := m.pos.Dist(wp.Pos)
	moveEnergy := m.cfg.Energy.MoveEnergy(dist)

	if b := m.cfg.Battery; b != nil && !b.CanAfford(moveEnergy) {
		// The battery empties mid-leg: the mule dies after covering
		// whatever distance the remaining charge affords.
		affordable := dist
		if m.cfg.Energy.MoveCost > 0 {
			affordable = b.Level() / m.cfg.Energy.MoveCost
		}
		if affordable > dist {
			affordable = dist
		}
		deathPos := wp.Pos
		if dist > 0 {
			deathPos = m.pos.Lerp(wp.Pos, affordable/dist)
		}
		m.startLeg(deathPos, affordable)
		m.pending = m.eng.After(affordable/m.cfg.Speed, func() {
			m.inFlight = false
			m.energyUse += b.Level()
			b.Drain(b.Level() + 1) // force dead
			m.distance += affordable
			m.pos = deathPos
			m.dead = true
			if m.cfg.OnDeath != nil {
				m.cfg.OnDeath(m.cfg.ID, m.eng.Now(), m.pos)
			}
		})
		return
	}

	m.startLeg(wp.Pos, dist)
	m.pending = m.eng.After(dist/m.cfg.Speed, func() { m.arrive(wp, dist, moveEnergy) })
}

// startLeg records the in-flight segment so Kill/Reroute/PosNow can
// interpolate the mule's position between departure and arrival events.
func (m *Mule) startLeg(to geom.Point, dist float64) {
	m.inFlight = true
	m.legFrom = m.pos
	m.legTo = to
	m.legDepart = m.eng.Now()
	m.legDist = dist
}

// settleLeg finalizes a preempted leg: the mule is moved to its
// time-interpolated position and the distance/energy actually spent on
// the partial leg is booked, exactly as arrive would have booked the
// whole leg.
func (m *Mule) settleLeg() {
	if !m.inFlight {
		return
	}
	m.inFlight = false
	covered := (m.eng.Now() - m.legDepart) * m.cfg.Speed
	if covered > m.legDist {
		covered = m.legDist
	}
	if covered < 0 {
		covered = 0
	}
	if m.legDist > 0 {
		m.pos = m.legFrom.Lerp(m.legTo, covered/m.legDist)
	} else {
		m.pos = m.legTo
	}
	m.distance += covered
	e := m.cfg.Energy.MoveEnergy(covered)
	m.energyUse += e
	if b := m.cfg.Battery; b != nil {
		b.Drain(e)
	}
}

// PosNow returns the mule's position at the current simulation time,
// interpolating along the in-flight leg when the mule is between
// waypoint events.
func (m *Mule) PosNow() geom.Point {
	if !m.inFlight || m.legDist <= 0 {
		return m.pos
	}
	frac := (m.eng.Now() - m.legDepart) * m.cfg.Speed / m.legDist
	if frac <= 0 {
		return m.legFrom
	}
	if frac >= 1 {
		return m.legTo
	}
	return m.legFrom.Lerp(m.legTo, frac)
}

// Kill stops the mule where it stands at the current simulation time —
// the injected-failure analogue of a battery death. The in-flight leg
// (if any) is settled at the interpolated position, the pending event
// is cancelled, and OnDeath fires. Killing a dead mule is a no-op.
func (m *Mule) Kill() {
	if m.dead {
		return
	}
	m.pending.Cancel()
	m.settleLeg()
	m.dead = true
	if m.cfg.OnDeath != nil {
		m.cfg.OnDeath(m.cfg.ID, m.eng.Now(), m.pos)
	}
}

// Reroute swaps the mule's router mid-simulation: the in-flight leg is
// settled at the interpolated position, any pending dwell or hold is
// abandoned, and the mule immediately asks the new router for its next
// waypoint. Rerouting a dead mule only records the router.
func (m *Mule) Reroute(r Router) {
	m.cfg.Router = r
	if m.dead {
		return
	}
	m.pending.Cancel()
	m.settleLeg()
	m.parked = false
	m.pending = m.eng.After(0, m.advance)
}

// arrive finalizes a leg: position/energy bookkeeping, recharge,
// collection dwell, then the next leg.
func (m *Mule) arrive(wp Waypoint, dist, moveEnergy float64) {
	if m.dead {
		return
	}
	m.inFlight = false
	m.pos = wp.Pos
	m.distance += dist
	m.energyUse += moveEnergy
	if b := m.cfg.Battery; b != nil {
		b.Drain(moveEnergy)
	}

	if wp.Recharge {
		if b := m.cfg.Battery; b != nil {
			b.Recharge()
		}
		m.recharges++
		if m.cfg.OnRecharge != nil {
			m.cfg.OnRecharge(m.cfg.ID, m.eng.Now())
		}
	}

	if wp.TargetID == NoTarget {
		m.pending = m.eng.After(m.holdDelay(wp, 0), m.advance)
		return
	}

	// Target visit: the timestamp of record is the arrival instant.
	m.visits++
	if m.cfg.OnVisit != nil {
		m.cfg.OnVisit(m.cfg.ID, wp.TargetID, m.eng.Now())
	}
	visitEnergy := m.cfg.Energy.VisitEnergy()
	if b := m.cfg.Battery; b != nil {
		if !b.CanAfford(visitEnergy) {
			m.energyUse += b.Level()
			b.Drain(b.Level() + 1)
			m.dead = true
			if m.cfg.OnDeath != nil {
				m.cfg.OnDeath(m.cfg.ID, m.eng.Now(), m.pos)
			}
			return
		}
		b.Drain(visitEnergy)
	}
	m.energyUse += visitEnergy
	m.pending = m.eng.After(m.holdDelay(wp, m.cfg.Energy.Dwell), m.advance)
}

// holdDelay returns the time to stay at the waypoint: at least the
// collection dwell, extended so the mule does not leave before
// wp.NotBefore.
func (m *Mule) holdDelay(wp Waypoint, dwell float64) float64 {
	d := dwell
	if wait := wp.NotBefore - m.eng.Now(); wait > d {
		d = wait
	}
	return d
}
