package mule

import (
	"math"
	"testing"

	"tctp/internal/energy"
	"tctp/internal/geom"
	"tctp/internal/sim"
)

// loopRouter cycles through fixed waypoints forever.
type loopRouter struct {
	wps []Waypoint
	i   int
}

func (r *loopRouter) Next(*Mule) (Waypoint, bool) {
	wp := r.wps[r.i%len(r.wps)]
	r.i++
	return wp, true
}

// finiteRouter returns each waypoint once, then parks the mule.
type finiteRouter struct {
	wps []Waypoint
	i   int
}

func (r *finiteRouter) Next(*Mule) (Waypoint, bool) {
	if r.i >= len(r.wps) {
		return Waypoint{}, false
	}
	wp := r.wps[r.i]
	r.i++
	return wp, true
}

func zeroDwell() energy.Model {
	m := energy.Default()
	m.Dwell = 0
	return m
}

func TestTravelTiming(t *testing.T) {
	eng := sim.New()
	var visitTimes []float64
	m := New(eng, Config{
		Start:  geom.Pt(0, 0),
		Speed:  2,
		Energy: zeroDwell(),
		Router: &finiteRouter{wps: []Waypoint{
			{Pos: geom.Pt(100, 0), TargetID: 1},
			{Pos: geom.Pt(100, 100), TargetID: 2},
		}},
		OnVisit: func(_, _ int, tm float64) { visitTimes = append(visitTimes, tm) },
	})
	m.Launch()
	eng.Run(100)
	if len(visitTimes) != 2 {
		t.Fatalf("visits = %v", visitTimes)
	}
	if math.Abs(visitTimes[0]-50) > 1e-9 { // 100 m at 2 m/s
		t.Fatalf("first visit at %v, want 50", visitTimes[0])
	}
	if math.Abs(visitTimes[1]-100) > 1e-9 {
		t.Fatalf("second visit at %v, want 100", visitTimes[1])
	}
	if !m.Parked() {
		t.Fatal("mule not parked after finite route")
	}
	if math.Abs(m.Distance()-200) > 1e-9 {
		t.Fatalf("Distance = %v", m.Distance())
	}
	if m.Visits() != 2 {
		t.Fatalf("Visits = %d", m.Visits())
	}
}

func TestDwellDelaysNextLeg(t *testing.T) {
	eng := sim.New()
	model := energy.Default()
	model.Dwell = 10
	var times []float64
	m := New(eng, Config{
		Start:  geom.Pt(0, 0),
		Speed:  2,
		Energy: model,
		Router: &finiteRouter{wps: []Waypoint{
			{Pos: geom.Pt(20, 0), TargetID: 1}, // arrive t=10
			{Pos: geom.Pt(40, 0), TargetID: 2}, // leave t=20, arrive t=30
		}},
		OnVisit: func(_, _ int, tm float64) { times = append(times, tm) },
	})
	m.Launch()
	eng.Run(100)
	if math.Abs(times[0]-10) > 1e-9 || math.Abs(times[1]-30) > 1e-9 {
		t.Fatalf("visit times = %v, want [10 30]", times)
	}
}

func TestLoopRouteSteadyInterval(t *testing.T) {
	// A mule on a square loop must visit each corner at a fixed
	// period: perimeter / speed.
	eng := sim.New()
	visits := map[int][]float64{}
	r := &loopRouter{wps: []Waypoint{
		{Pos: geom.Pt(100, 0), TargetID: 1},
		{Pos: geom.Pt(100, 100), TargetID: 2},
		{Pos: geom.Pt(0, 100), TargetID: 3},
		{Pos: geom.Pt(0, 0), TargetID: 0},
	}}
	m := New(eng, Config{
		Start:  geom.Pt(0, 0),
		Speed:  2,
		Energy: zeroDwell(),
		Router: r,
		OnVisit: func(_, target int, tm float64) {
			visits[target] = append(visits[target], tm)
		},
	})
	m.Launch()
	eng.RunUntil(2000)
	period := 400.0 / 2.0
	for target, ts := range visits {
		for i := 1; i < len(ts); i++ {
			if math.Abs((ts[i]-ts[i-1])-period) > 1e-9 {
				t.Fatalf("target %d interval %v, want %v", target, ts[i]-ts[i-1], period)
			}
		}
	}
}

func TestVisitAtCurrentPosition(t *testing.T) {
	// A waypoint at the mule's current position is a zero-length leg:
	// the visit happens immediately.
	eng := sim.New()
	var tm float64 = -1
	m := New(eng, Config{
		Start:  geom.Pt(5, 5),
		Speed:  2,
		Energy: zeroDwell(),
		Router: &finiteRouter{wps: []Waypoint{{Pos: geom.Pt(5, 5), TargetID: 7}}},
		OnVisit: func(_, target int, at float64) {
			if target == 7 {
				tm = at
			}
		},
	})
	m.Launch()
	eng.Run(100)
	if tm != 0 {
		t.Fatalf("visit time = %v, want 0", tm)
	}
}

func TestEnergyDrainAndDeath(t *testing.T) {
	// Battery affords exactly 100 m of travel (MoveCost 1 J/m,
	// capacity 100 J): the mule must die at the midpoint of the second
	// 60 m leg, 100 m from the origin.
	eng := sim.New()
	model := energy.Model{MoveCost: 1, CollectCost: 0, Dwell: 0, Capacity: 100}
	b := energy.NewBattery(100)
	var deathAt float64 = -1
	var deathPos geom.Point
	m := New(eng, Config{
		Start:   geom.Pt(0, 0),
		Speed:   2,
		Energy:  model,
		Battery: b,
		Router: &loopRouter{wps: []Waypoint{
			{Pos: geom.Pt(60, 0), TargetID: 1},
			{Pos: geom.Pt(120, 0), TargetID: 2},
		}},
		OnDeath: func(_ int, tm float64, pos geom.Point) { deathAt, deathPos = tm, pos },
	})
	m.Launch()
	eng.Run(1000)
	if !m.Dead() {
		t.Fatal("mule survived an unaffordable route")
	}
	if math.Abs(deathAt-50) > 1e-9 { // 100 m at 2 m/s
		t.Fatalf("death at t=%v, want 50", deathAt)
	}
	if !deathPos.Eq(geom.Pt(100, 0)) {
		t.Fatalf("death pos %v, want (100,0)", deathPos)
	}
	if !b.Dead() {
		t.Fatal("battery not dead")
	}
	if m.Visits() != 1 {
		t.Fatalf("Visits = %d, want 1 (only the first target reached)", m.Visits())
	}
}

func TestRechargeRestoresBattery(t *testing.T) {
	eng := sim.New()
	model := energy.Model{MoveCost: 1, CollectCost: 0, Dwell: 0, Capacity: 150}
	b := energy.NewBattery(150)
	recharges := 0
	m := New(eng, Config{
		Start:   geom.Pt(0, 0),
		Speed:   2,
		Energy:  model,
		Battery: b,
		Router: &finiteRouter{wps: []Waypoint{
			{Pos: geom.Pt(100, 0), TargetID: 1},
			{Pos: geom.Pt(100, 50), TargetID: NoTarget, Recharge: true},
			{Pos: geom.Pt(0, 50), TargetID: 2},
		}},
		OnRecharge: func(_ int, _ float64) { recharges++ },
	})
	m.Launch()
	eng.Run(1000)
	if m.Dead() {
		t.Fatal("mule died despite recharge")
	}
	if recharges != 1 || m.Recharges() != 1 {
		t.Fatalf("recharges = %d/%d", recharges, m.Recharges())
	}
	// After recharge (full 150 J) the mule spent 100 J on the last
	// leg: 50 J remain.
	if math.Abs(b.Level()-50) > 1e-9 {
		t.Fatalf("battery level = %v, want 50", b.Level())
	}
	if m.Visits() != 2 {
		t.Fatalf("Visits = %d", m.Visits())
	}
}

func TestNonTargetWaypointNotCounted(t *testing.T) {
	eng := sim.New()
	visits := 0
	m := New(eng, Config{
		Start:  geom.Pt(0, 0),
		Speed:  1,
		Energy: zeroDwell(),
		Router: &finiteRouter{wps: []Waypoint{
			{Pos: geom.Pt(10, 0), TargetID: NoTarget},
			{Pos: geom.Pt(20, 0), TargetID: 3},
		}},
		OnVisit: func(_, _ int, _ float64) { visits++ },
	})
	m.Launch()
	eng.Run(100)
	if visits != 1 || m.Visits() != 1 {
		t.Fatalf("visits = %d/%d, want 1", visits, m.Visits())
	}
}

func TestEnergyAccounting(t *testing.T) {
	eng := sim.New()
	model := energy.Model{MoveCost: 2, CollectCost: 0.5, Dwell: 4, Capacity: 1e6}
	m := New(eng, Config{
		Start:   geom.Pt(0, 0),
		Speed:   1,
		Energy:  model,
		Battery: energy.NewBattery(1e6),
		Router: &finiteRouter{wps: []Waypoint{
			{Pos: geom.Pt(100, 0), TargetID: 1},
		}},
	})
	m.Launch()
	eng.Run(100)
	// 100 m × 2 J/m + 0.5 J/s × 4 s dwell = 202 J.
	if math.Abs(m.EnergyConsumed()-202) > 1e-9 {
		t.Fatalf("EnergyConsumed = %v, want 202", m.EnergyConsumed())
	}
	if math.Abs(m.Battery().Level()-(1e6-202)) > 1e-6 {
		t.Fatalf("battery level = %v", m.Battery().Level())
	}
}

func TestDeathDuringCollection(t *testing.T) {
	// Enough energy to reach the target but not to collect from it.
	eng := sim.New()
	model := energy.Model{MoveCost: 1, CollectCost: 10, Dwell: 1, Capacity: 105}
	b := energy.NewBattery(105)
	died := false
	m := New(eng, Config{
		Start:   geom.Pt(0, 0),
		Speed:   1,
		Energy:  model,
		Battery: b,
		Router: &loopRouter{wps: []Waypoint{
			{Pos: geom.Pt(100, 0), TargetID: 1},
			{Pos: geom.Pt(0, 0), TargetID: 2},
		}},
		OnDeath: func(_ int, _ float64, _ geom.Point) { died = true },
	})
	m.Launch()
	eng.Run(1000)
	if !died || !m.Dead() {
		t.Fatal("mule should die during collection (5 J left, 10 J needed)")
	}
}

func TestUnconstrainedBatteryNeverDies(t *testing.T) {
	eng := sim.New()
	m := New(eng, Config{
		Start:  geom.Pt(0, 0),
		Speed:  2,
		Energy: zeroDwell(),
		Router: &loopRouter{wps: []Waypoint{
			{Pos: geom.Pt(400, 0), TargetID: 1},
			{Pos: geom.Pt(0, 0), TargetID: 2},
		}},
	})
	m.Launch()
	eng.RunUntil(100000)
	if m.Dead() {
		t.Fatal("unconstrained mule died")
	}
	if m.Visits() < 100 {
		t.Fatalf("Visits = %d, expected many", m.Visits())
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.New()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("zero speed accepted")
			}
		}()
		New(eng, Config{Speed: 0, Router: &loopRouter{wps: []Waypoint{{}}}})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil router accepted")
			}
		}()
		New(eng, Config{Speed: 1})
	}()
}

func TestMuleID(t *testing.T) {
	eng := sim.New()
	m := New(eng, Config{ID: 42, Speed: 1, Energy: zeroDwell(),
		Router: &finiteRouter{}})
	if m.ID() != 42 {
		t.Fatalf("ID = %d", m.ID())
	}
	m.Launch()
	eng.Run(10)
	if !m.Parked() {
		t.Fatal("empty route should park immediately")
	}
}

func TestNotBeforeHoldsMule(t *testing.T) {
	eng := sim.New()
	var visitAt float64 = -1
	m := New(eng, Config{
		Start:  geom.Pt(0, 0),
		Speed:  2,
		Energy: zeroDwell(),
		Router: &finiteRouter{wps: []Waypoint{
			{Pos: geom.Pt(20, 0), TargetID: NoTarget, NotBefore: 100}, // arrive t=10, hold to 100
			{Pos: geom.Pt(40, 0), TargetID: 1},                        // depart 100, arrive 110
		}},
		OnVisit: func(_, _ int, tm float64) { visitAt = tm },
	})
	m.Launch()
	eng.Run(100)
	if visitAt != 110 {
		t.Fatalf("visit at %v, want 110 (hold ignored?)", visitAt)
	}
}

func TestNotBeforeInPastIsNoop(t *testing.T) {
	eng := sim.New()
	var visitAt float64 = -1
	m := New(eng, Config{
		Start:  geom.Pt(0, 0),
		Speed:  2,
		Energy: zeroDwell(),
		Router: &finiteRouter{wps: []Waypoint{
			{Pos: geom.Pt(20, 0), TargetID: NoTarget, NotBefore: 5}, // arrive t=10 > 5
			{Pos: geom.Pt(40, 0), TargetID: 1},
		}},
		OnVisit: func(_, _ int, tm float64) { visitAt = tm },
	})
	m.Launch()
	eng.Run(100)
	if visitAt != 20 {
		t.Fatalf("visit at %v, want 20", visitAt)
	}
}

func TestNotBeforeCombinesWithDwell(t *testing.T) {
	// At a target waypoint the mule stays max(dwell, hold remaining).
	eng := sim.New()
	model := energy.Default()
	model.Dwell = 3
	var times []float64
	m := New(eng, Config{
		Start:  geom.Pt(0, 0),
		Speed:  2,
		Energy: model,
		Router: &finiteRouter{wps: []Waypoint{
			{Pos: geom.Pt(20, 0), TargetID: 1, NotBefore: 50}, // arrive 10, visit 10, leave 50
			{Pos: geom.Pt(40, 0), TargetID: 2},                // arrive 60
		}},
		OnVisit: func(_, _ int, tm float64) { times = append(times, tm) },
	})
	m.Launch()
	eng.Run(100)
	if len(times) != 2 || times[0] != 10 || times[1] != 60 {
		t.Fatalf("visit times = %v, want [10 60]", times)
	}
}

func TestKillMidLegInterpolates(t *testing.T) {
	eng := sim.New()
	var deathT float64
	var deathPos geom.Point
	m := New(eng, Config{
		Start:  geom.Pt(0, 0),
		Speed:  2,
		Energy: zeroDwell(),
		Router: &finiteRouter{wps: []Waypoint{{Pos: geom.Pt(100, 0), TargetID: 1}}},
		OnDeath: func(_ int, tm float64, p geom.Point) {
			deathT, deathPos = tm, p
		},
	})
	m.Launch()
	eng.Schedule(25, m.Kill) // halfway along the 50 s leg
	eng.RunUntil(100)
	if !m.Dead() {
		t.Fatal("mule not dead after Kill")
	}
	if deathT != 25 {
		t.Fatalf("death at t=%v, want 25", deathT)
	}
	want := geom.Pt(50, 0)
	if math.Abs(deathPos.X-want.X) > 1e-9 || math.Abs(deathPos.Y-want.Y) > 1e-9 {
		t.Fatalf("death position %v, want %v (interpolated mid-leg)", deathPos, want)
	}
	if math.Abs(m.Distance()-50) > 1e-9 {
		t.Fatalf("distance %v, want the 50 m covered before the kill", m.Distance())
	}
	if m.Visits() != 0 {
		t.Fatalf("%d visits counted on an unfinished leg", m.Visits())
	}
	m.Kill() // idempotent
	if deathT != 25 {
		t.Fatal("second Kill re-fired OnDeath")
	}
}

func TestRerouteMidLegContinuesFromInterpolatedPos(t *testing.T) {
	eng := sim.New()
	var visits []float64
	m := New(eng, Config{
		Start:   geom.Pt(0, 0),
		Speed:   2,
		Energy:  zeroDwell(),
		Router:  &finiteRouter{wps: []Waypoint{{Pos: geom.Pt(100, 0), TargetID: 1}}},
		OnVisit: func(_, _ int, tm float64) { visits = append(visits, tm) },
	})
	m.Launch()
	eng.Schedule(25, func() {
		if got := m.PosNow(); math.Abs(got.X-50) > 1e-9 || math.Abs(got.Y) > 1e-9 {
			t.Fatalf("PosNow mid-leg = %v, want (50,0)", got)
		}
		// Turn around: back to the origin, 50 m from here.
		m.Reroute(&finiteRouter{wps: []Waypoint{{Pos: geom.Pt(0, 0), TargetID: 2}}})
	})
	eng.RunUntil(200)
	// Old leg abandoned: exactly one visit, at t = 25 + 50/2 = 50.
	if len(visits) != 1 || math.Abs(visits[0]-50) > 1e-9 {
		t.Fatalf("visits %v, want exactly one at t=50", visits)
	}
	if math.Abs(m.Distance()-100) > 1e-9 {
		t.Fatalf("distance %v, want 50 out + 50 back", m.Distance())
	}
	if !m.Parked() {
		t.Fatal("mule not parked after the rerouted finite route")
	}
}
