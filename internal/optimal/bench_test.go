package optimal

import (
	"fmt"
	"testing"

	"tctp/internal/xrand"
)

// BenchmarkOptimalHeldKarp is benchgate-gated: the exact tier runs
// inside quality sweeps, so a regression here slows every ratio
// column. n=15 is the ExactThreshold worst case TourBound can hit.
func BenchmarkOptimalHeldKarp(b *testing.B) {
	for _, n := range []int{10, 15} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := randPts(n, xrand.New(7))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, l := HeldKarp(pts)
				if l <= 0 {
					b.Fatal("degenerate length")
				}
			}
		})
	}
}

func BenchmarkOptimalMinDCDT(b *testing.B) {
	pts := randPts(12, xrand.New(7))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, d := MinDCDT(pts, 4, 2)
		if d <= 0 {
			b.Fatal("degenerate DCDT")
		}
	}
}
