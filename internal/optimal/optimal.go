// Package optimal is the reference-optimum layer: exact solvers for
// small patrolling instances and cheap lower bounds for large ones,
// so every heuristic planner in the repository can report an
// approximation ratio against a trusted denominator.
//
// Three tiers:
//
//   - Exact, small n. HeldKarp solves the optimal closed tour by
//     bitmask dynamic programming in O(n²·2ⁿ); MinDCDT finds the
//     ordering minimizing the steady-state data-collecting delay time
//     by branch-and-bound over target orderings. Both are validated
//     against the brute-force permutation oracle (tour.BruteForce) at
//     small n and against each other up to MaxExact.
//
//   - Lower bounds, any n. MST (Prim) and HullBound (convex-hull
//     perimeter) bound the optimal tour length from below: deleting
//     one edge of the optimal tour leaves a spanning tree, so
//     MST ≤ L*; and the perimeter of the convex hull of the points is
//     at most the length of any closed curve through them, so
//     hull ≤ L*. Conversely L* ≤ 2·MST (doubled-tree tour), which the
//     property tests pin.
//
//   - TourBound picks the best applicable tier: the exact Held-Karp
//     length up to ExactThreshold points, else max(hull, MST). The
//     induced interval bound (IntervalBound) divides a tour bound by
//     the visit weight and fleet speed, giving a per-target
//     steady-state visiting-interval floor for the DCDT ratio.
//
// Everything here is deterministic and allocation-bounded; nothing
// reads clocks or random sources, so ratios computed from these
// bounds are byte-identical across runs, workers, and shards.
package optimal

import (
	"fmt"
	"math"

	"tctp/internal/geom"
	"tctp/internal/hull"
	"tctp/internal/tour"
)

const (
	// MaxExact is the hard instance-size cap for the exact solvers.
	// Held-Karp is O(n²·2ⁿ) time and O(n·2ⁿ) memory; at n = 18 that
	// is ~2.2M states (≈20 MB) and well under a second. Beyond it the
	// exact tier would silently dominate a sweep, so HeldKarp and
	// MinDCDT panic instead.
	MaxExact = 18

	// ExactThreshold is the instance size up to which TourBound uses
	// the exact Held-Karp optimum; larger instances fall back to the
	// hull/MST lower bounds. It is below MaxExact so callers can still
	// request exact solutions slightly past the automatic tier.
	ExactThreshold = 15
)

// Bound is a lower bound on the optimal closed-tour length over a
// point set. Exact marks the bound as the optimum itself (the exact
// tier), making the derived ratio a true approximation ratio rather
// than an upper estimate of one.
type Bound struct {
	Value float64
	Exact bool
}

// TourBound returns the best applicable lower bound on the optimal
// closed-tour length over pts: the exact Held-Karp optimum for
// instances up to ExactThreshold points, else the larger of the
// convex-hull perimeter and the MST weight. Degenerate instances
// (n ≤ 1) have bound 0.
func TourBound(pts []geom.Point) Bound {
	if len(pts) <= 1 {
		return Bound{Exact: true}
	}
	if len(pts) <= ExactThreshold {
		_, l := HeldKarp(pts)
		return Bound{Value: l, Exact: true}
	}
	h := HullBound(pts)
	if m := MST(pts); m > h {
		return Bound{Value: m}
	}
	return Bound{Value: h}
}

// IntervalBound is the induced steady-state visiting-interval lower
// bound for one target: a fleet whose speeds sum to speedSum patrolling
// a closed walk of length ≥ tourLen cannot revisit a weight-w target
// more often than every tourLen/(w·speedSum) seconds on average. It
// returns 0 (no bound) for degenerate weights or speeds.
func IntervalBound(tourLen float64, weight int, speedSum float64) float64 {
	if weight <= 0 || speedSum <= 0 {
		return 0
	}
	return tourLen / (float64(weight) * speedSum)
}

// HeldKarp returns the optimal closed tour over pts and its length,
// by the Held-Karp bitmask dynamic program. The tour starts at index
// 0 and is canonicalized to the lexicographically smaller of the two
// traversal directions, so equal inputs produce identical slices. The
// returned length is recomputed with tour.Length, making it bit-
// comparable with every other tour length in the repository. Panics
// if len(pts) > MaxExact.
func HeldKarp(pts []geom.Point) (tour.Tour, float64) {
	n := len(pts)
	if n > MaxExact {
		panic(fmt.Sprintf("optimal: HeldKarp on %d points exceeds MaxExact %d", n, MaxExact))
	}
	if n < 3 {
		t := make(tour.Tour, n)
		for i := range t {
			t[i] = i
		}
		return t, tour.Length(pts, t)
	}

	// dp[mask][j] = shortest path 0 → … → city j+1 visiting exactly
	// the cities of mask (bit j ↦ city j+1; city 0 is the fixed
	// start and lives outside the mask).
	m := n - 1
	full := 1 << m
	dp := make([]float64, full*m)
	par := make([]int16, full*m)
	for i := range dp {
		dp[i] = math.Inf(1)
	}
	d := func(a, b int) float64 { return pts[a].Dist(pts[b]) }
	for j := 0; j < m; j++ {
		dp[(1<<j)*m+j] = d(0, j+1)
		par[(1<<j)*m+j] = -1
	}
	for mask := 1; mask < full; mask++ {
		if mask&(mask-1) == 0 {
			continue // single-city masks are the base case
		}
		base := mask * m
		for j := 0; j < m; j++ {
			if mask&(1<<j) == 0 {
				continue
			}
			prev := (mask ^ (1 << j)) * m
			best, bestK := math.Inf(1), -1
			for k := 0; k < m; k++ {
				if mask&(1<<k) == 0 || k == j {
					continue
				}
				if c := dp[prev+k] + d(k+1, j+1); c < best {
					best, bestK = c, k
				}
			}
			dp[base+j] = best
			par[base+j] = int16(bestK)
		}
	}

	// Close the cycle back to city 0 and reconstruct.
	base := (full - 1) * m
	best, bestJ := math.Inf(1), -1
	for j := 0; j < m; j++ {
		if c := dp[base+j] + d(j+1, 0); c < best {
			best, bestJ = c, j
		}
	}
	t := make(tour.Tour, n)
	mask, j := full-1, bestJ
	for i := n - 1; i >= 1; i-- {
		t[i] = j + 1
		pj := par[mask*m+j]
		mask ^= 1 << j
		j = int(pj)
	}
	t[0] = 0
	canonicalize(t)
	return t, tour.Length(pts, t)
}

// canonicalize reflects a 0-rooted tour in place so that its second
// element is smaller than its last: of the two traversal directions
// of the same cycle, keep the lexicographically smaller. Tour length
// is direction-invariant, so this only fixes the representation.
func canonicalize(t tour.Tour) {
	if len(t) >= 3 && t[1] > t[len(t)-1] {
		for i, j := 1, len(t)-1; i < j; i, j = i+1, j-1 {
			t[i], t[j] = t[j], t[i]
		}
	}
}

// MinDCDT returns the target ordering minimizing the steady-state
// data-collecting delay time for mules same-speed data mules sharing
// one closed walk, and that minimum DCDT = L/(mules·speed). Because
// the DCDT of a shared cycle is proportional to its length, this is
// the optimal-tour problem again — but MinDCDT solves it by an
// independent branch-and-bound over orderings (MST-of-remainder
// admissible bound, nearest-first successor order, NN+2-opt incumbent),
// so it cross-checks HeldKarp rather than re-deriving it. Panics if
// len(pts) > MaxExact; returns 0 DCDT for degenerate fleets.
func MinDCDT(pts []geom.Point, mules int, speed float64) (tour.Tour, float64) {
	n := len(pts)
	if n > MaxExact {
		panic(fmt.Sprintf("optimal: MinDCDT on %d points exceeds MaxExact %d", n, MaxExact))
	}
	dcdt := func(length float64) float64 {
		if mules <= 0 || speed <= 0 {
			return 0
		}
		return length / (float64(mules) * speed)
	}
	if n < 3 {
		t := make(tour.Tour, n)
		for i := range t {
			t[i] = i
		}
		return t, dcdt(tour.Length(pts, t))
	}

	// Incumbent: nearest-neighbour improved by 2-opt.
	inc := tour.TwoOpt(pts, tour.NearestNeighbor(pts, 0))
	best := tour.Length(pts, inc)
	bestTour := append(tour.Tour(nil), inc...)

	bb := &bbState{pts: pts, visited: make([]bool, n), path: make(tour.Tour, 1, n)}
	bb.path[0] = 0
	bb.visited[0] = true
	bb.best, bb.bestTour = best, bestTour
	bb.dfs(0, 0)

	t := bb.bestTour
	canonicalize(t)
	return t, dcdt(tour.Length(pts, t))
}

type bbState struct {
	pts      []geom.Point
	visited  []bool
	path     tour.Tour
	best     float64
	bestTour tour.Tour
}

// dfs extends the partial path ending at cur with every unvisited
// point in nearest-first order, pruning branches whose partial length
// plus the MST over {cur, 0, unvisited} cannot beat the incumbent.
func (s *bbState) dfs(cur int, partial float64) {
	n := len(s.pts)
	if len(s.path) == n {
		if total := partial + s.pts[cur].Dist(s.pts[0]); total < s.best {
			s.best = total
			s.bestTour = append(s.bestTour[:0], s.path...)
		}
		return
	}
	if partial+s.remainderBound(cur) >= s.best {
		return
	}
	// Nearest-first successor order: finds tight incumbents early,
	// which powers the prune.
	type cand struct {
		idx int
		d   float64
	}
	cands := make([]cand, 0, n-len(s.path))
	for i := 0; i < n; i++ {
		if !s.visited[i] {
			cands = append(cands, cand{i, s.pts[cur].Dist(s.pts[i])})
		}
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].d < cands[j-1].d; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	for _, c := range cands {
		s.visited[c.idx] = true
		s.path = append(s.path, c.idx)
		s.dfs(c.idx, partial+c.d)
		s.path = s.path[:len(s.path)-1]
		s.visited[c.idx] = false
	}
}

// remainderBound is an admissible completion bound: finishing the
// tour means connecting cur, the start, and every unvisited point
// into one walk, which costs at least the MST over that vertex set.
func (s *bbState) remainderBound(cur int) float64 {
	rem := make([]geom.Point, 0, len(s.pts))
	rem = append(rem, s.pts[cur], s.pts[0])
	for i, v := range s.visited {
		if !v {
			rem = append(rem, s.pts[i])
		}
	}
	return MST(rem)
}

// MST returns the total weight of the Euclidean minimum spanning tree
// over pts (Prim, O(n²)). It is a lower bound on the optimal closed-
// tour length: deleting any edge of the optimal tour leaves a
// spanning tree. 0 for n ≤ 1.
func MST(pts []geom.Point) float64 {
	n := len(pts)
	if n <= 1 {
		return 0
	}
	const unreached = math.MaxFloat64
	dist := make([]float64, n)
	inTree := make([]bool, n)
	for i := range dist {
		dist[i] = unreached
	}
	dist[0] = 0
	total := 0.0
	for iter := 0; iter < n; iter++ {
		best, bi := unreached, -1
		for i := 0; i < n; i++ {
			if !inTree[i] && dist[i] < best {
				best, bi = dist[i], i
			}
		}
		inTree[bi] = true
		total += best
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := pts[bi].Dist(pts[i]); d < dist[i] {
					dist[i] = d
				}
			}
		}
	}
	return total
}

// HullBound returns the perimeter of the convex hull of pts — a lower
// bound on the length of any closed tour through them, since the hull
// is the shortest closed curve enclosing the point set. 0 for n ≤ 1
// (and for fully coincident points).
func HullBound(pts []geom.Point) float64 {
	if len(pts) <= 1 {
		return 0
	}
	return hull.Perimeter(hull.Convex(pts))
}
