package optimal

import (
	"math"
	"testing"

	"tctp/internal/geom"
	"tctp/internal/hull"
	"tctp/internal/tour"
	"tctp/internal/xrand"
)

func randPts(n int, src *xrand.Source) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(src.Range(0, 800), src.Range(0, 800))
	}
	return pts
}

// canon returns the tour reflected to the canonical direction (second
// element smaller than last), matching HeldKarp's output contract.
func canon(t tour.Tour) tour.Tour {
	out := append(tour.Tour(nil), t...)
	canonicalize(out)
	return out
}

// Held-Karp must reproduce the brute-force permutation optimum
// bit-exactly: same canonical permutation, same tour.Length bits.
// Random coordinates make the optimum unique up to direction with
// probability 1, and both solvers root the cycle at index 0.
func TestHeldKarpMatchesBruteForce(t *testing.T) {
	src := xrand.New(41)
	for n := 1; n <= 9; n++ {
		for trial := 0; trial < 20; trial++ {
			pts := randPts(n, src)
			ht, hl := HeldKarp(pts)
			if err := tour.Validate(ht, n); err != nil {
				t.Fatalf("n=%d trial %d: %v", n, trial, err)
			}
			bt := canon(tour.BruteForce(pts))
			for i := range bt {
				if ht[i] != bt[i] {
					t.Fatalf("n=%d trial %d: HeldKarp %v != brute %v", n, trial, ht, bt)
				}
			}
			if bl := tour.Length(pts, bt); hl != bl {
				t.Fatalf("n=%d trial %d: length %v != brute %v", n, trial, hl, bl)
			}
		}
	}
}

// The branch-and-bound DCDT search is an independent exact solver; it
// must agree with Held-Karp on the optimal cycle length at every size
// both can handle, and its DCDT must equal length/(mules·speed).
func TestMinDCDTMatchesHeldKarp(t *testing.T) {
	src := xrand.New(42)
	for n := 1; n <= 12; n++ {
		for trial := 0; trial < 5; trial++ {
			pts := randPts(n, src)
			_, hl := HeldKarp(pts)
			bt, dcdt := MinDCDT(pts, 4, 2)
			if err := tour.Validate(bt, n); err != nil {
				t.Fatalf("n=%d trial %d: %v", n, trial, err)
			}
			bl := tour.Length(pts, bt)
			if bl != hl {
				t.Fatalf("n=%d trial %d: B&B length %v, Held-Karp %v", n, trial, bl, hl)
			}
			if want := bl / (4 * 2); dcdt != want {
				t.Fatalf("n=%d trial %d: DCDT %v, want %v", n, trial, dcdt, want)
			}
		}
	}
}

func TestMinDCDTDegenerateFleet(t *testing.T) {
	pts := randPts(6, xrand.New(7))
	if _, d := MinDCDT(pts, 0, 2); d != 0 {
		t.Fatalf("0 mules: DCDT %v", d)
	}
	if _, d := MinDCDT(pts, 2, 0); d != 0 {
		t.Fatalf("0 speed: DCDT %v", d)
	}
}

// The bound sandwich on random instances:
// hull perimeter ≤ MST-bound ∨ hull ≤ L* ≤ 2·MST. At exact sizes L*
// comes from Held-Karp; the sandwich proves both lower bounds sound
// and the MST not degenerately loose.
func TestBoundSandwich(t *testing.T) {
	src := xrand.New(43)
	const eps = 1e-9 // hull/MST and DP sum in different orders
	for n := 2; n <= 12; n++ {
		for trial := 0; trial < 20; trial++ {
			pts := randPts(n, src)
			_, opt := HeldKarp(pts)
			h, m := HullBound(pts), MST(pts)
			if h > opt*(1+eps) {
				t.Fatalf("n=%d trial %d: hull %v > optimal %v", n, trial, h, opt)
			}
			if m > opt*(1+eps) {
				t.Fatalf("n=%d trial %d: MST %v > optimal %v", n, trial, m, opt)
			}
			if opt > 2*m*(1+eps) {
				t.Fatalf("n=%d trial %d: optimal %v > 2·MST %v", n, trial, opt, 2*m)
			}
		}
	}
}

// The hull perimeter must also bound every *heuristic* circuit, and
// the hull of a degenerate (collinear) instance must still bound
// correctly — the perimeter degenerates to twice the span, which is
// exactly the optimal tour.
func TestHullBoundCollinear(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(4, 0), geom.Pt(7, 0)}
	_, opt := HeldKarp(pts)
	if h := HullBound(pts); math.Abs(h-20) > 1e-12 || math.Abs(opt-20) > 1e-12 {
		t.Fatalf("collinear: hull %v, optimal %v, want 20", h, opt)
	}
}

func TestHullPerimeterUnderContainment(t *testing.T) {
	// Perimeter of the hull of a subset never exceeds the superset's
	// tour: any closed circuit through all points is a closed curve
	// enclosing the hull.
	src := xrand.New(44)
	for trial := 0; trial < 30; trial++ {
		pts := randPts(10, src)
		h := HullBound(pts)
		for _, mk := range []func() tour.Tour{
			func() tour.Tour { return tour.NearestNeighbor(pts, 0) },
			func() tour.Tour { return tour.Random(len(pts), src) },
		} {
			if l := tour.Length(pts, mk()); h > l*(1+1e-9) {
				t.Fatalf("trial %d: hull %v exceeds circuit %v", trial, h, l)
			}
		}
	}
}

func TestHullConvexAgainstGrahamScan(t *testing.T) {
	// The two hull constructions must agree on perimeter — the bound
	// must not depend on which one Convex happens to be.
	src := xrand.New(45)
	for trial := 0; trial < 30; trial++ {
		pts := randPts(12, src)
		a := hull.Perimeter(hull.Convex(pts))
		b := hull.Perimeter(hull.GrahamScan(pts))
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("trial %d: Convex %v vs GrahamScan %v", trial, a, b)
		}
	}
}

func TestMSTEdgeCases(t *testing.T) {
	if m := MST(nil); m != 0 {
		t.Fatalf("empty MST %v", m)
	}
	if m := MST([]geom.Point{geom.Pt(1, 1)}); m != 0 {
		t.Fatalf("single-point MST %v", m)
	}
	if m := MST([]geom.Point{geom.Pt(0, 0), geom.Pt(3, 4)}); m != 5 {
		t.Fatalf("two-point MST %v, want 5", m)
	}
	// Unit square: MST weight 3 (three sides), tour 4.
	sq := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)}
	if m := MST(sq); math.Abs(m-3) > 1e-12 {
		t.Fatalf("square MST %v, want 3", m)
	}
}

func TestTourBoundTiers(t *testing.T) {
	src := xrand.New(46)
	small := randPts(8, src)
	_, opt := HeldKarp(small)
	if b := TourBound(small); !b.Exact || b.Value != opt {
		t.Fatalf("small bound %+v, want exact %v", b, opt)
	}
	large := randPts(ExactThreshold+5, src)
	b := TourBound(large)
	if b.Exact {
		t.Fatalf("large instance claimed exact")
	}
	h, m := HullBound(large), MST(large)
	if want := math.Max(h, m); b.Value != want {
		t.Fatalf("large bound %v, want max(%v, %v)", b.Value, h, m)
	}
	if b := TourBound(nil); b.Value != 0 || !b.Exact {
		t.Fatalf("empty bound %+v", b)
	}
}

func TestIntervalBound(t *testing.T) {
	if v := IntervalBound(800, 1, 8); v != 100 {
		t.Fatalf("IntervalBound %v, want 100", v)
	}
	if v := IntervalBound(800, 4, 8); v != 25 {
		t.Fatalf("weighted IntervalBound %v, want 25", v)
	}
	if v := IntervalBound(800, 0, 8); v != 0 {
		t.Fatalf("zero-weight IntervalBound %v", v)
	}
	if v := IntervalBound(800, 1, 0); v != 0 {
		t.Fatalf("zero-speed IntervalBound %v", v)
	}
}

func TestHeldKarpPanicsAboveCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic above MaxExact")
		}
	}()
	HeldKarp(randPts(MaxExact+1, xrand.New(1)))
}
