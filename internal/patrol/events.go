// Dynamic-world events: the runtime form of a mid-horizon schedule —
// injected mule failures and target spawns — and the handoff policies
// that decide how a plan-based fleet reacts at the event boundary.
//
// The declarative, JSON-round-trippable form lives in
// internal/scenario (which resolves attrition draws against the
// failure stream); this package consumes the resolved schedule. The
// split mirrors scenario.Fleet vs patrol.FleetMember: scenario imports
// patrol, so the runtime types live here.

package patrol

import (
	"fmt"
	"math"
	"sort"

	"tctp/internal/core"
	"tctp/internal/field"
	"tctp/internal/geom"
	"tctp/internal/mule"
	"tctp/internal/sim"
	"tctp/internal/xrand"
)

// EventKind discriminates dynamic-world events.
type EventKind int

const (
	// KillMule stops a mule where it stands at the event time — the
	// injected analogue of a battery death (attrition).
	KillMule EventKind = iota
	// SpawnTarget activates a target at the event time; the target is
	// dormant (unplanned, unvisited) before it.
	SpawnTarget
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case KillMule:
		return "kill-mule"
	case SpawnTarget:
		return "spawn-target"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one resolved dynamic-world event. Events sharing the same
// time are applied in one batch (kills first bookkeeping-wise, then
// spawns) followed by at most one replan.
type Event struct {
	// Time is the absolute simulation time of the event.
	Time float64
	// Kind selects the event type.
	Kind EventKind
	// Mule is the global mule index (KillMule).
	Mule int
	// Target is the global target id (SpawnTarget).
	Target int
}

// Handoff selects how a plan-based fleet responds to events.
type Handoff int

const (
	// HandoffNone leaves the surviving routes untouched: a dead
	// group's targets go unvisited and spawned targets are never
	// patrolled. It is the degraded baseline the absorb policy is
	// measured against.
	HandoffNone Handoff = iota
	// HandoffAbsorb swaps in a replanned core.FleetPlan at the event
	// boundary: surviving groups absorb dead groups' targets
	// (core.AbsorbReplan) and all surviving mules restart location
	// initialization from their current positions.
	HandoffAbsorb
)

// String returns the canonical policy name.
func (h Handoff) String() string {
	switch h {
	case HandoffNone:
		return "none"
	case HandoffAbsorb:
		return "absorb"
	}
	return fmt.Sprintf("Handoff(%d)", int(h))
}

// HandoffNames lists the accepted policy names.
const HandoffNames = "none, absorb"

// ParseHandoff parses a policy name; the empty string is HandoffNone.
func ParseHandoff(s string) (Handoff, error) {
	switch s {
	case "", "none":
		return HandoffNone, nil
	case "absorb":
		return HandoffAbsorb, nil
	}
	return 0, fmt.Errorf("patrol: unknown handoff policy %q (accepted: %s)", s, HandoffNames)
}

// RandomFailures derives a seeded failure schedule for an n-mule
// fleet: each mule independently dies with probability rate, at a time
// drawn uniformly over [0, horizon). The draw order (one probability
// draw per mule, a time draw only on failure) and the final (time,
// mule) sort are fixed, so a given source state always yields the same
// schedule — the sweep layer's Failures axis is built on this.
func RandomFailures(n int, rate, horizon float64, src *xrand.Source) []Event {
	var out []Event
	for i := 0; i < n; i++ {
		if src.Float64() < rate {
			out = append(out, Event{Time: src.Float64() * horizon, Kind: KillMule, Mule: i})
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Time < out[b].Time })
	return out
}

// FailureRecord is one injected mule failure that took effect.
type FailureRecord struct {
	// Time is the simulation time of the failure.
	Time float64
	// Mule is the global index of the killed mule.
	Mule int
}

// ReplanRecord is one successful mid-run plan swap.
type ReplanRecord struct {
	// Time is the event-boundary time the new plan took effect.
	Time float64
	// Survivors is the fleet size the new plan covers.
	Survivors int
	// Groups is the new plan's group count.
	Groups int
}

// normalizeEvents validates and time-sorts the schedule and derives
// the initial active-target mask (nil when no target starts dormant).
func normalizeEvents(s *field.Scenario, opts Options) ([]Event, []bool, error) {
	if len(opts.Events) == 0 {
		return nil, nil, nil
	}
	evs := append([]Event(nil), opts.Events...)
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].Time < evs[b].Time })
	var active []bool
	for _, ev := range evs {
		if math.IsNaN(ev.Time) || ev.Time < 0 {
			return nil, nil, fmt.Errorf("patrol: event time %v invalid", ev.Time)
		}
		switch ev.Kind {
		case KillMule:
			if ev.Mule < 0 || ev.Mule >= s.NumMules() {
				return nil, nil, fmt.Errorf("patrol: kill-mule event for mule %d of %d", ev.Mule, s.NumMules())
			}
		case SpawnTarget:
			if ev.Target < 0 || ev.Target >= s.NumTargets() {
				return nil, nil, fmt.Errorf("patrol: spawn event for target %d of %d", ev.Target, s.NumTargets())
			}
			if ev.Target == s.SinkID {
				return nil, nil, fmt.Errorf("patrol: target %d is the sink and cannot spawn", ev.Target)
			}
			if active == nil {
				active = make([]bool, s.NumTargets())
				for i := range active {
					active[i] = true
				}
			}
			if !active[ev.Target] {
				return nil, nil, fmt.Errorf("patrol: target %d spawns twice", ev.Target)
			}
			active[ev.Target] = false
		default:
			return nil, nil, fmt.Errorf("patrol: unknown event kind %v", ev.Kind)
		}
	}
	return evs, active, nil
}

// replanner owns one run's dynamic-world state: which mules are alive
// (injected kills and emergent battery deaths alike), which targets
// are active, and the group structure of the currently-installed plan.
// It is driven from scheduled event batches inside the single-threaded
// simulation loop.
type replanner struct {
	s      *field.Scenario
	opts   Options
	eng    *sim.Engine
	mules  []*mule.Mule
	alive  []bool
	active []bool // nil = all active
	// groups mirrors the installed plan's groups in global ids; nil
	// for online algorithms (which never replan).
	groups []core.PatrolGroup

	failures []FailureRecord
	replans  []ReplanRecord
	err      error
}

// apply executes one batch of same-time events, then replans once if
// anything changed and the policy asks for it.
func (r *replanner) apply(evs []Event) {
	if r.err != nil {
		return
	}
	now := r.eng.Now()
	changed := false
	for _, ev := range evs {
		switch ev.Kind {
		case KillMule:
			if r.alive[ev.Mule] {
				// Kill fires OnDeath, whose wrapper flips alive[ev.Mule].
				r.mules[ev.Mule].Kill()
				r.failures = append(r.failures, FailureRecord{Time: now, Mule: ev.Mule})
				changed = true
			}
		case SpawnTarget:
			if !r.active[ev.Target] {
				r.active[ev.Target] = true
				changed = true
			}
		}
	}
	if !changed || r.opts.Handoff != HandoffAbsorb || r.groups == nil {
		return
	}
	r.replan(now)
}

// replan swaps the fleet plan at the event boundary: absorb-replan
// over the survivors at their interpolated current positions, then
// reroute every surviving mule onto its new route with a synchronized
// (unless disabled) patrol restart.
func (r *replanner) replan(now float64) {
	anyAlive := false
	for _, a := range r.alive {
		if a {
			anyAlive = true
			break
		}
	}
	if !anyAlive {
		return
	}
	positions := make([]geom.Point, len(r.mules))
	for i, m := range r.mules {
		positions[i] = m.PosNow()
	}
	dwell := r.opts.Energy.Dwell
	if dwell == 0 {
		dwell = core.NoDwell
	}
	rep, err := core.AbsorbReplan(r.s, r.groups, r.active, r.alive, positions, core.ReplanConfig{Dwell: dwell})
	if err != nil {
		r.err = fmt.Errorf("patrol: replan at t=%v: %w", now, err)
		return
	}
	hold := now
	if !r.opts.NoSynchronizedStart {
		slowest := 0.0
		for _, gi := range rep.MuleIDs {
			if sp := r.opts.muleSpeed(gi); slowest == 0 || sp < slowest {
				slowest = sp
			}
		}
		hold = now + rep.Plan.MaxApproach/slowest
	}
	global := core.RemapPlan(rep.Plan, rep.TargetIDs)
	for li, gi := range rep.MuleIDs {
		r.mules[gi].Reroute(&planRouter{route: global.Routes[li], holdUntil: hold})
	}
	r.groups = rep.Groups
	r.replans = append(r.replans, ReplanRecord{Time: now, Survivors: len(rep.MuleIDs), Groups: len(rep.Groups)})
}

// schedule installs one engine event per distinct event time; events
// beyond the horizon never fire.
func (r *replanner) schedule(evs []Event) {
	for i := 0; i < len(evs); {
		j := i
		for j < len(evs) && evs[j].Time == evs[i].Time {
			j++
		}
		grp := evs[i:j]
		if grp[0].Time <= r.opts.Horizon {
			r.eng.Schedule(grp[0].Time, func() { r.apply(grp) })
		}
		i = j
	}
}

// Plannable reports whether the algorithm produces a core.FleetPlan.
// Online policies return false; they cannot patrol dormant targets and
// never replan. The sweep build layer uses it to skip spawn-bearing
// cells for online algorithms.
func Plannable(a Algorithm) bool {
	_, ok := a.(plannedAlg)
	return ok
}
