package patrol

import "tctp/internal/geom"

// Observer receives simulation events. The built-in metrics recorder,
// the energy audit, the wsn data-collection overlay and trace.Tracer
// all implement it, so a run composes any number of them as peers:
// every observer sees every event, in registration order, with the
// built-in recorder always first.
type Observer interface {
	// OnVisit fires when a mule arrives at a target waypoint.
	OnVisit(muleID, targetID int, t float64)
	// OnDeath fires when a mule's battery empties.
	OnDeath(muleID int, t float64, pos geom.Point)
	// OnRecharge fires after a recharge-station stop completes.
	OnRecharge(muleID int, t float64)
}

// ObserverFuncs adapts individual callbacks to Observer; any field may
// be nil.
type ObserverFuncs struct {
	Visit    func(muleID, targetID int, t float64)
	Death    func(muleID int, t float64, pos geom.Point)
	Recharge func(muleID int, t float64)
}

// OnVisit implements Observer.
func (f ObserverFuncs) OnVisit(muleID, targetID int, t float64) {
	if f.Visit != nil {
		f.Visit(muleID, targetID, t)
	}
}

// OnDeath implements Observer.
func (f ObserverFuncs) OnDeath(muleID int, t float64, pos geom.Point) {
	if f.Death != nil {
		f.Death(muleID, t, pos)
	}
}

// OnRecharge implements Observer.
func (f ObserverFuncs) OnRecharge(muleID int, t float64) {
	if f.Recharge != nil {
		f.Recharge(muleID, t)
	}
}

// multiObserver dispatches every event to each observer in order.
type multiObserver []Observer

func (m multiObserver) OnVisit(muleID, targetID int, t float64) {
	for _, o := range m {
		o.OnVisit(muleID, targetID, t)
	}
}

func (m multiObserver) OnDeath(muleID int, t float64, pos geom.Point) {
	for _, o := range m {
		o.OnDeath(muleID, t, pos)
	}
}

func (m multiObserver) OnRecharge(muleID int, t float64) {
	for _, o := range m {
		o.OnRecharge(muleID, t)
	}
}
