// Package patrol runs a patrolling algorithm on a scenario through the
// event-driven simulator and collects the paper's metrics. It is the
// bridge between the planners (internal/core, internal/baseline),
// which produce geometric routes, and the simulation substrate
// (internal/sim, internal/mule), which executes them in time.
package patrol

import (
	"fmt"

	"tctp/internal/core"
	"tctp/internal/energy"
	"tctp/internal/field"
	"tctp/internal/geom"
	"tctp/internal/metrics"
	"tctp/internal/mule"
	"tctp/internal/sim"
	"tctp/internal/xrand"
)

// FleetMember overrides one mule's parameters, enabling heterogeneous
// fleets. The zero value inherits the run-level defaults.
type FleetMember struct {
	// Speed is this mule's velocity in m/s; 0 inherits Options.Speed.
	Speed float64
	// Battery is this mule's battery capacity in joules; > 0 gives the
	// mule its own battery regardless of Options.UseBattery, 0 falls
	// back to the run-level battery policy.
	Battery float64
}

// Options configures a simulation run. The zero value selects the
// paper's §5.1 parameters.
type Options struct {
	// Speed is the mule velocity in m/s (default 2, per §5.1).
	Speed float64
	// Fleet optionally overrides per-mule speed and battery; when
	// non-nil its length must equal the scenario's fleet size.
	Fleet []FleetMember
	// Energy is the energy model (default energy.Default()).
	Energy energy.Model
	// UseBattery enables the battery constraint; when false mules
	// have unlimited energy (the B/W-TCTP experiments).
	UseBattery bool
	// Horizon is the simulated duration in seconds (default 100 000 s,
	// enough for tens of circuits of an 800 m field at 2 m/s).
	Horizon float64
	// MaxEvents bounds the event count as a safety valve (default
	// 5 000 000).
	MaxEvents uint64
	// NoSynchronizedStart lets each mule begin patrolling the moment
	// it reaches its start point instead of waiting for the slowest
	// mule. Synchronized start (the default) is what makes B-TCTP's
	// equal spacing exact; disabling it is the A3-adjacent ablation.
	NoSynchronizedStart bool
	// Observers receive simulation events in addition to the built-in
	// metrics recorder — e.g. the wsn data-collection overlay, an
	// energy.Audit, or a trace.Tracer. They are invoked after the
	// built-in bookkeeping for the same event, in slice order.
	Observers []Observer
	// Events is the dynamic-world schedule: mid-horizon mule failures
	// and target spawns, applied in one batch per distinct time. Empty
	// means the static world of the paper. Targets named by spawn
	// events start dormant — excluded from the initial plan and from
	// routing until their event time — which requires a plan-based
	// algorithm.
	Events []Event
	// Handoff selects the fleet's response to events for plan-based
	// algorithms: HandoffNone (default) leaves surviving routes
	// untouched, HandoffAbsorb swaps in a replanned FleetPlan at each
	// event boundary.
	Handoff Handoff
}

func (o Options) withDefaults() Options {
	if o.Speed == 0 {
		o.Speed = 2
	}
	if o.Energy == (energy.Model{}) {
		o.Energy = energy.Default()
	}
	if o.Horizon == 0 {
		o.Horizon = 100_000
	}
	if o.MaxEvents == 0 {
		o.MaxEvents = 5_000_000
	}
	return o
}

// muleSpeed returns the effective speed of mule i.
func (o Options) muleSpeed(i int) float64 {
	if i < len(o.Fleet) && o.Fleet[i].Speed > 0 {
		return o.Fleet[i].Speed
	}
	return o.Speed
}

// slowestSpeed returns the minimum effective speed across an n-mule
// fleet — the speed that bounds the synchronized patrol start.
func (o Options) slowestSpeed(n int) float64 {
	min := 0.0
	for i := 0; i < n; i++ {
		if s := o.muleSpeed(i); min == 0 || s < min {
			min = s
		}
	}
	if min == 0 {
		min = o.Speed
	}
	return min
}

// MuleStats summarizes one mule's run.
type MuleStats struct {
	Distance       float64
	EnergyConsumed float64
	Visits         int
	Recharges      int
	Dead           bool
}

// GroupStats summarizes one patrol group of a plan-based run: the
// group's identity (member targets and mules) plus the aggregate of
// its mules' statistics. Per-group interval metrics are derived by
// passing Targets to the Recorder's ...Over methods.
type GroupStats struct {
	// Targets are the group's member target ids.
	Targets []int
	// Mules are the group's member mule indices.
	Mules []int
	// WalkLength is the group's patrolling walk length in metres.
	WalkLength float64
	// Distance is the summed travel distance of the group's mules.
	Distance float64
	// Visits is the summed collection count of the group's mules.
	Visits int
	// EnergyConsumed is the summed energy of the group's mules.
	EnergyConsumed float64
}

// Result bundles everything a run produces.
type Result struct {
	// Algorithm names the executed algorithm.
	Algorithm string
	// Recorder holds the per-target visit log.
	Recorder *metrics.Recorder
	// Mules holds per-mule statistics.
	Mules []MuleStats
	// PatrolStart is the synchronized patrol start time (0 when
	// synchronization is off or no plan is involved).
	PatrolStart float64
	// Plan is the fixed-route plan, when the algorithm has one.
	Plan *core.FleetPlan
	// Groups holds per-group statistics for plan-based runs, in the
	// plan's group order; nil for online algorithms. Single-circuit
	// plans carry exactly one entry covering the whole scenario. After
	// a replan the entries still describe the INITIAL plan's groups —
	// the stable frame degraded-mode metrics are reported in.
	Groups []GroupStats
	// Failures lists the injected mule failures that took effect, in
	// time order (emergent battery deaths are not included; see
	// MuleStats.Dead).
	Failures []FailureRecord
	// Replans records each successful mid-run plan swap performed by
	// the absorb handoff policy, in time order.
	Replans []ReplanRecord
}

// FirstFailureTime returns the time of the first injected failure and
// whether one occurred — the reference point of the degraded-mode
// metrics.
func (r *Result) FirstFailureTime() (float64, bool) {
	if len(r.Failures) == 0 {
		return 0, false
	}
	return r.Failures[0].Time, true
}

// GroupDCDTAfter returns group g's steady-state average visiting
// interval: the AvgDCDT of the group's member targets after t0.
func (r *Result) GroupDCDTAfter(g int, t0 float64) float64 {
	return r.Recorder.AvgDCDTAfterOver(r.Groups[g].Targets, t0)
}

// GroupSDAfter returns group g's steady-state interval SD over its
// member targets after t0.
func (r *Result) GroupSDAfter(g int, t0 float64) float64 {
	return r.Recorder.AvgSDAfterOver(r.Groups[g].Targets, t0)
}

// TotalEnergy returns the fleet's total energy consumption in joules.
func (r *Result) TotalEnergy() float64 {
	t := 0.0
	for _, m := range r.Mules {
		t += m.EnergyConsumed
	}
	return t
}

// TotalVisits returns the fleet's total collection count.
func (r *Result) TotalVisits() int {
	t := 0
	for _, m := range r.Mules {
		t += m.Visits
	}
	return t
}

// EnergyPerVisit returns joules consumed per collection — the paper's
// "energy efficiency of DM" notion. Returns 0 when nothing was
// collected.
func (r *Result) EnergyPerVisit() float64 {
	v := r.TotalVisits()
	if v == 0 {
		return 0
	}
	return r.TotalEnergy() / float64(v)
}

// DeadMules counts mules that exhausted their battery.
func (r *Result) DeadMules() int {
	n := 0
	for _, m := range r.Mules {
		if m.Dead {
			n++
		}
	}
	return n
}

// Algorithm is anything that can be executed by Run: either a fixed-
// route planner (via Planned) or an online policy (via Online).
type Algorithm interface {
	Name() string
	// prepare returns one router per mule and, if the algorithm is
	// plan-based, its plan.
	prepare(s *field.Scenario, opts Options, src *xrand.Source) ([]mule.Router, *core.FleetPlan, error)
}

// Planned adapts a core.Planner (B/W/RW-TCTP, CHB, Sweep) to
// Algorithm.
func Planned(p core.Planner) Algorithm { return plannedAlg{p} }

type plannedAlg struct{ p core.Planner }

func (a plannedAlg) Name() string { return a.p.Name() }

func (a plannedAlg) prepare(s *field.Scenario, opts Options, _ *xrand.Source) ([]mule.Router, *core.FleetPlan, error) {
	plan, err := a.p.Plan(s)
	if err != nil {
		return nil, nil, err
	}
	if err := plan.Validate(s); err != nil {
		return nil, nil, err
	}
	return planRouters(plan, opts, s.NumMules()), plan, nil
}

// planRouters builds one router per route, holding every mule at its
// start point until the synchronized patrol start.
func planRouters(plan *core.FleetPlan, opts Options, n int) []mule.Router {
	hold := 0.0
	if !opts.NoSynchronizedStart {
		// The slowest mule travelling the longest approach bounds every
		// arrival, so holding until then starts the fleet together even
		// when speeds differ. For a homogeneous fleet this is exactly
		// MaxApproach / Speed.
		hold = plan.MaxApproach / opts.slowestSpeed(n)
	}
	routers := make([]mule.Router, len(plan.Routes))
	for i := range plan.Routes {
		routers[i] = &planRouter{route: plan.Routes[i], holdUntil: hold}
	}
	return routers
}

// Partitioned derives the per-region variant of a plan-based
// algorithm: the underlying planner must implement core.Partitionable
// (B-TCTP → C-BTCTP, W-TCTP → C-WTCTP). src seeds the partition's
// randomness and may be nil. Online algorithms and planners without a
// partitioned form are refused.
func Partitioned(a Algorithm, cfg core.PartitionConfig, src *xrand.Source) (Algorithm, error) {
	pa, ok := a.(plannedAlg)
	if !ok {
		return nil, fmt.Errorf("patrol: %s has no plan to partition", a.Name())
	}
	p, ok := pa.p.(core.Partitionable)
	if !ok {
		return nil, fmt.Errorf("patrol: planner %s has no partitioned variant", pa.p.Name())
	}
	return Planned(p.Partitioned(cfg, src)), nil
}

// RouterMaker is an online algorithm that builds one router per mule.
type RouterMaker interface {
	Name() string
	NewRouters(s *field.Scenario, src *xrand.Source) []mule.Router
}

// Online adapts a RouterMaker (e.g. baseline.Random) to Algorithm.
func Online(m RouterMaker) Algorithm { return onlineAlg{m} }

type onlineAlg struct{ m RouterMaker }

func (a onlineAlg) Name() string { return a.m.Name() }

func (a onlineAlg) prepare(s *field.Scenario, _ Options, src *xrand.Source) ([]mule.Router, *core.FleetPlan, error) {
	return a.m.NewRouters(s, src), nil, nil
}

// planRouter walks a core.MuleRoute: approach once (holding at the
// final approach stop until holdUntil), then loop the cycle phases
// forever, honouring each phase's Repeat count.
type planRouter struct {
	route     core.MuleRoute
	holdUntil float64

	approachIdx int
	phase       int
	rep         int
	idx         int
}

// Next implements mule.Router.
func (r *planRouter) Next(*mule.Mule) (mule.Waypoint, bool) {
	if r.approachIdx < len(r.route.Approach) {
		wp := r.route.Approach[r.approachIdx]
		r.approachIdx++
		if r.approachIdx == len(r.route.Approach) {
			wp.NotBefore = r.holdUntil + r.route.ExtraHold
		}
		return wp, true
	}
	ph := r.route.Cycle[r.phase]
	wp := ph.Stops[r.idx]
	r.idx++
	if r.idx == len(ph.Stops) {
		r.idx = 0
		r.rep++
		if r.rep >= ph.Repeat {
			r.rep = 0
			r.phase = (r.phase + 1) % len(r.route.Cycle)
		}
	}
	return wp, true
}

// visitCapHint estimates the visits each target will receive so the
// recorder can preallocate its series in one flat block. For a planned
// fleet on closed walks, each target is visited about once per mule
// per walk period (horizon · Σspeed / total walk length); online
// algorithms get no hint. The hint is a capacity, not a bound —
// underestimates merely fall back to slice growth — and is clamped so
// a degenerate short walk cannot request unbounded memory.
func visitCapHint(s *field.Scenario, plan *core.FleetPlan, opts Options) int {
	if plan == nil {
		return 0
	}
	walkLen := plan.TotalWalkLength(s.Points())
	if walkLen <= 0 {
		return 0
	}
	speedSum := 0.0
	for i := 0; i < s.NumMules(); i++ {
		speedSum += opts.muleSpeed(i)
	}
	hint := int(opts.Horizon*speedSum/walkLen) + 8
	const maxHint = 1 << 14
	if hint > maxHint {
		hint = maxHint
	}
	return hint
}

// Run executes the algorithm on the scenario until opts.Horizon and
// returns the collected metrics. src drives any randomness the
// algorithm needs (it may be nil for deterministic planners).
func Run(s *field.Scenario, alg Algorithm, opts Options, src *xrand.Source) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.Fleet != nil && len(opts.Fleet) != s.NumMules() {
		return nil, fmt.Errorf("patrol: options carry %d fleet members for %d mules",
			len(opts.Fleet), s.NumMules())
	}
	if src == nil {
		src = xrand.New(0)
	}
	events, active, err := normalizeEvents(s, opts)
	if err != nil {
		return nil, err
	}

	var routers []mule.Router
	var plan *core.FleetPlan
	if active != nil {
		// Some targets start dormant: plan on the reduced view (active
		// targets only, renumbered) and remap back to global ids. The
		// plan was validated in view space; the global form deliberately
		// omits the dormant targets, so it is not re-validated against s.
		pa, ok := alg.(plannedAlg)
		if !ok {
			return nil, fmt.Errorf("patrol: %s cannot patrol dormant targets (target spawns need a plan)", alg.Name())
		}
		view, tids, _, verr := core.ActiveView(s, active, nil, nil)
		if verr != nil {
			return nil, verr
		}
		local, lerr := pa.p.Plan(view)
		if lerr != nil {
			return nil, lerr
		}
		if verr := local.Validate(view); verr != nil {
			return nil, verr
		}
		plan = core.RemapPlan(local, tids)
		routers = planRouters(plan, opts, s.NumMules())
	} else {
		routers, plan, err = alg.prepare(s, opts, src)
		if err != nil {
			return nil, err
		}
	}
	if len(routers) != s.NumMules() {
		return nil, fmt.Errorf("patrol: %s produced %d routers for %d mules",
			alg.Name(), len(routers), s.NumMules())
	}

	eng := sim.New()
	rec := metrics.NewRecorderCap(s.NumTargets(), visitCapHint(s, plan, opts))
	// The recorder is the first observer; user observers follow in
	// registration order, all peers of one dispatch.
	dispatch := make(multiObserver, 0, 1+len(opts.Observers))
	dispatch = append(dispatch, rec)
	dispatch = append(dispatch, opts.Observers...)
	onDeath := dispatch.OnDeath
	var rp *replanner
	if len(events) > 0 {
		alive := make([]bool, s.NumMules())
		for i := range alive {
			alive[i] = true
		}
		var groups []core.PatrolGroup
		if plan != nil {
			groups = append(groups, plan.Groups...)
		}
		rp = &replanner{s: s, opts: opts, eng: eng, alive: alive, active: active, groups: groups}
		// Every death — injected or emergent battery exhaustion —
		// updates the alive mask, so later replans never route a
		// battery-dead mule.
		onDeath = func(id int, t float64, pos geom.Point) {
			rp.alive[id] = false
			dispatch.OnDeath(id, t, pos)
		}
	}
	mules := make([]*mule.Mule, s.NumMules())
	for i := range mules {
		var battery *energy.Battery
		switch {
		case i < len(opts.Fleet) && opts.Fleet[i].Battery > 0:
			battery = energy.NewBattery(opts.Fleet[i].Battery)
		case opts.UseBattery:
			battery = energy.NewBattery(opts.Energy.Capacity)
		}
		mules[i] = mule.New(eng, mule.Config{
			ID:         i,
			Start:      s.MuleStarts[i],
			Speed:      opts.muleSpeed(i),
			Energy:     opts.Energy,
			Battery:    battery,
			Router:     routers[i],
			OnVisit:    dispatch.OnVisit,
			OnDeath:    onDeath,
			OnRecharge: dispatch.OnRecharge,
		})
		mules[i].Launch()
	}
	if rp != nil {
		rp.mules = mules
		rp.schedule(events)
	}

	// Drive the simulation to the horizon, bounded by the MaxEvents
	// safety valve (protects against accidental zero-delay loops).
	var executed uint64
	for executed < opts.MaxEvents {
		next, ok := eng.NextEventTime()
		if !ok || next > opts.Horizon {
			break
		}
		eng.Step()
		executed++
		if rp != nil && rp.err != nil {
			return nil, rp.err
		}
	}
	if executed < opts.MaxEvents {
		eng.RunUntil(opts.Horizon) // no events remain ≤ horizon; set the clock
	}

	res := &Result{
		Algorithm: alg.Name(),
		Recorder:  rec,
		Mules:     make([]MuleStats, len(mules)),
		Plan:      plan,
	}
	if rp != nil {
		res.Failures = rp.failures
		res.Replans = rp.replans
	}
	if plan != nil && !opts.NoSynchronizedStart {
		res.PatrolStart = plan.MaxApproach / opts.slowestSpeed(s.NumMules())
	}
	for i, m := range mules {
		res.Mules[i] = MuleStats{
			Distance:       m.Distance(),
			EnergyConsumed: m.EnergyConsumed(),
			Visits:         m.Visits(),
			Recharges:      m.Recharges(),
			Dead:           m.Dead(),
		}
	}
	if plan != nil {
		pts := s.Points()
		res.Groups = make([]GroupStats, len(plan.Groups))
		for gi := range plan.Groups {
			g := &plan.Groups[gi]
			gs := GroupStats{
				Targets:    g.Targets,
				Mules:      g.Mules,
				WalkLength: g.Walk.Length(pts),
			}
			for _, mi := range g.Mules {
				gs.Distance += res.Mules[mi].Distance
				gs.Visits += res.Mules[mi].Visits
				gs.EnergyConsumed += res.Mules[mi].EnergyConsumed
			}
			res.Groups[gi] = gs
		}
	}
	return res, nil
}
