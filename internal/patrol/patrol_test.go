package patrol

import (
	"math"
	"testing"

	"tctp/internal/baseline"
	"tctp/internal/core"
	"tctp/internal/energy"
	"tctp/internal/field"
	"tctp/internal/geom"
	"tctp/internal/trace"
	"tctp/internal/xrand"
)

func scenario(seed uint64, targets, mules int) *field.Scenario {
	return field.Generate(field.Config{
		NumTargets: targets,
		NumMules:   mules,
		Placement:  field.Uniform,
	}, xrand.New(seed))
}

func run(t *testing.T, s *field.Scenario, alg Algorithm, opts Options, seed uint64) *Result {
	t.Helper()
	res, err := Run(s, alg, opts, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestBTCTPSteadyStateSDZero is the headline correctness property: in
// steady state, B-TCTP visits every target at the exact period
// |P|/(n·v), so the per-target SD of the visiting intervals is zero to
// floating-point precision (paper Fig. 8: "the SD of the proposed TCTP
// always keeps zero").
func TestBTCTPSteadyStateSDZero(t *testing.T) {
	// Fleet sizes near the target count matter: with many mules some
	// start point falls on the walk's closing edge, which once caused
	// an S·dwell phase error (regression coverage for the stopsBefore
	// accounting in loopFrom).
	for _, mules := range []int{1, 2, 4, 8, 10} {
		s := scenario(10+uint64(mules), 15, mules)
		res := run(t, s, Planned(&core.BTCTP{}), Options{Horizon: 60_000}, 1)
		warmup := res.PatrolStart + 1 // skip the initialization transient
		for target := 0; target < s.NumTargets(); target++ {
			iv := res.Recorder.IntervalsAfter(target, warmup)
			if len(iv) < 3 {
				t.Fatalf("mules=%d: target %d has only %d steady intervals", mules, target, len(iv))
			}
			sd := res.Recorder.SDAfter(target, warmup)
			if sd > 1e-6 {
				t.Fatalf("mules=%d: target %d steady-state SD = %v, want ~0 (intervals %v)",
					mules, target, sd, iv[:3])
			}
		}
	}
}

// TestBTCTPIntervalMatchesTheory: the steady-state visiting interval
// equals walk length / (n · v) — plus n·dwell, since each mule pauses
// at every target.
func TestBTCTPIntervalMatchesTheory(t *testing.T) {
	s := scenario(20, 12, 3)
	opts := Options{Horizon: 60_000}
	res := run(t, s, Planned(&core.BTCTP{}), opts, 1)
	pts := s.Points()
	L := res.Plan.Groups[0].Walk.Length(pts)
	// One full circuit takes L/v plus one dwell per stop (default
	// dwell 1 s); with 3 mules equally spaced the per-target interval
	// is a third of that.
	nStops := float64(res.Plan.Groups[0].Walk.Size())
	circuit := L/2 + nStops*1.0
	want := circuit / 3
	warmup := res.PatrolStart + 1
	for target := 0; target < s.NumTargets(); target++ {
		iv := res.Recorder.IntervalsAfter(target, warmup)
		for _, x := range iv {
			if math.Abs(x-want) > 1e-6 {
				t.Fatalf("target %d interval %v, want %v", target, x, want)
			}
		}
	}
}

func TestCHBUnbalancedIntervals(t *testing.T) {
	// CHB with clumped mules has no balancing: SD must be clearly
	// positive (paper Fig. 8 contrast).
	s := scenario(21, 15, 4)
	res := run(t, s, Planned(&baseline.CHB{}), Options{Horizon: 80_000}, 1)
	warmup := res.PatrolStart + 1
	if sd := res.Recorder.AvgSDAfter(warmup); sd <= 1.0 {
		t.Fatalf("CHB average SD = %v, expected clearly positive", sd)
	}
}

func TestTCTPBeatsCHBOnSD(t *testing.T) {
	s := scenario(22, 20, 4)
	tctp := run(t, s, Planned(&core.BTCTP{}), Options{Horizon: 80_000}, 1)
	chb := run(t, s, Planned(&baseline.CHB{}), Options{Horizon: 80_000}, 1)
	tSD := tctp.Recorder.AvgSDAfter(tctp.PatrolStart + 1)
	cSD := chb.Recorder.AvgSDAfter(chb.PatrolStart + 1)
	if tSD >= cSD {
		t.Fatalf("B-TCTP SD %v not below CHB SD %v", tSD, cSD)
	}
}

func TestRandomRuns(t *testing.T) {
	s := scenario(23, 12, 3)
	res := run(t, s, Online(&baseline.Random{}), Options{Horizon: 60_000}, 5)
	if res.Algorithm != "Random" {
		t.Fatalf("Algorithm = %q", res.Algorithm)
	}
	if res.Plan != nil {
		t.Fatal("online algorithm produced a plan")
	}
	if res.TotalVisits() == 0 {
		t.Fatal("random fleet never visited anything")
	}
	// Random must be far noisier than TCTP.
	tctp := run(t, s, Planned(&core.BTCTP{}), Options{Horizon: 60_000}, 5)
	if res.Recorder.AvgSD() <= tctp.Recorder.AvgSDAfter(tctp.PatrolStart+1) {
		t.Fatal("random SD not above TCTP SD")
	}
}

func TestSweepRuns(t *testing.T) {
	s := scenario(24, 20, 4)
	res := run(t, s, Planned(&baseline.Sweep{}), Options{Horizon: 60_000}, 1)
	if res.TotalVisits() == 0 {
		t.Fatal("sweep fleet never visited anything")
	}
	// Every target is eventually visited (each group is patrolled).
	if res.Recorder.MinVisitCount() == 0 {
		t.Fatal("some target never visited under Sweep")
	}
}

func TestWTCTPVIPFrequency(t *testing.T) {
	// A weight-3 VIP must be visited 3× as often as an NTP per
	// traversal: its mean interval is about a third of an NTP's on the
	// same walk... more precisely, over a full walk period the VIP is
	// seen 3 times. Check visit-count ratio.
	s := scenario(25, 15, 2)
	s.AssignVIPs(xrand.New(26), 1, 3)
	vip := s.VIPs()[0]
	res := run(t, s, Planned(&core.WTCTP{Policy: core.BalancingLength}), Options{Horizon: 100_000}, 1)
	vipVisits := res.Recorder.VisitCount(vip)
	var ntp int
	for id := range s.Targets {
		if id != vip {
			ntp = id
			break
		}
	}
	ntpVisits := res.Recorder.VisitCount(ntp)
	ratio := float64(vipVisits) / float64(ntpVisits)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("VIP/NTP visit ratio = %v (visits %d vs %d), want ≈3",
			ratio, vipVisits, ntpVisits)
	}
}

func TestRWTCTPNeverDies(t *testing.T) {
	s := field.Generate(field.Config{
		NumTargets:   15,
		NumMules:     2,
		Placement:    field.Uniform,
		WithRecharge: true,
	}, xrand.New(27))
	model := energy.Default()
	model.Capacity = 80_000 // a couple of rounds per charge
	rw := &core.RWTCTP{}
	rw.Model = model
	opts := Options{Horizon: 150_000, UseBattery: true, Energy: model}
	res := run(t, s, Planned(rw), opts, 1)
	if res.DeadMules() != 0 {
		t.Fatalf("%d mules died despite RW-TCTP", res.DeadMules())
	}
	for i, m := range res.Mules {
		if m.Recharges == 0 {
			t.Fatalf("mule %d never recharged over a long horizon", i)
		}
	}
	if res.Recorder.MinVisitCount() == 0 {
		t.Fatal("some target never visited under RW-TCTP")
	}
}

func TestWithoutRechargeMulesDie(t *testing.T) {
	// The contrast experiment: same battery, plain W-TCTP (no
	// recharge detours) — the fleet must die before the horizon.
	s := field.Generate(field.Config{
		NumTargets:   15,
		NumMules:     2,
		Placement:    field.Uniform,
		WithRecharge: true,
	}, xrand.New(27))
	model := energy.Default()
	model.Capacity = 80_000
	opts := Options{Horizon: 150_000, UseBattery: true, Energy: model}
	res := run(t, s, Planned(&core.WTCTP{}), opts, 1)
	if res.DeadMules() != len(res.Mules) {
		t.Fatalf("only %d/%d mules died without recharge", res.DeadMules(), len(res.Mules))
	}
}

func TestSynchronizedStart(t *testing.T) {
	s := scenario(28, 10, 3)
	res := run(t, s, Planned(&core.BTCTP{}), Options{Horizon: 40_000}, 1)
	if res.PatrolStart <= 0 {
		t.Fatalf("PatrolStart = %v, want positive", res.PatrolStart)
	}
	// No visits strictly before the synchronized start (mules hold at
	// their start points; a start point may coincide with a target,
	// whose visit then happens exactly at PatrolStart).
	for target := 0; target < s.NumTargets(); target++ {
		for _, ts := range res.Recorder.VisitTimes(target) {
			if ts < res.PatrolStart-1e-9 {
				t.Fatalf("target %d visited at %v before synchronized start %v",
					target, ts, res.PatrolStart)
			}
		}
	}
}

func TestNoSynchronizedStart(t *testing.T) {
	s := scenario(29, 10, 3)
	opts := Options{Horizon: 40_000, NoSynchronizedStart: true}
	res := run(t, s, Planned(&core.BTCTP{}), opts, 1)
	if res.PatrolStart != 0 {
		t.Fatalf("PatrolStart = %v with sync off", res.PatrolStart)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	s := scenario(30, 12, 3)
	a := run(t, s, Planned(&core.BTCTP{}), Options{Horizon: 30_000}, 7)
	b := run(t, s, Planned(&core.BTCTP{}), Options{Horizon: 30_000}, 7)
	for target := 0; target < s.NumTargets(); target++ {
		ta, tb := a.Recorder.VisitTimes(target), b.Recorder.VisitTimes(target)
		if len(ta) != len(tb) {
			t.Fatalf("visit counts differ for target %d", target)
		}
		for k := range ta {
			if ta[k] != tb[k] {
				t.Fatalf("visit %d of target %d differs: %v vs %v", k, target, ta[k], tb[k])
			}
		}
	}
}

func TestResultAccessors(t *testing.T) {
	s := scenario(31, 10, 2)
	res := run(t, s, Planned(&core.BTCTP{}), Options{Horizon: 20_000}, 1)
	if res.TotalVisits() <= 0 {
		t.Fatal("no visits")
	}
	if res.TotalEnergy() <= 0 {
		t.Fatal("no energy consumed")
	}
	if res.EnergyPerVisit() <= 0 {
		t.Fatal("no energy per visit")
	}
	if res.DeadMules() != 0 {
		t.Fatal("unconstrained mules died")
	}
	empty := &Result{}
	if empty.EnergyPerVisit() != 0 {
		t.Fatal("empty result energy per visit")
	}
}

func TestRunRejectsBadScenario(t *testing.T) {
	s := scenario(32, 10, 2)
	s.SinkID = 99
	if _, err := Run(s, Planned(&core.BTCTP{}), Options{}, nil); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}

func TestMaxEventsGuard(t *testing.T) {
	s := scenario(33, 10, 2)
	opts := Options{Horizon: 1e9, MaxEvents: 500}
	res := run(t, s, Planned(&core.BTCTP{}), opts, 1)
	// The guard must stop the run long before the absurd horizon.
	if res.TotalVisits() > 500 {
		t.Fatalf("guard failed: %d visits", res.TotalVisits())
	}
}

func TestObserversAreInvoked(t *testing.T) {
	s := field.Generate(field.Config{
		NumTargets: 10, NumMules: 2, Placement: field.Uniform, WithRecharge: true,
	}, xrand.New(40))
	model := energy.Default()
	model.Capacity = 60_000
	rw := &core.RWTCTP{}
	rw.Model = model

	visits, deaths, recharges := 0, 0, 0
	opts := Options{
		Horizon: 120_000, UseBattery: true, Energy: model,
		Observers: []Observer{ObserverFuncs{
			Visit:    func(_, _ int, _ float64) { visits++ },
			Death:    func(_ int, _ float64, _ geom.Point) { deaths++ },
			Recharge: func(_ int, _ float64) { recharges++ },
		}},
	}
	res := run(t, s, Planned(rw), opts, 1)
	if visits != res.TotalVisits() {
		t.Fatalf("hook saw %d visits, recorder %d", visits, res.TotalVisits())
	}
	if recharges == 0 {
		t.Fatal("recharge hook never fired")
	}
	if deaths != 0 {
		t.Fatal("death hook fired for a healthy RW-TCTP fleet")
	}
}

func TestMultiObserverDispatch(t *testing.T) {
	// Several peer observers all see every event, in registration
	// order, after the built-in recorder.
	s := scenario(44, 8, 2)
	var order []string
	mk := func(name string) Observer {
		return ObserverFuncs{Visit: func(_, _ int, _ float64) {
			order = append(order, name)
		}}
	}
	res := run(t, s, Planned(&core.BTCTP{}), Options{
		Horizon:   10_000,
		Observers: []Observer{mk("a"), mk("b")},
	}, 1)
	if len(order) != 2*res.TotalVisits() {
		t.Fatalf("observers saw %d events for %d visits", len(order), res.TotalVisits())
	}
	for i := 0; i < len(order); i += 2 {
		if order[i] != "a" || order[i+1] != "b" {
			t.Fatalf("dispatch order broken at %d: %v", i, order[i:i+2])
		}
	}
}

func TestHeterogeneousFleetSpeeds(t *testing.T) {
	// A two-speed fleet: each mule travels at its own speed, and the
	// synchronized start is bounded by the slowest mule.
	s := scenario(45, 10, 2)
	res := run(t, s, Planned(&core.BTCTP{}), Options{
		Speed:   2,
		Fleet:   []FleetMember{{Speed: 1}, {Speed: 4}},
		Horizon: 40_000,
	}, 1)
	if res.Mules[1].Distance <= res.Mules[0].Distance {
		t.Fatalf("fast mule travelled %.0f m, slow mule %.0f m",
			res.Mules[1].Distance, res.Mules[0].Distance)
	}
	// PatrolStart uses the slowest effective speed (1 m/s), so it is
	// twice the homogeneous 2 m/s start.
	homog := run(t, s, Planned(&core.BTCTP{}), Options{Speed: 2, Horizon: 40_000}, 1)
	if res.PatrolStart <= homog.PatrolStart {
		t.Fatalf("mixed-fleet patrol start %.1f not delayed past homogeneous %.1f",
			res.PatrolStart, homog.PatrolStart)
	}
}

func TestPerMuleBattery(t *testing.T) {
	// One mule with a tiny battery dies; its unconstrained partner
	// patrols forever.
	s := scenario(46, 10, 2)
	res := run(t, s, Planned(&core.BTCTP{}), Options{
		Fleet:   []FleetMember{{Battery: 3_000}, {}},
		Horizon: 60_000,
	}, 1)
	if !res.Mules[0].Dead {
		t.Fatal("tiny-battery mule survived")
	}
	if res.Mules[1].Dead {
		t.Fatal("unconstrained mule died")
	}
}

func TestFleetSizeMismatchRejected(t *testing.T) {
	s := scenario(47, 8, 2)
	_, err := Run(s, Planned(&core.BTCTP{}), Options{
		Fleet: []FleetMember{{Speed: 1}},
	}, nil)
	if err == nil {
		t.Fatal("fleet/mule count mismatch accepted")
	}
}

func TestDeathHookFailureInjection(t *testing.T) {
	// Failure injection: a battery too small for even one circuit
	// kills the whole fleet; the hook must observe every death and
	// the intervals must stop accumulating afterwards.
	s := scenario(41, 12, 3)
	model := energy.Default()
	model.Capacity = 5_000 // ~600 m of travel — dies mid-first-circuit
	var deathTimes []float64
	opts := Options{
		Horizon: 50_000, UseBattery: true, Energy: model,
		Observers: []Observer{ObserverFuncs{
			Death: func(_ int, tm float64, _ geom.Point) { deathTimes = append(deathTimes, tm) },
		}},
	}
	res := run(t, s, Planned(&core.BTCTP{}), opts, 1)
	if res.DeadMules() != 3 {
		t.Fatalf("DeadMules = %d, want 3", res.DeadMules())
	}
	if len(deathTimes) != 3 {
		t.Fatalf("death hook fired %d times", len(deathTimes))
	}
	// No visit may postdate the last death.
	lastDeath := deathTimes[0]
	for _, d := range deathTimes {
		if d > lastDeath {
			lastDeath = d
		}
	}
	for target := 0; target < s.NumTargets(); target++ {
		for _, ts := range res.Recorder.VisitTimes(target) {
			if ts > lastDeath {
				t.Fatalf("visit at %v after the fleet died at %v", ts, lastDeath)
			}
		}
	}
}

func TestPartialFleetDeathDegradesGracefully(t *testing.T) {
	// One mule with a smaller battery dies; the survivors keep
	// patrolling and every target keeps being visited (at a longer
	// interval). The planner is unaware — this is pure failure
	// injection at the simulation layer.
	s := scenario(42, 10, 2)
	plan, err := (&core.BTCTP{}).Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	_ = plan
	// Run once healthy to know the steady interval.
	healthy := run(t, s, Planned(&core.BTCTP{}), Options{Horizon: 80_000}, 1)
	healthyIv := healthy.Recorder.AvgDCDTAfter(healthy.PatrolStart + 1)

	// Now re-run with batteries: big enough that death happens late.
	model := energy.Default()
	model.Capacity = 150_000
	res := run(t, s, Planned(&core.BTCTP{}), Options{
		Horizon: 80_000, UseBattery: true, Energy: model,
	}, 1)
	if res.DeadMules() == 0 {
		t.Skip("battery outlived horizon; scenario too small for this seed")
	}
	// After deaths the remaining visits continue only if some mule
	// survived; with identical batteries both die ≈ together, so just
	// assert the recorded max interval exceeds the healthy steady one.
	if res.Recorder.MaxInterval() <= healthyIv {
		t.Fatalf("failure did not degrade intervals: max %.1f vs healthy %.1f",
			res.Recorder.MaxInterval(), healthyIv)
	}
}

func TestTracerIntegration(t *testing.T) {
	s := scenario(43, 8, 2)
	tr := trace.New(0)
	opts := Options{
		Horizon:   20_000,
		Observers: []Observer{tr},
	}
	res := run(t, s, Planned(&core.BTCTP{}), opts, 1)
	if tr.Len() != res.TotalVisits() {
		t.Fatalf("trace has %d events, recorder %d visits", tr.Len(), res.TotalVisits())
	}
	if len(tr.Filter(trace.Visit)) != tr.Len() {
		t.Fatal("unexpected non-visit events")
	}
}

// TestWTCTPNTPSteadyStateSDZero: even on a weighted path with VIP
// revisits, plain targets (NTPs) are visited once per traversal by
// every mule, so their steady-state intervals are constant — the
// phase-equalizing holds must deliver SD ≈ 0 for NTPs with any fleet
// size.
func TestWTCTPNTPSteadyStateSDZero(t *testing.T) {
	for _, mules := range []int{1, 2, 3} {
		s := scenario(60+uint64(mules), 14, mules)
		s.AssignVIPs(xrand.New(61), 2, 3)
		vips := map[int]bool{}
		for _, v := range s.VIPs() {
			vips[v] = true
		}
		res := run(t, s, Planned(&core.WTCTP{Policy: core.ShortestLength}),
			Options{Horizon: 150_000}, 1)
		warm := res.PatrolStart + 1
		for target := 0; target < s.NumTargets(); target++ {
			if vips[target] {
				continue
			}
			if sd := res.Recorder.SDAfter(target, warm); sd > 1e-6 {
				t.Fatalf("mules=%d: NTP %d steady SD = %v", mules, target, sd)
			}
		}
	}
}

// TestUnsyncedStartBreaksBalance: without the synchronized start the
// mules' phases depend on their approach distances, so B-TCTP's
// perfect balance degrades — the quantitative argument for the sync
// step (ablation A3's third arm).
func TestUnsyncedStartBreaksBalance(t *testing.T) {
	s := scenario(62, 15, 4)
	synced := run(t, s, Planned(&core.BTCTP{}), Options{Horizon: 80_000}, 1)
	unsynced := run(t, s, Planned(&core.BTCTP{}),
		Options{Horizon: 80_000, NoSynchronizedStart: true}, 1)
	sSD := synced.Recorder.AvgSDAfter(synced.PatrolStart + 1)
	uSD := unsynced.Recorder.AvgSDAfter(1)
	if sSD > 1e-6 {
		t.Fatalf("synced SD = %v", sSD)
	}
	if uSD <= 1e-6 {
		t.Skip("mule starts happened to be phase-aligned for this seed")
	}
	if uSD <= sSD {
		t.Fatalf("unsynced SD %v not above synced %v", uSD, sSD)
	}
}

// TestGroupStats: plan-based runs report per-group identity and
// aggregate stats; the partitioned planner yields one entry per
// region, the single-circuit planners exactly one.
func TestGroupStats(t *testing.T) {
	s := scenario(31, 16, 4)
	single := run(t, s, Planned(&core.BTCTP{}), Options{Horizon: 20_000}, 1)
	if len(single.Groups) != 1 {
		t.Fatalf("B-TCTP run has %d group stats, want 1", len(single.Groups))
	}
	g := single.Groups[0]
	if len(g.Targets) != s.NumTargets() || len(g.Mules) != s.NumMules() {
		t.Fatalf("degenerate group covers %d targets / %d mules", len(g.Targets), len(g.Mules))
	}
	if g.Visits != single.TotalVisits() || g.WalkLength <= 0 {
		t.Fatalf("group aggregate %+v does not match run totals", g)
	}
	// The group-restricted DCDT over all targets equals the global one.
	warm := single.PatrolStart + 1
	if got, want := single.GroupDCDTAfter(0, warm), single.Recorder.AvgDCDTAfter(warm); got != want {
		t.Fatalf("GroupDCDTAfter = %v, global AvgDCDTAfter = %v", got, want)
	}

	part := run(t, s, Planned(&core.CBTCTP{
		Config: core.PartitionConfig{Method: core.KMeansMethod, K: 3},
	}), Options{Horizon: 20_000}, 1)
	if len(part.Groups) != 3 {
		t.Fatalf("C-BTCTP run has %d group stats, want 3", len(part.Groups))
	}
	visits, targets := 0, 0
	for gi, g := range part.Groups {
		visits += g.Visits
		targets += len(g.Targets)
		if g.WalkLength <= 0 {
			t.Fatalf("group %d walk length %v", gi, g.WalkLength)
		}
		if part.GroupDCDTAfter(gi, part.PatrolStart+1) <= 0 {
			t.Fatalf("group %d DCDT not positive", gi)
		}
	}
	if visits != part.TotalVisits() || targets != s.NumTargets() {
		t.Fatalf("group aggregates (%d visits, %d targets) do not partition the run", visits, targets)
	}

	// Online algorithms carry no plan and no group stats.
	online := run(t, s, Online(&baseline.Random{}), Options{Horizon: 5_000}, 1)
	if online.Groups != nil {
		t.Fatalf("online run has group stats: %+v", online.Groups)
	}
}

// TestPartitionedAdapter: patrol.Partitioned derives the C-variant
// from a planned algorithm and refuses online algorithms and
// unpartitionable planners.
func TestPartitionedAdapter(t *testing.T) {
	cfg := core.PartitionConfig{Method: core.KMeansMethod, K: 2}
	alg, err := Partitioned(Planned(&core.BTCTP{}), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := scenario(32, 10, 2)
	res := run(t, s, alg, Options{Horizon: 10_000}, 1)
	if len(res.Groups) != 2 {
		t.Fatalf("partitioned adapter produced %d groups", len(res.Groups))
	}
	if _, err := Partitioned(Online(&baseline.Random{}), cfg, nil); err == nil {
		t.Fatal("online algorithm partitioned")
	}
	if _, err := Partitioned(Planned(&baseline.CHB{}), cfg, nil); err == nil {
		t.Fatal("CHB has no partitioned variant but was accepted")
	}
}
