package patrol

import (
	"reflect"
	"testing"

	"tctp/internal/baseline"
	"tctp/internal/core"
	"tctp/internal/xrand"
)

// partitioned returns the C-BTCTP variant with k groups, for tests
// that need a genuinely multi-group plan to break.
func partitioned(t *testing.T, k int) Algorithm {
	t.Helper()
	alg, err := Partitioned(Planned(&core.BTCTP{}), core.PartitionConfig{
		Method: core.KMeansMethod, K: k,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return alg
}

// visitLog flattens every target's visit times for whole-run equality
// checks.
func visitLog(res *Result, n int) [][]float64 {
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = res.Recorder.VisitTimes(i)
	}
	return out
}

// TestReplanBoundaryDeterminism: the dynamic-world path is a pure
// function of (scenario, options, seed) — two identical runs with a
// mid-horizon kill and an absorb replan agree on every failure record,
// every replan record, and every visit of every target.
func TestReplanBoundaryDeterminism(t *testing.T) {
	s := scenario(7, 16, 4)
	opts := Options{
		Horizon: 30_000,
		Events:  []Event{{Time: 9_000, Kind: KillMule, Mule: 1}},
		Handoff: HandoffAbsorb,
	}
	a := run(t, s, partitioned(t, 2), opts, 3)
	b := run(t, s, partitioned(t, 2), opts, 3)
	if !reflect.DeepEqual(a.Failures, b.Failures) {
		t.Fatalf("failures differ: %v vs %v", a.Failures, b.Failures)
	}
	if !reflect.DeepEqual(a.Replans, b.Replans) {
		t.Fatalf("replans differ: %v vs %v", a.Replans, b.Replans)
	}
	if !reflect.DeepEqual(visitLog(a, s.NumTargets()), visitLog(b, s.NumTargets())) {
		t.Fatal("visit logs differ between identical dynamic runs")
	}
	if len(a.Failures) != 1 || a.Failures[0].Mule != 1 || a.Failures[0].Time != 9_000 {
		t.Fatalf("failures = %v, want mule 1 at t=9000", a.Failures)
	}
	if len(a.Replans) != 1 {
		t.Fatalf("replans = %v, want exactly one", a.Replans)
	}
}

// TestKillPrefixMatchesControl: up to the event boundary, a run with a
// scheduled kill is bit-identical to the never-killed control — the
// event machinery must not perturb the world before it fires.
func TestKillPrefixMatchesControl(t *testing.T) {
	s := scenario(11, 12, 3)
	const killAt = 8_000
	base := Options{Horizon: 20_000}
	killed := base
	killed.Events = []Event{{Time: killAt, Kind: KillMule, Mule: 0}}
	killed.Handoff = HandoffAbsorb

	control := run(t, s, partitioned(t, 2), base, 5)
	dynamic := run(t, s, partitioned(t, 2), killed, 5)
	for target := 0; target < s.NumTargets(); target++ {
		cv := control.Recorder.VisitTimes(target)
		dv := dynamic.Recorder.VisitTimes(target)
		for i := 0; i < len(cv) && i < len(dv); i++ {
			if cv[i] >= killAt || dv[i] >= killAt {
				break
			}
			if cv[i] != dv[i] {
				t.Fatalf("target %d visit %d: control %v vs killed %v (before the boundary)",
					target, i, cv[i], dv[i])
			}
		}
	}
	if ft, ok := dynamic.FirstFailureTime(); !ok || ft != killAt {
		t.Fatalf("FirstFailureTime = %v,%v, want %v,true", ft, ok, float64(killAt))
	}
}

// TestHandoffAbsorbRecoversCoverage: kill every mule of one group; with
// the absorb policy the orphaned targets are re-covered by the
// survivors, so every target is visited after the failure.
func TestHandoffAbsorbRecoversCoverage(t *testing.T) {
	s := scenario(3, 14, 4)
	// Discover the group structure from a static run of the same plan.
	probe := run(t, s, partitioned(t, 2), Options{Horizon: 1_000}, 2)
	if len(probe.Plan.Groups) != 2 {
		t.Fatalf("%d groups, want 2", len(probe.Plan.Groups))
	}
	const killAt = 10_000
	var evs []Event
	for _, mi := range probe.Plan.Groups[0].Mules {
		evs = append(evs, Event{Time: killAt, Kind: KillMule, Mule: mi})
	}
	opts := Options{Horizon: 40_000, Events: evs, Handoff: HandoffAbsorb}
	res := run(t, s, partitioned(t, 2), opts, 2)
	if len(res.Failures) != len(evs) {
		t.Fatalf("%d failures, want %d", len(res.Failures), len(evs))
	}
	if len(res.Replans) != 1 {
		t.Fatalf("replans = %v, want exactly one (one event batch)", res.Replans)
	}
	rp := res.Replans[0]
	if rp.Time != killAt || rp.Survivors != s.NumMules()-len(evs) {
		t.Fatalf("replan record %+v, want time %v survivors %d", rp, float64(killAt), s.NumMules()-len(evs))
	}
	rec := res.Recorder.TimeToRecoverOver(nil, killAt, opts.Horizon)
	for target := 0; target < s.NumTargets(); target++ {
		if res.Recorder.FirstVisitAfter(target, killAt) < 0 {
			t.Fatalf("target %d never visited after the absorb replan (recover=%v)", target, rec)
		}
	}
}

// TestHandoffNoneLeavesOrphans: the degraded baseline — killing a whole
// group under HandoffNone leaves its targets unvisited from the failure
// on, while the survivors keep patrolling theirs.
func TestHandoffNoneLeavesOrphans(t *testing.T) {
	s := scenario(3, 14, 4)
	probe := run(t, s, partitioned(t, 2), Options{Horizon: 1_000}, 2)
	const killAt = 10_000
	var evs []Event
	for _, mi := range probe.Plan.Groups[0].Mules {
		evs = append(evs, Event{Time: killAt, Kind: KillMule, Mule: mi})
	}
	opts := Options{Horizon: 40_000, Events: evs, Handoff: HandoffNone}
	res := run(t, s, partitioned(t, 2), opts, 2)
	if len(res.Replans) != 0 {
		t.Fatalf("replans = %v, want none under HandoffNone", res.Replans)
	}
	// Orphaned targets (group 0 minus any the survivors also pass): at
	// least one target must go dark; surviving group's targets must not.
	dark := 0
	for _, target := range probe.Plan.Groups[0].Targets {
		if res.Recorder.FirstVisitAfter(target, killAt+1_000) < 0 {
			dark++
		}
	}
	if dark == 0 {
		t.Fatal("no orphaned target went dark under HandoffNone")
	}
	for _, target := range probe.Plan.Groups[1].Targets {
		if res.Recorder.FirstVisitAfter(target, killAt) < 0 {
			t.Fatalf("surviving group's target %d went dark", target)
		}
	}
	if gap := res.Recorder.MaxGapOver(probe.Plan.Groups[0].Targets, killAt, opts.Horizon); gap < 1_000 {
		t.Fatalf("orphan coverage gap %v suspiciously small", gap)
	}
}

// TestSpawnTargetDormancy: a spawned target is dormant — unplanned and
// unvisited — before its event time and patrolled after it (the spawn
// triggers an absorb replan that folds it into a group).
func TestSpawnTargetDormancy(t *testing.T) {
	s := scenario(9, 12, 3)
	const spawnAt = 6_000
	spawn := s.NumTargets() - 1 // any non-sink target
	opts := Options{
		Horizon: 30_000,
		Events:  []Event{{Time: spawnAt, Kind: SpawnTarget, Target: spawn}},
		Handoff: HandoffAbsorb,
	}
	res := run(t, s, partitioned(t, 2), opts, 4)
	if n := res.Recorder.VisitTimes(spawn); len(n) > 0 && n[0] < spawnAt {
		t.Fatalf("dormant target %d visited at %v, before its spawn at %v", spawn, n[0], float64(spawnAt))
	}
	if res.Recorder.FirstVisitAfter(spawn, spawnAt) < 0 {
		t.Fatalf("spawned target %d never visited after activation", spawn)
	}
	if len(res.Replans) != 1 {
		t.Fatalf("replans = %v, want one at the spawn boundary", res.Replans)
	}
	// The initial plan must not route anyone over the dormant target.
	for _, g := range res.Plan.Groups {
		for _, tid := range g.Targets {
			if tid == spawn {
				t.Fatalf("initial plan owns the dormant target %d", spawn)
			}
		}
	}
}

// TestOnlineAlgorithmRejectsSpawns: online (plan-free) algorithms
// cannot patrol dormant targets; Run must refuse, and Plannable must
// say so in advance.
func TestOnlineAlgorithmRejectsSpawns(t *testing.T) {
	s := scenario(13, 8, 2)
	if !Plannable(Planned(&core.BTCTP{})) {
		t.Fatal("Planned algorithm reported not plannable")
	}
	alg := Online(&baseline.Random{})
	if Plannable(alg) {
		t.Fatal("online algorithm reported plannable")
	}
	opts := Options{
		Horizon: 5_000,
		Events:  []Event{{Time: 1_000, Kind: SpawnTarget, Target: 1}},
	}
	if _, err := Run(s, alg, opts, xrand.New(1)); err == nil {
		t.Fatal("Run accepted a spawn schedule for an online algorithm")
	}
}

// TestRandomFailuresSeeded: the axis kill schedule is a pure function
// of the source state — same seed, same schedule; rate 0 and 1 hit
// their extremes; times are sorted and inside the horizon.
func TestRandomFailuresSeeded(t *testing.T) {
	a := RandomFailures(10, 0.5, 1_000, xrand.New(42))
	b := RandomFailures(10, 0.5, 1_000, xrand.New(42))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}
	if len(RandomFailures(10, 0, 1_000, xrand.New(1))) != 0 {
		t.Fatal("rate 0 produced failures")
	}
	all := RandomFailures(10, 1, 1_000, xrand.New(1))
	if len(all) != 10 {
		t.Fatalf("rate 1 killed %d of 10", len(all))
	}
	for i, ev := range all {
		if ev.Time < 0 || ev.Time >= 1_000 {
			t.Fatalf("failure time %v outside [0,1000)", ev.Time)
		}
		if i > 0 && all[i-1].Time > ev.Time {
			t.Fatalf("schedule unsorted at %d", i)
		}
	}
}
