package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tctp/internal/field"
	"tctp/internal/wsn"
)

// Builder assembles a Scenario fluently. The zero configuration is
// the paper's §5.1 world: an 800 m × 800 m field with 20 uniformly
// placed targets, 4 mules at 2 m/s, a 100 000 s horizon and no
// workloads. Errors are deferred to Build, so call chains stay flat.
type Builder struct {
	s Scenario
}

// New starts a builder for a named scenario.
func New(name string) *Builder {
	return &Builder{s: Scenario{
		Name:    name,
		Field:   Field{Width: 800, Height: 800, Placement: field.Uniform},
		Targets: Targets{Count: 20},
		Horizon: 100_000,
	}}
}

// Field sets the region dimensions in metres.
func (b *Builder) Field(width, height float64) *Builder {
	b.s.Field.Width, b.s.Field.Height = width, height
	return b
}

// Placement selects the target layout distribution.
func (b *Builder) Placement(p field.Placement) *Builder {
	b.s.Field.Placement = p
	return b
}

// Clusters selects the clustered placement with n discs of the given
// radius.
func (b *Builder) Clusters(n int, radius float64) *Builder {
	b.s.Field.Placement = field.Clusters
	b.s.Field.NumClusters = n
	b.s.Field.ClusterRadius = radius
	return b
}

// Targets sets the number of patrolled targets (excluding the sink).
func (b *Builder) Targets(n int) *Builder {
	b.s.Targets.Count = n
	return b
}

// VIPs upgrades count targets to Very Important Points of the given
// weight.
func (b *Builder) VIPs(count, weight int) *Builder {
	b.s.Targets.VIPs, b.s.Targets.VIPWeight = count, weight
	return b
}

// Fleet replaces the fleet with n identical mules of the given speed.
func (b *Builder) Fleet(n int, speed float64) *Builder {
	b.s.Fleet = Homogeneous(n, speed)
	return b
}

// Mule appends one mule with its own speed and battery capacity
// (battery 0 = unconstrained), making the fleet heterogeneous.
func (b *Builder) Mule(speed, battery float64) *Builder {
	b.s.Fleet.Mules = append(b.s.Fleet.Mules, Mule{Speed: speed, Battery: battery})
	b.s.Fleet.Name = ""
	return b
}

// MulesAtSink starts every mule at the sink node.
func (b *Builder) MulesAtSink() *Builder {
	b.s.Fleet.AtSink = true
	return b
}

// Horizon sets the simulated duration in seconds.
func (b *Builder) Horizon(seconds float64) *Builder {
	b.s.Horizon = seconds
	return b
}

// Recharge adds a recharge station to the field.
func (b *Builder) Recharge() *Builder {
	b.s.Field.Recharge = true
	return b
}

// Workload attaches a named data workload.
func (b *Builder) Workload(name string, cfg wsn.Config) *Builder {
	b.s.Workloads = append(b.s.Workloads, Workload{Name: name, Data: cfg})
	return b
}

// Build validates and returns the scenario.
func (b *Builder) Build() (*Scenario, error) {
	s := b.s // copy so further builder calls don't alias
	if s.Fleet.Size() == 0 {
		s.Fleet = Homogeneous(4, 2)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// MustBuild is Build for presets and tests; it panics on error.
func (b *Builder) MustBuild() *Scenario {
	s, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("scenario: %v", err))
	}
	return s
}

// Paper51 is the paper's §5.1 simulation model: 20 targets uniformly
// distributed over an 800 m × 800 m region, 4 data mules at 2 m/s.
func Paper51() *Scenario { return New("paper51").MustBuild() }

// Clustered is the motivating disconnected deployment: targets
// grouped in 4 disjoint discs farther apart than the communication
// range.
func Clustered() *Scenario {
	return New("clustered").Clusters(4, 80).MustBuild()
}

// Corridor is an elongated deployment: targets confined to a narrow
// band across the field, stretching the patrolling circuit into a
// line.
func Corridor() *Scenario {
	return New("corridor").Placement(field.Corridor).MustBuild()
}

// Hotspot concentrates 70% of the targets in one dense disc — the
// clustered demand of facility-location mule coordination.
func Hotspot() *Scenario {
	return New("hotspot").Placement(field.Hotspot).MustBuild()
}

// Grid10k is the large-n stress deployment: 10 000 targets uniformly
// spread over an 8 km × 8 km region (the paper's density at 100×
// scale) with a 16-mule fleet. It exists to exercise the spatially
// indexed planning paths at a size where the brute-force scans are
// infeasible; pair it with a short horizon — planning, not patrolling,
// is what it stresses.
func Grid10k() *Scenario {
	return New("grid10k").Field(8_000, 8_000).Targets(10_000).Fleet(16, 10).
		Horizon(20_000).MustBuild()
}

// presets maps preset names to constructors.
var presets = map[string]func() *Scenario{
	"paper51":   Paper51,
	"clustered": Clustered,
	"corridor":  Corridor,
	"hotspot":   Hotspot,
	"grid10k":   Grid10k,
}

// Preset returns the named preset scenario, or an error listing the
// valid names.
func Preset(name string) (*Scenario, error) {
	mk, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown preset %q (valid: %s)",
			name, strings.Join(PresetNames(), ", "))
	}
	return mk(), nil
}

// PresetNames lists the preset names in sorted order.
func PresetNames() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ParseFleet parses a fleet specification of the form
// "COUNTxSPEED[@BATTERY]" groups joined by "+", e.g. "4x2" (four
// 2 m/s mules), "2x1+2x3" (two 1 m/s and two 3 m/s mules), or
// "3x2@150000" (three 2 m/s mules with 150 kJ batteries). The
// fleet's name is the canonical spec string.
func ParseFleet(spec string) (Fleet, error) {
	f := Fleet{Name: spec}
	for _, group := range strings.Split(spec, "+") {
		group = strings.TrimSpace(group)
		battery := 0.0
		if at := strings.IndexByte(group, '@'); at >= 0 {
			b, err := strconv.ParseFloat(group[at+1:], 64)
			if err != nil || b <= 0 {
				return Fleet{}, fmt.Errorf("scenario: bad battery in fleet group %q", group)
			}
			battery = b
			group = group[:at]
		}
		count, speedStr, ok := strings.Cut(group, "x")
		if !ok {
			return Fleet{}, fmt.Errorf("scenario: fleet group %q is not COUNTxSPEED", group)
		}
		n, err := strconv.Atoi(count)
		if err != nil || n < 1 {
			return Fleet{}, fmt.Errorf("scenario: bad count in fleet group %q", group)
		}
		speed, err := strconv.ParseFloat(speedStr, 64)
		if err != nil || speed <= 0 {
			return Fleet{}, fmt.Errorf("scenario: bad speed in fleet group %q", group)
		}
		for i := 0; i < n; i++ {
			f.Mules = append(f.Mules, Mule{Speed: speed, Battery: battery})
		}
	}
	if len(f.Mules) == 0 {
		return Fleet{}, fmt.Errorf("scenario: empty fleet spec %q", spec)
	}
	return f, nil
}
