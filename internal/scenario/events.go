// Dynamic-world events, declarative form: a JSON-round-trippable
// schedule of mid-horizon changes — mule battery deaths, seeded
// attrition, target spawns — plus the handoff policy the fleet
// answers them with. Resolve turns the schedule into the runtime
// patrol.Event form, drawing any attrition picks from the dedicated
// failure stream (stream 5 of the seed-derivation contract), so the
// same (scenario, seed) pair always yields the same world.

package scenario

import (
	"fmt"
	"math"
	"sort"

	"tctp/internal/field"
	"tctp/internal/patrol"
	"tctp/internal/xrand"
)

// Event kinds of the declarative schedule.
const (
	// EventMuleDeath kills one named mule at the event time.
	EventMuleDeath = "mule_death"
	// EventAttrition kills Count seeded-random living mules at the
	// event time (the "lose k mules at t" resilience probe).
	EventAttrition = "attrition"
	// EventTargetSpawn activates a target at the event time; the
	// target is dormant — unplanned and unvisited — before it.
	EventTargetSpawn = "target_spawn"
)

// EventKinds lists the accepted kind names.
const EventKinds = EventMuleDeath + ", " + EventAttrition + ", " + EventTargetSpawn

// Event is one declarative dynamic-world event.
type Event struct {
	// Time is the absolute simulation time in seconds.
	Time float64 `json:"time"`
	// Kind selects the event type (EventMuleDeath, EventAttrition,
	// EventTargetSpawn).
	Kind string `json:"kind"`
	// Mule is the fleet index killed by a mule_death event.
	Mule int `json:"mule,omitempty"`
	// Count is how many living mules an attrition event kills
	// (0 means 1).
	Count int `json:"count,omitempty"`
	// Target is the materialized target id activated by a
	// target_spawn event. Target 0 is the sink and cannot spawn;
	// patrolled targets are 1..Targets.Count.
	Target int `json:"target,omitempty"`
}

// Events is the dynamic-world block of a scenario: the schedule plus
// the handoff policy.
type Events struct {
	// Schedule lists the events; Resolve applies them in time order
	// (ties in declaration order).
	Schedule []Event `json:"schedule"`
	// Handoff names the fleet's replan policy: "" or "none" keeps the
	// surviving routes untouched, "absorb" swaps in a replanned fleet
	// plan at each event boundary (patrol.HandoffAbsorb).
	Handoff string `json:"handoff,omitempty"`
}

// Enabled reports whether there is anything to resolve.
func (e *Events) Enabled() bool { return e != nil && len(e.Schedule) > 0 }

// Policy parses the handoff policy name.
func (e *Events) Policy() (patrol.Handoff, error) {
	if e == nil {
		return patrol.HandoffNone, nil
	}
	return patrol.ParseHandoff(e.Handoff)
}

// validate checks the schedule against the declarative population
// sizes: mules is the fleet size, targets the patrolled-target count
// (ids 1..targets; 0 is the sink).
func (e *Events) validate(mules, targets int) error {
	if e == nil {
		return nil
	}
	if _, err := e.Policy(); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	spawned := map[int]bool{}
	for i, ev := range e.Schedule {
		if math.IsNaN(ev.Time) || math.IsInf(ev.Time, 0) || ev.Time < 0 {
			return fmt.Errorf("scenario: event %d has time %v", i, ev.Time)
		}
		switch ev.Kind {
		case EventMuleDeath:
			if ev.Mule < 0 || ev.Mule >= mules {
				return fmt.Errorf("scenario: event %d kills mule %d of a %d-mule fleet", i, ev.Mule, mules)
			}
		case EventAttrition:
			if ev.Count < 0 {
				return fmt.Errorf("scenario: event %d has attrition count %d", i, ev.Count)
			}
		case EventTargetSpawn:
			if ev.Target < 1 || ev.Target > targets {
				return fmt.Errorf("scenario: event %d spawns target %d (valid: 1..%d; 0 is the sink)",
					i, ev.Target, targets)
			}
			if spawned[ev.Target] {
				return fmt.Errorf("scenario: target %d spawns twice", ev.Target)
			}
			spawned[ev.Target] = true
		default:
			return fmt.Errorf("scenario: event %d has unknown kind %q (valid: %s)", i, ev.Kind, EventKinds)
		}
	}
	return nil
}

// Resolve turns the declarative schedule into runtime events for a
// materialized scenario. Events apply in time order (declaration order
// at equal times); attrition events draw their victims uniformly from
// the mules still scheduled alive at that point, one src.Intn draw per
// kill, so the resolution is a pure function of (schedule, source
// state). A mule_death aimed at an already-killed mule and attrition
// beyond the remaining fleet resolve to fewer kills, not errors.
func (e *Events) Resolve(scn *field.Scenario, src *xrand.Source) ([]patrol.Event, error) {
	if !e.Enabled() {
		return nil, nil
	}
	if err := e.validate(scn.NumMules(), scn.NumTargets()-1); err != nil {
		return nil, err
	}
	sorted := append([]Event(nil), e.Schedule...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].Time < sorted[b].Time })

	alive := make([]int, scn.NumMules())
	for i := range alive {
		alive[i] = i
	}
	kill := func(idx int) int {
		m := alive[idx]
		alive = append(alive[:idx], alive[idx+1:]...)
		return m
	}
	var out []patrol.Event
	for _, ev := range sorted {
		switch ev.Kind {
		case EventMuleDeath:
			for idx, m := range alive {
				if m == ev.Mule {
					out = append(out, patrol.Event{Time: ev.Time, Kind: patrol.KillMule, Mule: kill(idx)})
					break
				}
			}
		case EventAttrition:
			count := ev.Count
			if count == 0 {
				count = 1
			}
			for k := 0; k < count && len(alive) > 0; k++ {
				m := kill(src.Intn(len(alive)))
				out = append(out, patrol.Event{Time: ev.Time, Kind: patrol.KillMule, Mule: m})
			}
		case EventTargetSpawn:
			out = append(out, patrol.Event{Time: ev.Time, Kind: patrol.SpawnTarget, Target: ev.Target})
		}
	}
	return out, nil
}
