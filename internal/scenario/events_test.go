package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"tctp/internal/core"
	"tctp/internal/patrol"
	"tctp/internal/xrand"
)

// TestEventsJSONRoundTrip: the declarative schedule survives a
// marshal/unmarshal cycle untouched, and an event-free scenario's JSON
// carries no "events" key at all — the dynamic-world block is strictly
// additive to the document format.
func TestEventsJSONRoundTrip(t *testing.T) {
	orig := New("dyn").Targets(10).Fleet(3, 2).Horizon(20_000).MustBuild()
	orig.Events = &Events{
		Handoff: "absorb",
		Schedule: []Event{
			{Time: 4_000, Kind: EventMuleDeath, Mule: 1},
			{Time: 6_000, Kind: EventAttrition, Count: 2},
			{Time: 9_000, Kind: EventTargetSpawn, Target: 7},
		},
	}
	if err := orig.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got Scenario
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, orig) {
		t.Fatalf("round trip changed the scenario:\norig: %+v\ngot:  %+v", orig, &got)
	}
	if !got.Events.Enabled() {
		t.Fatal("decoded events not enabled")
	}

	static := New("static").Targets(5).Fleet(2, 2).MustBuild()
	sb, err := json.Marshal(static)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(sb), "events") {
		t.Fatalf("event-free scenario JSON mentions events: %s", sb)
	}
}

// TestEventsValidation: the schedule is checked against the
// declarative population sizes at scenario validation time.
func TestEventsValidation(t *testing.T) {
	base := func() *Scenario {
		s := New("v").Targets(6).Fleet(2, 2).MustBuild()
		s.Events = &Events{}
		return s
	}
	cases := []struct {
		name string
		ev   Event
		want string
	}{
		{"bad kind", Event{Time: 1, Kind: "meteor"}, "unknown kind"},
		{"bad mule", Event{Time: 1, Kind: EventMuleDeath, Mule: 2}, "2-mule fleet"},
		{"negative time", Event{Time: -1, Kind: EventMuleDeath}, "time"},
		{"sink spawn", Event{Time: 1, Kind: EventTargetSpawn, Target: 0}, "sink"},
		{"spawn range", Event{Time: 1, Kind: EventTargetSpawn, Target: 7}, "spawns target 7"},
		{"negative count", Event{Time: 1, Kind: EventAttrition, Count: -1}, "attrition count"},
	}
	for _, tc := range cases {
		s := base()
		s.Events.Schedule = []Event{tc.ev}
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	// Duplicate spawn of the same target.
	s := base()
	s.Events.Schedule = []Event{
		{Time: 1, Kind: EventTargetSpawn, Target: 3},
		{Time: 2, Kind: EventTargetSpawn, Target: 3},
	}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate spawn: err = %v", err)
	}
	// Unknown handoff policy.
	s = base()
	s.Events.Schedule = []Event{{Time: 1, Kind: EventMuleDeath}}
	s.Events.Handoff = "teleport"
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "handoff") {
		t.Errorf("bad handoff: err = %v", err)
	}
}

// TestEventsResolveDeterministic: resolution — including the seeded
// attrition draws — is a pure function of (schedule, source state).
func TestEventsResolveDeterministic(t *testing.T) {
	s := New("r").Targets(12).Fleet(6, 2).Horizon(30_000).MustBuild()
	s.Events = &Events{Schedule: []Event{
		{Time: 2_000, Kind: EventAttrition, Count: 2},
		{Time: 5_000, Kind: EventMuleDeath, Mule: 0},
		{Time: 8_000, Kind: EventAttrition, Count: 1},
	}}
	scn, err := s.Materialize(xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Events.Resolve(scn, xrand.New(77))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Events.Resolve(scn, xrand.New(77))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same source, different resolutions:\n%v\nvs\n%v", a, b)
	}
	// 3 attrition/death picks plus the aimed death — one fewer when the
	// attrition draws already took mule 0 (the aimed death then
	// resolves to nothing rather than double-killing).
	if len(a) < 3 || len(a) > 4 {
		t.Fatalf("%d resolved events, want 3 or 4: %v", len(a), a)
	}
	// All kills hit distinct mules — attrition never double-kills and
	// the aimed death skips mules attrition already took.
	seen := map[int]bool{}
	for _, ev := range a {
		if ev.Kind != patrol.KillMule {
			t.Fatalf("unexpected kind %v", ev.Kind)
		}
		if seen[ev.Mule] {
			t.Fatalf("mule %d killed twice: %v", ev.Mule, a)
		}
		seen[ev.Mule] = true
	}
}

// TestEventsResolveOverkill: attrition beyond the remaining fleet and
// a death aimed at an already-dead mule resolve to fewer kills, not
// errors.
func TestEventsResolveOverkill(t *testing.T) {
	s := New("o").Targets(8).Fleet(2, 2).Horizon(10_000).MustBuild()
	s.Events = &Events{Schedule: []Event{
		{Time: 1_000, Kind: EventAttrition, Count: 5},
		{Time: 2_000, Kind: EventMuleDeath, Mule: 0},
	}}
	scn, err := s.Materialize(xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	evs, err := s.Events.Resolve(scn, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("%d kills of a 2-mule fleet: %v", len(evs), evs)
	}
}

// TestScenarioRunWithEvents: the full declarative path — Scenario.Run
// resolves the schedule off the failure stream and the patrol layer
// reports the failures and the replan.
func TestScenarioRunWithEvents(t *testing.T) {
	s := New("e2e").Targets(10).Fleet(4, 2).Horizon(25_000).MustBuild()
	s.Events = &Events{
		Handoff:  "absorb",
		Schedule: []Event{{Time: 6_000, Kind: EventAttrition, Count: 1}},
	}
	res, err := s.Run(patrol.Planned(&core.BTCTP{}), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 || res.Failures[0].Time != 6_000 {
		t.Fatalf("failures = %v, want one at t=6000", res.Failures)
	}
	if len(res.Replans) != 1 {
		t.Fatalf("replans = %v, want one", res.Replans)
	}
	// Determinism end to end: an identical run agrees on the drawn
	// victim.
	res2, err := s.Run(patrol.Planned(&core.BTCTP{}), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Failures, res2.Failures) {
		t.Fatalf("failure draws differ across identical runs: %v vs %v", res.Failures, res2.Failures)
	}
}
