// Package scenario is the declarative scenario layer: a single,
// JSON-round-trippable description of everything a simulation run
// needs — the field geometry and target placement distribution, the
// target population with its VIP weights, the mule fleet with
// per-mule speed and battery, the horizon, and the data workloads
// layered on top. The paper's §5 experiments all assume one
// homogeneous world (uniform targets, identical 2 m/s mules); this
// package is where every other world is spelled out: clustered and
// hotspot layouts, mixed-speed fleets, packet workloads.
//
// A Scenario is pure data. Materialize turns it into a concrete
// field.Scenario deterministically from a random source, and Run
// executes an algorithm on it end to end, attaching the declared
// workload overlays as peer observers. The builder (New) and the
// named presets (Paper51, Clustered, Corridor, Hotspot) are the two
// ways to construct one; both validate.
package scenario

import (
	"encoding/json"
	"fmt"

	"tctp/internal/field"
	"tctp/internal/patrol"
	"tctp/internal/wsn"
	"tctp/internal/xrand"
)

// Field describes the monitoring region and how targets are laid out
// in it.
type Field struct {
	// Width and Height of the field in metres (defaults 800 × 800,
	// the paper's §5.1 region).
	Width  float64 `json:"width,omitempty"`
	Height float64 `json:"height,omitempty"`
	// Placement selects the target layout distribution.
	Placement field.Placement `json:"placement"`
	// NumClusters and ClusterRadius apply to the Clusters placement
	// (defaults 4 clusters of radius 80 m).
	NumClusters   int     `json:"num_clusters,omitempty"`
	ClusterRadius float64 `json:"cluster_radius,omitempty"`
	// Recharge adds a recharge station (RW-TCTP's extra stop).
	Recharge bool `json:"recharge,omitempty"`
}

// Targets describes the target population.
type Targets struct {
	// Count is the number of patrolled targets excluding the sink.
	Count int `json:"count"`
	// VIPs is how many targets are upgraded to Very Important Points
	// of weight VIPWeight (Definition 1); 0 means none.
	VIPs      int `json:"vips,omitempty"`
	VIPWeight int `json:"vip_weight,omitempty"`
}

// Mule is one fleet member.
type Mule struct {
	// Speed is the travel speed in m/s.
	Speed float64 `json:"speed"`
	// Battery is the battery capacity in joules; 0 leaves the mule
	// unconstrained (unless the run itself enables batteries).
	Battery float64 `json:"battery,omitempty"`
}

// Fleet is the data-mule fleet. Mules may differ in speed and battery
// — the heterogeneous fleets of multi-robot patrolling (Scherer &
// Rinner, arXiv:1906.11539) that the paper's homogeneous §5.1 model
// cannot express.
type Fleet struct {
	// Name labels the fleet (used by the sweep engine's fleet axis).
	Name string `json:"name,omitempty"`
	// Mules lists the members; the fleet size is len(Mules).
	Mules []Mule `json:"mules"`
	// AtSink starts every mule at the sink node (the paper's "each DM
	// will start from the sink node"); otherwise mules start at
	// uniform random field positions.
	AtSink bool `json:"at_sink,omitempty"`
}

// Size returns the fleet size.
func (f Fleet) Size() int { return len(f.Mules) }

// Homogeneous reports whether every mule has the first mule's speed
// and no private battery.
func (f Fleet) Homogeneous() bool {
	for _, m := range f.Mules {
		if m.Speed != f.Mules[0].Speed || m.Battery != 0 {
			return false
		}
	}
	return true
}

// CommonSpeed returns the speed shared by every mule, or 0 when the
// fleet mixes speeds (batteries do not matter here) or is empty.
func (f Fleet) CommonSpeed() float64 {
	if len(f.Mules) == 0 {
		return 0
	}
	for _, m := range f.Mules {
		if m.Speed != f.Mules[0].Speed {
			return 0
		}
	}
	return f.Mules[0].Speed
}

// Members converts the fleet to per-mule patrol overrides.
func (f Fleet) Members() []patrol.FleetMember {
	out := make([]patrol.FleetMember, len(f.Mules))
	for i, m := range f.Mules {
		out[i] = patrol.FleetMember{Speed: m.Speed, Battery: m.Battery}
	}
	return out
}

// Homogeneous builds an n-mule fleet of identical speed mules, named
// after its shape (e.g. "4x2").
func Homogeneous(n int, speed float64) Fleet {
	mules := make([]Mule, n)
	for i := range mules {
		mules[i] = Mule{Speed: speed}
	}
	return Fleet{Name: fmt.Sprintf("%dx%g", n, speed), Mules: mules}
}

// Workload kinds.
const (
	// KindPackets is the periodic model: every node emits one reading
	// per generation interval (the default; an empty Kind means the
	// same).
	KindPackets = "packets"
	// KindBursts is the event-driven model: a subset of targets emits
	// packets in Poisson bursts (exponential inter-burst gaps).
	KindBursts = "bursts"
	// KindPriority is the periodic model with per-class delivery
	// accounting: VIP targets (weight > 1) emit high-priority packets
	// and the overlay splits its delay statistics by priority.
	KindPriority = "priority"
)

// Workload is one data workload layered on a run: sensor nodes at the
// targets generate packets that mules pick up and deliver to the sink
// (the wsn overlay). Kind selects the generation model — periodic
// readings or event-driven Poisson bursts — and the sweep engine
// exposes workloads as a first-class axis either way.
type Workload struct {
	// Name labels the workload; it must be non-empty (the sweep
	// engine's zero Workload, with an empty name, means "none").
	Name string `json:"name"`
	// Kind selects the generation model: "" or "packets" for the
	// periodic model parameterized by Data, "bursts" for Poisson
	// bursts parameterized by Bursts, "priority" for the periodic
	// model with priority-split delivery statistics (also Data).
	Kind string `json:"kind,omitempty"`
	// Data parameterizes the periodic packet workload.
	Data wsn.Config `json:"data"`
	// Bursts parameterizes the burst workload (nil uses the burst
	// defaults); ignored unless Kind is "bursts".
	Bursts *wsn.BurstConfig `json:"bursts,omitempty"`
}

// Enabled reports whether the workload is real (named).
func (w Workload) Enabled() bool { return w.Name != "" }

// Build materializes the workload's overlay for a concrete scenario.
// src drives the workload's randomness (burst arrival processes); the
// periodic model consumes none, so passing nil there is allowed.
func (w Workload) Build(s *field.Scenario, src *xrand.Source) *wsn.Network {
	if w.Kind == KindBursts {
		var cfg wsn.BurstConfig
		if w.Bursts != nil {
			cfg = *w.Bursts
		}
		if src == nil {
			src = xrand.New(0)
		}
		return wsn.NewBursts(s, cfg, src)
	}
	if w.Kind == KindPriority {
		return wsn.NewPriority(s, w.Data)
	}
	return wsn.New(s, w.Data)
}

// Packets returns the conventional packet workload: one reading per
// node per minute, 50-packet buffers, a one-hour delivery deadline.
func Packets() Workload {
	return Workload{Name: "packets", Data: wsn.Config{
		GenInterval: 60, BufferCap: 50, Deadline: 3600,
	}}
}

// Priority returns the conventional priority workload: the packet
// workload's parameters with per-class delivery accounting (VIP
// origins are high-priority).
func Priority() Workload {
	return Workload{Name: "priority", Kind: KindPriority, Data: wsn.Config{
		GenInterval: 60, BufferCap: 50, Deadline: 3600,
	}}
}

// Bursts returns the conventional event-driven workload: every fourth
// target is hot, emitting 10-packet bursts every ~30 minutes on
// average, with 50-packet buffers and a one-hour deadline.
func Bursts(targets int) Workload {
	hot := targets / 4
	if hot < 1 {
		hot = 1
	}
	return Workload{Name: "bursts", Kind: KindBursts, Bursts: &wsn.BurstConfig{
		Hot: hot, MeanGap: 1800, Size: 10, BufferCap: 50, Deadline: 3600,
	}}
}

// Scenario is the complete declarative description of a simulation
// run. The zero value is not runnable; construct via the builder, a
// preset, or JSON.
type Scenario struct {
	// Name labels the scenario.
	Name string `json:"name,omitempty"`
	// Field is the region and placement distribution.
	Field Field `json:"field"`
	// Targets is the target population.
	Targets Targets `json:"targets"`
	// Fleet is the data-mule fleet.
	Fleet Fleet `json:"fleet"`
	// Horizon is the simulated duration in seconds (0 selects the
	// patrol default of 100 000 s).
	Horizon float64 `json:"horizon,omitempty"`
	// Workloads are the data workloads attached to every run.
	Workloads []Workload `json:"workloads,omitempty"`
	// Events is the dynamic-world schedule (mule deaths, attrition,
	// target spawns) with its handoff policy; nil means the static
	// world of the paper.
	Events *Events `json:"events,omitempty"`
}

// Validate checks the declarative invariants. It does not touch
// randomness: a valid scenario materializes successfully from any
// source.
func (s *Scenario) Validate() error {
	if s.Field.Width < 0 || s.Field.Height < 0 {
		return fmt.Errorf("scenario: field %g × %g has a negative dimension",
			s.Field.Width, s.Field.Height)
	}
	if _, err := field.ParsePlacement(s.Field.Placement.String()); err != nil {
		return fmt.Errorf("scenario: invalid placement %v", s.Field.Placement)
	}
	if s.Targets.Count < 1 {
		return fmt.Errorf("scenario: %d targets", s.Targets.Count)
	}
	if s.Targets.VIPs < 0 {
		return fmt.Errorf("scenario: %d VIPs", s.Targets.VIPs)
	}
	if s.Targets.VIPs > s.Targets.Count {
		return fmt.Errorf("scenario: %d VIPs exceed %d targets",
			s.Targets.VIPs, s.Targets.Count)
	}
	if s.Targets.VIPs > 0 && s.Targets.VIPWeight < 2 {
		return fmt.Errorf("scenario: VIP weight %d < 2", s.Targets.VIPWeight)
	}
	if s.Fleet.Size() < 1 {
		return fmt.Errorf("scenario: empty fleet")
	}
	for i, m := range s.Fleet.Mules {
		if m.Speed <= 0 {
			return fmt.Errorf("scenario: mule %d has speed %g", i, m.Speed)
		}
		if m.Battery < 0 {
			return fmt.Errorf("scenario: mule %d has battery %g J", i, m.Battery)
		}
	}
	if s.Horizon < 0 {
		return fmt.Errorf("scenario: horizon %g s", s.Horizon)
	}
	seen := map[string]bool{}
	for i, w := range s.Workloads {
		if !w.Enabled() {
			return fmt.Errorf("scenario: workload %d has no name", i)
		}
		if seen[w.Name] {
			return fmt.Errorf("scenario: duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		switch w.Kind {
		case "", KindPackets, KindPriority:
			if w.Data.GenInterval < 0 || w.Data.BufferCap < 0 || w.Data.Deadline < 0 {
				return fmt.Errorf("scenario: workload %q has negative parameters", w.Name)
			}
		case KindBursts:
			if b := w.Bursts; b != nil {
				if b.Hot < 0 || b.MeanGap < 0 || b.Size < 0 || b.BufferCap < 0 || b.Deadline < 0 {
					return fmt.Errorf("scenario: workload %q has negative parameters", w.Name)
				}
				if b.Hot > s.Targets.Count {
					return fmt.Errorf("scenario: workload %q marks %d hot targets of %d",
						w.Name, b.Hot, s.Targets.Count)
				}
			}
		default:
			return fmt.Errorf("scenario: workload %q has unknown kind %q (valid: %s, %s, %s)",
				w.Name, w.Kind, KindPackets, KindBursts, KindPriority)
		}
	}
	return s.Events.validate(s.Fleet.Size(), s.Targets.Count)
}

// Materialize generates the concrete field.Scenario deterministically
// from src: target positions per the placement distribution, mule
// starts, VIP assignment. The derivation is identical to the historic
// field.Generate + AssignVIPs path, so materializing a homogeneous
// paper-protocol scenario is bit-compatible with pre-scenario code.
func (s *Scenario) Materialize(src *xrand.Source) (*field.Scenario, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cfg := field.Config{
		Width:         s.Field.Width,
		Height:        s.Field.Height,
		NumTargets:    s.Targets.Count,
		NumMules:      s.Fleet.Size(),
		Placement:     s.Field.Placement,
		NumClusters:   s.Field.NumClusters,
		ClusterRadius: s.Field.ClusterRadius,
		MulesAtSink:   s.Fleet.AtSink,
		WithRecharge:  s.Field.Recharge,
	}
	scn := field.Generate(cfg, src)
	if s.Targets.VIPs > 0 {
		scn.AssignVIPs(src, s.Targets.VIPs, s.Targets.VIPWeight)
	}
	return scn, nil
}

// PatrolOptions derives the run options the scenario implies: horizon,
// fleet speed, and — only when the fleet is heterogeneous — the
// per-mule overrides. Workload observers are attached by Run, not
// here.
func (s *Scenario) PatrolOptions() patrol.Options {
	o := patrol.Options{Horizon: s.Horizon}
	if s.Fleet.Size() == 0 {
		return o
	}
	o.Speed = s.Fleet.Mules[0].Speed
	if !s.Fleet.Homogeneous() {
		o.Fleet = s.Fleet.Members()
	}
	return o
}

// Result is a finished scenario run.
type Result struct {
	*patrol.Result
	// Scenario is the materialized instance the run executed on.
	Scenario *field.Scenario
	// Data holds one wsn overlay per declared workload, in
	// declaration order, with the delivery statistics of the run.
	Data []*wsn.Network
}

// Run materializes the scenario from the replication seed, attaches
// the declared workloads and any extra observers as peers, and
// executes the algorithm. Seed derivation follows the engine-wide
// contract (see sweep.ScenarioSource): stream 1 of the seed feeds
// scenario generation, stream 2 the algorithm's randomness, stream 3
// the workloads' (each workload splits its own sub-stream in
// declaration order), stream 4 is reserved for the partition layer,
// and stream 5 drives failure injection (attrition picks).
func (s *Scenario) Run(alg patrol.Algorithm, seed uint64, obs ...patrol.Observer) (*Result, error) {
	root := xrand.New(seed)
	scnSrc := root.Split()
	algSrc := root.Split()
	wlSrc := root.Split()
	root.Split() // stream 4: partition (consumed by the sweep engine)
	failSrc := root.Split()

	scn, err := s.Materialize(scnSrc)
	if err != nil {
		return nil, err
	}
	opts := s.PatrolOptions()
	if s.Events.Enabled() {
		evs, err := s.Events.Resolve(scn, failSrc)
		if err != nil {
			return nil, err
		}
		opts.Events = evs
		if opts.Handoff, err = s.Events.Policy(); err != nil {
			return nil, err
		}
	}
	data := make([]*wsn.Network, len(s.Workloads))
	for i, w := range s.Workloads {
		data[i] = w.Build(scn, wlSrc.Split())
		opts.Observers = append(opts.Observers, data[i])
	}
	opts.Observers = append(opts.Observers, obs...)

	res, err := patrol.Run(scn, alg, opts, algSrc)
	if err != nil {
		return nil, err
	}
	return &Result{Result: res, Scenario: scn, Data: data}, nil
}

// MarshalJSON round-trips through the standard encoder; the method
// exists so the scenario format is an explicit, stable artifact.
func (s *Scenario) MarshalJSON() ([]byte, error) {
	type alias Scenario // drop methods to avoid recursion
	return json.Marshal((*alias)(s))
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (s *Scenario) UnmarshalJSON(b []byte) error {
	type alias Scenario
	return json.Unmarshal(b, (*alias)(s))
}
