package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"tctp/internal/core"
	"tctp/internal/field"
	"tctp/internal/geom"
	"tctp/internal/patrol"
	"tctp/internal/wsn"
	"tctp/internal/xrand"
)

func TestJSONRoundTrip(t *testing.T) {
	// A scenario exercising every field: clustered layout, VIPs, a
	// mixed-speed fleet with one battery, recharge, two workloads.
	orig := New("everything").
		Field(600, 400).
		Clusters(3, 50).
		Targets(15).
		VIPs(2, 3).
		Mule(1.5, 0).
		Mule(3, 120_000).
		MulesAtSink().
		Horizon(42_000).
		Recharge().
		Workload("packets", wsn.Config{GenInterval: 30, BufferCap: 10, Deadline: 900}).
		Workload("slow", wsn.Config{GenInterval: 600}).
		MustBuild()

	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got Scenario
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, orig) {
		t.Fatalf("round trip changed the scenario:\norig: %+v\ngot:  %+v", orig, &got)
	}
	// The decoded scenario is immediately valid and materializable.
	if _, err := got.Materialize(xrand.New(1)); err != nil {
		t.Fatal(err)
	}
}

func TestJSONPlacementByName(t *testing.T) {
	b, err := json.Marshal(Hotspot())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"placement":"hotspot"`) {
		t.Fatalf("placement not encoded by name: %s", b)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"no targets", func(s *Scenario) { s.Targets.Count = 0 }, "targets"},
		{"negative field", func(s *Scenario) { s.Field.Width = -1 }, "negative"},
		{"bad placement", func(s *Scenario) { s.Field.Placement = field.Placement(99) }, "placement"},
		{"empty fleet", func(s *Scenario) { s.Fleet.Mules = nil }, "fleet"},
		{"zero speed", func(s *Scenario) { s.Fleet.Mules[0].Speed = 0 }, "speed"},
		{"negative battery", func(s *Scenario) { s.Fleet.Mules[0].Battery = -1 }, "battery"},
		{"vip weight", func(s *Scenario) { s.Targets.VIPs, s.Targets.VIPWeight = 2, 1 }, "weight"},
		{"too many vips", func(s *Scenario) { s.Targets.VIPs, s.Targets.VIPWeight = 99, 2 }, "exceed"},
		{"negative horizon", func(s *Scenario) { s.Horizon = -5 }, "horizon"},
		{"unnamed workload", func(s *Scenario) { s.Workloads = []Workload{{}} }, "name"},
		{"duplicate workload", func(s *Scenario) {
			s.Workloads = []Workload{Packets(), Packets()}
		}, "duplicate"},
		{"negative workload", func(s *Scenario) {
			s.Workloads = []Workload{{Name: "w", Data: wsn.Config{Deadline: -1}}}
		}, "negative"},
	}
	for _, tc := range cases {
		s := Paper51()
		tc.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		// Materialize and Run surface the same validation error.
		if _, err := s.Materialize(xrand.New(1)); err == nil {
			t.Fatalf("%s: Materialize accepted", tc.name)
		}
	}
}

func TestPresets(t *testing.T) {
	names := PresetNames()
	if len(names) != 5 {
		t.Fatalf("presets = %v", names)
	}
	for _, name := range names {
		s, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != name {
			t.Fatalf("preset %q named %q", name, s.Name)
		}
		if _, err := s.Materialize(xrand.New(7)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := Preset("atlantis"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

// The scenario layer must be bit-compatible with the historic
// field.Generate path for homogeneous paper-protocol scenarios:
// materializing Paper51 from a source equals generating directly.
func TestMaterializeMatchesFieldGenerate(t *testing.T) {
	got, err := Paper51().Materialize(xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	want := field.Generate(field.Config{
		Width: 800, Height: 800,
		NumTargets: 20, NumMules: 4, Placement: field.Uniform,
	}, xrand.New(42))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("materialization diverged from field.Generate")
	}
}

func TestParseFleet(t *testing.T) {
	f, err := ParseFleet("2x1+2x3@150000")
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 4 || f.Name != "2x1+2x3@150000" {
		t.Fatalf("fleet %+v", f)
	}
	if f.Mules[0].Speed != 1 || f.Mules[0].Battery != 0 {
		t.Fatalf("mule 0 = %+v", f.Mules[0])
	}
	if f.Mules[3].Speed != 3 || f.Mules[3].Battery != 150_000 {
		t.Fatalf("mule 3 = %+v", f.Mules[3])
	}
	if f.Homogeneous() {
		t.Fatal("mixed fleet reported homogeneous")
	}
	for _, bad := range []string{"", "x2", "2x", "0x2", "2x0", "2x2@-1", "ax2", "2xb", "2x2@x"} {
		if _, err := ParseFleet(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
	if h := Homogeneous(4, 2); !h.Homogeneous() || h.Name != "4x2" {
		t.Fatalf("Homogeneous = %+v", h)
	}
}

func TestPatrolOptionsHomogeneity(t *testing.T) {
	// Homogeneous fleets stay on the scalar Speed path (bit-compatible
	// with pre-scenario options); heterogeneous fleets carry per-mule
	// overrides.
	if o := Paper51().PatrolOptions(); o.Speed != 2 || o.Fleet != nil {
		t.Fatalf("homogeneous options %+v", o)
	}
	s := New("mixed").Mule(1, 0).Mule(3, 9_000).MustBuild()
	o := s.PatrolOptions()
	if len(o.Fleet) != 2 || o.Fleet[1].Speed != 3 || o.Fleet[1].Battery != 9_000 {
		t.Fatalf("heterogeneous options %+v", o)
	}
}

func TestRunWithWorkloads(t *testing.T) {
	s := New("wl").Targets(8).Fleet(2, 2).Horizon(30_000).
		Workload("packets", wsn.Config{GenInterval: 60, BufferCap: 50, Deadline: 3600}).
		MustBuild()
	res, err := s.Run(patrol.Planned(&core.BTCTP{}), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) != 1 {
		t.Fatalf("%d workload overlays", len(res.Data))
	}
	if res.Data[0].Delivered() == 0 {
		t.Fatal("workload delivered nothing")
	}
	if res.TotalVisits() == 0 {
		t.Fatal("no visits recorded")
	}
}

// The determinism contract of the observer refactor: observers watch,
// they do not steer. A preset scenario run with observers attached in
// different orders yields identical metrics.
func TestObserverOrderDoesNotChangeMetrics(t *testing.T) {
	sc := New("det").Targets(10).Fleet(3, 2).Horizon(25_000).MustBuild()
	alg := patrol.Planned(&core.BTCTP{})

	type probe struct{ visits, deaths, recharges int }
	mk := func(p *probe) patrol.Observer {
		return patrol.ObserverFuncs{
			Visit:    func(_, _ int, _ float64) { p.visits++ },
			Death:    func(_ int, _ float64, _ geom.Point) { p.deaths++ },
			Recharge: func(_ int, _ float64) { p.recharges++ },
		}
	}

	run := func(order func(a, b patrol.Observer) []patrol.Observer) (*Result, *probe, *probe) {
		pa, pb := &probe{}, &probe{}
		res, err := sc.Run(alg, 3, order(mk(pa), mk(pb))...)
		if err != nil {
			t.Fatal(err)
		}
		return res, pa, pb
	}
	resAB, aAB, bAB := run(func(a, b patrol.Observer) []patrol.Observer { return []patrol.Observer{a, b} })
	resBA, aBA, bBA := run(func(a, b patrol.Observer) []patrol.Observer { return []patrol.Observer{b, a} })

	if *aAB != *bAB || *aAB != *aBA || *aAB != *bBA {
		t.Fatalf("observers disagree: %+v %+v %+v %+v", aAB, bAB, aBA, bBA)
	}
	if aAB.visits != resAB.TotalVisits() {
		t.Fatalf("probe saw %d visits, recorder %d", aAB.visits, resAB.TotalVisits())
	}
	for tg := 0; tg < resAB.Scenario.NumTargets(); tg++ {
		x, y := resAB.Recorder.VisitTimes(tg), resBA.Recorder.VisitTimes(tg)
		if !reflect.DeepEqual(x, y) {
			t.Fatalf("target %d visit log depends on observer order", tg)
		}
	}
	if resAB.Recorder.AvgSDAfter(0) != resBA.Recorder.AvgSDAfter(0) ||
		resAB.Recorder.AvgDCDTAfter(0) != resBA.Recorder.AvgDCDTAfter(0) {
		t.Fatal("metrics depend on observer order")
	}
}

func TestBurstWorkloadKind(t *testing.T) {
	sc, err := New("bursty").Targets(8).Fleet(2, 2).Horizon(30_000).Build()
	if err != nil {
		t.Fatal(err)
	}
	sc.Workloads = append(sc.Workloads, Bursts(8))
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}

	// JSON round-trip keeps the kind and the burst parameters.
	b, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	var back Scenario
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Workloads) != 1 || back.Workloads[0].Kind != KindBursts ||
		back.Workloads[0].Bursts == nil || back.Workloads[0].Bursts.Size != 10 {
		t.Fatalf("burst workload did not round-trip: %+v", back.Workloads)
	}

	// The run attaches the burst overlay and collects data.
	res, err := sc.Run(patrol.Planned(&core.BTCTP{}), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) != 1 {
		t.Fatalf("%d overlays", len(res.Data))
	}
	if res.Data[0].Delivered() == 0 {
		t.Fatal("burst workload delivered nothing over 30000 s")
	}

	// Same seed → identical delivery; the arrivals are seeded by the
	// replication's workload stream.
	again, err := sc.Run(patrol.Planned(&core.BTCTP{}), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data[0].Delivered() != again.Data[0].Delivered() {
		t.Fatal("burst workload not deterministic per seed")
	}
}

func TestWorkloadKindValidation(t *testing.T) {
	sc := New("w").Targets(5).MustBuild()
	sc.Workloads = []Workload{{Name: "x", Kind: "avalanche"}}
	if err := sc.Validate(); err == nil {
		t.Fatal("unknown workload kind accepted")
	}
	sc.Workloads = []Workload{{Name: "x", Kind: KindBursts,
		Bursts: &wsn.BurstConfig{Hot: 99}}}
	if err := sc.Validate(); err == nil {
		t.Fatal("more hot targets than targets accepted")
	}
	sc.Workloads = []Workload{{Name: "x", Kind: KindBursts,
		Bursts: &wsn.BurstConfig{MeanGap: -1}}}
	if err := sc.Validate(); err == nil {
		t.Fatal("negative burst gap accepted")
	}
}
