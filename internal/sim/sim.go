// Package sim is a deterministic discrete-event simulation engine.
// Events are closures scheduled at absolute times and executed in
// non-decreasing time order; events at identical times run in FIFO
// scheduling order, which makes every simulation in this repository
// fully reproducible.
//
// The engine computes mule trajectories analytically (arrival times
// are distance/velocity), so there is no time-stepping error: B-TCTP's
// "standard deviation always keeps zero" claim (paper Fig. 8) can be
// verified to floating-point precision.
//
// Event records are pooled: a fired or canceled event returns to a
// free list and its next Schedule reuses it, so the steady-state
// schedule→fire cycle of a patrolling simulation allocates nothing
// (see BenchmarkEngine). Cancellation is lazy — a canceled event stays
// in the heap until popped — but when canceled entries outnumber live
// ones the heap is compacted in place.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Handler is the body of a scheduled event.
type Handler func()

type event struct {
	time     float64
	seq      uint64 // insertion order; breaks time ties FIFO
	fn       Handler
	canceled bool
	// gen counts the record's reuses; a Cancel handle is valid only
	// for the generation it was issued for, so recycling a record
	// invalidates stale handles.
	gen uint64
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// compactMinHeap is the heap size below which lazy-deleted entries are
// never compacted — popping a handful of tombstones is cheaper than a
// rebuild.
const compactMinHeap = 64

// Engine is a discrete-event simulator. The zero value is ready to
// use at time 0.
type Engine struct {
	now      float64
	seq      uint64
	events   eventHeap
	executed uint64
	pending  int      // live count of scheduled, non-canceled events
	free     []*event // recycled event records
}

// New returns an engine with the clock at 0.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of scheduled (non-canceled) events. The
// count is maintained live on Schedule/Cancel/Step, so the call is
// O(1).
func (e *Engine) Pending() int { return e.pending }

// Executed returns how many events have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Cancel is a handle revoking a scheduled event. It is returned by
// Schedule, is safe to call more than once or after the event has
// fired (a no-op), and stays safe after the engine has recycled the
// event record for a later Schedule. The zero Cancel is a no-op.
type Cancel struct {
	e   *Engine
	ev  *event
	gen uint64
}

// Cancel revokes the event if it has not fired yet.
func (c Cancel) Cancel() {
	ev := c.ev
	if ev == nil || ev.gen != c.gen || ev.canceled {
		return
	}
	ev.canceled = true
	c.e.pending--
	c.e.maybeCompact()
}

// alloc takes an event record from the free list, or allocates one.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle returns a popped record to the free list, invalidating any
// outstanding Cancel handles for it.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.gen++
	e.free = append(e.free, ev)
}

// maybeCompact rebuilds the heap once lazily-deleted canceled entries
// outnumber the live ones (and the heap is big enough to care).
func (e *Engine) maybeCompact() {
	if len(e.events) >= compactMinHeap && len(e.events)-e.pending > len(e.events)/2 {
		kept := e.events[:0]
		for _, ev := range e.events {
			if ev.canceled {
				e.recycle(ev)
			} else {
				kept = append(kept, ev)
			}
		}
		for i := len(kept); i < len(e.events); i++ {
			e.events[i] = nil
		}
		e.events = kept
		heap.Init(&e.events)
	}
}

// Schedule runs fn at absolute time at. Scheduling in the past (or a
// NaN time) panics: it always indicates a model bug.
func (e *Engine) Schedule(at float64, fn Handler) Cancel {
	if math.IsNaN(at) || at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := e.alloc()
	ev.time, ev.seq, ev.fn, ev.canceled = at, e.seq, fn, false
	e.seq++
	heap.Push(&e.events, ev)
	e.pending++
	return Cancel{e: e, ev: ev, gen: ev.gen}
}

// After runs fn d seconds from now. Negative d panics.
func (e *Engine) After(d float64, fn Handler) Cancel {
	if d < 0 {
		panic(fmt.Sprintf("sim: After(%v) negative", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Step executes the next pending event, advancing the clock to its
// time. It returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		e.now = ev.time
		e.executed++
		e.pending--
		ev.canceled = true // fired: make a late Cancel a no-op
		fn := ev.fn
		e.recycle(ev) // before fn: the handler's own Schedule can reuse it
		fn()
		return true
	}
	return false
}

// RunUntil executes every event scheduled at or before t, then sets
// the clock to t. Events scheduled during execution are processed too
// if they fall within the horizon. It panics if t is before now.
func (e *Engine) RunUntil(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, e.now))
	}
	for len(e.events) > 0 {
		next := e.peek()
		if next == nil || next.time > t {
			break
		}
		e.Step()
	}
	e.now = t
}

// Run executes events until none remain or until maxEvents events have
// run (a safety valve against accidental infinite event loops —
// patrolling routes are cyclic and schedule forever). It returns the
// number of events executed by this call.
func (e *Engine) Run(maxEvents uint64) uint64 {
	var n uint64
	for n < maxEvents && e.Step() {
		n++
	}
	return n
}

// peek returns the next non-canceled event without removing it, or
// nil.
func (e *Engine) peek() *event {
	for len(e.events) > 0 {
		ev := e.events[0]
		if !ev.canceled {
			return ev
		}
		heap.Pop(&e.events)
		e.recycle(ev)
	}
	return nil
}

// NextEventTime returns the time of the next pending event and true,
// or 0 and false when the queue is empty.
func (e *Engine) NextEventTime() (float64, bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.time, true
}
