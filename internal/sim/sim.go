// Package sim is a deterministic discrete-event simulation engine.
// Events are closures scheduled at absolute times and executed in
// non-decreasing time order; events at identical times run in FIFO
// scheduling order, which makes every simulation in this repository
// fully reproducible.
//
// The engine computes mule trajectories analytically (arrival times
// are distance/velocity), so there is no time-stepping error: B-TCTP's
// "standard deviation always keeps zero" claim (paper Fig. 8) can be
// verified to floating-point precision.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Handler is the body of a scheduled event.
type Handler func()

type event struct {
	time     float64
	seq      uint64 // insertion order; breaks time ties FIFO
	fn       Handler
	canceled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is ready to
// use at time 0.
type Engine struct {
	now      float64
	seq      uint64
	events   eventHeap
	executed uint64
	pending  int // live count of scheduled, non-canceled events
}

// New returns an engine with the clock at 0.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of scheduled (non-canceled) events. The
// count is maintained live on Schedule/Cancel/Step, so the call is
// O(1) — it used to scan the whole heap.
func (e *Engine) Pending() int { return e.pending }

// Executed returns how many events have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Cancel revokes a scheduled event. It is returned by Schedule and is
// safe to call more than once or after the event has fired (a no-op).
type Cancel func()

// Schedule runs fn at absolute time at. Scheduling in the past (or a
// NaN time) panics: it always indicates a model bug.
func (e *Engine) Schedule(at float64, fn Handler) Cancel {
	if math.IsNaN(at) || at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := &event{time: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	e.pending++
	return func() {
		if !ev.canceled {
			ev.canceled = true
			e.pending--
		}
	}
}

// After runs fn d seconds from now. Negative d panics.
func (e *Engine) After(d float64, fn Handler) Cancel {
	if d < 0 {
		panic(fmt.Sprintf("sim: After(%v) negative", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Step executes the next pending event, advancing the clock to its
// time. It returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.canceled {
			continue
		}
		e.now = ev.time
		e.executed++
		e.pending--
		ev.canceled = true // fired: make a late Cancel a no-op
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes every event scheduled at or before t, then sets
// the clock to t. Events scheduled during execution are processed too
// if they fall within the horizon. It panics if t is before now.
func (e *Engine) RunUntil(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, e.now))
	}
	for len(e.events) > 0 {
		next := e.peek()
		if next == nil || next.time > t {
			break
		}
		e.Step()
	}
	e.now = t
}

// Run executes events until none remain or until maxEvents events have
// run (a safety valve against accidental infinite event loops —
// patrolling routes are cyclic and schedule forever). It returns the
// number of events executed by this call.
func (e *Engine) Run(maxEvents uint64) uint64 {
	var n uint64
	for n < maxEvents && e.Step() {
		n++
	}
	return n
}

// peek returns the next non-canceled event without removing it, or
// nil.
func (e *Engine) peek() *event {
	for len(e.events) > 0 {
		ev := e.events[0]
		if !ev.canceled {
			return ev
		}
		heap.Pop(&e.events)
	}
	return nil
}

// NextEventTime returns the time of the next pending event and true,
// or 0 and false when the queue is empty.
func (e *Engine) NextEventTime() (float64, bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.time, true
}
