package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run(100)
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run(100)
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events out of FIFO order: %v", order)
		}
	}
}

func TestAfter(t *testing.T) {
	e := New()
	var at float64 = -1
	e.Schedule(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run(100)
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func() {})
	e.Run(100)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func() {})
}

func TestAfterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("After(-1) did not panic")
		}
	}()
	New().After(-1, func() {})
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	cancel := e.Schedule(1, func() { fired = true })
	cancel.Cancel()
	cancel.Cancel() // double-cancel is a no-op
	e.Run(100)
	if fired {
		t.Fatal("canceled event fired")
	}
	if e.Executed() != 0 {
		t.Fatalf("Executed = %d", e.Executed())
	}
}

func TestCancelAfterFireNoop(t *testing.T) {
	e := New()
	cancel := e.Schedule(1, func() {})
	e.Run(100)
	cancel.Cancel() // must not panic or corrupt state
	if e.Pending() != 0 {
		t.Fatal("phantom pending events")
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %v", fired)
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("fired %v", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want horizon 10", e.Now())
	}
}

func TestRunUntilIncludesBoundary(t *testing.T) {
	e := New()
	fired := false
	e.Schedule(7, func() { fired = true })
	e.RunUntil(7)
	if !fired {
		t.Fatal("event exactly at horizon not executed")
	}
}

func TestRunUntilProcessesSpawnedEvents(t *testing.T) {
	e := New()
	var hits []float64
	e.Schedule(1, func() {
		hits = append(hits, e.Now())
		e.After(1, func() { hits = append(hits, e.Now()) }) // at t=2
		e.After(9, func() { hits = append(hits, e.Now()) }) // at t=10, beyond horizon
	})
	e.RunUntil(5)
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 2 {
		t.Fatalf("hits = %v", hits)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d", e.Pending())
	}
}

func TestRunUntilBackwardPanics(t *testing.T) {
	e := New()
	e.RunUntil(5)
	defer func() {
		if recover() == nil {
			t.Fatal("backward RunUntil did not panic")
		}
	}()
	e.RunUntil(4)
}

func TestRunMaxEvents(t *testing.T) {
	e := New()
	count := 0
	var loop func()
	loop = func() {
		count++
		e.After(1, loop)
	}
	e.Schedule(0, loop)
	n := e.Run(50)
	if n != 50 || count != 50 {
		t.Fatalf("Run executed %d events, handler ran %d", n, count)
	}
}

func TestStepEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
}

func TestNextEventTime(t *testing.T) {
	e := New()
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("empty engine reported next event")
	}
	cancel := e.Schedule(4, func() {})
	e.Schedule(9, func() {})
	if tm, ok := e.NextEventTime(); !ok || tm != 4 {
		t.Fatalf("NextEventTime = %v %v", tm, ok)
	}
	cancel.Cancel()
	if tm, ok := e.NextEventTime(); !ok || tm != 9 {
		t.Fatalf("after cancel NextEventTime = %v %v", tm, ok)
	}
}

func TestPendingSkipsCanceled(t *testing.T) {
	e := New()
	c1 := e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	c1.Cancel()
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d", got)
	}
}

// Pending is maintained as a live counter; it must track every
// Schedule/Cancel/Step transition, including double-cancels, cancels
// after execution, and cancels of already-popped events.
func TestPendingCounterTransitions(t *testing.T) {
	e := New()
	if e.Pending() != 0 {
		t.Fatalf("fresh Pending = %d", e.Pending())
	}
	c1 := e.Schedule(1, func() {})
	c2 := e.Schedule(2, func() {})
	e.Schedule(3, func() { e.After(1, func() {}) })
	if e.Pending() != 3 {
		t.Fatalf("after 3 schedules Pending = %d", e.Pending())
	}
	c1.Cancel()
	c1.Cancel() // double cancel is a no-op
	if e.Pending() != 2 {
		t.Fatalf("after cancel Pending = %d", e.Pending())
	}
	e.Step() // runs the t=2 event
	if e.Pending() != 1 {
		t.Fatalf("after step Pending = %d", e.Pending())
	}
	c2.Cancel() // already executed: no-op
	if e.Pending() != 1 {
		t.Fatalf("after stale cancel Pending = %d", e.Pending())
	}
	e.Step() // t=3 event schedules a follow-up at t=4
	if e.Pending() != 1 {
		t.Fatalf("after rescheduling step Pending = %d", e.Pending())
	}
	e.Step()
	if e.Pending() != 0 {
		t.Fatalf("drained Pending = %d", e.Pending())
	}
}

// Property: any batch of events executes in sorted time order
// regardless of insertion order.
func TestExecutionOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := New()
		var got []float64
		for _, raw := range times {
			at := float64(raw)
			e.Schedule(at, func() { got = append(got, at) })
		}
		e.Run(uint64(len(times)) + 1)
		if len(got) != len(times) {
			return false
		}
		return sort.Float64sAreSorted(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: clock is monotone non-decreasing across any run.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := New()
		prev := -1.0
		ok := true
		for _, raw := range times {
			at := float64(raw)
			e.Schedule(at, func() {
				if e.Now() < prev {
					ok = false
				}
				prev = e.Now()
			})
		}
		e.Run(uint64(len(times)) + 1)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStaleCancelDoesNotKillRecycledEvent(t *testing.T) {
	e := New()
	stale := e.Schedule(1, func() {})
	e.Run(10) // fires; the record returns to the pool
	fired := false
	e.Schedule(2, func() { fired = true }) // reuses the pooled record
	stale.Cancel()                         // must not touch the new occupant
	e.Run(10)
	if !fired {
		t.Fatal("stale cancel killed a recycled event")
	}
}

func TestZeroCancelNoop(t *testing.T) {
	var c Cancel
	c.Cancel() // must not panic
}

func TestCompaction(t *testing.T) {
	e := New()
	const n = 1000
	cancels := make([]Cancel, 0, n)
	fired := 0
	for i := 0; i < n; i++ {
		cancels = append(cancels, e.Schedule(float64(i+1), func() { fired++ }))
	}
	for _, c := range cancels[:n-100] {
		c.Cancel()
	}
	// Compaction keeps tombstones at no more than half the heap.
	if live, total := e.Pending(), len(e.events); total > 2*live {
		t.Fatalf("heap holds %d entries for %d live events", total, live)
	}
	e.Run(n + 1)
	if fired != 100 {
		t.Fatalf("%d events fired, want 100", fired)
	}
}

// TestStepRecyclesWithoutAllocating pins the pooling win: a
// steady-state schedule→fire cycle reuses pooled records and performs
// zero allocations per event.
func TestStepRecyclesWithoutAllocating(t *testing.T) {
	e := New()
	var fn Handler
	fn = func() { e.After(1, fn) }
	e.Schedule(0, fn)
	e.Run(64) // warm the pool and the heap slice
	if allocs := testing.AllocsPerRun(1000, func() { e.Step() }); allocs > 0 {
		t.Fatalf("%v allocs per schedule→fire cycle, want 0", allocs)
	}
}

// BenchmarkEngine measures the steady-state schedule→fire cycle of a
// patrolling simulation: every fired event schedules its successor,
// exactly like a mule leg. Before event pooling this cost two heap
// allocations per event (the record and the cancel closure); with the
// pool it costs none — compare allocs/op after any engine change.
func BenchmarkEngine(b *testing.B) {
	e := New()
	var fn Handler
	fn = func() { e.After(1, fn) }
	for i := 0; i < 8; i++ {
		e.Schedule(float64(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineCancel measures the schedule→cancel→compact path: half
// the scheduled events are canceled, exercising the tombstone
// compaction.
func BenchmarkEngineCancel(b *testing.B) {
	e := New()
	var fn Handler
	fn = func() {
		c := e.After(2, func() {})
		e.After(1, fn)
		c.Cancel()
	}
	e.Schedule(0, fn)
	e.Run(256) // steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
