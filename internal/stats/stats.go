// Package stats provides the descriptive statistics and result
// containers used by the evaluation harness: sample moments (the
// paper's SD formula is the sample standard deviation of a target's
// consecutive visiting intervals), Welford accumulators for streaming
// aggregation, elementwise aggregation across replicated runs, and the
// Series/Surface containers that mirror the paper's 2-D line plots
// (Fig. 7) and 3-D bar plots (Figs. 8–10).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// SampleSD returns the sample standard deviation (the 1/(n−1)
// normalization used by the paper's SD metric). Slices with fewer
// than two elements yield 0.
func SampleSD(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// Min returns the smallest element; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice
// or q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile q=%v outside [0,1]", q))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N    int
	Mean float64
	SD   float64
	Min  float64
	Max  float64
}

// Summarize computes a Summary. An empty sample yields the zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		SD:   SampleSD(xs),
		Min:  Min(xs),
		Max:  Max(xs),
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f",
		s.N, s.Mean, s.SD, s.Min, s.Max)
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean of xs (1.96·sd/√n). Samples with fewer than
// two elements yield 0.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * SampleSD(xs) / math.Sqrt(float64(len(xs)))
}

// Accumulator computes running moments with Welford's algorithm plus
// streaming extrema; it is the streaming counterpart of Summarize. The
// zero value is ready to use. Because the update is sequential, two
// accumulators fed the same samples in the same order produce
// bit-identical results — the sweep engine relies on this for
// worker-count-independent output.
type Accumulator struct {
	n        int
	mean     float64
	m2       float64
	min, max float64
}

// Add incorporates x.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 || x < a.min {
		a.min = x
	}
	if a.n == 1 || x > a.max {
		a.max = x
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// Merge folds another accumulator's samples into a, as if b's samples
// had been added to a — the parallel-Welford combination of Chan,
// Golub & LeVeque. Merge is order-invariant: Merge(a,b) and Merge(b,a)
// produce bit-identical state, because the combined moments are
// computed from symmetric expressions (commutative IEEE-754 sums and a
// squared delta). Merging with an empty accumulator is an exact
// identity in either direction. Merging is not bit-identical to
// feeding the samples sequentially — Welford's running update rounds
// differently — but agrees to floating-point accuracy; N, Min and Max
// are always exact.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	na, nb := float64(a.n), float64(b.n)
	n := na + nb
	delta := b.mean - a.mean
	// na*ma + nb*mb and a.m2 + b.m2 are commutative IEEE-754 sums, and
	// delta² is invariant under negation, so swapping a and b yields
	// the same bits. The parenthesization matters: the two m2 terms
	// must be summed before the delta term or the grouping (and the
	// rounding) would depend on the merge order.
	a.mean = (na*a.mean + nb*b.mean) / n
	a.m2 = (a.m2 + b.m2) + delta*delta*(na*nb/n)
	a.n += b.n
}

// N returns the number of samples added.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// SD returns the running sample standard deviation (0 for n < 2).
func (a *Accumulator) SD() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n-1))
}

// Min returns the smallest sample seen (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample seen (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean (0 for n < 2); the streaming counterpart of
// the slice-based CI95.
func (a *Accumulator) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return 1.96 * a.SD() / math.Sqrt(float64(a.n))
}

// Summary returns the accumulated moments as a Summary.
func (a *Accumulator) Summary() Summary {
	return Summary{N: a.n, Mean: a.Mean(), SD: a.SD(), Min: a.min, Max: a.max}
}

// AccumulatorState is the serializable snapshot of an Accumulator. The
// floating-point moments travel as raw IEEE-754 bits so a
// State→Restore round trip through any text encoding (JSON included)
// is bit-exact — the sweep engine's checkpoint/resume path depends on
// this for byte-identical output — and so non-finite values survive
// encoders that reject NaN and ±Inf literals.
type AccumulatorState struct {
	N    int    `json:"n"`
	Mean uint64 `json:"mean_bits"`
	M2   uint64 `json:"m2_bits"`
	Min  uint64 `json:"min_bits"`
	Max  uint64 `json:"max_bits"`
}

// State snapshots the accumulator.
func (a *Accumulator) State() AccumulatorState {
	return AccumulatorState{
		N:    a.n,
		Mean: math.Float64bits(a.mean),
		M2:   math.Float64bits(a.m2),
		Min:  math.Float64bits(a.min),
		Max:  math.Float64bits(a.max),
	}
}

// Restore overwrites the accumulator with a snapshot taken by State.
// Feeding the restored accumulator the same remaining samples in the
// same order as the original produces bit-identical moments.
func (a *Accumulator) Restore(s AccumulatorState) {
	a.n = s.N
	a.mean = math.Float64frombits(s.Mean)
	a.m2 = math.Float64frombits(s.M2)
	a.min = math.Float64frombits(s.Min)
	a.max = math.Float64frombits(s.Max)
}

// MeanAcross averages replicated runs elementwise: runs[r][k] is the
// k-th value of replication r. Rows may have different lengths; each
// output position averages the rows that reach it. An empty input
// yields nil.
func MeanAcross(runs [][]float64) []float64 {
	maxLen := 0
	for _, r := range runs {
		if len(r) > maxLen {
			maxLen = len(r)
		}
	}
	if maxLen == 0 {
		return nil
	}
	out := make([]float64, maxLen)
	for k := 0; k < maxLen; k++ {
		var acc Accumulator
		for _, r := range runs {
			if k < len(r) {
				acc.Add(r[k])
			}
		}
		out[k] = acc.Mean()
	}
	return out
}

// Series is a named sequence of (x, y) samples — one curve of a line
// plot such as the paper's Fig. 7.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one sample.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.X) }

// Surface is a named 2-D grid of z values over the cross product of
// two parameter axes — one surface of a 3-D bar plot such as the
// paper's Figs. 8–10. Z[i][j] corresponds to (Rows[i], Cols[j]).
type Surface struct {
	Name string
	// RowLabel and ColLabel name the two swept parameters.
	RowLabel, ColLabel string
	Rows, Cols         []float64
	Z                  [][]float64
}

// NewSurface allocates a zero-filled surface over the given axes.
func NewSurface(name, rowLabel, colLabel string, rows, cols []float64) *Surface {
	z := make([][]float64, len(rows))
	for i := range z {
		z[i] = make([]float64, len(cols))
	}
	r := make([]float64, len(rows))
	copy(r, rows)
	c := make([]float64, len(cols))
	copy(c, cols)
	return &Surface{
		Name: name, RowLabel: rowLabel, ColLabel: colLabel,
		Rows: r, Cols: c, Z: z,
	}
}

// Set stores z at the cell addressed by row index i and column index
// j.
func (s *Surface) Set(i, j int, z float64) { s.Z[i][j] = z }

// At returns the value at row i, column j.
func (s *Surface) At(i, j int) float64 { return s.Z[i][j] }

// MaxZ returns the largest value on the surface (0 for an empty one).
func (s *Surface) MaxZ() float64 {
	m := 0.0
	first := true
	for _, row := range s.Z {
		for _, z := range row {
			if first || z > m {
				m = z
				first = false
			}
		}
	}
	return m
}

// MeanZ returns the mean of all cells (0 for an empty surface).
func (s *Surface) MeanZ() float64 {
	var acc Accumulator
	for _, row := range s.Z {
		for _, z := range row {
			acc.Add(z)
		}
	}
	return acc.Mean()
}
