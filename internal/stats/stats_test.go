package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3, 4}); !almost(m, 2.5) {
		t.Fatalf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v", m)
	}
}

func TestSampleSD(t *testing.T) {
	// Known value: sd of {2,4,4,4,5,5,7,9} with n−1 norm is ≈2.138.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if sd := SampleSD(xs); math.Abs(sd-2.13808993529939) > 1e-9 {
		t.Fatalf("SampleSD = %v", sd)
	}
	if sd := SampleSD([]float64{5}); sd != 0 {
		t.Fatalf("SampleSD singleton = %v", sd)
	}
	if sd := SampleSD(nil); sd != 0 {
		t.Fatalf("SampleSD nil = %v", sd)
	}
	if sd := SampleSD([]float64{3, 3, 3, 3}); !almost(sd, 0) {
		t.Fatalf("SampleSD constant = %v", sd)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	for _, f := range []func([]float64) float64{Min, Max} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("empty input did not panic")
				}
			}()
			f(nil)
		}()
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := Quantile(xs, 0); !almost(q, 1) {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); !almost(q, 5) {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); !almost(q, 3) {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile(xs, 0.25); !almost(q, 2) {
		t.Fatalf("q25 = %v", q)
	}
	// Interpolation between order statistics.
	if q := Quantile([]float64{0, 10}, 0.5); !almost(q, 5) {
		t.Fatalf("interpolated median = %v", q)
	}
	if q := Quantile([]float64{42}, 0.9); !almost(q, 42) {
		t.Fatalf("singleton quantile = %v", q)
	}
	// Input must not be reordered.
	in := []float64{5, 1, 3}
	Quantile(in, 0.5)
	if in[0] != 5 || in[1] != 1 || in[2] != 3 {
		t.Fatal("Quantile reordered input")
	}
}

func TestQuantilePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("empty did not panic")
			}
		}()
		Quantile(nil, 0.5)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("q>1 did not panic")
			}
		}()
		Quantile([]float64{1}, 1.5)
	}()
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || !almost(s.Mean, 2) || !almost(s.Min, 1) || !almost(s.Max, 3) {
		t.Fatalf("Summary = %+v", s)
	}
	if !almost(s.SD, 1) {
		t.Fatalf("Summary.SD = %v", s.SD)
	}
	z := Summarize(nil)
	if z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty Summary = %+v", z)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestCI95(t *testing.T) {
	xs := []float64{10, 12, 8, 11, 9}
	want := 1.96 * SampleSD(xs) / math.Sqrt(5)
	if ci := CI95(xs); !almost(ci, want) {
		t.Fatalf("CI95 = %v, want %v", ci, want)
	}
	if ci := CI95([]float64{1}); ci != 0 {
		t.Fatalf("CI95 singleton = %v", ci)
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	xs := []float64{3.1, -2.7, 8.8, 0, 4.4, 1.2}
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	if a.N() != len(xs) {
		t.Fatalf("N = %d", a.N())
	}
	if !almost(a.Mean(), Mean(xs)) {
		t.Fatalf("Accumulator mean %v vs batch %v", a.Mean(), Mean(xs))
	}
	if !almost(a.SD(), SampleSD(xs)) {
		t.Fatalf("Accumulator sd %v vs batch %v", a.SD(), SampleSD(xs))
	}
	if !almost(a.Min(), Min(xs)) || !almost(a.Max(), Max(xs)) {
		t.Fatalf("Accumulator extrema %v..%v vs batch %v..%v",
			a.Min(), a.Max(), Min(xs), Max(xs))
	}
	if !almost(a.CI95(), CI95(xs)) {
		t.Fatalf("Accumulator CI95 %v vs batch %v", a.CI95(), CI95(xs))
	}
	want := Summarize(xs)
	got := a.Summary()
	if got.N != want.N || !almost(got.Mean, want.Mean) || !almost(got.SD, want.SD) ||
		!almost(got.Min, want.Min) || !almost(got.Max, want.Max) {
		t.Fatalf("Summary %v vs batch %v", got, want)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.SD() != 0 || a.N() != 0 ||
		a.Min() != 0 || a.Max() != 0 || a.CI95() != 0 {
		t.Fatal("zero accumulator not zero")
	}
	a.Add(5)
	if a.SD() != 0 || a.CI95() != 0 {
		t.Fatal("single-sample spread not zero")
	}
	if a.Min() != 5 || a.Max() != 5 {
		t.Fatalf("single-sample extrema %v..%v", a.Min(), a.Max())
	}
}

// Property: accumulator agrees with batch formulas on random data.
func TestAccumulatorProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) / 7
		}
		var a Accumulator
		for _, x := range xs {
			a.Add(x)
		}
		return math.Abs(a.Mean()-Mean(xs)) < 1e-6 &&
			math.Abs(a.SD()-SampleSD(xs)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// accumulate folds xs into a fresh accumulator.
func accumulate(xs []float64) Accumulator {
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	return a
}

// floats widens a quick.Check int16 vector into non-trivial float64
// samples.
func floats(raw []int16) []float64 {
	xs := make([]float64, len(raw))
	for i, r := range raw {
		xs[i] = float64(r) / 7
	}
	return xs
}

// Property: merging the two halves of any partition of a sample stream
// agrees with feeding the stream sequentially — N, Min and Max exactly,
// the running moments to floating-point accuracy.
func TestAccumulatorMergeMatchesSequential(t *testing.T) {
	f := func(raw []int16, cut uint8) bool {
		xs := floats(raw)
		k := 0
		if len(xs) > 0 {
			k = int(cut) % (len(xs) + 1)
		}
		whole := accumulate(xs)
		merged := accumulate(xs[:k])
		tail := accumulate(xs[k:])
		merged.Merge(&tail)
		if merged.N() != whole.N() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
			return false
		}
		scale := 1 + math.Abs(whole.Mean()) + whole.SD()
		return math.Abs(merged.Mean()-whole.Mean()) < 1e-9*scale &&
			math.Abs(merged.SD()-whole.SD()) < 1e-9*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge is order-invariant — a ⊕ b and b ⊕ a produce
// bit-identical state, the contract the engine's shard fusion relies
// on.
func TestAccumulatorMergeOrderInvariant(t *testing.T) {
	f := func(rawA, rawB []int16) bool {
		ab := accumulate(floats(rawA))
		other := accumulate(floats(rawB))
		ab.Merge(&other)
		ba := accumulate(floats(rawB))
		other = accumulate(floats(rawA))
		ba.Merge(&other)
		return ab.State() == ba.State()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: any contiguous partition of the stream merges to the same
// result as the two-way split — partition invariance within
// floating-point accuracy (N/Min/Max exact).
func TestAccumulatorMergePartitionInvariant(t *testing.T) {
	f := func(raw []int16, parts uint8) bool {
		xs := floats(raw)
		k := int(parts)%5 + 2
		var merged Accumulator
		for i := 0; i < k; i++ {
			lo, hi := i*len(xs)/k, (i+1)*len(xs)/k
			chunk := accumulate(xs[lo:hi])
			merged.Merge(&chunk)
		}
		whole := accumulate(xs)
		if merged.N() != whole.N() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
			return false
		}
		scale := 1 + math.Abs(whole.Mean()) + whole.SD()
		return math.Abs(merged.Mean()-whole.Mean()) < 1e-9*scale &&
			math.Abs(merged.SD()-whole.SD()) < 1e-9*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Merging with an empty accumulator is an exact identity in both
// directions, and a constant stream merges bit-identically to the
// sequential fold (every intermediate is exact).
func TestAccumulatorMergeEmptyAndConstant(t *testing.T) {
	full := accumulate([]float64{3.25, -1.5, 0.125})
	var empty Accumulator
	got := full
	got.Merge(&empty)
	if got.State() != full.State() {
		t.Fatalf("x ⊕ empty mutated state: %+v vs %+v", got.State(), full.State())
	}
	got = Accumulator{}
	got.Merge(&full)
	if got.State() != full.State() {
		t.Fatalf("empty ⊕ x ≠ x: %+v vs %+v", got.State(), full.State())
	}
	var both Accumulator
	both.Merge(&empty)
	if both.State() != (&Accumulator{}).State() {
		t.Fatalf("empty ⊕ empty not empty: %+v", both.State())
	}

	constant := []float64{2.5, 2.5, 2.5, 2.5, 2.5}
	whole := accumulate(constant)
	head := accumulate(constant[:2])
	tail := accumulate(constant[2:])
	head.Merge(&tail)
	if head.State() != whole.State() {
		t.Fatalf("constant-stream merge not bit-identical: %+v vs %+v",
			head.State(), whole.State())
	}
}

func TestMeanAcross(t *testing.T) {
	runs := [][]float64{
		{1, 2, 3},
		{3, 4, 5},
	}
	got := MeanAcross(runs)
	want := []float64{2, 3, 4}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Fatalf("MeanAcross = %v", got)
		}
	}
}

func TestMeanAcrossRagged(t *testing.T) {
	runs := [][]float64{
		{1, 2, 3},
		{3},
	}
	got := MeanAcross(runs)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if !almost(got[0], 2) || !almost(got[1], 2) || !almost(got[2], 3) {
		t.Fatalf("MeanAcross ragged = %v", got)
	}
	if MeanAcross(nil) != nil {
		t.Fatal("MeanAcross(nil) != nil")
	}
	if MeanAcross([][]float64{{}, {}}) != nil {
		t.Fatal("MeanAcross of empties != nil")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "tctp"
	s.Add(1, 10)
	s.Add(2, 20)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.X[1] != 2 || s.Y[1] != 20 {
		t.Fatalf("sample = (%v, %v)", s.X[1], s.Y[1])
	}
}

func TestSurface(t *testing.T) {
	s := NewSurface("sd", "targets", "mules", []float64{10, 20}, []float64{2, 4, 6})
	if len(s.Z) != 2 || len(s.Z[0]) != 3 {
		t.Fatalf("shape = %dx%d", len(s.Z), len(s.Z[0]))
	}
	s.Set(1, 2, 7.5)
	if s.At(1, 2) != 7.5 {
		t.Fatalf("At = %v", s.At(1, 2))
	}
	if !almost(s.MaxZ(), 7.5) {
		t.Fatalf("MaxZ = %v", s.MaxZ())
	}
	if !almost(s.MeanZ(), 7.5/6) {
		t.Fatalf("MeanZ = %v", s.MeanZ())
	}
	// Axes are copied.
	rows := []float64{1, 2}
	s2 := NewSurface("x", "a", "b", rows, rows)
	rows[0] = 99
	if s2.Rows[0] == 99 {
		t.Fatal("NewSurface shares axis slice")
	}
}

func TestSurfaceEmpty(t *testing.T) {
	s := NewSurface("e", "a", "b", nil, nil)
	if s.MaxZ() != 0 || s.MeanZ() != 0 {
		t.Fatal("empty surface stats not zero")
	}
}

func TestAccumulatorStateRoundTrip(t *testing.T) {
	// Split a sample stream at every prefix: folding the suffix into a
	// restored accumulator must be bit-identical to folding it all into
	// one — the checkpoint/resume contract.
	xs := []float64{3.25, -1.5, 0.1, 7.75, 2.2, -0.3, 5.5}
	var whole Accumulator
	for _, x := range xs {
		whole.Add(x)
	}
	for cut := 0; cut <= len(xs); cut++ {
		var prefix Accumulator
		for _, x := range xs[:cut] {
			prefix.Add(x)
		}
		var resumed Accumulator
		resumed.Restore(prefix.State())
		for _, x := range xs[cut:] {
			resumed.Add(x)
		}
		if resumed.State() != whole.State() {
			t.Fatalf("cut %d: resumed state %+v != whole %+v", cut, resumed.State(), whole.State())
		}
		if resumed.Mean() != whole.Mean() || resumed.SD() != whole.SD() ||
			resumed.CI95() != whole.CI95() {
			t.Fatalf("cut %d: resumed moments differ", cut)
		}
	}
}

func TestAccumulatorStateNonFinite(t *testing.T) {
	// NaN and ±Inf survive the bit-level snapshot (JSON could not carry
	// them as float literals).
	var a Accumulator
	a.Add(math.NaN())
	a.Add(math.Inf(1))
	var b Accumulator
	b.Restore(a.State())
	if b.N() != 2 || b.State() != a.State() {
		t.Fatalf("non-finite state did not round-trip: %+v vs %+v", a.State(), b.State())
	}
	if !math.IsNaN(b.Mean()) {
		t.Fatalf("restored mean %v, want NaN", b.Mean())
	}
}
