// Package build translates a transport-neutral sweep request
// (protocol.SweepRequest) into an executable sweep.Spec. It is the
// single Spec builder shared by the tctp-sweep CLI (whose flags the
// request mirrors one-for-one) and the tctp-server daemon, so a sweep
// submitted over HTTP plans exactly the grid the same flags would
// plan locally — same axes, same defaults, same spec name, same
// fingerprint, and therefore byte-identical sink output.
//
// Zero-valued request fields mean "the default", matching the CLI's
// flag defaults: algorithms default to btctp, the workload knobs to
// the periodic-packet/burst defaults, seeds to 10, the horizon to the
// scenario's (or 60000 s). A request may name a built-in preset or
// carry an inline scenario document; paths are deliberately absent —
// a server never reads scenario files off its own disk.
package build

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"tctp/internal/baseline"
	"tctp/internal/core"
	"tctp/internal/field"
	"tctp/internal/patrol"
	"tctp/internal/scenario"
	"tctp/internal/sweep"
	"tctp/internal/sweep/protocol"
	"tctp/internal/wsn"
)

// Algorithm resolves an algorithm axis name.
func Algorithm(name string) (patrol.Algorithm, error) {
	switch name {
	case "btctp":
		return patrol.Planned(&core.BTCTP{}), nil
	case "wtctp":
		return patrol.Planned(&core.WTCTP{}), nil
	case "chb":
		return patrol.Planned(&baseline.CHB{}), nil
	case "sweep":
		return patrol.Planned(&baseline.Sweep{}), nil
	case "random":
		return patrol.Online(&baseline.Random{}), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

// Ints parses a comma-separated integer axis.
func Ints(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// Floats parses a comma-separated float axis.
func Floats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// Placements parses a comma-separated placement axis.
func Placements(s string) ([]field.Placement, error) {
	parts := strings.Split(s, ",")
	out := make([]field.Placement, 0, len(parts))
	for _, p := range parts {
		v, err := field.ParsePlacement(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Fleets parses a semicolon-separated fleet axis ("4x2;2x1+2x3").
func Fleets(s string) ([]scenario.Fleet, error) {
	parts := strings.Split(s, ";")
	out := make([]scenario.Fleet, 0, len(parts))
	for _, p := range parts {
		f, err := scenario.ParseFleet(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// Workloads maps the request's off/on/bursts/priority axis values to
// workloads; "on" is the periodic packet workload parameterized by
// the workload knobs, "bursts" the event-driven Poisson-burst
// workload parameterized by the burst knobs, and "priority" the
// periodic workload with priority-split delivery statistics (VIP
// origins are high-priority). The request must already carry its
// defaults (see withDefaults).
func Workloads(req protocol.SweepRequest) ([]scenario.Workload, error) {
	var out []scenario.Workload
	for _, p := range strings.Split(req.Workloads, ",") {
		switch strings.TrimSpace(p) {
		case "off":
			out = append(out, scenario.Workload{})
		case "on":
			out = append(out, scenario.Workload{Name: "packets", Data: wsn.Config{
				GenInterval: req.WorkloadGen,
				BufferCap:   req.WorkloadBuffer,
				Deadline:    req.WorkloadDeadline,
			}})
		case "bursts":
			out = append(out, scenario.Workload{
				Name: "bursts", Kind: scenario.KindBursts,
				Bursts: &wsn.BurstConfig{
					Hot:       req.BurstHot,
					MeanGap:   req.BurstGap,
					Size:      req.BurstSize,
					BufferCap: req.WorkloadBuffer,
					Deadline:  req.WorkloadDeadline,
				},
			})
		case "priority":
			out = append(out, scenario.Workload{
				Name: "priority", Kind: scenario.KindPriority,
				Data: wsn.Config{
					GenInterval: req.WorkloadGen,
					BufferCap:   req.WorkloadBuffer,
					Deadline:    req.WorkloadDeadline,
				},
			})
		default:
			return nil, fmt.Errorf("unknown workload %q (valid: off, on, bursts, priority)", p)
		}
	}
	return out, nil
}

// parsePartitions maps the partition axis values ("none" or
// "method:k[:alloc]") to the engine's partition axis.
func parsePartitions(s string) ([]sweep.Partition, error) {
	var out []sweep.Partition
	for _, p := range strings.Split(s, ",") {
		part, err := sweep.ParsePartition(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, part)
	}
	return out, nil
}

// Adaptive decodes "metric:relci[:min[:max]]" into the engine's
// adaptive-replication config.
func Adaptive(s string) (*sweep.Adaptive, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 4 || parts[0] == "" {
		return nil, fmt.Errorf("bad adaptive spec %q (want metric:relci[:min[:max]])", s)
	}
	a := &sweep.Adaptive{Metric: parts[0]}
	var err error
	if a.RelCI, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return nil, fmt.Errorf("bad adaptive relative CI %q", parts[1])
	}
	if len(parts) > 2 {
		if a.MinReps, err = strconv.Atoi(parts[2]); err != nil {
			return nil, fmt.Errorf("bad adaptive min reps %q", parts[2])
		}
	}
	if len(parts) > 3 {
		if a.MaxReps, err = strconv.Atoi(parts[3]); err != nil {
			return nil, fmt.Errorf("bad adaptive max reps %q", parts[3])
		}
	}
	return a, nil
}

// withDefaults fills zero-valued request fields with the CLI's flag
// defaults, so a sparse JSON request and a bare `tctp-sweep` invocation
// mean the same sweep.
func withDefaults(req protocol.SweepRequest) protocol.SweepRequest {
	if req.Algorithms == "" {
		req.Algorithms = "btctp"
	}
	if req.WorkloadGen == 0 {
		req.WorkloadGen = 60
	}
	if req.WorkloadBuffer == 0 {
		req.WorkloadBuffer = 50
	}
	if req.WorkloadDeadline == 0 {
		req.WorkloadDeadline = 3600
	}
	if req.BurstGap == 0 {
		req.BurstGap = 1800
	}
	if req.BurstSize == 0 {
		req.BurstSize = 10
	}
	if req.Seeds == 0 {
		req.Seeds = 10
	}
	return req
}

// baseScenario resolves the request's preset or inline scenario
// document (at most one may be set) to a validated scenario, or nil
// when neither is given.
func baseScenario(req protocol.SweepRequest) (*scenario.Scenario, error) {
	if req.Preset != "" && len(req.Scenario) != 0 {
		return nil, fmt.Errorf("preset conflicts with an inline scenario: both supply the base scenario")
	}
	if req.Preset != "" {
		return scenario.Preset(req.Preset)
	}
	if len(req.Scenario) == 0 {
		return nil, nil
	}
	var sc scenario.Scenario
	if err := json.Unmarshal(req.Scenario, &sc); err != nil {
		return nil, fmt.Errorf("scenario document: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("scenario document: %w", err)
	}
	return &sc, nil
}

// applyDefaults resolves empty axis fields against the built-in
// defaults or, when a preset/scenario is given, the scenario's values.
func applyDefaults(req protocol.SweepRequest) (protocol.SweepRequest, *scenario.Scenario, error) {
	ps, err := baseScenario(req)
	if err != nil {
		return req, nil, err
	}
	if req.Targets == "" {
		req.Targets = "10,20,30,40,50"
		if ps != nil {
			req.Targets = strconv.Itoa(ps.Targets.Count)
		}
	}
	if req.Mules == "" && req.Fleets == "" {
		switch {
		case ps == nil:
			req.Mules = "2,4,6,8"
		case ps.Fleet.CommonSpeed() > 0:
			req.Mules = strconv.Itoa(ps.Fleet.Size())
		default:
			// A mixed-speed scenario fleet cannot collapse to a size;
			// Spec routes the whole fleet onto the Fleets axis.
		}
	}
	if req.Speeds == "" && req.Fleets == "" {
		req.Speeds = "2"
		if ps != nil {
			if sp := ps.Fleet.CommonSpeed(); sp > 0 {
				req.Speeds = strconv.FormatFloat(sp, 'g', -1, 64)
			}
		}
	}
	if req.Placements == "" {
		req.Placements = "uniform"
		if ps != nil {
			req.Placements = ps.Field.Placement.String()
		}
	}
	if req.Workloads == "" {
		req.Workloads = "off"
	}
	if req.Horizon == 0 {
		req.Horizon = 60_000
		if ps != nil {
			req.Horizon = ps.Horizon
		}
	}
	return req, ps, nil
}

// Spec translates a request into an executable sweep.Spec. The spec's
// name is fixed ("tctp-sweep") so requests and local CLI runs agree on
// sink output byte-for-byte.
func Spec(req protocol.SweepRequest) (sweep.Spec, error) {
	var spec sweep.Spec
	req, preset, err := applyDefaults(withDefaults(req))
	if err != nil {
		return spec, err
	}
	for _, name := range strings.Split(req.Algorithms, ",") {
		name = strings.TrimSpace(name)
		alg, err := Algorithm(name)
		if err != nil {
			return spec, err
		}
		spec.Algorithms = append(spec.Algorithms, sweep.Algo(name, alg))
	}
	if spec.Targets, err = Ints(req.Targets); err != nil {
		return spec, err
	}
	switch {
	case req.Fleets != "":
		if req.Mules != "" || req.Speeds != "" {
			return spec, fmt.Errorf("fleets conflicts with mules/speeds: the fleet axis already fixes sizes and speeds")
		}
		if spec.Fleets, err = Fleets(req.Fleets); err != nil {
			return spec, err
		}
	case req.Mules == "" && preset != nil:
		// Mixed-speed scenario fleet: sweep it as a named fleet.
		fleet := preset.Fleet
		if fleet.Name == "" {
			fleet.Name = preset.Name
		}
		if fleet.Name == "" {
			fleet.Name = "scenario" // unnamed inline scenario
		}
		spec.Fleets = []scenario.Fleet{fleet}
	default:
		if spec.Mules, err = Ints(req.Mules); err != nil {
			return spec, err
		}
		if spec.Speeds, err = Floats(req.Speeds); err != nil {
			return spec, err
		}
	}
	if spec.Placements, err = Placements(req.Placements); err != nil {
		return spec, err
	}
	if preset != nil && preset.Targets.VIPs > 0 {
		// The scenario's VIP population rides the (singleton) VIP axis,
		// so priority workloads and weighted planners see the declared
		// Very Important Points.
		spec.VIPs = []int{preset.Targets.VIPs}
		spec.VIPWeights = []int{preset.Targets.VIPWeight}
	}
	if spec.Workloads, err = Workloads(req); err != nil {
		return spec, err
	}
	if req.Partition != "" {
		if spec.Partitions, err = parsePartitions(req.Partition); err != nil {
			return spec, err
		}
	}
	if req.Failures != "" {
		for _, p := range strings.Split(req.Failures, ",") {
			fa, err := sweep.ParseFailure(strings.TrimSpace(p))
			if err != nil {
				return spec, err
			}
			spec.Failures = append(spec.Failures, fa)
		}
	}
	if req.Handoff != "" {
		// The request-level handoff is the default policy: it fills in
		// for enabled failure values that do not name their own, so
		// `-failures 0.5 -handoff absorb` and `-failures 0.5:absorb`
		// plan the same cell.
		if _, err := patrol.ParseHandoff(req.Handoff); err != nil {
			return spec, err
		}
		for i, fa := range spec.Failures {
			if fa.Enabled() && fa.Handoff == "" {
				spec.Failures[i].Handoff = req.Handoff
			}
		}
	}
	for _, nt := range spec.Targets {
		if nt < 1 {
			return spec, fmt.Errorf("target count %d < 1", nt)
		}
	}
	for _, nm := range spec.Mules {
		if nm < 1 {
			return spec, fmt.Errorf("fleet size %d < 1", nm)
		}
	}
	for _, sp := range spec.Speeds {
		if sp <= 0 {
			return spec, fmt.Errorf("speed %g must be positive", sp)
		}
	}
	if req.Seeds < 1 {
		return spec, fmt.Errorf("seeds %d < 1", req.Seeds)
	}
	if req.Horizon <= 0 {
		return spec, fmt.Errorf("horizon %g must be positive", req.Horizon)
	}
	if req.Adaptive != "" {
		if spec.Adaptive, err = Adaptive(req.Adaptive); err != nil {
			return spec, err
		}
	}
	spec.Name = "tctp-sweep"
	spec.Horizons = []float64{req.Horizon}
	spec.Seeds = req.Seeds
	spec.BaseSeed = req.BaseSeed
	spec.Workers = req.Workers
	spec.RepShards = req.RepShards
	if preset != nil {
		// The scenario supplies the field geometry (dimensions, cluster
		// parameters, recharge station) and any declared event schedule;
		// the axes keep the placement.
		presetField := preset.Field
		presetEvents := preset.Events
		spec.Configure = func(p sweep.Point, sc *scenario.Scenario) {
			placement := sc.Field.Placement
			sc.Field = presetField
			sc.Field.Placement = placement
			sc.Events = presetEvents
		}
		// The Configure closure is invisible to the checkpoint
		// fingerprint; serialize what it applies so resuming (or
		// cache-keying) under an edited scenario is refused. Event-free
		// scenarios keep the bare-field digest so their cache keys are
		// unchanged from before the dynamic-world layer existed.
		var digest []byte
		if presetEvents == nil {
			digest, err = json.Marshal(presetField)
		} else {
			digest, err = json.Marshal(struct {
				Field  scenario.Field   `json:"field"`
				Events *scenario.Events `json:"events"`
			}{presetField, presetEvents})
		}
		if err != nil {
			return spec, err
		}
		spec.ConfigDigest = string(digest)
	}
	spec.Metrics = []sweep.Metric{
		sweep.AvgDCDT(), sweep.AvgSD(), sweep.MaxInterval(), sweep.JoulesPerVisit(),
	}
	for _, w := range spec.Workloads {
		if w.Enabled() {
			spec.Metrics = append(spec.Metrics,
				sweep.Delivered(), sweep.OnTimePct(), sweep.MeanLatency())
			break
		}
	}
	// A priority workload on the axis additionally reports the
	// per-class delivery split.
	for _, w := range spec.Workloads {
		if w.Kind == scenario.KindPriority {
			spec.Metrics = append(spec.Metrics,
				sweep.DeliveredHigh(), sweep.MeanLatencyHigh(), sweep.MeanLatencyLow())
			break
		}
	}
	if req.Quality {
		spec.Metrics = append(spec.Metrics, sweep.Quality()...)
	}
	// Dynamic-world cells — an enabled failure axis value or a
	// scenario-declared event schedule — additionally report the
	// degraded-mode coverage metrics.
	failuresOn := false
	for _, fa := range spec.Failures {
		if fa.Enabled() {
			failuresOn = true
			break
		}
	}
	dynamic := failuresOn || (preset != nil && preset.Events.Enabled())
	if dynamic {
		spec.Metrics = append(spec.Metrics, sweep.CoverageGap(), sweep.TimeToRecover())
	}
	// With an enabled partition on the axis, report the group count and
	// the per-group DCDT/SD columns (group_dcdt_s_1..k,
	// group_sd_s_1..k); single-circuit cells fill only position 1.
	partitionK := map[string]int{}
	var probeCfg core.PartitionConfig
	maxK := 0
	for _, pa := range spec.Partitions {
		if !pa.Enabled() {
			continue
		}
		partitionK[pa.String()] = pa.K
		if pa.K > maxK {
			maxK = pa.K
			probeCfg, _ = pa.Config() // parsePartitions already validated
		}
	}
	// Partitioned cells of algorithms without a partitioned variant are
	// skipped, not failed, so mixed-algorithm grids stay usable. The
	// capability is probed from the algorithm itself (core.Partitionable
	// via patrol.Partitioned), not a name list, so planners gaining a
	// partitioned form are picked up automatically.
	partitionable := map[string]bool{}
	if maxK > 0 {
		spec.Metrics = append(spec.Metrics, sweep.GroupCount())
		spec.Vectors = append(spec.Vectors, sweep.GroupDCDT(maxK), sweep.GroupSD(maxK))
		if dynamic {
			spec.Vectors = append(spec.Vectors,
				sweep.GroupDCDTPostFailure(maxK), sweep.GroupSDPostFailure(maxK))
		}
		for _, v := range spec.Algorithms {
			_, perr := patrol.Partitioned(v.Make(nil), probeCfg, nil)
			partitionable[v.Name] = perr == nil
		}
	}
	// Spawn events create dormant targets that only plan-based
	// algorithms can fold in via a replan; online walkers would chase
	// targets that do not exist yet. Probe the capability from the
	// algorithm itself, mirroring the partitionable probe above.
	spawns := false
	if preset != nil && preset.Events.Enabled() {
		for _, ev := range preset.Events.Schedule {
			if ev.Kind == scenario.EventTargetSpawn {
				spawns = true
				break
			}
		}
	}
	plannable := map[string]bool{}
	if spawns {
		for _, v := range spec.Algorithms {
			plannable[v.Name] = patrol.Plannable(v.Make(nil))
		}
	}
	spec.Skip = func(p sweep.Point) string {
		if p.Mules > p.Targets+1 {
			return "sweep needs at least one target per mule"
		}
		if spawns && !plannable[p.Algorithm] {
			return "algorithm cannot plan dormant spawn targets"
		}
		if p.Partition != "" {
			if !partitionable[p.Algorithm] {
				return "algorithm has no partitioned variant"
			}
			if k := partitionK[p.Partition]; p.Mules < k {
				return fmt.Sprintf("partition %s needs at least %d mules", p.Partition, k)
			} else if k > p.Targets+1 {
				return fmt.Sprintf("partition %s exceeds the %d targets", p.Partition, p.Targets+1)
			}
		}
		return ""
	}
	return spec, nil
}
