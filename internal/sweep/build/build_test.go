package build

import (
	"testing"

	"tctp/internal/scenario"
	"tctp/internal/sweep/protocol"
)

func metricNames(t *testing.T, req protocol.SweepRequest) map[string]bool {
	t.Helper()
	spec, err := Spec(req)
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, m := range spec.Metrics {
		names[m.Name] = true
	}
	return names
}

// The priority workload rides the axis like any other value and pulls
// in the per-class delivery columns alongside the aggregate ones.
func TestSpecPriorityWorkloadMetrics(t *testing.T) {
	names := metricNames(t, protocol.SweepRequest{Workloads: "priority"})
	for _, want := range []string{"delivered", "delivered_hi", "mean_latency_hi_s", "mean_latency_lo_s"} {
		if !names[want] {
			t.Errorf("priority spec lacks metric %q (have %v)", want, names)
		}
	}
	names = metricNames(t, protocol.SweepRequest{Workloads: "on"})
	if names["delivered_hi"] {
		t.Error("plain packet workload reports the priority split")
	}

	spec, err := Spec(protocol.SweepRequest{Workloads: "priority"})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Workloads) != 1 || spec.Workloads[0].Kind != scenario.KindPriority {
		t.Fatalf("workloads = %+v, want one priority workload", spec.Workloads)
	}
}

// Quality on the request appends the ratio columns; off leaves the
// spec (and therefore every cell key) unchanged.
func TestSpecQualityMetrics(t *testing.T) {
	names := metricNames(t, protocol.SweepRequest{Quality: true})
	for _, want := range []string{"ratio_tour", "ratio_dcdt"} {
		if !names[want] {
			t.Errorf("quality spec lacks metric %q (have %v)", want, names)
		}
	}
	names = metricNames(t, protocol.SweepRequest{})
	if names["ratio_tour"] || names["ratio_dcdt"] {
		t.Error("default spec reports quality ratios")
	}
}

func TestWorkloadsRejectsUnknownKind(t *testing.T) {
	if _, err := Spec(protocol.SweepRequest{Workloads: "vip"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// A scenario document's VIP population must reach the spec's VIP
// axis — without it, priority workloads over VIP scenarios would
// silently simulate an all-normal field.
func TestSpecScenarioVIPs(t *testing.T) {
	doc := []byte(`{
		"name": "vip-spec",
		"field": {"placement": "uniform"},
		"targets": {"count": 10, "vips": 3, "vip_weight": 4},
		"fleet": {"mules": [{"speed": 2}, {"speed": 2}]},
		"horizon": 20000
	}`)
	spec, err := Spec(protocol.SweepRequest{Scenario: doc})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.VIPs) != 1 || spec.VIPs[0] != 3 {
		t.Fatalf("VIPs axis = %v, want [3]", spec.VIPs)
	}
	if len(spec.VIPWeights) != 1 || spec.VIPWeights[0] != 4 {
		t.Fatalf("VIPWeights axis = %v, want [4]", spec.VIPWeights)
	}
	// VIP-free scenarios keep the default axis (and their cell keys).
	spec, err = Spec(protocol.SweepRequest{Preset: "paper51"})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.VIPs) != 0 {
		t.Fatalf("VIP-free preset set the axis: %v", spec.VIPs)
	}
}
