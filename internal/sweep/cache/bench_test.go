package cache_test

import (
	"context"
	"sync"
	"testing"

	"tctp/internal/sweep"
	"tctp/internal/sweep/cache"
)

// benchSpec is testSpec with realistic per-cell work (longer horizon,
// more replications). The warm path's cost is independent of both, so
// this is where the cache's leverage shows.
func benchSpec() sweep.Spec {
	s := testSpec()
	s.Horizons = []float64{40_000}
	s.Seeds = 5
	return s
}

// runCachedOnce executes one cached run of the spec against the store,
// discarding output.
func runCachedOnce(b *testing.B, spec sweep.Spec, store *cache.Store) {
	b.Helper()
	j, err := sweep.Plan(spec)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := j.RunCached(context.Background(), sweep.CacheRunOpts{Store: store}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCacheHitSweep measures a fully warm sweep: every cell
// served from the memory layer, no simulation at all — just key
// derivation, state restore, and aggregation. Compare against
// BenchmarkCacheHitSweepCold (the identical sweep computed from
// scratch) for the cache's speedup; the warm path is expected to be
// ≥50× faster.
func BenchmarkCacheHitSweep(b *testing.B) {
	spec := benchSpec()
	store, err := cache.New(cache.Options{})
	if err != nil {
		b.Fatal(err)
	}
	runCachedOnce(b, spec, store) // warm every cell
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runCachedOnce(b, spec, store)
	}
}

// BenchmarkCacheHitSweepCold is the baseline twin: the same sweep
// against an empty store each iteration, so every cell simulates.
func BenchmarkCacheHitSweepCold(b *testing.B) {
	spec := benchSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		store, err := cache.New(cache.Options{})
		if err != nil {
			b.Fatal(err)
		}
		runCachedOnce(b, spec, store)
	}
}

// BenchmarkCacheDedup measures single-flight collapse: 8 identical
// sweeps submitted concurrently against one empty store. Each cell is
// computed once and joined 7 times, so the iteration costs ~1× the
// compute of BenchmarkCacheDedupNoShare, which runs the same 8 sweeps
// without a shared store.
func BenchmarkCacheDedup(b *testing.B) {
	const submitters = 8
	spec := benchSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		store, err := cache.New(cache.Options{})
		if err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				runCachedOnce(b, spec, store)
			}()
		}
		wg.Wait()
	}
}

// BenchmarkCacheDedupNoShare is the baseline twin: the same 8 sweeps,
// each against its own empty store — 8× the computation.
func BenchmarkCacheDedupNoShare(b *testing.B) {
	const submitters = 8
	spec := benchSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for g := 0; g < submitters; g++ {
			store, err := cache.New(cache.Options{})
			if err != nil {
				b.Fatal(err)
			}
			runCachedOnce(b, spec, store)
		}
	}
}
