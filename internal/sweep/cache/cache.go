// Package cache is a content-addressed store for sweep cell fold
// states: the piece that turns the sweep engine's per-cell keys
// (sweep.Job.CellKey) into reuse across runs, across overlapping
// sweeps, and across concurrent submissions.
//
// Store layers three mechanisms behind the one-method
// sweep.CellStore contract:
//
//   - An in-memory LRU bounded by a byte budget, so a long-lived
//     process (tctp-server) keeps its hottest cells resident without
//     growing without bound.
//
//   - An optional disk layer: every computed state is also written
//     under its key in a directory, atomically (temp file + rename),
//     and read back on a memory miss — warm results survive restarts.
//     A disk entry whose payload does not round-trip, or whose
//     embedded key does not match its file name, is refused and the
//     cell recomputed: a corrupt cache may cost time, never
//     correctness. An optional byte budget (Options.DirMaxBytes)
//     bounds the directory with an oldest-first sweep, on open and
//     after writes, so a long-lived server's disk layer stops growing
//     without bound.
//
//   - Single-flight deduplication: concurrent Folds of the same key
//     elect one leader to run the compute; the others wait and share
//     its result (or its error). N identical sweeps submitted at once
//     cost one computation, not N.
//
// Because the stored value is the cell's bit-exact fold state — the
// same record the checkpoint layer persists — a sweep served from
// this cache emits output byte-identical to a cold run; that
// guarantee is pinned by this package's tests.
package cache

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"tctp/internal/sweep/protocol"
)

// Options configures a Store.
type Options struct {
	// MaxBytes bounds the in-memory layer (approximately: the summed
	// JSON size of the resident states). 0 means DefaultMaxBytes.
	MaxBytes int64
	// Dir, when non-empty, enables the disk layer in that directory
	// (created if absent).
	Dir string
	// DirMaxBytes, when > 0, bounds the disk layer: whenever the
	// summed size of the cached entries exceeds it, the oldest files
	// (by modification time) are deleted until the budget holds again.
	// The sweep runs on open — so a restarted server trims a directory
	// that grew under a previous, larger budget — and after any write
	// that pushes the total over. 0 means unbounded, the historical
	// behavior.
	DirMaxBytes int64
	// Gate, when > 0, bounds how many computes run at once across all
	// Folds of this store. Hits, disk hits, and single-flight joins
	// are never gated — only the leaders actually simulating. This is
	// the server's backpressure point: many concurrent sweeps share
	// one compute pool instead of oversubscribing the machine.
	Gate int
}

// DefaultMaxBytes is the in-memory budget when Options.MaxBytes is 0.
const DefaultMaxBytes = 256 << 20

// Stats is a snapshot of the store's counters.
type Stats struct {
	// Hits served from memory; DiskHits served from the disk layer
	// (and promoted to memory).
	Hits     int64 `json:"hits"`
	DiskHits int64 `json:"disk_hits"`
	// Misses counts Folds that ran the compute.
	Misses int64 `json:"misses"`
	// Joins counts Folds that waited on another caller's in-flight
	// compute of the same key.
	Joins int64 `json:"joins"`
	// Evictions counts entries dropped to keep memory under budget;
	// DiskEvictions counts files deleted to keep the disk layer under
	// Options.DirMaxBytes.
	Evictions     int64 `json:"evictions"`
	DiskEvictions int64 `json:"disk_evictions"`
	// Corrupt counts disk entries refused (unreadable, malformed, or
	// key-mismatched); each refusal forces a recompute.
	Corrupt int64 `json:"corrupt"`
	// DiskErrors counts failed disk writes (non-fatal: the state is
	// still served and kept in memory).
	DiskErrors int64 `json:"disk_errors"`
	// InFlight is the number of computes running right now; Entries
	// and Bytes describe the current memory layer.
	InFlight int   `json:"in_flight"`
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
}

type entry struct {
	key   string
	state protocol.FoldState
	size  int64
	elem  *list.Element
}

type flight struct {
	done  chan struct{}
	state protocol.FoldState
	err   error
}

// Store is a concurrency-safe, content-addressed cell cache
// implementing sweep.CellStore. Callers must treat returned states as
// immutable — they are shared across every Fold of the same key.
type Store struct {
	dir         string
	dirMaxBytes int64
	gate        chan struct{}

	// gcMu serializes disk sweeps; only one scan-and-delete runs at a
	// time even when many leaders finish writes together.
	gcMu sync.Mutex

	mu        sync.Mutex
	maxBytes  int64
	bytes     int64
	diskBytes int64      // approximate; corrected by every sweep's rescan
	lru       *list.List // front = most recently used; values are *entry
	entries   map[string]*entry
	inflight  map[string]*flight
	stats     Stats
}

// New opens a store. The disk directory, when configured, is created
// if needed.
func New(opts Options) (*Store, error) {
	if opts.MaxBytes < 0 {
		return nil, fmt.Errorf("cache: negative MaxBytes %d", opts.MaxBytes)
	}
	if opts.MaxBytes == 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
	}
	if opts.DirMaxBytes < 0 {
		return nil, fmt.Errorf("cache: negative DirMaxBytes %d", opts.DirMaxBytes)
	}
	s := &Store{
		dir:         opts.Dir,
		dirMaxBytes: opts.DirMaxBytes,
		maxBytes:    opts.MaxBytes,
		lru:         list.New(),
		entries:     make(map[string]*entry),
		inflight:    make(map[string]*flight),
	}
	if opts.Gate > 0 {
		s.gate = make(chan struct{}, opts.Gate)
	}
	// Trim a directory inherited from a run with a larger (or no)
	// budget before serving from it.
	s.gcDisk()
	return s, nil
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.bytes
	st.MaxBytes = s.maxBytes
	return st
}

// Fold implements sweep.CellStore: return the state stored under key,
// computing (and storing) it on a miss. Concurrent Folds of one key
// run compute once; the waiters share the leader's state or error.
// Errors are never cached — the next Fold of the key retries.
func (s *Store) Fold(key string, compute func() (protocol.FoldState, error)) (protocol.FoldState, protocol.Source, error) {
	if !protocol.ValidKey(key) {
		return protocol.FoldState{}, "", fmt.Errorf("cache: malformed cell key %q", key)
	}

	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.lru.MoveToFront(e.elem)
		s.stats.Hits++
		st := e.state
		s.mu.Unlock()
		return st, protocol.SourceHit, nil
	}
	if f, ok := s.inflight[key]; ok {
		s.stats.Joins++
		s.mu.Unlock()
		<-f.done
		if f.err != nil {
			return protocol.FoldState{}, protocol.SourceJoined, f.err
		}
		return f.state, protocol.SourceJoined, nil
	}
	// This caller leads. Register the flight before unlocking so every
	// later caller joins instead of recomputing.
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.mu.Unlock()

	st, src, err := s.lead(key, compute)
	s.mu.Lock()
	delete(s.inflight, key)
	f.state, f.err = st, err
	s.mu.Unlock()
	close(f.done)
	return st, src, err
}

// Probe returns the state cached under key, if any, without computing,
// joining an in-flight computation, or registering a single-flight.
// Memory hits refresh the LRU; disk hits are promoted to memory. This
// is the dispatch scheduler's cache-aware admission check: a warm cell
// is served here and never enters the lease queue.
func (s *Store) Probe(key string) (protocol.FoldState, bool) {
	if !protocol.ValidKey(key) {
		return protocol.FoldState{}, false
	}
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.lru.MoveToFront(e.elem)
		s.stats.Hits++
		st := e.state
		s.mu.Unlock()
		return st, true
	}
	s.mu.Unlock()
	if st, ok := s.readDisk(key); ok {
		s.insert(key, st)
		s.mu.Lock()
		s.stats.DiskHits++
		s.mu.Unlock()
		return st, true
	}
	return protocol.FoldState{}, false
}

// Put publishes a state under its key to both layers — how remotely
// computed cells (validated by the scheduler before this call) enter
// the cache. A malformed key is dropped; the disk layer, as always,
// accelerates rather than gates.
func (s *Store) Put(key string, st protocol.FoldState) {
	if !protocol.ValidKey(key) {
		return
	}
	s.insert(key, st)
	s.writeDisk(key, st)
}

// lead resolves a key on behalf of all its current callers: disk
// first, then the gated compute.
func (s *Store) lead(key string, compute func() (protocol.FoldState, error)) (protocol.FoldState, protocol.Source, error) {
	if st, ok := s.readDisk(key); ok {
		s.insert(key, st)
		s.mu.Lock()
		s.stats.DiskHits++
		s.mu.Unlock()
		return st, protocol.SourceHit, nil
	}

	if s.gate != nil {
		s.gate <- struct{}{}
	}
	s.mu.Lock()
	s.stats.Misses++
	s.stats.InFlight++
	s.mu.Unlock()
	st, err := compute()
	s.mu.Lock()
	s.stats.InFlight--
	s.mu.Unlock()
	if s.gate != nil {
		<-s.gate
	}
	if err != nil {
		return protocol.FoldState{}, protocol.SourceComputed, err
	}
	s.insert(key, st)
	s.writeDisk(key, st)
	return st, protocol.SourceComputed, nil
}

// insert adds a state to the memory layer and evicts from the cold end
// until the budget holds again. The newest entry itself is never
// evicted, so a single state larger than the whole budget still
// caches (alone).
func (s *Store) insert(key string, st protocol.FoldState) {
	size := stateSize(st)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		return
	}
	e := &entry{key: key, state: st, size: size}
	e.elem = s.lru.PushFront(e)
	s.entries[key] = e
	s.bytes += size
	for s.bytes > s.maxBytes && s.lru.Len() > 1 {
		back := s.lru.Back()
		victim := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.entries, victim.key)
		s.bytes -= victim.size
		s.stats.Evictions++
	}
}

// stateSize approximates a state's memory footprint by its JSON
// encoding — the same bytes the disk layer stores.
func stateSize(st protocol.FoldState) int64 {
	b, err := json.Marshal(st)
	if err != nil {
		// Cannot happen for a FoldState; be conservative if it does.
		return 1 << 10
	}
	return int64(len(b))
}

// diskEntry is one cached cell on disk. The key is embedded so a
// renamed, truncated, or cross-copied file cannot impersonate another
// cell.
type diskEntry struct {
	Key   string             `json:"key"`
	State protocol.FoldState `json:"state"`
}

// diskPath maps a key to its file. Keys are validated hex, so the
// trimmed key is a safe file name.
func (s *Store) diskPath(key string) string {
	return filepath.Join(s.dir, strings.TrimPrefix(key, "sha256:")+".json")
}

// readDisk loads a key from the disk layer. Any defect — unreadable
// file, malformed JSON, embedded key not matching — refuses the entry
// (counting it corrupt) rather than serving it.
func (s *Store) readDisk(key string) (protocol.FoldState, bool) {
	if s.dir == "" {
		return protocol.FoldState{}, false
	}
	b, err := os.ReadFile(s.diskPath(key))
	if err != nil {
		if !os.IsNotExist(err) {
			s.mu.Lock()
			s.stats.Corrupt++
			s.mu.Unlock()
		}
		return protocol.FoldState{}, false
	}
	var de diskEntry
	if err := json.Unmarshal(b, &de); err != nil || de.Key != key {
		s.mu.Lock()
		s.stats.Corrupt++
		s.mu.Unlock()
		return protocol.FoldState{}, false
	}
	return de.State, true
}

// writeDisk persists a computed state, atomically: a unique temp file
// in the same directory, then rename. Failures are counted and
// swallowed — the disk layer accelerates, it does not gate.
func (s *Store) writeDisk(key string, st protocol.FoldState) {
	if s.dir == "" {
		return
	}
	err := func() error {
		b, err := json.Marshal(diskEntry{Key: key, State: st})
		if err != nil {
			return err
		}
		tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
		if err != nil {
			return err
		}
		defer os.Remove(tmp.Name())
		if _, err := tmp.Write(b); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		if err := os.Rename(tmp.Name(), s.diskPath(key)); err != nil {
			return err
		}
		s.mu.Lock()
		s.diskBytes += int64(len(b))
		over := s.dirMaxBytes > 0 && s.diskBytes > s.dirMaxBytes
		s.mu.Unlock()
		if over {
			s.gcDisk()
		}
		return nil
	}()
	if err != nil {
		s.mu.Lock()
		s.stats.DiskErrors++
		s.mu.Unlock()
	}
}

// gcDisk enforces Options.DirMaxBytes: rescan the disk layer and
// delete entries oldest-first (by modification time, ties broken by
// name for determinism) until the budget holds. The newest entry is
// never deleted, mirroring the memory layer — a single state larger
// than the whole budget still persists (alone). The rescan also
// corrects the approximate byte counter that write-time checks use,
// so files deleted behind the store's back only delay a sweep, never
// break it.
func (s *Store) gcDisk() {
	if s.dir == "" || s.dirMaxBytes <= 0 {
		return
	}
	s.gcMu.Lock()
	defer s.gcMu.Unlock()

	ents, err := os.ReadDir(s.dir)
	if err != nil {
		s.mu.Lock()
		s.stats.DiskErrors++
		s.mu.Unlock()
		return
	}
	type file struct {
		name string
		size int64
		mod  int64
	}
	var files []file
	var total int64
	for _, de := range ents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue // leave temp files to their writers
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with a concurrent delete
		}
		files = append(files, file{de.Name(), info.Size(), info.ModTime().UnixNano()})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].mod != files[j].mod {
			return files[i].mod < files[j].mod
		}
		return files[i].name < files[j].name
	})
	var evicted int64
	for i := 0; i < len(files)-1 && total > s.dirMaxBytes; i++ {
		if err := os.Remove(filepath.Join(s.dir, files[i].name)); err != nil {
			continue
		}
		total -= files[i].size
		evicted++
	}
	s.mu.Lock()
	s.diskBytes = total
	s.stats.DiskEvictions += evicted
	s.mu.Unlock()
}
