package cache_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"tctp/internal/baseline"
	"tctp/internal/core"
	"tctp/internal/patrol"
	"tctp/internal/stats"
	"tctp/internal/sweep"
	"tctp/internal/sweep/cache"
	"tctp/internal/sweep/protocol"
)

// testSpec mirrors the sweep package's tiny fixture: two algorithms ×
// two target counts against the real simulator.
func testSpec() sweep.Spec {
	return sweep.Spec{
		Name: "cache-test",
		Algorithms: []sweep.Variant{
			sweep.Algo("btctp", patrol.Planned(&core.BTCTP{})),
			sweep.Algo("random", patrol.Online(&baseline.Random{})),
		},
		Targets:  []int{6, 8},
		Mules:    []int{2},
		Horizons: []float64{4_000},
		Metrics:  []sweep.Metric{sweep.AvgDCDT(), sweep.AvgSD(), sweep.MaxInterval()},
		Seeds:    3,
	}
}

func runCachedBytes(t *testing.T, spec sweep.Spec, store *cache.Store) (csv, jsonl []byte) {
	t.Helper()
	j, err := sweep.Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	var cb, jb bytes.Buffer
	if _, err := j.RunCached(context.Background(), sweep.CacheRunOpts{
		Store: store,
		Sinks: []sweep.Sink{sweep.CSV(&cb), sweep.JSONL(&jb)},
	}); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), jb.Bytes()
}

// TestGoldenByteIdentity is the package's headline guarantee: a sweep
// served from the cache — whether cold, warm from memory, or warm from
// a disk layer in a fresh process — emits CSV and JSONL byte-identical
// to an uncached run.
func TestGoldenByteIdentity(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*sweep.Spec)
	}{
		{"plain", nil},
		// Adaptive early stopping freezes some cells below the ceiling;
		// their stopped states must survive the cache like any other.
		{"adaptive", func(s *sweep.Spec) {
			s.Seeds = 6
			s.Adaptive = &sweep.Adaptive{Metric: "avg_dcdt_s", MinReps: 2, RelCI: 0.9}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := testSpec()
			if tc.mutate != nil {
				tc.mutate(&spec)
			}

			var wantCSV, wantJSONL bytes.Buffer
			if _, err := sweep.Run(context.Background(), spec,
				sweep.CSV(&wantCSV), sweep.JSONL(&wantJSONL)); err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			store, err := cache.New(cache.Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}

			check := func(phase string, csv, jsonl []byte) {
				t.Helper()
				if !bytes.Equal(wantCSV.Bytes(), csv) {
					t.Fatalf("%s: CSV differs from uncached run", phase)
				}
				if !bytes.Equal(wantJSONL.Bytes(), jsonl) {
					t.Fatalf("%s: JSONL differs from uncached run", phase)
				}
			}

			csv, jsonl := runCachedBytes(t, spec, store)
			check("cold", csv, jsonl)
			if st := store.Stats(); st.Misses != 4 || st.Hits != 0 {
				t.Fatalf("cold stats: %+v", st)
			}

			csv, jsonl = runCachedBytes(t, spec, store)
			check("warm memory", csv, jsonl)
			if st := store.Stats(); st.Hits != 4 {
				t.Fatalf("warm stats: %+v", st)
			}

			// A fresh store over the same directory simulates a restart:
			// everything comes back from disk, nothing recomputes.
			fresh, err := cache.New(cache.Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			csv, jsonl = runCachedBytes(t, spec, fresh)
			check("warm disk", csv, jsonl)
			if st := fresh.Stats(); st.DiskHits != 4 || st.Misses != 0 {
				t.Fatalf("disk stats: %+v", st)
			}
		})
	}
}

// fakeKey fabricates a syntactically valid cell key from an integer.
func fakeKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("fake-%d", i)))
	return "sha256:" + hex.EncodeToString(sum[:])
}

// fakeState fabricates a distinguishable fold state of roughly sz
// JSON bytes.
func fakeState(i, sz int) protocol.FoldState {
	st := protocol.FoldState{Next: i}
	for len(st.Scalars) < sz/60+1 {
		st.Scalars = append(st.Scalars, stats.AccumulatorState{N: i, Mean: uint64(i)})
	}
	return st
}

// TestSingleFlight hammers one store from many goroutines under -race:
// every key must be computed exactly once, and every caller — leader,
// joiner, or late arrival — must observe the identical state.
func TestSingleFlight(t *testing.T) {
	store, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const keys, goroutines = 8, 16

	var computes [keys]atomic.Int64
	var start, wg sync.WaitGroup
	start.Add(1)
	errs := make(chan error, keys*goroutines)
	for g := 0; g < goroutines; g++ {
		for k := 0; k < keys; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				start.Wait()
				st, src, err := store.Fold(fakeKey(k), func() (protocol.FoldState, error) {
					computes[k].Add(1)
					return fakeState(k, 100), nil
				})
				if err != nil {
					errs <- err
					return
				}
				if st.Next != k || st.Scalars[0].N != k {
					errs <- fmt.Errorf("key %d: wrong state %+v via %s", k, st, src)
				}
			}(k)
		}
	}
	start.Done()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for k := range computes {
		if n := computes[k].Load(); n != 1 {
			t.Errorf("key %d computed %d times, want exactly 1", k, n)
		}
	}
	st := store.Stats()
	if st.Misses != keys {
		t.Errorf("misses %d, want %d", st.Misses, keys)
	}
	if st.Hits+st.Joins != keys*(goroutines-1) {
		t.Errorf("hits %d + joins %d, want %d non-leaders", st.Hits, st.Joins, keys*(goroutines-1))
	}
}

// TestSingleFlightSharesError: a failed compute reaches its joiners
// too, and is not cached — the next Fold retries.
func TestSingleFlightSharesError(t *testing.T) {
	store, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := fakeKey(0)
	boom := fmt.Errorf("simulated failure")

	release := make(chan struct{})
	proceed := make(chan struct{})
	go func() {
		store.Fold(key, func() (protocol.FoldState, error) {
			close(release) // leader is inside compute
			<-proceed      // block until the joiner has attached
			return protocol.FoldState{}, boom
		})
	}()
	<-release
	// The joiner registers while the leader blocks in compute.
	done := make(chan error, 1)
	go func() {
		_, _, err := store.Fold(key, func() (protocol.FoldState, error) {
			return protocol.FoldState{}, fmt.Errorf("joiner must not compute")
		})
		done <- err
	}()
	// Wait for the joiner to attach, then let the leader fail.
	for store.Stats().Joins == 0 {
		runtime.Gosched()
	}
	close(proceed)
	if err := <-done; err == nil || err.Error() != boom.Error() {
		t.Fatalf("joiner got %v, want the leader's error", err)
	}

	// The failure was not cached: a retry recomputes and can succeed.
	st, src, err := store.Fold(key, func() (protocol.FoldState, error) {
		return fakeState(0, 50), nil
	})
	if err != nil || src != protocol.SourceComputed || st.Next != 0 {
		t.Fatalf("retry after error: %v %s %+v", err, src, st)
	}
}

// TestEvictionUnderBudget: the memory layer stays within its byte
// budget by evicting cold entries, and an evicted key recomputes.
func TestEvictionUnderBudget(t *testing.T) {
	const budget = 2 << 10
	store, err := cache.New(cache.Options{MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if _, _, err := store.Fold(fakeKey(i), func() (protocol.FoldState, error) {
			return fakeState(i, 200), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := store.Stats()
	if st.Bytes > budget {
		t.Fatalf("resident %d bytes exceeds budget %d", st.Bytes, budget)
	}
	if st.Evictions == 0 || st.Entries >= n {
		t.Fatalf("no eviction happened: %+v", st)
	}

	// The first key is long evicted; folding it again recomputes.
	recomputed := false
	if _, _, err := store.Fold(fakeKey(0), func() (protocol.FoldState, error) {
		recomputed = true
		return fakeState(0, 200), nil
	}); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Fatal("evicted key served from memory")
	}

	// The most recent key is still resident.
	if _, src, err := store.Fold(fakeKey(n-1), func() (protocol.FoldState, error) {
		t.Fatal("hot key recomputed")
		return protocol.FoldState{}, nil
	}); err != nil || src != protocol.SourceHit {
		t.Fatalf("hot key: %v %s", err, src)
	}
}

// TestDiskCorruptionRefusal: a disk entry that is garbage, or that
// carries another cell's key, is refused and recomputed — never
// served.
func TestDiskCorruptionRefusal(t *testing.T) {
	dir := t.TempDir()
	store, err := cache.New(cache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := store.Fold(fakeKey(i), func() (protocol.FoldState, error) {
			return fakeState(i, 80), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	path := func(i int) string {
		return filepath.Join(dir, fakeKey(i)[len("sha256:"):]+".json")
	}

	// Garbage in key 0's file; impersonation at key 2 — its path holds
	// key 1's well-formed document, caught only by the embedded key.
	if err := os.WriteFile(path(0), []byte("{definitely not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path(2), b, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh, err := cache.New(cache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []int{0, 2} {
		recomputed := false
		st, _, err := fresh.Fold(fakeKey(target), func() (protocol.FoldState, error) {
			recomputed = true
			return fakeState(target, 80), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !recomputed {
			t.Fatalf("corrupt disk entry for key %d was served", target)
		}
		if st.Next != target {
			t.Fatalf("key %d resolved to state %+v", target, st)
		}
	}
	if st := fresh.Stats(); st.Corrupt != 2 {
		t.Fatalf("corrupt count %d, want 2 (stats %+v)", st.Corrupt, st)
	}
}

// TestComputeGate: with Gate g, at most g computes run concurrently,
// regardless of how many Folds are outstanding.
func TestComputeGate(t *testing.T) {
	const gate = 2
	store, err := cache.New(cache.Options{Gate: gate})
	if err != nil {
		t.Fatal(err)
	}
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			store.Fold(fakeKey(i), func() (protocol.FoldState, error) {
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				for j := 0; j < 1000; j++ { // widen the overlap window
					_ = j
				}
				cur.Add(-1)
				return fakeState(i, 50), nil
			})
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > gate {
		t.Fatalf("%d computes ran concurrently, gate is %d", p, gate)
	}
}

// TestMalformedKeyRefused: Fold refuses a key that is not a
// well-formed sha256 cell key before it can become a file name.
func TestMalformedKeyRefused(t *testing.T) {
	store, err := cache.New(cache.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "sha256:zz", "md5:abc", "../../etc/passwd"} {
		if _, _, err := store.Fold(key, func() (protocol.FoldState, error) {
			t.Fatalf("compute ran for malformed key %q", key)
			return protocol.FoldState{}, nil
		}); err == nil {
			t.Errorf("malformed key %q accepted", key)
		}
	}
}

// TestProbePut covers the dispatch-facing face of the store: Probe
// never computes and hits both layers; Put publishes to both layers;
// malformed keys are inert for both.
func TestProbePut(t *testing.T) {
	dir := t.TempDir()
	store, err := cache.New(cache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	key, want := fakeKey(1), fakeState(1, 100)
	if _, ok := store.Probe(key); ok {
		t.Fatalf("Probe hit an empty store")
	}
	store.Put(key, want)
	got, ok := store.Probe(key)
	if !ok || got.Next != want.Next {
		t.Fatalf("Probe after Put: ok=%v state=%+v", ok, got)
	}

	// Put reached the disk layer: a fresh store over the same directory
	// probes warm, and the hit promotes to its memory layer.
	fresh, err := cache.New(cache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Probe(key); !ok {
		t.Fatalf("Put did not persist to disk")
	}
	if st := fresh.Stats(); st.DiskHits != 1 || st.Entries != 1 {
		t.Fatalf("fresh stats after disk probe: %+v", st)
	}
	if _, ok := fresh.Probe(key); !ok {
		t.Fatalf("promoted entry lost")
	}
	if st := fresh.Stats(); st.Hits != 1 {
		t.Fatalf("second probe missed memory: %+v", st)
	}

	// A probed state folds without computing — Probe and Fold agree on
	// what "cached" means.
	if _, src, err := store.Fold(key, func() (protocol.FoldState, error) {
		t.Fatalf("compute ran for a Put key")
		return protocol.FoldState{}, nil
	}); err != nil || src != protocol.SourceHit {
		t.Fatalf("Fold after Put: src=%q err=%v", src, err)
	}

	store.Put("not-a-key", want)
	if _, ok := store.Probe("not-a-key"); ok {
		t.Fatalf("malformed key round-tripped")
	}
}
