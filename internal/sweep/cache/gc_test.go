package cache_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tctp/internal/sweep/cache"
	"tctp/internal/sweep/protocol"
)

// keyFile maps a cell key to its on-disk file name, mirroring the
// store's layout (validated hex key, "sha256:" prefix trimmed).
func keyFile(dir, key string) string {
	return filepath.Join(dir, strings.TrimPrefix(key, "sha256:")+".json")
}

// fillDisk folds n fabricated keys through a budget-free store over
// dir, then stamps each file with a strictly increasing modification
// time (key i older than key i+1) so eviction order is unambiguous.
func fillDisk(t *testing.T, dir string, n int) {
	t.Helper()
	store, err := cache.New(cache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	for i := 0; i < n; i++ {
		st := fakeState(i, 400)
		if _, _, err := store.Fold(fakeKey(i), func() (protocol.FoldState, error) {
			return st, nil
		}); err != nil {
			t.Fatal(err)
		}
		when := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(keyFile(dir, fakeKey(i)), when, when); err != nil {
			t.Fatal(err)
		}
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

// TestDiskGCOnOpen: a store opened with a byte budget over a directory
// that outgrew it (e.g. written by a previous run with a larger
// budget) trims the oldest entries until the budget holds, and the
// survivors still serve disk hits.
func TestDiskGCOnOpen(t *testing.T) {
	dir := t.TempDir()
	const n = 5
	fillDisk(t, dir, n)

	// Budget exactly the three newest files: the sweep must delete
	// keys 0 and 1 and stop.
	var budget int64
	for i := 2; i < n; i++ {
		budget += fileSize(t, keyFile(dir, fakeKey(i)))
	}
	store, err := cache.New(cache.Options{Dir: dir, DirMaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.DiskEvictions != 2 {
		t.Fatalf("open-time evictions %d, want 2 (stats %+v)", st.DiskEvictions, st)
	}
	for i := 0; i < 2; i++ {
		if _, err := os.Stat(keyFile(dir, fakeKey(i))); !os.IsNotExist(err) {
			t.Errorf("evicted key %d still on disk (err %v)", i, err)
		}
	}
	for i := 2; i < n; i++ {
		if _, err := os.Stat(keyFile(dir, fakeKey(i))); err != nil {
			t.Errorf("surviving key %d: %v", i, err)
		}
	}

	// Survivors serve from disk; evicted keys recompute.
	if _, src, err := store.Fold(fakeKey(n-1), func() (protocol.FoldState, error) {
		t.Fatal("survivor recomputed")
		return protocol.FoldState{}, nil
	}); err != nil || src != protocol.SourceHit {
		t.Fatalf("survivor fold: src %q err %v", src, err)
	}
	if _, src, err := store.Fold(fakeKey(0), func() (protocol.FoldState, error) {
		return fakeState(0, 400), nil
	}); err != nil || src != protocol.SourceComputed {
		t.Fatalf("evicted fold: src %q err %v", src, err)
	}
}

// TestDiskGCAfterWrite: a write that pushes the directory past the
// budget triggers a sweep that deletes the oldest entry, never the one
// just written.
func TestDiskGCAfterWrite(t *testing.T) {
	dir := t.TempDir()
	fillDisk(t, dir, 1)
	size0 := fileSize(t, keyFile(dir, fakeKey(0)))

	// Room for one entry plus change, but not two.
	store, err := cache.New(cache.Options{Dir: dir, DirMaxBytes: size0 + size0/2})
	if err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.DiskEvictions != 0 {
		t.Fatalf("under-budget open evicted: %+v", st)
	}
	if _, _, err := store.Fold(fakeKey(1), func() (protocol.FoldState, error) {
		return fakeState(1, 400), nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(keyFile(dir, fakeKey(0))); !os.IsNotExist(err) {
		t.Errorf("oldest entry survived the write-time sweep (err %v)", err)
	}
	if _, err := os.Stat(keyFile(dir, fakeKey(1))); err != nil {
		t.Errorf("freshly written entry evicted: %v", err)
	}
	if st := store.Stats(); st.DiskEvictions != 1 {
		t.Fatalf("write-time evictions %d, want 1 (stats %+v)", st.DiskEvictions, st)
	}
}

// TestDiskGCKeepsNewestEntry: like the memory layer, a single entry
// larger than the whole budget still persists alone — the budget
// bounds accumulation, it does not refuse service.
func TestDiskGCKeepsNewestEntry(t *testing.T) {
	dir := t.TempDir()
	store, err := cache.New(cache.Options{Dir: dir, DirMaxBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Fold(fakeKey(0), func() (protocol.FoldState, error) {
		return fakeState(0, 400), nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(keyFile(dir, fakeKey(0))); err != nil {
		t.Errorf("sole oversized entry evicted: %v", err)
	}
	if st := store.Stats(); st.DiskEvictions != 0 {
		t.Fatalf("sole entry counted as eviction: %+v", st)
	}
}

// TestDiskGCIgnoresTempFiles: in-flight temp files from concurrent
// writers are not GC victims.
func TestDiskGCIgnoresTempFiles(t *testing.T) {
	dir := t.TempDir()
	fillDisk(t, dir, 2)
	tmp := filepath.Join(dir, "put-123.tmp")
	if err := os.WriteFile(tmp, make([]byte, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-24 * time.Hour)
	if err := os.Chtimes(tmp, old, old); err != nil {
		t.Fatal(err)
	}

	budget := fileSize(t, keyFile(dir, fakeKey(1)))
	if _, err := cache.New(cache.Options{Dir: dir, DirMaxBytes: budget}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Errorf("temp file deleted by GC: %v", err)
	}
	if _, err := os.Stat(keyFile(dir, fakeKey(0))); !os.IsNotExist(err) {
		t.Errorf("oldest entry survived despite budget (err %v)", err)
	}
}

func TestNegativeDirMaxBytesRefused(t *testing.T) {
	if _, err := cache.New(cache.Options{Dir: t.TempDir(), DirMaxBytes: -1}); err == nil {
		t.Fatal("negative DirMaxBytes accepted")
	}
}
