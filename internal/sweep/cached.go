package sweep

// The cache-backed execution path. RunCached is Job.Run with a
// content-addressed memo in front of every cell: each cell's fold is
// obtained by folding through a CellStore keyed by Job.CellKey — a
// store hit restores the cell's bit-exact fold state instead of
// simulating its replications, a miss computes the cell as a
// single-cell job (exactly the replications, seeds, and fold order an
// uncached run would use) and publishes the resulting state, and a
// concurrent computation of the same cell elsewhere is joined rather
// than repeated (single-flight, when the store provides it). Because
// the stored state is the same bit-exact record the checkpoint layer
// persists, and emission goes through the same path Merge uses, a run
// served entirely from the cache produces sink output byte-identical
// to a cold run.

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"tctp/internal/sweep/protocol"
)

// CellStore is the cache contract RunCached folds through. Fold
// returns the fold state stored under key, computing and storing it
// via compute on a miss. Implementations are expected to be safe for
// concurrent use and SHOULD single-flight concurrent Folds of the same
// key — internal/sweep/cache.Store does both; a trivial
// non-deduplicating map also satisfies the interface.
//
// The returned Source says how the state was obtained (computed,
// cache hit, or joined onto another caller's in-flight computation).
// When compute fails, Fold must return its error and must not store
// anything under the key.
type CellStore interface {
	Fold(key string, compute func() (protocol.FoldState, error)) (protocol.FoldState, protocol.Source, error)
}

// CellUpdate is the progress record handed to CacheRunOpts.OnCell
// after each cell of a cached run resolves.
type CellUpdate struct {
	// Index is the plan-global cell index; Key the cell's
	// content-addressed cache key.
	Index  int
	Key    string
	Source protocol.Source
	// Result is the cell's finalized aggregate.
	Result *CellResult
}

// ResolveCell is one cell handed to CacheRunOpts.Resolve: its identity
// plus the closures a resolver needs to compute it locally or to
// validate a state obtained elsewhere.
type ResolveCell struct {
	// Index is the plan-global cell index; Key the cell's
	// content-addressed cache key.
	Index int
	Key   string
	// Compute runs the cell as a single-cell sub-job in this process
	// (the same closure a CellStore.Fold miss would run).
	Compute func() (protocol.FoldState, error)
	// Validate checks a fold state obtained outside this process (a
	// cache layer, a remote worker) against the job's spec: accumulator
	// shapes, replication counts, adaptive-stop consistency. Resolvers
	// that accept third-party states should validate before trusting
	// them — a refused state beats a poisoned aggregate.
	Validate func(*protocol.FoldState) error
}

// CacheRunOpts configures one Job.RunCached.
type CacheRunOpts struct {
	// Store is the cell cache (required unless Resolve is set).
	Store CellStore
	// Resolve, when non-nil, replaces Store.Fold as the per-cell
	// resolution: it receives each cell (with its compute and validate
	// closures) and returns the cell's fold state, how it was obtained,
	// and any error. This is the seam the dispatch scheduler plugs into
	// — probing the shared cache, leasing cold cells to remote workers,
	// and falling back however it chooses — while emission stays on the
	// engine's shared byte-identical path. The returned state is still
	// validated centrally, whatever the resolver did.
	Resolve func(ctx context.Context, cell ResolveCell) (protocol.FoldState, protocol.Source, error)
	// Parallel bounds how many cells are resolved concurrently
	// (default GOMAXPROCS). Cells that miss additionally parallelize
	// their replications over Spec.Workers inside the compute, so the
	// effective concurrency of an all-miss run is up to
	// Parallel × Workers; callers scheduling many jobs onto shared
	// hardware should gate the computes instead (see
	// cache.Store's compute gate).
	Parallel int
	// Sinks receive the job's cells in enumeration order once every
	// cell has resolved.
	Sinks []Sink
	// OnCell, when non-nil, is called once per cell as it resolves,
	// in completion order (not enumeration order), possibly from
	// several goroutines at once.
	OnCell func(CellUpdate)
}

// computeCell runs the job's i-th cell as a single-cell job — the
// same seeds, seed-ordered fold, and adaptive stop decisions the cell
// would see inside any larger run of the same spec (the shard-
// equivalence guarantee of the job API, narrowed to one cell) — and
// returns its final fold state.
func (j *Job) computeCell(ctx context.Context, i int) (protocol.FoldState, error) {
	sub := *j
	sub.defs = j.defs[i : i+1]
	sub.offset = j.offset + i
	p, err := sub.run(ctx, RunOpts{}, true)
	if err != nil {
		return protocol.FoldState{}, err
	}
	rec, ok := p.records[0]
	if !ok {
		return protocol.FoldState{}, fmt.Errorf("sweep: cell %v produced no fold record", j.defs[i].point)
	}
	return rec.FoldState, nil
}

// ComputeCell computes the job's i-th cell (job-local index) as a
// single-cell sub-job and returns its final fold state — the exported
// face of the compute path RunCached uses on a cache miss. It is what
// a remote worker runs for a leased cell: same seeds, same seed-ordered
// fold, same adaptive stop decisions as the cell would see inside any
// larger run of the same spec, so the returned state is bit-identical
// to the one a local run would hold and restores byte-identically
// through the shared emission path.
func (j *Job) ComputeCell(ctx context.Context, i int) (protocol.FoldState, error) {
	if i < 0 || i >= len(j.defs) {
		return protocol.FoldState{}, fmt.Errorf("sweep: cell %d outside [0,%d)", i, len(j.defs))
	}
	return j.computeCell(ctx, i)
}

// checkFinalState guards a fold state arriving from outside the
// process (a cache layer, a wire partial) before it is folded into
// output: the accumulator shapes must match the spec and the state
// must be a finished cell. The content-addressed key already pins all
// of this, so a violation means the store returned foreign or
// corrupted state — refusing it beats poisoning every downstream
// aggregate.
func (sp *Spec) checkFinalState(st *protocol.FoldState) error {
	if err := validateFoldState(st, sp); err != nil {
		return err
	}
	if st.Stopped && sp.Adaptive == nil {
		return fmt.Errorf("is adaptively stopped, spec has no adaptive rule")
	}
	if !st.Stopped && st.Next != sp.maxReps() {
		return fmt.Errorf("is incomplete: %d of %d replications folded", st.Next, sp.maxReps())
	}
	for i, s := range st.Scalars {
		if s.N != st.Next {
			return fmt.Errorf("scalar %d folded %d samples, counter says %d", i, s.N, st.Next)
		}
	}
	return nil
}

// RunCached executes the job with every cell folded through the
// store, then streams the cells to the sinks in enumeration order.
// The output is byte-identical to Job.Run of the same job at any mix
// of hits, misses, and joins — including a fully cold store (every
// cell computed) and a fully warm one (no simulation at all). Cells
// resolve concurrently (bounded by Parallel); on error the
// lowest-indexed failing cell wins, matching the engine's
// deterministic error selection.
func (j *Job) RunCached(ctx context.Context, opts CacheRunOpts) (*Result, error) {
	if opts.Store == nil && opts.Resolve == nil {
		return nil, fmt.Errorf("sweep: RunCached needs a Store or a Resolve hook")
	}
	keys, err := j.CellKeys()
	if err != nil {
		return nil, err
	}
	sp := &j.spec
	n := len(j.defs)
	par := opts.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}

	states := make([]protocol.FoldState, n)
	var (
		mu       sync.Mutex
		runErr   error
		errIndex int
	)
	fail := func(i int, err error) {
		mu.Lock()
		if runErr == nil || i < errIndex {
			runErr, errIndex = err, i
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return runErr != nil
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if failed() {
					continue
				}
				compute := func() (protocol.FoldState, error) {
					return j.computeCell(ctx, i)
				}
				var (
					st  protocol.FoldState
					src protocol.Source
					err error
				)
				if opts.Resolve != nil {
					st, src, err = opts.Resolve(ctx, ResolveCell{
						Index:    j.offset + i,
						Key:      keys[i],
						Compute:  compute,
						Validate: func(s *protocol.FoldState) error { return sp.checkFinalState(s) },
					})
				} else {
					st, src, err = opts.Store.Fold(keys[i], compute)
				}
				if err == nil {
					if verr := sp.checkFinalState(&st); verr != nil {
						err = fmt.Errorf("sweep: cached state %s %v", keys[i], verr)
					}
				}
				if err != nil {
					fail(i, err)
					continue
				}
				states[i] = st
				if opts.OnCell != nil {
					c := sp.newCollector()
					c.restore(checkpointRecord{Cell: i, FoldState: st})
					opts.OnCell(CellUpdate{
						Index:  j.offset + i,
						Key:    keys[i],
						Source: src,
						Result: finalizeCell(sp, j.offset+i, j.defs[i].point, c),
					})
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	if runErr != nil {
		return nil, runErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return j.emitRecords(func(i int) checkpointRecord {
		return checkpointRecord{Cell: i, FoldState: states[i]}
	}, opts.Sinks)
}
