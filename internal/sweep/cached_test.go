package sweep

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"tctp/internal/scenario"
	"tctp/internal/sweep/protocol"
	"tctp/internal/wsn"
)

// mapStore is the simplest possible CellStore: a locked map, no
// single-flight, no eviction. It exists to test RunCached's contract
// independently of the real cache package.
type mapStore struct {
	mu sync.Mutex
	m  map[string]protocol.FoldState
}

func newMapStore() *mapStore { return &mapStore{m: make(map[string]protocol.FoldState)} }

func (s *mapStore) Fold(key string, compute func() (protocol.FoldState, error)) (protocol.FoldState, protocol.Source, error) {
	s.mu.Lock()
	st, ok := s.m[key]
	s.mu.Unlock()
	if ok {
		return st, protocol.SourceHit, nil
	}
	st, err := compute()
	if err != nil {
		return protocol.FoldState{}, protocol.SourceComputed, err
	}
	s.mu.Lock()
	s.m[key] = st
	s.mu.Unlock()
	return st, protocol.SourceComputed, nil
}

func sinkBytes(t *testing.T, run func(sinks ...Sink) error) (csv, jsonl []byte) {
	t.Helper()
	var cb, jb bytes.Buffer
	if err := run(CSV(&cb), JSONL(&jb)); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), jb.Bytes()
}

// TestRunCachedByteIdentity is the core cache guarantee: a cold cached
// run, a fully warm cached run, and a plain uncached Run all produce
// byte-identical CSV and JSONL.
func TestRunCachedByteIdentity(t *testing.T) {
	ctx := context.Background()
	spec := tinySpec()

	plainCSV, plainJSONL := sinkBytes(t, func(sinks ...Sink) error {
		_, err := Run(ctx, spec, sinks...)
		return err
	})

	store := newMapStore()
	cached := func(wantSource protocol.Source) (csv, jsonl []byte) {
		j, err := Plan(spec)
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		sources := map[protocol.Source]int{}
		csv, jsonl = sinkBytes(t, func(sinks ...Sink) error {
			_, err := j.RunCached(ctx, CacheRunOpts{
				Store: store,
				Sinks: sinks,
				OnCell: func(u CellUpdate) {
					mu.Lock()
					sources[u.Source]++
					mu.Unlock()
					if u.Result == nil || !protocol.ValidKey(u.Key) {
						t.Errorf("cell %d: bad update %+v", u.Index, u)
					}
				},
			})
			return err
		})
		if sources[wantSource] != j.Cells() || len(sources) != 1 {
			t.Fatalf("want %d cells all %q, got %v", j.Cells(), wantSource, sources)
		}
		return csv, jsonl
	}

	coldCSV, coldJSONL := cached(protocol.SourceComputed)
	warmCSV, warmJSONL := cached(protocol.SourceHit)

	if !bytes.Equal(plainCSV, coldCSV) || !bytes.Equal(plainJSONL, coldJSONL) {
		t.Fatal("cold cached run differs from plain Run")
	}
	if !bytes.Equal(plainCSV, warmCSV) || !bytes.Equal(plainJSONL, warmJSONL) {
		t.Fatal("warm cached run differs from plain Run")
	}
}

// TestRunCachedCrossSweepSharing: a different grid that crosses through
// some of the same cells hits the cache for exactly those cells —
// cell identity is independent of the enumerating sweep.
func TestRunCachedCrossSweepSharing(t *testing.T) {
	ctx := context.Background()
	store := newMapStore()

	first := tinySpec() // targets {6, 8} × 2 algorithms
	j1, err := Plan(first)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j1.RunCached(ctx, CacheRunOpts{Store: store}); err != nil {
		t.Fatal(err)
	}

	second := tinySpec()
	second.Name = "other-sweep" // must not affect cell identity
	second.Targets = []int{8, 10}
	j2, err := Plan(second)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	sources := map[protocol.Source]int{}
	if _, err := j2.RunCached(ctx, CacheRunOpts{
		Store: store,
		OnCell: func(u CellUpdate) {
			mu.Lock()
			sources[u.Source]++
			mu.Unlock()
		},
	}); err != nil {
		t.Fatal(err)
	}
	// targets=8 under each of the two algorithms overlaps; targets=10
	// is new.
	if sources[protocol.SourceHit] != 2 || sources[protocol.SourceComputed] != 2 {
		t.Fatalf("want 2 hits + 2 computed, got %v", sources)
	}
}

// TestCellKeySensitivity pins what is — and is not — part of a cell's
// content-addressed identity.
func TestCellKeySensitivity(t *testing.T) {
	key := func(mutate func(*Spec)) string {
		spec := tinySpec()
		if mutate != nil {
			mutate(&spec)
		}
		j, err := Plan(spec)
		if err != nil {
			t.Fatal(err)
		}
		k, err := j.CellKey(0)
		if err != nil {
			t.Fatal(err)
		}
		if !protocol.ValidKey(k) {
			t.Fatalf("malformed key %q", k)
		}
		return k
	}

	base := key(nil)
	if key(nil) != base {
		t.Fatal("cell key is not deterministic")
	}

	// Identity must ignore the grid around the cell and the sweep's
	// name/worker knobs...
	same := map[string]func(*Spec){
		"sweep name":    func(s *Spec) { s.Name = "renamed" },
		"extra cells":   func(s *Spec) { s.Targets = []int{6, 8, 10, 12} },
		"worker count":  func(s *Spec) { s.Workers = 3 },
		"progress hook": func(s *Spec) { s.Progress = func(Progress) {} },
	}
	for what, mutate := range same {
		if key(mutate) != base {
			t.Errorf("%s changed the cell key; it must not", what)
		}
	}

	// ...and react to everything that changes the cell's numbers.
	differ := map[string]func(*Spec){
		"point":       func(s *Spec) { s.Targets = []int{7, 8} },
		"seeds":       func(s *Spec) { s.Seeds = 4 },
		"base seed":   func(s *Spec) { s.BaseSeed = 99 },
		"rep shards":  func(s *Spec) { s.RepShards = 2 },
		"metric set":  func(s *Spec) { s.Metrics = s.Metrics[:2] },
		"adaptive":    func(s *Spec) { s.Adaptive = &Adaptive{Metric: "avg_dcdt_s", MinReps: 2, RelCI: 0.5} },
		"cfg digest":  func(s *Spec) { s.ConfigDigest = "deadbeef" },
		"workload on": func(s *Spec) { s.Workloads = []scenario.Workload{scenario.Packets()} },
	}
	for what, mutate := range differ {
		if key(mutate) == base {
			t.Errorf("%s did not change the cell key; it must", what)
		}
	}

	// Two workloads sharing a name but differing in configuration must
	// hash apart — the name alone is not the identity.
	wl := func(gen float64) func(*Spec) {
		return func(s *Spec) {
			s.Workloads = []scenario.Workload{{Name: "w", Data: wsn.Config{
				GenInterval: gen, BufferCap: 50, Deadline: 3600,
			}}}
		}
	}
	if key(wl(60)) == key(wl(30)) {
		t.Error("workload config change behind an unchanged name did not change the cell key")
	}
}

// TestRunCachedRejectsForeignState: a store returning state whose shape
// does not match the spec (wrong accumulator count, short fold) is
// refused with an error naming the key, not folded into output.
func TestRunCachedRejectsForeignState(t *testing.T) {
	ctx := context.Background()
	spec := tinySpec()

	// Warm a store, then replay it against a spec with fewer metrics:
	// every key differs, so nothing matches — but force a collision by
	// rewriting the second job's state under its own keys with the
	// first job's (3-metric) states.
	store := newMapStore()
	j1, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j1.RunCached(ctx, CacheRunOpts{Store: store}); err != nil {
		t.Fatal(err)
	}

	narrow := tinySpec()
	narrow.Metrics = narrow.Metrics[:1]
	j2, err := Plan(narrow)
	if err != nil {
		t.Fatal(err)
	}
	keys2, err := j2.CellKeys()
	if err != nil {
		t.Fatal(err)
	}
	keys1, err := j1.CellKeys()
	if err != nil {
		t.Fatal(err)
	}
	store.mu.Lock()
	for i := range keys2 {
		store.m[keys2[i]] = store.m[keys1[i]] // corrupt: foreign shape under the right key
	}
	store.mu.Unlock()

	_, err = j2.RunCached(ctx, CacheRunOpts{Store: store, Parallel: 1})
	if err == nil {
		t.Fatal("foreign cached state was accepted")
	}
	if !strings.Contains(err.Error(), keys2[0]) || !strings.Contains(err.Error(), "scalar") {
		t.Fatalf("error should name the key and the shape problem, got: %v", err)
	}
}

// TestPartialWireRoundTrip: shard partials survive the protocol wire
// form losslessly — merging round-tripped partials is byte-identical
// to merging the originals.
func TestPartialWireRoundTrip(t *testing.T) {
	ctx := context.Background()
	spec := tinySpec()
	j, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}

	var direct, wired []*Partial
	for i := 0; i < 2; i++ {
		sh, err := j.Shard(i, 2)
		if err != nil {
			t.Fatal(err)
		}
		p, err := sh.Run(ctx, RunOpts{})
		if err != nil {
			t.Fatal(err)
		}
		direct = append(direct, p)

		w := p.Wire()
		if w.Shard != i || w.Shards != 2 || w.Fingerprint != j.Fingerprint() {
			t.Fatalf("wire header %+v", w)
		}
		for k := 1; k < len(w.Records); k++ {
			if w.Records[k-1].Cell >= w.Records[k].Cell {
				t.Fatal("wire records not in ascending cell order")
			}
		}
		rt, err := PartialFromWire(w)
		if err != nil {
			t.Fatal(err)
		}
		wired = append(wired, rt)
	}

	a, aj := sinkBytes(t, func(sinks ...Sink) error {
		_, err := Merge(spec, direct, sinks...)
		return err
	})
	b, bj := sinkBytes(t, func(sinks ...Sink) error {
		_, err := Merge(spec, wired, sinks...)
		return err
	})
	if !bytes.Equal(a, b) || !bytes.Equal(aj, bj) {
		t.Fatal("merge of wire round-tripped partials differs from merge of originals")
	}

	// A wire document repeating a cell is structural corruption.
	w := direct[0].Wire()
	w.Records = append(w.Records, w.Records[0])
	if _, err := PartialFromWire(w); err == nil || !strings.Contains(err.Error(), "repeats cell") {
		t.Fatalf("duplicate wire cell accepted: %v", err)
	}
}

// TestRunCachedResolveHook pins the dispatch seam: a run resolved
// through CacheRunOpts.Resolve — computing via the cell's own Compute
// closure, as a remote worker would — is byte-identical to a plain
// Run, the hook sees every cell exactly once with a valid key, and a
// resolver returning a tampered state is refused by the central
// validation.
func TestRunCachedResolveHook(t *testing.T) {
	ctx := context.Background()
	spec := tinySpec()

	plainCSV, plainJSONL := sinkBytes(t, func(sinks ...Sink) error {
		_, err := Run(ctx, spec, sinks...)
		return err
	})

	j, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := map[string]int{}
	csv, jsonl := sinkBytes(t, func(sinks ...Sink) error {
		_, err := j.RunCached(ctx, CacheRunOpts{
			Resolve: func(ctx context.Context, cell ResolveCell) (protocol.FoldState, protocol.Source, error) {
				if !protocol.ValidKey(cell.Key) {
					t.Errorf("cell %d: malformed key %q", cell.Index, cell.Key)
				}
				st, err := cell.Compute()
				if err != nil {
					return st, "", err
				}
				if verr := cell.Validate(&st); verr != nil {
					t.Errorf("cell %d: own compute fails validation: %v", cell.Index, verr)
				}
				mu.Lock()
				seen[cell.Key]++
				mu.Unlock()
				return st, protocol.Source("worker:test"), nil
			},
			Sinks: sinks,
		})
		return err
	})
	if !bytes.Equal(csv, plainCSV) || !bytes.Equal(jsonl, plainJSONL) {
		t.Fatal("resolve-hook run differs from plain Run")
	}
	if len(seen) != j.Cells() {
		t.Fatalf("resolver saw %d distinct cells, want %d", len(seen), j.Cells())
	}
	for key, n := range seen {
		if n != 1 {
			t.Fatalf("cell %s resolved %d times", key, n)
		}
	}

	// A resolver that hands back a truncated state must be refused by
	// the run's central validation, naming the cell's key.
	j2, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := j2.CellKeys()
	if err != nil {
		t.Fatal(err)
	}
	_, err = j2.RunCached(ctx, CacheRunOpts{
		Parallel: 1,
		Resolve: func(ctx context.Context, cell ResolveCell) (protocol.FoldState, protocol.Source, error) {
			st, err := cell.Compute()
			if err != nil {
				return st, "", err
			}
			st.Scalars = st.Scalars[:1] // tamper: drop metrics
			return st, protocol.Source("worker:evil"), nil
		},
	})
	if err == nil {
		t.Fatal("tampered resolver state was accepted")
	}
	if !strings.Contains(err.Error(), keys[0]) {
		t.Fatalf("error should name the cell key, got: %v", err)
	}
}
