package sweep

// Content-addressed cell identity. The plan fingerprint (checkpoint.go)
// pins a whole grid; the cell key pins ONE cell, independently of the
// grid that enumerated it, so overlapping sweeps agree on the keys of
// their shared cells. That independence is what turns the fingerprint
// machinery into a cache: a cell computed for one sweep is a hit for
// every other sweep whose axes happen to cross through the same point
// under the same replication protocol.

import (
	"encoding/json"
	"fmt"

	"tctp/internal/sweep/protocol"
)

// cellIdentity builds the content-addressed identity of one cell: the
// point, the full fleet and workload configurations behind the point's
// names, the replication protocol, the metric schema, and the config
// digest. It must be called on a defaults-applied spec.
func (s *Spec) cellIdentity(d cellDef) (protocol.CellIdentity, error) {
	id := protocol.CellIdentity{
		Seeds:    s.Seeds,
		BaseSeed: s.BaseSeed,
		Metrics:  make([]string, len(s.Metrics)),
		Digest:   s.ConfigDigest,
	}
	if s.RepShards > 1 {
		id.RepShards = s.RepShards
	}
	var err error
	if id.Point, err = json.Marshal(d.point); err != nil {
		return id, fmt.Errorf("sweep: cell identity: %w", err)
	}
	// The point carries only the fleet/workload names; the full
	// configurations join the identity so e.g. two workloads that share
	// a name but differ in burst size hash apart. Zero values (the
	// Mules × Speeds cross, the "no workload" axis default) are
	// omitted, matching their omission from the enumeration.
	if d.fleet.Size() > 0 || d.fleet.Name != "" {
		if id.Fleet, err = json.Marshal(d.fleet); err != nil {
			return id, fmt.Errorf("sweep: cell identity: %w", err)
		}
	}
	if d.workload.Enabled() {
		if id.Workload, err = json.Marshal(d.workload); err != nil {
			return id, fmt.Errorf("sweep: cell identity: %w", err)
		}
	}
	if d.failure.Enabled() {
		if id.Failure, err = json.Marshal(d.failure); err != nil {
			return id, fmt.Errorf("sweep: cell identity: %w", err)
		}
	}
	if s.Adaptive != nil {
		if id.Adaptive, err = json.Marshal(s.Adaptive); err != nil {
			return id, fmt.Errorf("sweep: cell identity: %w", err)
		}
	}
	for i, m := range s.Metrics {
		id.Metrics[i] = m.Name
	}
	for _, vm := range s.Vectors {
		id.Vectors = append(id.Vectors, protocol.VectorID{Name: vm.Name, Len: vm.Len})
	}
	return id, nil
}

// CellKey returns the content-addressed cache key of the job's i-th
// cell (job-local index). Keys depend only on the cell itself and the
// replication protocol — never on the sweep's name, the worker count,
// or the rest of the grid — so any two jobs computing the same cell
// produce the same key.
func (j *Job) CellKey(i int) (string, error) {
	if i < 0 || i >= len(j.defs) {
		return "", fmt.Errorf("sweep: cell %d outside [0,%d)", i, len(j.defs))
	}
	id, err := j.spec.cellIdentity(j.defs[i])
	if err != nil {
		return "", err
	}
	return id.Key()
}

// CellKeys returns the content-addressed keys of all the job's cells
// in enumeration order.
func (j *Job) CellKeys() ([]string, error) {
	out := make([]string, len(j.defs))
	for i := range j.defs {
		k, err := j.CellKey(i)
		if err != nil {
			return nil, err
		}
		out[i] = k
	}
	return out, nil
}
