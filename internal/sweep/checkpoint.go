package sweep

// Checkpoint/resume support. A checkpointed sweep appends one JSONL
// record per completed (in-order) replication: the owning cell, the
// next-replication counter, and the bit-exact state of every Welford
// accumulator (see stats.AccumulatorState). Only the seed-ordered
// folded prefix is ever persisted — out-of-order replications parked
// in a collector's pending set are re-executed on resume — so a
// resumed sweep folds exactly the samples an uninterrupted one would,
// in the same order, and produces byte-identical sink output.
//
// The first line is a header carrying a fingerprint of the spec's
// structural identity (cells, metrics, replication protocol). Resume
// refuses a checkpoint whose fingerprint does not match the offered
// spec: continuing a sweep under a different grid would silently mix
// incompatible aggregates.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"

	"tctp/internal/scenario"
	"tctp/internal/stats"
	"tctp/internal/sweep/protocol"
)

const checkpointVersion = 1

// checkpointHeader is the first line of every checkpoint file. The
// shard fields locate the file's cells inside the full plan; files
// written before sharding existed omit them, and readCheckpoint
// normalizes that to the unsharded coordinates (shard 0 of 1 covering
// the whole plan), so legacy checkpoints keep resuming.
type checkpointHeader struct {
	Version     int    `json:"checkpoint"`
	Sweep       string `json:"sweep"`
	Fingerprint string `json:"fingerprint"`
	Cells       int    `json:"cells"`
	MaxReps     int    `json:"max_reps"`
	Shard       int    `json:"shard,omitempty"`
	Shards      int    `json:"shards,omitempty"`
	Offset      int    `json:"offset,omitempty"`
	TotalCells  int    `json:"total_cells,omitempty"`
}

// checkpointRecord is one cell's fold state after an in-order fold
// advance. Later records for the same cell supersede earlier ones.
// The state body is the transport-neutral protocol.FoldState — the
// embedding keeps the JSONL encoding identical to the pre-protocol
// format (cell, next, stopped, reason, scalars, vectors) while letting
// the cache and the wire share the exact same record type.
type checkpointRecord struct {
	Cell int `json:"cell"`
	protocol.FoldState
}

// fingerprint hashes the spec's structural identity: everything
// declarative that determines which replications run and how they fold
// — the protocol, every cell's point, the full workload and fleet
// configurations (points carry only their names), and the caller's
// ConfigDigest. Behavior hooks (Configure, Options, Scenario, variant
// constructors) cannot be hashed; callers whose hooks close over
// external configuration must fold that configuration into
// Spec.ConfigDigest, as cmd/tctp-sweep does for -preset/-scenario.
func (s *Spec) fingerprint(defs []cellDef) (string, error) {
	type vectorID struct {
		Name string `json:"name"`
		Len  int    `json:"len"`
	}
	id := struct {
		Name      string              `json:"name"`
		Seeds     int                 `json:"seeds"`
		BaseSeed  uint64              `json:"base_seed"`
		Adaptive  *Adaptive           `json:"adaptive,omitempty"`
		Metrics   []string            `json:"metrics"`
		Vectors   []vectorID          `json:"vectors,omitempty"`
		Workloads []scenario.Workload `json:"workloads,omitempty"`
		Fleets    []scenario.Fleet    `json:"fleets,omitempty"`
		Digest    string              `json:"digest,omitempty"`
		Points    []Point             `json:"points"`
	}{
		Name:      s.Name,
		Seeds:     s.Seeds,
		BaseSeed:  s.BaseSeed,
		Adaptive:  s.Adaptive,
		Metrics:   make([]string, len(s.Metrics)),
		Workloads: s.Workloads,
		Fleets:    s.Fleets,
		Digest:    s.ConfigDigest,
		Points:    make([]Point, len(defs)),
	}
	for i, m := range s.Metrics {
		id.Metrics[i] = m.Name
	}
	for _, vm := range s.Vectors {
		id.Vectors = append(id.Vectors, vectorID{Name: vm.Name, Len: vm.Len})
	}
	for i, d := range defs {
		id.Points[i] = d.point
	}
	b, err := json.Marshal(id)
	if err != nil {
		return "", fmt.Errorf("sweep: fingerprint: %w", err)
	}
	sum := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// checkpointWriter appends records to the checkpoint file. Each Encode
// lands as a single write of one complete line, so a crash can at
// worst truncate the final line — which the loader tolerates (and
// Resume truncates away before appending). The writer has its own
// lock: records are snapshotted under the engine lock but encoded and
// written outside it, so workers do not serialize on checkpoint I/O.
// Out-of-order writes are harmless — the loader keeps each cell's
// furthest record, and every record is a self-contained prefix state.
type checkpointWriter struct {
	mu  sync.Mutex
	f   *os.File
	enc *json.Encoder
}

func createCheckpoint(path string, hdr checkpointHeader) (*checkpointWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: create checkpoint: %w", err)
	}
	w := &checkpointWriter{f: f, enc: json.NewEncoder(f)}
	if err := w.enc.Encode(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: checkpoint header: %w", err)
	}
	return w, nil
}

// appendCheckpoint reopens a loaded checkpoint for writing, first
// truncating it to validLen — the end of its last valid line — so a
// crash's partial final line is not merged with the next record.
func appendCheckpoint(path string, validLen int64) (*checkpointWriter, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open checkpoint: %w", err)
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: trim checkpoint: %w", err)
	}
	return &checkpointWriter{f: f, enc: json.NewEncoder(f)}, nil
}

// snapshotRecord copies one cell's current fold state. Called under
// the engine lock; the copy is what write encodes outside it.
func snapshotRecord(cell int, c *collector) *checkpointRecord {
	rec := &checkpointRecord{
		Cell: cell,
		FoldState: protocol.FoldState{
			Next:    c.next,
			Stopped: c.stopReason != "",
			Reason:  c.stopReason,
			Scalars: make([]stats.AccumulatorState, len(c.scalars)),
		},
	}
	for i := range c.scalars {
		rec.Scalars[i] = c.scalars[i].State()
	}
	if len(c.vectors) > 0 {
		rec.Vectors = make([][]stats.AccumulatorState, len(c.vectors))
		for i, accs := range c.vectors {
			rec.Vectors[i] = make([]stats.AccumulatorState, len(accs))
			for k := range accs {
				rec.Vectors[i][k] = accs[k].State()
			}
		}
	}
	return rec
}

// write persists a snapshotted record.
func (w *checkpointWriter) write(rec *checkpointRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.enc.Encode(rec)
}

// Close is idempotent: runSpec closes explicitly on success to surface
// the error, and once more via defer on every other path.
func (w *checkpointWriter) Close() error {
	if w == nil || w.f == nil {
		return nil
	}
	f := w.f
	w.f = nil
	return f.Close()
}

// readCheckpoint parses a checkpoint file without reference to a spec:
// the normalized header, each cell's furthest recorded state (records
// may land slightly out of order — the writer runs outside the engine
// lock — and every record is a self-contained prefix, so the largest
// counter wins), and the byte length of the valid content, which
// Resume truncates to before appending. A truncated final line (the
// signature of a mid-write crash) is ignored; any other malformed or
// internally inconsistent content is a hard error — resuming from or
// merging corrupted state would poison every downstream aggregate.
// Spec conformance (fingerprint, shard coordinates, metric shapes) is
// the caller's job: loadCheckpoint for Resume, Merge for partials.
func readCheckpoint(path string) (checkpointHeader, map[int]checkpointRecord, int64, error) {
	var hdr checkpointHeader
	raw, err := os.ReadFile(path)
	if err != nil {
		return hdr, nil, 0, fmt.Errorf("sweep: open checkpoint: %w", err)
	}
	content := string(raw)
	lines := strings.Split(strings.TrimSuffix(content, "\n"), "\n")
	if !strings.HasSuffix(content, "\n") && len(lines) > 0 {
		// A torn write can cut a line anywhere — even leaving complete
		// JSON with only the newline missing — so an unterminated final
		// line is always discarded (Resume re-executes its replication)
		// rather than parsed; counting it into validLen would make the
		// truncate-then-append corrupt the file.
		if len(lines) == 1 {
			return hdr, nil, 0, fmt.Errorf("sweep: checkpoint %s: truncated header", path)
		}
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 || lines[0] == "" {
		return hdr, nil, 0, fmt.Errorf("sweep: checkpoint %s is empty", path)
	}

	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		return hdr, nil, 0, fmt.Errorf("sweep: checkpoint %s: malformed header: %w", path, err)
	}
	if hdr.Version != checkpointVersion {
		return hdr, nil, 0, fmt.Errorf("sweep: checkpoint %s: unsupported version %d (want %d)",
			path, hdr.Version, checkpointVersion)
	}
	if hdr.Shards == 0 {
		// Pre-sharding file: the whole plan in one piece.
		hdr.Shard, hdr.Shards, hdr.Offset, hdr.TotalCells = 0, 1, 0, hdr.Cells
	}
	if hdr.Shard < 0 || hdr.Shard >= hdr.Shards || hdr.Offset < 0 ||
		hdr.Offset+hdr.Cells > hdr.TotalCells {
		return hdr, nil, 0, fmt.Errorf("sweep: checkpoint %s: inconsistent shard geometry %d/%d cells %d..%d of %d",
			path, hdr.Shard, hdr.Shards, hdr.Offset, hdr.Offset+hdr.Cells, hdr.TotalCells)
	}

	validLen := int64(len(lines[0]) + 1)
	out := make(map[int]checkpointRecord)
	for i, line := range lines[1:] {
		lineNo := i + 2
		var rec checkpointRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return hdr, nil, 0, fmt.Errorf("sweep: checkpoint %s: line %d: corrupt record: %w",
				path, lineNo, err)
		}
		if err := checkRecordShape(&rec, &hdr); err != nil {
			return hdr, nil, 0, fmt.Errorf("sweep: checkpoint %s: line %d: %w", path, lineNo, err)
		}
		validLen += int64(len(line) + 1)
		if prev, ok := out[rec.Cell]; !ok || rec.Next > prev.Next {
			out[rec.Cell] = rec
		}
	}
	return hdr, out, validLen, nil
}

// checkRecordShape enforces the invariants a record must satisfy
// against its own header, spec unseen: cell and counter ranges, and
// agreement between the counter and every scalar accumulator's sample
// count.
func checkRecordShape(rec *checkpointRecord, hdr *checkpointHeader) error {
	if rec.Cell < 0 || rec.Cell >= hdr.Cells {
		return fmt.Errorf("cell %d outside [0,%d)", rec.Cell, hdr.Cells)
	}
	if rec.Next < 1 || rec.Next > hdr.MaxReps {
		return fmt.Errorf("cell %d has %d folded replications (max %d)",
			rec.Cell, rec.Next, hdr.MaxReps)
	}
	for i, s := range rec.Scalars {
		if s.N != rec.Next {
			return fmt.Errorf("cell %d scalar %d folded %d samples, counter says %d",
				rec.Cell, i, s.N, rec.Next)
		}
	}
	return nil
}

// loadCheckpoint reads and validates a checkpoint for resuming the
// given job: the header must carry the job's plan fingerprint and
// shard coordinates, and every record must match the spec's metric
// shapes.
func loadCheckpoint(path string, j *Job) (map[int]checkpointRecord, int64, error) {
	hdr, records, validLen, err := readCheckpoint(path)
	if err != nil {
		return nil, 0, err
	}
	sp := &j.spec
	if hdr.Fingerprint != j.fp {
		return nil, 0, fmt.Errorf(
			"sweep: checkpoint %s was written for a different sweep spec (fingerprint %s, spec %s): refusing to resume",
			path, hdr.Fingerprint, j.fp)
	}
	if hdr.Shard != j.shard || hdr.Shards != j.shards ||
		hdr.Offset != j.offset || hdr.TotalCells != j.total {
		return nil, 0, fmt.Errorf(
			"sweep: checkpoint %s belongs to shard %d/%d (cells %d..%d of %d), this job is shard %d/%d (cells %d..%d of %d): refusing to resume",
			path, hdr.Shard, hdr.Shards, hdr.Offset, hdr.Offset+hdr.Cells, hdr.TotalCells,
			j.shard, j.shards, j.offset, j.offset+len(j.defs), j.total)
	}
	if hdr.Cells != len(j.defs) || hdr.MaxReps != sp.maxReps() {
		return nil, 0, fmt.Errorf("sweep: checkpoint %s: %d cells × %d reps, spec has %d × %d",
			path, hdr.Cells, hdr.MaxReps, len(j.defs), sp.maxReps())
	}
	for _, rec := range records {
		if err := validateRecord(&rec, sp); err != nil {
			return nil, 0, fmt.Errorf("sweep: checkpoint %s: %w", path, err)
		}
	}
	return records, validLen, nil
}

// validateRecord checks a record's accumulator shapes against the
// spec's metrics; range and counter invariants are already enforced by
// checkRecordShape at parse time.
func validateRecord(rec *checkpointRecord, sp *Spec) error {
	if err := validateFoldState(&rec.FoldState, sp); err != nil {
		return fmt.Errorf("cell %d %w", rec.Cell, err)
	}
	return nil
}

// validateFoldState checks a bare fold state's accumulator shapes
// against the spec's metrics. It is the guard shared by checkpoint
// records (which add a cell index) and cache entries (which are keyed
// by content instead): a state of the wrong shape would corrupt every
// aggregate folded downstream of it.
func validateFoldState(st *protocol.FoldState, sp *Spec) error {
	if len(st.Scalars) != len(sp.Metrics) {
		return fmt.Errorf("carries %d scalar accumulators, spec has %d metrics",
			len(st.Scalars), len(sp.Metrics))
	}
	if len(sp.Vectors) == 0 {
		if len(st.Vectors) != 0 {
			return fmt.Errorf("carries vector state, spec has no vector metrics")
		}
		return nil
	}
	if len(st.Vectors) != len(sp.Vectors) {
		return fmt.Errorf("carries %d vector accumulators, spec has %d",
			len(st.Vectors), len(sp.Vectors))
	}
	for i, accs := range st.Vectors {
		if len(accs) != sp.Vectors[i].Len {
			return fmt.Errorf("vector %d has %d positions, spec declares %d",
				i, len(accs), sp.Vectors[i].Len)
		}
	}
	return nil
}
