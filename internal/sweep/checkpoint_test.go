package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"tctp/internal/baseline"
	"tctp/internal/core"
	"tctp/internal/field"
	"tctp/internal/patrol"
	"tctp/internal/scenario"
	"tctp/internal/xrand"
)

// quantizedSD is a steady-state SD metric rounded below its
// floating-point noise floor: exactly 0 every seed for the planned
// algorithms, noisy for Random — the test bed for adaptive stopping.
func quantizedSD() Metric {
	return Metric{Name: "steady_sd", Fn: func(e Env) float64 {
		return math.Round(e.Result.Recorder.AvgSDAfter(e.Warm())*1e6) / 1e6
	}}
}

// ckptSpec is the checkpoint workload: multiple cells, scalar and
// vector metrics, enough replications that a mid-flight kill leaves
// every cell partially folded.
func ckptSpec() Spec {
	return Spec{
		Name: "ckpt",
		Algorithms: []Variant{
			Algo("btctp", patrol.Planned(&core.BTCTP{})),
			Algo("random", patrol.Online(&baseline.Random{})),
		},
		Targets:  []int{6, 8},
		Mules:    []int{2},
		Horizons: []float64{4_000},
		Metrics:  []Metric{AvgDCDT(), AvgSD(), MaxInterval(), quantizedSD()},
		Vectors:  []VectorMetric{DCDTCurve(8)},
		Seeds:    6,
	}
}

// counted wraps a spec's metrics so the first metric's evaluations are
// counted: one evaluation per executed replication. The metric names —
// and therefore the checkpoint fingerprint — are unchanged.
func counted(spec Spec, n *atomic.Int64) Spec {
	inner := spec.Metrics[0].Fn
	spec.Metrics[0].Fn = func(e Env) float64 {
		n.Add(1)
		return inner(e)
	}
	return spec
}

func runToBytes(t *testing.T, run func(sinks ...Sink) (*Result, error)) (string, *Result) {
	t.Helper()
	var buf bytes.Buffer
	res, err := run(CSV(&buf), JSONL(&buf))
	if err != nil {
		t.Fatal(err)
	}
	return buf.String(), res
}

// TestKillAndResumeByteIdentical is the acceptance test of the
// checkpoint layer: a sweep killed mid-flight via context cancellation
// and resumed from its checkpoint produces byte-identical CSV and
// JSONL output to an uninterrupted run of the same spec — for the
// plain protocol and for adaptive replication.
func TestKillAndResumeByteIdentical(t *testing.T) {
	// Watching the quantized SD makes the btctp cells stop at MinReps,
	// so the resume also restores adaptively frozen cells.
	adaptive := ckptSpec()
	adaptive.Adaptive = &Adaptive{Metric: "steady_sd", RelCI: 0.05, MinReps: 3}
	for name, spec := range map[string]Spec{"plain": ckptSpec(), "adaptive": adaptive} {
		t.Run(name, func(t *testing.T) {
			want, wantRes := runToBytes(t, func(sinks ...Sink) (*Result, error) {
				return Run(context.Background(), spec, sinks...)
			})

			path := filepath.Join(t.TempDir(), "sweep.ckpt")
			ctx, cancel := context.WithCancel(context.Background())
			killed := spec
			killed.Progress = func(p Progress) {
				if p.RunsDone >= 4 {
					cancel() // kill mid-flight, most cells half-folded
				}
			}
			if _, err := RunCheckpointed(ctx, killed, path); err == nil ||
				!errors.Is(err, context.Canceled) {
				t.Fatalf("killed run returned %v, want context.Canceled", err)
			}

			var execs atomic.Int64
			got, gotRes := runToBytes(t, func(sinks ...Sink) (*Result, error) {
				return Resume(context.Background(), counted(spec, &execs), path, sinks...)
			})
			if got != want {
				t.Fatalf("resumed output differs from uninterrupted run:\n--- resumed ---\n%s--- want ---\n%s", got, want)
			}
			if gotRes.Runs != wantRes.Runs {
				t.Fatalf("resumed Runs = %d, uninterrupted = %d", gotRes.Runs, wantRes.Runs)
			}
			// The resume actually reused checkpointed work: it executed
			// fewer replications than the whole sweep holds.
			if n := execs.Load(); n == 0 || n >= int64(wantRes.Runs) {
				t.Fatalf("resume executed %d replications of %d total — checkpoint unused", n, wantRes.Runs)
			}
		})
	}
}

// A finished checkpoint resumes to identical output with zero
// replications re-executed — everything is restored state.
func TestResumeFinishedCheckpoint(t *testing.T) {
	spec := ckptSpec()
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	want, _ := runToBytes(t, func(sinks ...Sink) (*Result, error) {
		return RunCheckpointed(context.Background(), spec, path, sinks...)
	})
	var execs atomic.Int64
	got, _ := runToBytes(t, func(sinks ...Sink) (*Result, error) {
		return Resume(context.Background(), counted(spec, &execs), path, sinks...)
	})
	if got != want {
		t.Fatalf("finished-checkpoint resume diverged:\n%s\nvs\n%s", got, want)
	}
	if n := execs.Load(); n != 0 {
		t.Fatalf("finished-checkpoint resume re-executed %d replications", n)
	}
}

// Resuming under a structurally different spec must be refused: the
// fingerprint in the header pins cells, metrics, and protocol.
func TestResumeFingerprintMismatch(t *testing.T) {
	spec := ckptSpec()
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if _, err := RunCheckpointed(context.Background(), spec, path); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*Spec){
		"seeds":    func(s *Spec) { s.Seeds = 9 },
		"baseseed": func(s *Spec) { s.BaseSeed = 1 },
		"targets":  func(s *Spec) { s.Targets = []int{6, 9} },
		"metrics":  func(s *Spec) { s.Metrics = []Metric{AvgDCDT()} },
	} {
		other := ckptSpec()
		mutate(&other)
		_, err := Resume(context.Background(), other, path)
		if err == nil || !strings.Contains(err.Error(), "different sweep spec") {
			t.Fatalf("%s mutation: err = %v, want fingerprint refusal", name, err)
		}
	}
}

func TestResumeCorruptCheckpoint(t *testing.T) {
	spec := ckptSpec()
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ckpt")
	if _, err := RunCheckpointed(context.Background(), spec, path); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(pristine), "\n")
	if len(lines) < 4 {
		t.Fatalf("checkpoint too small to corrupt: %d lines", len(lines))
	}

	corrupt := func(t *testing.T, content, wantErr string) {
		t.Helper()
		p := filepath.Join(t.TempDir(), "bad.ckpt")
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Resume(context.Background(), spec, p)
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("corrupt resume: err = %v, want %q", err, wantErr)
		}
	}

	t.Run("garbage-record", func(t *testing.T) {
		mod := append([]string{}, lines...)
		mod[2] = "{not json at all\n"
		corrupt(t, strings.Join(mod, ""), "corrupt record")
	})
	t.Run("garbage-header", func(t *testing.T) {
		mod := append([]string{}, lines...)
		mod[0] = "###\n"
		corrupt(t, strings.Join(mod, ""), "malformed header")
	})
	t.Run("missing-file", func(t *testing.T) {
		_, err := Resume(context.Background(), spec, filepath.Join(dir, "absent.ckpt"))
		if err == nil || !strings.Contains(err.Error(), "open checkpoint") {
			t.Fatalf("missing checkpoint: err = %v", err)
		}
	})
	t.Run("inconsistent-counter", func(t *testing.T) {
		// A record whose scalar sample counts disagree with its own
		// next-replication counter is corruption, not a crash artifact.
		mod := append([]string{}, lines...)
		var rec checkpointRecord
		if err := json.Unmarshal([]byte(mod[1]), &rec); err != nil {
			t.Fatal(err)
		}
		rec.Scalars[0].N++
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		mod[1] = string(b) + "\n"
		corrupt(t, strings.Join(mod, ""), "counter says")
	})

	t.Run("truncated-final-line", func(t *testing.T) {
		// A half-written final record is the normal signature of a
		// crash: it is discarded, and the resume still matches the
		// uninterrupted output.
		var want bytes.Buffer
		if _, err := Run(context.Background(), spec, CSV(&want)); err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(t.TempDir(), "trunc.ckpt")
		whole := strings.Join(lines, "")
		if err := os.WriteFile(p, []byte(whole[:len(whole)-20]), 0o644); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if _, err := Resume(context.Background(), spec, p, CSV(&got)); err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Fatalf("truncated-checkpoint resume diverged:\n%s\nvs\n%s", got.String(), want.String())
		}
		// The resume truncated the partial line before appending, so
		// the file is well-formed again: a second resume must parse
		// every line (pre-fix, the first appended record was glued to
		// the partial line and poisoned the checkpoint).
		var again bytes.Buffer
		if _, err := Resume(context.Background(), spec, p, CSV(&again)); err != nil {
			t.Fatalf("checkpoint corrupted by resuming past a truncated line: %v", err)
		}
		if again.String() != want.String() {
			t.Fatalf("second resume diverged")
		}
	})

	t.Run("unterminated-valid-line", func(t *testing.T) {
		// A torn write can cut exactly at the final newline, leaving
		// complete JSON with no terminator. The line is discarded and
		// re-executed; crucially the truncate-before-append must not
		// count the phantom newline, or the file gains a NUL byte and
		// the next resume finds garbage.
		var want bytes.Buffer
		if _, err := Run(context.Background(), spec, CSV(&want)); err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(t.TempDir(), "unterm.ckpt")
		whole := strings.Join(lines, "")
		if err := os.WriteFile(p, []byte(strings.TrimSuffix(whole, "\n")), 0o644); err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			var got bytes.Buffer
			if _, err := Resume(context.Background(), spec, p, CSV(&got)); err != nil {
				t.Fatalf("pass %d: %v", pass, err)
			}
			if got.String() != want.String() {
				t.Fatalf("pass %d diverged", pass)
			}
		}
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.ContainsRune(b, 0) {
			t.Fatal("truncate extended the checkpoint with a NUL byte")
		}
	})

	t.Run("unterminated-header", func(t *testing.T) {
		corrupt(t, strings.TrimSuffix(lines[0], "\n"), "truncated header")
	})
}

// TestAdaptiveStopsEarly is the adaptive acceptance test: a
// zero-variance cell (B-TCTP's steady-state SD, quantized below its
// ~1e-13 floating-point noise floor, is exactly 0 every seed) stops at
// MinReps while a noisy cell (Random) runs to the cap, the CSV reps
// column reports the actual counts, and the stop reason is surfaced.
func TestAdaptiveStopsEarly(t *testing.T) {
	spec := Spec{
		Name: "adaptive",
		Algorithms: []Variant{
			Algo("btctp", patrol.Planned(&core.BTCTP{})),
			Algo("random", patrol.Online(&baseline.Random{})),
		},
		Targets:  []int{6},
		Mules:    []int{2},
		Horizons: []float64{4_000},
		Metrics:  []Metric{AvgDCDT(), quantizedSD()},
		Seeds:    12,
		Adaptive: &Adaptive{Metric: "steady_sd", RelCI: 0.01, MinReps: 3},
	}
	var buf bytes.Buffer
	res, err := Run(context.Background(), spec, CSV(&buf))
	if err != nil {
		t.Fatal(err)
	}
	btctp, random := res.Cells[0], res.Cells[1]
	if btctp.Reps != 3 {
		t.Fatalf("zero-variance cell ran %d reps, want MinReps=3", btctp.Reps)
	}
	if btctp.StopReason == "" || !strings.Contains(btctp.StopReason, "steady_sd") {
		t.Fatalf("stop reason %q", btctp.StopReason)
	}
	if random.Reps != 12 {
		t.Fatalf("noisy cell ran %d reps, want the MaxReps cap 12", random.Reps)
	}
	if random.StopReason != "" {
		t.Fatalf("noisy cell carries stop reason %q", random.StopReason)
	}
	if len(res.Stopped) != 1 || res.Stopped[0].Reps != 3 ||
		res.Stopped[0].Point.Algorithm != "btctp" {
		t.Fatalf("Stopped = %+v", res.Stopped)
	}
	// Metric Ns and the CSV reps column agree with the actual counts.
	if n := btctp.Metric("steady_sd").N; n != 3 {
		t.Fatalf("stopped cell aggregated %d samples", n)
	}
	rows := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.Contains(rows[1], ",3,") || !strings.Contains(rows[2], ",12,") {
		t.Fatalf("reps column missing from CSV:\n%s", buf.String())
	}
	if res.Runs != 3+12 {
		t.Fatalf("Runs = %d, want 15 (discarded in-flight reps must not count)", res.Runs)
	}
}

// Adaptive stop decisions depend only on the seed-ordered folded
// prefix, so output stays bit-identical across worker counts.
func TestAdaptiveDeterministicAcrossWorkers(t *testing.T) {
	var outputs []string
	for _, workers := range []int{1, 4, 8} {
		spec := ckptSpec()
		spec.Adaptive = &Adaptive{Metric: "avg_sd_s", RelCI: 0.05, MinReps: 3}
		spec.Workers = workers
		var buf bytes.Buffer
		if _, err := Run(context.Background(), spec, CSV(&buf), JSONL(&buf)); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, buf.String())
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("adaptive output depends on worker count:\n%s\nvs\n%s",
				outputs[0], outputs[i])
		}
	}
}

func TestAdaptiveValidation(t *testing.T) {
	base := func() Spec {
		s := ckptSpec()
		s.Adaptive = &Adaptive{Metric: "avg_sd_s", RelCI: 0.05}
		return s
	}
	cases := map[string]func(*Spec){
		"no-relci":        func(s *Spec) { s.Adaptive.RelCI = 0 },
		"negative-relci":  func(s *Spec) { s.Adaptive.RelCI = -1 },
		"unknown-metric":  func(s *Spec) { s.Adaptive.Metric = "nope" },
		"vector-metric":   func(s *Spec) { s.Adaptive.Metric = "dcdt_curve" },
		"minreps-1":       func(s *Spec) { s.Adaptive.MinReps = 1 },
		"min-beyond-max":  func(s *Spec) { s.Adaptive.MinReps = 9; s.Adaptive.MaxReps = 4 },
		"empty-ckpt-path": nil,
	}
	for name, mutate := range cases {
		spec := base()
		var err error
		if mutate == nil {
			_, err = RunCheckpointed(context.Background(), spec, "")
		} else {
			mutate(&spec)
			_, err = Run(context.Background(), spec)
		}
		if err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	if _, err := Resume(context.Background(), base(), ""); err == nil {
		t.Fatal("empty resume path accepted")
	}
}

// Adaptive MinReps defaults to 5 and clamps to a smaller cap.
func TestAdaptiveDefaults(t *testing.T) {
	a := (&Adaptive{Metric: "m", RelCI: 0.1}).withDefaults(20)
	if a.MinReps != 5 || a.MaxReps != 20 {
		t.Fatalf("defaults %+v", a)
	}
	a = (&Adaptive{Metric: "m", RelCI: 0.1, MaxReps: 3}).withDefaults(20)
	if a.MinReps != 3 || a.MaxReps != 3 {
		t.Fatalf("clamped defaults %+v", a)
	}
}

// Workload and fleet configuration is hashed beyond the names the
// points carry, and hook-carried config rides Spec.ConfigDigest: a
// resume under any of them changed is refused.
func TestResumeFingerprintCoversConfig(t *testing.T) {
	spec := ckptSpec()
	spec.Workloads = []scenario.Workload{{}, scenario.Packets()}
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if _, err := RunCheckpointed(context.Background(), spec, path); err != nil {
		t.Fatal(err)
	}

	refuse := func(name string, other Spec) {
		t.Helper()
		if _, err := Resume(context.Background(), other, path); err == nil ||
			!strings.Contains(err.Error(), "different sweep spec") {
			t.Fatalf("%s: err = %v, want fingerprint refusal", name, err)
		}
	}
	// Same workload name, different buffer capacity: the point strings
	// are identical, only the config differs.
	buffered := spec
	buffered.Workloads = []scenario.Workload{{}, scenario.Packets()}
	buffered.Workloads[1].Data.BufferCap = 99
	refuse("workload-config", buffered)
	// Hook-carried configuration serialized into ConfigDigest.
	digested := spec
	digested.ConfigDigest = `{"width":600}`
	refuse("config-digest", digested)

	// The unchanged spec still resumes.
	if _, err := Resume(context.Background(), spec, path); err != nil {
		t.Fatal(err)
	}
}

// An error on a replication beyond a cell's adaptive stop must be
// discarded like its values would be: errors surface in seed order,
// so whether the sweep fails cannot depend on worker count or on how
// early an in-flight doomed replication was delivered.
func TestAdaptiveDiscardsErrorsBeyondStop(t *testing.T) {
	// Replications 4+ produce a broken scenario; the btctp cell stops
	// at MinReps=3, so those replications must never surface.
	bad := map[uint64]bool{}
	for r := 4; r < 12; r++ {
		bad[ScenarioSource(uint64(r)).Uint64()] = true
	}
	var outputs []string
	for _, workers := range []int{1, 8} {
		spec := Spec{
			Name:       "adaptive-errors",
			Algorithms: []Variant{Algo("btctp", patrol.Planned(&core.BTCTP{}))},
			Targets:    []int{6},
			Mules:      []int{2},
			Horizons:   []float64{4_000},
			Metrics:    []Metric{AvgDCDT(), quantizedSD()},
			Seeds:      12,
			Workers:    workers,
			Adaptive:   &Adaptive{Metric: "steady_sd", RelCI: 0.05, MinReps: 3},
			Scenario: func(p Point, src *xrand.Source) *field.Scenario {
				head := src.Uint64()
				s := field.Generate(field.Config{NumTargets: p.Targets, NumMules: p.Mules}, src)
				if bad[head] {
					s.MuleStarts = nil // patrol.Run rejects this
				}
				return s
			},
		}
		var buf bytes.Buffer
		res, err := Run(context.Background(), spec, CSV(&buf))
		if err != nil {
			t.Fatalf("workers=%d: error from a replication beyond the stop: %v", workers, err)
		}
		if res.Cells[0].Reps != 3 {
			t.Fatalf("workers=%d: %d reps, want 3", workers, res.Cells[0].Reps)
		}
		outputs = append(outputs, buf.String())
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("output depends on worker count:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
}
