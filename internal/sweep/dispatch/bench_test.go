package dispatch

import (
	"context"
	"fmt"
	"testing"
	"time"

	"tctp/internal/sweep/protocol"
)

// BenchmarkRemoteDispatch measures the scheduler's per-cell lease
// round-trip overhead: enqueue → lease grant → result accept →
// resolver wake, with the worker's compute reduced to building the
// state. This is everything the remote plane adds on top of the cell
// computation itself, so it is gated like the other hot paths.
func BenchmarkRemoteDispatch(b *testing.B) {
	fs := newFakeStore()
	s, err := New(Options{Store: fs, LeaseTTL: time.Minute})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for w := 0; w < 2; w++ {
		go func(id string) {
			for {
				l, err := s.Lease(ctx, id)
				if err != nil || ctx.Err() != nil {
					return
				}
				if l == nil {
					continue
				}
				st := stateFor(l.Cell)
				s.Complete(protocol.FoldResult{Lease: l.ID, Worker: id, Key: l.Key, State: &st})
			}
		}(fmt.Sprintf("bw%d", w))
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell := Cell{
			Sweep:    "bench",
			Index:    i,
			Key:      fmt.Sprintf("bench-%d", i),
			Validate: acceptAll,
		}
		if _, _, err := s.Resolve(ctx, cell); err != nil {
			b.Fatalf("Resolve %d: %v", i, err)
		}
	}
}
