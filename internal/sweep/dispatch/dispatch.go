// Package dispatch is the server side of the remote compute plane: a
// cache-aware cell scheduler that turns a sweep's missing cells into
// worker leases.
//
// The scheduler sits between sweep.Job.RunCached (as its Resolve hook)
// and a fleet of tctp-worker processes pulling leases over HTTP:
//
//   - Cache-aware admission. Every cell is probed against the shared
//     CellStore before anything else; a warm cell is served directly
//     and never enters the queue. Re-submitting a superset grid over a
//     warm cache therefore dispatches only the missing cells — zero
//     leases are issued for cached ones (Stats.CacheSkips counts them).
//
//   - Single-flight by key. Two sweeps (or two submissions) missing
//     the same cell share one queue entry: the first caller enqueues,
//     later callers join and wait for the same result. Exactly one
//     worker result is ever folded per cell.
//
//   - Leases with deadlines. A granted cell must report (or heartbeat)
//     within the lease TTL; an expired lease is revoked and the cell
//     requeued at the front for the next worker (Stats.Expired,
//     Stats.Reassigned). A result posted under a revoked or completed
//     lease is refused as stale (Stats.StaleResults) — a reassigned
//     cell that reports twice still folds once.
//
//   - Validation before trust. Worker results are checked against the
//     requesting spec's shape (the Validate closure each cell carries)
//     before they are published to the cache or handed to waiters; a
//     refused result requeues the cell, and a cell refused repeatedly
//     fails the sweep with the validation error instead of looping.
//
// Because the unit shipped back is the cell's bit-exact fold state —
// the same record the checkpoint layer persists — a sweep computed by
// N remote workers is byte-identical to a single-machine run at any
// fleet size, including under mid-sweep worker loss.
package dispatch

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	"tctp/internal/sweep/protocol"
)

// Store is what the scheduler needs from the shared cell cache: a
// probe that never computes and a publish for worker-computed states.
// *cache.Store implements it.
type Store interface {
	// Probe returns the state cached under key, if any, without
	// computing, joining, or registering a single-flight.
	Probe(key string) (protocol.FoldState, bool)
	// Put publishes a validated state under its key.
	Put(key string, st protocol.FoldState)
}

// Options configures a Scheduler.
type Options struct {
	// Store is the shared cell cache (required).
	Store Store
	// LeaseTTL is how long a worker may hold a cell without reporting
	// or heartbeating before the lease expires and the cell is
	// reassigned. Default 30s.
	LeaseTTL time.Duration
	// MaxRefusals bounds how many invalid worker results a single cell
	// absorbs (each one requeues the cell) before the cell fails with
	// the validation error. Default 3.
	MaxRefusals int
}

// Stats is a snapshot of the scheduler's counters, served under
// "scheduler" in the server's /stats document.
type Stats struct {
	// Queued counts cells ever enqueued for remote compute (cache
	// misses only); QueueLen is the current queue length.
	Queued   int64 `json:"queued"`
	QueueLen int   `json:"queue_len"`
	// Leased counts leases ever granted; ActiveLeases the outstanding
	// ones right now.
	Leased       int64 `json:"leased"`
	ActiveLeases int   `json:"active_leases"`
	// Expired counts leases revoked at their deadline; Reassigned
	// counts cells re-granted to a worker after an expiry or a refused
	// result.
	Expired    int64 `json:"expired"`
	Reassigned int64 `json:"reassigned"`
	// RemoteComputed counts worker results accepted and folded.
	RemoteComputed int64 `json:"remote_computed"`
	// CacheSkips counts cells served straight from the store's probe —
	// warm cells that never entered the queue.
	CacheSkips int64 `json:"cache_skips"`
	// Joined counts resolvers that attached to another sweep's
	// already-queued computation of the same cell.
	Joined int64 `json:"joined"`
	// StaleResults counts results refused because their lease was
	// expired, completed, or never existed; RefusedResults counts
	// results whose state failed validation; WorkerErrors counts
	// worker-reported compute failures.
	StaleResults   int64 `json:"stale_results"`
	RefusedResults int64 `json:"refused_results"`
	WorkerErrors   int64 `json:"worker_errors"`
	// Workers summarizes per-worker activity, keyed by worker id.
	Workers map[string]WorkerStats `json:"workers,omitempty"`
}

// WorkerStats is one worker's row in Stats.Workers.
type WorkerStats struct {
	// Active is the worker's outstanding leases; Completed its
	// accepted results; Expired the leases it lost to the deadline.
	Active    int   `json:"active"`
	Completed int64 `json:"completed"`
	Expired   int64 `json:"expired"`
}

// Cell is one cell submitted to the scheduler by a sweep's resolver.
type Cell struct {
	// Sweep is the submitting sweep's id (diagnostic, rides on the
	// lease).
	Sweep string
	// Index is the plan-global cell index within Request's plan; Key
	// the cell's content-addressed identity.
	Index int
	Key   string
	// Fingerprint is the plan fingerprint of Request.
	Fingerprint string
	// Request is the transport-neutral sweep request whose plan
	// contains the cell — what the worker rebuilds the spec from.
	Request protocol.SweepRequest
	// Validate checks a worker-returned state against the submitting
	// spec before it is trusted (required).
	Validate func(*protocol.FoldState) error
}

// task is the scheduler-side state of one distinct cell key.
type task struct {
	cell     Cell
	elem     *list.Element // non-nil while queued
	lease    *lease        // non-nil while checked out
	requeued bool          // true once reassignment made this a retry
	refusals int

	done chan struct{} // closed when st/err are final
	st   protocol.FoldState
	err  error
}

// lease is one checked-out cell.
type lease struct {
	id       string
	worker   string
	task     *task
	deadline time.Time
}

// Scheduler is the cache-aware cell scheduler. Create with New, stop
// with Close.
type Scheduler struct {
	store       Store
	ttl         time.Duration
	maxRefusals int

	mu       sync.Mutex
	queue    *list.List // *task, front = next to lease
	byKey    map[string]*task
	leases   map[string]*lease
	byWorker map[string]*WorkerStats
	nextID   int64
	wake     chan struct{} // closed and replaced when work arrives
	stats    Stats

	stop chan struct{}
	tick *time.Ticker
}

// New builds a Scheduler and starts its expiry loop.
func New(opts Options) (*Scheduler, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("dispatch: Options.Store is required")
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 30 * time.Second
	}
	if opts.MaxRefusals <= 0 {
		opts.MaxRefusals = 3
	}
	s := &Scheduler{
		store:       opts.Store,
		ttl:         opts.LeaseTTL,
		maxRefusals: opts.MaxRefusals,
		queue:       list.New(),
		byKey:       make(map[string]*task),
		leases:      make(map[string]*lease),
		byWorker:    make(map[string]*WorkerStats),
		wake:        make(chan struct{}),
		stop:        make(chan struct{}),
	}
	// The expiry loop frees cells held by dead workers even while every
	// live worker is parked in a long poll.
	interval := s.ttl / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	s.tick = time.NewTicker(interval)
	go func() {
		for {
			select {
			case <-s.tick.C:
				s.mu.Lock()
				if s.expireLocked(time.Now()) {
					s.wakeLocked()
				}
				s.mu.Unlock()
			case <-s.stop:
				return
			}
		}
	}()
	return s, nil
}

// Close stops the expiry loop. Outstanding Resolve calls are not
// interrupted — cancel their contexts to release them.
func (s *Scheduler) Close() {
	s.tick.Stop()
	close(s.stop)
}

// Stats returns a snapshot of the counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.QueueLen = s.queue.Len()
	st.ActiveLeases = len(s.leases)
	st.Workers = make(map[string]WorkerStats, len(s.byWorker))
	for id, w := range s.byWorker {
		st.Workers[id] = *w
	}
	return st
}

// Resolve obtains the cell's fold state: from the store if warm,
// otherwise by queueing it for the worker fleet and waiting for the
// accepted result. Concurrent Resolves of the same key share one queue
// entry. The returned Source is a cache hit, "worker:<id>" for the
// resolver that enqueued the cell, or joined for resolvers that
// attached to an existing entry.
func (s *Scheduler) Resolve(ctx context.Context, cell Cell) (protocol.FoldState, protocol.Source, error) {
	if cell.Validate == nil {
		return protocol.FoldState{}, "", fmt.Errorf("dispatch: cell %s has no Validate", cell.Key)
	}
	if st, ok := s.store.Probe(cell.Key); ok {
		s.mu.Lock()
		s.stats.CacheSkips++
		s.mu.Unlock()
		return st, protocol.SourceHit, nil
	}

	s.mu.Lock()
	t, joined := s.byKey[cell.Key]
	if joined {
		s.stats.Joined++
	} else {
		t = &task{cell: cell, done: make(chan struct{})}
		t.elem = s.queue.PushBack(t)
		s.byKey[cell.Key] = t
		s.stats.Queued++
		s.wakeLocked()
	}
	s.mu.Unlock()

	select {
	case <-t.done:
	case <-ctx.Done():
		return protocol.FoldState{}, "", ctx.Err()
	}
	if t.err != nil {
		return protocol.FoldState{}, "", t.err
	}
	src := t.srcOf()
	if joined {
		src = protocol.SourceJoined
	}
	return t.st, src, nil
}

// srcOf names the source of a finished task's state. Finished tasks
// are immutable, so the unsynchronized read is safe.
func (t *task) srcOf() protocol.Source {
	if t.lease != nil {
		return protocol.SourceWorker(t.lease.worker)
	}
	return protocol.SourceComputed
}

// Lease grants the next queued cell to worker, blocking until work
// arrives or ctx is done (long poll). A nil lease with a nil error
// means the poll timed out empty.
func (s *Scheduler) Lease(ctx context.Context, worker string) (*protocol.CellLease, error) {
	if worker == "" {
		return nil, fmt.Errorf("dispatch: empty worker id")
	}
	for {
		s.mu.Lock()
		s.expireLocked(time.Now())
		if front := s.queue.Front(); front != nil {
			t := front.Value.(*task)
			s.queue.Remove(front)
			t.elem = nil
			l := s.grantLocked(t, worker)
			wire := s.leaseWireLocked(l)
			s.mu.Unlock()
			return wire, nil
		}
		wake := s.wake
		s.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return nil, nil
		case <-s.stop:
			return nil, fmt.Errorf("dispatch: scheduler closed")
		}
	}
}

// grantLocked checks t out to worker. Caller holds s.mu.
func (s *Scheduler) grantLocked(t *task, worker string) *lease {
	s.nextID++
	l := &lease{
		id:       fmt.Sprintf("L%d", s.nextID),
		worker:   worker,
		task:     t,
		deadline: time.Now().Add(s.ttl),
	}
	t.lease = l
	s.leases[l.id] = l
	s.stats.Leased++
	if t.requeued {
		s.stats.Reassigned++
	}
	s.workerLocked(worker).Active++
	return l
}

// workerLocked returns worker's stats row, creating it. Caller holds
// s.mu.
func (s *Scheduler) workerLocked(id string) *WorkerStats {
	w := s.byWorker[id]
	if w == nil {
		w = &WorkerStats{}
		s.byWorker[id] = w
	}
	return w
}

// leaseWireLocked renders a lease for the wire. Caller holds s.mu.
func (s *Scheduler) leaseWireLocked(l *lease) *protocol.CellLease {
	ttl := int(s.ttl / time.Second)
	if ttl < 1 {
		ttl = 1
	}
	return &protocol.CellLease{
		ID:          l.id,
		Worker:      l.worker,
		Sweep:       l.task.cell.Sweep,
		Cell:        l.task.cell.Index,
		Key:         l.task.cell.Key,
		Fingerprint: l.task.cell.Fingerprint,
		TTLSeconds:  ttl,
		Request:     l.task.cell.Request,
	}
}

// expireLocked revokes leases past their deadline and requeues their
// cells at the front. Returns true if anything was requeued. Caller
// holds s.mu.
func (s *Scheduler) expireLocked(now time.Time) bool {
	requeued := false
	for id, l := range s.leases {
		if !now.After(l.deadline) {
			continue
		}
		delete(s.leases, id)
		s.stats.Expired++
		w := s.workerLocked(l.worker)
		w.Active--
		w.Expired++
		t := l.task
		t.lease = nil
		t.requeued = true
		t.elem = s.queue.PushFront(t)
		requeued = true
	}
	return requeued
}

// wakeLocked wakes every long-polling Lease. Caller holds s.mu.
func (s *Scheduler) wakeLocked() {
	close(s.wake)
	s.wake = make(chan struct{})
}

// Heartbeat extends a live lease's deadline to a fresh TTL.
func (s *Scheduler) Heartbeat(hb protocol.LeaseHeartbeat) protocol.LeaseAck {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.leases[hb.Lease]
	if !ok {
		return protocol.LeaseAck{Stale: true, Error: fmt.Sprintf("unknown or expired lease %q", hb.Lease)}
	}
	l.deadline = time.Now().Add(s.ttl)
	return protocol.LeaseAck{Accepted: true}
}

// Complete accepts a worker's result for a leased cell. The first
// valid result per cell wins: it is validated, published to the
// store, and handed to every waiting resolver. Results under an
// expired, completed, or unknown lease are refused as stale; results
// that fail validation requeue the cell (up to MaxRefusals, then the
// cell fails); worker-reported errors fail the cell's waiters.
func (s *Scheduler) Complete(res protocol.FoldResult) protocol.LeaseAck {
	s.mu.Lock()
	l, ok := s.leases[res.Lease]
	if !ok {
		s.stats.StaleResults++
		s.mu.Unlock()
		return protocol.LeaseAck{Stale: true, Error: fmt.Sprintf("unknown or expired lease %q", res.Lease)}
	}
	delete(s.leases, res.Lease)
	s.workerLocked(l.worker).Active--
	t := l.task

	if res.Error != "" {
		s.stats.WorkerErrors++
		s.finishLocked(t, protocol.FoldState{},
			fmt.Errorf("dispatch: worker %s failed cell %s: %s", l.worker, t.cell.Key, res.Error))
		s.mu.Unlock()
		return protocol.LeaseAck{Accepted: true}
	}

	var verr error
	switch {
	case res.State == nil:
		verr = fmt.Errorf("result carries no state")
	case res.Key != t.cell.Key:
		verr = fmt.Errorf("result key %s does not match leased cell %s", res.Key, t.cell.Key)
	default:
		verr = t.cell.Validate(res.State)
	}
	if verr != nil {
		s.stats.RefusedResults++
		t.refusals++
		t.lease = nil
		if t.refusals >= s.maxRefusals {
			s.finishLocked(t, protocol.FoldState{},
				fmt.Errorf("dispatch: cell %s: %d invalid worker results, last from %s: %v",
					t.cell.Key, t.refusals, l.worker, verr))
		} else {
			t.requeued = true
			t.elem = s.queue.PushFront(t)
			s.wakeLocked()
		}
		s.mu.Unlock()
		return protocol.LeaseAck{Error: fmt.Sprintf("invalid result for cell %s: %v", t.cell.Key, verr)}
	}

	// Accepted. Leave t.lease set so srcOf attributes the state to this
	// worker, and publish before finishing so a resolver racing in
	// behind the completion probes a warm store.
	s.stats.RemoteComputed++
	s.workerLocked(l.worker).Completed++
	st := *res.State
	s.mu.Unlock()

	s.store.Put(t.cell.Key, st)

	s.mu.Lock()
	s.finishLocked(t, st, nil)
	s.mu.Unlock()
	return protocol.LeaseAck{Accepted: true}
}

// finishLocked resolves a task for all its waiters and retires its
// key. Caller holds s.mu.
func (s *Scheduler) finishLocked(t *task, st protocol.FoldState, err error) {
	if t.elem != nil {
		s.queue.Remove(t.elem)
		t.elem = nil
	}
	t.st, t.err = st, err
	delete(s.byKey, t.cell.Key)
	close(t.done)
}
