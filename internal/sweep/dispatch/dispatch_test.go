package dispatch

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tctp/internal/stats"
	"tctp/internal/sweep/protocol"
)

// fakeStore is an in-memory Store for scheduler tests.
type fakeStore struct {
	mu sync.Mutex
	m  map[string]protocol.FoldState
}

func newFakeStore() *fakeStore { return &fakeStore{m: make(map[string]protocol.FoldState)} }

func (f *fakeStore) Probe(key string) (protocol.FoldState, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.m[key]
	return st, ok
}

func (f *fakeStore) Put(key string, st protocol.FoldState) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.m[key] = st
}

// stateFor builds a distinguishable fold state for cell i.
func stateFor(i int) protocol.FoldState {
	return protocol.FoldState{
		Next:    i + 1,
		Scalars: []stats.AccumulatorState{{N: i + 1, Mean: uint64(i)}},
	}
}

func acceptAll(*protocol.FoldState) error { return nil }

func testCell(i int) Cell {
	return Cell{
		Sweep:    "s1",
		Index:    i,
		Key:      fmt.Sprintf("k%03d", i),
		Validate: acceptAll,
	}
}

func newTestScheduler(t *testing.T, opts Options) (*Scheduler, *fakeStore) {
	t.Helper()
	fs := newFakeStore()
	if opts.Store == nil {
		opts.Store = fs
	}
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s, fs
}

// resolveAsync starts a Resolve and returns a channel with its outcome.
type resolved struct {
	st  protocol.FoldState
	src protocol.Source
	err error
}

func resolveAsync(ctx context.Context, s *Scheduler, c Cell) <-chan resolved {
	ch := make(chan resolved, 1)
	go func() {
		st, src, err := s.Resolve(ctx, c)
		ch <- resolved{st, src, err}
	}()
	return ch
}

// waitStats polls the scheduler until cond holds or the deadline hits.
func waitStats(t *testing.T, s *Scheduler, what string, cond func(Stats) bool) Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s; stats %+v", what, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func mustLease(t *testing.T, s *Scheduler, worker string) *protocol.CellLease {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	l, err := s.Lease(ctx, worker)
	if err != nil {
		t.Fatalf("Lease(%s): %v", worker, err)
	}
	if l == nil {
		t.Fatalf("Lease(%s): poll timed out with work expected", worker)
	}
	return l
}

func TestLeaseLifecycle(t *testing.T) {
	s, fs := newTestScheduler(t, Options{})
	cell := testCell(0)
	got := resolveAsync(context.Background(), s, cell)

	l := mustLease(t, s, "w1")
	if l.Key != cell.Key || l.Cell != cell.Index || l.Worker != "w1" || l.Sweep != "s1" {
		t.Fatalf("lease %+v does not match cell %+v", l, cell)
	}
	if l.TTLSeconds < 1 {
		t.Fatalf("lease TTL %d < 1s", l.TTLSeconds)
	}
	want := stateFor(0)
	ack := s.Complete(protocol.FoldResult{Lease: l.ID, Worker: "w1", Key: l.Key, State: &want})
	if !ack.Accepted || ack.Stale {
		t.Fatalf("valid result refused: %+v", ack)
	}
	r := <-got
	if r.err != nil {
		t.Fatalf("Resolve: %v", r.err)
	}
	if r.src != protocol.SourceWorker("w1") {
		t.Fatalf("source %q, want worker:w1", r.src)
	}
	if r.st.Next != want.Next {
		t.Fatalf("state %+v, want %+v", r.st, want)
	}
	if _, ok := fs.Probe(cell.Key); !ok {
		t.Fatalf("accepted result was not published to the store")
	}
	st := s.Stats()
	if st.Queued != 1 || st.Leased != 1 || st.RemoteComputed != 1 || st.ActiveLeases != 0 || st.QueueLen != 0 {
		t.Fatalf("stats %+v", st)
	}
	w := st.Workers["w1"]
	if w.Completed != 1 || w.Active != 0 {
		t.Fatalf("worker stats %+v", w)
	}
}

func TestWarmCellNeverQueued(t *testing.T) {
	s, fs := newTestScheduler(t, Options{})
	cell := testCell(3)
	fs.Put(cell.Key, stateFor(3))

	st, src, err := s.Resolve(context.Background(), cell)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if src != protocol.SourceHit {
		t.Fatalf("source %q, want hit", src)
	}
	if st.Next != 4 {
		t.Fatalf("state %+v", st)
	}
	stats := s.Stats()
	if stats.CacheSkips != 1 || stats.Queued != 0 || stats.Leased != 0 {
		t.Fatalf("warm cell touched the queue: %+v", stats)
	}
}

func TestConcurrentResolversShareOneLease(t *testing.T) {
	s, _ := newTestScheduler(t, Options{})
	cell := testCell(1)
	a := resolveAsync(context.Background(), s, cell)
	waitStats(t, s, "first resolver queued", func(st Stats) bool { return st.Queued == 1 })
	b := resolveAsync(context.Background(), s, cell)
	waitStats(t, s, "second resolver joined", func(st Stats) bool { return st.Joined == 1 })

	l := mustLease(t, s, "w1")
	want := stateFor(1)
	if ack := s.Complete(protocol.FoldResult{Lease: l.ID, Key: l.Key, State: &want}); !ack.Accepted {
		t.Fatalf("result refused: %+v", ack)
	}
	ra, rb := <-a, <-b
	for _, r := range []resolved{ra, rb} {
		if r.err != nil {
			t.Fatalf("Resolve: %v", r.err)
		}
		if r.st.Next != want.Next {
			t.Fatalf("state %+v, want %+v", r.st, want)
		}
	}
	if ra.src != protocol.SourceWorker("w1") || rb.src != protocol.SourceJoined {
		t.Fatalf("sources %q/%q, want worker:w1/joined", ra.src, rb.src)
	}
	if st := s.Stats(); st.Leased != 1 || st.RemoteComputed != 1 {
		t.Fatalf("shared cell leased %d times, computed %d", st.Leased, st.RemoteComputed)
	}
}

func TestExpiredLeaseReassignedStaleRefused(t *testing.T) {
	s, _ := newTestScheduler(t, Options{LeaseTTL: 40 * time.Millisecond})
	cell := testCell(2)
	got := resolveAsync(context.Background(), s, cell)

	dead := mustLease(t, s, "doomed") // takes the cell and never reports
	waitStats(t, s, "lease expiry", func(st Stats) bool { return st.Expired >= 1 })

	l2 := mustLease(t, s, "w2")
	if l2.ID == dead.ID {
		t.Fatalf("reassigned lease reused id %s", dead.ID)
	}
	if l2.Key != cell.Key {
		t.Fatalf("reassigned lease key %s, want %s", l2.Key, cell.Key)
	}
	want := stateFor(2)
	if ack := s.Complete(protocol.FoldResult{Lease: l2.ID, Key: l2.Key, State: &want}); !ack.Accepted {
		t.Fatalf("reassigned result refused: %+v", ack)
	}
	r := <-got
	if r.err != nil {
		t.Fatalf("Resolve: %v", r.err)
	}
	if r.src != protocol.SourceWorker("w2") {
		t.Fatalf("source %q, want worker:w2", r.src)
	}

	// The dead worker finally reports: refused as stale, state unchanged.
	wrong := stateFor(99)
	ack := s.Complete(protocol.FoldResult{Lease: dead.ID, Key: cell.Key, State: &wrong})
	if ack.Accepted || !ack.Stale {
		t.Fatalf("stale result not refused: %+v", ack)
	}
	st := s.Stats()
	if st.Reassigned < 1 || st.StaleResults != 1 || st.RemoteComputed != 1 {
		t.Fatalf("stats %+v", st)
	}
	if w := st.Workers["doomed"]; w.Expired < 1 || w.Completed != 0 {
		t.Fatalf("doomed worker stats %+v", w)
	}
}

func TestDuplicatePostFoldsOnce(t *testing.T) {
	s, _ := newTestScheduler(t, Options{})
	got := resolveAsync(context.Background(), s, testCell(4))
	l := mustLease(t, s, "w1")
	want := stateFor(4)
	if ack := s.Complete(protocol.FoldResult{Lease: l.ID, Key: l.Key, State: &want}); !ack.Accepted {
		t.Fatalf("first post refused: %+v", ack)
	}
	if ack := s.Complete(protocol.FoldResult{Lease: l.ID, Key: l.Key, State: &want}); ack.Accepted || !ack.Stale {
		t.Fatalf("duplicate post not refused as stale: %+v", ack)
	}
	if r := <-got; r.err != nil {
		t.Fatalf("Resolve: %v", r.err)
	}
	if st := s.Stats(); st.RemoteComputed != 1 || st.StaleResults != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestInvalidResultRequeuedThenFails(t *testing.T) {
	fs := newFakeStore()
	s, err := New(Options{Store: fs, MaxRefusals: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	cell := testCell(5)
	cell.Validate = func(st *protocol.FoldState) error {
		if st.Next != 6 {
			return fmt.Errorf("bad next %d", st.Next)
		}
		return nil
	}
	got := resolveAsync(context.Background(), s, cell)

	bad := stateFor(0)
	l1 := mustLease(t, s, "w1")
	if ack := s.Complete(protocol.FoldResult{Lease: l1.ID, Key: l1.Key, State: &bad}); ack.Accepted || ack.Error == "" {
		t.Fatalf("invalid result not refused: %+v", ack)
	}
	// Refusal requeues: the cell is leased again, and the second invalid
	// result trips MaxRefusals and fails the waiters.
	l2 := mustLease(t, s, "w1")
	if l2.Key != cell.Key {
		t.Fatalf("requeued lease key %s, want %s", l2.Key, cell.Key)
	}
	s.Complete(protocol.FoldResult{Lease: l2.ID, Key: l2.Key, State: &bad})
	r := <-got
	if r.err == nil || !strings.Contains(r.err.Error(), "invalid worker results") {
		t.Fatalf("Resolve error %v, want refusal-cap failure", r.err)
	}
	if _, ok := fs.Probe(cell.Key); ok {
		t.Fatalf("invalid state was published to the store")
	}
	if st := s.Stats(); st.RefusedResults != 2 || st.Reassigned != 1 || st.RemoteComputed != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestKeyMismatchRefused(t *testing.T) {
	s, _ := newTestScheduler(t, Options{})
	got := resolveAsync(context.Background(), s, testCell(6))
	l := mustLease(t, s, "w1")
	want := stateFor(6)
	ack := s.Complete(protocol.FoldResult{Lease: l.ID, Key: "k999", State: &want})
	if ack.Accepted || !strings.Contains(ack.Error, "does not match") {
		t.Fatalf("mismatched key not refused: %+v", ack)
	}
	// The cell is requeued; a correct post still lands.
	l2 := mustLease(t, s, "w1")
	if ack := s.Complete(protocol.FoldResult{Lease: l2.ID, Key: l2.Key, State: &want}); !ack.Accepted {
		t.Fatalf("correct retry refused: %+v", ack)
	}
	if r := <-got; r.err != nil {
		t.Fatalf("Resolve: %v", r.err)
	}
}

func TestWorkerErrorFailsWaiters(t *testing.T) {
	s, _ := newTestScheduler(t, Options{})
	got := resolveAsync(context.Background(), s, testCell(7))
	l := mustLease(t, s, "w1")
	if ack := s.Complete(protocol.FoldResult{Lease: l.ID, Key: l.Key, Error: "engine exploded"}); !ack.Accepted {
		t.Fatalf("error report refused: %+v", ack)
	}
	r := <-got
	if r.err == nil || !strings.Contains(r.err.Error(), "engine exploded") {
		t.Fatalf("Resolve error %v, want worker failure", r.err)
	}
	if st := s.Stats(); st.WorkerErrors != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	s, _ := newTestScheduler(t, Options{LeaseTTL: 60 * time.Millisecond})
	got := resolveAsync(context.Background(), s, testCell(8))
	l := mustLease(t, s, "w1")

	// Heartbeat for several TTLs; the lease must survive.
	for i := 0; i < 10; i++ {
		time.Sleep(20 * time.Millisecond)
		if ack := s.Heartbeat(protocol.LeaseHeartbeat{Lease: l.ID, Worker: "w1"}); !ack.Accepted {
			t.Fatalf("heartbeat %d refused: %+v", i, ack)
		}
	}
	if st := s.Stats(); st.Expired != 0 {
		t.Fatalf("heartbeated lease expired: %+v", st)
	}
	want := stateFor(8)
	if ack := s.Complete(protocol.FoldResult{Lease: l.ID, Key: l.Key, State: &want}); !ack.Accepted {
		t.Fatalf("result refused after heartbeats: %+v", ack)
	}
	if r := <-got; r.err != nil {
		t.Fatalf("Resolve: %v", r.err)
	}
	if ack := s.Heartbeat(protocol.LeaseHeartbeat{Lease: "L-unknown"}); ack.Accepted || !ack.Stale {
		t.Fatalf("unknown-lease heartbeat not refused: %+v", ack)
	}
}

func TestLeasePollTimesOutEmpty(t *testing.T) {
	s, _ := newTestScheduler(t, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	l, err := s.Lease(ctx, "w1")
	if err != nil || l != nil {
		t.Fatalf("empty poll: lease %v err %v, want nil/nil", l, err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatalf("poll returned before its wait elapsed")
	}
}

func TestResolveCancelled(t *testing.T) {
	s, _ := newTestScheduler(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	got := resolveAsync(ctx, s, testCell(9))
	waitStats(t, s, "cell queued", func(st Stats) bool { return st.Queued == 1 })
	cancel()
	if r := <-got; r.err != context.Canceled {
		t.Fatalf("Resolve after cancel: %v", r.err)
	}
}

// TestHammer drives the scheduler under -race: many cells, several
// well-behaved workers, one that takes leases and abandons them, and
// duplicate posts for every completed lease. Every resolver must get
// its cell's exact state; every cell folds exactly once.
func TestHammer(t *testing.T) {
	s, _ := newTestScheduler(t, Options{LeaseTTL: 50 * time.Millisecond})
	const cells = 64

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// One abandoning worker: grabs leases and drops them so expiry and
	// reassignment fire throughout the run.
	var abandoned atomic.Int64
	go func() {
		for ctx.Err() == nil {
			lctx, lcancel := context.WithTimeout(ctx, 20*time.Millisecond)
			l, err := s.Lease(lctx, "flaky")
			lcancel()
			if err != nil {
				return
			}
			if l != nil {
				abandoned.Add(1)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Three real workers: compute from the lease, post the result, and
	// post it again (the duplicate must be refused as stale).
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for ctx.Err() == nil {
				lctx, lcancel := context.WithTimeout(ctx, 20*time.Millisecond)
				l, err := s.Lease(lctx, id)
				lcancel()
				if err != nil || l == nil {
					continue
				}
				st := stateFor(l.Cell)
				res := protocol.FoldResult{Lease: l.ID, Worker: id, Key: l.Key, State: &st}
				first := s.Complete(res)
				if dup := s.Complete(res); dup.Accepted {
					t.Errorf("duplicate post of lease %s accepted", l.ID)
				} else if first.Accepted && !dup.Stale {
					t.Errorf("duplicate post of completed lease %s not stale: %+v", l.ID, dup)
				}
			}
		}(fmt.Sprintf("w%d", w))
	}

	// Two resolvers per cell: one enqueues, one joins (or probes warm).
	var rwg sync.WaitGroup
	errs := make(chan error, 2*cells)
	for i := 0; i < cells; i++ {
		for r := 0; r < 2; r++ {
			rwg.Add(1)
			go func(i int) {
				defer rwg.Done()
				st, _, err := s.Resolve(ctx, testCell(i))
				if err != nil {
					errs <- fmt.Errorf("cell %d: %w", i, err)
					return
				}
				if st.Next != i+1 {
					errs <- fmt.Errorf("cell %d resolved to state %+v", i, st)
				}
			}(i)
		}
	}
	done := make(chan struct{})
	go func() { rwg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("hammer deadlocked; stats %+v", s.Stats())
	}
	cancel()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.Stats()
	if st.RemoteComputed != cells {
		t.Errorf("RemoteComputed = %d, want %d (exactly one fold per cell)", st.RemoteComputed, cells)
	}
	if st.QueueLen != 0 || st.ActiveLeases != 0 {
		t.Errorf("work left behind: %+v", st)
	}
	if abandoned.Load() > 0 && st.Expired == 0 {
		t.Errorf("flaky worker abandoned %d leases but none expired: %+v", abandoned.Load(), st)
	}
	t.Logf("hammer: %+v (flaky abandoned %d)", st, abandoned.Load())
}
