package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"tctp/internal/field"
	"tctp/internal/patrol"
	"tctp/internal/stats"
	"tctp/internal/wsn"
)

// MetricSummary is the streaming aggregate of one scalar metric over a
// cell's replications.
type MetricSummary struct {
	Name string  `json:"name"`
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	SD   float64 `json:"sd"`
	CI95 float64 `json:"ci95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// VectorSummary is the elementwise aggregate of one vector metric.
// Mean is trimmed to the longest vector any replication produced; N
// counts the replications reaching each position.
type VectorSummary struct {
	Name string    `json:"name"`
	N    []int     `json:"n"`
	Mean []float64 `json:"mean"`
}

// CellResult is one finished cell: its parameter point and the
// aggregated metrics.
type CellResult struct {
	// Index is the cell's position in the spec's enumeration order,
	// counting executed (non-skipped) cells only.
	Index int   `json:"cell"`
	Point Point `json:"point"`
	// Reps is the number of replications folded into the cell: Seeds,
	// or fewer when adaptive early stopping cut the cell short.
	Reps int `json:"reps"`
	// StopReason is non-empty when the cell stopped before the
	// replication ceiling.
	StopReason string          `json:"stop_reason,omitempty"`
	Metrics    []MetricSummary `json:"metrics,omitempty"`
	Vectors    []VectorSummary `json:"vectors,omitempty"`
}

// Metric returns the named metric summary, or a zero summary if the
// cell does not carry it.
func (c *CellResult) Metric(name string) MetricSummary {
	for _, m := range c.Metrics {
		if m.Name == name {
			return m
		}
	}
	return MetricSummary{}
}

// Vector returns the named vector summary, or a zero summary.
func (c *CellResult) Vector(name string) VectorSummary {
	for _, v := range c.Vectors {
		if v.Name == name {
			return v
		}
	}
	return VectorSummary{}
}

// SkippedCell records a cell excluded by the Spec's Skip hook.
type SkippedCell struct {
	Point  Point  `json:"point"`
	Reason string `json:"reason"`
}

// StoppedCell records a cell that adaptive replication cut short of
// the replication ceiling. It rides the same reporting channel as
// SkippedCell: the text sink's footer and tctp-sweep's stderr report.
type StoppedCell struct {
	Point  Point  `json:"point"`
	Reps   int    `json:"reps"`
	Reason string `json:"reason"`
}

// Result is a finished sweep.
type Result struct {
	// Cells holds the executed cells in enumeration order.
	Cells []*CellResult
	// Skipped holds the excluded cells in enumeration order.
	Skipped []SkippedCell
	// Stopped holds the adaptively early-stopped cells in enumeration
	// order.
	Stopped []StoppedCell
	// Runs is the number of replications folded into the result; on
	// Resume this includes the replications restored from the
	// checkpoint, so a resumed sweep finishes with the same count as an
	// uninterrupted one.
	Runs int
}

// Cell returns the executed cell whose point equals p, or nil.
func (r *Result) Cell(p Point) *CellResult {
	for _, c := range r.Cells {
		if c.Point == p {
			return c
		}
	}
	return nil
}

// Progress is a snapshot handed to the Spec's Progress callback.
// Under adaptive replication RunsTotal is the ceiling
// (cells × MaxReps); early-stopped cells finish below it, so RunsDone
// may never reach RunsTotal.
type Progress struct {
	CellsDone, CellsTotal int
	RunsDone, RunsTotal   int
}

// collector streams one cell's replications into accumulators. The
// fold happens strictly in seed order: results arriving early are
// parked in pending until their predecessors land, which keeps the
// floating-point fold order — and therefore the output bits —
// independent of the worker count. Pending never holds more than the
// number of in-flight workers.
//
// With Spec.RepShards > 1 the cell's seed range is split into
// contiguous shards, each folding its own range in seed order into its
// own accumulators; the shard accumulators are combined in ascending
// shard order when the cell completes. The fold order is then fixed by
// the shard layout alone, so the output still cannot depend on the
// worker count.
type collector struct {
	// next counts the replications folded so far, across all shards.
	next int
	// stop is the cell's current replication target: the ceiling
	// (Seeds, or Adaptive.MaxReps), shrunk to the folded count when the
	// adaptive rule fires. The cell is finished when next == stop.
	stop       int
	stopReason string
	pending    map[int]*runValues
	scalars    []stats.Accumulator
	vectors    [][]stats.Accumulator
	// shards is non-nil only when Spec.RepShards > 1; each shard folds
	// its contiguous seed range independently.
	shards []foldShard
}

// foldShard is one contiguous seed-range slice of a cell's fold: it
// drains [lo, hi) in seed order into its own accumulators, parking
// out-of-order arrivals in the collector's shared pending map.
type foldShard struct {
	next, hi int
	scalars  []stats.Accumulator
	vectors  [][]stats.Accumulator
}

// runValues is the outcome of one replication: its metric values, or
// the error that produced neither.
type runValues struct {
	scalars []float64
	vectors [][]float64
	err     error
}

type job struct {
	cell, rep int
}

// engine is the shared state of one Job.Run call.
type engine struct {
	spec     *Spec
	defs     []cellDef
	offset   int // global index of defs[0] in the full plan
	sinks    []Sink
	progress []func(Progress)
	watch    int               // index of the adaptive metric, or -1
	ck       *checkpointWriter // nil when not checkpointing

	mu         sync.Mutex
	collectors []*collector
	records    map[int]checkpointRecord // final fold record per finished cell
	ready      map[int]*CellResult      // finished cells awaiting ordered emission
	emitNext   int
	result     *Result
	cellsDone  int
	err        error
	errOrder   int
	aborted    bool
}

// Run executes the spec and streams finished cells to the sinks in
// enumeration order. It returns once every cell has completed, the
// context is canceled, or a replication fails; the first error in
// (cell, replication) order wins, regardless of worker count. It is a
// thin wrapper over the job API: Plan + Job.Run.
func Run(ctx context.Context, spec Spec, sinks ...Sink) (*Result, error) {
	return runWrapped(ctx, spec, RunOpts{Sinks: sinks})
}

// RunCheckpointed executes the spec like Run while persisting each
// cell's fold state (the seed-ordered Welford accumulators and the
// next-replication counter) to path as JSONL after every completed
// replication. An interrupted run — error, crash, or context
// cancellation — leaves a checkpoint that Resume can continue from.
// An existing file at path is truncated.
func RunCheckpointed(ctx context.Context, spec Spec, path string, sinks ...Sink) (*Result, error) {
	if path == "" {
		return nil, fmt.Errorf("sweep: RunCheckpointed needs a checkpoint path")
	}
	return runWrapped(ctx, spec, RunOpts{Checkpoint: path, Sinks: sinks})
}

// Resume continues an interrupted checkpointed sweep. The spec must
// structurally match the one the checkpoint was written for (same
// cells, metrics, replication protocol — enforced by a fingerprint in
// the checkpoint header); completed work is skipped, partially folded
// cells continue at their next replication, and the sinks receive
// every cell again in enumeration order, so the final output is
// byte-identical to an uninterrupted run of the same spec. The
// checkpoint keeps extending as the resumed sweep progresses.
func Resume(ctx context.Context, spec Spec, path string, sinks ...Sink) (*Result, error) {
	if path == "" {
		return nil, fmt.Errorf("sweep: Resume needs a checkpoint path")
	}
	return runWrapped(ctx, spec, RunOpts{Checkpoint: path, Resume: true, Sinks: sinks})
}

func runWrapped(ctx context.Context, spec Spec, opts RunOpts) (*Result, error) {
	j, err := Plan(spec)
	if err != nil {
		return nil, err
	}
	// The wrappers return only the Result, so the engine is told not
	// to retain the per-cell fold records a mergeable Partial carries.
	p, err := j.run(ctx, opts, false)
	if err != nil {
		return nil, err
	}
	return p.Result(), nil
}

// RunOpts configures one Job.Run.
type RunOpts struct {
	// Checkpoint, when non-empty, persists per-cell fold state to this
	// JSONL file after every completed replication; for a shard, the
	// finished file is its mergeable artifact (see LoadPartial).
	Checkpoint string
	// Resume continues from the Checkpoint file instead of truncating
	// it; the checkpoint must carry this job's plan fingerprint and
	// shard coordinates.
	Resume bool
	// Sinks receive this job's cells in enumeration order.
	Sinks []Sink
	// Progress, when non-nil, is called after every completed
	// replication and cell, in addition to the Spec's own Progress
	// hook and under the same constraints (engine lock held — keep it
	// fast). Totals are job-local: a shard reports its own cells.
	Progress func(Progress)
}

// Run executes the job's cells and streams them to the sinks in
// enumeration order, exactly as the spec-level Run does for the whole
// plan: same seeds, same seed-ordered folds, same adaptive stop
// decisions, and cell indices that are global to the plan, so a
// shard's output rows are identical to the corresponding rows of an
// unsharded run. On success the returned Partial carries every cell's
// final fold record, ready for Merge.
func (j *Job) Run(ctx context.Context, opts RunOpts) (*Partial, error) {
	return j.run(ctx, opts, true)
}

// run executes the job; keepRecords selects whether each finished
// cell's fold snapshot is retained for the Partial — the job API needs
// them for in-process merging, the classic Run/RunCheckpointed/Resume
// wrappers drop them, so retaining there would only hold an extra copy
// of every cell's accumulator state for the length of the sweep.
func (j *Job) run(ctx context.Context, opts RunOpts, keepRecords bool) (*Partial, error) {
	if opts.Resume && opts.Checkpoint == "" {
		return nil, fmt.Errorf("sweep: Resume needs a checkpoint path")
	}
	if j.spec.RepShards > 1 && opts.Checkpoint != "" {
		// The checkpoint format records one fold frontier per cell; a
		// sharded fold has one per shard, so a resumed run could not
		// reconstruct the mid-cell state bit-exactly.
		return nil, fmt.Errorf("sweep: in-cell replication sharding (RepShards=%d) is incompatible with checkpointing",
			j.spec.RepShards)
	}
	sp := &j.spec
	defs := j.defs
	sinks := opts.Sinks
	result := &Result{Skipped: j.skipped}

	// Open the checkpoint before the sinks: a stale or corrupt
	// checkpoint must fail the resume before any sink writes a header.
	var restored map[int]checkpointRecord
	var ck *checkpointWriter
	if opts.Checkpoint != "" {
		var err error
		if opts.Resume {
			var validLen int64
			if restored, validLen, err = loadCheckpoint(opts.Checkpoint, j); err != nil {
				return nil, err
			}
			ck, err = appendCheckpoint(opts.Checkpoint, validLen)
		} else {
			ck, err = createCheckpoint(opts.Checkpoint, j.header())
		}
		if err != nil {
			return nil, err
		}
		defer ck.Close()
	}

	for _, s := range sinks {
		if err := s.Begin(sp, len(defs)); err != nil {
			return nil, fmt.Errorf("sweep: sink begin: %w", err)
		}
	}

	e := &engine{
		spec:       sp,
		defs:       defs,
		offset:     j.offset,
		sinks:      sinks,
		watch:      -1,
		ck:         ck,
		collectors: make([]*collector, len(defs)),
		ready:      make(map[int]*CellResult),
		result:     result,
	}
	if keepRecords {
		e.records = make(map[int]checkpointRecord, len(defs))
	}
	if sp.Progress != nil {
		e.progress = append(e.progress, sp.Progress)
	}
	if opts.Progress != nil {
		e.progress = append(e.progress, opts.Progress)
	}
	if sp.Adaptive != nil {
		for i, m := range sp.Metrics {
			if m.Name == sp.Adaptive.Metric {
				e.watch = i
				break
			}
		}
	}
	maxReps := sp.maxReps()
	startRep := make([]int, len(defs))
	for i := range e.collectors {
		c := sp.newCollector()
		if rec, ok := restored[i]; ok {
			c.restore(rec)
			if !rec.Stopped {
				// Re-evaluate the stopping rule on the restored prefix:
				// an uninterrupted run checks after every fold, so a
				// resumed one must stop at the same replication.
				e.adaptiveCheck(c)
			}
			result.Runs += rec.Next
		}
		startRep[i] = c.next
		e.collectors[i] = c
	}

	// Cells the checkpoint already completed are finalized and emitted
	// up front, before any worker starts.
	e.mu.Lock()
	for i, c := range e.collectors {
		if c.next == c.stop {
			if e.records != nil {
				e.records[i] = *snapshotRecord(i, c)
			}
			e.ready[i] = e.finalize(i, c)
			e.collectors[i] = nil
			e.cellsDone++
		}
	}
	e.emitReadyLocked()
	preErr := e.err
	e.mu.Unlock()
	if preErr != nil {
		return nil, preErr
	}

	workers := sp.Workers
	remaining := 0
	for i := range defs {
		remaining += maxReps - startRep[i]
	}
	if workers > remaining {
		workers = remaining
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				vals, err := e.runOne(j)
				e.deliver(j, vals, err)
			}
		}()
	}

	// Dispatch cells × replications in order; stop early on abort or
	// cancellation, and stop a cell's dispatch once the adaptive rule
	// froze its replication target. Workers run every job they receive,
	// so the lowest-ordered failing job is always executed and its
	// error wins.
	var ctxErr error
dispatch:
	for c := range defs {
		for r := startRep[c]; r < maxReps; r++ {
			if r >= e.cellStop(c) {
				break // adaptive stop: free the pool for later cells
			}
			select {
			case <-ctx.Done():
				ctxErr = ctx.Err()
				break dispatch
			case jobs <- job{cell: c, rep: r}:
			}
			if e.abortedNow() {
				break dispatch
			}
			// On a single-P runtime the unbuffered handoff between this
			// loop and a worker can ride the scheduler's run-next fast
			// path indefinitely, starving a sibling worker whose
			// finished replication is still undelivered; its cell's
			// fold — and with it abort detection, checkpointing, and
			// the pending buffer — stalls until dispatch ends. Yield so
			// every in-flight delivery lands between dispatches.
			runtime.Gosched()
		}
	}
	close(jobs)
	wg.Wait()

	if e.err != nil {
		return nil, e.err
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	if ck != nil {
		if err := ck.Close(); err != nil {
			return nil, fmt.Errorf("sweep: checkpoint close: %w", err)
		}
	}
	for _, s := range sinks {
		if err := s.End(result); err != nil {
			return nil, fmt.Errorf("sweep: sink end: %w", err)
		}
	}
	return &Partial{
		sweep: sp.Name, fp: j.fp,
		shard: j.shard, shards: j.shards,
		offset: j.offset, cells: len(defs),
		total: j.total, maxReps: maxReps,
		records: e.records, result: result,
	}, nil
}

// header is the checkpoint header this job writes: the plan
// fingerprint plus the job's shard coordinates.
func (j *Job) header() checkpointHeader {
	return checkpointHeader{
		Version:     checkpointVersion,
		Sweep:       j.spec.Name,
		Fingerprint: j.fp,
		Cells:       len(j.defs),
		MaxReps:     j.spec.maxReps(),
		Shard:       j.shard,
		Shards:      j.shards,
		Offset:      j.offset,
		TotalCells:  j.total,
	}
}

// newCollector allocates an empty collector shaped for the spec's
// metrics.
func (s *Spec) newCollector() *collector {
	c := &collector{
		stop:    s.maxReps(),
		pending: make(map[int]*runValues),
		scalars: make([]stats.Accumulator, len(s.Metrics)),
		vectors: newVectorAccs(s.Vectors),
	}
	if s.RepShards > 1 {
		m := s.maxReps()
		ns := s.RepShards
		if ns > m {
			ns = m // more shards than replications would only add empties
		}
		c.shards = make([]foldShard, ns)
		for i := range c.shards {
			lo := i * m / ns
			c.shards[i] = foldShard{
				next:    lo,
				hi:      (i + 1) * m / ns,
				scalars: make([]stats.Accumulator, len(s.Metrics)),
				vectors: newVectorAccs(s.Vectors),
			}
		}
	}
	return c
}

// shardFor maps a replication index to its fold shard. Shard ranges
// are contiguous and ascending, so the first shard whose upper bound
// exceeds rep owns it.
func (c *collector) shardFor(rep int) *foldShard {
	for i := range c.shards {
		if rep < c.shards[i].hi {
			return &c.shards[i]
		}
	}
	panic(fmt.Sprintf("sweep: replication %d beyond the last shard", rep))
}

// mergeShards combines the shard accumulators into the collector's
// cell accumulators in ascending shard order via the order-invariant
// stats.Accumulator.Merge. It runs exactly once, when the cell's last
// replication folds, so every downstream consumer (finalize, record
// snapshots) sees the same state it would after any other merge
// schedule.
func (c *collector) mergeShards() {
	for si := range c.shards {
		s := &c.shards[si]
		for i := range c.scalars {
			c.scalars[i].Merge(&s.scalars[i])
		}
		for i := range c.vectors {
			for k := range c.vectors[i] {
				c.vectors[i][k].Merge(&s.vectors[i][k])
			}
		}
	}
	c.shards = nil
}

// restore overwrites the collector's fold state with a checkpoint
// record's bit-exact snapshot.
func (c *collector) restore(rec checkpointRecord) {
	c.next = rec.Next
	for k := range c.scalars {
		c.scalars[k].Restore(rec.Scalars[k])
	}
	for k := range c.vectors {
		for j := range c.vectors[k] {
			c.vectors[k][j].Restore(rec.Vectors[k][j])
		}
	}
	if rec.Stopped {
		c.stop, c.stopReason = rec.Next, rec.Reason
	}
}

// cellStop reads a cell's current replication target.
func (e *engine) cellStop(cell int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	c := e.collectors[cell]
	if c == nil {
		return 0 // finished
	}
	return c.stop
}

// adaptiveCheck shrinks the collector's replication target to the
// folded count once the watched metric's confidence interval meets the
// relative target. It must run after every in-order fold (and once on
// restore) so the decision depends only on the folded prefix.
func (e *engine) adaptiveCheck(c *collector) {
	ad := e.spec.Adaptive
	if ad == nil || e.watch < 0 || c.next >= c.stop || c.next < ad.MinReps {
		return
	}
	if ad.converged(&c.scalars[e.watch]) {
		c.stop = c.next
		c.stopReason = fmt.Sprintf("adaptive: %s CI95 within %g of mean after %d replications",
			ad.Metric, ad.RelCI, c.next)
		for r := range c.pending {
			if r >= c.stop {
				delete(c.pending, r)
			}
		}
	}
}

// emitReadyLocked drains finished cells to the sinks in enumeration
// order and records adaptively stopped cells. Callers hold e.mu.
func (e *engine) emitReadyLocked() {
	for {
		cr, ok := e.ready[e.emitNext]
		if !ok {
			return
		}
		delete(e.ready, e.emitNext)
		for _, s := range e.sinks {
			if serr := s.Cell(cr); serr != nil && e.err == nil {
				e.err = fmt.Errorf("sweep: sink cell %d: %w", cr.Index, serr)
				e.aborted = true
				return
			}
		}
		if cr.StopReason != "" {
			e.result.Stopped = append(e.result.Stopped, StoppedCell{
				Point: cr.Point, Reps: cr.Reps, Reason: cr.StopReason,
			})
		}
		e.result.Cells = append(e.result.Cells, cr)
		e.emitNext++
	}
}

func (e *engine) abortedNow() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.aborted
}

// runOne executes a single replication of a single cell.
func (e *engine) runOne(j job) (*runValues, error) {
	sp := e.spec
	d := e.defs[j.cell]
	p := d.point
	seed := sp.BaseSeed + uint64(j.rep)

	// Construct the world: the declarative cell scenario materialized
	// from the replication's scenario stream, or the Spec's bespoke
	// generator. Options always derive from the cell scenario, so the
	// Fleets axis reaches the simulation on both paths.
	sc := sp.cellScenario(d)
	var scn *field.Scenario
	if sp.Scenario != nil {
		scn = sp.Scenario(p, ScenarioSource(seed))
	} else {
		var err error
		if scn, err = sc.Materialize(ScenarioSource(seed)); err != nil {
			return nil, fmt.Errorf("sweep: cell %v seed %d: %w", p, seed, err)
		}
	}
	opts := sc.PatrolOptions()
	opts.UseBattery = p.Battery
	if sp.Options != nil {
		sp.Options(p, &opts)
	}
	if d.variant.Options != nil {
		d.variant.Options(&opts)
	}

	// Dynamic world: resolve the scenario's declared event schedule,
	// then the Failures axis's kill draws, both from the dedicated
	// failure stream in that fixed order — the resolution is a pure
	// function of (cell, seed), so shards, worker counts, and cache
	// replays all see the same world. The axis handoff policy, when
	// the axis is enabled, wins over the scenario's.
	if sc.Events.Enabled() || d.failure.Enabled() {
		failSrc := FailureSource(seed)
		if sc.Events.Enabled() {
			evs, eerr := sc.Events.Resolve(scn, failSrc)
			if eerr != nil {
				return nil, fmt.Errorf("sweep: cell %v seed %d: %w", p, seed, eerr)
			}
			opts.Events = append(opts.Events, evs...)
			if opts.Handoff, eerr = sc.Events.Policy(); eerr != nil {
				return nil, fmt.Errorf("sweep: cell %v: %w", p, eerr)
			}
		}
		if d.failure.Enabled() {
			h := opts.Horizon
			if h == 0 {
				h = 100_000 // patrol.Options' default horizon
			}
			opts.Events = append(opts.Events,
				patrol.RandomFailures(scn.NumMules(), d.failure.Rate, h, failSrc)...)
			pol, perr := d.failure.Policy()
			if perr != nil {
				return nil, fmt.Errorf("sweep: cell %v: %w", p, perr)
			}
			opts.Handoff = pol
		}
	}

	// Attach the scenario's workload overlays as peer observers. The
	// axis workload sits last (cellScenario appends it); Env.Data
	// points at it when the axis is on, else at the first declared
	// overlay. Each workload builds from its own sub-stream of the
	// replication's workload source (matching scenario.Run), so burst
	// arrivals are deterministic per seed.
	var data *wsn.Network
	if len(sc.Workloads) > 0 {
		wlSrc := WorkloadSource(seed)
		nets := make([]*wsn.Network, len(sc.Workloads))
		for i, w := range sc.Workloads {
			nets[i] = w.Build(scn, wlSrc.Split())
			opts.Observers = append(opts.Observers, nets[i])
		}
		if d.workload.Enabled() {
			data = nets[len(nets)-1]
		} else {
			data = nets[0]
		}
	}

	alg := d.variant.Make(AlgorithmSource(seed))
	if d.partition.Enabled() {
		cfg, cerr := d.partition.Config()
		if cerr == nil {
			alg, cerr = patrol.Partitioned(alg, cfg, PartitionSource(seed))
		}
		if cerr != nil {
			return nil, fmt.Errorf("sweep: cell %v: %w", p, cerr)
		}
	}
	res, err := patrol.Run(scn, alg, opts, AlgorithmSource(seed))
	if err != nil {
		return nil, fmt.Errorf("sweep: cell %v seed %d: %w", p, seed, err)
	}

	env := Env{Point: p, Variant: d.variant, Seed: seed, Scenario: scn, Result: res, Fleet: sc.Fleet, Data: data}
	vals := &runValues{scalars: make([]float64, len(sp.Metrics))}
	for i, m := range sp.Metrics {
		vals.scalars[i] = m.Fn(env)
	}
	if len(sp.Vectors) > 0 {
		vals.vectors = make([][]float64, len(sp.Vectors))
		for i, vm := range sp.Vectors {
			v := vm.Fn(env)
			if len(v) > vm.Len {
				v = v[:vm.Len]
			}
			vals.vectors[i] = v
		}
	}
	return vals, nil
}

// deliver folds one replication's values into its cell (under the
// engine lock), then persists the cell's new fold state outside it, so
// workers never serialize on checkpoint I/O.
func (e *engine) deliver(j job, vals *runValues, err error) {
	rec := e.fold(j, vals, err)
	if rec == nil {
		return
	}
	if werr := e.ck.write(rec); werr != nil {
		e.mu.Lock()
		if e.err == nil {
			e.err = fmt.Errorf("sweep: checkpoint: %w", werr)
		}
		e.aborted = true
		e.mu.Unlock()
	}
}

// fold incorporates one replication's outcome into its cell, in seed
// order, emits finished cells to the sinks in enumeration order, and
// returns the snapshot to checkpoint (nil when nothing advanced or
// checkpointing is off).
//
// Errors park in pending like values and surface only when the fold
// reaches their replication: whether a failing replication aborts the
// sweep is decided by its seed-order position — never by delivery
// timing — so a failure on a replication beyond a cell's adaptive stop
// is discarded identically at any worker count, and the lowest-ordered
// failing replication always wins. That requires draining to continue
// after an abort (a lower-ordered parked error may still be waiting on
// its predecessors, which were all dispatched before the abort).
func (e *engine) fold(j job, vals *runValues, err error) *checkpointRecord {
	e.mu.Lock()
	defer e.mu.Unlock()

	c := e.collectors[j.cell]
	if c == nil || j.rep >= c.stop {
		// Beyond the cell's (possibly adaptively frozen) replication
		// target: discard, outcome and error alike.
		return nil
	}
	if vals == nil {
		vals = &runValues{}
	}
	vals.err = err
	c.pending[j.rep] = vals
	advanced := false
	if c.shards == nil {
		for {
			v, ok := c.pending[c.next]
			if !ok {
				break
			}
			delete(c.pending, c.next)
			if v.err != nil {
				order := j.cell*e.spec.maxReps() + c.next
				if e.err == nil || order < e.errOrder {
					e.err, e.errOrder = v.err, order
				}
				e.aborted = true
				return nil // freeze the cell at its failing replication
			}
			c.fold(v)
			c.next++
			e.result.Runs++
			advanced = true
			// The stopping rule sees exactly the folded prefix, so the
			// decision point is deterministic.
			e.adaptiveCheck(c)
		}
	} else {
		// Sharded fold: only this replication's shard can advance, and
		// it drains its own seed-ordered frontier. An error freezes its
		// shard (and with it the cell, which can no longer complete) but
		// sibling shards keep draining on later deliveries, so a
		// lower-ordered parked error still surfaces and min-order wins
		// exactly as in the unsharded fold. Adaptive is rejected at
		// validation when sharding, so no stopping-rule check runs here.
		s := c.shardFor(j.rep)
		// The bound matters: pending is shared across shards, so the
		// next shard's first replication may be parked right at s.hi
		// and must not fold here.
		for s.next < s.hi {
			v, ok := c.pending[s.next]
			if !ok {
				break
			}
			delete(c.pending, s.next)
			if v.err != nil {
				order := j.cell*e.spec.maxReps() + s.next
				if e.err == nil || order < e.errOrder {
					e.err, e.errOrder = v.err, order
				}
				e.aborted = true
				return nil
			}
			s.fold(v)
			s.next++
			c.next++
			e.result.Runs++
			advanced = true
		}
	}
	if e.aborted {
		// The drain above still ran — a parked lower-ordered error must
		// be able to surface — but the doomed result is not emitted or
		// checkpointed further.
		return nil
	}
	var rec *checkpointRecord
	if advanced && e.ck != nil {
		rec = snapshotRecord(j.cell, c)
	}

	if c.next == c.stop {
		if c.shards != nil {
			// Every shard has drained its full range; combine them into
			// the cell accumulators before anything snapshots or
			// finalizes the collector.
			c.mergeShards()
		}
		if e.records != nil {
			// The checkpoint snapshot above, when taken, is already the
			// cell's final state — don't deep-copy the accumulators
			// twice.
			final := rec
			if final == nil {
				final = snapshotRecord(j.cell, c)
			}
			e.records[j.cell] = *final
		}
		e.ready[j.cell] = e.finalize(j.cell, c)
		e.collectors[j.cell] = nil
		e.emitReadyLocked()
		if e.aborted {
			return rec
		}
		e.cellsDone++
	}

	for _, fn := range e.progress {
		fn(Progress{
			CellsDone:  e.cellsDone,
			CellsTotal: len(e.defs),
			RunsDone:   e.result.Runs,
			RunsTotal:  len(e.defs) * e.spec.maxReps(),
		})
	}
	return rec
}

func (c *collector) fold(v *runValues) {
	foldValues(c.scalars, c.vectors, v)
}

func (s *foldShard) fold(v *runValues) {
	foldValues(s.scalars, s.vectors, v)
}

func foldValues(scalars []stats.Accumulator, vectors [][]stats.Accumulator, v *runValues) {
	for i := range v.scalars {
		scalars[i].Add(v.scalars[i])
	}
	for i, vec := range v.vectors {
		for k, x := range vec {
			vectors[i][k].Add(x)
		}
	}
}

// finalize builds the cell's result under the engine lock; the index
// is global to the plan, so a shard's cells carry the same indices an
// unsharded run would give them.
func (e *engine) finalize(cell int, c *collector) *CellResult {
	return finalizeCell(e.spec, e.offset+cell, e.defs[cell].point, c)
}

// finalizeCell renders a finished collector as a CellResult; it is
// shared by the engine and by Merge, which rebuilds collectors from
// shard records.
func finalizeCell(sp *Spec, index int, p Point, c *collector) *CellResult {
	cr := &CellResult{
		Index: index, Point: p,
		Reps: c.next, StopReason: c.stopReason,
	}
	for i, m := range sp.Metrics {
		a := &c.scalars[i]
		cr.Metrics = append(cr.Metrics, MetricSummary{
			Name: m.Name, N: a.N(),
			Mean: a.Mean(), SD: a.SD(), CI95: a.CI95(),
			Min: a.Min(), Max: a.Max(),
		})
	}
	for i, vm := range sp.Vectors {
		accs := c.vectors[i]
		used := 0
		for k := range accs {
			if accs[k].N() > 0 {
				used = k + 1
			}
		}
		vs := VectorSummary{Name: vm.Name, N: make([]int, used), Mean: make([]float64, used)}
		for k := 0; k < used; k++ {
			vs.N[k] = accs[k].N()
			vs.Mean[k] = accs[k].Mean()
		}
		cr.Vectors = append(cr.Vectors, vs)
	}
	return cr
}

func newVectorAccs(vms []VectorMetric) [][]stats.Accumulator {
	if len(vms) == 0 {
		return nil
	}
	out := make([][]stats.Accumulator, len(vms))
	for i, vm := range vms {
		out[i] = make([]stats.Accumulator, vm.Len)
	}
	return out
}
