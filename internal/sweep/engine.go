package sweep

import (
	"context"
	"fmt"
	"sync"

	"tctp/internal/field"
	"tctp/internal/patrol"
	"tctp/internal/stats"
	"tctp/internal/wsn"
)

// MetricSummary is the streaming aggregate of one scalar metric over a
// cell's replications.
type MetricSummary struct {
	Name string  `json:"name"`
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	SD   float64 `json:"sd"`
	CI95 float64 `json:"ci95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// VectorSummary is the elementwise aggregate of one vector metric.
// Mean is trimmed to the longest vector any replication produced; N
// counts the replications reaching each position.
type VectorSummary struct {
	Name string    `json:"name"`
	N    []int     `json:"n"`
	Mean []float64 `json:"mean"`
}

// CellResult is one finished cell: its parameter point and the
// aggregated metrics.
type CellResult struct {
	// Index is the cell's position in the spec's enumeration order,
	// counting executed (non-skipped) cells only.
	Index   int             `json:"cell"`
	Point   Point           `json:"point"`
	Metrics []MetricSummary `json:"metrics,omitempty"`
	Vectors []VectorSummary `json:"vectors,omitempty"`
}

// Metric returns the named metric summary, or a zero summary if the
// cell does not carry it.
func (c *CellResult) Metric(name string) MetricSummary {
	for _, m := range c.Metrics {
		if m.Name == name {
			return m
		}
	}
	return MetricSummary{}
}

// Vector returns the named vector summary, or a zero summary.
func (c *CellResult) Vector(name string) VectorSummary {
	for _, v := range c.Vectors {
		if v.Name == name {
			return v
		}
	}
	return VectorSummary{}
}

// SkippedCell records a cell excluded by the Spec's Skip hook.
type SkippedCell struct {
	Point  Point  `json:"point"`
	Reason string `json:"reason"`
}

// Result is a finished sweep.
type Result struct {
	// Cells holds the executed cells in enumeration order.
	Cells []*CellResult
	// Skipped holds the excluded cells in enumeration order.
	Skipped []SkippedCell
	// Runs is the number of replications executed.
	Runs int
}

// Cell returns the executed cell whose point equals p, or nil.
func (r *Result) Cell(p Point) *CellResult {
	for _, c := range r.Cells {
		if c.Point == p {
			return c
		}
	}
	return nil
}

// Progress is a snapshot handed to the Spec's Progress callback.
type Progress struct {
	CellsDone, CellsTotal int
	RunsDone, RunsTotal   int
}

// collector streams one cell's replications into accumulators. The
// fold happens strictly in seed order: results arriving early are
// parked in pending until their predecessors land, which keeps the
// floating-point fold order — and therefore the output bits —
// independent of the worker count. Pending never holds more than the
// number of in-flight workers.
type collector struct {
	next    int
	pending map[int]*runValues
	scalars []stats.Accumulator
	vectors [][]stats.Accumulator
}

// runValues is the raw output of one replication.
type runValues struct {
	scalars []float64
	vectors [][]float64
}

type job struct {
	cell, rep int
}

// engine is the shared state of one Run call.
type engine struct {
	spec  *Spec
	defs  []cellDef
	sinks []Sink

	mu         sync.Mutex
	collectors []*collector
	ready      map[int]*CellResult // finished cells awaiting ordered emission
	emitNext   int
	result     *Result
	cellsDone  int
	err        error
	errOrder   int
	aborted    bool
}

// Run executes the spec and streams finished cells to the sinks in
// enumeration order. It returns once every cell has completed, the
// context is canceled, or a replication fails; the first error in
// (cell, replication) order wins, regardless of worker count.
func Run(ctx context.Context, spec Spec, sinks ...Sink) (*Result, error) {
	sp := spec.withDefaults()
	if err := sp.validate(); err != nil {
		return nil, err
	}

	all := sp.cells()
	result := &Result{}
	defs := make([]cellDef, 0, len(all))
	for _, d := range all {
		if sp.Skip != nil {
			if reason := sp.Skip(d.point); reason != "" {
				result.Skipped = append(result.Skipped, SkippedCell{Point: d.point, Reason: reason})
				continue
			}
		}
		defs = append(defs, d)
	}

	for _, s := range sinks {
		if err := s.Begin(&sp, len(defs)); err != nil {
			return nil, fmt.Errorf("sweep: sink begin: %w", err)
		}
	}

	e := &engine{
		spec:       &sp,
		defs:       defs,
		sinks:      sinks,
		collectors: make([]*collector, len(defs)),
		ready:      make(map[int]*CellResult),
		result:     result,
	}
	for i := range e.collectors {
		e.collectors[i] = &collector{
			pending: make(map[int]*runValues),
			scalars: make([]stats.Accumulator, len(sp.Metrics)),
			vectors: newVectorAccs(sp.Vectors),
		}
	}

	workers := sp.Workers
	if total := len(defs) * sp.Seeds; workers > total {
		workers = total
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				vals, err := e.runOne(j)
				e.deliver(j, vals, err)
			}
		}()
	}

	// Dispatch cells × replications in order; stop early on abort or
	// cancellation. Workers run every job they receive, so the
	// lowest-ordered failing job is always executed and its error wins.
	var ctxErr error
dispatch:
	for c := range defs {
		for r := 0; r < sp.Seeds; r++ {
			select {
			case <-ctx.Done():
				ctxErr = ctx.Err()
				break dispatch
			case jobs <- job{cell: c, rep: r}:
			}
			if e.abortedNow() {
				break dispatch
			}
		}
	}
	close(jobs)
	wg.Wait()

	if e.err != nil {
		return nil, e.err
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	for _, s := range sinks {
		if err := s.End(result); err != nil {
			return nil, fmt.Errorf("sweep: sink end: %w", err)
		}
	}
	return result, nil
}

func (e *engine) abortedNow() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.aborted
}

// runOne executes a single replication of a single cell.
func (e *engine) runOne(j job) (*runValues, error) {
	sp := e.spec
	d := e.defs[j.cell]
	p := d.point
	seed := sp.BaseSeed + uint64(j.rep)

	// Construct the world: the declarative cell scenario materialized
	// from the replication's scenario stream, or the Spec's bespoke
	// generator. Options always derive from the cell scenario, so the
	// Fleets axis reaches the simulation on both paths.
	sc := sp.cellScenario(d)
	var scn *field.Scenario
	if sp.Scenario != nil {
		scn = sp.Scenario(p, ScenarioSource(seed))
	} else {
		var err error
		if scn, err = sc.Materialize(ScenarioSource(seed)); err != nil {
			return nil, fmt.Errorf("sweep: cell %v seed %d: %w", p, seed, err)
		}
	}
	opts := sc.PatrolOptions()
	opts.UseBattery = p.Battery
	if sp.Options != nil {
		sp.Options(p, &opts)
	}
	if d.variant.Options != nil {
		d.variant.Options(&opts)
	}

	// Attach the scenario's workload overlays as peer observers. The
	// axis workload sits last (cellScenario appends it); Env.Data
	// points at it when the axis is on, else at the first declared
	// overlay.
	var data *wsn.Network
	if len(sc.Workloads) > 0 {
		nets := make([]*wsn.Network, len(sc.Workloads))
		for i, w := range sc.Workloads {
			nets[i] = wsn.New(scn, w.Data)
			opts.Observers = append(opts.Observers, nets[i])
		}
		if d.workload.Enabled() {
			data = nets[len(nets)-1]
		} else {
			data = nets[0]
		}
	}

	alg := d.variant.Make(AlgorithmSource(seed))
	res, err := patrol.Run(scn, alg, opts, AlgorithmSource(seed))
	if err != nil {
		return nil, fmt.Errorf("sweep: cell %v seed %d: %w", p, seed, err)
	}

	env := Env{Point: p, Variant: d.variant, Seed: seed, Scenario: scn, Result: res, Data: data}
	vals := &runValues{scalars: make([]float64, len(sp.Metrics))}
	for i, m := range sp.Metrics {
		vals.scalars[i] = m.Fn(env)
	}
	if len(sp.Vectors) > 0 {
		vals.vectors = make([][]float64, len(sp.Vectors))
		for i, vm := range sp.Vectors {
			v := vm.Fn(env)
			if len(v) > vm.Len {
				v = v[:vm.Len]
			}
			vals.vectors[i] = v
		}
	}
	return vals, nil
}

// deliver folds one replication's values into its cell, in seed order,
// and emits finished cells to the sinks in enumeration order.
func (e *engine) deliver(j job, vals *runValues, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	order := j.cell*e.spec.Seeds + j.rep
	if err != nil {
		if e.err == nil || order < e.errOrder {
			e.err, e.errOrder = err, order
		}
		e.aborted = true
		return
	}
	if e.aborted {
		return // result set is already doomed; don't bother folding
	}

	c := e.collectors[j.cell]
	c.pending[j.rep] = vals
	for {
		v, ok := c.pending[c.next]
		if !ok {
			break
		}
		delete(c.pending, c.next)
		c.fold(v)
		c.next++
	}
	e.result.Runs++

	if c.next == e.spec.Seeds {
		e.ready[j.cell] = e.finalize(j.cell, c)
		e.collectors[j.cell] = nil
		for {
			cr, ok := e.ready[e.emitNext]
			if !ok {
				break
			}
			delete(e.ready, e.emitNext)
			for _, s := range e.sinks {
				if serr := s.Cell(cr); serr != nil && e.err == nil {
					e.err = fmt.Errorf("sweep: sink cell %d: %w", cr.Index, serr)
					e.aborted = true
					return
				}
			}
			e.result.Cells = append(e.result.Cells, cr)
			e.emitNext++
		}
		e.cellsDone++
	}

	if e.spec.Progress != nil {
		e.spec.Progress(Progress{
			CellsDone:  e.cellsDone,
			CellsTotal: len(e.defs),
			RunsDone:   e.result.Runs,
			RunsTotal:  len(e.defs) * e.spec.Seeds,
		})
	}
}

func (c *collector) fold(v *runValues) {
	for i := range v.scalars {
		c.scalars[i].Add(v.scalars[i])
	}
	for i, vec := range v.vectors {
		for k, x := range vec {
			c.vectors[i][k].Add(x)
		}
	}
}

func (e *engine) finalize(cell int, c *collector) *CellResult {
	sp := e.spec
	cr := &CellResult{Index: cell, Point: e.defs[cell].point}
	for i, m := range sp.Metrics {
		a := &c.scalars[i]
		cr.Metrics = append(cr.Metrics, MetricSummary{
			Name: m.Name, N: a.N(),
			Mean: a.Mean(), SD: a.SD(), CI95: a.CI95(),
			Min: a.Min(), Max: a.Max(),
		})
	}
	for i, vm := range sp.Vectors {
		accs := c.vectors[i]
		used := 0
		for k := range accs {
			if accs[k].N() > 0 {
				used = k + 1
			}
		}
		vs := VectorSummary{Name: vm.Name, N: make([]int, used), Mean: make([]float64, used)}
		for k := 0; k < used; k++ {
			vs.N[k] = accs[k].N()
			vs.Mean[k] = accs[k].Mean()
		}
		cr.Vectors = append(cr.Vectors, vs)
	}
	return cr
}

func newVectorAccs(vms []VectorMetric) [][]stats.Accumulator {
	if len(vms) == 0 {
		return nil
	}
	out := make([][]stats.Accumulator, len(vms))
	for i, vm := range vms {
		out[i] = make([]stats.Accumulator, vm.Len)
	}
	return out
}
