package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"tctp/internal/baseline"
	"tctp/internal/core"
	"tctp/internal/field"
	"tctp/internal/patrol"
	"tctp/internal/scenario"
	"tctp/internal/xrand"
)

// tinySpec is a fast multi-cell spec exercising two axes and two
// algorithm variants against the real simulator.
func tinySpec() Spec {
	return Spec{
		Name: "tiny",
		Algorithms: []Variant{
			Algo("btctp", patrol.Planned(&core.BTCTP{})),
			Algo("random", patrol.Online(&baseline.Random{})),
		},
		Targets:  []int{6, 8},
		Mules:    []int{2},
		Horizons: []float64{4_000},
		Metrics:  []Metric{AvgDCDT(), AvgSD(), MaxInterval()},
		Seeds:    3,
	}
}

func TestRunBasic(t *testing.T) {
	res, err := Run(context.Background(), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("%d cells", len(res.Cells))
	}
	if res.Runs != 4*3 {
		t.Fatalf("%d runs", res.Runs)
	}
	// Cells arrive in enumeration order: algorithm outermost, then
	// targets.
	wantOrder := []struct {
		alg     string
		targets int
	}{
		{"btctp", 6}, {"btctp", 8}, {"random", 6}, {"random", 8},
	}
	for i, w := range wantOrder {
		c := res.Cells[i]
		if c.Index != i || c.Point.Algorithm != w.alg || c.Point.Targets != w.targets {
			t.Fatalf("cell %d = %v", i, c.Point)
		}
		for _, m := range c.Metrics {
			if m.N != 3 {
				t.Fatalf("cell %d metric %s has n=%d", i, m.Name, m.N)
			}
		}
		if dcdt := c.Metric("avg_dcdt_s"); dcdt.Mean <= 0 {
			t.Fatalf("cell %d avg_dcdt_s mean %v", i, dcdt.Mean)
		}
	}
	// B-TCTP's steady-state SD is exactly zero; Random's is not.
	if sd := res.Cells[0].Metric("avg_sd_s"); sd.Mean > 1e-9 {
		t.Fatalf("btctp SD %v", sd.Mean)
	}
	if sd := res.Cells[2].Metric("avg_sd_s"); sd.Mean < 1 {
		t.Fatalf("random SD %v suspiciously low", sd.Mean)
	}
}

// The engine's core guarantee: bit-identical aggregates regardless of
// worker count, including the min/max/CI95 moments and sink bytes.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	outputs := make([]string, 0, 3)
	results := make([]*Result, 0, 3)
	for _, workers := range []int{1, 4, 8} {
		spec := tinySpec()
		spec.Workers = workers
		spec.Seeds = 5
		var buf bytes.Buffer
		res, err := Run(context.Background(), spec, CSV(&buf), JSONL(&buf))
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, buf.String())
		results = append(results, res)
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("sink bytes differ between workers=1 and the %d-th variant:\n%s\nvs\n%s",
				i, outputs[0], outputs[i])
		}
	}
	for i := 1; i < len(results); i++ {
		for c := range results[0].Cells {
			a, b := results[0].Cells[c], results[i].Cells[c]
			for m := range a.Metrics {
				if a.Metrics[m] != b.Metrics[m] {
					t.Fatalf("cell %d metric %v differs: %+v vs %+v",
						c, a.Metrics[m].Name, a.Metrics[m], b.Metrics[m])
				}
			}
		}
	}
}

func TestRunSkip(t *testing.T) {
	spec := tinySpec()
	spec.Mules = []int{2, 12} // 12 mules > targets+1 for both target counts
	spec.Skip = func(p Point) string {
		if p.Mules > p.Targets+1 {
			return "more mules than targets+1"
		}
		return ""
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 || len(res.Skipped) != 4 {
		t.Fatalf("cells=%d skipped=%d", len(res.Cells), len(res.Skipped))
	}
	for _, sk := range res.Skipped {
		if sk.Point.Mules != 12 || sk.Reason == "" {
			t.Fatalf("skipped %+v", sk)
		}
	}
}

func TestRunVectorMetric(t *testing.T) {
	spec := Spec{
		Name:       "curve",
		Algorithms: []Variant{Algo("btctp", patrol.Planned(&core.BTCTP{}))},
		Targets:    []int{6},
		Mules:      []int{2},
		Horizons:   []float64{8_000},
		Vectors:    []VectorMetric{DCDTCurve(10)},
		Seeds:      2,
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	vs := res.Cells[0].Vector("dcdt_curve")
	if len(vs.Mean) == 0 || len(vs.Mean) > 10 {
		t.Fatalf("curve length %d", len(vs.Mean))
	}
	for k, n := range vs.N {
		if n == 0 {
			t.Fatalf("position %d has no samples yet is inside the trimmed mean", k)
		}
	}
}

func TestRunError(t *testing.T) {
	spec := tinySpec()
	// An invalid scenario (no mules) fails inside patrol.Run.
	spec.Scenario = func(p Point, src *xrand.Source) *field.Scenario {
		s := field.Generate(field.Config{NumTargets: p.Targets, NumMules: p.Mules}, src)
		if p.Targets == 8 {
			s.MuleStarts = nil
		}
		return s
	}
	_, err := Run(context.Background(), spec)
	if err == nil {
		t.Fatal("invalid cell accepted")
	}
	// The reported error names the first failing cell in enumeration
	// order (btctp, targets=8), not whichever worker failed first.
	if !strings.Contains(err.Error(), "targets=8") || !strings.Contains(err.Error(), "alg=btctp") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	spec := tinySpec()
	spec.Seeds = 50
	n := 0
	spec.Progress = func(Progress) {
		n++
		if n == 3 {
			cancel()
		}
	}
	_, err := Run(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	cases := []Spec{
		{},                                   // no variants
		{Algorithms: []Variant{{Name: "x"}}}, // no Make
		{Algorithms: []Variant{Algo("x", patrol.Planned(&core.BTCTP{}))}}, // no metrics
		{Algorithms: []Variant{Algo("x", patrol.Planned(&core.BTCTP{}))},
			Metrics: []Metric{AvgDCDT()}, VIPs: []int{2}, VIPWeights: []int{1}}, // weight < 2
		{Algorithms: []Variant{Algo("x", patrol.Planned(&core.BTCTP{}))},
			Vectors: []VectorMetric{{Name: "v", Len: 0}}}, // empty vector
		{Algorithms: []Variant{Algo("x", patrol.Planned(&core.BTCTP{}))},
			Metrics: []Metric{AvgDCDT()}, Workers: -1}, // would deadlock with no workers
	}
	for i, spec := range cases {
		if _, err := Run(context.Background(), spec); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestRunProgress(t *testing.T) {
	spec := tinySpec()
	var last Progress
	calls := 0
	spec.Progress = func(p Progress) { last = p; calls++ }
	if _, err := Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if calls != 12 {
		t.Fatalf("%d progress calls", calls)
	}
	want := Progress{CellsDone: 4, CellsTotal: 4, RunsDone: 12, RunsTotal: 12}
	if last != want {
		t.Fatalf("final progress %+v", last)
	}
}

func TestSeedSourcesMatchExperimentScheme(t *testing.T) {
	// The contract documented in the README: stream 1 of seed s is the
	// scenario stream, stream 2 the algorithm stream.
	for _, seed := range []uint64{0, 1, 42} {
		root := xrand.New(seed)
		want1 := root.Split().Uint64()
		want2 := root.Split().Uint64()
		if got := ScenarioSource(seed).Uint64(); got != want1 {
			t.Fatalf("seed %d: scenario stream = %d, want %d", seed, got, want1)
		}
		if got := AlgorithmSource(seed).Uint64(); got != want2 {
			t.Fatalf("seed %d: algorithm stream = %d, want %d", seed, got, want2)
		}
	}
}

func TestVariantHooks(t *testing.T) {
	// Variant Options and Tag reach the run and the metric functions.
	spec := Spec{
		Name: "hooks",
		Algorithms: []Variant{
			{
				Name: "nosync", Tag: 7,
				Make:    func(*xrand.Source) patrol.Algorithm { return patrol.Planned(&core.BTCTP{}) },
				Options: func(o *patrol.Options) { o.NoSynchronizedStart = true },
			},
		},
		Targets:  []int{5},
		Mules:    []int{2},
		Horizons: []float64{3_000},
		Metrics: []Metric{
			{Name: "tag", Fn: func(e Env) float64 { return e.Variant.Tag }},
			{Name: "patrol_start", Fn: func(e Env) float64 { return e.Result.PatrolStart }},
		},
		Seeds: 2,
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Cells[0].Metric("tag").Mean; got != 7 {
		t.Fatalf("tag = %v", got)
	}
	// NoSynchronizedStart zeroes the patrol start.
	if got := res.Cells[0].Metric("patrol_start").Mean; got != 0 {
		t.Fatalf("patrol start = %v despite NoSynchronizedStart", got)
	}
}

func TestObserverOptionsHook(t *testing.T) {
	// The Options hook can attach per-replication observers; with one
	// worker they accumulate exactly what the built-in recorder sees.
	visits := 0
	spec := Spec{
		Name:       "observers",
		Algorithms: []Variant{Algo("btctp", patrol.Planned(&core.BTCTP{}))},
		Targets:    []int{5},
		Mules:      []int{2},
		Horizons:   []float64{3_000},
		Workers:    1,
		Options: func(p Point, o *patrol.Options) {
			o.Observers = append(o.Observers, patrol.ObserverFuncs{
				Visit: func(_, _ int, _ float64) { visits++ },
			})
		},
		Metrics: []Metric{TotalVisits()},
		Seeds:   2,
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Cells[0].Metric("visits")
	if float64(visits) != want.Mean*float64(want.N) {
		t.Fatalf("observer saw %d visits, recorder total %v", visits, want.Mean*float64(want.N))
	}
}

func TestWorkloadAxis(t *testing.T) {
	// Workload on/off as a first-class axis: the off cell reports zero
	// delivery, the on cell delivers packets, and the interval metrics
	// are identical — the workload observes, it does not steer.
	spec := Spec{
		Name:       "workloads",
		Algorithms: []Variant{Algo("btctp", patrol.Planned(&core.BTCTP{}))},
		Targets:    []int{6},
		Mules:      []int{2},
		Horizons:   []float64{20_000},
		Workloads: []scenario.Workload{
			{}, // none
			scenario.Packets(),
		},
		Metrics: []Metric{AvgDCDT(), Delivered(), OnTimePct()},
		Seeds:   2,
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("%d cells", len(res.Cells))
	}
	off, on := res.Cells[0], res.Cells[1]
	if off.Point.Workload != "" || on.Point.Workload != "packets" {
		t.Fatalf("workload coordinates %q %q", off.Point.Workload, on.Point.Workload)
	}
	if off.Metric("delivered").Mean != 0 {
		t.Fatalf("workload-off cell delivered %v", off.Metric("delivered").Mean)
	}
	if on.Metric("delivered").Mean <= 0 {
		t.Fatal("workload-on cell delivered nothing")
	}
	if off.Metric("avg_dcdt_s") != on.Metric("avg_dcdt_s") {
		t.Fatalf("attaching the workload changed the interval metrics: %+v vs %+v",
			off.Metric("avg_dcdt_s"), on.Metric("avg_dcdt_s"))
	}
}

func TestFleetAxis(t *testing.T) {
	// Named fleets as the fleet dimension: a homogeneous and a
	// mixed-speed fleet of the same size.
	mixed, err := scenario.ParseFleet("1x1+1x4")
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		Name:       "fleets",
		Algorithms: []Variant{Algo("btctp", patrol.Planned(&core.BTCTP{}))},
		Targets:    []int{6},
		Fleets:     []scenario.Fleet{scenario.Homogeneous(2, 2), mixed},
		Horizons:   []float64{20_000},
		Metrics:    []Metric{AvgDCDT(), TotalVisits()},
		Seeds:      2,
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("%d cells", len(res.Cells))
	}
	homog, het := res.Cells[0], res.Cells[1]
	if homog.Point.Fleet != "2x2" || homog.Point.Speed != 2 || homog.Point.Mules != 2 {
		t.Fatalf("homogeneous point %+v", homog.Point)
	}
	if het.Point.Fleet != "1x1+1x4" || het.Point.Speed != 0 || het.Point.Mules != 2 {
		t.Fatalf("mixed point %+v", het.Point)
	}
	for _, c := range res.Cells {
		if c.Metric("visits").Mean <= 0 {
			t.Fatalf("cell %v collected nothing", c.Point)
		}
	}
	// Mixing the Fleets axis with Mules/Speeds is rejected.
	bad := spec
	bad.Mules = []int{2}
	if _, err := Run(context.Background(), bad); err == nil {
		t.Fatal("Fleets + Mules accepted")
	}
}

func TestFleetAxisBatteryKeepsCommonSpeed(t *testing.T) {
	// Per-mule batteries make a fleet heterogeneous for the options
	// path but do not mix speeds: the point still reports the shared
	// speed.
	f, err := scenario.ParseFleet("2x2@500000")
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		Name:       "battery-fleet",
		Algorithms: []Variant{Algo("btctp", patrol.Planned(&core.BTCTP{}))},
		Targets:    []int{5},
		Fleets:     []scenario.Fleet{f},
		Horizons:   []float64{5_000},
		Metrics:    []Metric{TotalVisits()},
		Seeds:      1,
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Cells[0].Point.Speed; got != 2 {
		t.Fatalf("uniform-speed battery fleet reported speed %g", got)
	}
}

func TestFleetAxisReachesBespokeScenarios(t *testing.T) {
	// The Spec.Scenario escape hatch replaces generation, not the
	// fleet: per-mule speeds still reach the simulation.
	mixed, err := scenario.ParseFleet("1x1+1x4")
	if err != nil {
		t.Fatal(err)
	}
	configured := false
	spec := Spec{
		Name:       "bespoke",
		Algorithms: []Variant{Algo("btctp", patrol.Planned(&core.BTCTP{}))},
		Targets:    []int{6},
		Fleets:     []scenario.Fleet{mixed},
		Horizons:   []float64{10_000},
		Scenario: func(p Point, src *xrand.Source) *field.Scenario {
			return field.Generate(field.Config{NumTargets: p.Targets, NumMules: p.Mules}, src)
		},
		Configure: func(Point, *scenario.Scenario) { configured = true },
		Metrics: []Metric{
			{Name: "speed_gap_m", Fn: func(e Env) float64 {
				return e.Result.Mules[1].Distance - e.Result.Mules[0].Distance
			}},
		},
		Seeds: 1,
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if gap := res.Cells[0].Metric("speed_gap_m").Mean; gap <= 0 {
		t.Fatalf("4 m/s mule did not out-travel the 1 m/s mule (gap %g m)", gap)
	}
	if configured {
		t.Fatal("Configure invoked although Scenario replaces materialization")
	}
}

// BenchmarkMultiCellSweep measures a sweep whose parallelism comes
// from cells, not replications (Seeds=1): run with -cpu 1,2,4,8 to see
// the cells themselves scale with GOMAXPROCS. Workers defaults to
// GOMAXPROCS, so the -cpu flag is the worker count.
func BenchmarkMultiCellSweep(b *testing.B) {
	spec := Spec{
		Name:       "bench",
		Algorithms: []Variant{Algo("btctp", patrol.Planned(&core.BTCTP{}))},
		Targets:    []int{10, 15, 20, 25, 30, 35, 40, 45},
		Mules:      []int{2, 4},
		Horizons:   []float64{30_000},
		Metrics:    []Metric{AvgDCDT(), AvgSD()},
		Seeds:      1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleRun() {
	spec := Spec{
		Name:       "example",
		Algorithms: []Variant{Algo("btctp", patrol.Planned(&core.BTCTP{}))},
		Targets:    []int{6},
		Mules:      []int{2},
		Horizons:   []float64{5_000},
		Metrics:    []Metric{AvgSD()},
		Seeds:      2,
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("cells=%d runs=%d btctp steady SD=%.1f\n",
		len(res.Cells), res.Runs, res.Cells[0].Metric("avg_sd_s").Mean)
	// Output: cells=1 runs=2 btctp steady SD=0.0
}
