package sweep

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"tctp/internal/core"
	"tctp/internal/patrol"
)

// failureSpec is a small grid crossing the failure axis against the
// static baseline, over a partitioned algorithm so the absorb handoff
// has groups to work with.
func failureSpec(t *testing.T) Spec {
	t.Helper()
	alg, err := patrol.Partitioned(patrol.Planned(&core.BTCTP{}), core.PartitionConfig{
		Method: core.KMeansMethod, K: 2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Name:       "failures",
		Algorithms: []Variant{Algo("cbtctp", alg)},
		Targets:    []int{10},
		Mules:      []int{4},
		Horizons:   []float64{8_000},
		Failures: []Failure{
			{},
			{Rate: 0.5},
			{Rate: 0.5, Handoff: "absorb"},
		},
		Metrics: []Metric{AvgDCDT(), CoverageGap(), TimeToRecover()},
		Seeds:   4,
	}
}

func TestParseFailure(t *testing.T) {
	good := map[string]Failure{
		"":            {},
		"none":        {},
		"0.5":         {Rate: 0.5},
		"0.25:absorb": {Rate: 0.25, Handoff: "absorb"},
		"1:none":      {Rate: 1, Handoff: "none"},
	}
	for in, want := range good {
		got, err := ParseFailure(in)
		if err != nil || got != want {
			t.Errorf("ParseFailure(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"x", "-0.1", "1.5", "0.5:teleport", "0.5:absorb:extra"} {
		if _, err := ParseFailure(in); err == nil {
			t.Errorf("ParseFailure(%q) accepted", in)
		}
	}
	if (Failure{Rate: 0.5, Handoff: "absorb"}).String() != "0.5:absorb" {
		t.Error("canonical string form changed")
	}
	if (Failure{}).String() != "none" {
		t.Error("zero failure should render as none")
	}
}

// TestFailureAxisDeterministicAcrossWorkers extends the engine's core
// byte-identity guarantee to the dynamic world: the failure draws and
// the mid-run replans are pure functions of (cell, seed), so worker
// count cannot move a single output byte.
func TestFailureAxisDeterministicAcrossWorkers(t *testing.T) {
	outputs := make([]string, 0, 3)
	for _, workers := range []int{1, 2, 8} {
		spec := failureSpec(t)
		spec.Workers = workers
		var buf bytes.Buffer
		if _, err := Run(context.Background(), spec, CSV(&buf), JSONL(&buf)); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, buf.String())
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("sink bytes differ between workers=1 and variant %d:\n%s\nvs\n%s",
				i, outputs[0], outputs[i])
		}
	}
}

// TestFailureAxisDegradedMetrics: the static cell reports zero
// coverage gap and recovery; the failed cells report positive,
// finite ones under both handoff policies.
func TestFailureAxisDegradedMetrics(t *testing.T) {
	res, err := Run(context.Background(), failureSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("%d cells", len(res.Cells))
	}
	static, none, absorb := res.Cells[0], res.Cells[1], res.Cells[2]
	if static.Point.Failure != "" || none.Point.Failure != "0.5" || absorb.Point.Failure != "0.5:absorb" {
		t.Fatalf("failure coordinates %q %q %q",
			static.Point.Failure, none.Point.Failure, absorb.Point.Failure)
	}
	if g := static.Metric("coverage_gap_s"); g.Mean != 0 {
		t.Fatalf("static cell coverage gap %v, want 0", g.Mean)
	}
	if g := none.Metric("coverage_gap_s"); g.Mean <= 0 {
		t.Fatalf("failure cell coverage gap %v, want > 0", g.Mean)
	}
	for _, c := range []*CellResult{none, absorb} {
		if r := c.Metric("recover_s"); r.Mean <= 0 || r.Mean > 8_000 {
			t.Fatalf("%s cell recover %v, want in (0, horizon]", c.Point.Failure, r.Mean)
		}
		if g := c.Metric("coverage_gap_s"); g.Mean <= 0 {
			t.Fatalf("%s cell coverage gap %v, want > 0", c.Point.Failure, g.Mean)
		}
	}
}

// TestCellKeyFailureSensitivity: the failure configuration is part of
// the content-addressed cell identity — differing rates or handoffs
// hash apart — while the disabled axis value stays invisible, keeping
// every pre-dynamic-world cache key valid.
func TestCellKeyFailureSensitivity(t *testing.T) {
	key := func(f Failure) string {
		spec := tinySpec()
		spec.Failures = []Failure{f}
		j, err := Plan(spec)
		if err != nil {
			t.Fatal(err)
		}
		k, err := j.CellKey(0)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	legacy := func() string {
		j, err := Plan(tinySpec())
		if err != nil {
			t.Fatal(err)
		}
		k, err := j.CellKey(0)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}()
	if key(Failure{}) != legacy {
		t.Error("an explicit disabled failure changed the cell key; pre-axis caches would all miss")
	}
	rate := key(Failure{Rate: 0.5})
	if rate == legacy {
		t.Error("failure rate did not change the cell key")
	}
	if key(Failure{Rate: 0.25}) == rate {
		t.Error("different rates share a cell key")
	}
	if key(Failure{Rate: 0.5, Handoff: "absorb"}) == rate {
		t.Error("handoff policy did not change the cell key")
	}

	// And the identity JSON itself omits the failure field when the
	// axis is off.
	spec := tinySpec()
	spec.Failures = []Failure{{}}
	sp, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	id, err := sp.spec.cellIdentity(sp.defs[0])
	if err != nil {
		t.Fatal(err)
	}
	if id.Failure != nil {
		t.Errorf("disabled failure serialized into the identity: %s", id.Failure)
	}
}

// TestFailureStreamIndependence: enabling the failure axis must not
// perturb the scenario/algorithm/workload streams — the static cell of
// a failure-bearing sweep matches the same cell of a failure-free one.
func TestFailureStreamIndependence(t *testing.T) {
	base := failureSpec(t)
	base.Failures = nil
	withAxis := failureSpec(t)

	a, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), withAxis)
	if err != nil {
		t.Fatal(err)
	}
	// Cell 0 of the axis run is the disabled value — same world.
	am, bm := a.Cells[0].Metric("avg_dcdt_s"), b.Cells[0].Metric("avg_dcdt_s")
	if am.Mean != bm.Mean || am.CI95 != bm.CI95 {
		t.Fatalf("failure axis perturbed the static cell: %+v vs %+v", am, bm)
	}
}

// TestPointStringFailure: the human-facing point rendering names the
// failure only when present.
func TestPointStringFailure(t *testing.T) {
	p := Point{Algorithm: "btctp", Targets: 5, Mules: 2, Speed: 2,
		Placement: 0, Horizon: 100, Failure: "0.5:absorb"}
	if s := p.String(); !strings.Contains(s, "failure=0.5:absorb") {
		t.Fatalf("point string misses the failure: %s", s)
	}
	p.Failure = ""
	if s := p.String(); strings.Contains(s, "failure") {
		t.Fatalf("static point string mentions failure: %s", s)
	}
}
