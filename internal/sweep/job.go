package sweep

// The composable job API: the distributed face of the engine.
//
//	job, _  := sweep.Plan(spec)         // deterministic cells + fingerprint
//	shard, _ := job.Shard(1, 3)         // contiguous third of the cells
//	part, _ := shard.Run(ctx, opts)     // opts: checkpoint, resume, sinks
//	res, _  := sweep.Merge(spec, parts, sinks...) // lossless fusion
//
// Plan enumerates the spec's executable cells once and fingerprints
// them; Shard slices the enumeration into contiguous deterministic
// ranges, so the i-th shard of n is the same set of cells on every
// machine that plans the same spec. A shard executes exactly like an
// unsharded run — same seeds, same seed-ordered folds, same adaptive
// stop decisions, global cell indices — so its per-cell fold records
// (the bit-exact Welford snapshots the checkpoint layer already
// persists) are a lossless fragment of the full sweep: Merge fuses any
// complete set of them into output byte-identical to a single-machine
// Run at any shard count. A shard's checkpoint file therefore IS its
// mergeable artifact — run shards with a checkpoint path on n
// machines, ship the JSONL files anywhere, and merge them there.

import (
	"fmt"
	"sort"

	"tctp/internal/sweep/protocol"
)

// Job is a planned sweep, or one shard of it: the defaults-applied
// spec, the executable cells in canonical enumeration order, and the
// plan fingerprint. Jobs are immutable — Shard returns new Jobs, and
// Run may be called any number of times (including concurrently on
// sibling shards, as long as the Spec's hooks tolerate it, which the
// engine already requires of them).
type Job struct {
	spec    Spec
	defs    []cellDef // this job's executable cells
	skipped []SkippedCell
	fp      string
	shard   int // this job's shard index in [0, shards)
	shards  int // 1 for an unsharded plan
	offset  int // global index of defs[0] in the full plan
	total   int // executable cells in the full plan
}

// Plan validates the spec, enumerates its executable cells (consulting
// the Skip hook), and fingerprints the plan. The fingerprint pins the
// full plan — every shard of the same spec carries the same one, which
// is how Merge and Resume refuse artifacts from a different sweep.
func Plan(spec Spec) (*Job, error) {
	sp := spec.withDefaults()
	if err := sp.validate(); err != nil {
		return nil, err
	}
	all := sp.cells()
	defs := make([]cellDef, 0, len(all))
	var skipped []SkippedCell
	for _, d := range all {
		if sp.Skip != nil {
			if reason := sp.Skip(d.point); reason != "" {
				skipped = append(skipped, SkippedCell{Point: d.point, Reason: reason})
				continue
			}
		}
		defs = append(defs, d)
	}
	fp, err := sp.fingerprint(defs)
	if err != nil {
		return nil, err
	}
	return &Job{
		spec: sp, defs: defs, skipped: skipped, fp: fp,
		shards: 1, total: len(defs),
	}, nil
}

// Fingerprint returns the sha256 plan fingerprint shared by every
// shard of this plan.
func (j *Job) Fingerprint() string { return j.fp }

// Cells returns the number of executable cells this job runs (the
// shard's share, or the whole plan for an unsharded job).
func (j *Job) Cells() int { return len(j.defs) }

// TotalCells returns the executable cell count of the full plan.
func (j *Job) TotalCells() int { return j.total }

// Shard returns shard i of n: the i-th of n contiguous, deterministic,
// near-equal ranges of the plan's cell enumeration. Sharding an
// already-sharded job is an error; n == 1 returns a job equivalent to
// the plan itself. Shards of a plan with fewer cells than n may be
// empty — running one is a no-op whose partial merges cleanly.
func (j *Job) Shard(i, n int) (*Job, error) {
	if j.shards != 1 || j.offset != 0 {
		return nil, fmt.Errorf("sweep: job is already shard %d/%d; shard the plan instead",
			j.shard, j.shards)
	}
	if n < 1 || i < 0 || i >= n {
		return nil, fmt.Errorf("sweep: shard %d/%d outside [0,%d)", i, n, n)
	}
	lo := i * len(j.defs) / n
	hi := (i + 1) * len(j.defs) / n
	s := *j
	s.defs = j.defs[lo:hi]
	s.shard, s.shards, s.offset = i, n, lo
	return &s, nil
}

// Partial is the output of one job run: the shard coordinates plus
// every cell's final fold record (the same bit-exact Welford snapshots
// the checkpoint layer persists). Partials come from Job.Run directly,
// or from LoadPartial on a shard's checkpoint file.
type Partial struct {
	sweep   string
	fp      string
	shard   int
	shards  int
	offset  int
	cells   int
	total   int
	maxReps int
	records map[int]checkpointRecord // local cell index → final record
	result  *Result                  // non-nil only when produced by Job.Run
}

// Fingerprint returns the plan fingerprint the partial was produced
// under.
func (p *Partial) Fingerprint() string { return p.fp }

// Shard returns the partial's shard coordinates (0, 1) for an
// unsharded run.
func (p *Partial) Shard() (i, n int) { return p.shard, p.shards }

// Cells returns the number of cells the partial's shard covers.
func (p *Partial) Cells() int { return p.cells }

// Result returns the shard's own Result — cells in enumeration order
// with plan-global indices — or nil for a partial loaded from a
// checkpoint file.
func (p *Partial) Result() *Result { return p.result }

// LoadPartial reads a shard's checkpoint file into a mergeable
// Partial. Only structural integrity is checked here (a torn final
// line is tolerated exactly as on Resume); spec conformance,
// fingerprint equality and completeness are enforced by Merge, which
// knows the spec.
func LoadPartial(path string) (*Partial, error) {
	hdr, records, _, err := readCheckpoint(path)
	if err != nil {
		return nil, err
	}
	return &Partial{
		sweep: hdr.Sweep, fp: hdr.Fingerprint,
		shard: hdr.Shard, shards: hdr.Shards,
		offset: hdr.Offset, cells: hdr.Cells,
		total: hdr.TotalCells, maxReps: hdr.MaxReps,
		records: records,
	}, nil
}

// Wire renders the partial as its transport-neutral protocol form:
// the shard coordinates plus every finished cell's fold state, in
// ascending cell order. The wire form round-trips losslessly through
// JSON — PartialFromWire(p.Wire()) merges identically to p.
func (p *Partial) Wire() protocol.Partial {
	w := protocol.Partial{
		Sweep:       p.sweep,
		Fingerprint: p.fp,
		Shard:       p.shard,
		Shards:      p.shards,
		Offset:      p.offset,
		Cells:       p.cells,
		TotalCells:  p.total,
		MaxReps:     p.maxReps,
		Records:     make([]protocol.CellRecord, 0, len(p.records)),
	}
	for local, rec := range p.records {
		w.Records = append(w.Records, protocol.CellRecord{Cell: local, FoldState: rec.FoldState})
	}
	sort.Slice(w.Records, func(i, k int) bool { return w.Records[i].Cell < w.Records[k].Cell })
	return w
}

// PartialFromWire rebuilds a mergeable Partial from its wire form.
// Like LoadPartial, only structural integrity matters here; spec
// conformance and completeness are Merge's job.
func PartialFromWire(w protocol.Partial) (*Partial, error) {
	p := &Partial{
		sweep: w.Sweep, fp: w.Fingerprint,
		shard: w.Shard, shards: w.Shards,
		offset: w.Offset, cells: w.Cells,
		total: w.TotalCells, maxReps: w.MaxReps,
		records: make(map[int]checkpointRecord, len(w.Records)),
	}
	for _, r := range w.Records {
		if _, dup := p.records[r.Cell]; dup {
			return nil, fmt.Errorf("sweep: wire partial repeats cell %d", r.Cell)
		}
		p.records[r.Cell] = checkpointRecord{Cell: r.Cell, FoldState: r.FoldState}
	}
	return p, nil
}

// Merge fuses shard partials into the full sweep result, streaming the
// cells to the sinks in plan enumeration order. The partials must all
// carry the spec's plan fingerprint (a mismatch is refused — merging
// cells from a different grid would silently mix incompatible
// aggregates), must not overlap, and must together cover every cell
// with a complete fold (a shard that was killed and never resumed is
// refused, naming the incomplete cell). Because every cell's record is
// the bit-exact state of its seed-ordered fold, the merged sink output
// is byte-identical to an unsharded Run of the same spec.
func Merge(spec Spec, partials []*Partial, sinks ...Sink) (*Result, error) {
	j, err := Plan(spec)
	if err != nil {
		return nil, err
	}
	if len(partials) == 0 {
		return nil, fmt.Errorf("sweep: merge of %q has no partials", j.spec.Name)
	}
	sp := &j.spec
	maxReps := sp.maxReps()
	global := make(map[int]checkpointRecord, len(j.defs))
	owner := make(map[int]int, len(j.defs)) // global cell → partial index
	for pi, p := range partials {
		if p == nil {
			return nil, fmt.Errorf("sweep: merge of %q: partial %d is nil", sp.Name, pi)
		}
		if p.fp != j.fp {
			return nil, fmt.Errorf(
				"sweep: partial %d (shard %d/%d of sweep %q) carries fingerprint %s, the spec plans %s: refusing to merge",
				pi, p.shard, p.shards, p.sweep, p.fp, j.fp)
		}
		// The fingerprint already pins the cell list and the protocol;
		// these are cheap guards against a hand-edited header.
		if p.total != len(j.defs) || p.maxReps != maxReps ||
			p.offset < 0 || p.offset+p.cells > len(j.defs) {
			return nil, fmt.Errorf("sweep: partial %d covers cells %d..%d of %d × %d reps, the plan has %d × %d",
				pi, p.offset, p.offset+p.cells, p.total, p.maxReps, len(j.defs), maxReps)
		}
		for local, rec := range p.records {
			if local < 0 || local >= p.cells {
				return nil, fmt.Errorf("sweep: partial %d: record for cell %d outside its %d-cell shard",
					pi, local, p.cells)
			}
			if err := validateRecord(&rec, sp); err != nil {
				return nil, fmt.Errorf("sweep: partial %d: %w", pi, err)
			}
			g := p.offset + local
			if prev, dup := owner[g]; dup {
				return nil, fmt.Errorf("sweep: cell %d (%v) is supplied by partials %d and %d: overlapping shards",
					g, j.defs[g].point, prev, pi)
			}
			owner[g] = pi
			global[g] = rec
		}
	}
	for i := range j.defs {
		rec, ok := global[i]
		if !ok {
			return nil, fmt.Errorf("sweep: cell %d (%v) is missing from the partials: incomplete shard set",
				i, j.defs[i].point)
		}
		if !rec.Stopped && rec.Next != maxReps {
			return nil, fmt.Errorf("sweep: cell %d (%v) is incomplete: %d of %d replications folded (resume its shard before merging)",
				i, j.defs[i].point, rec.Next, maxReps)
		}
	}
	return j.emitRecords(func(i int) checkpointRecord { return global[i] }, sinks)
}

// emitRecords rebuilds every cell of the job from its final fold
// record and streams the results to the sinks in plan enumeration
// order. Because each record is the bit-exact state of the cell's
// seed-ordered fold, the sink output is byte-identical to a live run
// of the same job — this is the single emission path shared by Merge
// and RunCached, so "restored from shards" and "restored from the
// cache" cannot drift from each other.
func (j *Job) emitRecords(record func(i int) checkpointRecord, sinks []Sink) (*Result, error) {
	sp := &j.spec
	result := &Result{Skipped: j.skipped}
	for _, s := range sinks {
		if err := s.Begin(sp, len(j.defs)); err != nil {
			return nil, fmt.Errorf("sweep: sink begin: %w", err)
		}
	}
	for i := range j.defs {
		rec := record(i)
		c := sp.newCollector()
		c.restore(rec)
		cr := finalizeCell(sp, j.offset+i, j.defs[i].point, c)
		for _, s := range sinks {
			if err := s.Cell(cr); err != nil {
				return nil, fmt.Errorf("sweep: sink cell %d: %w", i, err)
			}
		}
		if cr.StopReason != "" {
			result.Stopped = append(result.Stopped, StoppedCell{
				Point: cr.Point, Reps: cr.Reps, Reason: cr.StopReason,
			})
		}
		result.Cells = append(result.Cells, cr)
		result.Runs += rec.Next
	}
	for _, s := range sinks {
		if err := s.End(result); err != nil {
			return nil, fmt.Errorf("sweep: sink end: %w", err)
		}
	}
	return result, nil
}
