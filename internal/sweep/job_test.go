package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// adaptiveCkptSpec is the shard-merge workload: multi-axis (two
// algorithms × two target counts), scalar and vector metrics, and
// adaptive replication — the btctp cells stop at MinReps, the random
// cells run to the cap, so merged output must reproduce heterogeneous
// per-cell replication counts.
func adaptiveCkptSpec() Spec {
	spec := ckptSpec()
	spec.Adaptive = &Adaptive{Metric: "steady_sd", RelCI: 0.05, MinReps: 3}
	return spec
}

// TestShardMergeByteIdentical is the acceptance test of the job API:
// for a multi-axis spec with adaptive replication, merging n = 1, 2, 5
// shards — one of them killed mid-flight and resumed — produces CSV
// and JSONL sink output byte-identical to an unsharded Run, and a
// merge under a mutated spec is refused on the fingerprint.
func TestShardMergeByteIdentical(t *testing.T) {
	spec := adaptiveCkptSpec()
	want, wantRes := runToBytes(t, func(sinks ...Sink) (*Result, error) {
		return Run(context.Background(), spec, sinks...)
	})

	for _, n := range []int{1, 2, 5} {
		job, err := Plan(spec)
		if err != nil {
			t.Fatal(err)
		}
		// Kill (and later resume) the last non-empty shard.
		kill := -1
		for i := 0; i < n; i++ {
			s, err := job.Shard(i, n)
			if err != nil {
				t.Fatal(err)
			}
			if s.Cells() > 0 {
				kill = i
			}
		}
		dir := t.TempDir()
		partials := make([]*Partial, n)
		for i := 0; i < n; i++ {
			path := filepath.Join(dir, "shard.jsonl")
			shard, err := job.Shard(i, n)
			if err != nil {
				t.Fatal(err)
			}
			if i == kill {
				// A single worker keeps replications undispatched when
				// the cancellation lands, so the shard is (almost
				// always) genuinely interrupted; if the race lets it
				// finish, the resume below still exercises a finished
				// checkpoint.
				killedSpec := spec
				killedSpec.Workers = 1
				ctx, cancel := context.WithCancel(context.Background())
				killedSpec.Progress = func(p Progress) {
					if p.RunsDone >= 1 {
						cancel()
					}
				}
				killedJob, err := Plan(killedSpec)
				if err != nil {
					t.Fatal(err)
				}
				killedShard, err := killedJob.Shard(i, n)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := killedShard.Run(ctx, RunOpts{Checkpoint: path}); err != nil &&
					!errors.Is(err, context.Canceled) {
					t.Fatalf("killed shard %d/%d: %v", i, n, err)
				}
				if partials[i], err = shard.Run(context.Background(),
					RunOpts{Checkpoint: path, Resume: true}); err != nil {
					t.Fatalf("resume shard %d/%d: %v", i, n, err)
				}
			} else {
				p, err := shard.Run(context.Background(), RunOpts{Checkpoint: path})
				if err != nil {
					t.Fatalf("shard %d/%d: %v", i, n, err)
				}
				// Odd shards merge from their checkpoint file — the
				// distributed transport — instead of the in-memory
				// partial.
				if i%2 == 0 {
					partials[i] = p
				} else if partials[i], err = LoadPartial(path); err != nil {
					t.Fatalf("load shard %d/%d: %v", i, n, err)
				}
			}
			os.Remove(path)
		}

		var buf bytes.Buffer
		res, err := Merge(spec, partials, CSV(&buf), JSONL(&buf))
		if err != nil {
			t.Fatalf("merge %d shards: %v", n, err)
		}
		if buf.String() != want {
			t.Fatalf("merged output of %d shards differs from unsharded run:\n--- merged ---\n%s--- want ---\n%s",
				n, buf.String(), want)
		}
		if res.Runs != wantRes.Runs || len(res.Cells) != len(wantRes.Cells) {
			t.Fatalf("merged result: %d runs / %d cells, want %d / %d",
				res.Runs, len(res.Cells), wantRes.Runs, len(wantRes.Cells))
		}

		// A spec with any structural difference plans a different
		// fingerprint: merging the same partials under it is refused.
		mutated := spec
		mutated.BaseSeed = 99
		if _, err := Merge(mutated, partials); err == nil ||
			!strings.Contains(err.Error(), "refusing to merge") {
			t.Fatalf("mutated-spec merge: err = %v, want fingerprint refusal", err)
		}
	}
}

func TestShardRanges(t *testing.T) {
	job, err := Plan(ckptSpec())
	if err != nil {
		t.Fatal(err)
	}
	if job.Cells() != 4 || job.TotalCells() != 4 || job.Fingerprint() == "" {
		t.Fatalf("plan: cells=%d total=%d fp=%q", job.Cells(), job.TotalCells(), job.Fingerprint())
	}
	for _, n := range []int{1, 2, 3, 4, 7} {
		covered := 0
		for i := 0; i < n; i++ {
			s, err := job.Shard(i, n)
			if err != nil {
				t.Fatal(err)
			}
			if s.offset != covered {
				t.Fatalf("n=%d shard %d starts at %d, want contiguous %d", n, i, s.offset, covered)
			}
			if s.Fingerprint() != job.Fingerprint() {
				t.Fatalf("n=%d shard %d changed the fingerprint", n, i)
			}
			covered += s.Cells()
		}
		if covered != job.Cells() {
			t.Fatalf("n=%d shards cover %d of %d cells", n, covered, job.Cells())
		}
	}
	shard, err := job.Shard(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.Shard(0, 2); err == nil {
		t.Fatal("sharding a shard accepted")
	}
	for _, bad := range [][2]int{{-1, 2}, {2, 2}, {0, 0}, {0, -1}} {
		if _, err := job.Shard(bad[0], bad[1]); err == nil {
			t.Fatalf("Shard(%d, %d) accepted", bad[0], bad[1])
		}
	}
}

// A shard's own sink output carries plan-global cell indices, so its
// rows are the corresponding rows of an unsharded run.
func TestShardGlobalIndices(t *testing.T) {
	job, err := Plan(ckptSpec())
	if err != nil {
		t.Fatal(err)
	}
	shard, err := job.Shard(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := shard.Run(context.Background(), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	res := p.Result()
	if len(res.Cells) != 2 || res.Cells[0].Index != 2 || res.Cells[1].Index != 3 {
		t.Fatalf("shard 1/2 cells %+v, want global indices 2 and 3", res.Cells)
	}
	if i, n := p.Shard(); i != 1 || n != 2 || p.Cells() != 2 {
		t.Fatalf("partial coordinates %d/%d × %d", i, n, p.Cells())
	}
}

// An empty shard (more shards than cells) runs as a no-op and merges
// cleanly; its checkpoint is a bare header.
func TestEmptyShard(t *testing.T) {
	spec := ckptSpec()
	job, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	empty, err := job.Shard(0, 5) // 4 cells over 5 shards: shard 0 is empty
	if err != nil {
		t.Fatal(err)
	}
	if empty.Cells() != 0 {
		t.Fatalf("shard 0/5 has %d cells", empty.Cells())
	}
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	p, err := empty.Run(context.Background(), RunOpts{Checkpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Result().Cells) != 0 {
		t.Fatalf("empty shard produced %d cells", len(p.Result().Cells))
	}
	if _, err := LoadPartial(path); err != nil {
		t.Fatalf("empty shard checkpoint unreadable: %v", err)
	}
}

func TestMergeRefusals(t *testing.T) {
	spec := ckptSpec()
	job, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*Partial, 2)
	for i := range parts {
		shard, err := job.Shard(i, 2)
		if err != nil {
			t.Fatal(err)
		}
		if parts[i], err = shard.Run(context.Background(), RunOpts{}); err != nil {
			t.Fatal(err)
		}
	}

	refuse := func(name, wantErr string, partials ...*Partial) {
		t.Helper()
		if _, err := Merge(spec, partials); err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("%s: err = %v, want %q", name, err, wantErr)
		}
	}
	refuse("no partials", "no partials")
	refuse("nil partial", "is nil", parts[0], nil)
	refuse("missing shard", "missing from the partials", parts[0])
	refuse("overlapping shards", "overlapping shards", parts[0], parts[0], parts[1])

	// A shard killed mid-flight and never resumed is refused by name.
	path := filepath.Join(t.TempDir(), "shard.jsonl")
	killedSpec := spec
	killedSpec.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	killedSpec.Progress = func(p Progress) {
		if p.RunsDone >= 1 {
			cancel()
		}
	}
	killedJob, err := Plan(killedSpec)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := killedJob.Shard(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.Run(ctx, RunOpts{Checkpoint: path}); !errors.Is(err, context.Canceled) {
		t.Skipf("shard completed before the cancellation landed: %v", err)
	}
	incomplete, err := LoadPartial(path)
	if err != nil {
		t.Fatal(err)
	}
	refuse("incomplete shard", "incomplete", parts[0], incomplete)
}

func TestLoadPartialErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadPartial(filepath.Join(dir, "absent.jsonl")); err == nil {
		t.Fatal("missing partial accepted")
	}
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPartial(bad); err == nil {
		t.Fatal("garbage partial accepted")
	}
}

// A shard's checkpoint cannot be resumed by a job with different shard
// coordinates: the same spec, planned unsharded, is refused.
func TestResumeShardMismatch(t *testing.T) {
	spec := ckptSpec()
	job, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := job.Shard(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shard.jsonl")
	if _, err := shard.Run(context.Background(), RunOpts{Checkpoint: path}); err != nil {
		t.Fatal(err)
	}
	_, err = Resume(context.Background(), spec, path)
	if err == nil || !strings.Contains(err.Error(), "shard") ||
		!strings.Contains(err.Error(), "refusing to resume") {
		t.Fatalf("unsharded resume of a shard checkpoint: err = %v", err)
	}
}

// Checkpoints written before sharding existed carry no shard fields;
// they normalize to the unsharded coordinates and keep resuming.
func TestResumeLegacyHeader(t *testing.T) {
	spec := ckptSpec()
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	want, _ := runToBytes(t, func(sinks ...Sink) (*Result, error) {
		return RunCheckpointed(context.Background(), spec, path, sinks...)
	})

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(string(raw), "\n", 2)
	var hdr map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"shard", "shards", "offset", "total_cells"} {
		delete(hdr, k)
	}
	legacy, err := json.Marshal(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(append(legacy, '\n'), lines[1]...), 0o644); err != nil {
		t.Fatal(err)
	}

	got, _ := runToBytes(t, func(sinks ...Sink) (*Result, error) {
		return Resume(context.Background(), spec, path, sinks...)
	})
	if got != want {
		t.Fatalf("legacy-header resume diverged:\n%s\nvs\n%s", got, want)
	}
}

// Sharding composes with the Skip hook: skips belong to the plan, and
// the merged result reproduces them exactly like an unsharded run.
func TestShardMergeWithSkips(t *testing.T) {
	spec := ckptSpec()
	spec.Skip = func(p Point) string {
		if p.Targets == 8 {
			return "eight targets excluded"
		}
		return ""
	}
	want, wantRes := runToBytes(t, func(sinks ...Sink) (*Result, error) {
		return Run(context.Background(), spec, sinks...)
	})
	job, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if job.Cells() != 2 {
		t.Fatalf("%d executable cells after skip", job.Cells())
	}
	parts := make([]*Partial, 2)
	for i := range parts {
		shard, err := job.Shard(i, 2)
		if err != nil {
			t.Fatal(err)
		}
		if parts[i], err = shard.Run(context.Background(), RunOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	res, err := Merge(spec, parts, CSV(&buf), JSONL(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != want {
		t.Fatalf("merged output with skips diverged:\n%s\nvs\n%s", buf.String(), want)
	}
	if len(res.Skipped) != len(wantRes.Skipped) {
		t.Fatalf("merged %d skips, want %d", len(res.Skipped), len(wantRes.Skipped))
	}
}

// RunOpts.Progress reports alongside the Spec hook, with job-local
// totals.
func TestRunOptsProgress(t *testing.T) {
	spec := ckptSpec()
	specCalls := 0
	spec.Progress = func(Progress) { specCalls++ }
	job, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := job.Shard(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	var last Progress
	optCalls := 0
	if _, err := shard.Run(context.Background(), RunOpts{
		Progress: func(p Progress) { last = p; optCalls++ },
	}); err != nil {
		t.Fatal(err)
	}
	if optCalls == 0 || optCalls != specCalls {
		t.Fatalf("progress calls: opts %d, spec %d", optCalls, specCalls)
	}
	if last.CellsTotal != 2 || last.CellsDone != 2 {
		t.Fatalf("final shard progress %+v", last)
	}
}
