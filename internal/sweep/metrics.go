package sweep

// Built-in metric library: the paper's evaluation metrics as reusable
// Metric values. Steady-state metrics cut at Env.Warm(), matching the
// experiment runners' warm-up convention.

// AvgDCDT is the paper's primary metric: the average data-collecting
// delay time across targets, measured after patrol start.
func AvgDCDT() Metric {
	return Metric{Name: "avg_dcdt_s", Fn: func(e Env) float64 {
		return e.Result.Recorder.AvgDCDTAfter(e.Warm())
	}}
}

// AvgSD is the paper's regularity metric: the average standard
// deviation of per-target visiting intervals after patrol start.
func AvgSD() Metric {
	return Metric{Name: "avg_sd_s", Fn: func(e Env) float64 {
		return e.Result.Recorder.AvgSDAfter(e.Warm())
	}}
}

// MaxInterval is the worst visiting interval any target experienced.
func MaxInterval() Metric {
	return Metric{Name: "max_interval_s", Fn: func(e Env) float64 {
		return e.Result.Recorder.MaxInterval()
	}}
}

// JoulesPerVisit is the fleet's energy per collection.
func JoulesPerVisit() Metric {
	return Metric{Name: "j_per_visit", Fn: func(e Env) float64 {
		return e.Result.EnergyPerVisit()
	}}
}

// TotalVisits is the fleet's total collection count.
func TotalVisits() Metric {
	return Metric{Name: "visits", Fn: func(e Env) float64 {
		return float64(e.Result.TotalVisits())
	}}
}

// DeadMules counts mules that exhausted their battery.
func DeadMules() Metric {
	return Metric{Name: "dead_mules", Fn: func(e Env) float64 {
		return float64(e.Result.DeadMules())
	}}
}

// Recharges counts the fleet's recharge stops.
func Recharges() Metric {
	return Metric{Name: "recharges", Fn: func(e Env) float64 {
		n := 0
		for _, m := range e.Result.Mules {
			n += m.Recharges
		}
		return float64(n)
	}}
}

// CircuitLength is the planned patrolling path length in metres —
// summed over every patrol group of the plan, so partitioned plans
// (C-TCTP, the Sweep baseline) report the total tour length instead
// of a silent zero (0 for online algorithms, which have no plan).
func CircuitLength() Metric {
	return Metric{Name: "circuit_m", Fn: func(e Env) float64 {
		if e.Result.Plan == nil {
			return 0
		}
		return e.Result.Plan.TotalWalkLength(e.Scenario.Points())
	}}
}

// GroupCount is the number of patrol groups of the plan (1 for
// single-circuit planners, 0 for online algorithms).
func GroupCount() Metric {
	return Metric{Name: "groups", Fn: func(e Env) float64 {
		return float64(len(e.Result.Groups))
	}}
}

// GroupDCDT is the per-group steady-state DCDT vector: element g is
// the average visiting interval of group g's member targets after
// patrol start, in the plan's group order. Plans with fewer than
// maxGroups groups fill only their own positions; online algorithms
// contribute nothing.
func GroupDCDT(maxGroups int) VectorMetric {
	return VectorMetric{Name: "group_dcdt_s", Len: maxGroups, Fn: func(e Env) []float64 {
		n := len(e.Result.Groups)
		if n > maxGroups {
			n = maxGroups
		}
		out := make([]float64, n)
		for g := 0; g < n; g++ {
			out[g] = e.Result.GroupDCDTAfter(g, e.Warm())
		}
		return out
	}}
}

// GroupSD is the per-group steady-state interval-SD vector, the
// regularity companion of GroupDCDT.
func GroupSD(maxGroups int) VectorMetric {
	return VectorMetric{Name: "group_sd_s", Len: maxGroups, Fn: func(e Env) []float64 {
		n := len(e.Result.Groups)
		if n > maxGroups {
			n = maxGroups
		}
		out := make([]float64, n)
		for g := 0; g < n; g++ {
			out[g] = e.Result.GroupSDAfter(g, e.Warm())
		}
		return out
	}}
}

// Delivery metrics: these read the cell's data-workload overlay
// (Env.Data) and return 0 for cells without one, so a sweep mixing
// workload-on and workload-off cells stays well-defined.

// Delivered is the number of packets that reached the sink.
func Delivered() Metric {
	return Metric{Name: "delivered", Fn: func(e Env) float64 {
		if e.Data == nil {
			return 0
		}
		return float64(e.Data.Delivered())
	}}
}

// OnTimePct is the percentage of delivered packets within the
// workload's deadline.
func OnTimePct() Metric {
	return Metric{Name: "on_time_pct", Fn: func(e Env) float64 {
		if e.Data == nil {
			return 0
		}
		return 100 * e.Data.OnTimeFraction()
	}}
}

// Overflowed is the number of packets dropped at full node buffers.
func Overflowed() Metric {
	return Metric{Name: "overflowed", Fn: func(e Env) float64 {
		if e.Data == nil {
			return 0
		}
		return float64(e.Data.Overflowed())
	}}
}

// MeanLatency is the mean generation-to-sink delivery latency.
func MeanLatency() Metric {
	return Metric{Name: "mean_latency_s", Fn: func(e Env) float64 {
		if e.Data == nil {
			return 0
		}
		return e.Data.MeanLatency()
	}}
}

// MaxLatency is the worst delivery latency.
func MaxLatency() Metric {
	return Metric{Name: "max_latency_s", Fn: func(e Env) float64 {
		if e.Data == nil {
			return 0
		}
		return e.Data.MaxLatency()
	}}
}

// Priority metrics: these split the delivery statistics by packet
// class and return 0 for cells whose workload does not track
// priorities (wsn overlays built without NewPriority report 0 on the
// class accessors).

// DeliveredHigh is the number of delivered high-priority (VIP-origin)
// packets.
func DeliveredHigh() Metric {
	return Metric{Name: "delivered_hi", Fn: func(e Env) float64 {
		if e.Data == nil {
			return 0
		}
		return float64(e.Data.DeliveredHigh())
	}}
}

// MeanLatencyHigh is the mean delivery latency of high-priority
// packets.
func MeanLatencyHigh() Metric {
	return Metric{Name: "mean_latency_hi_s", Fn: func(e Env) float64 {
		if e.Data == nil {
			return 0
		}
		return e.Data.MeanLatencyHigh()
	}}
}

// MeanLatencyLow is the mean delivery latency of low-priority packets.
func MeanLatencyLow() Metric {
	return Metric{Name: "mean_latency_lo_s", Fn: func(e Env) float64 {
		if e.Data == nil {
			return 0
		}
		return e.Data.MeanLatencyLow()
	}}
}

// DCDTCurve is the Fig. 7 vector metric: the event-indexed DCDT
// trajectory over the first maxVisits visiting intervals.
func DCDTCurve(maxVisits int) VectorMetric {
	return VectorMetric{Name: "dcdt_curve", Len: maxVisits, Fn: func(e Env) []float64 {
		return e.Result.Recorder.EventDCDTSeries(maxVisits)
	}}
}

// Degraded-mode metrics: these read the run's injected-failure record
// (Result.Failures) and return 0 for static-world cells, so a sweep
// mixing failure-on and failure-off cells stays well-defined.

// CoverageGap is the degraded-mode exposure metric: the average over
// targets of the longest visit-free stretch between the first injected
// failure and the horizon. It captures how long parts of the field
// went unpatrolled while the fleet was degraded — the quantity the
// absorb handoff policy exists to shrink.
func CoverageGap() Metric {
	return Metric{Name: "coverage_gap_s", Fn: func(e Env) float64 {
		tF, ok := e.Result.FirstFailureTime()
		if !ok {
			return 0
		}
		return e.Result.Recorder.AvgMaxGapOver(nil, tF, e.Point.Horizon)
	}}
}

// TimeToRecover is the degraded-mode responsiveness metric: how long
// after the first injected failure until every target has been
// visited again (censored at the horizon for targets never revisited).
func TimeToRecover() Metric {
	return Metric{Name: "recover_s", Fn: func(e Env) float64 {
		tF, ok := e.Result.FirstFailureTime()
		if !ok {
			return 0
		}
		return e.Result.Recorder.TimeToRecoverOver(nil, tF, e.Point.Horizon)
	}}
}

// GroupDCDTPostFailure is the per-group DCDT vector measured after the
// first injected failure, in the INITIAL plan's group order — the
// degraded companion of GroupDCDT (which measures from patrol start).
// Static-world replications measure from patrol start, so the two
// coincide there.
func GroupDCDTPostFailure(maxGroups int) VectorMetric {
	return VectorMetric{Name: "group_dcdt_fail_s", Len: maxGroups, Fn: func(e Env) []float64 {
		t0 := e.Warm()
		if tF, ok := e.Result.FirstFailureTime(); ok {
			t0 = tF
		}
		n := len(e.Result.Groups)
		if n > maxGroups {
			n = maxGroups
		}
		out := make([]float64, n)
		for g := 0; g < n; g++ {
			out[g] = e.Result.GroupDCDTAfter(g, t0)
		}
		return out
	}}
}

// GroupSDPostFailure is the per-group interval-SD vector after the
// first injected failure, the regularity companion of
// GroupDCDTPostFailure.
func GroupSDPostFailure(maxGroups int) VectorMetric {
	return VectorMetric{Name: "group_sd_fail_s", Len: maxGroups, Fn: func(e Env) []float64 {
		t0 := e.Warm()
		if tF, ok := e.Result.FirstFailureTime(); ok {
			t0 = tF
		}
		n := len(e.Result.Groups)
		if n > maxGroups {
			n = maxGroups
		}
		out := make([]float64, n)
		for g := 0; g < n; g++ {
			out[g] = e.Result.GroupSDAfter(g, t0)
		}
		return out
	}}
}
