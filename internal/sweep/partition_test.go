package sweep

import (
	"context"
	"strings"
	"testing"

	"tctp/internal/baseline"
	"tctp/internal/core"
	"tctp/internal/patrol"
)

// partitionSpec sweeps one planner across the partition axis.
func partitionSpec() Spec {
	return Spec{
		Name:       "partitioned",
		Algorithms: []Variant{Algo("btctp", patrol.Planned(&core.BTCTP{}))},
		Targets:    []int{10},
		Mules:      []int{4},
		Horizons:   []float64{4_000},
		Partitions: []Partition{{}, {Method: "kmeans", K: 2}, {Method: "sectors", K: 4}},
		Metrics:    []Metric{AvgDCDT(), GroupCount(), CircuitLength()},
		Vectors:    []VectorMetric{GroupDCDT(4), GroupSD(4)},
		Seeds:      2,
	}
}

func TestPartitionAxis(t *testing.T) {
	res, err := Run(context.Background(), partitionSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("%d cells, want 3", len(res.Cells))
	}
	wantParts := []string{"", "kmeans:2", "sectors:4"}
	wantGroups := []float64{1, 2, 4}
	for i, c := range res.Cells {
		if c.Point.Partition != wantParts[i] {
			t.Fatalf("cell %d partition %q, want %q", i, c.Point.Partition, wantParts[i])
		}
		if g := c.Metric("groups").Mean; g != wantGroups[i] {
			t.Fatalf("cell %d groups = %v, want %v", i, g, wantGroups[i])
		}
		if c.Metric("circuit_m").Mean <= 0 {
			t.Fatalf("cell %d circuit length %v", i, c.Metric("circuit_m").Mean)
		}
		// The per-group DCDT/SD vectors fill exactly one position per
		// group.
		if got := len(c.Vector("group_dcdt_s").Mean); got != int(wantGroups[i]) {
			t.Fatalf("cell %d group_dcdt_s has %d positions, want %v",
				i, got, wantGroups[i])
		}
		if got := len(c.Vector("group_sd_s").Mean); got != int(wantGroups[i]) {
			t.Fatalf("cell %d group_sd_s has %d positions, want %v",
				i, got, wantGroups[i])
		}
		// B-TCTP spaces its mules equally within every group, so each
		// group's steady-state interval SD is zero to floating-point
		// precision.
		for g, sd := range c.Vector("group_sd_s").Mean {
			if sd > 1e-9 {
				t.Fatalf("cell %d group %d SD = %v, want ~0", i, g, sd)
			}
		}
	}
}

func TestPartitionAxisDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *Result {
		sp := partitionSpec()
		sp.Workers = workers
		res, err := Run(context.Background(), sp)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	for i := range a.Cells {
		am, bm := a.Cells[i].Metrics, b.Cells[i].Metrics
		for k := range am {
			if am[k] != bm[k] {
				t.Fatalf("cell %d metric %s differs across worker counts: %v vs %v",
					i, am[k].Name, am[k], bm[k])
			}
		}
	}
}

func TestPartitionOnlineAlgorithmFails(t *testing.T) {
	sp := partitionSpec()
	sp.Algorithms = []Variant{Algo("random", patrol.Online(&baseline.Random{}))}
	_, err := Run(context.Background(), sp)
	if err == nil || !strings.Contains(err.Error(), "no plan to partition") {
		t.Fatalf("err = %v, want partition refusal", err)
	}
}

func TestPartitionFingerprintSensitivity(t *testing.T) {
	fp := func(sp Spec) string {
		j, err := Plan(sp)
		if err != nil {
			t.Fatal(err)
		}
		return j.Fingerprint()
	}
	base := partitionSpec()
	same := partitionSpec()
	if fp(base) != fp(same) {
		t.Fatal("equal specs produced different fingerprints")
	}
	other := partitionSpec()
	other.Partitions[1].K = 3
	if fp(base) == fp(other) {
		t.Fatal("different partition axes share a fingerprint")
	}
	// A spec without the axis keeps the historic fingerprint shape:
	// the default zero partition adds nothing to the points.
	none := partitionSpec()
	none.Partitions = nil
	lone := partitionSpec()
	lone.Partitions = []Partition{{}}
	if fp(none) != fp(lone) {
		t.Fatal("explicit zero partition perturbed the fingerprint")
	}
}

func TestParsePartition(t *testing.T) {
	good := map[string]Partition{
		"":                {},
		"none":            {},
		"kmeans:4":        {Method: "kmeans", K: 4},
		"sectors:2":       {Method: "sectors", K: 2},
		"kmeans:3:count":  {Method: "kmeans", K: 3, Alloc: "count"},
		"kmeans:3:length": {Method: "kmeans", K: 3, Alloc: "length"},
	}
	for in, want := range good {
		got, err := ParsePartition(in)
		if err != nil {
			t.Fatalf("ParsePartition(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParsePartition(%q) = %+v, want %+v", in, got, want)
		}
	}
	for _, in := range []string{"kmeans", "kmeans:0", "kmeans:x", "voronoi:3", "kmeans:3:zzz", "kmeans:3:count:x"} {
		if _, err := ParsePartition(in); err == nil {
			t.Fatalf("ParsePartition(%q) accepted", in)
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	sp := partitionSpec()
	sp.Partitions = append(sp.Partitions, Partition{Method: "kmeans", K: 2})
	if _, err := Plan(sp); err == nil || !strings.Contains(err.Error(), "duplicate partition") {
		t.Fatalf("duplicate partition accepted: %v", err)
	}
	sp = partitionSpec()
	sp.Partitions = []Partition{{Method: "voronoi", K: 2}}
	if _, err := Plan(sp); err == nil {
		t.Fatal("unknown partition method accepted")
	}
}
