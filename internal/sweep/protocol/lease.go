package protocol

// The lease wire types: how cells travel to a remote worker fleet.
//
// A tctp-server running with remote workers (-workers remote) does not
// compute missing cells itself; it enumerates them, probes the cell
// cache (warm cells are served directly and never reach the queue),
// and hands each cold cell out as a CellLease. A worker long-polls
// POST /workers/lease, computes the leased cell through the same
// single-cell sub-job path a local run uses, and posts the bit-exact
// FoldState back as a FoldResult. Because the fold state is the same
// record the checkpoint layer persists, a remotely computed cell
// restores through the shared emission path byte-identically to a
// local computation — the fleet changes throughput, never bytes.
//
// Leases carry deadlines. A worker that dies (or stalls past its
// heartbeats) loses the lease: the scheduler expires it and requeues
// the cell for the next worker. Exactly one result is ever folded per
// cell — a result posted under an expired or already-completed lease
// is refused as stale, so a reassigned cell that later reports twice
// still folds once.

// LeaseRequest is the body of POST /workers/lease: a worker asking for
// one cell to compute.
type LeaseRequest struct {
	// Worker identifies the requesting worker (stable across its
	// leases); required.
	Worker string `json:"worker"`
	// WaitSeconds long-polls: the server holds the request up to this
	// many seconds for work to arrive before answering 204. 0 means
	// answer immediately; servers clamp large values.
	WaitSeconds int `json:"wait_seconds,omitempty"`
}

// CellLease is one cell checked out to one worker: everything the
// worker needs to rebuild the spec, locate the cell, and verify it is
// computing the right thing.
type CellLease struct {
	// ID names this lease; results and heartbeats quote it. A cell
	// reassigned after expiry gets a fresh ID — the old one is stale.
	ID string `json:"id"`
	// Worker is the worker the lease was granted to.
	Worker string `json:"worker"`
	// Sweep is the server-side id of the sweep that enqueued the cell
	// (diagnostic; cells shared by several sweeps carry the first).
	Sweep string `json:"sweep,omitempty"`
	// Cell is the plan-global cell index within the request's plan;
	// Key the cell's content-addressed identity. The worker recomputes
	// the key from the request and refuses a mismatch — a drifted
	// build would otherwise silently compute the wrong cell.
	Cell int    `json:"cell"`
	Key  string `json:"key"`
	// Fingerprint is the plan fingerprint of Request, for the worker's
	// plan memoization and as a second drift guard.
	Fingerprint string `json:"fingerprint"`
	// TTLSeconds is the lease's deadline horizon: the worker must post
	// the result (or a heartbeat) within it, or the cell is reassigned.
	TTLSeconds int `json:"ttl_seconds"`
	// Request is the sweep request whose plan contains the cell —
	// plain data, so the worker builds the identical spec with
	// internal/sweep/build.
	Request SweepRequest `json:"request"`
}

// FoldResult is the body of POST /workers/result: the computed fold
// state of a leased cell, or the error that prevented it.
type FoldResult struct {
	Lease  string `json:"lease"`
	Worker string `json:"worker,omitempty"`
	// Key echoes the leased cell's key; a mismatch is refused.
	Key string `json:"key"`
	// State is the cell's complete, bit-exact fold state; nil when the
	// worker failed, with Error saying why.
	State *FoldState `json:"state,omitempty"`
	Error string     `json:"error,omitempty"`
}

// LeaseHeartbeat is the body of POST /workers/heartbeat: a worker
// still computing a long cell extends its lease deadline.
type LeaseHeartbeat struct {
	Lease  string `json:"lease"`
	Worker string `json:"worker,omitempty"`
}

// LeaseAck answers a result or heartbeat post.
type LeaseAck struct {
	// Accepted reports whether the post took effect. A stale post
	// (unknown, expired, or already-completed lease) has Stale set —
	// the worker should drop the cell and move on; its result was not
	// folded.
	Accepted bool   `json:"accepted"`
	Stale    bool   `json:"stale,omitempty"`
	Error    string `json:"error,omitempty"`
}

// SourceWorker is the Source attributed to a cell computed by a remote
// worker: "worker:" + the worker's id.
func SourceWorker(id string) Source { return Source("worker:" + id) }
